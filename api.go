// Package monsoon is the public API of this repository: a from-scratch Go
// implementation of the MONSOON query optimizer (Sikdar & Jermaine, SIGMOD
// 2020) together with the relational substrate it runs on.
//
// Monsoon optimizes multi-table queries whose predicates are partially
// obscured by opaque user-defined functions — the optimizer can see that two
// UDF terms are equi-joined but has no statistics about them. It models the
// choice between collecting statistics (materialize, scan, sketch) and
// boldly executing a guessed plan as a Markov decision process, solves it
// online with Monte-Carlo tree search under a prior over distinct-value
// counts, and interleaves planning with real execution until the query
// result is materialized.
//
// Quick start:
//
//	cat := monsoon.NewCatalog()
//	// ... build and register tables (see examples/quickstart) ...
//	q := monsoon.NewQuery("orders-by-city").
//		Rel("o", "orders").Rel("s", "sessions").
//		Join(monsoon.Identity("o.cid"), monsoon.Identity("s.cid")).
//		Select(monsoon.City("s.ip"), monsoon.Int(2570)).
//		MustBuild()
//	rep, err := monsoon.Run(q, cat, monsoon.WithSeed(42))
package monsoon

import (
	"fmt"
	"time"

	"monsoon/internal/core"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/mcts"
	"monsoon/internal/obs"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/sqlish"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Re-exported core types. The underlying packages carry the full
// documentation; these aliases make the root package self-sufficient for
// downstream users (internal/ packages are not importable from outside).
type (
	// Catalog stores base tables by name.
	Catalog = table.Catalog
	// Relation is a named bag of rows with a schema.
	Relation = table.Relation
	// TableBuilder accumulates rows for a relation.
	TableBuilder = table.Builder
	// Column describes one attribute of a schema.
	Column = table.Column
	// Schema is an ordered list of columns.
	Schema = table.Schema
	// Row is one tuple.
	Row = table.Row
	// Value is the scalar value model.
	Value = value.Value
	// Query is a logical query over a catalog.
	Query = query.Query
	// QueryBuilder assembles queries.
	QueryBuilder = query.Builder
	// UDF is an opaque scalar function over table-qualified attributes.
	UDF = expr.UDF
	// Prior models uncertainty over a distinct-value count.
	Prior = prior.Prior
	// Result reports a completed Monsoon run, including the Table 8
	// component breakdown.
	Result = core.Result
	// EventSink receives the structured observability stream of a run:
	// spans, trace messages, and estimate-vs-actual records.
	EventSink = obs.EventSink
	// Event is one observability record delivered to an EventSink.
	Event = obs.Event
	// Span is one timed region of a traced run (MDP action or engine
	// operator), with rows in/out and objects produced.
	Span = obs.Span
	// CardEstimate is one estimate-vs-actual cardinality record with its
	// q-error, emitted at every EXECUTE for every executed plan node.
	CardEstimate = obs.Estimate
	// TraceCollector is an EventSink retaining everything in memory.
	TraceCollector = obs.Collector
	// MetricsRegistry accumulates counters, gauges, and histograms across
	// runs; dump it with its Dump method.
	MetricsRegistry = obs.Registry
	// PlanCache memoizes the action sequences MCTS settles on, keyed by
	// query shape and bucketed statistics, so repeated queries skip the
	// search; share one across runs with WithPlanCache or a Session.
	PlanCache = plancache.Cache
	// PlanCacheStats snapshots a plan cache's hit/miss/eviction accounting.
	PlanCacheStats = plancache.Stats
	// CostProfile is a calibrated per-operator-kind cost profile (seconds
	// per object produced), learned from recorded span corpora; attach one
	// with WithCostProfile.
	CostProfile = cost.CostProfile
	// CostCalibrator folds recorded spans or span trees into per-operator
	// timing accumulators and emits a CostProfile.
	CostCalibrator = cost.Calibrator
)

// NewPlanCache creates a plan cache bounded to capacity entries; capacity
// <= 0 selects the default (512).
func NewPlanCache(capacity int) *PlanCache { return plancache.New(capacity) }

// NewCostCalibrator creates an empty cost calibrator; feed it spans with
// AddSpan/AddSpans/AddTree and extract the learned rates with Profile.
func NewCostCalibrator() *CostCalibrator { return cost.NewCalibrator() }

// LoadCostProfile reads a calibrated cost profile from the JSON file a
// calibration run wrote (CostProfile.WriteJSON, or
// `monsoon-trace calibrate`).
func LoadCostProfile(path string) (*CostProfile, error) { return cost.LoadProfile(path) }

// NewMetricsRegistry creates an empty metrics registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewJSONLSink wraps a writer as an EventSink streaming one JSON object per
// event line (the monsoon-cli --trace-json format).
var NewJSONLSink = obs.NewJSONL

// Value constructors.
var (
	// Int wraps an int64.
	Int = value.Int
	// Float wraps a float64.
	Float = value.Float
	// Str wraps a string.
	Str = value.String
	// Boolean wraps a bool.
	Boolean = value.Bool
	// IntList wraps an int64 set (sorted, deduplicated).
	IntList = value.IntList
	// Null is the NULL value constructor.
	Null = value.Null
)

// Column kinds.
const (
	KindInt     = value.KindInt
	KindFloat   = value.KindFloat
	KindString  = value.KindString
	KindBool    = value.KindBool
	KindIntList = value.KindIntList
)

// The opaque-UDF library (see internal/expr for semantics).
var (
	// Identity projects an attribute unchanged (plain equi-join terms).
	Identity = expr.Identity
	// ExtractDate takes the date prefix of a timestamp string.
	ExtractDate = expr.ExtractDate
	// City buckets an IPv4 string into a city id.
	City = expr.City
	// Between extracts the substring between two markers.
	Between = expr.Between
	// HashMod hashes an integer attribute into b buckets.
	HashMod = expr.HashMod
	// Lower lowercases a string attribute.
	Lower = expr.Lower
	// Prefix truncates a string attribute.
	Prefix = expr.Prefix
	// ConcatKey concatenates two attributes (multi-table capable).
	ConcatKey = expr.ConcatKey
	// SetEqualsKey canonicalizes an int-list so set-equal rows join.
	SetEqualsKey = expr.SetEqualsKey
	// SumMod combines two integer attributes modulo m (multi-table capable).
	SumMod = expr.SumMod
	// Sprintf formats an integer attribute through a fixed pattern.
	Sprintf = expr.Sprintf
	// YearOf extracts the year of a date string as an integer.
	YearOf = expr.YearOf
)

// NewUDF wraps an arbitrary opaque Go function as a UDF. args are the fully
// qualified attributes ("alias.column") the function reads; fn receives their
// values in order.
func NewUDF(name string, args []string, fn func([]Value) Value) *UDF {
	return &UDF{Name: name, Args: args, Fn: fn}
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return table.NewCatalog() }

// NewTable starts building a stored table. Columns are (name, kind) pairs
// qualified by the table's name automatically.
func NewTable(name string, cols ...Column) *TableBuilder {
	qualified := make([]Column, len(cols))
	for i, c := range cols {
		if c.Table == "" {
			c.Table = name
		}
		qualified[i] = c
	}
	return table.NewBuilder(name, table.NewSchema(qualified...))
}

// Col declares a column for NewTable; the table qualifier is filled in by
// NewTable.
func Col(name string, kind value.Kind) Column { return Column{Name: name, Kind: kind} }

// NewQuery starts building a query.
func NewQuery(name string) *QueryBuilder { return query.NewBuilder(name) }

// UDFRegistry resolves UDF names in SQL text to factories; NewUDFRegistry
// pre-registers the library UDFs (ExtractDate, City, Lower, YearOf, SetKey,
// Prefix, HashMod, Sprintf, Between, ConcatKey, SumMod).
type UDFRegistry = sqlish.Registry

// UDFFactory instantiates a UDF from its SQL call site: attrs are the
// qualified attribute arguments, consts the literal arguments, in order.
type UDFFactory = sqlish.UDFFactory

// NewUDFRegistry returns a registry with the library UDFs pre-registered.
func NewUDFRegistry() *UDFRegistry { return sqlish.NewRegistry() }

// ParseQuery parses the paper's SQL dialect into a query:
//
//	SELECT COUNT(*) | SUM(alias.attr)
//	FROM table [alias], ...
//	WHERE term = term AND ...
//
// where a term is a qualified attribute, a literal, or a call to a
// registered UDF (see NewUDFRegistry). reg may be nil for the default
// registry.
func ParseQuery(name, sql string, reg *UDFRegistry) (*Query, error) {
	return sqlish.Parse(name, sql, reg)
}

// Priors returns the seven §5.2 priors in Table 2 order.
func Priors() []Prior { return prior.All() }

// PriorByName resolves a prior by its Table 2 name ("Uniform", "Increasing",
// "Decreasing", "U-Shaped", "Low Biased", "Spike and Slab", "Discrete").
func PriorByName(name string) Prior { return prior.ByName(name) }

// PriorDensity evaluates the continuous density of a prior in normalized
// x = d/c(r) space (the Figure 2 curves); priors without a smooth density
// (Discrete) return 0 everywhere.
func PriorDensity(p Prior, x float64) float64 { return prior.Density(p, x) }

// RunOption configures Run.
type RunOption func(*runConfig)

type runConfig struct {
	core     core.Config
	timeout  time.Duration
	maxTuple float64
	shards   int
	known    []knownStat
}

type knownStat struct {
	fn *UDF
	d  float64
}

// WithPrior selects the prior over distinct-value counts (default:
// Spike and Slab, the paper's recommendation).
func WithPrior(p Prior) RunOption { return func(c *runConfig) { c.core.Prior = p } }

// WithIterations sets the MCTS rollout budget per planning call.
func WithIterations(n int) RunOption { return func(c *runConfig) { c.core.Iterations = n } }

// WithSeed makes the run reproducible.
func WithSeed(seed int64) RunOption { return func(c *runConfig) { c.core.Seed = seed } }

// WithTimeout bounds the run's wall time; exceeding it returns ErrBudget.
func WithTimeout(d time.Duration) RunOption { return func(c *runConfig) { c.timeout = d } }

// WithMaxTuples bounds the total objects produced; exceeding it returns
// ErrBudget.
func WithMaxTuples(n float64) RunOption { return func(c *runConfig) { c.maxTuple = n } }

// WithTrace streams one line per real-world optimizer action.
func WithTrace(fn func(string)) RunOption { return func(c *runConfig) { c.core.Trace = fn } }

// WithEventSink streams the run's structured observability events (spans for
// every MDP action and engine operator, trace messages, estimate-vs-actual
// cardinality records) to sink. Composes with WithTrace.
func WithEventSink(sink EventSink) RunOption { return func(c *runConfig) { c.core.Sink = sink } }

// WithMetrics accumulates the run's counters and histograms (actions,
// EXECUTE rounds, Σ operators, planning latency, per-join q-error) into reg,
// which may be shared across runs.
func WithMetrics(reg *MetricsRegistry) RunOption { return func(c *runConfig) { c.core.Metrics = reg } }

// WithParallelism caps the engine's worker count for the run's partitionable
// operators (filter scans, hash-join probe, Σ statistics pass): 1 forces the
// exact serial path, N > 1 uses up to N workers, and 0 (the default) uses
// runtime.GOMAXPROCS(0). Every setting is bit-identical — same result rows in
// the same order, same Σ sketch estimates, same plan choices — so the knob
// trades wall time only; set 1 to take parallelism out of a measurement or
// when the process must not spawn goroutines.
func WithParallelism(n int) RunOption { return func(c *runConfig) { c.core.Parallelism = n } }

// WithBatchSize caps the rows one streaming pipeline batch carries between
// the engine's operators: N > 0 uses batches of up to N rows, a negative
// value disables batching entirely (every operator materializes its full
// output before the next starts — the legacy memory profile), and 0 (the
// default) uses the engine's default of 4096. Every setting is bit-identical
// — same result rows in the same order, same Σ estimates, same plan choices,
// same traces — so the knob trades peak memory against per-batch overhead
// only. Smaller batches bound intermediate memory more tightly; unbounded
// batches make peak memory proportional to the largest intermediate result.
func WithBatchSize(n int) RunOption { return func(c *runConfig) { c.core.BatchSize = n } }

// WithShards partitions every stored table of the run's catalog into n
// deterministic hash shards on its first column (n <= 1 restores the single
// unsharded store). The engine then runs exchange-style operators over the
// layout — shard-local scans and partial Σ passes for co-partitioned hash
// builds, an explicit reshuffle otherwise — and the optimizer prices that
// movement into its plan search. Every shard count returns the bit-identical
// query answer; the knob trades wall time and lets the sharding experiment
// compare co-partitioned against reshuffled executions. The catalog itself
// carries the layout, so the partitioning persists on it across runs until
// changed.
func WithShards(n int) RunOption { return func(c *runConfig) { c.shards = n } }

// WithPlanParallelism caps the OS threads the root-parallel MCTS planner runs
// its search shards on: 1 forces serial planning, N > 1 uses up to N threads,
// and 0 (the default) uses runtime.GOMAXPROCS(0). The search decomposition is
// fixed by the planner configuration alone, so every setting yields the
// byte-identical run — same plans, same trace, same visit counts — and the
// knob trades planning wall time only. Independent of WithParallelism, which
// governs the execution engine's workers.
func WithPlanParallelism(n int) RunOption {
	return func(c *runConfig) { c.core.PlanParallelism = n }
}

// WithPlanCache memoizes planned rounds in c and replays them on repeats:
// before each MCTS call the run consults c, keyed by the query's canonical
// shape, the planner knobs, and the current MDP state with log₂-bucketed
// statistics, and a hit replays the memoized action sequence instead of
// searching. A warm replay reproduces the cold run's plan choices exactly.
// Share one cache across runs (it is safe for concurrent use), or use a
// Session, which wires a shared cache automatically.
func WithPlanCache(c *PlanCache) RunOption { return func(cfg *runConfig) { cfg.core.Cache = c } }

// WithCostProfile prices the optimizer's EXECUTE simulations with a
// calibrated per-operator-kind cost profile (estimated seconds) instead of
// the paper's flat object-count cost. Profiles participate in the plan-cache
// key, so calibrated and uncalibrated runs never share memoized rounds. Nil
// is the default uncalibrated model, bit-identical to previous releases.
func WithCostProfile(p *CostProfile) RunOption {
	return func(c *runConfig) { c.core.Profile = p }
}

// WithReplanThreshold arms mid-query re-optimization: after each EXECUTE
// round, if the q-error between a materialized tree's estimated and actual
// root cardinality reaches t (misses — one side empty — always qualify), the
// run invalidates the query's memoized plan-cache rounds and forces the next
// planning round to re-run MCTS with the statistics execution just hardened.
// Zero (the default) disables the trigger.
func WithReplanThreshold(t float64) RunOption {
	return func(c *runConfig) { c.core.ReplanThreshold = t }
}

// WithEpsilonGreedy switches MCTS from UCT to the adaptive ε-greedy
// selection strategy (§5.1).
func WithEpsilonGreedy() RunOption {
	return func(c *runConfig) { c.core.Strategy = mcts.EpsGreedy }
}

// WithKnownDistinct declares the distinct-value count of a UDF term as
// already known (§3.1: available statistics initialize the optimization
// problem). The UDF is matched by pointer identity against the query's join
// and selection terms, so pass the same *UDF value used when building the
// query.
func WithKnownDistinct(fn *UDF, d float64) RunOption {
	return func(c *runConfig) { c.known = append(c.known, knownStat{fn: fn, d: d}) }
}

// ErrBudget is returned when a run exceeds its timeout or tuple budget.
var ErrBudget = engine.ErrBudget

// Report is Run's return value: the Monsoon Result plus the materialized
// output relation.
type Report struct {
	Result
	// Output is the final result relation.
	Output *Relation
}

// Run optimizes and executes q over cat with the Monsoon optimizer:
// interleaved MCTS planning, Σ statistics collection, and execution (§5.3).
func Run(q *Query, cat *Catalog, opts ...RunOption) (*Report, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	budget := &engine.Budget{MaxTuples: cfg.maxTuple}
	if cfg.timeout > 0 {
		budget.Deadline = time.Now().Add(cfg.timeout)
	}
	if len(cfg.known) > 0 {
		st := stats.New()
		for _, k := range cfg.known {
			for _, term := range q.Terms() {
				if term.Fn == k.fn {
					st.SetMeasured(term.ID, term.Aliases.Key(), k.d)
				}
			}
		}
		cfg.core.Stats = st
	}
	if cfg.shards > 0 && cat.ShardCount() != cfg.shards {
		cat.Shard(cfg.shards)
	}
	eng := engine.New(cat)
	res, err := core.Run(q, eng, budget, cfg.core)
	if err != nil {
		return &Report{Result: *res}, err
	}
	if res.Output == nil {
		return &Report{Result: *res}, fmt.Errorf("monsoon: result not materialized")
	}
	return &Report{Result: *res, Output: res.Output}, nil
}

// Session is the serving-path entry point: a handle over one catalog that
// carries a shared plan cache (and any default options) across queries, so
// repeated or similar queries replay memoized plans instead of re-running
// MCTS. Each Run still executes on a fresh engine — only planning knowledge
// is shared, never materialized state — so results are identical to
// standalone Run calls with the same seed. Safe for concurrent Run calls.
type Session struct {
	cat   *Catalog
	cache *PlanCache
	opts  []RunOption
}

// NewSession creates a session over cat. opts become defaults for every
// Run on the session; per-call options override them. The session owns a
// default-capacity plan cache unless opts carry WithPlanCache.
func NewSession(cat *Catalog, opts ...RunOption) *Session {
	return &Session{cat: cat, cache: NewPlanCache(0), opts: opts}
}

// PlanCacheStats snapshots the session cache's accounting (hits, misses,
// evictions, entries).
func (s *Session) PlanCacheStats() PlanCacheStats { return s.cache.Stats() }

// Run optimizes and executes q like the package-level Run, with the
// session's defaults applied first and its plan cache attached.
func (s *Session) Run(q *Query, opts ...RunOption) (*Report, error) {
	all := make([]RunOption, 0, len(s.opts)+len(opts)+1)
	all = append(all, WithPlanCache(s.cache))
	all = append(all, s.opts...)
	all = append(all, opts...)
	return Run(q, s.cat, all...)
}
