package monsoon

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildWorld creates a small two-table catalog through the public API only.
func buildWorld() *Catalog {
	cat := NewCatalog()
	ev := NewTable("events",
		Col("user_id", KindInt),
		Col("when", KindString),
	)
	for i := 0; i < 5000; i++ {
		day := 10 + i%3
		ev.Add(Int(int64(i%200)), Str("2019-01-"+twoDigits(day)+" 12:00:00"))
	}
	cat.Put(ev.Build())
	us := NewTable("users",
		Col("id", KindInt),
		Col("ip", KindString),
	)
	for i := 0; i < 200; i++ {
		us.Add(Int(int64(i)), Str("10.1.0.1"))
	}
	cat.Put(us.Build())
	return cat
}

func twoDigits(n int) string {
	if n < 10 {
		return "0" + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func buildQuery() *Query {
	return NewQuery("api-test").
		Rel("e", "events").Rel("u", "users").
		Join(Identity("e.user_id"), Identity("u.id")).
		Select(ExtractDate("e.when"), Str("2019-01-11")).
		MustBuild()
}

func TestRunThroughPublicAPI(t *testing.T) {
	cat := buildWorld()
	var traced []string
	rep, err := Run(buildQuery(), cat,
		WithSeed(5),
		WithIterations(150),
		WithPrior(PriorByName("Spike and Slab")),
		WithTrace(func(s string) { traced = append(traced, s) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 events / 3 days, joined 1:1 to users.
	if rep.Rows < 1500 || rep.Rows > 1800 {
		t.Errorf("rows = %d, want ~1667", rep.Rows)
	}
	if rep.Output == nil || rep.Output.Count() != rep.Rows {
		t.Error("Output relation must match Rows")
	}
	if len(traced) == 0 {
		t.Error("trace must fire")
	}
	if rep.Executes < 1 || rep.Produced <= 0 {
		t.Errorf("implausible report: %+v", rep.Result)
	}
}

func TestRunStrategiesAgree(t *testing.T) {
	cat := buildWorld()
	a, err := Run(buildQuery(), cat, WithSeed(1), WithIterations(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildQuery(), buildWorld(), WithSeed(1), WithIterations(100), WithEpsilonGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != b.Rows {
		t.Errorf("strategies disagree on result: %d vs %d", a.Rows, b.Rows)
	}
}

// TestWithBatchSizeIdentical pins the streaming≡materialized guarantee at
// the public API: WithBatchSize only bounds pipeline memory, so every
// setting — row-at-a-time, an awkward prime, the default, and the negative
// materialized sentinel — must return the same report.
func TestWithBatchSizeIdentical(t *testing.T) {
	run := func(batch int) *Report {
		rep, err := Run(buildQuery(), buildWorld(), WithSeed(5), WithIterations(150), WithBatchSize(batch))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		return rep
	}
	ref := run(-1)
	for _, batch := range []int{1, 7, 4096, 0} {
		rep := run(batch)
		if rep.Rows != ref.Rows || rep.Value != ref.Value || rep.Produced != ref.Produced {
			t.Errorf("batch %d: rows/value/produced %d/%g/%g, materialized %d/%g/%g",
				batch, rep.Rows, rep.Value, rep.Produced, ref.Rows, ref.Value, ref.Produced)
		}
		if !reflect.DeepEqual(rep.Output.Rows, ref.Output.Rows) {
			t.Errorf("batch %d: output rows differ from materialized", batch)
		}
	}
}

// TestWithShardsDeterministic pins the sharding guarantee at the public API:
// every shard count returns the same query answer, and within one layout the
// batch size still changes nothing — including the exact output rows.
func TestWithShardsDeterministic(t *testing.T) {
	run := func(shards, batch int) *Report {
		rep, err := Run(buildQuery(), buildWorld(),
			WithSeed(5), WithIterations(150), WithShards(shards), WithBatchSize(batch))
		if err != nil {
			t.Fatalf("shards %d batch %d: %v", shards, batch, err)
		}
		return rep
	}
	unsharded := run(1, 0)
	for _, s := range []int{1, 2, 4, 16} {
		ref := run(s, 0)
		if ref.Rows != unsharded.Rows || ref.Value != unsharded.Value {
			t.Errorf("shards %d: rows/value %d/%g, unsharded %d/%g",
				s, ref.Rows, ref.Value, unsharded.Rows, unsharded.Value)
		}
		for _, batch := range []int{1, 7, -1} {
			rep := run(s, batch)
			if rep.Rows != ref.Rows || rep.Value != ref.Value || rep.Produced != ref.Produced {
				t.Errorf("shards %d batch %d: rows/value/produced %d/%g/%g, want %d/%g/%g",
					s, batch, rep.Rows, rep.Value, rep.Produced, ref.Rows, ref.Value, ref.Produced)
			}
			if !reflect.DeepEqual(rep.Output.Rows, ref.Output.Rows) {
				t.Errorf("shards %d batch %d: output rows differ within the same layout", s, batch)
			}
		}
	}
}

func TestRunBudgets(t *testing.T) {
	cat := buildWorld()
	if _, err := Run(buildQuery(), cat, WithSeed(2), WithMaxTuples(10)); !errors.Is(err, ErrBudget) {
		t.Errorf("tuple budget: err = %v, want ErrBudget", err)
	}
	if _, err := Run(buildQuery(), cat, WithSeed(2), WithTimeout(time.Nanosecond)); !errors.Is(err, ErrBudget) {
		t.Errorf("timeout: err = %v, want ErrBudget", err)
	}
}

func TestNewUDF(t *testing.T) {
	double := NewUDF("double", []string{"e.user_id"}, func(args []Value) Value {
		return Int(args[0].AsInt() * 2)
	})
	if double.Name != "double" || len(double.Args) != 1 {
		t.Error("NewUDF wiring wrong")
	}
	if got := double.Fn([]Value{Int(21)}); got.AsInt() != 42 {
		t.Errorf("NewUDF fn = %v", got)
	}
	cat := buildWorld()
	q := NewQuery("custom-udf").
		Rel("e", "events").Rel("u", "users").
		Join(double, NewUDF("double2", []string{"u.id"}, func(args []Value) Value {
			return Int(args[0].AsInt() * 2)
		})).
		MustBuild()
	rep, err := Run(q, cat, WithSeed(9), WithIterations(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 5000 {
		t.Errorf("custom UDF join rows = %d, want 5000", rep.Rows)
	}
}

func TestWithKnownDistinct(t *testing.T) {
	cat := buildWorld()
	// Declare the events-side join key's distinct count as known (§3.1).
	left := Identity("e.user_id")
	right := Identity("u.id")
	q := NewQuery("known").
		Rel("e", "events").Rel("u", "users").
		Join(left, right).
		MustBuild()
	rep, err := Run(q, cat,
		WithSeed(4),
		WithIterations(100),
		WithKnownDistinct(left, 200),
		WithKnownDistinct(right, 200),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 5000 {
		t.Errorf("rows = %d, want 5000", rep.Rows)
	}
	// With both sides fully known there is nothing worth probing.
	if rep.SigmaOps != 0 {
		t.Errorf("known statistics should suppress Σ probes, got %d", rep.SigmaOps)
	}
}

func TestPriorHelpers(t *testing.T) {
	if len(Priors()) != 7 {
		t.Error("Priors() must return the seven Table 2 priors")
	}
	if PriorByName("nope") != nil {
		t.Error("unknown prior must be nil")
	}
	if PriorDensity(PriorByName("Uniform"), 0.5) != 1 {
		t.Error("uniform density must be 1")
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(2.5).AsFloat() != 2.5 || Str("x").AsString() != "x" {
		t.Error("scalar constructors broken")
	}
	if !Boolean(true).AsBool() || !Null().IsNull() {
		t.Error("bool/null constructors broken")
	}
	if IntList([]int64{2, 1}).String() != "[1,2]" {
		t.Error("IntList constructor broken")
	}
}

func TestNewTableQualifiesColumns(t *testing.T) {
	b := NewTable("t", Col("a", KindInt))
	b.Add(Int(1))
	rel := b.Build()
	if _, ok := rel.Schema.Lookup("t.a"); !ok {
		t.Error("NewTable must qualify columns with the table name")
	}
}

func TestUDFLibraryExports(t *testing.T) {
	// Smoke-check the exported UDF constructors produce working functions.
	if ExtractDate("a.b").Fn([]Value{Str("2020-05-05 01:02:03")}).AsString() != "2020-05-05" {
		t.Error("ExtractDate broken")
	}
	if City("a.b").Fn([]Value{Str("10.2.3.4")}).AsInt() != 10*256+2 {
		t.Error("City broken")
	}
	if Lower("a.b").Fn([]Value{Str("XY")}).AsString() != "xy" {
		t.Error("Lower broken")
	}
	if Prefix("a.b", 1).Fn([]Value{Str("xyz")}).AsString() != "x" {
		t.Error("Prefix broken")
	}
	if YearOf("a.b").Fn([]Value{Str("1999-01-01")}).AsInt() != 1999 {
		t.Error("YearOf broken")
	}
	if !strings.HasPrefix(Sprintf("a.b", "K%03d").Fn([]Value{Int(7)}).AsString(), "K007") {
		t.Error("Sprintf broken")
	}
	if HashMod("a.b", 8).Fn([]Value{Int(123)}).AsInt() >= 8 {
		t.Error("HashMod broken")
	}
	if ConcatKey("a.b", "c.d").Fn([]Value{Str("x"), Str("y")}).AsString() != "x|y" {
		t.Error("ConcatKey broken")
	}
	if SumMod("a.b", "c.d", 5).Fn([]Value{Int(7), Int(4)}).AsInt() != 1 {
		t.Error("SumMod broken")
	}
	if SetEqualsKey("a.b").Fn([]Value{IntList([]int64{2, 1})}).AsString() != "[1,2]" {
		t.Error("SetEqualsKey broken")
	}
	if Between("a.b", "<", ">").Fn([]Value{Str("a<k>b")}).AsString() != "k" {
		t.Error("Between broken")
	}
	if Identity("a.b").Fn([]Value{Int(9)}).AsInt() != 9 {
		t.Error("Identity broken")
	}
}

func TestParseQueryEndToEnd(t *testing.T) {
	cat := buildWorld()
	q, err := ParseQuery("sql-quickstart", `
		SELECT COUNT(*)
		FROM events e, users u
		WHERE e.user_id = u.id AND ExtractDate(e.when) = '2019-01-11'`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(q, cat, WithSeed(6), WithIterations(100))
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the builder-constructed equivalent.
	ref, err := Run(buildQuery(), buildWorld(), WithSeed(6), WithIterations(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != ref.Rows {
		t.Errorf("SQL query rows = %d, builder rows = %d", rep.Rows, ref.Rows)
	}
}

func TestParseQueryCustomUDF(t *testing.T) {
	reg := NewUDFRegistry()
	reg.Register("Bucket", func(attrs []string, consts []Value) (*UDF, error) {
		return HashMod(attrs[0], consts[0].AsInt()), nil
	})
	q, err := ParseQuery("custom", `SELECT COUNT(*) FROM events e WHERE Bucket(e.user_id, 4) = 1`, reg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(q, buildWorld(), WithSeed(2), WithIterations(80))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 || rep.Rows == 5000 {
		t.Errorf("bucket filter rows = %d, want a proper subset", rep.Rows)
	}
}

func TestWithParallelismDeterministic(t *testing.T) {
	// The events table (5000 rows) crosses the engine's parallel threshold,
	// so the fanned-out runs below genuinely exercise the worker pool; the
	// report must nonetheless be bit-identical to the forced-serial run.
	run := func(opts ...RunOption) *Report {
		rep, err := Run(buildQuery(), buildWorld(),
			append([]RunOption{WithSeed(5), WithIterations(150)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(WithParallelism(1))
	for _, rep := range []*Report{run(), run(WithParallelism(4))} {
		if rep.Rows != serial.Rows || rep.Value != serial.Value || rep.Produced != serial.Produced {
			t.Errorf("parallel run diverged: rows/value/produced %d/%v/%v, serial %d/%v/%v",
				rep.Rows, rep.Value, rep.Produced, serial.Rows, serial.Value, serial.Produced)
		}
		if !reflect.DeepEqual(rep.Output.Rows, serial.Output.Rows) {
			t.Error("parallel output relation differs from serial (content or order)")
		}
	}
}

func TestWithPlanParallelismDeterministic(t *testing.T) {
	// The planner knob mirrors the engine knob: any thread cap on the
	// root-parallel MCTS shards — including more threads than shards — must
	// reproduce the forced-serial run bit-for-bit, down to the trace lines
	// the searched plans emit.
	run := func(opts ...RunOption) (*Report, []string) {
		var lines []string
		rep, err := Run(buildQuery(), buildWorld(),
			append([]RunOption{WithSeed(5), WithIterations(300),
				WithTrace(func(s string) { lines = append(lines, s) })}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return rep, lines
	}
	serial, serialLines := run(WithPlanParallelism(1))
	for _, w := range []int{0, 2, 64} {
		rep, lines := run(WithPlanParallelism(w))
		if rep.Rows != serial.Rows || rep.Value != serial.Value || rep.Produced != serial.Produced ||
			rep.Actions != serial.Actions || rep.Executes != serial.Executes {
			t.Errorf("plan parallelism %d diverged: %+v vs serial %+v", w, rep.Result, serial.Result)
		}
		if !reflect.DeepEqual(lines, serialLines) {
			t.Errorf("plan parallelism %d trace:\n%q\nserial:\n%q", w, lines, serialLines)
		}
		if !reflect.DeepEqual(rep.Output.Rows, serial.Output.Rows) {
			t.Errorf("plan parallelism %d output relation differs from serial", w)
		}
	}
}
