package monsoon

import (
	"io"
	"testing"
	"time"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/core"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/harness"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// These testing.B benchmarks regenerate the paper's tables and figures at
// the tiny scale — one benchmark per table/figure of §6, as macro-benchmarks
// over the whole pipeline (generators → optimizers → engine → aggregation).
// `go run ./cmd/monsoon-bench -scale small` produces the full-size campaign
// recorded in EXPERIMENTS.md.

// benchScale shrinks the tiny scale further so the full -bench=. sweep stays
// in CI territory.
func benchScale() harness.Scale {
	sc := harness.Tiny()
	sc.IMDBQueryCount = 4
	sc.MCTSIterations = 80
	sc.Timeout = 2 * time.Second
	sc.MaxTuples = 1e6
	return sc
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Figure2(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Figure3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonsoonSingleQuery measures one end-to-end Monsoon run (optimize +
// execute) on the public-API quickstart shape — the per-query unit behind
// every table row above. With no event sink or metrics registry attached
// this is the observability layer's zero-cost guard: every instrumentation
// site reduces to a nil-receiver call, so this benchmark must hold the
// pre-instrumentation baseline (compare against BenchmarkMonsoonTraced to
// see what tracing actually buys and costs).
func BenchmarkMonsoonSingleQuery(b *testing.B) {
	cat := buildWorld()
	q := buildQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(q, cat, WithSeed(int64(i)), WithIterations(100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonsoonTraced is the same run with the full observability stack
// attached — in-memory span collection plus a shared metrics registry — to
// make the instrumentation overhead directly comparable to the nil-sink
// baseline above.
func BenchmarkMonsoonTraced(b *testing.B) {
	cat := buildWorld()
	q := buildQuery()
	reg := NewMetricsRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &TraceCollector{}
		if _, err := Run(q, cat, WithSeed(int64(i)), WithIterations(100),
			WithEventSink(col), WithMetrics(reg)); err != nil {
			b.Fatal(err)
		}
	}
}

// largeJoinFixture builds the serial-vs-parallel measurement workload: a
// 400k-row probe side against a 2000-key build side, with roughly half the
// probe rows matching. Probe-dominated by construction, so the benchmark
// pair below isolates what the partitioned probe buys.
func largeJoinFixture() (*table.Catalog, *query.Query, *plan.Node) {
	cat := table.NewCatalog()
	bs := table.NewSchema(table.Column{Table: "BIG", Name: "a", Kind: value.KindInt})
	bb := table.NewBuilder("BIG", bs)
	for i := 0; i < 400000; i++ {
		bb.Add(value.Int(int64(i % 4000)))
	}
	cat.Put(bb.Build())
	ss := table.NewSchema(table.Column{Table: "SM", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("SM", ss)
	for i := 0; i < 2000; i++ {
		sb.Add(value.Int(int64(i)))
	}
	cat.Put(sb.Build())
	q := query.NewBuilder("large").
		Rel("BIG", "BIG").Rel("SM", "SM").
		Join(expr.Identity("BIG.a"), expr.Identity("SM.k")).
		MustBuild()
	tree := plan.NewJoin(
		plan.NewLeaf(query.NewAliasSet("BIG")),
		plan.NewLeaf(query.NewAliasSet("SM")),
	)
	return cat, q, tree
}

func benchLargeJoin(b *testing.B, parallelism int) {
	benchLargeJoinAt(b, parallelism, 0)
}

func benchLargeJoinAt(b *testing.B, parallelism, batchSize int) {
	cat, q, tree := largeJoinFixture()
	eng := engine.New(cat)
	eng.Parallelism = parallelism
	eng.BatchSize = batchSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, _, err := eng.ExecTree(q, tree, &engine.Budget{})
		if err != nil {
			b.Fatal(err)
		}
		if rel.Count() != 200000 {
			b.Fatalf("join produced %d rows, want 200000", rel.Count())
		}
	}
}

// BenchmarkLargeJoinSerial / BenchmarkLargeJoinParallel measure the hash-join
// probe with the worker pool forced off versus using every core. The two runs
// produce bit-identical relations (see TestSerialParallelIdentical); the
// delta is pure probe-side speedup from the partitioned parallel path.
func BenchmarkLargeJoinSerial(b *testing.B)   { benchLargeJoin(b, 1) }
func BenchmarkLargeJoinParallel(b *testing.B) { benchLargeJoin(b, 0) }

// BenchmarkExecStreaming / BenchmarkExecMaterialized contrast the two
// execution modes on the same 400k-row join, serial so the pipeline itself is
// what's measured: default 4096-row batches flowing through the operators
// versus the negative sentinel that materializes every intermediate in full.
// Both produce bit-identical relations (TestStreamingMatchesMaterialized);
// the deltas of interest are allocation volume and peak heap — run with
// -benchmem, or see the `monsoon-bench -exp memory` study in EXPERIMENTS.md.
func BenchmarkExecStreaming(b *testing.B)    { benchLargeJoinAt(b, 1, 4096) }
func BenchmarkExecMaterialized(b *testing.B) { benchLargeJoinAt(b, 1, -1) }

// benchPlanPhase measures the cold-cache plan phase alone on the small
// campaign's TPC-H workload (the suite recorded in campaign_small.txt): every
// iteration plans each query from scratch — no plan cache, full MCTS every
// round — with the timer stopped while the EXECUTE rounds run, so the pair
// below isolates what root-parallel planning buys on a cache miss. Both
// settings plan byte-identically (TestPlanParallelismGolden); the delta is
// planner wall time only.
func benchPlanPhase(b *testing.B, planWorkers int) {
	sc := harness.Small()
	cat := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed})
	queries := tpch.Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			b.StopTimer()
			eng := engine.New(cat)
			s := core.NewSession(q, eng, &engine.Budget{MaxTuples: sc.MaxTuples}, core.Config{
				Seed: sc.Seed, Iterations: sc.MCTSIterations, PlanParallelism: planWorkers,
			})
			b.StartTimer()
			for {
				execute, err := s.PlanRound()
				if err != nil {
					b.Fatal(err)
				}
				if !execute {
					break
				}
				b.StopTimer()
				if err := s.ExecuteRound(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			if _, err := s.Finalize(); err != nil {
				b.Fatal(err)
			}
			s.Close()
			b.StartTimer()
		}
	}
}

// BenchmarkPlanPhaseSerial / BenchmarkPlanPhaseParallel8 are the cold-cache
// planner pair: the serial plan phase versus the root-parallel planner capped
// at 8 threads. The measured speedup (or its absence on few-core hosts) is
// recorded in EXPERIMENTS.md.
func BenchmarkPlanPhaseSerial(b *testing.B)    { benchPlanPhase(b, 1) }
func BenchmarkPlanPhaseParallel8(b *testing.B) { benchPlanPhase(b, 8) }

func benchMonsoonRepeat(b *testing.B, cache *PlanCache) {
	cat := buildWorld()
	q := buildQuery()
	opts := []RunOption{WithSeed(7), WithIterations(100)}
	if cache != nil {
		opts = append(opts, WithPlanCache(cache))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(q, cat, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonsoonRepeatUncached / BenchmarkMonsoonRepeatCached measure the
// plan cache on the workload it targets: the same (query, seed) run back to
// back. The uncached run re-plans with MCTS every time; the cached run pays
// the search once, then replays the memoized rounds — with plans pinned
// identical by TestCachedEqualsUncachedGolden — so the delta is the planning
// time the cache eliminates.
func BenchmarkMonsoonRepeatUncached(b *testing.B) { benchMonsoonRepeat(b, nil) }
func BenchmarkMonsoonRepeatCached(b *testing.B)   { benchMonsoonRepeat(b, NewPlanCache(0)) }
