package monsoon

import (
	"io"
	"testing"
	"time"

	"monsoon/internal/harness"
)

// These testing.B benchmarks regenerate the paper's tables and figures at
// the tiny scale — one benchmark per table/figure of §6, as macro-benchmarks
// over the whole pipeline (generators → optimizers → engine → aggregation).
// `go run ./cmd/monsoon-bench -scale small` produces the full-size campaign
// recorded in EXPERIMENTS.md.

// benchScale shrinks the tiny scale further so the full -bench=. sweep stays
// in CI territory.
func benchScale() harness.Scale {
	sc := harness.Tiny()
	sc.IMDBQueryCount = 4
	sc.MCTSIterations = 80
	sc.Timeout = 2 * time.Second
	sc.MaxTuples = 1e6
	return sc
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Figure2(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Figure3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Scale: benchScale()}
		if err := r.Table8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonsoonSingleQuery measures one end-to-end Monsoon run (optimize +
// execute) on the public-API quickstart shape — the per-query unit behind
// every table row above. With no event sink or metrics registry attached
// this is the observability layer's zero-cost guard: every instrumentation
// site reduces to a nil-receiver call, so this benchmark must hold the
// pre-instrumentation baseline (compare against BenchmarkMonsoonTraced to
// see what tracing actually buys and costs).
func BenchmarkMonsoonSingleQuery(b *testing.B) {
	cat := buildWorld()
	q := buildQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(q, cat, WithSeed(int64(i)), WithIterations(100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonsoonTraced is the same run with the full observability stack
// attached — in-memory span collection plus a shared metrics registry — to
// make the instrumentation overhead directly comparable to the nil-sink
// baseline above.
func BenchmarkMonsoonTraced(b *testing.B) {
	cat := buildWorld()
	q := buildQuery()
	reg := NewMetricsRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &TraceCollector{}
		if _, err := Run(q, cat, WithSeed(int64(i)), WithIterations(100),
			WithEventSink(col), WithMetrics(reg)); err != nil {
			b.Fatal(err)
		}
	}
}
