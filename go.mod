module monsoon

go 1.22
