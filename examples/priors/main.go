// Priors — the Figure 2 companion: print the analytic densities of the five
// smooth priors of §5.2 and an empirical histogram of all seven (including
// the spike-and-slab atoms and the discrete rule), sampled at c(r)=10,000 and
// c(s)=500.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"monsoon"
)

func main() {
	const cr, cs = 10000, 500

	fmt.Println("analytic densities over x = d/c(r)  (Figure 2)")
	fmt.Printf("%-6s", "x")
	for _, p := range monsoon.Priors() {
		if d := monsoon.PriorDensity(p, 0.5); d > 0 {
			fmt.Printf(" %-14s", p.Name())
		}
	}
	fmt.Println()
	for i := 1; i <= 9; i++ {
		x := float64(i) / 10
		fmt.Printf("%-6.1f", x)
		for _, p := range monsoon.Priors() {
			if monsoon.PriorDensity(p, 0.5) > 0 {
				fmt.Printf(" %-14.3f", monsoon.PriorDensity(p, x))
			}
		}
		fmt.Println()
	}

	fmt.Println("\nempirical sample histograms (50k draws, d(F, r|s) with c(r)=10000, c(s)=500)")
	rng := rand.New(rand.NewSource(1))
	buckets := 10
	for _, p := range monsoon.Priors() {
		counts := make([]int, buckets)
		atCs := 0
		n := 50000
		for i := 0; i < n; i++ {
			d := p.Sample(rng, cr, cs)
			if d == cs {
				atCs++
			}
			b := int(d / cr * float64(buckets))
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
		}
		fmt.Printf("%-16s", p.Name())
		for _, c := range counts {
			bar := strings.Repeat("#", c*40/n)
			if c > 0 && bar == "" {
				bar = "."
			}
			fmt.Printf("|%-4s", bar)
		}
		fmt.Printf("|  P(d=c(s)) = %.3f\n", float64(atCs)/float64(n))
	}
	fmt.Println("\nthe paper recommends Spike and Slab: an 80% uniform slab plus 10% atoms")
	fmt.Println("at the two foreign-key cases d=c(r) and d=c(s) (visible in the last column).")
}
