// Fraud detection — the running example of §2 of the paper. Find pairs of
// identical orders placed on one date by different customers who logged on
// from the same city:
//
//	SELECT c1.name, c2.name
//	FROM order o1, order o2, sess s1, sess s2
//	WHERE Intersection(o1.items, o2.items) = Union(o1.items, o2.items)
//	  AND ExtractDate(o1.when) = '2019-01-11'
//	  AND ExtractDate(o2.when) = '2019-01-11'
//	  AND o1.cID = s1.cID AND o2.cID = s2.cID AND o1.cID <> o2.cID
//	  AND City(s1.ipAdd) = City(s2.ipAdd)
//
// Every predicate is an opaque UDF. The set-equality trick is faithful:
// Intersection(a,b) = Union(a,b) holds exactly when the item sets are equal,
// which the engine evaluates by joining on a canonical set key. The one
// non-equality predicate (o1.cID <> o2.cID) is outside the optimizer's
// equality grammar (§3.1) and is applied as a post-filter below.
package main

import (
	"fmt"
	"log"

	"monsoon"
)

func main() {
	cat := monsoon.NewCatalog()
	rng := newLCG(2024)

	// orders(cID, when, items): 4,000 orders from 600 customers; item sets
	// are drawn from a small pool so identical baskets genuinely recur.
	orders := monsoon.NewTable("order",
		monsoon.Col("cID", monsoon.KindInt),
		monsoon.Col("when", monsoon.KindString),
		monsoon.Col("items", monsoon.KindIntList),
	)
	for i := 0; i < 4000; i++ {
		n := 1 + rng.next()%3
		items := make([]int64, n)
		for j := range items {
			items[j] = int64(rng.next() % 40)
		}
		orders.Add(
			monsoon.Int(int64(rng.next()%600)),
			monsoon.Str(fmt.Sprintf("2019-01-%02d %02d:%02d:00", 10+rng.next()%4, rng.next()%24, rng.next()%60)),
			monsoon.IntList(items),
		)
	}
	cat.Put(orders.Build())

	// sess(cID, ipAdd): 2,000 sessions; the first two IP octets encode the
	// city, and customers are clustered into 30 cities.
	sess := monsoon.NewTable("sess",
		monsoon.Col("cID", monsoon.KindInt),
		monsoon.Col("ipAdd", monsoon.KindString),
	)
	for i := 0; i < 2000; i++ {
		c := rng.next() % 600
		city := c % 30
		sess.Add(
			monsoon.Int(int64(c)),
			monsoon.Str(fmt.Sprintf("10.%d.%d.%d", city, rng.next()%256, rng.next()%256)),
		)
	}
	cat.Put(sess.Build())

	q := monsoon.NewQuery("fraud").
		Rel("o1", "order").Rel("o2", "order").
		Rel("s1", "sess").Rel("s2", "sess").
		Join(monsoon.SetEqualsKey("o1.items"), monsoon.SetEqualsKey("o2.items")).
		Join(monsoon.Identity("o1.cID"), monsoon.Identity("s1.cID")).
		Join(monsoon.Identity("o2.cID"), monsoon.Identity("s2.cID")).
		Join(monsoon.City("s1.ipAdd"), monsoon.City("s2.ipAdd")).
		Select(monsoon.ExtractDate("o1.when"), monsoon.Str("2019-01-11")).
		Select(monsoon.ExtractDate("o2.when"), monsoon.Str("2019-01-11")).
		MustBuild()

	rep, err := monsoon.Run(q, cat,
		monsoon.WithSeed(11),
		monsoon.WithIterations(400),
		monsoon.WithMaxTuples(5e7),
		monsoon.WithTrace(func(s string) { fmt.Println("  [optimizer] " + s) }),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Post-filter: o1.cID <> o2.cID (outside the equality grammar).
	c1 := rep.Output.Schema.MustLookup("o1.cID")
	c2 := rep.Output.Schema.MustLookup("o2.cID")
	suspicious := 0
	for _, row := range rep.Output.Rows {
		if !row[c1].Equal(row[c2]) {
			suspicious++
		}
	}
	fmt.Printf("candidate pairs from the engine: %d; suspicious (distinct customers): %d\n",
		rep.Output.Count(), suspicious)
	fmt.Printf("optimizer: %d EXECUTE rounds, %d Σ collections, %.0f objects produced\n",
		rep.Executes, rep.SigmaOps, rep.Produced)
}

// lcg is a tiny deterministic generator so the example needs no imports
// beyond the public API.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() int {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return int(l.s >> 33)
}
