// Quickstart: build two tables, join them through opaque UDFs, and let the
// Monsoon optimizer decide — via its MDP and Monte-Carlo tree search —
// whether to collect statistics first or execute a guessed plan.
package main

import (
	"fmt"
	"log"

	"monsoon"
)

func main() {
	cat := monsoon.NewCatalog()

	// events(user_id, when): 20,000 rows, timestamps over a few days.
	events := monsoon.NewTable("events",
		monsoon.Col("user_id", monsoon.KindInt),
		monsoon.Col("when", monsoon.KindString),
	)
	for i := 0; i < 20000; i++ {
		events.Add(
			monsoon.Int(int64(i%1000)),
			monsoon.Str(fmt.Sprintf("2019-01-%02d %02d:00:00", 10+i%3, i%24)),
		)
	}
	cat.Put(events.Build())

	// users(id, city_ip): 1,000 rows.
	users := monsoon.NewTable("users",
		monsoon.Col("id", monsoon.KindInt),
		monsoon.Col("city_ip", monsoon.KindString),
	)
	for i := 0; i < 1000; i++ {
		users.Add(
			monsoon.Int(int64(i)),
			monsoon.Str(fmt.Sprintf("10.%d.0.%d", i%50, i%200)),
		)
	}
	cat.Put(users.Build())

	// Who generated events on 2019-01-11, by user? Both predicates go
	// through UDFs, so the optimizer has no statistics for them until it
	// chooses to measure.
	q := monsoon.NewQuery("quickstart").
		Rel("e", "events").Rel("u", "users").
		Join(monsoon.Identity("e.user_id"), monsoon.Identity("u.id")).
		Select(monsoon.ExtractDate("e.when"), monsoon.Str("2019-01-11")).
		MustBuild()

	rep, err := monsoon.Run(q, cat,
		monsoon.WithSeed(7),
		monsoon.WithIterations(300),
		monsoon.WithTrace(func(s string) { fmt.Println("  [optimizer] " + s) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %d rows\n", rep.Rows)
	fmt.Printf("multi-step rounds: %d EXECUTEs, %d Σ statistics collections\n",
		rep.Executes, rep.SigmaOps)
	fmt.Printf("cost paid: %.0f objects produced (MCTS %v, Σ %v, execution %v)\n",
		rep.Produced, rep.PlanTime, rep.SigmaTime, rep.ExecTime)
}
