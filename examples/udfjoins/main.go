// UDF pipeline — the introduction's PySpark example, in SQL form: extract a
// document name from each document's raw text, join with document metadata,
// extract the author, and join with author metadata. The extraction UDFs
// (string.index-style surgery) completely obscure the join keys, so the
// optimizer must decide at run time whether measuring their distinct counts
// is worth a pass over the data.
package main

import (
	"fmt"
	"log"

	"monsoon"
)

func main() {
	cat := monsoon.NewCatalog()

	// validLines(text): 8,000 documents; the name and author are embedded in
	// an XML-ish header, exactly like the paper's `x[x.index('id="')+4:...]`.
	docs := monsoon.NewTable("validLines",
		monsoon.Col("text", monsoon.KindString),
	)
	for i := 0; i < 8000; i++ {
		docs.Add(monsoon.Str(fmt.Sprintf(
			`author="A%04d" id="D%05d" url="http://corpus/%d">body text here`,
			i%500, i%4000, i)))
	}
	cat.Put(docs.Build())

	// docInfo(name, kind): metadata for each document name.
	docInfo := monsoon.NewTable("docInfo",
		monsoon.Col("name", monsoon.KindString),
		monsoon.Col("kind", monsoon.KindString),
	)
	kinds := []string{"article", "book", "letter"}
	for i := 0; i < 4000; i++ {
		docInfo.Add(
			monsoon.Str(fmt.Sprintf("D%05d", i)),
			monsoon.Str(kinds[i%3]),
		)
	}
	cat.Put(docInfo.Build())

	// authorInfo(author, affiliation).
	authorInfo := monsoon.NewTable("authorInfo",
		monsoon.Col("author", monsoon.KindString),
		monsoon.Col("affiliation", monsoon.KindString),
	)
	for i := 0; i < 500; i++ {
		authorInfo.Add(
			monsoon.Str(fmt.Sprintf("A%04d", i)),
			monsoon.Str(fmt.Sprintf("University %d", i%40)),
		)
	}
	cat.Put(authorInfo.Build())

	// docNameAndText.join(docInfo) ... docInfoWithAuthor.join(authorInfo),
	// with both join keys extracted from the raw text by opaque UDFs.
	q := monsoon.NewQuery("doc-author-pipeline").
		Rel("d", "validLines").Rel("di", "docInfo").Rel("ai", "authorInfo").
		Join(monsoon.Between("d.text", `id="`, `" url=`), monsoon.Identity("di.name")).
		Join(monsoon.Between("d.text", `author="`, `" id=`), monsoon.Identity("ai.author")).
		Select(monsoon.Identity("di.kind"), monsoon.Str("book")).
		MustBuild()

	rep, err := monsoon.Run(q, cat,
		monsoon.WithSeed(3),
		monsoon.WithIterations(300),
		monsoon.WithTrace(func(s string) { fmt.Println("  [optimizer] " + s) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined rows (books with author metadata): %d\n", rep.Rows)
	fmt.Printf("optimizer: %d rounds, %d Σ collections, cost %.0f objects\n",
		rep.Executes, rep.SigmaOps, rep.Produced)

	// Show a couple of output rows end to end.
	nameIdx := rep.Output.Schema.MustLookup("di.name")
	affIdx := rep.Output.Schema.MustLookup("ai.affiliation")
	for i, row := range rep.Output.Rows {
		if i >= 3 {
			break
		}
		fmt.Printf("  doc %s -> %s\n", row[nameIdx].AsString(), row[affIdx].AsString())
	}
}
