// Package prior implements the seven general-purpose priors of §5.2 over the
// number of distinct values d(F, r|s), each conditioned on the cardinalities
// c(r) and c(s) of the expression the term is evaluated over and its join
// partner. The paper's experiments (Table 2) compare all seven and choose
// Spike-and-Slab as the default.
package prior

import (
	"math"
	"math/rand"

	"monsoon/internal/randx"
)

// Prior models uncertainty over a distinct-value count in [1, cr].
type Prior interface {
	// Name identifies the prior in experiment output.
	Name() string
	// Sample draws d(F, r|s) given c(r) and c(s).
	Sample(rng *rand.Rand, cr, cs float64) float64
	// Mean returns E[d(F, r|s)] given c(r) and c(s). Decision policies that
	// must act *without* knowledge of the sampled world (the MCTS default
	// rollout policy) estimate with the mean; sampling there would leak the
	// world's hidden statistics into supposedly blind plans.
	Mean(cr, cs float64) float64
}

func ceilClamp(x, cr float64) float64 {
	d := math.Ceil(x)
	if d < 1 {
		d = 1
	}
	if cr >= 1 && d > cr {
		d = cr
	}
	return d
}

// Uniform assumes the distinct count is uniform on {1..c(r)}.
type Uniform struct{}

// Name implements Prior.
func (Uniform) Name() string { return "Uniform" }

// Sample implements Prior.
func (Uniform) Sample(rng *rand.Rand, cr, _ float64) float64 {
	if cr <= 1 {
		return 1
	}
	return ceilClamp(rng.Float64()*cr, cr)
}

// Mean implements Prior.
func (Uniform) Mean(cr, _ float64) float64 { return ceilClamp(cr/2, cr) }

// Increasing is the optimistic prior: Beta(3,1)-shaped mass near c(r),
// assuming UDFs return many distinct values and queries return few results.
type Increasing struct{}

// Name implements Prior.
func (Increasing) Name() string { return "Increasing" }

// Sample implements Prior.
func (Increasing) Sample(rng *rand.Rand, cr, _ float64) float64 {
	return ceilClamp(randx.Beta(rng, 3, 1)*cr, cr)
}

// Mean implements Prior.
func (Increasing) Mean(cr, _ float64) float64 { return ceilClamp(0.75*cr, cr) }

// Decreasing is the pessimistic prior: Beta(1,3)-shaped mass near 1, assuming
// few distinct values and very large results.
type Decreasing struct{}

// Name implements Prior.
func (Decreasing) Name() string { return "Decreasing" }

// Sample implements Prior.
func (Decreasing) Sample(rng *rand.Rand, cr, _ float64) float64 {
	return ceilClamp(randx.Beta(rng, 1, 3)*cr, cr)
}

// Mean implements Prior.
func (Decreasing) Mean(cr, _ float64) float64 { return ceilClamp(0.25*cr, cr) }

// UShaped assumes distinct counts are either low or high: Beta(0.5, 0.5).
type UShaped struct{}

// Name implements Prior.
func (UShaped) Name() string { return "U-Shaped" }

// Sample implements Prior.
func (UShaped) Sample(rng *rand.Rand, cr, _ float64) float64 {
	return ceilClamp(randx.Beta(rng, 0.5, 0.5)*cr, cr)
}

// Mean implements Prior.
func (UShaped) Mean(cr, _ float64) float64 { return ceilClamp(0.5*cr, cr) }

// LowBiased is a moderated pessimist: Beta(2, 10), low but not tiny.
type LowBiased struct{}

// Name implements Prior.
func (LowBiased) Name() string { return "Low Biased" }

// Sample implements Prior.
func (LowBiased) Sample(rng *rand.Rand, cr, _ float64) float64 {
	return ceilClamp(randx.Beta(rng, 2, 10)*cr, cr)
}

// Mean implements Prior.
func (LowBiased) Mean(cr, _ float64) float64 { return ceilClamp(cr/6, cr) }

// SpikeAndSlab is the paper's recommended prior: an 80% uniform slab plus two
// 10% spikes at the foreign-key cases — d = c(r) (the term is a key of r,
// i.e. a foreign-key join from s into r) and d = c(s) (a foreign-key join
// from r into s).
type SpikeAndSlab struct{}

// Name implements Prior.
func (SpikeAndSlab) Name() string { return "Spike and Slab" }

// Sample implements Prior.
func (SpikeAndSlab) Sample(rng *rand.Rand, cr, cs float64) float64 {
	u := rng.Float64()
	switch {
	case u < 0.10:
		return ceilClamp(cr, cr)
	case u < 0.20:
		return ceilClamp(cs, cr)
	default:
		return Uniform{}.Sample(rng, cr, cs)
	}
}

// Mean implements Prior.
func (SpikeAndSlab) Mean(cr, cs float64) float64 {
	slab := 0.8 * cr / 2
	spikeR := 0.1 * cr
	spikeS := 0.1 * math.Min(cs, cr)
	return ceilClamp(slab+spikeR+spikeS, cr)
}

// Discrete is the deterministic rule d = 0.1·c(r) ([14]'s discrete prior with
// one atom; also the magic constant behind the Defaults baseline).
type Discrete struct{}

// Name implements Prior.
func (Discrete) Name() string { return "Discrete" }

// Sample implements Prior.
func (Discrete) Sample(_ *rand.Rand, cr, _ float64) float64 {
	return ceilClamp(0.1*cr, cr)
}

// Mean implements Prior.
func (Discrete) Mean(cr, _ float64) float64 { return ceilClamp(0.1*cr, cr) }

// All returns the seven priors in the order of Table 2.
func All() []Prior {
	return []Prior{Uniform{}, Increasing{}, Decreasing{}, UShaped{}, LowBiased{}, SpikeAndSlab{}, Discrete{}}
}

// ByName resolves a prior by its Table 2 name; it returns nil when unknown.
func ByName(name string) Prior {
	for _, p := range All() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// Default returns the prior the paper recommends (Spike and Slab).
func Default() Prior { return SpikeAndSlab{} }

// Density evaluates the continuous density (in normalized x = d/c(r) space)
// of the five smooth priors plotted in Figure 2. Spike components are not
// representable in a density plot and are reported by SpikeMass instead.
// Priors without a smooth density (Discrete) return 0 everywhere.
func Density(p Prior, x float64) float64 {
	switch p.(type) {
	case Uniform:
		if x > 0 && x < 1 {
			return 1
		}
		return 0
	case Increasing:
		return randx.BetaPDF(x, 3, 1)
	case Decreasing:
		return randx.BetaPDF(x, 1, 3)
	case UShaped:
		return randx.BetaPDF(x, 0.5, 0.5)
	case LowBiased:
		return randx.BetaPDF(x, 2, 10)
	case SpikeAndSlab:
		if x > 0 && x < 1 {
			return 0.8
		}
		return 0
	default:
		return 0
	}
}
