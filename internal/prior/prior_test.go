package prior

import (
	"math"
	"testing"

	"monsoon/internal/randx"
)

func TestAllSevenPresent(t *testing.T) {
	ps := All()
	if len(ps) != 7 {
		t.Fatalf("All() = %d priors, want 7", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"Uniform", "Increasing", "Decreasing", "U-Shaped",
		"Low Biased", "Spike and Slab", "Discrete"} {
		if !names[want] {
			t.Errorf("missing prior %q", want)
		}
	}
}

func TestByNameAndDefault(t *testing.T) {
	if ByName("Uniform") == nil || ByName("nope") != nil {
		t.Error("ByName wrong")
	}
	if Default().Name() != "Spike and Slab" {
		t.Error("Default must be Spike and Slab")
	}
}

func TestSamplesInRange(t *testing.T) {
	rng := randx.New(3)
	for _, p := range All() {
		for i := 0; i < 2000; i++ {
			cr := float64(1 + rng.Intn(10000))
			cs := float64(1 + rng.Intn(10000))
			d := p.Sample(rng, cr, cs)
			if d < 1 || d > cr {
				t.Fatalf("%s sampled %v outside [1, %v]", p.Name(), d, cr)
			}
			if d != math.Ceil(d) {
				t.Fatalf("%s sampled non-integer %v", p.Name(), d)
			}
		}
	}
}

func TestDegenerateCardinalities(t *testing.T) {
	rng := randx.New(5)
	for _, p := range All() {
		if d := p.Sample(rng, 1, 1); d != 1 {
			t.Errorf("%s with cr=1 must return 1, got %v", p.Name(), d)
		}
	}
}

func TestShapesViaMeans(t *testing.T) {
	rng := randx.New(7)
	cr, cs := 10000.0, 500.0
	mean := func(p Prior) float64 {
		sum := 0.0
		n := 40000
		for i := 0; i < n; i++ {
			sum += p.Sample(rng, cr, cs)
		}
		return sum / float64(n)
	}
	mUnif := mean(Uniform{})
	if math.Abs(mUnif-cr/2) > 0.03*cr {
		t.Errorf("Uniform mean = %v, want ~%v", mUnif, cr/2)
	}
	mInc := mean(Increasing{})
	if math.Abs(mInc-0.75*cr) > 0.03*cr {
		t.Errorf("Increasing mean = %v, want ~%v", mInc, 0.75*cr)
	}
	mDec := mean(Decreasing{})
	if math.Abs(mDec-0.25*cr) > 0.03*cr {
		t.Errorf("Decreasing mean = %v, want ~%v", mDec, 0.25*cr)
	}
	mLow := mean(LowBiased{})
	if math.Abs(mLow-cr/6) > 0.03*cr {
		t.Errorf("LowBiased mean = %v, want ~%v", mLow, cr/6)
	}
	if mInc <= mUnif || mUnif <= mDec || mDec <= mLow {
		t.Errorf("ordering violated: inc=%v unif=%v dec=%v low=%v", mInc, mUnif, mDec, mLow)
	}
}

func TestUShapedBimodal(t *testing.T) {
	rng := randx.New(9)
	cr := 1000.0
	low, high, mid := 0, 0, 0
	n := 30000
	for i := 0; i < n; i++ {
		d := (UShaped{}).Sample(rng, cr, cr)
		switch {
		case d < 0.1*cr:
			low++
		case d > 0.9*cr:
			high++
		case d > 0.45*cr && d < 0.55*cr:
			mid++
		}
	}
	if low <= mid || high <= mid {
		t.Errorf("U-shaped not bimodal: low=%d mid=%d high=%d", low, mid, high)
	}
}

func TestSpikeAndSlabAtoms(t *testing.T) {
	rng := randx.New(11)
	cr, cs := 10000.0, 137.0
	atCr, atCs := 0, 0
	n := 50000
	for i := 0; i < n; i++ {
		d := (SpikeAndSlab{}).Sample(rng, cr, cs)
		if d == cr {
			atCr++
		}
		if d == cs {
			atCs++
		}
	}
	// Each spike carries 10% mass (plus negligible slab mass at those atoms).
	if p := float64(atCr) / float64(n); math.Abs(p-0.10) > 0.01 {
		t.Errorf("P(d = c(r)) = %v, want ~0.10", p)
	}
	if p := float64(atCs) / float64(n); math.Abs(p-0.10) > 0.01 {
		t.Errorf("P(d = c(s)) = %v, want ~0.10", p)
	}
}

func TestSpikeAndSlabClampsForeignSpike(t *testing.T) {
	// When c(s) > c(r) the c(s) spike must clamp to c(r).
	rng := randx.New(13)
	for i := 0; i < 2000; i++ {
		if d := (SpikeAndSlab{}).Sample(rng, 100, 5000); d > 100 {
			t.Fatalf("spike exceeded c(r): %v", d)
		}
	}
}

func TestMeansMatchEmpiricalAverages(t *testing.T) {
	rng := randx.New(77)
	cr, cs := 10000.0, 300.0
	for _, p := range All() {
		n := 40000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += p.Sample(rng, cr, cs)
		}
		emp := sum / float64(n)
		mean := p.Mean(cr, cs)
		if math.Abs(emp-mean) > 0.03*cr+1 {
			t.Errorf("%s: Mean() = %v but empirical average = %v", p.Name(), mean, emp)
		}
	}
}

func TestMeanBounds(t *testing.T) {
	for _, p := range All() {
		if m := p.Mean(1, 1); m != 1 {
			t.Errorf("%s Mean(1,1) = %v, want 1", p.Name(), m)
		}
		if m := p.Mean(100, 1e9); m < 1 || m > 100 {
			t.Errorf("%s Mean out of [1, cr]: %v", p.Name(), m)
		}
	}
}

func TestDiscreteDeterministic(t *testing.T) {
	rng := randx.New(15)
	if d := (Discrete{}).Sample(rng, 1000, 77); d != 100 {
		t.Errorf("Discrete = %v, want 100", d)
	}
	if d := (Discrete{}).Sample(rng, 5, 1); d != 1 {
		t.Errorf("Discrete of tiny table = %v, want 1 (ceil clamp)", d)
	}
}

func TestDensities(t *testing.T) {
	// The five plotted priors must have positive density inside (0,1); the
	// uniform and spike-slab slabs must be flat.
	for _, p := range []Prior{Uniform{}, Increasing{}, Decreasing{}, UShaped{}, LowBiased{}} {
		if Density(p, 0.5) <= 0 {
			t.Errorf("%s density at 0.5 must be positive", p.Name())
		}
		if Density(p, -0.1) != 0 || Density(p, 1.1) != 0 {
			t.Errorf("%s density outside (0,1) must be 0", p.Name())
		}
	}
	if Density(Uniform{}, 0.2) != Density(Uniform{}, 0.8) {
		t.Error("uniform density must be flat")
	}
	if Density(SpikeAndSlab{}, 0.5) != 0.8 {
		t.Error("spike-and-slab slab density must be 0.8")
	}
	if Density(Discrete{}, 0.5) != 0 {
		t.Error("discrete prior has no smooth density")
	}
	// Increasing rises, Decreasing falls.
	if Density(Increasing{}, 0.9) <= Density(Increasing{}, 0.1) {
		t.Error("Increasing density must increase")
	}
	if Density(Decreasing{}, 0.9) >= Density(Decreasing{}, 0.1) {
		t.Error("Decreasing density must decrease")
	}
}
