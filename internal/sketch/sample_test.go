package sketch

import "testing"

// TestEstimatorEdgeCases is the table-driven edge grid for the two
// sample-based distinct-count estimators. The load-bearing row is the empty
// sample: both must report 0 distinct values (no evidence means no phantom
// value — a spurious 1 turns every empty-vs-nonempty comparison downstream
// into a +Inf q-error), while the ≥1 clamp still applies the moment at least
// one value was seen.
func TestEstimatorEdgeCases(t *testing.T) {
	singleton := map[uint64]int{42: 1}
	hot := map[uint64]int{7: 50}
	mixed := map[uint64]int{1: 1, 2: 1, 3: 48}
	for _, tc := range []struct {
		name       string
		freqs      map[uint64]int
		sampleSize int
		population int64
		wantZero   bool // exact-zero expectation (empty-sample contract)
		min, max   float64
	}{
		{name: "nil sample", freqs: nil, sampleSize: 0, population: 100, wantZero: true},
		{name: "empty map", freqs: map[uint64]int{}, sampleSize: 0, population: 100, wantZero: true},
		{name: "zero sampleSize with stale freqs", freqs: singleton, sampleSize: 0, population: 100, wantZero: true},
		{name: "empty freqs with positive sampleSize", freqs: map[uint64]int{}, sampleSize: 10, population: 100, wantZero: true},
		{name: "single row sample", freqs: singleton, sampleSize: 1, population: 1, min: 1, max: 1},
		{name: "one hot value keeps >=1 clamp", freqs: hot, sampleSize: 50, population: 1e6, min: 1, max: 1e6},
		// Population smaller than the sample is an inconsistent input: GEE
		// caps at the population, Shlosser's full-sample shortcut reports the
		// observed distinct count — both stay bounded by it.
		{name: "population smaller than sample", freqs: mixed, sampleSize: 50, population: 2, min: 0, max: 3},
		{name: "full sample is exact-ish", freqs: mixed, sampleSize: 50, population: 50, min: 3, max: 50},
	} {
		for estName, est := range map[string]func(map[uint64]int, int, int64) float64{
			"GEE": GEE, "Shlosser": Shlosser,
		} {
			got := est(tc.freqs, tc.sampleSize, tc.population)
			if tc.wantZero {
				if got != 0 {
					t.Errorf("%s/%s = %v, want exactly 0", estName, tc.name, got)
				}
				continue
			}
			if got < tc.min || got > tc.max {
				t.Errorf("%s/%s = %v, want in [%v, %v]", estName, tc.name, got, tc.min, tc.max)
			}
		}
	}
	// Shlosser's full-sample shortcut returns the observed distinct count.
	if d := Shlosser(mixed, 50, 50); d != 3 {
		t.Errorf("Shlosser full sample = %v, want 3", d)
	}
}
