package sketch

import (
	"math"
	"math/rand"
)

// Reservoir maintains a uniform sample of fixed capacity over a stream of
// row indices using Vitter's Algorithm R. The engine's Sampling optimizer
// uses it when block sampling is not applicable (e.g. sampling join outputs).
type Reservoir struct {
	capacity int
	seen     int64
	items    []int
	rng      *rand.Rand
}

// NewReservoir creates a reservoir holding at most capacity items.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity <= 0 {
		panic("sketch: reservoir capacity must be positive")
	}
	return &Reservoir{capacity: capacity, rng: rng}
}

// Offer presents one stream element (by caller-defined id).
func (r *Reservoir) Offer(id int) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, id)
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.capacity) {
		r.items[j] = id
	}
}

// Items returns the current sample. The slice aliases internal state.
func (r *Reservoir) Items() []int { return r.items }

// Seen reports how many elements have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// GEE implements the Guaranteed-Error Estimator of Charikar et al. for
// estimating the number of distinct values in a population of size n from a
// uniform sample: D = sqrt(n/r) * f1 + sum_{j>=2} f_j, where f_j is the
// number of values appearing exactly j times in a sample of size r.
func GEE(sampleFreqs map[uint64]int, sampleSize int, populationSize int64) float64 {
	// An empty sample carries no evidence of any value: report 0 distinct
	// rather than inventing a phantom one (the ≥1 clamp below applies only
	// once at least one value was seen). Empty inputs otherwise feed +Inf
	// q-errors into every empty-vs-nonempty comparison downstream.
	if sampleSize <= 0 || len(sampleFreqs) == 0 {
		return 0
	}
	f1 := 0
	higher := 0
	for _, c := range sampleFreqs {
		if c == 1 {
			f1++
		} else {
			higher++
		}
	}
	scale := math.Sqrt(float64(populationSize) / float64(sampleSize))
	d := scale*float64(f1) + float64(higher)
	if d < 1 {
		d = 1
	}
	if d > float64(populationSize) {
		d = float64(populationSize)
	}
	return d
}

// Shlosser implements Shlosser's estimator, a second sample-based
// distinct-count estimator kept for cross-checking GEE in tests and in the
// Sampling option's diagnostics: D = d + f1 * A/B with q = r/n.
func Shlosser(sampleFreqs map[uint64]int, sampleSize int, populationSize int64) float64 {
	// Like GEE: an empty sample means 0 distinct values, not 1; the ≥1
	// clamp is for non-empty samples only.
	if sampleSize <= 0 || len(sampleFreqs) == 0 {
		return 0
	}
	q := float64(sampleSize) / float64(populationSize)
	if q >= 1 {
		return float64(len(sampleFreqs))
	}
	maxFreq := 0
	freqOf := map[int]int{} // j -> f_j
	for _, c := range sampleFreqs {
		freqOf[c]++
		if c > maxFreq {
			maxFreq = c
		}
	}
	num, den := 0.0, 0.0
	oneMinusQ := 1 - q
	for j := 1; j <= maxFreq; j++ {
		fj := float64(freqOf[j])
		num += math.Pow(oneMinusQ, float64(j)) * fj
		den += float64(j) * q * math.Pow(oneMinusQ, float64(j-1)) * fj
	}
	d := float64(len(sampleFreqs))
	if den > 0 {
		d += float64(freqOf[1]) * num / den
	}
	if d < 1 {
		d = 1
	}
	if d > float64(populationSize) {
		d = float64(populationSize)
	}
	return d
}

// BlockSample returns the row indices of a block-based sample: whole blocks
// of blockSize consecutive rows are chosen until at least target rows are
// collected (or the table is exhausted). This mirrors the paper's Sampling
// option, which samples 2% of each base table block-wise up to a cap.
func BlockSample(n int, blockSize, target int, rng *rand.Rand) []int {
	if n <= 0 || target <= 0 {
		return nil
	}
	if target >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	numBlocks := (n + blockSize - 1) / blockSize
	order := rng.Perm(numBlocks)
	out := make([]int, 0, target+blockSize)
	for _, b := range order {
		start := b * blockSize
		end := start + blockSize
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			out = append(out, i)
		}
		if len(out) >= target {
			break
		}
	}
	return out
}
