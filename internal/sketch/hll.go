// Package sketch implements the one-pass statistics machinery the paper's
// optimizers rely on: HyperLogLog distinct counting (Heule et al. style, used
// by the Σ operator and the On-Demand option), linear probabilistic counting
// (Whang et al.), reservoir sampling (Vitter's Algorithm R), and the
// Charikar et al. GEE family of sample-based distinct-value estimators (used
// by the Sampling option). An exact counter is provided for tests and for the
// offline full-statistics baseline.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct-value counter. It is not safe for concurrent
// use; clone per goroutine and Merge afterwards.
type HLL struct {
	p         uint8 // precision: number of index bits
	m         int   // number of registers, 1<<p
	registers []uint8
}

// NewHLL creates a HyperLogLog sketch with 2^p registers. Valid p is 4..18;
// p=14 gives ~0.8% relative error in ~16 KiB and is the default used by the
// engine's Σ operator.
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 18 {
		panic(fmt.Sprintf("sketch: HLL precision %d out of range [4,18]", p))
	}
	m := 1 << p
	return &HLL{p: p, m: m, registers: make([]uint8, m)}
}

// fmix64 is the MurmurHash3 finalizer; it decorrelates the register index
// bits from whatever upstream hash the caller used.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add records one 64-bit hashed item.
func (h *HLL) Add(hash uint64) {
	hash = fmix64(hash)
	idx := hash >> (64 - h.p)
	rest := hash<<h.p | 1<<(h.p-1) // guarantee a set bit to bound rho
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > h.registers[idx] {
		h.registers[idx] = rho
	}
}

// Merge folds another sketch of identical precision into h.
func (h *HLL) Merge(o *HLL) {
	if h.p != o.p {
		panic("sketch: cannot merge HLLs of different precision")
	}
	for i, v := range o.registers {
		if v > h.registers[i] {
			h.registers[i] = v
		}
	}
}

// Estimate returns the estimated number of distinct items added.
func (h *HLL) Estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, v := range h.registers {
		sum += 1 / float64(uint64(1)<<v)
		if v == 0 {
			zeros++
		}
	}
	m := float64(h.m)
	est := alpha(h.m) * m * m / sum
	// Small-range correction: fall back to linear counting while registers
	// remain empty (the regime where raw HLL is biased high).
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return est
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// LinearCounter is Whang et al.'s linear probabilistic counter: a bitmap of
// size m; the estimate is m * ln(m / zeroes). It is accurate while the load
// factor stays moderate and is kept as the paper's reference [44] technique.
type LinearCounter struct {
	bitmap []uint64
	m      int
}

// NewLinearCounter creates a counter with m bits (rounded up to a multiple of
// 64).
func NewLinearCounter(m int) *LinearCounter {
	if m <= 0 {
		panic("sketch: LinearCounter size must be positive")
	}
	words := (m + 63) / 64
	return &LinearCounter{bitmap: make([]uint64, words), m: words * 64}
}

// Add records one hashed item.
func (l *LinearCounter) Add(hash uint64) {
	pos := hash % uint64(l.m)
	l.bitmap[pos/64] |= 1 << (pos % 64)
}

// Estimate returns the estimated distinct count.
func (l *LinearCounter) Estimate() float64 {
	ones := 0
	for _, w := range l.bitmap {
		ones += bits.OnesCount64(w)
	}
	zeros := l.m - ones
	if zeros == 0 {
		// Saturated: the estimator diverges; report the best lower bound.
		return float64(l.m) * math.Log(float64(l.m))
	}
	return float64(l.m) * math.Log(float64(l.m)/float64(zeros))
}

// Exact counts distinct 64-bit hashes exactly; it exists for tests and for
// the offline full-statistics "Postgres" baseline where statistics are
// computed outside the measured window.
type Exact struct {
	seen map[uint64]struct{}
}

// NewExact creates an exact counter.
func NewExact() *Exact { return &Exact{seen: make(map[uint64]struct{})} }

// Add records one hashed item.
func (e *Exact) Add(hash uint64) { e.seen[hash] = struct{}{} }

// Estimate returns the exact distinct count.
func (e *Exact) Estimate() float64 { return float64(len(e.seen)) }

// Counter is the interface shared by all distinct counters in this package.
type Counter interface {
	Add(hash uint64)
	Estimate() float64
}

var (
	_ Counter = (*HLL)(nil)
	_ Counter = (*LinearCounter)(nil)
	_ Counter = (*Exact)(nil)
)
