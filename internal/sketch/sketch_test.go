package sketch

import (
	"math"
	"testing"

	"monsoon/internal/randx"
	"monsoon/internal/value"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50000, 500000} {
		h := NewHLL(14)
		for i := 0; i < n; i++ {
			h.Add(value.Int(int64(i)).Hash())
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("HLL(p=14) on %d distinct: est %.0f, rel err %.3f", n, est, relErr)
		}
	}
}

func TestHLLDuplicatesDontInflate(t *testing.T) {
	h := NewHLL(12)
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 1000; i++ {
			h.Add(value.Int(int64(i)).Hash())
		}
	}
	est := h.Estimate()
	if math.Abs(est-1000) > 100 {
		t.Errorf("HLL with duplicates: est %.0f, want ~1000", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 5000; i++ {
		a.Add(value.Int(int64(i)).Hash())
	}
	for i := 2500; i < 7500; i++ {
		b.Add(value.Int(int64(i)).Hash())
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-7500)/7500 > 0.06 {
		t.Errorf("merged HLL est %.0f, want ~7500", est)
	}
}

func TestHLLMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched precisions must panic")
		}
	}()
	NewHLL(12).Merge(NewHLL(13))
}

func TestHLLBadPrecisionPanics(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHLL(%d) must panic", p)
				}
			}()
			NewHLL(p)
		}()
	}
}

func TestHLLEmpty(t *testing.T) {
	if est := NewHLL(10).Estimate(); est != 0 {
		t.Errorf("empty HLL estimate = %v, want 0", est)
	}
}

func TestLinearCounterAccuracy(t *testing.T) {
	l := NewLinearCounter(1 << 16)
	n := 5000
	for i := 0; i < n; i++ {
		l.Add(value.Int(int64(i)).Hash())
	}
	est := l.Estimate()
	if math.Abs(est-float64(n))/float64(n) > 0.05 {
		t.Errorf("linear counter est %.0f, want ~%d", est, n)
	}
}

func TestLinearCounterSaturation(t *testing.T) {
	l := NewLinearCounter(64)
	for i := 0; i < 100000; i++ {
		l.Add(value.Int(int64(i)).Hash())
	}
	if est := l.Estimate(); est <= 0 || math.IsInf(est, 0) || math.IsNaN(est) {
		t.Errorf("saturated counter must return a finite positive bound, got %v", est)
	}
}

func TestLinearCounterBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLinearCounter(0) must panic")
		}
	}()
	NewLinearCounter(0)
}

func TestExact(t *testing.T) {
	e := NewExact()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 123; i++ {
			e.Add(value.Int(int64(i)).Hash())
		}
	}
	if e.Estimate() != 123 {
		t.Errorf("exact counter = %v, want 123", e.Estimate())
	}
}

func TestReservoirUniformity(t *testing.T) {
	rng := randx.New(31)
	hits := make([]int, 100)
	trials := 3000
	for trial := 0; trial < trials; trial++ {
		res := NewReservoir(10, rng)
		for i := 0; i < 100; i++ {
			res.Offer(i)
		}
		if res.Seen() != 100 || len(res.Items()) != 10 {
			t.Fatalf("reservoir state wrong: seen=%d len=%d", res.Seen(), len(res.Items()))
		}
		for _, id := range res.Items() {
			hits[id]++
		}
	}
	// Each element should be sampled with probability 10/100 = 0.1.
	for i, h := range hits {
		p := float64(h) / float64(trials)
		if math.Abs(p-0.1) > 0.03 {
			t.Errorf("element %d sampled with p=%.3f, want ~0.1", i, p)
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	res := NewReservoir(10, randx.New(1))
	for i := 0; i < 5; i++ {
		res.Offer(i)
	}
	if len(res.Items()) != 5 {
		t.Errorf("reservoir over short stream should hold all items, got %d", len(res.Items()))
	}
}

func TestGEEBounds(t *testing.T) {
	// All-singletons sample: D should be sqrt(n/r)*r, capped by n.
	freqs := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		freqs[i] = 1
	}
	d := GEE(freqs, 100, 10000)
	want := math.Sqrt(10000.0/100.0) * 100
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("GEE all-singletons = %v, want %v", d, want)
	}
	// One hot value: D should stay small.
	d = GEE(map[uint64]int{7: 100}, 100, 10000)
	if d != 1 {
		t.Errorf("GEE single hot value = %v, want 1", d)
	}
	// Cap at population size.
	d = GEE(freqs, 100, 120)
	if d > 120 {
		t.Errorf("GEE exceeded population: %v", d)
	}
	if GEE(nil, 0, 100) != 0 {
		t.Error("GEE on empty sample should return 0, not a phantom distinct value")
	}
}

func TestShlosserBehaviour(t *testing.T) {
	// Full sample: exact.
	freqs := map[uint64]int{1: 2, 2: 3, 3: 1}
	if d := Shlosser(freqs, 6, 6); d != 3 {
		t.Errorf("Shlosser on full sample = %v, want 3", d)
	}
	// Sparse singleton sample should extrapolate above observed distinct.
	sing := map[uint64]int{}
	for i := uint64(0); i < 50; i++ {
		sing[i] = 1
	}
	d := Shlosser(sing, 50, 5000)
	if d <= 50 {
		t.Errorf("Shlosser should extrapolate past observed distinct, got %v", d)
	}
	if d > 5000 {
		t.Errorf("Shlosser exceeded population: %v", d)
	}
	if Shlosser(nil, 0, 10) != 0 {
		t.Error("Shlosser on empty sample should return 0, not a phantom distinct value")
	}
}

func TestEstimatorsOnZipfData(t *testing.T) {
	// Generate a skewed population, take a uniform sample, check both
	// estimators land within a loose factor of the truth.
	rng := randx.New(37)
	z := randx.NewZipf(2000, 1.0)
	population := make([]uint64, 100000)
	truth := map[uint64]bool{}
	for i := range population {
		v := uint64(z.Draw(rng))
		population[i] = v
		truth[v] = true
	}
	sampleSize := 5000
	freqs := map[uint64]int{}
	for i := 0; i < sampleSize; i++ {
		freqs[population[rng.Intn(len(population))]]++
	}
	want := float64(len(truth))
	for name, got := range map[string]float64{
		"GEE":      GEE(freqs, sampleSize, int64(len(population))),
		"Shlosser": Shlosser(freqs, sampleSize, int64(len(population))),
	} {
		if got < want/10 || got > want*10 {
			t.Errorf("%s estimate %v too far from truth %v", name, got, want)
		}
	}
}

func TestBlockSample(t *testing.T) {
	rng := randx.New(41)
	s := BlockSample(1000, 100, 250, rng)
	if len(s) < 250 || len(s) > 300 {
		t.Errorf("block sample size %d, want 250..300", len(s))
	}
	seen := map[int]bool{}
	for _, i := range s {
		if i < 0 || i >= 1000 {
			t.Fatalf("index out of bounds: %d", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// Target >= n returns everything.
	all := BlockSample(50, 10, 100, rng)
	if len(all) != 50 {
		t.Errorf("oversized target should return all rows, got %d", len(all))
	}
	if BlockSample(0, 10, 10, rng) != nil {
		t.Error("empty table should sample nil")
	}
}

func TestBlockSampleZeroBlockSize(t *testing.T) {
	rng := randx.New(43)
	s := BlockSample(100, 0, 10, rng)
	if len(s) < 10 {
		t.Errorf("blockSize 0 should degrade to row sampling, got %d rows", len(s))
	}
}
