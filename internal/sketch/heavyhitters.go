package sketch

import "sort"

// SpaceSaving is the Metwally et al. heavy-hitters sketch: it tracks (up to)
// k candidate hot values with approximate counts in O(k) space. The paper
// notes (§2.2, §6.2.2) that full statistics systems also keep "heavy hitters
// i.e., most common values with their frequencies" — pg_stats' MCV lists —
// though its fair comparison restricts every option to distinct counts.
// This sketch backs the estimate-quality extension experiments and is
// available to downstream users building richer cost models.
type SpaceSaving struct {
	k      int
	counts map[uint64]*ssEntry
	total  int64
}

type ssEntry struct {
	count int64
	err   int64 // overestimation bound inherited from the evicted entry
}

// NewSpaceSaving creates a sketch tracking up to k values.
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		panic("sketch: SpaceSaving k must be positive")
	}
	return &SpaceSaving{k: k, counts: make(map[uint64]*ssEntry, k)}
}

// Add records one hashed item.
func (s *SpaceSaving) Add(hash uint64) {
	s.total++
	if e, ok := s.counts[hash]; ok {
		e.count++
		return
	}
	if len(s.counts) < s.k {
		s.counts[hash] = &ssEntry{count: 1}
		return
	}
	// Evict the minimum-count entry; the newcomer inherits its count as the
	// classic SpaceSaving overestimation bound.
	var minHash uint64
	var minEntry *ssEntry
	for h, e := range s.counts {
		if minEntry == nil || e.count < minEntry.count {
			minHash, minEntry = h, e
		}
	}
	delete(s.counts, minHash)
	s.counts[hash] = &ssEntry{count: minEntry.count + 1, err: minEntry.count}
}

// HeavyHitter is one reported hot value.
type HeavyHitter struct {
	Hash uint64
	// Count is the estimated frequency (an overestimate by at most Err).
	Count int64
	// Err bounds the overestimation.
	Err int64
}

// Top returns the tracked values whose guaranteed count (Count - Err)
// exceeds the given fraction of the stream, most frequent first.
func (s *SpaceSaving) Top(minFraction float64) []HeavyHitter {
	threshold := int64(minFraction * float64(s.total))
	var out []HeavyHitter
	for h, e := range s.counts {
		if e.count-e.err >= threshold {
			out = append(out, HeavyHitter{Hash: h, Count: e.count, Err: e.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// Total reports how many items were added.
func (s *SpaceSaving) Total() int64 { return s.total }
