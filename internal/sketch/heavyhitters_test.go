package sketch

import (
	"testing"

	"monsoon/internal/randx"
	"monsoon/internal/value"
)

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Add(value.Int(int64(i)).Hash())
		}
	}
	if s.Total() != 15 {
		t.Errorf("total = %d", s.Total())
	}
	top := s.Top(0)
	if len(top) != 5 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Count != 5 || top[0].Err != 0 {
		t.Errorf("hottest = %+v, want count 5 err 0", top[0])
	}
	if top[4].Count != 1 {
		t.Errorf("coldest = %+v, want count 1", top[4])
	}
}

func TestSpaceSavingFindsHeavyHittersUnderPressure(t *testing.T) {
	rng := randx.New(3)
	s := NewSpaceSaving(20)
	// Two genuinely hot values drowned in uniform noise.
	hotA := value.Int(100001).Hash()
	hotB := value.Int(100002).Hash()
	for i := 0; i < 30000; i++ {
		switch {
		case i%5 == 0:
			s.Add(hotA)
		case i%7 == 0:
			s.Add(hotB)
		default:
			s.Add(value.Int(rng.Int63n(5000)).Hash())
		}
	}
	top := s.Top(0.05)
	found := map[uint64]bool{}
	for _, h := range top {
		found[h.Hash] = true
	}
	if !found[hotA] || !found[hotB] {
		t.Errorf("hot values missing from %d reported hitters", len(top))
	}
	// Estimated frequency of hotA (~20%) must be sane: overestimates only,
	// and not beyond the error bound.
	for _, h := range top {
		if h.Hash != hotA {
			continue
		}
		trueCount := int64(30000 / 5)
		if h.Count < trueCount {
			t.Errorf("SpaceSaving must overestimate: got %d < %d", h.Count, trueCount)
		}
		if h.Count-h.Err > trueCount {
			t.Errorf("guaranteed count %d exceeds the truth %d", h.Count-h.Err, trueCount)
		}
	}
}

func TestSpaceSavingBoundedMemory(t *testing.T) {
	s := NewSpaceSaving(8)
	for i := 0; i < 100000; i++ {
		s.Add(value.Int(int64(i)).Hash())
	}
	if len(s.counts) > 8 {
		t.Errorf("sketch grew past k: %d entries", len(s.counts))
	}
}

func TestSpaceSavingPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpaceSaving(0) must panic")
		}
	}()
	NewSpaceSaving(0)
}
