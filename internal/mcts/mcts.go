// Package mcts is the online MDP solver of §5.1: Monte-Carlo tree search
// with two selection strategies — UCT (upper confidence bound for trees,
// w = √2, rewards min-max normalized to [0,1]) and adaptive ε-greedy
// (ε decaying 1 → 0.1 with iteration progress).
//
// Transitions may be stochastic (the EXECUTE action of the Monsoon MDP):
// the tree keeps a chance layer under each such action, keyed by the
// successor state's OutcomeKey, so that recurring sampled outcomes — e.g.
// the atoms of a spike-and-slab prior — share and refine one subtree.
package mcts

import (
	"math"
	"math/rand"
)

// State is an MDP state as seen by the planner.
type State interface {
	// Terminal reports whether the episode is over.
	Terminal() bool
	// OutcomeKey buckets this state among the possible outcomes of a
	// stochastic transition; it only needs to discriminate between
	// materially different sampled worlds.
	OutcomeKey() string
}

// Action is an MDP action; Key must uniquely identify it within its state.
type Action interface {
	Key() string
}

// Model is the MDP simulator MCTS plans against.
type Model interface {
	// Legal enumerates the actions available in s; empty means terminal or
	// stuck (treated as terminal).
	Legal(s State) []Action
	// Step simulates taking a in s. It must not mutate s. stochastic
	// reports whether the transition sampled randomness (a chance node).
	Step(s State, a Action) (next State, reward float64, stochastic bool)
}

// RolloutModel lets a model bias the default-policy phase; without it,
// rollouts pick uniformly among legal actions.
type RolloutModel interface {
	RolloutAction(s State, rng *rand.Rand) Action
}

// Strategy selects among the two §5.1 selection strategies.
type Strategy uint8

// The selection strategies.
const (
	UCT Strategy = iota
	EpsGreedy
)

// Config parameterizes a Planner.
type Config struct {
	// Strategy picks the selection rule; default UCT.
	Strategy Strategy
	// W is the UCT exploration weight; default √2.
	W float64
	// Iterations is the rollout budget per planning call; default 1000.
	Iterations int
	// MaxDepth caps simulation length as a safety net; default 200.
	MaxDepth int
	// EpsMin is the ε-greedy floor; default 0.1.
	EpsMin float64
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = math.Sqrt2
	}
	if c.Iterations == 0 {
		c.Iterations = 1000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 200
	}
	if c.EpsMin == 0 {
		c.EpsMin = 0.1
	}
	return c
}

// PlanStats describes the search behind the most recent Plan call, for
// observability: how much work the planner did and how deep it looked.
type PlanStats struct {
	// RootActions is the number of legal actions at the planning root.
	RootActions int
	// Rollouts is the number of simulation passes actually run; 0 when the
	// root had at most one action (the fast path skips the search).
	Rollouts int
	// MaxDepth is the deepest tree (selection) depth any pass reached.
	MaxDepth int
	// Nodes is the number of decision nodes created.
	Nodes int
	// FastPath marks a call decided without search (≤ 1 legal action).
	FastPath bool
	// Workers is the number of OS threads the search actually ran on: 1 for
	// the serial planner and for root-parallel searches forced serial (one
	// shard, unforkable model); plans are identical for every value.
	Workers int
	// Line is the principal variation the search settled on: the action key
	// MCTS picks at the root followed by the best-average action at each
	// successive decision node (descending through the most-visited outcome
	// of stochastic edges), until a terminal, unexpanded, or never-visited
	// node. The driver memoizes it in the plan cache and attaches it to plan
	// spans; on the fast path it holds just the forced action.
	Line []string
}

// Planner runs MCTS. It is not safe for concurrent use.
type Planner struct {
	cfg Config
	rng *rand.Rand

	minRet, maxRet float64
	haveRet        bool
	last           PlanStats
}

// LastStats reports the statistics of the most recent Plan call.
func (p *Planner) LastStats() PlanStats { return p.last }

// New creates a planner with the given configuration and randomness.
func New(cfg Config, rng *rand.Rand) *Planner {
	return &Planner{cfg: cfg.withDefaults(), rng: rng}
}

type edge struct {
	action Action
	visits int
	total  float64
	kids   map[string]*node // outcome key → successor decision node
}

type node struct {
	state   State
	actions []Action
	edges   []*edge
	visits  int
}

func (p *Planner) newNode(m Model, s State) *node {
	n := &node{state: s}
	if !s.Terminal() {
		n.actions = m.Legal(s)
		n.edges = make([]*edge, len(n.actions))
	}
	p.last.Nodes++
	return n
}

// Plan runs the configured number of iterations from root and returns the
// action with the best average return, or nil if root is terminal/stuck.
func (p *Planner) Plan(m Model, root State) Action {
	p.last = PlanStats{Workers: 1}
	rootNode := p.newNode(m, root)
	p.last.RootActions = len(rootNode.actions)
	if len(rootNode.actions) == 0 {
		p.last.FastPath = true
		return nil
	}
	if len(rootNode.actions) == 1 {
		p.last.FastPath = true
		p.last.Line = []string{rootNode.actions[0].Key()}
		return rootNode.actions[0]
	}
	p.search(m, rootNode)
	p.last.Line = principalVariation(rootNode, p.cfg.MaxDepth)
	best := bestVisited(rootNode)
	if best < 0 {
		p.last.Line = []string{rootNode.actions[0].Key()}
		return rootNode.actions[0]
	}
	return rootNode.actions[best]
}

// search runs the configured iteration budget from rootNode. Factored out of
// Plan so the root-parallel planner can run one shard's quota against a
// shard-private tree with exactly the serial pass structure.
func (p *Planner) search(m Model, rootNode *node) {
	p.minRet, p.maxRet, p.haveRet = 0, 0, false
	for i := 0; i < p.cfg.Iterations; i++ {
		p.simulate(m, rootNode, 0, i)
		p.last.Rollouts++
	}
}

// bestVisited returns the index of the visited edge with the best average
// return, -1 when no edge was visited.
func bestVisited(n *node) int {
	best := -1
	bestVal := math.Inf(-1)
	for i, e := range n.edges {
		if e == nil || e.visits == 0 {
			continue
		}
		v := e.total / float64(e.visits)
		if v > bestVal {
			bestVal = v
			best = i
		}
	}
	return best
}

// principalVariation extracts the search's settled line of play: follow the
// best-average edge at each decision node, and the most-visited outcome
// (ties broken by key for determinism) under each stochastic edge.
func principalVariation(n *node, maxDepth int) []string {
	var line []string
	for n != nil && len(line) < maxDepth {
		i := bestVisited(n)
		if i < 0 {
			break
		}
		e := n.edges[i]
		line = append(line, e.action.Key())
		var next *node
		bestVisits, bestKey := -1, ""
		for key, child := range e.kids {
			if child.visits > bestVisits || (child.visits == bestVisits && key < bestKey) {
				bestVisits, bestKey, next = child.visits, key, child
			}
		}
		n = next
	}
	return line
}

// simulate runs one selection→expansion→rollout→backpropagation pass and
// returns the cumulative return observed from n downward.
func (p *Planner) simulate(m Model, n *node, depth, iter int) float64 {
	if depth > p.last.MaxDepth {
		p.last.MaxDepth = depth
	}
	if n.state.Terminal() || len(n.actions) == 0 || depth >= p.cfg.MaxDepth {
		return 0
	}
	idx := p.selectEdge(n, iter)
	freshlyExpanded := false
	if n.edges[idx] == nil {
		n.edges[idx] = &edge{action: n.actions[idx], kids: make(map[string]*node)}
		freshlyExpanded = true
	}
	e := n.edges[idx]
	next, reward, _ := m.Step(n.state, e.action)
	key := next.OutcomeKey()
	child, ok := e.kids[key]
	if !ok {
		child = p.newNode(m, next)
		e.kids[key] = child
	}
	var ret float64
	if freshlyExpanded {
		ret = reward + p.rollout(m, next, depth+1)
	} else {
		ret = reward + p.simulate(m, child, depth+1, iter)
	}
	e.visits++
	e.total += ret
	n.visits++
	child.visits++
	p.observe(ret)
	return ret
}

// rollout plays the default policy to a terminal state.
func (p *Planner) rollout(m Model, s State, depth int) float64 {
	total := 0.0
	rm, biased := m.(RolloutModel)
	for !s.Terminal() && depth < p.cfg.MaxDepth {
		var a Action
		if biased {
			a = rm.RolloutAction(s, p.rng)
		} else {
			legal := m.Legal(s)
			if len(legal) == 0 {
				break
			}
			a = legal[p.rng.Intn(len(legal))]
		}
		if a == nil {
			break
		}
		next, reward, _ := m.Step(s, a)
		total += reward
		s = next
		depth++
	}
	return total
}

func (p *Planner) observe(ret float64) {
	if !p.haveRet {
		p.minRet, p.maxRet, p.haveRet = ret, ret, true
		return
	}
	if ret < p.minRet {
		p.minRet = ret
	}
	if ret > p.maxRet {
		p.maxRet = ret
	}
}

// normalize maps a return into [0,1] using the running min/max.
func (p *Planner) normalize(ret float64) float64 {
	if !p.haveRet || p.maxRet == p.minRet {
		return 0.5
	}
	return (ret - p.minRet) / (p.maxRet - p.minRet)
}

func (p *Planner) selectEdge(n *node, iter int) int {
	switch p.cfg.Strategy {
	case EpsGreedy:
		return p.selectEpsGreedy(n, iter)
	default:
		return p.selectUCT(n)
	}
}

// selectUCT returns an unvisited edge if any (expansion), else the UCB1
// maximizer r̄ + w·√(ln v_p / v_c).
func (p *Planner) selectUCT(n *node) int {
	for i, e := range n.edges {
		if e == nil || e.visits == 0 {
			return i
		}
	}
	best, bestVal := 0, math.Inf(-1)
	lnP := math.Log(float64(n.visits) + 1)
	for i, e := range n.edges {
		exploit := p.normalize(e.total / float64(e.visits))
		explore := p.cfg.W * math.Sqrt(lnP/float64(e.visits))
		if v := exploit + explore; v > bestVal {
			bestVal = v
			best = i
		}
	}
	return best
}

// selectEpsGreedy explores with probability ε (decayed exponentially from 1
// toward EpsMin over the iteration budget, after [40]) and exploits the best
// average return otherwise. Unvisited edges are preferred while exploring.
func (p *Planner) selectEpsGreedy(n *node, iter int) int {
	eps := math.Exp(-4 * float64(iter) / float64(p.cfg.Iterations))
	if eps < p.cfg.EpsMin {
		eps = p.cfg.EpsMin
	}
	if p.rng.Float64() < eps {
		var unvisited []int
		for i, e := range n.edges {
			if e == nil || e.visits == 0 {
				unvisited = append(unvisited, i)
			}
		}
		if len(unvisited) > 0 {
			return unvisited[p.rng.Intn(len(unvisited))]
		}
		return p.rng.Intn(len(n.edges))
	}
	best, bestVal := -1, math.Inf(-1)
	for i, e := range n.edges {
		if e == nil || e.visits == 0 {
			continue
		}
		if v := e.total / float64(e.visits); v > bestVal {
			bestVal = v
			best = i
		}
	}
	if best < 0 {
		return p.rng.Intn(len(n.edges))
	}
	return best
}
