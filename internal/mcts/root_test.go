package mcts

import (
	"reflect"
	"testing"

	"monsoon/internal/randx"
)

// forkProbe makes the probe game forkable: each shard gets its own RNG.
type forkProbe struct{ *probeGame }

func (forkProbe) Fork(seed int64) Model { return forkProbe{&probeGame{rng: randx.New(seed)}} }

// forkBandit makes the (stateless) bandit forkable.
type forkBandit struct{ bandit }

func (forkBandit) Fork(int64) Model { return forkBandit{} }

// TestRootShardOneMatchesSerial is the golden test against the serial
// planner: a one-shard root-parallel search must be bit-identical — same
// action, same principal variation, same stats — to a serial Planner run
// with the shard's derived RNG and forked model.
func TestRootShardOneMatchesSerial(t *testing.T) {
	const seed = 99
	cfg := Config{Iterations: 600}

	rp := NewRoot(RootConfig{Config: cfg, Shards: 1, Workers: 1}, seed)
	ra := rp.Plan(forkProbe{&probeGame{rng: randx.New(0)}}, probeState{})
	rs := rp.LastStats()

	sm := forkProbe{}.Fork(shardSeed(seed, 1, 0, "model"))
	sp := New(cfg, randx.New(shardSeed(seed, 1, 0, "rng")))
	sa := sp.Plan(sm, probeState{})
	ss := sp.LastStats()

	if ra.Key() != sa.Key() {
		t.Fatalf("root picked %q, serial %q", ra.Key(), sa.Key())
	}
	if !reflect.DeepEqual(rs, ss) {
		t.Errorf("stats diverge:\nroot   %+v\nserial %+v", rs, ss)
	}
}

// TestRootDeterministicForAnyWorkers pins the tentpole promise: with the
// logical shard decomposition fixed, every Workers setting — serial, fewer
// threads than shards, more threads than shards — produces the identical
// action, principal variation, and search stats.
func TestRootDeterministicForAnyWorkers(t *testing.T) {
	run := func(workers int) (string, PlanStats) {
		rp := NewRoot(RootConfig{
			Config:  Config{Iterations: 2000},
			Shards:  4,
			Workers: workers,
		}, 7)
		a := rp.Plan(forkProbe{&probeGame{rng: randx.New(0)}}, probeState{})
		return a.Key(), rp.LastStats()
	}
	refKey, refStats := run(1)
	refStats.Workers = 0
	for _, w := range []int{2, 7, 64} {
		key, st := run(w)
		st.Workers = 0
		if key != refKey {
			t.Errorf("workers=%d picked %q, serial run picked %q", w, key, refKey)
		}
		if !reflect.DeepEqual(st, refStats) {
			t.Errorf("workers=%d stats diverge:\ngot  %+v\nwant %+v", w, st, refStats)
		}
	}
}

// TestRootRepeatedCallsDeterministic: successive Plan calls advance the
// derived per-call streams, and two equally-configured planners replay the
// whole call sequence identically at different worker counts.
func TestRootRepeatedCallsDeterministic(t *testing.T) {
	seq := func(workers int) []string {
		rp := NewRoot(RootConfig{Config: Config{Iterations: 800}, Shards: 3, Workers: workers}, 13)
		var keys []string
		for i := 0; i < 4; i++ {
			keys = append(keys, rp.Plan(forkProbe{&probeGame{rng: randx.New(0)}}, probeState{}).Key())
		}
		return keys
	}
	a, b := seq(1), seq(64)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("call sequences diverge: serial %v, 64 workers %v", a, b)
	}
}

// TestRootZeroQuotaShards: an iteration budget smaller than the shard count
// leaves some shards with zero rollouts; the search must still complete,
// spend exactly the budget, and stay worker-count invariant.
func TestRootZeroQuotaShards(t *testing.T) {
	run := func(workers int) (string, PlanStats) {
		rp := NewRoot(RootConfig{Config: Config{Iterations: 3}, Shards: 8, Workers: workers}, 5)
		a := rp.Plan(forkProbe{&probeGame{rng: randx.New(0)}}, probeState{})
		if a == nil {
			t.Fatal("Plan returned nil on a non-terminal root")
		}
		return a.Key(), rp.LastStats()
	}
	key, st := run(1)
	if st.Rollouts != 3 {
		t.Errorf("rollouts = %d, want exactly the budget 3", st.Rollouts)
	}
	if st.Nodes < 8 {
		t.Errorf("nodes = %d, want at least one root node per shard", st.Nodes)
	}
	for _, w := range []int{2, 7, 64} {
		k, s := run(w)
		s.Workers, st.Workers = 0, 0
		if k != key || !reflect.DeepEqual(s, st) {
			t.Errorf("workers=%d: (%q, %+v) != serial (%q, %+v)", w, k, s, key, st)
		}
	}
}

// TestRootFastPaths: terminal and single-action roots mirror the serial
// planner's fast paths — no search, no RNG draws.
func TestRootFastPaths(t *testing.T) {
	rp := NewRoot(RootConfig{Workers: 8}, 1)
	if a := rp.Plan(forkBandit{}, banditState{done: true}); a != nil {
		t.Errorf("terminal root must plan nil, got %v", a)
	}
	if st := rp.LastStats(); !st.FastPath || st.Rollouts != 0 {
		t.Errorf("terminal root stats = %+v, want fast path without rollouts", st)
	}

	g := &singleGame{}
	a := rp.Plan(g, banditState{})
	if a == nil || a.Key() != "0" {
		t.Fatalf("single-action Plan = %v", a)
	}
	if g.steps != 0 {
		t.Errorf("single-action root must not simulate, did %d steps", g.steps)
	}
	if l := rp.LastStats().Line; len(l) != 1 || l[0] != "0" {
		t.Errorf("fast-path line = %v, want [\"0\"]", l)
	}
}

// TestRootUnforkableModelRunsSerial: a model without Fork cannot be driven
// from two goroutines; the planner must degrade to one worker (still shard-
// decomposed, so results match any forked-and-parallel configuration of the
// same model family) and still find the best arm.
func TestRootUnforkableModelRunsSerial(t *testing.T) {
	rp := NewRoot(RootConfig{Config: Config{Iterations: 400}, Workers: 8}, 1)
	b := rp.Plan(bandit{}, banditState{})
	if b.(banditAction) != 2 {
		t.Errorf("picked arm %v, want 2", b)
	}
	if w := rp.LastStats().Workers; w != 1 {
		t.Errorf("unforkable model ran on %d workers, want 1", w)
	}
}

// TestRootBanditQuality: the merged tree still identifies the best arm for
// both strategies, with the budget split across shards.
func TestRootBanditQuality(t *testing.T) {
	for _, strat := range []Strategy{UCT, EpsGreedy} {
		rp := NewRoot(RootConfig{Config: Config{Strategy: strat, Iterations: 400}}, 1)
		a := rp.Plan(forkBandit{}, banditState{})
		if a.(banditAction) != 2 {
			t.Errorf("strategy %d picked arm %v, want 2", strat, a)
		}
	}
}

// TestRootProbeQuality: value-of-information reasoning survives the shard
// split — each shard independently discovers that probing dominates, and the
// merged averages keep the ranking.
func TestRootProbeQuality(t *testing.T) {
	rp := NewRoot(RootConfig{Config: Config{Iterations: 4000}, Shards: 8, Workers: 4}, 42)
	a := rp.Plan(forkProbe{&probeGame{rng: randx.New(0)}}, probeState{})
	if a.Key() != "probe" {
		t.Errorf("picked %q, want probe", a.Key())
	}
	if st := rp.LastStats(); st.Rollouts != 4000 {
		t.Errorf("rollouts = %d, want the full 4000 budget", st.Rollouts)
	}
}

// TestShardQuotas pins the budget split: sizes differ by at most one with
// the remainder on the lowest-numbered shards, summing to the budget.
func TestShardQuotas(t *testing.T) {
	cases := []struct {
		iters, shards int
		want          []int
	}{
		{10, 3, []int{4, 3, 3}},
		{8, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{3, 8, []int{1, 1, 1, 0, 0, 0, 0, 0}},
		{7, 1, []int{7}},
	}
	for _, c := range cases {
		if got := shardQuotas(c.iters, c.shards); !reflect.DeepEqual(got, c.want) {
			t.Errorf("shardQuotas(%d,%d) = %v, want %v", c.iters, c.shards, got, c.want)
		}
	}
}

// TestDerivedShardCount pins the adaptive decomposition: one shard per
// minShardQuota rollouts, clamped to [1, DefaultShards].
func TestDerivedShardCount(t *testing.T) {
	cases := []struct{ iters, want int }{
		{1, 1}, {74, 1}, {149, 1}, {150, 2}, {300, 4}, {600, 8}, {800, 8}, {100000, 8},
	}
	for _, c := range cases {
		rp := NewRoot(RootConfig{Config: Config{Iterations: c.iters}}, 1)
		if rp.cfg.Shards != c.want {
			t.Errorf("iterations=%d derived %d shards, want %d", c.iters, rp.cfg.Shards, c.want)
		}
	}
}
