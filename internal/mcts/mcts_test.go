package mcts

import (
	"math/rand"
	"strconv"
	"testing"

	"monsoon/internal/randx"
)

// --- toy MDP 1: a one-shot bandit ---------------------------------------

type banditState struct{ done bool }

func (s banditState) Terminal() bool     { return s.done }
func (s banditState) OutcomeKey() string { return "" }

type banditAction int

func (a banditAction) Key() string { return strconv.Itoa(int(a)) }

// bandit has arms with deterministic rewards; arm 2 is best.
type bandit struct{}

func (bandit) Legal(s State) []Action {
	if s.(banditState).done {
		return nil
	}
	return []Action{banditAction(0), banditAction(1), banditAction(2), banditAction(3)}
}

func (bandit) Step(_ State, a Action) (State, float64, bool) {
	rewards := []float64{-10, -5, -1, -7}
	return banditState{done: true}, rewards[a.(banditAction)], false
}

func TestBanditBothStrategies(t *testing.T) {
	for _, strat := range []Strategy{UCT, EpsGreedy} {
		p := New(Config{Strategy: strat, Iterations: 400}, randx.New(1))
		a := p.Plan(bandit{}, banditState{})
		if a.(banditAction) != 2 {
			t.Errorf("strategy %d picked arm %v, want 2", strat, a)
		}
	}
}

// --- toy MDP 2: probe-or-guess (the Monsoon decision in miniature) -------
//
// A hidden coin is 0 or 1. Guessing blind costs 0 if right, -100 if wrong
// (expected -50). Probing costs -10 and reveals the coin, after which the
// agent can guess with certainty. The optimal first action is PROBE: it
// requires the planner to propagate value through a chance node.

type probeState struct {
	revealed bool
	coin     int // valid when revealed
	done     bool
}

func (s probeState) Terminal() bool { return s.done }
func (s probeState) OutcomeKey() string {
	if s.revealed {
		return "coin" + strconv.Itoa(s.coin)
	}
	return ""
}

type probeAction string

func (a probeAction) Key() string { return string(a) }

type probeGame struct{ rng *rand.Rand }

func (g *probeGame) Legal(s State) []Action {
	ps := s.(probeState)
	if ps.done {
		return nil
	}
	if ps.revealed {
		return []Action{probeAction("guess0"), probeAction("guess1")}
	}
	return []Action{probeAction("guess0"), probeAction("guess1"), probeAction("probe")}
}

func (g *probeGame) Step(s State, a Action) (State, float64, bool) {
	ps := s.(probeState)
	switch a.(probeAction) {
	case "probe":
		coin := g.rng.Intn(2)
		return probeState{revealed: true, coin: coin}, -10, true
	default:
		guess := 0
		if a.(probeAction) == "guess1" {
			guess = 1
		}
		coin := ps.coin
		if !ps.revealed {
			coin = g.rng.Intn(2)
		}
		r := 0.0
		if guess != coin {
			r = -100
		}
		return probeState{done: true}, r, !ps.revealed
	}
}

func TestProbeOrGuess(t *testing.T) {
	for _, strat := range []Strategy{UCT, EpsGreedy} {
		rng := randx.New(42)
		g := &probeGame{rng: rng}
		p := New(Config{Strategy: strat, Iterations: 4000}, rng)
		a := p.Plan(g, probeState{})
		if a.Key() != "probe" {
			t.Errorf("strategy %d chose %q, want probe", strat, a.Key())
		}
	}
}

func TestProbeThenCorrectGuess(t *testing.T) {
	rng := randx.New(7)
	g := &probeGame{rng: rng}
	p := New(Config{Iterations: 500}, rng)
	for coin := 0; coin < 2; coin++ {
		s := probeState{revealed: true, coin: coin}
		a := p.Plan(g, s)
		want := "guess" + strconv.Itoa(coin)
		if a.Key() != want {
			t.Errorf("after reveal of %d chose %q, want %q", coin, a.Key(), want)
		}
	}
}

func TestTerminalRootReturnsNil(t *testing.T) {
	p := New(Config{}, randx.New(1))
	if a := p.Plan(bandit{}, banditState{done: true}); a != nil {
		t.Errorf("terminal root must plan nil, got %v", a)
	}
}

// singleGame has exactly one legal action; Plan must short-circuit.
type singleGame struct{ steps int }

func (g *singleGame) Legal(s State) []Action {
	if s.(banditState).done {
		return nil
	}
	return []Action{banditAction(0)}
}

func (g *singleGame) Step(s State, a Action) (State, float64, bool) {
	g.steps++
	return banditState{done: true}, -1, false
}

func TestSingleActionShortCircuit(t *testing.T) {
	g := &singleGame{}
	p := New(Config{Iterations: 1000}, randx.New(1))
	a := p.Plan(g, banditState{})
	if a == nil || a.Key() != "0" {
		t.Fatalf("Plan = %v", a)
	}
	if g.steps != 0 {
		t.Errorf("single-action root must not simulate, did %d steps", g.steps)
	}
}

// --- rollout bias ---------------------------------------------------------

// chainGame needs depth-d lookahead: only one action sequence avoids a
// penalty, and a biased rollout policy finds it immediately.
type chainState struct{ pos, depth int }

func (s chainState) Terminal() bool     { return s.pos >= s.depth }
func (s chainState) OutcomeKey() string { return "" }

type chainGame struct {
	depth       int
	rolloutUsed bool
}

func (g *chainGame) Legal(s State) []Action {
	if s.(chainState).Terminal() {
		return nil
	}
	return []Action{banditAction(0), banditAction(1)}
}

func (g *chainGame) Step(s State, a Action) (State, float64, bool) {
	cs := s.(chainState)
	r := 0.0
	if a.(banditAction) != 0 {
		r = -1
	}
	return chainState{pos: cs.pos + 1, depth: cs.depth}, r, false
}

func (g *chainGame) RolloutAction(s State, rng *rand.Rand) Action {
	g.rolloutUsed = true
	return banditAction(0) // always the good move
}

func TestRolloutModelIsUsed(t *testing.T) {
	g := &chainGame{depth: 6}
	p := New(Config{Iterations: 200}, randx.New(3))
	a := p.Plan(g, chainState{depth: 6})
	if !g.rolloutUsed {
		t.Error("RolloutModel must be consulted")
	}
	if a.(banditAction) != 0 {
		t.Errorf("biased rollouts should find the zero-cost chain, got %v", a)
	}
}

func TestMaxDepthStopsRunawayRollouts(t *testing.T) {
	// depth larger than MaxDepth: the planner must still return.
	g := &chainGame{depth: 1 << 30}
	p := New(Config{Iterations: 50, MaxDepth: 20}, randx.New(5))
	if a := p.Plan(g, chainState{depth: 1 << 30}); a == nil {
		t.Error("Plan must return despite unreachable terminal")
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	p := New(Config{}, randx.New(1))
	if v := p.normalize(5); v != 0.5 {
		t.Errorf("normalize before observations = %v, want 0.5", v)
	}
	p.observe(3)
	if v := p.normalize(3); v != 0.5 {
		t.Errorf("normalize with equal min/max = %v, want 0.5", v)
	}
	p.observe(7)
	if v := p.normalize(7); v != 1 {
		t.Errorf("normalize(max) = %v, want 1", v)
	}
	if v := p.normalize(3); v != 0 {
		t.Errorf("normalize(min) = %v, want 0", v)
	}
}

// TestPlanStatsLine: the principal variation starts with the picked action,
// descends to a terminal in the chain game, and degenerates to the forced
// action on the fast path.
func TestPlanStatsLine(t *testing.T) {
	g := &chainGame{depth: 4}
	p := New(Config{Iterations: 300}, randx.New(3))
	a := p.Plan(g, chainState{depth: 4})
	line := p.LastStats().Line
	if len(line) == 0 || line[0] != a.Key() {
		t.Fatalf("line %v must start with the picked action %q", line, a.Key())
	}
	if len(line) > 4 {
		t.Errorf("line %v longer than the game's depth", line)
	}
	for i, k := range line {
		if k != "0" {
			t.Errorf("line[%d] = %q, want the zero-cost chain action", i, k)
		}
	}

	sp := New(Config{Iterations: 100}, randx.New(1))
	sa := sp.Plan(&singleGame{}, banditState{})
	if l := sp.LastStats().Line; len(l) != 1 || l[0] != sa.Key() {
		t.Errorf("fast-path line = %v, want [%q]", l, sa.Key())
	}
	if tp := New(Config{}, randx.New(1)); tp.Plan(bandit{}, banditState{done: true}) != nil ||
		tp.LastStats().Line != nil {
		t.Error("terminal root must leave the line empty")
	}
}

// TestLineCrossesChanceNodes: in the probe game the settled line must be
// probe followed by the certainty guess of the most-visited outcome.
func TestLineCrossesChanceNodes(t *testing.T) {
	rng := randx.New(42)
	g := &probeGame{rng: rng}
	p := New(Config{Iterations: 4000}, rng)
	if a := p.Plan(g, probeState{}); a.Key() != "probe" {
		t.Fatalf("picked %q, want probe", a.Key())
	}
	line := p.LastStats().Line
	if len(line) < 2 || line[0] != "probe" {
		t.Fatalf("line = %v, want probe followed by a guess", line)
	}
	if line[1] != "guess0" && line[1] != "guess1" {
		t.Errorf("line[1] = %q, want a guess", line[1])
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() string {
		rng := randx.New(11)
		g := &probeGame{rng: rng}
		p := New(Config{Iterations: 300}, rng)
		return p.Plan(g, probeState{}).Key()
	}
	if run() != run() {
		t.Error("same seed must give the same plan")
	}
}
