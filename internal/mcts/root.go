// Root-parallel MCTS (§5.1 under a wall-clock budget): the rollout budget is
// pre-partitioned over a fixed set of logical workers ("shards"). Every shard
// gets a pre-assigned quota and its own RNG seeded from the planner seed and
// the shard index, searches an independent tree from its own clone of the
// root, and the shard trees are merged in shard-index order — visits and
// totals summed per root action, chance children unioned by outcome key,
// recursively. Because the decomposition (shard count, quotas, seeds) is a
// function of the configuration only — never of the Workers thread cap — the
// merged visit counts, values, and principal variation are bit-identical for
// any Workers setting, including fully serial execution. Parallelism trades
// wall time, nothing else.
package mcts

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"monsoon/internal/obs"
	"monsoon/internal/randx"
)

// Forker is implemented by models whose simulator holds private randomness.
// Fork returns an independent simulator seeded from seed, safe to drive from
// another goroutine. Root-parallel search forks one model per shard; a model
// that does not implement Forker is shared by every shard and the shards are
// run serially (Workers degrades to 1) so the model is never used
// concurrently — results are still shard-decomposed and merge-identical.
type Forker interface {
	Fork(seed int64) Model
}

// Cloner is implemented by states that want each search shard to work from
// its own copy of the root (states carrying lookup caches or other shared
// scratch). Optional: states without it are shared read-only across shards.
type Cloner interface {
	CloneForSearch() State
}

const (
	// DefaultShards caps the derived logical worker count.
	DefaultShards = 8
	// minShardQuota is the smallest rollout quota worth an independent tree:
	// below ~75 rollouts a shard's ε/UCT schedule barely leaves expansion, so
	// the derived shard count shrinks with the iteration budget rather than
	// splintering small searches. (Measured on the core R/S/T trap fixture,
	// the 8×75 ensemble at an 600-iteration budget avoids the trap at least
	// as often as one 600-iteration stream — independent shards don't all
	// fall for the same sampled world — so the split costs no plan quality.)
	minShardQuota = 75
)

// RootConfig parameterizes a RootPlanner.
type RootConfig struct {
	Config
	// Shards fixes the logical worker count — the unit of determinism. 0
	// derives it from the budget: max(1, min(DefaultShards, Iterations/minShardQuota)).
	Shards int
	// Workers caps the OS threads executing shards: 0 means
	// runtime.GOMAXPROCS(0), 1 forces serial execution. Plans are
	// bit-identical for every value.
	Workers int
}

// RootPlanner runs root-parallel MCTS. Like Planner it is not safe for
// concurrent use; the parallelism is internal.
type RootPlanner struct {
	cfg  RootConfig
	seed int64
	// calls numbers the Plan invocations so every (call, shard) pair draws
	// from its own derived RNG stream, mirroring how a serial planner's
	// single stream advances across calls.
	calls int
	last  PlanStats

	// tr/parent carry the observability context of the next Plan call; see
	// Trace.
	tr     *obs.Tracer
	parent *obs.Span
}

// Trace attaches a tracer and the parent span (the driver's KPlan span) for
// subsequent Plan calls: every real search emits one KPlanShard span per
// shard under parent, carrying the shard's quota, rollouts, nodes, and its
// own busy time. Shard count and quotas derive from the configuration alone,
// so shard-span counts are machine-independent. Nil arguments switch shard
// spans off.
func (p *RootPlanner) Trace(tr *obs.Tracer, parent *obs.Span) {
	p.tr, p.parent = tr, parent
}

// NewRoot creates a root-parallel planner. seed is the planner's base
// randomness; per-shard streams are derived from it, the call number, and the
// shard index, so equal (config, seed) planners replay identically.
func NewRoot(cfg RootConfig, seed int64) *RootPlanner {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Shards <= 0 {
		s := cfg.Iterations / minShardQuota
		if s < 1 {
			s = 1
		}
		if s > DefaultShards {
			s = DefaultShards
		}
		cfg.Shards = s
	}
	return &RootPlanner{cfg: cfg, seed: seed}
}

// LastStats reports the statistics of the most recent Plan call, aggregated
// across shards (rollouts and nodes sum, depth is the max).
func (p *RootPlanner) LastStats() PlanStats { return p.last }

// SkipCalls advances the Plan-call counter by n without searching. The
// counter seeds every call's per-shard RNG streams, so a caller that answers
// n would-be Plan calls from a memoized source (the plan cache's replay path)
// must advance it exactly as n real calls would have — otherwise the next
// genuine Plan draws from streams a replay-free run would never reach, and
// runs that hit the cache mid-flight stop being bit-identical to runs that
// planned every round themselves.
func (p *RootPlanner) SkipCalls(n int) { p.calls += n }

// shardQuotas splits the iteration budget into shard quotas differing by at
// most one rollout, remainder to the lowest-numbered shards.
func shardQuotas(iters, shards int) []int {
	q := make([]int, shards)
	base, rem := iters/shards, iters%shards
	for i := range q {
		q[i] = base
		if i < rem {
			q[i]++
		}
	}
	return q
}

// shardSeed derives the seed of one shard's named stream for one Plan call.
func shardSeed(base int64, call, shard int, stream string) int64 {
	return randx.Derive(base, fmt.Sprintf("call%d/shard%d/%s", call, shard, stream))
}

// Plan runs every shard's quota (concurrently up to the Workers cap), merges
// the shard trees in shard-index order, and returns the action with the best
// average return over the merged tree, or nil if root is terminal/stuck.
func (p *RootPlanner) Plan(m Model, root State) Action {
	p.calls++
	p.last = PlanStats{Workers: 1}
	// Root fast paths mirror the serial planner exactly: no search, no RNG
	// draws, one (root) node on the books.
	var actions []Action
	if !root.Terminal() {
		actions = m.Legal(root)
	}
	p.last.RootActions = len(actions)
	if len(actions) == 0 {
		p.last.FastPath = true
		p.last.Nodes = 1
		return nil
	}
	if len(actions) == 1 {
		p.last.FastPath = true
		p.last.Nodes = 1
		p.last.Line = []string{actions[0].Key()}
		return actions[0]
	}

	quotas := shardQuotas(p.cfg.Iterations, p.cfg.Shards)
	forker, forkable := m.(Forker)
	workers := p.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(quotas) {
		workers = len(quotas)
	}
	if !forkable {
		workers = 1 // shared simulator: never drive it from two goroutines
	}

	// Pre-create the shard spans on the coordinating goroutine (deterministic
	// IDs) before any worker launches; they are ended in index order after
	// the barrier with each shard's own measured busy time.
	var shardSpans []*obs.Span
	if p.tr.Active() {
		shardSpans = make([]*obs.Span, len(quotas))
		for i := range quotas {
			shardSpans[i] = p.tr.StartChild(p.parent, obs.KPlanShard, fmt.Sprintf("shard%d", i)).
				SetNum("quota", float64(quotas[i]))
		}
	}
	elapsed := make([]time.Duration, len(quotas))

	roots := make([]*node, len(quotas))
	stats := make([]PlanStats, len(quotas))
	runShard := func(i int) {
		t0 := time.Now()
		defer func() { elapsed[i] = time.Since(t0) }()
		sm := m
		if forkable {
			sm = forker.Fork(shardSeed(p.seed, p.calls, i, "model"))
		}
		sr := root
		if c, ok := root.(Cloner); ok {
			sr = c.CloneForSearch()
		}
		cfg := p.cfg.Config
		cfg.Iterations = quotas[i]
		sp := New(cfg, randx.New(shardSeed(p.seed, p.calls, i, "rng")))
		rootNode := sp.newNode(sm, sr)
		if quotas[i] > 0 {
			sp.search(sm, rootNode)
		}
		roots[i], stats[i] = rootNode, sp.last
	}
	if workers <= 1 {
		workers = 1
		for i := range quotas {
			runShard(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for t := 0; t < workers; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(quotas) {
						return
					}
					runShard(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, sp := range shardSpans {
		sp.SetNum("rollouts", float64(stats[i].Rollouts)).
			SetNum("nodes", float64(stats[i].Nodes)).
			EndIn(elapsed[i])
	}

	merged := roots[0]
	p.last.Rollouts, p.last.Nodes, p.last.MaxDepth = stats[0].Rollouts, stats[0].Nodes, stats[0].MaxDepth
	for i := 1; i < len(roots); i++ {
		mergeNode(merged, roots[i])
		p.last.Rollouts += stats[i].Rollouts
		p.last.Nodes += stats[i].Nodes
		if stats[i].MaxDepth > p.last.MaxDepth {
			p.last.MaxDepth = stats[i].MaxDepth
		}
	}
	p.last.Workers = workers
	p.last.Line = principalVariation(merged, p.cfg.MaxDepth)
	best := bestVisited(merged)
	if best < 0 {
		p.last.Line = []string{merged.actions[0].Key()}
		return merged.actions[0]
	}
	return merged.actions[best]
}

// mergeNode folds src into dst: per-action edge visits and totals are summed
// (actions align by index — Legal is deterministic per state) and chance
// children are unioned by outcome key, recursively. Called in shard-index
// order, so the float accumulation order — and with it every average and
// tie-break — is fixed regardless of which OS thread ran which shard.
func mergeNode(dst, src *node) {
	dst.visits += src.visits
	if len(src.edges) != len(dst.edges) {
		return // defensive: nondeterministic Legal would desync indices
	}
	for i, se := range src.edges {
		if se == nil {
			continue
		}
		de := dst.edges[i]
		if de == nil {
			dst.edges[i] = se
			continue
		}
		de.visits += se.visits
		de.total += se.total
		for key, sk := range se.kids {
			if dk, ok := de.kids[key]; ok {
				mergeNode(dk, sk)
			} else {
				de.kids[key] = sk
			}
		}
	}
}
