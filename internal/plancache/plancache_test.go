package plancache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestGetPutAndStats(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache must miss")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Errorf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	c.Put("a", 2) // replace
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Errorf("replaced value = %v, want 2", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Get("k0") // refresh k0: k1 becomes the eviction candidate
	c.Put("k3", 3)
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 must be evicted (least recently used)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s must survive", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction / 3 entries", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != DefaultCapacity {
		t.Errorf("len = %d, want %d", c.Len(), DefaultCapacity)
	}
}

// TestNilCacheIsOff: a nil cache misses silently and accepts writes as no-ops,
// so the driver threads an optional cache without guards.
func TestNilCacheIsOff(t *testing.T) {
	var c *Cache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache must miss")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache must report zero state")
	}
	c.Reset()
	if Stats.HitRate(Stats{}) != 0 {
		t.Error("zero-lookup hit rate must be 0")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8)
	c.Put("q1\x00round0", 1)
	c.Put("q1\x00round1", 2)
	c.Put("q2\x00round0", 3)
	n := c.Invalidate(func(k string) bool { return strings.HasPrefix(k, "q1\x00") })
	if n != 2 {
		t.Errorf("invalidated %d entries, want 2", n)
	}
	if _, ok := c.Get("q1\x00round0"); ok {
		t.Error("matching entry survived invalidation")
	}
	if _, ok := c.Get("q1\x00round1"); ok {
		t.Error("matching entry survived invalidation")
	}
	if v, ok := c.Get("q2\x00round0"); !ok || v != 3 {
		t.Error("non-matching entry must survive")
	}
	if got := c.Len(); got != 1 {
		t.Errorf("len = %d, want 1", got)
	}
	// Removal is active invalidation, not capacity pressure: evictions stay 0.
	if s := c.Stats(); s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (invalidations are not evictions)", s.Evictions)
	}
	// No-match predicate is a no-op returning 0.
	if n := c.Invalidate(func(string) bool { return false }); n != 0 {
		t.Errorf("no-match invalidate = %d, want 0", n)
	}
}

func TestInvalidateNilSafe(t *testing.T) {
	var c *Cache
	if n := c.Invalidate(func(string) bool { return true }); n != 0 {
		t.Errorf("nil cache invalidate = %d, want 0", n)
	}
	c = New(2)
	c.Put("a", 1)
	if n := c.Invalidate(nil); n != 0 {
		t.Errorf("nil predicate invalidate = %d, want 0", n)
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("nil predicate must not drop entries")
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("b")
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("post-reset stats = %+v", s)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("reset must drop entries")
	}
}

// TestConcurrentAccess exercises the cache from many goroutines; run under
// -race this is the thread-safety gate for campaign-shared caches.
func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
