// Package plancache is the cross-round, cross-session plan memo of the
// Monsoon serving path: an LRU map from a canonical planning-state key —
// query shape, materialized frontier, and the hardened statistics set
// rendered through stats.Store.BucketSignature() — to the action sequence
// MCTS settled on from that state.
//
// The cache stores opaque values so it stays dependency-free (core stores its
// []Action round recordings; tests store strings). Invalidation is embedded
// in the key: hardening that moves any statistic across a log₂ bucket
// boundary changes the bucket signature and therefore the key, so entries
// recorded under the old statistics can never be served to the new state —
// they simply age out of the LRU. Entries are only reused by states whose
// statistics genuinely land in the same buckets, which is the reuse the
// Monsoon MDP's chance-node bucketing (§5.1) already treats as equivalent.
//
// The cache is safe for concurrent use; hit/miss/eviction counts are
// available through Stats for metrics export.
package plancache

import (
	"container/list"
	"sync"
)

// DefaultCapacity bounds a cache created with New(0).
const DefaultCapacity = 512

// Stats is a point-in-time snapshot of the cache's accounting.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Entries is the current size.
	Entries int
}

// HitRate reports Hits/(Hits+Misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key string
	val any
}

// Cache is a mutex-guarded LRU memo. The zero value is not usable; construct
// with New. A nil *Cache is the off switch: Get always misses without
// accounting, Put is a no-op, so callers thread an optional cache without
// guards.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *entry

	hits, misses, evictions int64
}

// New creates a cache bounded to capacity entries; capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the value memoized under key and marks it most recently used.
// Nil-safe (always a silent miss).
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put memoizes val under key, replacing any previous value and evicting the
// least recently used entry when over capacity. Nil-safe (no-op).
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Invalidate removes every entry whose key satisfies pred and returns the
// number removed. Unlike the passive key-embedded invalidation (stale entries
// aging out because no state re-derives their key), Invalidate is the active
// form mid-query re-optimization needs: when an executed round's observed
// q-error reveals the statistics a query's memoized rounds were recorded
// under to be badly wrong, the session evicts that query's entire key space
// at once instead of waiting for the LRU to cycle them out. Eviction counts
// are not charged — these are deliberate removals, not capacity pressure.
// Nil-safe (zero).
func (c *Cache) Invalidate(pred func(key string) bool) int {
	if c == nil || pred == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.entries {
		if pred(key) {
			c.ll.Remove(el)
			delete(c.entries, key)
			n++
		}
	}
	return n
}

// Len reports the current number of entries. Nil-safe (zero).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the accounting. Nil-safe (zero value).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}

// PublishGauges feeds the cache's current entry and eviction counts to set
// while still holding the cache mutex, so concurrent publishers serialize and
// the last write always reflects the newest cache state. (Snapshotting with
// Stats and then setting gauges outside the lock lets a stale snapshot land
// last.) Nil-safe (no-op).
func (c *Cache) PublishGauges(set func(entries, evictions float64)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	set(float64(c.ll.Len()), float64(c.evictions))
}

// Reset drops every entry and zeroes the accounting. Nil-safe (no-op).
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.hits, c.misses, c.evictions = 0, 0, 0
}
