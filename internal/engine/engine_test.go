package engine

import (
	"errors"
	"math"
	"testing"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// fixture builds a tiny R/S/T catalog:
//
//	R: 1000 rows, R.a = i%100 (100 distinct), R.b = i%10 (10 distinct)
//	S: 50 rows, S.k = i%100   (50 distinct keys 0..49)
//	T: 20 rows, T.k = i%10    (10 distinct keys 0..9)
func fixture() *table.Catalog {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "R", Name: "a", Kind: value.KindInt},
		table.Column{Table: "R", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("R", rs)
	for i := 0; i < 1000; i++ {
		rb.Add(value.Int(int64(i%100)), value.Int(int64(i%10)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "S", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("S", ss)
	for i := 0; i < 50; i++ {
		sb.Add(value.Int(int64(i % 100)))
	}
	cat.Put(sb.Build())
	ts := table.NewSchema(table.Column{Table: "T", Name: "k", Kind: value.KindInt})
	tb := table.NewBuilder("T", ts)
	for i := 0; i < 20; i++ {
		tb.Add(value.Int(int64(i % 10)))
	}
	cat.Put(tb.Build())
	return cat
}

func rstQuery() *query.Query {
	return query.NewBuilder("rst").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Join(expr.Identity("R.b"), expr.Identity("T.k")).
		MustBuild()
}

func leaf(names ...string) *plan.Node { return plan.NewLeaf(query.NewAliasSet(names...)) }

func TestHashJoinCorrectness(t *testing.T) {
	e := New(fixture())
	q := rstQuery()
	// R ⋈ S on a=k: R.a in 0..99 uniform (10 each); S.k in 0..49 one each.
	// Matches: for each of S's 50 keys, 10 R rows → 500 rows.
	rel, res, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 500 {
		t.Errorf("R⋈S count = %d, want 500", rel.Count())
	}
	// Produced = c(R) + c(S) + c(R⋈S).
	if res.Produced != 1000+50+500 {
		t.Errorf("Produced = %v, want 1550", res.Produced)
	}
	if res.Counts["R+S"] != 500 || res.Counts["R"] != 1000 || res.Counts["S"] != 50 {
		t.Errorf("Counts = %v", res.Counts)
	}
	// Verify actual row contents: every joined row must satisfy the predicate.
	ai := rel.Schema.MustLookup("R.a")
	ki := rel.Schema.MustLookup("S.k")
	for _, row := range rel.Rows {
		if !row[ai].Equal(row[ki]) {
			t.Fatalf("join produced non-matching row: %v vs %v", row[ai], row[ki])
		}
	}
}

func TestJoinCommutativity(t *testing.T) {
	q := rstQuery()
	e1, e2 := New(fixture()), New(fixture())
	a, _, err := e1.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e2.ExecTree(q, plan.NewJoin(leaf("S"), leaf("R")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() {
		t.Errorf("commutativity violated: %d vs %d", a.Count(), b.Count())
	}
}

func TestThreeWayJoinOrderInvariance(t *testing.T) {
	q := rstQuery()
	counts := map[string]int{}
	for _, tree := range []*plan.Node{
		plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T")),
		plan.NewJoin(plan.NewJoin(leaf("R"), leaf("T")), leaf("S")),
		plan.NewJoin(leaf("T"), plan.NewJoin(leaf("S"), leaf("R"))),
	} {
		e := New(fixture())
		rel, _, err := e.ExecTree(q, tree, &Budget{})
		if err != nil {
			t.Fatal(err)
		}
		counts[tree.String()] = rel.Count()
	}
	first := -1
	for k, c := range counts {
		if first == -1 {
			first = c
		}
		if c != first {
			t.Errorf("join order changed the result: %v (%s)", counts, k)
		}
	}
	// R⋈S = 500 rows; each has R.b matching 2 T rows (T.k has each key
	// twice) → 1000.
	if first != 1000 {
		t.Errorf("full join count = %d, want 1000", first)
	}
}

func TestCrossProductViaNestedLoop(t *testing.T) {
	// S × T has no connecting predicate: the engine must fall back to a
	// nested loop producing |S|·|T| rows.
	q := rstQuery()
	e := New(fixture())
	rel, _, err := e.ExecTree(q, plan.NewJoin(leaf("S"), leaf("T")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 50*20 {
		t.Errorf("S×T = %d, want 1000", rel.Count())
	}
}

func TestSelectionPushdown(t *testing.T) {
	q := query.NewBuilder("sel").
		Rel("R", "R").Rel("S", "S").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Select(expr.Identity("R.b"), value.Int(3)).
		MustBuild()
	e := New(fixture())
	rel, res, err := e.ExecTree(q, leaf("R"), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 100 { // b==3 on 1000 rows with 10 values
		t.Errorf("filtered R = %d, want 100", rel.Count())
	}
	if res.Produced != 100 {
		t.Errorf("Produced = %v, want 100 (filter outputs only)", res.Produced)
	}
	bi := rel.Schema.MustLookup("R.b")
	for _, row := range rel.Rows {
		if row[bi].AsInt() != 3 {
			t.Fatal("selection not applied")
		}
	}
}

func TestMaterializedReuse(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	if _, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Materialized("R+S"); !ok {
		t.Fatal("root must be registered after execution")
	}
	// A later tree referencing [R+S] must reuse the registered relation.
	rel, res, err := e.ExecTree(q, plan.NewJoin(leaf("R", "S"), leaf("T")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 1000 {
		t.Errorf("([R+S]⋈T) = %d, want 1000", rel.Count())
	}
	// Produced = c(R+S) reuse pass + c(T) + c(out).
	if res.Produced != 500+20+1000 {
		t.Errorf("Produced = %v, want 1520", res.Produced)
	}
}

func TestUnmaterializedLeafFails(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	_, _, err := e.ExecTree(q, leaf("R", "S"), &Budget{})
	if err == nil {
		t.Error("unmaterialized multi-alias leaf must error")
	}
}

func TestSigmaCollection(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	rel, res, err := e.ExecTree(q, leaf("R").WithSigma(), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 1000 {
		t.Fatalf("Σ(R) result = %d", rel.Count())
	}
	// Terms over R: id(R.a) (term 0) and id(R.b) (term 2).
	got := map[int]float64{}
	for _, o := range res.Sigma {
		if o.Expr != "R" {
			t.Errorf("sigma expr = %q", o.Expr)
		}
		got[o.Term] = o.D
	}
	if len(got) != 2 {
		t.Fatalf("sigma terms = %v", got)
	}
	if math.Abs(got[0]-100) > 5 {
		t.Errorf("d(R.a) = %v, want ~100", got[0])
	}
	if math.Abs(got[2]-10) > 1 {
		t.Errorf("d(R.b) = %v, want ~10", got[2])
	}
	// Σ adds one extra pass: Produced = 1000 (scan out) + 1000 (Σ pass).
	if res.Produced != 2000 {
		t.Errorf("Produced = %v, want 2000", res.Produced)
	}
	if res.SigmaTime < 0 {
		t.Error("SigmaTime must be measured")
	}
}

func TestSigmaSkipsNulls(t *testing.T) {
	cat := table.NewCatalog()
	ds := table.NewSchema(table.Column{Table: "D", Name: "txt", Kind: value.KindString})
	db := table.NewBuilder("D", ds)
	db.Add(value.String(`id="x1" end`))
	db.Add(value.String(`id="x2" end`))
	db.Add(value.String(`no markers`)) // Between yields NULL
	cat.Put(db.Build())
	es := table.NewSchema(table.Column{Table: "E", Name: "n", Kind: value.KindString})
	eb := table.NewBuilder("E", es)
	eb.Add(value.String("x1"))
	cat.Put(eb.Build())
	q := query.NewBuilder("nulls").
		Rel("D", "D").Rel("E", "E").
		Join(expr.Between("D.txt", `id="`, `" end`), expr.Identity("E.n")).
		MustBuild()
	e := New(cat)
	_, res, err := e.ExecTree(q, leaf("D").WithSigma(), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Sigma {
		if o.Term == 0 && math.Abs(o.D-2) > 0.5 {
			t.Errorf("NULLs must not count as distinct values: d = %v, want 2", o.D)
		}
	}
}

func TestNullKeysNeverJoin(t *testing.T) {
	cat := table.NewCatalog()
	ds := table.NewSchema(table.Column{Table: "D", Name: "txt", Kind: value.KindString})
	db := table.NewBuilder("D", ds)
	db.Add(value.String("garbage")) // City → NULL
	db.Add(value.String("garbage"))
	cat.Put(db.Build())
	es := table.NewSchema(table.Column{Table: "E", Name: "c", Kind: value.KindString})
	eb := table.NewBuilder("E", es)
	eb.Add(value.String("garbage"))
	cat.Put(eb.Build())
	q := query.NewBuilder("nulljoin").
		Rel("D", "D").Rel("E", "E").
		Join(expr.City("D.txt"), expr.City("E.c")).
		MustBuild()
	e := New(cat)
	rel, _, err := e.ExecTree(q, plan.NewJoin(leaf("D"), leaf("E")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 0 {
		t.Errorf("NULL = NULL must not match, got %d rows", rel.Count())
	}
}

func TestMultiTableUDFResidual(t *testing.T) {
	// WHERE SumMod(s.k, t1.k, 7) = id(t2.k): the left term spans two aliases,
	// so it only becomes evaluable after s×t1; the final join with t2 uses it
	// as a hash key. Verify against a brute-force computation.
	q := query.NewBuilder("multi").
		Rel("s", "S").Rel("t1", "T").Rel("t2", "T").
		Join(expr.SumMod("s.k", "t1.k", 7), expr.Identity("t2.k")).
		MustBuild()
	e := New(fixture())
	tree := plan.NewJoin(plan.NewJoin(leaf("s"), leaf("t1")), leaf("t2"))
	rel, _, err := e.ExecTree(q, tree, &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sTab := fixture().MustGet("S")
	tTab := fixture().MustGet("T")
	want := 0
	for _, sr := range sTab.Rows {
		for _, t1r := range tTab.Rows {
			for _, t2r := range tTab.Rows {
				if (sr[0].AsInt()+t1r[0].AsInt())%7 == t2r[0].AsInt() {
					want++
				}
			}
		}
	}
	if rel.Count() != want {
		t.Errorf("multi-table UDF join = %d, want %d", rel.Count(), want)
	}
	// The same result must arrive when the crossing term is a pure residual:
	// join s with (t1⋈t2)? t1-t2 have no predicate either; use the flipped
	// shape (s×t1) built right-deep instead.
	e2 := New(fixture())
	tree2 := plan.NewJoin(leaf("t2"), plan.NewJoin(leaf("s"), leaf("t1")))
	rel2, _, err := e2.ExecTree(q, tree2, &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Count() != want {
		t.Errorf("flipped multi-table UDF join = %d, want %d", rel2.Count(), want)
	}
}

func TestBudgetTupleCap(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	b := &Budget{MaxTuples: 100}
	_, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), b)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	b := &Budget{Deadline: time.Now().Add(-time.Second)}
	// The deadline is polled every 4096 charges; a 500-output join fits under
	// one poll, so use the bigger three-way join.
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	_, _, err := e.ExecTree(q, tree, b)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestBudgetProducedTracksResult(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	b := &Budget{}
	_, res, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), b)
	if err != nil {
		t.Fatal(err)
	}
	if b.Produced() != res.Produced {
		t.Errorf("budget %v != result %v", b.Produced(), res.Produced)
	}
	var nb *Budget
	if nb.Produced() != 0 || nb.Charge(5) != nil {
		t.Error("nil budget must be a no-op")
	}
}

func TestSeedBaseStats(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	st := stats.New()
	e.SeedBaseStats(q, st)
	for alias, want := range map[string]float64{"R": 1000, "S": 50, "T": 20} {
		if c, ok := st.Count(stats.RawKey(alias)); !ok || c != want {
			t.Errorf("raw count %s = %v,%v", alias, c, ok)
		}
	}
}

func TestFinalAggregate(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	rel, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := FinalAggregate(q, rel); err != nil || got != 500 {
		t.Errorf("COUNT = %v, %v", got, err)
	}
	sumQ := query.NewBuilder("sum").
		Rel("R", "R").Rel("S", "S").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Sum("R.a").MustBuild()
	got, err := FinalAggregate(sumQ, rel)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	ai := rel.Schema.MustLookup("R.a")
	for _, row := range rel.Rows {
		want += row[ai].AsFloat()
	}
	if got != want {
		t.Errorf("SUM = %v, want %v", got, want)
	}
	if _, err := FinalAggregate(query.NewBuilder("bad").Rel("R", "R").Sum("R.zzz").MustBuild(), rel); err == nil {
		t.Error("SUM over missing attribute must error")
	}
}

func TestResetDropsMaterialized(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	if _, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if _, ok := e.Materialized("R+S"); ok {
		t.Error("Reset must drop materialized state")
	}
}

// Property: on random data, hash join output equals brute force.
func TestHashJoinAgainstBruteForce(t *testing.T) {
	rng := randx.New(99)
	for trial := 0; trial < 20; trial++ {
		cat := table.NewCatalog()
		mk := func(name string, n int, dom int64) *table.Relation {
			s := table.NewSchema(table.Column{Table: name, Name: "k", Kind: value.KindInt})
			b := table.NewBuilder(name, s)
			for i := 0; i < n; i++ {
				b.Add(value.Int(rng.Int63n(dom)))
			}
			return b.Build()
		}
		a := mk("A", 30+rng.Intn(50), 1+rng.Int63n(20))
		bb := mk("B", 30+rng.Intn(50), 1+rng.Int63n(20))
		cat.Put(a)
		cat.Put(bb)
		q := query.NewBuilder("rand").
			Rel("A", "A").Rel("B", "B").
			Join(expr.Identity("A.k"), expr.Identity("B.k")).
			MustBuild()
		e := New(cat)
		rel, _, err := e.ExecTree(q, plan.NewJoin(leaf("A"), leaf("B")), &Budget{})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, ra := range a.Rows {
			for _, rb := range bb.Rows {
				if ra[0].Equal(rb[0]) {
					want++
				}
			}
		}
		if rel.Count() != want {
			t.Fatalf("trial %d: hash join = %d, brute force = %d", trial, rel.Count(), want)
		}
	}
}
