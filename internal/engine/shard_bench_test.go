package engine

import (
	"fmt"
	"testing"

	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// benchCatalog builds the sharding study's shape in miniature: a probe table
// P and a build table B whose first column is the join key (so sharding
// co-partitions the join), with buildPerKey build rows per distinct key.
func benchCatalog(probeRows, buildRows, keys int) *table.Catalog {
	cat := table.NewCatalog()
	ps := table.NewSchema(
		table.Column{Table: "P", Name: "a", Kind: value.KindInt},
		table.Column{Table: "P", Name: "b", Kind: value.KindInt},
	)
	pb := table.NewBuilder("P", ps)
	for i := 0; i < probeRows; i++ {
		pb.Add(value.Int(int64(i%keys)), value.Int(int64(i)))
	}
	cat.Put(pb.Build())
	bs := table.NewSchema(
		table.Column{Table: "B", Name: "k", Kind: value.KindInt},
		table.Column{Table: "B", Name: "v", Kind: value.KindInt},
	)
	bb := table.NewBuilder("B", bs)
	for i := 0; i < buildRows; i++ {
		bb.Add(value.Int(int64(i%keys)), value.Int(int64(i)))
	}
	cat.Put(bb.Build())
	return cat
}

func benchQuery() *query.Query {
	return query.NewBuilder("bench").
		Rel("P", "P").Rel("B", "B").
		Join(expr.Identity("P.a"), expr.Identity("B.k")).
		MustBuild()
}

// BenchmarkCopartHashJoin times the full ExecTree drain of a co-partitioned
// hash join (build key = shard column) across shard counts. S=1 is the
// unsharded baseline; S>1 takes the shard-local scan + zero-exchange build.
func BenchmarkCopartHashJoin(b *testing.B) {
	cat := benchCatalog(150_000, 600_000, 150_000)
	q := benchQuery()
	tree := plan.NewJoin(leaf("P"), leaf("B"))
	for _, s := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			cat.Shard(s)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := New(cat)
				if _, _, err := e.ExecTree(q, tree, &Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	cat.Shard(1)
}

// BenchmarkShardedBuildOnly isolates the hash-build strategies the join
// chooses from: the chunk-partitioned flat build plus merge (the S=1 path),
// the hash-routed sharded build plus merge (the reshuffle path), and the
// zero-exchange shard-local build (the co-partitioned path).
func BenchmarkShardedBuildOnly(b *testing.B) {
	const rows, keys, shards, workers = 600_000, 150_000, 16, 8
	cat := benchCatalog(1, rows, keys)
	buildRel := cat.MustGet("B")
	bTerm := &query.Term{Aliases: query.NewAliasSet("B"), Fn: expr.Identity("B.k")}

	b.Run("flat+merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := parallelBuild(buildRel, bTerm, &Budget{}, workers, runWorkers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("routed+merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := parallelShardedBuild(buildRel, bTerm, shards, &Budget{}, workers, runWorkers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shard-local", func(b *testing.B) {
		// Shard-major row order with per-shard bounds, as the shard-local
		// scan would deliver them.
		rel, bounds := shardMajor(buildRel, shards)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := shardLocalBuild(rel, bounds, bTerm, &Budget{}, workers, runWorkers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// shardMajor reorders a relation shard-major by its first column's hash,
// returning the reordered relation and the cumulative per-shard bounds —
// the exact input shape shardLocalBuild consumes.
func shardMajor(rel *table.Relation, s int) (*table.Relation, []int) {
	parts := make([][]table.Row, s)
	for _, row := range rel.Rows {
		h := row[0].Hash() % uint64(s)
		parts[h] = append(parts[h], row)
	}
	var rows []table.Row
	bounds := make([]int, 0, s)
	for _, p := range parts {
		rows = append(rows, p...)
		bounds = append(bounds, len(rows))
	}
	return table.NewRelation(rel.Name, rel.Schema, rows), bounds
}
