package engine

import (
	"testing"

	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// TestSelfJoinAliases: one stored table mounted under two aliases must
// behave as two independent relations (the o1/o2 pattern of §2.2).
func TestSelfJoinAliases(t *testing.T) {
	cat := table.NewCatalog()
	s := table.NewSchema(table.Column{Table: "ord", Name: "cid", Kind: value.KindInt})
	b := table.NewBuilder("ord", s)
	for i := 0; i < 50; i++ {
		b.Add(value.Int(int64(i % 10)))
	}
	cat.Put(b.Build())
	q := query.NewBuilder("self").
		Rel("o1", "ord").Rel("o2", "ord").
		Join(expr.Identity("o1.cid"), expr.Identity("o2.cid")).
		MustBuild()
	e := New(cat)
	rel, _, err := e.ExecTree(q,
		plan.NewJoin(plan.NewLeaf(query.NewAliasSet("o1")), plan.NewLeaf(query.NewAliasSet("o2"))),
		&Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// 10 groups of 5 rows each: 10 * 5 * 5 = 250 matches.
	if rel.Count() != 250 {
		t.Errorf("self join = %d rows, want 250", rel.Count())
	}
	if _, ok := rel.Schema.Lookup("o1.cid"); !ok {
		t.Error("o1 columns missing")
	}
	if _, ok := rel.Schema.Lookup("o2.cid"); !ok {
		t.Error("o2 columns missing")
	}
}

// TestMultiplePredicatesAtOneJoin: two equality predicates between the same
// pair must both be applied (one as hash key, one as residual).
func TestMultiplePredicatesAtOneJoin(t *testing.T) {
	cat := table.NewCatalog()
	mk := func(name string, shift int64) *table.Relation {
		s := table.NewSchema(
			table.Column{Table: name, Name: "x", Kind: value.KindInt},
			table.Column{Table: name, Name: "y", Kind: value.KindInt},
		)
		b := table.NewBuilder(name, s)
		for i := int64(0); i < 100; i++ {
			b.Add(value.Int(i%10), value.Int((i+shift)%10))
		}
		return b.Build()
	}
	cat.Put(mk("A", 0))
	cat.Put(mk("B", 0)) // same (x,y) pattern: joint join matches
	cat.Put(mk("C", 1)) // shifted y: joint join empty
	qAB := query.NewBuilder("ab").
		Rel("A", "A").Rel("B", "B").
		Join(expr.Identity("A.x"), expr.Identity("B.x")).
		Join(expr.Identity("A.y"), expr.Identity("B.y")).
		MustBuild()
	e := New(cat)
	rel, _, err := e.ExecTree(qAB,
		plan.NewJoin(plan.NewLeaf(query.NewAliasSet("A")), plan.NewLeaf(query.NewAliasSet("B"))), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// x determines y within each table, so joint = x-join: 10 * 10 * 10.
	if rel.Count() != 1000 {
		t.Errorf("A⋈B on (x,y) = %d, want 1000", rel.Count())
	}
	qAC := query.NewBuilder("ac").
		Rel("A", "A").Rel("C", "C").
		Join(expr.Identity("A.x"), expr.Identity("C.x")).
		Join(expr.Identity("A.y"), expr.Identity("C.y")).
		MustBuild()
	rel, _, err = e.ExecTree(qAC,
		plan.NewJoin(plan.NewLeaf(query.NewAliasSet("A")), plan.NewLeaf(query.NewAliasSet("C"))), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 0 {
		t.Errorf("A⋈C on (x,y) = %d, want 0 (correlated shift)", rel.Count())
	}
}

// TestSigmaOverJoinedExpression: Σ on top of a join measures distinct counts
// over the join result, not the base tables.
func TestSigmaOverJoinedExpression(t *testing.T) {
	cat := table.NewCatalog()
	as := table.NewSchema(
		table.Column{Table: "A", Name: "k", Kind: value.KindInt},
		table.Column{Table: "A", Name: "v", Kind: value.KindInt},
	)
	ab := table.NewBuilder("A", as)
	for i := 0; i < 100; i++ {
		ab.Add(value.Int(int64(i%4)), value.Int(int64(i)))
	}
	cat.Put(ab.Build())
	bs := table.NewSchema(table.Column{Table: "B", Name: "k", Kind: value.KindInt})
	bb := table.NewBuilder("B", bs)
	bb.Add(value.Int(0)) // joins only k=0 rows
	cat.Put(bb.Build())
	cs := table.NewSchema(table.Column{Table: "C", Name: "v", Kind: value.KindInt})
	cb := table.NewBuilder("C", cs)
	cb.Add(value.Int(1))
	cat.Put(cb.Build())
	q := query.NewBuilder("sigjoin").
		Rel("A", "A").Rel("B", "B").Rel("C", "C").
		Join(expr.Identity("A.k"), expr.Identity("B.k")).
		Join(expr.Identity("A.v"), expr.Identity("C.v")).
		MustBuild()
	e := New(cat)
	tree := plan.NewJoin(plan.NewLeaf(query.NewAliasSet("A")), plan.NewLeaf(query.NewAliasSet("B"))).WithSigma()
	_, res, err := e.ExecTree(q, tree, &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// A⋈B keeps the 25 rows with k=0; d(A.v) over the *join* is 25, not 100.
	found := false
	for _, o := range res.Sigma {
		if o.Term == q.Joins[1].L.ID {
			found = true
			if o.D < 23 || o.D > 27 {
				t.Errorf("d(A.v | A⋈B) = %v, want ~25", o.D)
			}
		}
	}
	if !found {
		t.Error("Σ must measure the still-open term over the join result")
	}
}

// TestBudgetSharedAcrossTrees: one budget spans several ExecTree calls (the
// multi-step driver's usage).
func TestBudgetSharedAcrossTrees(t *testing.T) {
	cat := fixture()
	q := rstQuery()
	e := New(cat)
	b := &Budget{MaxTuples: 1600}
	// First tree: R filtered-free scan (1000) + S (50) + join (500) = 1550.
	if _, _, err := e.ExecTree(q, plan.NewJoin(
		plan.NewLeaf(query.NewAliasSet("R")), plan.NewLeaf(query.NewAliasSet("S"))), b); err != nil {
		t.Fatalf("first tree should fit: %v", err)
	}
	// Second tree (Σ over the 1000-row R) cannot fit in the remaining 50.
	if _, _, err := e.ExecTree(q, plan.NewLeaf(query.NewAliasSet("R")).WithSigma(), b); err == nil {
		t.Error("second tree must exhaust the shared budget")
	}
}

// TestEmptyInputsPropagate: empty base tables flow through joins and Σ
// without errors.
func TestEmptyInputsPropagate(t *testing.T) {
	cat := table.NewCatalog()
	es := table.NewSchema(table.Column{Table: "E", Name: "k", Kind: value.KindInt})
	cat.Put(table.NewBuilder("E", es).Build()) // zero rows
	fs := table.NewSchema(table.Column{Table: "F", Name: "k", Kind: value.KindInt})
	fb := table.NewBuilder("F", fs)
	fb.Add(value.Int(1))
	cat.Put(fb.Build())
	q := query.NewBuilder("empty").
		Rel("E", "E").Rel("F", "F").
		Join(expr.Identity("E.k"), expr.Identity("F.k")).
		MustBuild()
	e := New(cat)
	tree := plan.NewJoin(plan.NewLeaf(query.NewAliasSet("E")), plan.NewLeaf(query.NewAliasSet("F"))).WithSigma()
	rel, res, err := e.ExecTree(q, tree, &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 0 {
		t.Errorf("empty join = %d rows", rel.Count())
	}
	for _, o := range res.Sigma {
		if o.D != 0 {
			t.Errorf("Σ over empty result must measure 0, got %v", o.D)
		}
	}
}
