// Parallel execution paths for the engine's partitionable operators: filter
// scans, both sides of hash joins (partitioned build, partitioned probe),
// the nested-loop/cross-product fallback, and the Σ statistics pass. All
// follow the same recipe — split the input into contiguous chunks, give
// every worker its own bindings, scratch row, and output buffer, and stitch
// (or merge) the buffers back together in input order — so a parallel run is
// bit-identical to the serial one: same row order, same hash-table chain
// order, same Σ sketch estimates (HLL register merge is order-independent),
// same budget totals. Only wall time changes.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/query"
	"monsoon/internal/sketch"
	"monsoon/internal/table"
)

const (
	// parallelMinRows is the smallest input for which fanning out pays;
	// below it the goroutine handoff costs more than the scan.
	parallelMinRows = 4096
	// parallelMinChunk bounds the worker count so every worker has a
	// meaningful slice of the input.
	parallelMinChunk = 1024
)

// workers resolves the engine's Parallelism knob for an operator over n input
// rows: 0 means runtime.GOMAXPROCS(0), 1 forces the serial legacy path, and
// any setting degrades to 1 when the input is too small to be worth
// splitting.
func (e *Exec) workers(n int) int {
	w := e.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 || n < parallelMinRows {
		return 1
	}
	if max := n / parallelMinChunk; w > max {
		w = max
	}
	return w
}

// splitRows partitions [0,n) into w contiguous [lo,hi) ranges whose sizes
// differ by at most one row.
func splitRows(n, w int) [][2]int {
	out := make([][2]int, 0, w)
	base, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// workerRunner fans a partitioned loop body out over w workers over n rows.
// runWorkers is the plain implementation; Exec.tracedRunner layers
// per-worker spans on top of the same fan-out.
type workerRunner func(n, w int, fn func(worker, lo, hi int) error) error

// runWorkers fans fn out over w contiguous partitions of n rows and returns
// the error of the lowest-numbered failing partition (deterministic even when
// several workers trip the budget at once).
func runWorkers(n, w int, fn func(worker, lo, hi int) error) error {
	parts := splitRows(n, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = fn(i, lo, hi)
		}(i, p[0], p[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// tracedRunner returns the worker runner for one parallel operator: plain
// runWorkers when tracing is off, otherwise a fan-out that records one
// KWorker span per partition under the operator's span. Span IDs stay
// deterministic because the coordinator pre-creates every worker span before
// the goroutines launch and ends them in index order after the barrier; each
// span's duration is the worker's own measured busy time (EndIn), not the
// coordinator's wall clock. Worker *counts* still follow GOMAXPROCS, which is
// why KWorker is the one machine-dependent span kind.
func (e *Exec) tracedRunner(op *obs.Span) workerRunner {
	if op == nil || !e.Obs.Active() {
		return runWorkers
	}
	return func(n, w int, fn func(worker, lo, hi int) error) error {
		parts := splitRows(n, w)
		// Streaming operators fan out once per large-enough batch, so the
		// operator span accumulates its total worker-span count here (the
		// "workers" attribute records only the first fan-out's width).
		op.AddNum("worker_spans", float64(len(parts)))
		spans := make([]*obs.Span, len(parts))
		for i, p := range parts {
			spans[i] = e.Obs.StartChild(op, obs.KWorker, fmt.Sprintf("w%d", i)).
				SetRows(p[1]-p[0], 0)
		}
		elapsed := make([]time.Duration, len(parts))
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i, p := range parts {
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				t0 := time.Now()
				errs[i] = fn(i, lo, hi)
				elapsed[i] = time.Since(t0)
			}(i, p[0], p[1])
		}
		wg.Wait()
		for i, sp := range spans {
			if errs[i] != nil {
				sp.SetStr("err", errs[i].Error())
			}
			sp.EndIn(elapsed[i])
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// stitch concatenates per-worker output buffers in partition order, which is
// exactly the order the serial loop would have produced.
func stitch(bufs [][]table.Row) []table.Row {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]table.Row, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// bindSels resolves every pushed-down selection against a schema. Bindings
// hold per-evaluation scratch, so each worker binds its own set.
func bindSels(sels []*query.SelPred, s *table.Schema) ([]boundSel, bool) {
	bound := make([]boundSel, 0, len(sels))
	for _, sel := range sels {
		b, ok := sel.T.Fn.Bind(s)
		if !ok {
			return nil, false
		}
		bound = append(bound, boundSel{b: b, k: sel.Const})
	}
	return bound, true
}

// rebindResiduals gives a worker its own residual bindings over the output
// schema (the shared ones carry scratch buffers and must not be shared).
func rebindResiduals(residuals []residual, s *table.Schema) []residual {
	if len(residuals) == 0 {
		return nil
	}
	out := make([]residual, len(residuals))
	for i, r := range residuals {
		if r.sb != nil {
			sb, _ := r.sb.UDF().Bind(s)
			out[i] = residual{sb: sb, k: r.k}
			continue
		}
		lb, _ := r.lb.UDF().Bind(s)
		rb, _ := r.rb.UDF().Bind(s)
		out[i] = residual{lb: lb, rb: rb}
	}
	return out
}

// parallelFilter is the fan-out version of execLeaf's selection scan: chunked
// input, per-worker bindings and buffers, outputs stitched in input order.
// Every binding was validated by the caller, so worker rebinds cannot fail.
func parallelFilter(base *table.Relation, sels []*query.SelPred, budget *Budget, w int, run workerRunner) ([]table.Row, error) {
	bufs := make([][]table.Row, w)
	err := run(base.Count(), w, func(worker, lo, hi int) error {
		bound, _ := bindSels(sels, base.Schema)
		out := make([]table.Row, 0, (hi-lo)/4+1)
		for _, row := range base.Rows[lo:hi] {
			keep := true
			for _, s := range bound {
				if !s.b.Eval(row).Equal(s.k) {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, row)
				if err := budget.Charge(1); err != nil {
					bufs[worker] = out
					return err
				}
			}
		}
		bufs[worker] = out
		return nil
	})
	return stitch(bufs), err
}

// parallelProbe is the fan-out version of the hash-join probe loop: the hash
// table is shared read-only, the probe side is chunked, and per-worker output
// buffers are stitched back in probe order.
func parallelProbe(buildRel, probeRel *table.Relation, ht *shardedTable, pTerm *query.Term,
	residuals []residual, outSchema *table.Schema, leftIsBuild bool, budget *Budget, w int, run workerRunner) ([]table.Row, error) {
	bufs := make([][]table.Row, w)
	err := run(probeRel.Count(), w, func(worker, lo, hi int) error {
		pb, _ := pTerm.Fn.Bind(probeRel.Schema)
		res := rebindResiduals(residuals, outSchema)
		scratch := make(table.Row, len(outSchema.Cols))
		var out []table.Row
		for _, prow := range probeRel.Rows[lo:hi] {
			// Matchless probes produce nothing; poll the deadline anyway.
			if err := budget.Charge(0); err != nil {
				bufs[worker] = out
				return err
			}
			k := pb.Eval(prow)
			if k.IsNull() {
				continue
			}
			for _, b := range ht.chains(k.Hash()) {
				if !b.key.Equal(k) {
					continue
				}
				for _, bi := range b.rows {
					brow := buildRel.Rows[bi]
					var lrow, rrow table.Row
					if leftIsBuild {
						lrow, rrow = brow, prow
					} else {
						lrow, rrow = prow, brow
					}
					copy(scratch, lrow)
					copy(scratch[len(lrow):], rrow)
					if !passResiduals(scratch, res) {
						continue
					}
					joined := make(table.Row, len(scratch))
					copy(joined, scratch)
					out = append(out, joined)
					if err := budget.Charge(1); err != nil {
						bufs[worker] = out
						return err
					}
				}
			}
		}
		bufs[worker] = out
		return nil
	})
	return stitch(bufs), err
}

// parallelBuild is the partitioned hash-join build: each worker hashes a
// contiguous chunk of the build side (global row indices) into a private
// sub-table, and the sub-tables are merged bucket-wise in worker order.
// Because chunks are contiguous and ascending, worker-order merging restores
// both serial invariants exactly — collision chains in global
// first-occurrence order, per-bucket row lists ascending — so the merged
// table is identical to the one the serial loop builds. Returns the table
// and the number of non-NULL keys inserted.
func parallelBuild(buildRel *table.Relation, bTerm *query.Term, budget *Budget, w int, run workerRunner) (hashTable, int, error) {
	subs := make([]hashTable, w)
	ins := make([]int, w)
	err := run(buildRel.Count(), w, func(worker, lo, hi int) error {
		bb, _ := bTerm.Fn.Bind(buildRel.Schema)
		ht := make(hashTable, hi-lo)
		for j, row := range buildRel.Rows[lo:hi] {
			// Building produces nothing but must still honor the deadline.
			if err := budget.Charge(0); err != nil {
				subs[worker] = ht
				return err
			}
			k := bb.Eval(row)
			if k.IsNull() {
				continue
			}
			ins[worker]++
			ht.insert(k, lo+j)
		}
		subs[worker] = ht
		return nil
	})
	inserted := 0
	for _, n := range ins {
		inserted += n
	}
	if err != nil {
		return nil, inserted, err
	}
	merged := subs[0]
	for wi := 1; wi < w; wi++ {
		mergeHashTables(merged, subs[wi])
	}
	return merged, inserted, nil
}

// mergeHashTables folds src's chains into dst: row lists concatenate and
// unseen buckets append after dst's. Correct only when every row index in
// src exceeds every index in dst — contiguous ascending worker chunks —
// which is how both parallel builds call it, worker by worker in order.
func mergeHashTables(dst, src hashTable) {
	for h, chain := range src {
		d := dst[h]
		for _, b := range chain {
			found := false
			for di := range d {
				if d[di].key.Equal(b.key) {
					d[di].rows = append(d[di].rows, b.rows...)
					found = true
					break
				}
			}
			if !found {
				d = append(d, b)
			}
		}
		dst[h] = d
	}
}

// parallelShardedBuild is the exchange-routed parallelBuild: each worker
// hashes its contiguous chunk into a private shardedTable (routing every
// key by its full hash), and the per-worker tables merge shard by shard in
// worker order — the same ascending-chunk merge parallelBuild uses, applied
// within each sub-table, so the result is identical to a serial routed
// build, which in turn probes identically to the unsharded table.
func parallelShardedBuild(buildRel *table.Relation, bTerm *query.Term, s int, budget *Budget, w int, run workerRunner) (*shardedTable, int, error) {
	subs := make([]*shardedTable, w)
	ins := make([]int, w)
	err := run(buildRel.Count(), w, func(worker, lo, hi int) error {
		bb, _ := bTerm.Fn.Bind(buildRel.Schema)
		st := newShardedTable(s, hi-lo)
		subs[worker] = st
		for j, row := range buildRel.Rows[lo:hi] {
			// Building produces nothing but must still honor the deadline.
			if err := budget.Charge(0); err != nil {
				return err
			}
			k := bb.Eval(row)
			if k.IsNull() {
				continue
			}
			ins[worker]++
			st.insert(k, lo+j)
		}
		return nil
	})
	inserted := 0
	for _, n := range ins {
		inserted += n
	}
	if err != nil {
		return nil, inserted, err
	}
	merged := subs[0]
	for wi := 1; wi < w; wi++ {
		for si, sub := range subs[wi].subs {
			mergeHashTables(merged.subs[si], sub)
		}
	}
	return merged, inserted, nil
}

// shardLocalBuild is the zero-exchange build of a co-partitioned hash join.
// The build rows arrived shard-major from the storage layout — bounds[si] is
// the cumulative end of storage shard si's rows in buildRel — and within
// storage shard si every key hashes to si mod S by construction (the shard
// column IS the build key and storage routes by the same value hash). Each
// sub-table therefore builds directly from its contiguous row range: no
// per-row routing and, unlike the chunk-partitioned builds, no cross-worker
// merge — workers own whole sub-tables, partitioned contiguously by shard
// index. Insertion order within a sub-table is the global (ascending) row
// order, so chains come out in first-occurrence order with ascending row
// lists — identical to the serial routed build, which probes identically to
// the unsharded table. Returns the table and the non-NULL insert count.
func shardLocalBuild(buildRel *table.Relation, bounds []int, bTerm *query.Term, budget *Budget, w int, run workerRunner) (*shardedTable, int, error) {
	s := len(bounds)
	if w > s {
		w = s
	}
	if w < 1 {
		w = 1
	}
	t := &shardedTable{subs: make([]hashTable, s)}
	ins := make([]int, s)
	err := run(s, w, func(_, lo, hi int) error {
		bb, _ := bTerm.Fn.Bind(buildRel.Schema)
		for si := lo; si < hi; si++ {
			start := 0
			if si > 0 {
				start = bounds[si-1]
			}
			rows := buildRel.Rows[start:bounds[si]]
			ht := make(hashTable, len(rows))
			t.subs[si] = ht
			for j, row := range rows {
				// Building produces nothing but must still honor the deadline.
				if err := budget.Charge(0); err != nil {
					return err
				}
				k := bb.Eval(row)
				if k.IsNull() {
					continue
				}
				ins[si]++
				ht.insertHash(k.Hash(), k, start+j)
			}
		}
		return nil
	})
	inserted := 0
	for _, n := range ins {
		inserted += n
	}
	if err != nil {
		return nil, inserted, err
	}
	return t, inserted, nil
}

// shardLocalBuildPerm is shardLocalBuild without the drain: when the
// co-partitioned build leaf has no pushed-down selections, every stored row
// survives the scan, so sub-tables build in place off the base relation,
// inserting global row indices. The bit-identity argument is the same — all
// rows of one key live in one shard and in-shard indices ascend, so every
// bucket's chain and row list matches the serial unsharded build's — but no
// row header is ever copied.
//
// coPartitioned guarantees the build term is the identity of the shard
// column, so the key of row i is Rows[i][0] and its hash is the layout's
// cached RowHash[i]; the build never re-runs the binding or FNV. Serially
// it routes a single sequential pass over the stored rows (the prefetchable
// access pattern the unsharded build enjoys); with workers each owns whole
// sub-tables and walks its shards' permutation slices instead, trading
// strided row reads for merge-free parallelism.
func shardLocalBuildPerm(buildRel *table.Relation, sh *table.Sharded, budget *Budget, w int, run workerRunner) (*shardedTable, int, error) {
	s := sh.NumShards()
	if w > s {
		w = s
	}
	if w < 1 {
		w = 1
	}
	t := &shardedTable{subs: make([]hashTable, s)}
	for si := 0; si < s; si++ {
		t.subs[si] = make(hashTable, len(sh.Shard(si)))
	}
	if w == 1 {
		inserted := 0
		for i, row := range buildRel.Rows {
			// Building produces nothing but must still honor the deadline.
			if err := budget.Charge(0); err != nil {
				return nil, inserted, err
			}
			k := row[0]
			if k.IsNull() {
				continue
			}
			inserted++
			h := sh.RowHash[i]
			t.subs[h%uint64(s)].insertHash(h, k, i)
		}
		return t, inserted, nil
	}
	ins := make([]int, s)
	err := run(s, w, func(_, lo, hi int) error {
		for si := lo; si < hi; si++ {
			ht := t.subs[si]
			for _, id := range sh.Shard(si) {
				if err := budget.Charge(0); err != nil {
					return err
				}
				row := buildRel.Rows[id]
				k := row[0]
				if k.IsNull() {
					continue
				}
				ins[si]++
				ht.insertHash(sh.RowHash[id], k, int(id))
			}
		}
		return nil
	})
	inserted := 0
	for _, n := range ins {
		inserted += n
	}
	if err != nil {
		return nil, inserted, err
	}
	return t, inserted, nil
}

// parallelNestedLoop fans the filtered-product scan out over contiguous
// chunks of the outer (left) rows: per-worker residual bindings, scratch row,
// and output buffer, stitched back in outer order — exactly the serial loop's
// lrow-major output order. Returns the joined rows and the number of row
// pairs scanned.
func parallelNestedLoop(left, right *table.Relation, residuals []residual,
	outSchema *table.Schema, budget *Budget, w int, run workerRunner) ([]table.Row, int, error) {
	bufs := make([][]table.Row, w)
	pairsBy := make([]int, w)
	err := run(left.Count(), w, func(worker, lo, hi int) error {
		res := rebindResiduals(residuals, outSchema)
		scratch := make(table.Row, len(outSchema.Cols))
		var out []table.Row
		for _, lrow := range left.Rows[lo:hi] {
			copy(scratch, lrow)
			for _, rrow := range right.Rows {
				pairsBy[worker]++
				copy(scratch[len(lrow):], rrow)
				if !passResiduals(scratch, res) {
					// Even rejected pairs consume work; poll the deadline
					// with a zero charge, as the serial loop does.
					if err := budget.Charge(0); err != nil {
						bufs[worker] = out
						return err
					}
					continue
				}
				joined := make(table.Row, len(scratch))
				copy(joined, scratch)
				out = append(out, joined)
				if err := budget.Charge(1); err != nil {
					bufs[worker] = out
					return err
				}
			}
		}
		bufs[worker] = out
		return nil
	})
	pairs := 0
	for _, p := range pairsBy {
		pairs += p
	}
	return stitch(bufs), pairs, err
}

// sigmaSketches holds one worker's (or the merged) HLL per tracked term, in
// the caller's term order.
type sigmaSketches []*sketch.HLL

// parallelSigma runs the Σ pass fan-out: each worker clones one HLL per term,
// scans its chunk, and the clones are merged register-wise afterwards — the
// merge is a per-register max, so the merged estimate is identical to the
// serial single-sketch estimate regardless of partitioning.
func parallelSigma(rel *table.Relation, terms []*query.Term, p uint8, budget *Budget, w int, run workerRunner) (sigmaSketches, error) {
	clones := make([]sigmaSketches, w)
	err := run(rel.Count(), w, func(worker, lo, hi int) error {
		bs := make([]*expr.Binding, len(terms))
		hs := make(sigmaSketches, len(terms))
		for i, t := range terms {
			bs[i], _ = t.Fn.Bind(rel.Schema)
			hs[i] = sketch.NewHLL(p)
		}
		clones[worker] = hs
		for _, row := range rel.Rows[lo:hi] {
			if err := budget.Charge(1); err != nil {
				return err
			}
			for i, b := range bs {
				v := b.Eval(row)
				if v.IsNull() {
					continue
				}
				hs[i].Add(v.Hash())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := make(sigmaSketches, len(terms))
	for i := range terms {
		merged[i] = sketch.NewHLL(p)
		for _, hs := range clones {
			merged[i].Merge(hs[i])
		}
	}
	return merged, nil
}

// serialSigma runs one relation's Σ pass inline — the per-shard fallback
// when a shard is too small to fan out. Charging and estimates match the
// parallel path exactly.
func serialSigma(rel *table.Relation, terms []*query.Term, p uint8, budget *Budget) (sigmaSketches, error) {
	bs := make([]*expr.Binding, len(terms))
	hs := make(sigmaSketches, len(terms))
	for i, t := range terms {
		bs[i], _ = t.Fn.Bind(rel.Schema)
		hs[i] = sketch.NewHLL(p)
	}
	for _, row := range rel.Rows {
		if err := budget.Charge(1); err != nil {
			return nil, err
		}
		for i, b := range bs {
			v := b.Eval(row)
			if v.IsNull() {
				continue
			}
			hs[i].Add(v.Hash())
		}
	}
	return hs, nil
}

// shardedSigma is the partial-Σ exchange: the materialized result is
// partitioned by its first column's hash — the storage layer's routing —
// and every shard runs its own HLL pass under a per-shard KShard span,
// fanning out within the shard when it is large enough. The partials merge
// register-wise in shard index order; the merge is a per-register max, so
// estimates are identical to the single-pass sketch for any partitioning,
// and budget totals are identical because every row is charged exactly once
// regardless of which shard visits it.
func (e *Exec) shardedSigma(op *obs.Span, rel *table.Relation, terms []*query.Term, p uint8, s int, budget *Budget) (sigmaSketches, error) {
	parts := make([][]table.Row, s)
	for _, row := range rel.Rows {
		h := row[0].Hash() % uint64(s)
		parts[h] = append(parts[h], row)
	}
	merged := make(sigmaSketches, len(terms))
	for i := range terms {
		merged[i] = sketch.NewHLL(p)
	}
	for si, part := range parts {
		ssp := e.Obs.StartChild(op, obs.KShard, fmt.Sprintf("s%d", si)).SetRows(len(part), len(terms))
		shard := table.NewRelation(rel.Name, rel.Schema, part)
		var partials sigmaSketches
		var err error
		if w := e.workers(len(part)); w > 1 {
			ssp.SetNum("workers", float64(w))
			partials, err = parallelSigma(shard, terms, p, budget, w, e.tracedRunner(ssp))
		} else {
			partials, err = serialSigma(shard, terms, p, budget)
		}
		if err != nil {
			ssp.SetStr("err", err.Error()).End()
			return nil, err
		}
		for i := range terms {
			merged[i].Merge(partials[i])
		}
		ssp.End()
	}
	return merged, nil
}
