package engine

import (
	"reflect"
	"testing"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// execAt runs the tree on a fresh engine with the given batch size and worker
// count and returns everything a determinism check cares about.
func execAt(t *testing.T, cat *table.Catalog, q *query.Query, tree *plan.Node, batch, par int) (*table.Relation, *ExecResult, float64) {
	t.Helper()
	e := New(cat)
	e.BatchSize = batch
	e.Parallelism = par
	b := &Budget{}
	rel, res, err := e.ExecTree(q, tree, b)
	if err != nil {
		t.Fatalf("batch %d par %d: %v", batch, par, err)
	}
	return rel, res, b.Produced()
}

// streamBatchSizes spans the interesting regimes: row-at-a-time, a prime that
// straddles every operator boundary, the default, batch ≥ input, and the
// negative sentinel that restores one-shot materialization.
var streamBatchSizes = []int{1, 7, 4096, 1 << 20, -1}

// TestStreamingMatchesMaterialized is the tentpole guarantee at the engine
// level: the streaming pipeline must be bit-identical to full materialization
// — same rows in the same order, same per-node counts, same objects-produced
// charge — at every batch size.
func TestStreamingMatchesMaterialized(t *testing.T) {
	q := rstQuery()
	trees := map[string]*plan.Node{
		"two-way":    plan.NewJoin(leaf("R"), leaf("S")),
		"three-way":  plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T")),
		"right-deep": plan.NewJoin(leaf("T"), plan.NewJoin(leaf("S"), leaf("R"))),
		"cross":      plan.NewJoin(leaf("S"), leaf("T")),
		"sigma-leaf": leaf("R").WithSigma(),
	}
	for name, tree := range trees {
		refRel, refRes, refProduced := execAt(t, fixture(), q, tree, -1, 1)
		for _, batch := range streamBatchSizes {
			rel, res, produced := execAt(t, fixture(), q, tree, batch, 1)
			if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
				t.Errorf("%s batch %d: rows differ from materialized (%d vs %d)",
					name, batch, rel.Count(), refRel.Count())
			}
			if !reflect.DeepEqual(res.Counts, refRes.Counts) {
				t.Errorf("%s batch %d: counts %v, want %v", name, batch, res.Counts, refRes.Counts)
			}
			if res.Produced != refRes.Produced || produced != refProduced {
				t.Errorf("%s batch %d: produced %v/%v, want %v/%v",
					name, batch, res.Produced, produced, refRes.Produced, refProduced)
			}
			if !reflect.DeepEqual(res.Sigma, refRes.Sigma) {
				t.Errorf("%s batch %d: sigma observations diverged", name, batch)
			}
		}
	}
}

// TestStreamingParallelMatchesSerial pins the parallel streaming path: the
// fan-out operators must stitch every batch back in input order, so any
// (batch size × worker count) combination yields the serial materialized
// answer byte for byte.
func TestStreamingParallelMatchesSerial(t *testing.T) {
	q := rstQuery()
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	refRel, refRes, _ := execAt(t, fixture(), q, tree, -1, 1)
	for _, batch := range streamBatchSizes {
		for _, par := range []int{0, 2, 4} {
			rel, res, _ := execAt(t, fixture(), q, tree, batch, par)
			if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
				t.Errorf("batch %d par %d: rows differ from serial materialized", batch, par)
			}
			if res.Produced != refRes.Produced || !reflect.DeepEqual(res.Counts, refRes.Counts) {
				t.Errorf("batch %d par %d: accounting diverged: %v/%v vs %v/%v",
					batch, par, res.Produced, res.Counts, refRes.Produced, refRes.Counts)
			}
		}
	}
}

// TestStreamingResidualsAcrossBatches covers residual predicates whose
// evaluation straddles batch boundaries: the multi-alias SumMod term becomes
// evaluable only mid-pipeline, and a 7-row batch slices every operator's
// input at positions the materialized run never sees.
func TestStreamingResidualsAcrossBatches(t *testing.T) {
	q := query.NewBuilder("multi").
		Rel("s", "S").Rel("t1", "T").Rel("t2", "T").
		Join(expr.SumMod("s.k", "t1.k", 7), expr.Identity("t2.k")).
		MustBuild()
	for name, tree := range map[string]*plan.Node{
		"left-deep":  plan.NewJoin(plan.NewJoin(leaf("s"), leaf("t1")), leaf("t2")),
		"right-deep": plan.NewJoin(leaf("t2"), plan.NewJoin(leaf("s"), leaf("t1"))),
	} {
		refRel, refRes, _ := execAt(t, fixture(), q, tree, -1, 1)
		for _, batch := range streamBatchSizes {
			rel, res, _ := execAt(t, fixture(), q, tree, batch, 1)
			if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
				t.Errorf("%s batch %d: residual rows differ from materialized", name, batch)
			}
			if res.Produced != refRes.Produced {
				t.Errorf("%s batch %d: produced %v, want %v", name, batch, res.Produced, refRes.Produced)
			}
		}
	}
}

// TestStreamingEmptyInputs: empty relations must flow through the pipeline as
// zero batches, not crash it — on either side of a hash join or a cross
// product.
func TestStreamingEmptyInputs(t *testing.T) {
	cat := fixture()
	es := table.NewSchema(table.Column{Table: "E", Name: "k", Kind: value.KindInt})
	cat.Put(table.NewBuilder("E", es).Build())
	q := query.NewBuilder("empty").
		Rel("R", "R").Rel("E", "E").
		Join(expr.Identity("R.a"), expr.Identity("E.k")).
		MustBuild()
	for name, tree := range map[string]*plan.Node{
		"empty-right": plan.NewJoin(leaf("R"), leaf("E")),
		"empty-left":  plan.NewJoin(leaf("E"), leaf("R")),
		"empty-leaf":  leaf("E"),
	} {
		for _, batch := range streamBatchSizes {
			e := New(cat)
			e.BatchSize = batch
			rel, res, err := e.ExecTree(q, tree, &Budget{})
			if err != nil {
				t.Fatalf("%s batch %d: %v", name, batch, err)
			}
			if rel.Count() != 0 {
				t.Errorf("%s batch %d: %d rows, want 0", name, batch, rel.Count())
			}
			if name == "empty-leaf" && res.Produced != 0 {
				t.Errorf("%s batch %d: produced %v, want 0", name, batch, res.Produced)
			}
		}
	}
}

// TestStreamingReuseAcrossBatchSizes: reusing a previously materialized
// subtree must charge and count identically whether the reuse pass is sliced
// into slabs or replayed whole.
func TestStreamingReuseAcrossBatchSizes(t *testing.T) {
	q := rstQuery()
	ref := -1.0
	for _, batch := range streamBatchSizes {
		e := New(fixture())
		e.BatchSize = batch
		if _, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{}); err != nil {
			t.Fatal(err)
		}
		rel, res, err := e.ExecTree(q, plan.NewJoin(leaf("R", "S"), leaf("T")), &Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Count() != 1000 {
			t.Errorf("batch %d: ([R+S]⋈T) = %d, want 1000", batch, rel.Count())
		}
		if ref < 0 {
			ref = res.Produced
		} else if res.Produced != ref {
			t.Errorf("batch %d: reuse produced %v, want %v", batch, res.Produced, ref)
		}
	}
}

// TestStreamingBudgetCharges: the tuple cap must trip under streaming exactly
// as it does under materialization — the per-batch charging changes when the
// check happens, never whether it happens.
func TestStreamingBudgetCharges(t *testing.T) {
	q := rstQuery()
	for _, batch := range streamBatchSizes {
		e := New(fixture())
		e.BatchSize = batch
		_, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{MaxTuples: 100})
		if err == nil {
			t.Errorf("batch %d: tuple cap must trip", batch)
		}
	}
}

// TestStreamingPeakBytesSampled: with a metrics registry attached the drain
// loop samples heap usage; the result and the gauge must both carry it.
func TestStreamingPeakBytesSampled(t *testing.T) {
	q := rstQuery()
	e := New(fixture())
	e.Metrics = obs.NewRegistry()
	_, res, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes <= 0 {
		t.Errorf("PeakBytes = %v, want > 0 with Metrics set", res.PeakBytes)
	}
	if g := e.Metrics.Gauge("monsoon.exec.peak_bytes").Value(); g != res.PeakBytes {
		t.Errorf("gauge %v != result %v", g, res.PeakBytes)
	}
	// Without a registry the sampler stays off: no MemStats reads on the hot
	// path, and PeakBytes stays zero.
	e2 := New(fixture())
	_, res2, err := e2.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PeakBytes != 0 {
		t.Errorf("PeakBytes = %v without Metrics, want 0", res2.PeakBytes)
	}
}
