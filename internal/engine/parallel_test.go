package engine

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// bigFixture builds a catalog large enough to cross the engine's
// parallelMinRows threshold on both the scan and the probe side:
//
//	BR: 30000 rows, BR.a = i%1500 (1500 distinct), BR.b = i%7
//	BS: 9000 rows,  BS.k = i%1500 (1500 distinct)
func bigFixture() *table.Catalog {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "BR", Name: "a", Kind: value.KindInt},
		table.Column{Table: "BR", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("BR", rs)
	for i := 0; i < 30000; i++ {
		rb.Add(value.Int(int64(i%1500)), value.Int(int64(i%7)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "BS", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("BS", ss)
	for i := 0; i < 9000; i++ {
		sb.Add(value.Int(int64(i % 1500)))
	}
	cat.Put(sb.Build())
	return cat
}

func bigQuery() *query.Query {
	return query.NewBuilder("big").
		Rel("BR", "BR").Rel("BS", "BS").
		Join(expr.Identity("BR.a"), expr.Identity("BS.k")).
		Select(expr.Identity("BR.b"), value.Int(3)).
		MustBuild()
}

// TestSerialParallelIdentical is the determinism gate for the parallel
// execution path: a serial run (Parallelism = 1) and a parallel run must
// produce bit-identical relations (row order included), identical hardened
// counts and Σ sketch estimates, and identical budget totals.
func TestSerialParallelIdentical(t *testing.T) {
	cat := bigFixture()
	q := bigQuery()
	tree := plan.NewJoin(leaf("BR"), leaf("BS")).WithSigma()

	run := func(par int) (*table.Relation, *ExecResult, float64) {
		e := New(cat)
		e.Parallelism = par
		b := &Budget{}
		rel, res, err := e.ExecTree(q, tree, b)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return rel, res, b.Produced()
	}
	srel, sres, sprod := run(1)
	for _, par := range []int{0, 2, 3, 8} {
		prel, pres, pprod := run(par)
		if prel.Count() != srel.Count() {
			t.Fatalf("parallelism %d: %d rows, serial %d", par, prel.Count(), srel.Count())
		}
		if !reflect.DeepEqual(prel.Rows, srel.Rows) {
			t.Fatalf("parallelism %d: row content or order differs from serial", par)
		}
		if !reflect.DeepEqual(pres.Counts, sres.Counts) {
			t.Errorf("parallelism %d: counts %v, serial %v", par, pres.Counts, sres.Counts)
		}
		if pres.Produced != sres.Produced || pprod != sprod {
			t.Errorf("parallelism %d: produced %v/%v, serial %v/%v",
				par, pres.Produced, pprod, sres.Produced, sprod)
		}
		if !reflect.DeepEqual(pres.Sigma, sres.Sigma) {
			t.Errorf("parallelism %d: Σ observations %v, serial %v", par, pres.Sigma, sres.Sigma)
		}
	}
}

// TestParallelSpansCarryWorkers pins the span-stream contract of the parallel
// path: scan, hash-build, hash-probe, nested-loop, and Σ spans report the
// worker count, rows in/out identical to the serial run, and the span
// sequence itself is unchanged.
func TestParallelSpansCarryWorkers(t *testing.T) {
	cat := bigFixture()
	q := bigQuery()
	tree := plan.NewJoin(leaf("BR"), leaf("BS")).WithSigma()

	trace := func(par int) *obs.Collector {
		col := &obs.Collector{}
		e := New(cat)
		e.Parallelism = par
		e.Obs = obs.NewTracer(col)
		if _, _, err := e.ExecTree(q, tree, &Budget{}); err != nil {
			t.Fatal(err)
		}
		return col
	}
	ser, p := trace(1), trace(4)
	// The parallel stream additionally carries one KWorker span per fan-out
	// worker (the one machine-dependent kind); set those aside and demand the
	// remaining operator stream match the serial one span-for-span.
	var pOps []*obs.Span
	workersByParent := make(map[int]int)
	for _, sp := range p.Spans {
		if sp.Kind == obs.KWorker {
			workersByParent[sp.Parent]++
			continue
		}
		pOps = append(pOps, sp)
	}
	for _, ssp := range ser.Spans {
		if ssp.Kind == obs.KWorker {
			t.Fatalf("serial run emitted a %s span", obs.KWorker)
		}
	}
	if len(ser.Spans) != len(pOps) {
		t.Fatalf("span count changed: serial %d, parallel %d (workers excluded)", len(ser.Spans), len(pOps))
	}
	sawWorkers := 0
	for i, psp := range pOps {
		ssp := ser.Spans[i]
		if psp.Kind != ssp.Kind || psp.RowsIn != ssp.RowsIn || psp.RowsOut != ssp.RowsOut {
			t.Errorf("span %d: parallel %s %d/%d vs serial %s %d/%d",
				i, psp.Kind, psp.RowsIn, psp.RowsOut, ssp.Kind, ssp.RowsIn, ssp.RowsOut)
		}
		if w, ok := psp.Num["workers"]; ok {
			sawWorkers++
			if w < 2 {
				t.Errorf("span %d (%s): workers attribute %v, want >= 2", i, psp.Kind, w)
			}
			switch psp.Kind {
			case obs.KScan, obs.KHashBuild, obs.KHashProbe, obs.KNestedLoop, obs.KSigma:
			default:
				t.Errorf("span %d: workers attribute on unexpected kind %s", i, psp.Kind)
			}
			// The fan-out must be visible in the span tree too. Streaming
			// operators fan out once per large-enough batch (the "workers"
			// attribute records only the first fan-out's width), so the
			// KWorker spans parented here must match the operator's
			// accumulated worker_spans total, and there is at least one
			// fan-out of the advertised width.
			total := int(psp.Num["worker_spans"])
			if got := workersByParent[psp.ID]; got != total || total < int(w) {
				t.Errorf("span %d (%s): %d worker spans, worker_spans says %d (workers %v)",
					i, psp.Kind, got, total, w)
			}
			delete(workersByParent, psp.ID)
		}
	}
	for parent, n := range workersByParent {
		t.Errorf("%d worker spans parented to span %d, which carries no workers attribute", n, parent)
	}
	if sawWorkers == 0 {
		t.Error("no span carried a workers attribute; parallel path never engaged")
	}
	for _, ssp := range ser.Spans {
		if _, ok := ssp.Num["workers"]; ok {
			t.Errorf("serial span %s carries a workers attribute", ssp.Kind)
		}
	}
}

// TestParallelBudgetAbort: a tuple budget trips the parallel path with
// ErrBudget exactly as it does the serial one.
func TestParallelBudgetAbort(t *testing.T) {
	cat := bigFixture()
	q := bigQuery()
	tree := plan.NewJoin(leaf("BR"), leaf("BS"))
	for _, par := range []int{1, 4} {
		e := New(cat)
		e.Parallelism = par
		_, _, err := e.ExecTree(q, tree, &Budget{MaxTuples: 1000})
		if !errors.Is(err, ErrBudget) {
			t.Errorf("parallelism %d: err = %v, want ErrBudget", par, err)
		}
	}
}

// TestSplitRows: the partitioner covers [0,n) exactly once, in order.
func TestSplitRows(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {4096, 4}, {7, 7}, {5, 1}, {1024, 2}} {
		parts := splitRows(tc.n, tc.w)
		if len(parts) != tc.w {
			t.Fatalf("splitRows(%d,%d): %d parts", tc.n, tc.w, len(parts))
		}
		next := 0
		for _, p := range parts {
			if p[0] != next || p[1] < p[0] {
				t.Fatalf("splitRows(%d,%d): bad range %v at offset %d", tc.n, tc.w, p, next)
			}
			next = p[1]
		}
		if next != tc.n {
			t.Fatalf("splitRows(%d,%d): covered %d rows", tc.n, tc.w, next)
		}
	}
}

// TestWorkersKnob pins the knob semantics: 1 is serial, 0 defaults to the
// machine width, small inputs never fan out, and chunks stay meaningful.
func TestWorkersKnob(t *testing.T) {
	e := New(table.NewCatalog())
	e.Parallelism = 1
	if w := e.exec().workers(1 << 20); w != 1 {
		t.Errorf("Parallelism 1: workers = %d", w)
	}
	e.Parallelism = 8
	if w := e.exec().workers(100); w != 1 {
		t.Errorf("tiny input: workers = %d, want 1", w)
	}
	if w := e.exec().workers(parallelMinRows); w < 2 || w > parallelMinRows/parallelMinChunk {
		t.Errorf("threshold input: workers = %d", w)
	}
	e.Parallelism = 0
	if w := e.exec().workers(1 << 20); w < 1 {
		t.Errorf("default parallelism: workers = %d", w)
	}
}

// TestNestedLoopSpanReportsPairs pins the nested-loop span's rows-in to the
// number of row pairs actually scanned (the full cross product), not the sum
// of the input sizes — per-operator throughput derived from the span stream
// depends on it.
func TestNestedLoopSpanReportsPairs(t *testing.T) {
	cat := fixture()
	// R ⋈ T with no separating predicate: SumMod crosses both aliases, so
	// the engine must fall back to a nested loop over 1000×20 pairs.
	q := query.NewBuilder("cross").
		Rel("R", "R").Rel("T", "T").
		Select(expr.SumMod("R.b", "T.k", 97), value.Int(5)).
		MustBuild()
	col := &obs.Collector{}
	e := New(cat)
	e.Obs = obs.NewTracer(col)
	if _, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("T")), &Budget{}); err != nil {
		t.Fatal(err)
	}
	nls := col.SpansOf(obs.KNestedLoop)
	if len(nls) != 1 {
		t.Fatalf("nested-loop spans = %d, want 1", len(nls))
	}
	if nls[0].RowsIn != 1000*20 {
		t.Errorf("nested-loop rows-in = %d, want %d pairs scanned", nls[0].RowsIn, 1000*20)
	}
}

// buildFixture returns a relation with interleaved NULL keys and the join
// term that binds its key column, for driving parallelBuild directly.
func buildFixture(rows int) (*table.Relation, *query.Term) {
	ns := table.NewSchema(table.Column{Table: "N", Name: "x", Kind: value.KindInt})
	nb := table.NewBuilder("N", ns)
	for i := 0; i < rows; i++ {
		if i%5 == 3 {
			nb.Add(value.Null())
		} else {
			nb.Add(value.Int(int64(i % 97)))
		}
	}
	ms := table.NewSchema(table.Column{Table: "M", Name: "y", Kind: value.KindInt})
	mb := table.NewBuilder("M", ms)
	mb.Add(value.Int(0))
	cat := table.NewCatalog()
	cat.Put(nb.Build())
	cat.Put(mb.Build())
	q := query.NewBuilder("n").
		Rel("N", "N").Rel("M", "M").
		Join(expr.Identity("N.x"), expr.Identity("M.y")).
		MustBuild()
	return nb.Build(), q.Joins[0].L
}

// serialBuild replicates the engine's serial build loop, as the reference
// the partitioned build must reproduce exactly.
func serialBuild(rel *table.Relation, term *query.Term) (hashTable, int) {
	bb, _ := term.Fn.Bind(rel.Schema)
	ht := make(hashTable, rel.Count())
	inserted := 0
	for i, row := range rel.Rows {
		k := bb.Eval(row)
		if k.IsNull() {
			continue
		}
		inserted++
		ht.insert(k, i)
	}
	return ht, inserted
}

// TestParallelBuildIdenticalTable: the partitioned build merges to a table
// deep-equal to the serial one — chain order, row order, NULL skipping — for
// worker counts below, at, and far above the row count.
func TestParallelBuildIdenticalTable(t *testing.T) {
	for _, rows := range []int{5000, 17} {
		rel, term := buildFixture(rows)
		want, wantIns := serialBuild(rel, term)
		for _, w := range []int{1, 2, 7, 64} {
			ht, ins, err := parallelBuild(rel, term, &Budget{}, w, runWorkers)
			if err != nil {
				t.Fatalf("rows=%d w=%d: %v", rows, w, err)
			}
			if ins != wantIns {
				t.Errorf("rows=%d w=%d: inserted %d, want %d", rows, w, ins, wantIns)
			}
			if !reflect.DeepEqual(ht, want) {
				t.Errorf("rows=%d w=%d: merged table differs from serial build", rows, w)
			}
		}
	}
}

// TestParallelBuildEmptySide: an empty build side merges to an empty table
// with zero insertions for any worker count.
func TestParallelBuildEmptySide(t *testing.T) {
	rel, term := buildFixture(0)
	for _, w := range []int{1, 2, 7, 64} {
		ht, ins, err := parallelBuild(rel, term, &Budget{}, w, runWorkers)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if ins != 0 || len(ht) != 0 {
			t.Errorf("w=%d: inserted %d, table size %d, want empty", w, ins, len(ht))
		}
	}
}

// TestParallelBuildBudgetAbort: a tripped budget surfaces ErrBudget from the
// partitioned build just as the serial loop does.
func TestParallelBuildBudgetAbort(t *testing.T) {
	rel, term := buildFixture(5000)
	b := &Budget{}
	b.Deadline = time.Now().Add(-time.Second)
	if _, _, err := parallelBuild(rel, term, b, 4, runWorkers); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// crossFixture builds a pairs-heavy catalog with no separating predicate:
// CL × CR must run as a nested loop over enough pairs to engage the fan-out.
func crossFixture(leftRows, rightRows int) *table.Catalog {
	cat := table.NewCatalog()
	ls := table.NewSchema(table.Column{Table: "CL", Name: "a", Kind: value.KindInt})
	lb := table.NewBuilder("CL", ls)
	for i := 0; i < leftRows; i++ {
		lb.Add(value.Int(int64(i)))
	}
	cat.Put(lb.Build())
	rs := table.NewSchema(table.Column{Table: "CR", Name: "b", Kind: value.KindInt})
	rb := table.NewBuilder("CR", rs)
	for i := 0; i < rightRows; i++ {
		rb.Add(value.Int(int64(i)))
	}
	cat.Put(rb.Build())
	return cat
}

// TestNestedLoopSerialParallelIdentical: the fanned-out pairs scan matches
// the serial nested loop bit for bit — row order, pair count in the span,
// budget totals — with a crossing residual term and as a pure cross product.
func TestNestedLoopSerialParallelIdentical(t *testing.T) {
	cases := []struct {
		name string
		q    *query.Query
	}{
		{"residual", query.NewBuilder("resid").
			Rel("CL", "CL").Rel("CR", "CR").
			Select(expr.SumMod("CL.a", "CR.b", 13), value.Int(4)).
			MustBuild()},
		{"pure-cross", query.NewBuilder("cross").
			Rel("CL", "CL").Rel("CR", "CR").
			MustBuild()},
	}
	cat := crossFixture(300, 40)
	tree := plan.NewJoin(leaf("CL"), leaf("CR"))
	for _, tc := range cases {
		run := func(par int) (*table.Relation, float64, *obs.Span) {
			col := &obs.Collector{}
			e := New(cat)
			e.Parallelism = par
			e.Obs = obs.NewTracer(col)
			b := &Budget{}
			rel, _, err := e.ExecTree(tc.q, tree, b)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", tc.name, par, err)
			}
			nls := col.SpansOf(obs.KNestedLoop)
			if len(nls) != 1 {
				t.Fatalf("%s parallelism %d: %d nested-loop spans", tc.name, par, len(nls))
			}
			return rel, b.Produced(), nls[0]
		}
		srel, sprod, ssp := run(1)
		for _, par := range []int{0, 2, 7, 64} {
			prel, pprod, psp := run(par)
			if !reflect.DeepEqual(prel.Rows, srel.Rows) {
				t.Errorf("%s parallelism %d: rows differ from serial", tc.name, par)
			}
			if pprod != sprod {
				t.Errorf("%s parallelism %d: produced %v, serial %v", tc.name, par, pprod, sprod)
			}
			if psp.RowsIn != ssp.RowsIn || psp.RowsOut != ssp.RowsOut {
				t.Errorf("%s parallelism %d: span %d/%d, serial %d/%d",
					tc.name, par, psp.RowsIn, psp.RowsOut, ssp.RowsIn, ssp.RowsOut)
			}
		}
	}
}

// TestNestedLoopTinyInputs: worker counts far above the outer cardinality
// degrade cleanly and stay bit-identical to serial.
func TestNestedLoopTinyInputs(t *testing.T) {
	cat := crossFixture(3, 2000)
	q := query.NewBuilder("tiny").Rel("CL", "CL").Rel("CR", "CR").MustBuild()
	tree := plan.NewJoin(leaf("CL"), leaf("CR"))
	run := func(par int) *table.Relation {
		e := New(cat)
		e.Parallelism = par
		rel, _, err := e.ExecTree(q, tree, &Budget{})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return rel
	}
	ref := run(1)
	if ref.Count() != 6000 {
		t.Fatalf("cross product produced %d rows, want 6000", ref.Count())
	}
	for _, par := range []int{2, 7, 64} {
		if got := run(par); !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Errorf("parallelism %d: rows differ from serial", par)
		}
	}
}
