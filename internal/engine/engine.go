// Package engine executes plan trees against stored tables: scans with
// pushed-down selections, hash joins on opaque UDF terms, nested-loop
// products with residual predicates (the only option when a multi-table UDF
// crosses the join), materialization of tree roots, and the Σ statistics
// collection operator (§4.2), which takes one extra pass over a materialized
// result running HyperLogLog sketches over every evaluable UDF term.
//
// Operators are connected as a streaming batch pipeline (stream.go): rows
// flow between stages in bounded batches, so only pipeline-breakers (the
// hash-join build side, the tree root's materialize) hold a whole
// intermediate in memory at once.
//
// The engine's accounting is aligned with the paper's cost model (§4.4):
// Produced counts the objects emitted by every operator — filtered leaf
// outputs, join outputs, and the extra Σ pass — so that the optimizer's
// simulated cost and the engine's real cost are the same quantity.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/sketch"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// ErrBudget is returned when a query exceeds its wall-clock deadline or its
// tuple budget; the harness reports it as a timeout.
var ErrBudget = errors.New("engine: execution budget exhausted")

// Budget bounds one query execution. Zero values disable a bound. A single
// Budget is shared across every EXECUTE step of a multi-step query, and —
// since the engine's partitionable operators charge it from worker
// goroutines — its accounting is atomic. Deadline and MaxTuples must be set
// before execution starts and not mutated afterwards.
type Budget struct {
	Deadline  time.Time
	MaxTuples float64

	produced atomic.Int64
	checkCtr atomic.Int64
}

// Charge accounts n produced tuples and reports ErrBudget when a bound is
// exceeded. Safe for concurrent use. The deadline is polled roughly every
// thousand tuples to keep it off the per-tuple path; a concurrent reset may
// occasionally stretch the polling interval, never the tuple bound.
func (b *Budget) Charge(n int) error {
	if b == nil {
		return nil
	}
	p := b.produced.Add(int64(n))
	if b.MaxTuples > 0 && float64(p) > b.MaxTuples {
		return ErrBudget
	}
	inc := int64(n)
	if inc < 1 {
		inc = 1
	}
	if b.checkCtr.Add(inc) >= 1024 {
		b.checkCtr.Store(0)
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			return ErrBudget
		}
	}
	return nil
}

// Produced reports the tuples charged so far.
func (b *Budget) Produced() float64 {
	if b == nil {
		return 0
	}
	return float64(b.produced.Load())
}

// SigmaObs is one distinct-value measurement produced by a Σ operator.
type SigmaObs struct {
	Term int
	Expr string
	D    float64
}

// ExecResult reports what one tree execution observed.
type ExecResult struct {
	// Produced is the total number of objects emitted by the tree's
	// operators, including the extra Σ pass (the §4.4 cost).
	Produced float64
	// Counts holds the hardened cardinality of every node in the tree,
	// keyed by expression (alias-set) key.
	Counts map[string]float64
	// Times holds the inclusive wall time of every node in the tree, keyed
	// like Counts — the per-operator numbers EXPLAIN ANALYZE annotates.
	Times map[string]time.Duration
	// Sigma holds distinct-value measurements when the root carried Σ.
	Sigma []SigmaObs
	// SigmaTime is the portion of wall time spent in the Σ pass.
	SigmaTime time.Duration
	// PeakBytes is the peak heap allocation observed while the tree
	// drained, sampled every few batches. Zero unless Engine.Metrics is
	// set (sampling stops the world briefly, so it is strictly opt-in).
	PeakBytes float64
}

// ExecConfig is the per-execution observation and tuning state. It used to
// live as mutable fields on Engine, which made two concurrent Sessions on one
// shared engine clobber each other's tracer and knobs; now every Session (and
// every daemon request) carries its own copy inside an Exec scope, and the
// engine's immutable parts (catalog, HLL precision) stay shared.
type ExecConfig struct {
	// Obs, when non-nil, receives one span per operator (scan, reuse,
	// hash-build/probe, nested loop, Σ pass) with rows-in/rows-out and wall
	// time. Nil (the default) costs nothing: every tracer call no-ops.
	Obs *obs.Tracer
	// Parallelism caps the worker count of the partitionable operators
	// (filter scans, hash-join probe, Σ pass): 0 means
	// runtime.GOMAXPROCS(0), 1 forces the exact serial legacy path. Every
	// setting produces bit-identical results — same row order, same Σ
	// estimates, same budget totals — so the knob trades wall time only.
	Parallelism int
	// BatchSize caps the rows one pipeline batch carries between streaming
	// operators: 0 means DefaultBatchSize, negative disables batching (each
	// operator emits its whole output at once — the materialized legacy
	// memory profile). Results, row order, budget totals, and span
	// accounting are bit-identical at every setting; only peak memory and
	// wall time change.
	BatchSize int
	// Metrics, when non-nil, receives the engine's execution gauges —
	// currently monsoon.exec.peak_bytes, the peak heap observed while a
	// tree drains, sampled every few batches via runtime.ReadMemStats.
	// Nil (the default) keeps memory sampling entirely off the hot path.
	Metrics *obs.Registry
}

// Exec is one execution scope over a shared Engine: its own ExecConfig plus
// its own materialized-expression store (the MDP's Re set). Scopes are cheap
// to create, not safe for concurrent use individually, and fully independent
// of each other — N Sessions over one Engine get N Execs and never share
// mutable state.
type Exec struct {
	ExecConfig
	eng  *Engine
	mats map[string]*table.Relation
}

// Engine executes plans for one dataset. The catalog and HLL precision are
// shared, read-only state; Obs/Parallelism/BatchSize/Metrics are convenience
// defaults for the single-tenant calls below (ExecTree and friends on Engine
// itself), re-read on every call. Concurrent users must instead carve out
// isolated scopes with NewExec.
type Engine struct {
	Cat *table.Catalog
	// HLLPrecision configures Σ sketches; 0 means the default (14).
	HLLPrecision uint8
	// Obs, Parallelism, BatchSize, Metrics configure the engine's default
	// execution scope; see ExecConfig for their semantics. Mutating them
	// between single-tenant queries is fine; mutating them while another
	// goroutine executes through the same Engine is not — use NewExec.
	Obs         *obs.Tracer
	Parallelism int
	BatchSize   int
	Metrics     *obs.Registry

	def *Exec
}

// New creates an engine over a catalog of stored base tables.
func New(cat *table.Catalog) *Engine {
	e := &Engine{Cat: cat}
	e.def = &Exec{eng: e, mats: make(map[string]*table.Relation)}
	return e
}

// NewExec creates an isolated execution scope: the given config plus a fresh
// materialization store. Zero-valued config fields fall back to the engine's
// defaults (matching the old Session behavior of only overriding fields the
// caller set); note that this means an Exec cannot select "0 = machine width"
// parallelism when the engine default is nonzero — pass the explicit width
// instead.
func (e *Engine) NewExec(cfg ExecConfig) *Exec {
	if cfg.Obs == nil {
		cfg.Obs = e.Obs
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = e.Parallelism
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = e.BatchSize
	}
	if cfg.Metrics == nil {
		cfg.Metrics = e.Metrics
	}
	return &Exec{ExecConfig: cfg, eng: e, mats: make(map[string]*table.Relation)}
}

// exec syncs the default scope's config from the engine's public fields and
// returns it — the single-tenant compatibility path behind Engine.ExecTree.
func (e *Engine) exec() *Exec {
	e.def.ExecConfig = ExecConfig{Obs: e.Obs, Parallelism: e.Parallelism, BatchSize: e.BatchSize, Metrics: e.Metrics}
	return e.def
}

// Engine returns the shared engine this scope executes against.
func (e *Exec) Engine() *Engine { return e.eng }

// Materialized returns the materialized relation for an expression key.
func (e *Exec) Materialized(key string) (*table.Relation, bool) {
	r, ok := e.mats[key]
	return r, ok
}

// Register stores a materialized relation under an expression key. ExecTree
// registers roots automatically; tests and the baselines use this directly.
func (e *Exec) Register(key string, r *table.Relation) { e.mats[key] = r }

// Reset drops all materialized intermediates (between queries).
func (e *Exec) Reset() { e.mats = make(map[string]*table.Relation) }

// Materialized reads the default scope's store (single-tenant path).
func (e *Engine) Materialized(key string) (*table.Relation, bool) { return e.def.Materialized(key) }

// Register writes into the default scope's store (single-tenant path).
func (e *Engine) Register(key string, r *table.Relation) { e.def.Register(key, r) }

// Reset clears the default scope's store (single-tenant path).
func (e *Engine) Reset() { e.def.Reset() }

// SeedBaseStats records the raw cardinality of every base table referenced
// by q into st — the statistics assumed known at the start (§4.1).
func (e *Engine) SeedBaseStats(q *query.Query, st *stats.Store) {
	for _, r := range q.Rels {
		st.SetCount(stats.RawKey(r.Alias), float64(e.Cat.MustGet(r.Table).Count()))
	}
}

// ExecTree executes one plan tree through the default scope, re-reading the
// engine's Obs/Parallelism/BatchSize/Metrics fields — the single-tenant path
// the CLIs and tests use. Concurrent callers must use NewExec scopes instead.
func (e *Engine) ExecTree(q *query.Query, n *plan.Node, budget *Budget) (*table.Relation, *ExecResult, error) {
	return e.exec().ExecTree(q, n, budget)
}

// ExecTree executes one plan tree through the streaming batch pipeline
// (stream.go), materializes and registers its root, and returns the result
// relation plus observations. The root materialize is a deliberate pipeline
// breaker: the MDP's Re store and the plan cache key whole relations. Budget
// overruns abort with ErrBudget; partial results are discarded but counts
// already observed are returned so the harness can report progress.
func (e *Exec) ExecTree(q *query.Query, n *plan.Node, budget *Budget) (*table.Relation, *ExecResult, error) {
	res := &ExecResult{Counts: make(map[string]float64), Times: make(map[string]time.Duration)}
	msp := e.Obs.Start(obs.KMaterialize, n.String()).SetStr("expr", n.Key())
	it, schema, err := e.open(q, n, budget, res, nil)
	if err != nil {
		msp.SetStr("err", err.Error()).SetProduced(res.Produced).End()
		return nil, res, err
	}
	sampler := e.peakSampler(res)
	var out []table.Row
	for {
		b, err := it.Next()
		if err != nil {
			it.Close(err)
			sampler.finish()
			msp.SetStr("err", err.Error()).SetProduced(res.Produced).End()
			return nil, res, err
		}
		if b == nil {
			break
		}
		out = append(out, b...)
		sampler.sample()
	}
	it.Close(nil)
	rel := table.NewRelation(n.Key(), schema, out)
	if n.Sigma {
		start := time.Now()
		if err := e.collectSigma(q, n, rel, budget, res); err != nil {
			sampler.finish()
			msp.SetStr("err", err.Error()).SetProduced(res.Produced).End()
			return nil, res, err
		}
		res.SigmaTime = time.Since(start)
	}
	sampler.finish()
	e.mats[n.Key()] = rel
	msp.SetRows(0, rel.Count()).SetProduced(res.Produced).End()
	return rel, res, nil
}

// boundSel is one pushed-down selection bound to a concrete schema.
type boundSel struct {
	b *expr.Binding
	k value.Value
}

// residual is a predicate evaluated per joined row pair.
type residual struct {
	lb, rb *expr.Binding // join predicate sides (nil for selections)
	sb     *expr.Binding // selection term
	k      value.Value   // selection constant
}

// bucket chains the build rows of one join-key value; hashTable maps key
// hashes to their (collision-chained) buckets. After the build phase the
// table is read-only, so probe workers share it without locks.
type bucket struct {
	key  value.Value
	rows []int
}

type hashTable map[uint64][]bucket

// insert chains build-row index i under key k: the key's bucket if one
// exists in the hash's collision chain, a fresh bucket appended otherwise.
// Inserting rows in ascending index order yields chains in first-occurrence
// order with ascending row lists — the invariant the partitioned parallel
// build reproduces by merging per-worker sub-tables in worker order.
func (ht hashTable) insert(k value.Value, i int) {
	ht.insertHash(k.Hash(), k, i)
}

// insertHash is insert with the key hash already computed; the sharded
// table computes it once for routing and reuses it for the chain lookup.
func (ht hashTable) insertHash(h uint64, k value.Value, i int) {
	bs := ht[h]
	for bi := range bs {
		if bs[bi].key.Equal(k) {
			bs[bi].rows = append(bs[bi].rows, i)
			return
		}
	}
	ht[h] = append(bs, bucket{key: k, rows: []int{i}})
}

// shardedTable splits a hash-join build across S sub-tables routed by the
// full key hash (subs[h%S]). Equal hashes always land in the same sub-table
// and routing never reorders the insertion stream within a sub-table, so
// collision chains keep the serial first-occurrence order with ascending
// row lists; the probe side streams in its original order and routes each
// key the same way, which makes join output bit-identical to the unsharded
// build for any S. S == 1 is the legacy layout: subs[0] is the one table.
type shardedTable struct {
	subs []hashTable
}

func newShardedTable(s, sizeHint int) *shardedTable {
	t := &shardedTable{subs: make([]hashTable, s)}
	for i := range t.subs {
		t.subs[i] = make(hashTable, sizeHint/s+1)
	}
	return t
}

func (t *shardedTable) insert(k value.Value, i int) {
	h := k.Hash()
	t.subs[h%uint64(len(t.subs))].insertHash(h, k, i)
}

// chains returns the collision chain for a probe key's hash.
func (t *shardedTable) chains(h uint64) []bucket {
	return t.subs[h%uint64(len(t.subs))][h]
}

// shardCount reports the catalog's shard layout width (1 = unsharded); the
// exchange paths below key every behavior change off it so an unsharded
// catalog takes exactly the legacy code paths.
func (e *Exec) shardCount() int { return e.eng.Cat.ShardCount() }

func passResiduals(row table.Row, residuals []residual) bool {
	for _, r := range residuals {
		if r.sb != nil {
			if !r.sb.Eval(row).Equal(r.k) {
				return false
			}
			continue
		}
		if !r.lb.Eval(row).Equal(r.rb.Eval(row)) {
			return false
		}
	}
	return true
}

// collectSigma runs the Σ pass: one more scan of the materialized result,
// feeding every evaluable UDF term through an HLL sketch. Identity terms are
// included — they are just another opaque function to the optimizer.
func (e *Exec) collectSigma(q *query.Query, n *plan.Node, rel *table.Relation, budget *Budget, res *ExecResult) error {
	p := e.eng.HLLPrecision
	if p == 0 {
		p = 14
	}
	type tracked struct {
		term *query.Term
		b    *expr.Binding
		h    *sketch.HLL
	}
	var ts []tracked
	for _, t := range q.Terms() {
		if !t.Aliases.SubsetOf(n.Aliases()) {
			continue
		}
		b, ok := t.Fn.Bind(rel.Schema)
		if !ok {
			continue
		}
		ts = append(ts, tracked{term: t, b: b, h: sketch.NewHLL(p)})
	}
	sp := e.Obs.Start(obs.KSigma, n.Key()).SetNum("terms", float64(len(ts)))
	if s := e.shardCount(); s > 1 && len(ts) > 0 {
		// Partial-Σ exchange: one HLL pass per storage shard, merged
		// register-wise. The register merge is a per-register max, so the
		// merged estimates equal the single-sketch estimates for any S.
		sp.SetNum("shards", float64(s))
		terms := make([]*query.Term, len(ts))
		for i, t := range ts {
			terms[i] = t.term
		}
		merged, err := e.shardedSigma(sp, rel, terms, p, s, budget)
		if err != nil {
			sp.SetRows(rel.Count(), 0).SetStr("err", err.Error()).End()
			return err
		}
		if e.Metrics != nil {
			e.Metrics.Counter("monsoon.exchange.sigma.partials").Add(int64(s))
		}
		for i := range ts {
			ts[i].h = merged[i]
		}
	} else if w := e.workers(rel.Count()); w > 1 && len(ts) > 0 {
		sp.SetNum("workers", float64(w))
		terms := make([]*query.Term, len(ts))
		for i, t := range ts {
			terms[i] = t.term
		}
		merged, err := parallelSigma(rel, terms, p, budget, w, e.tracedRunner(sp))
		if err != nil {
			sp.SetRows(rel.Count(), 0).SetStr("err", err.Error()).End()
			return err
		}
		for i := range ts {
			ts[i].h = merged[i]
		}
	} else {
		for _, row := range rel.Rows {
			if err := budget.Charge(1); err != nil {
				sp.SetRows(rel.Count(), 0).SetStr("err", err.Error()).End()
				return err
			}
			for _, t := range ts {
				v := t.b.Eval(row)
				if v.IsNull() {
					continue
				}
				t.h.Add(v.Hash())
			}
		}
	}
	res.Produced += float64(rel.Count()) // the extra pass, §4.4
	for _, t := range ts {
		res.Sigma = append(res.Sigma, SigmaObs{Term: t.term.ID, Expr: n.Key(), D: t.h.Estimate()})
	}
	sp.SetRows(rel.Count(), len(ts)).SetProduced(float64(rel.Count())).End()
	return nil
}

// FinalAggregate computes the query's output over the completed join result.
func FinalAggregate(q *query.Query, rel *table.Relation) (float64, error) {
	switch q.Out.Kind {
	case query.AggCount:
		return float64(rel.Count()), nil
	case query.AggSum:
		pos, ok := rel.Schema.Lookup(q.Out.Attr)
		if !ok {
			return 0, fmt.Errorf("engine: SUM attribute %q not in result schema", q.Out.Attr)
		}
		sum := 0.0
		for _, row := range rel.Rows {
			sum += row[pos].AsFloat()
		}
		return sum, nil
	default:
		return 0, fmt.Errorf("engine: unknown aggregate kind %d", q.Out.Kind)
	}
}
