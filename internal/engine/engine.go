// Package engine executes plan trees against stored tables: scans with
// pushed-down selections, hash joins on opaque UDF terms, nested-loop
// products with residual predicates (the only option when a multi-table UDF
// crosses the join), materialization of tree roots, and the Σ statistics
// collection operator (§4.2), which takes one extra pass over a materialized
// result running HyperLogLog sketches over every evaluable UDF term.
//
// The engine's accounting is aligned with the paper's cost model (§4.4):
// Produced counts the objects emitted by every operator — filtered leaf
// outputs, join outputs, and the extra Σ pass — so that the optimizer's
// simulated cost and the engine's real cost are the same quantity.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/sketch"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// ErrBudget is returned when a query exceeds its wall-clock deadline or its
// tuple budget; the harness reports it as a timeout.
var ErrBudget = errors.New("engine: execution budget exhausted")

// Budget bounds one query execution. Zero values disable a bound. A single
// Budget is shared across every EXECUTE step of a multi-step query, and —
// since the engine's partitionable operators charge it from worker
// goroutines — its accounting is atomic. Deadline and MaxTuples must be set
// before execution starts and not mutated afterwards.
type Budget struct {
	Deadline  time.Time
	MaxTuples float64

	produced atomic.Int64
	checkCtr atomic.Int64
}

// Charge accounts n produced tuples and reports ErrBudget when a bound is
// exceeded. Safe for concurrent use. The deadline is polled roughly every
// thousand tuples to keep it off the per-tuple path; a concurrent reset may
// occasionally stretch the polling interval, never the tuple bound.
func (b *Budget) Charge(n int) error {
	if b == nil {
		return nil
	}
	p := b.produced.Add(int64(n))
	if b.MaxTuples > 0 && float64(p) > b.MaxTuples {
		return ErrBudget
	}
	inc := int64(n)
	if inc < 1 {
		inc = 1
	}
	if b.checkCtr.Add(inc) >= 1024 {
		b.checkCtr.Store(0)
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			return ErrBudget
		}
	}
	return nil
}

// Produced reports the tuples charged so far.
func (b *Budget) Produced() float64 {
	if b == nil {
		return 0
	}
	return float64(b.produced.Load())
}

// SigmaObs is one distinct-value measurement produced by a Σ operator.
type SigmaObs struct {
	Term int
	Expr string
	D    float64
}

// ExecResult reports what one tree execution observed.
type ExecResult struct {
	// Produced is the total number of objects emitted by the tree's
	// operators, including the extra Σ pass (the §4.4 cost).
	Produced float64
	// Counts holds the hardened cardinality of every node in the tree,
	// keyed by expression (alias-set) key.
	Counts map[string]float64
	// Times holds the inclusive wall time of every node in the tree, keyed
	// like Counts — the per-operator numbers EXPLAIN ANALYZE annotates.
	Times map[string]time.Duration
	// Sigma holds distinct-value measurements when the root carried Σ.
	Sigma []SigmaObs
	// SigmaTime is the portion of wall time spent in the Σ pass.
	SigmaTime time.Duration
}

// Engine executes plans for one dataset. It owns the materialized-expression
// store that backs the MDP's Re set.
type Engine struct {
	Cat *table.Catalog
	// HLLPrecision configures Σ sketches; 0 means the default (14).
	HLLPrecision uint8
	// Obs, when non-nil, receives one span per operator (scan, reuse,
	// hash-build/probe, nested loop, Σ pass) with rows-in/rows-out and wall
	// time. Nil (the default) costs nothing: every tracer call no-ops.
	Obs *obs.Tracer
	// Parallelism caps the worker count of the partitionable operators
	// (filter scans, hash-join probe, Σ pass): 0 means
	// runtime.GOMAXPROCS(0), 1 forces the exact serial legacy path. Every
	// setting produces bit-identical results — same row order, same Σ
	// estimates, same budget totals — so the knob trades wall time only.
	Parallelism int

	mats map[string]*table.Relation
}

// New creates an engine over a catalog of stored base tables.
func New(cat *table.Catalog) *Engine {
	return &Engine{Cat: cat, mats: make(map[string]*table.Relation)}
}

// Materialized returns the materialized relation for an expression key.
func (e *Engine) Materialized(key string) (*table.Relation, bool) {
	r, ok := e.mats[key]
	return r, ok
}

// Register stores a materialized relation under an expression key. ExecTree
// registers roots automatically; tests and the baselines use this directly.
func (e *Engine) Register(key string, r *table.Relation) { e.mats[key] = r }

// Reset drops all materialized intermediates (between queries).
func (e *Engine) Reset() { e.mats = make(map[string]*table.Relation) }

// SeedBaseStats records the raw cardinality of every base table referenced
// by q into st — the statistics assumed known at the start (§4.1).
func (e *Engine) SeedBaseStats(q *query.Query, st *stats.Store) {
	for _, r := range q.Rels {
		st.SetCount(stats.RawKey(r.Alias), float64(e.Cat.MustGet(r.Table).Count()))
	}
}

// ExecTree executes one plan tree, materializes and registers its root, and
// returns the result relation plus observations. Budget overruns abort with
// ErrBudget; partial results are discarded but counts already observed are
// returned so the harness can report progress.
func (e *Engine) ExecTree(q *query.Query, n *plan.Node, budget *Budget) (*table.Relation, *ExecResult, error) {
	res := &ExecResult{Counts: make(map[string]float64), Times: make(map[string]time.Duration)}
	msp := e.Obs.Start(obs.KMaterialize, n.String()).SetStr("expr", n.Key())
	rel, err := e.exec(q, n, budget, res)
	if err != nil {
		msp.SetStr("err", err.Error()).SetProduced(res.Produced).End()
		return nil, res, err
	}
	if n.Sigma {
		start := time.Now()
		if err := e.collectSigma(q, n, rel, budget, res); err != nil {
			msp.SetStr("err", err.Error()).SetProduced(res.Produced).End()
			return nil, res, err
		}
		res.SigmaTime = time.Since(start)
	}
	e.mats[n.Key()] = rel
	msp.SetRows(0, rel.Count()).SetProduced(res.Produced).End()
	return rel, res, nil
}

func (e *Engine) exec(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult) (*table.Relation, error) {
	t0 := time.Now()
	var rel *table.Relation
	var err error
	if n.IsLeaf() {
		rel, err = e.execLeaf(q, n, budget)
	} else {
		rel, err = e.execJoin(q, n, budget, res)
	}
	res.Times[n.Key()] = time.Since(t0)
	if err != nil {
		return nil, err
	}
	res.Counts[n.Key()] = float64(rel.Count())
	res.Produced += float64(rel.Count())
	return rel, nil
}

// execLeaf resolves a leaf: a previously materialized expression if one
// exists under the leaf's key, otherwise a scan of the stored base table with
// every single-alias selection pushed down.
func (e *Engine) execLeaf(q *query.Query, n *plan.Node, budget *Budget) (*table.Relation, error) {
	key := n.Key()
	if m, ok := e.mats[key]; ok {
		// Reusing a materialized expression still costs one pass over it
		// (cost(r) = c(r) for r in Re, §4.4).
		sp := e.Obs.Start(obs.KReuse, key).SetStr("expr", key).SetRows(m.Count(), m.Count())
		if err := budget.Charge(m.Count()); err != nil {
			sp.SetStr("err", err.Error()).End()
			return nil, err
		}
		sp.End()
		return m, nil
	}
	if n.Leaf.Size() != 1 {
		return nil, fmt.Errorf("engine: leaf %q references an unmaterialized expression", key)
	}
	alias := n.Leaf.Names()[0]
	tbl, ok := q.TableOf(alias)
	if !ok {
		return nil, fmt.Errorf("engine: alias %q not in query", alias)
	}
	base := e.Cat.MustGet(tbl).Renamed(alias)
	sels := q.SelsAt(n.Leaf)
	sp := e.Obs.Start(obs.KScan, alias).SetStr("expr", key).SetNum("selections", float64(len(sels)))
	if len(sels) == 0 {
		if err := budget.Charge(base.Count()); err != nil {
			sp.SetRows(base.Count(), 0).SetStr("err", err.Error()).End()
			return nil, err
		}
		sp.SetRows(base.Count(), base.Count()).SetProduced(float64(base.Count())).End()
		return base, nil
	}
	bound, ok := bindSels(sels, base.Schema)
	if !ok {
		sp.End()
		return nil, fmt.Errorf("engine: selections not bindable on %s", base.Schema)
	}
	var out []table.Row
	if w := e.workers(base.Count()); w > 1 {
		sp.SetNum("workers", float64(w))
		pout, err := parallelFilter(base, sels, budget, w, e.tracedRunner(sp))
		if err != nil {
			sp.SetRows(base.Count(), len(pout)).SetStr("err", err.Error()).End()
			return nil, err
		}
		out = pout
	} else {
		out = make([]table.Row, 0, base.Count()/4+1)
		for _, row := range base.Rows {
			keep := true
			for _, s := range bound {
				if !s.b.Eval(row).Equal(s.k) {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, row)
				if err := budget.Charge(1); err != nil {
					sp.SetRows(base.Count(), len(out)).SetStr("err", err.Error()).End()
					return nil, err
				}
			}
		}
	}
	sp.SetRows(base.Count(), len(out)).SetProduced(float64(len(out))).End()
	return table.NewRelation(key, base.Schema, out), nil
}

// boundSel is one pushed-down selection bound to a concrete schema.
type boundSel struct {
	b *expr.Binding
	k value.Value
}

// residual is a predicate evaluated per joined row pair.
type residual struct {
	lb, rb *expr.Binding // join predicate sides (nil for selections)
	sb     *expr.Binding // selection term
	k      value.Value   // selection constant
}

// execJoin executes one join node under a KJoin umbrella span that covers the
// children and the join phases, so the span tree reproduces the plan tree:
// materialize → join → {child operators, hash-build/probe or nested-loop}.
func (e *Engine) execJoin(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult) (*table.Relation, error) {
	jsp := e.Obs.Start(obs.KJoin, n.Key()).SetStr("expr", n.Key())
	rel, err := e.execJoinNode(q, n, budget, res)
	if err != nil {
		jsp.SetStr("err", err.Error()).End()
		return nil, err
	}
	jsp.SetRows(0, rel.Count()).End()
	return rel, nil
}

func (e *Engine) execJoinNode(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult) (*table.Relation, error) {
	left, err := e.exec(q, n.Left, budget, res)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(q, n.Right, budget, res)
	if err != nil {
		return nil, err
	}
	outSchema := left.Schema.Concat(right.Schema)
	newPreds := q.PredsNewAt(n.Left.Aliases(), n.Right.Aliases())
	newSels := q.SelsNewAt(n.Left.Aliases(), n.Right.Aliases())

	// Choose a hash predicate: one whose sides bind to opposite children.
	var hashPred *query.JoinPred
	var buildTerm, probeTerm *query.Term
	for _, p := range newPreds {
		lInL := p.L.Aliases.SubsetOf(n.Left.Aliases())
		rInR := p.R.Aliases.SubsetOf(n.Right.Aliases())
		lInR := p.L.Aliases.SubsetOf(n.Right.Aliases())
		rInL := p.R.Aliases.SubsetOf(n.Left.Aliases())
		if lInL && rInR {
			hashPred, buildTerm, probeTerm = p, p.L, p.R
			break
		}
		if lInR && rInL {
			hashPred, buildTerm, probeTerm = p, p.R, p.L
			break
		}
	}

	// Everything else is residual, evaluated over the concatenated row.
	var residuals []residual
	for _, p := range newPreds {
		if p == hashPred {
			continue
		}
		lb, ok1 := p.L.Fn.Bind(outSchema)
		rb, ok2 := p.R.Fn.Bind(outSchema)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("engine: predicate %s not bindable at %s", p, n)
		}
		residuals = append(residuals, residual{lb: lb, rb: rb})
	}
	for _, s := range newSels {
		sb, ok := s.T.Fn.Bind(outSchema)
		if !ok {
			return nil, fmt.Errorf("engine: selection %s not bindable at %s", s, n)
		}
		residuals = append(residuals, residual{sb: sb, k: s.Const})
	}

	if hashPred != nil {
		return e.hashJoin(left, right, buildTerm, probeTerm, residuals, outSchema, n.Key(), budget)
	}
	return e.nestedLoop(left, right, residuals, outSchema, n.Key(), budget)
}

// hashJoin builds on the left child and probes with the right. buildTerm
// binds on the left schema, probeTerm on the right. NULL keys never match.
func (e *Engine) hashJoin(left, right *table.Relation, buildTerm, probeTerm *query.Term,
	residuals []residual, outSchema *table.Schema, name string, budget *Budget) (*table.Relation, error) {

	// Build on the smaller side to bound memory; swap roles if needed while
	// keeping output column order (left ++ right).
	buildRel, probeRel := left, right
	bTerm, pTerm := buildTerm, probeTerm
	leftIsBuild := true
	if right.Count() < left.Count() {
		buildRel, probeRel = right, left
		bTerm, pTerm = probeTerm, buildTerm
		leftIsBuild = false
	}
	bb, ok := bTerm.Fn.Bind(buildRel.Schema)
	if !ok {
		return nil, fmt.Errorf("engine: term %s not bindable on build side", bTerm)
	}
	pb, ok := pTerm.Fn.Bind(probeRel.Schema)
	if !ok {
		return nil, fmt.Errorf("engine: term %s not bindable on probe side", pTerm)
	}
	bsp := e.Obs.Start(obs.KHashBuild, name)
	var ht hashTable
	inserted := 0
	if w := e.workers(buildRel.Count()); w > 1 {
		bsp.SetNum("workers", float64(w))
		var err error
		ht, inserted, err = parallelBuild(buildRel, bTerm, budget, w, e.tracedRunner(bsp))
		if err != nil {
			bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
			return nil, err
		}
	} else {
		ht = make(hashTable, buildRel.Count())
		for i, row := range buildRel.Rows {
			// Building over a huge materialized input produces nothing but
			// must still honor the deadline.
			if err := budget.Charge(0); err != nil {
				bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
				return nil, err
			}
			k := bb.Eval(row)
			if k.IsNull() {
				continue
			}
			inserted++
			ht.insert(k, i)
		}
	}
	bsp.SetRows(buildRel.Count(), inserted).SetNum("residuals", float64(len(residuals))).End()
	psp := e.Obs.Start(obs.KHashProbe, name)
	var out []table.Row
	if w := e.workers(probeRel.Count()); w > 1 {
		psp.SetNum("workers", float64(w))
		pout, err := parallelProbe(buildRel, probeRel, ht, pTerm, residuals, outSchema, leftIsBuild, budget, w, e.tracedRunner(psp))
		if err != nil {
			psp.SetRows(probeRel.Count(), len(pout)).SetStr("err", err.Error()).End()
			return nil, err
		}
		out = pout
	} else {
		scratch := make(table.Row, len(outSchema.Cols))
		for _, prow := range probeRel.Rows {
			// Matchless probes produce nothing; poll the deadline anyway.
			if err := budget.Charge(0); err != nil {
				psp.SetRows(probeRel.Count(), len(out)).SetStr("err", err.Error()).End()
				return nil, err
			}
			k := pb.Eval(prow)
			if k.IsNull() {
				continue
			}
			for _, b := range ht[k.Hash()] {
				if !b.key.Equal(k) {
					continue
				}
				for _, bi := range b.rows {
					brow := buildRel.Rows[bi]
					var lrow, rrow table.Row
					if leftIsBuild {
						lrow, rrow = brow, prow
					} else {
						lrow, rrow = prow, brow
					}
					copy(scratch, lrow)
					copy(scratch[len(lrow):], rrow)
					if !passResiduals(scratch, residuals) {
						continue
					}
					joined := make(table.Row, len(scratch))
					copy(joined, scratch)
					out = append(out, joined)
					if err := budget.Charge(1); err != nil {
						psp.SetRows(probeRel.Count(), len(out)).SetStr("err", err.Error()).End()
						return nil, err
					}
				}
			}
		}
	}
	psp.SetRows(probeRel.Count(), len(out)).SetProduced(float64(len(out))).End()
	return table.NewRelation(name, outSchema, out), nil
}

// bucket chains the build rows of one join-key value; hashTable maps key
// hashes to their (collision-chained) buckets. After the build phase the
// table is read-only, so probe workers share it without locks.
type bucket struct {
	key  value.Value
	rows []int
}

type hashTable map[uint64][]bucket

// insert chains build-row index i under key k: the key's bucket if one
// exists in the hash's collision chain, a fresh bucket appended otherwise.
// Inserting rows in ascending index order yields chains in first-occurrence
// order with ascending row lists — the invariant the partitioned parallel
// build reproduces by merging per-worker sub-tables in worker order.
func (ht hashTable) insert(k value.Value, i int) {
	h := k.Hash()
	bs := ht[h]
	for bi := range bs {
		if bs[bi].key.Equal(k) {
			bs[bi].rows = append(bs[bi].rows, i)
			return
		}
	}
	ht[h] = append(bs, bucket{key: k, rows: []int{i}})
}

// nestedLoop computes the filtered product; it is the only strategy when no
// predicate separates the children (pure cross products and crossing
// multi-table UDF terms). Its span reports rows-in as the number of row
// pairs scanned — the full cross product on completion — since that, not the
// sum of the input sizes, is the work the operator actually does.
func (e *Engine) nestedLoop(left, right *table.Relation, residuals []residual,
	outSchema *table.Schema, name string, budget *Budget) (*table.Relation, error) {
	sp := e.Obs.Start(obs.KNestedLoop, name).SetNum("residuals", float64(len(residuals)))
	// Parallelism is sized to the pairs scanned (the operator's real work)
	// but partitions the outer rows, so the worker count is also capped by
	// the outer cardinality.
	if w := e.workers(left.Count() * right.Count()); w > 1 {
		if w > left.Count() {
			w = left.Count()
		}
		if w > 1 {
			sp.SetNum("workers", float64(w))
			out, pairs, err := parallelNestedLoop(left, right, residuals, outSchema, budget, w, e.tracedRunner(sp))
			if err != nil {
				sp.SetRows(pairs, len(out)).SetStr("err", err.Error()).End()
				return nil, err
			}
			sp.SetRows(pairs, len(out)).SetProduced(float64(len(out))).End()
			return table.NewRelation(name, outSchema, out), nil
		}
	}
	var out []table.Row
	pairs := 0
	scratch := make(table.Row, len(outSchema.Cols))
	for _, lrow := range left.Rows {
		copy(scratch, lrow)
		for _, rrow := range right.Rows {
			pairs++
			copy(scratch[len(lrow):], rrow)
			if !passResiduals(scratch, residuals) {
				// Even rejected pairs consume work in a nested loop; charge
				// them against the deadline occasionally via a zero charge.
				if err := budget.Charge(0); err != nil {
					sp.SetRows(pairs, len(out)).SetStr("err", err.Error()).End()
					return nil, err
				}
				continue
			}
			joined := make(table.Row, len(scratch))
			copy(joined, scratch)
			out = append(out, joined)
			if err := budget.Charge(1); err != nil {
				sp.SetRows(pairs, len(out)).SetStr("err", err.Error()).End()
				return nil, err
			}
		}
	}
	sp.SetRows(pairs, len(out)).SetProduced(float64(len(out))).End()
	return table.NewRelation(name, outSchema, out), nil
}

func passResiduals(row table.Row, residuals []residual) bool {
	for _, r := range residuals {
		if r.sb != nil {
			if !r.sb.Eval(row).Equal(r.k) {
				return false
			}
			continue
		}
		if !r.lb.Eval(row).Equal(r.rb.Eval(row)) {
			return false
		}
	}
	return true
}

// collectSigma runs the Σ pass: one more scan of the materialized result,
// feeding every evaluable UDF term through an HLL sketch. Identity terms are
// included — they are just another opaque function to the optimizer.
func (e *Engine) collectSigma(q *query.Query, n *plan.Node, rel *table.Relation, budget *Budget, res *ExecResult) error {
	p := e.HLLPrecision
	if p == 0 {
		p = 14
	}
	type tracked struct {
		term *query.Term
		b    *expr.Binding
		h    *sketch.HLL
	}
	var ts []tracked
	for _, t := range q.Terms() {
		if !t.Aliases.SubsetOf(n.Aliases()) {
			continue
		}
		b, ok := t.Fn.Bind(rel.Schema)
		if !ok {
			continue
		}
		ts = append(ts, tracked{term: t, b: b, h: sketch.NewHLL(p)})
	}
	sp := e.Obs.Start(obs.KSigma, n.Key()).SetNum("terms", float64(len(ts)))
	if w := e.workers(rel.Count()); w > 1 && len(ts) > 0 {
		sp.SetNum("workers", float64(w))
		terms := make([]*query.Term, len(ts))
		for i, t := range ts {
			terms[i] = t.term
		}
		merged, err := parallelSigma(rel, terms, p, budget, w, e.tracedRunner(sp))
		if err != nil {
			sp.SetRows(rel.Count(), 0).SetStr("err", err.Error()).End()
			return err
		}
		for i := range ts {
			ts[i].h = merged[i]
		}
	} else {
		for _, row := range rel.Rows {
			if err := budget.Charge(1); err != nil {
				sp.SetRows(rel.Count(), 0).SetStr("err", err.Error()).End()
				return err
			}
			for _, t := range ts {
				v := t.b.Eval(row)
				if v.IsNull() {
					continue
				}
				t.h.Add(v.Hash())
			}
		}
	}
	res.Produced += float64(rel.Count()) // the extra pass, §4.4
	for _, t := range ts {
		res.Sigma = append(res.Sigma, SigmaObs{Term: t.term.ID, Expr: n.Key(), D: t.h.Estimate()})
	}
	sp.SetRows(rel.Count(), len(ts)).SetProduced(float64(rel.Count())).End()
	return nil
}

// FinalAggregate computes the query's output over the completed join result.
func FinalAggregate(q *query.Query, rel *table.Relation) (float64, error) {
	switch q.Out.Kind {
	case query.AggCount:
		return float64(rel.Count()), nil
	case query.AggSum:
		pos, ok := rel.Schema.Lookup(q.Out.Attr)
		if !ok {
			return 0, fmt.Errorf("engine: SUM attribute %q not in result schema", q.Out.Attr)
		}
		sum := 0.0
		for _, row := range rel.Rows {
			sum += row[pos].AsFloat()
		}
		return sum, nil
	default:
		return 0, fmt.Errorf("engine: unknown aggregate kind %d", q.Out.Kind)
	}
}
