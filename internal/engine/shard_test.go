package engine

import (
	"reflect"
	"testing"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// shardCounts spans the layouts the exchange paths must be invisible under:
// unsharded, tiny, and wider than some tables' distinct first-column values.
var shardCounts = []int{1, 2, 4, 16}

// TestShardedMatchesUnsharded is the exchange determinism gate: for any
// shard count, batch size, and worker count, every tree shape — the
// co-partitioned build (S is joined on its first column), the reshuffled
// build (R joined on its second column b), deep trees, and Σ roots — must
// be bit-identical to the unsharded serial materialized run: same rows in
// the same order, same counts, same produced charge, same Σ estimates.
func TestShardedMatchesUnsharded(t *testing.T) {
	q := rstQuery()
	trees := map[string]*plan.Node{
		"copart":     plan.NewJoin(leaf("R"), leaf("S")),
		"reshuffle":  plan.NewJoin(leaf("T"), leaf("R")),
		"three-way":  plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T")),
		"right-deep": plan.NewJoin(leaf("T"), plan.NewJoin(leaf("S"), leaf("R"))),
		"sigma-join": plan.NewJoin(leaf("R"), leaf("S")).WithSigma(),
		"sigma-leaf": leaf("R").WithSigma(),
		"cross":      plan.NewJoin(leaf("S"), leaf("T")),
	}
	for name, tree := range trees {
		refRel, refRes, refProduced := execAt(t, fixture(), q, tree, -1, 1)
		for _, s := range shardCounts {
			for _, batch := range []int{1, 4096, -1} {
				for _, par := range []int{1, 4} {
					cat := fixture()
					cat.Shard(s)
					rel, res, produced := execAt(t, cat, q, tree, batch, par)
					if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
						t.Errorf("%s S=%d batch=%d par=%d: rows differ from unsharded (%d vs %d)",
							name, s, batch, par, rel.Count(), refRel.Count())
					}
					if !reflect.DeepEqual(res.Counts, refRes.Counts) {
						t.Errorf("%s S=%d batch=%d par=%d: counts %v, want %v",
							name, s, batch, par, res.Counts, refRes.Counts)
					}
					if res.Produced != refRes.Produced || produced != refProduced {
						t.Errorf("%s S=%d batch=%d par=%d: produced %v/%v, want %v/%v",
							name, s, batch, par, res.Produced, produced, refRes.Produced, refProduced)
					}
					if !reflect.DeepEqual(res.Sigma, refRes.Sigma) {
						t.Errorf("%s S=%d batch=%d par=%d: sigma observations diverged",
							name, s, batch, par)
					}
				}
			}
		}
	}
}

// TestShardedLargeParallel crosses the fan-out thresholds: the big fixture's
// co-partitioned join exercises parallelShardedBuild, the shard-local scan's
// per-shard parallelFilter, and the sharded partial-Σ merge at real widths.
func TestShardedLargeParallel(t *testing.T) {
	q := bigQuery()
	tree := plan.NewJoin(leaf("BR"), leaf("BS")).WithSigma()
	refRel, refRes, refProduced := execAt(t, bigFixture(), q, tree, -1, 1)
	for _, s := range shardCounts {
		for _, par := range []int{1, 4} {
			cat := bigFixture()
			cat.Shard(s)
			rel, res, produced := execAt(t, cat, q, tree, 4096, par)
			if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
				t.Errorf("S=%d par=%d: rows differ from unsharded", s, par)
			}
			if res.Produced != refRes.Produced || produced != refProduced {
				t.Errorf("S=%d par=%d: produced %v/%v, want %v/%v",
					s, par, res.Produced, produced, refRes.Produced, refProduced)
			}
			if !reflect.DeepEqual(res.Sigma, refRes.Sigma) {
				t.Errorf("S=%d par=%d: sigma estimates diverged", s, par)
			}
		}
	}
}

// TestShardedBuildSideSelections pushes a selection onto the co-partitioned
// build side so the shard-local scan filters within shards (serial and
// fanned-out) and still matches the unsharded answer exactly.
func TestShardedBuildSideSelections(t *testing.T) {
	q := query.NewBuilder("bigsel").
		Rel("BR", "BR").Rel("BS", "BS").
		Join(expr.Identity("BR.a"), expr.Identity("BS.k")).
		Select(expr.Identity("BS.k"), value.Int(37)).
		MustBuild()
	tree := plan.NewJoin(leaf("BR"), leaf("BS"))
	refRel, refRes, _ := execAt(t, bigFixture(), q, tree, -1, 1)
	for _, s := range shardCounts {
		for _, par := range []int{1, 4} {
			cat := bigFixture()
			cat.Shard(s)
			rel, res, _ := execAt(t, cat, q, tree, 4096, par)
			if !reflect.DeepEqual(rel.Rows, refRel.Rows) {
				t.Errorf("S=%d par=%d: filtered build rows differ", s, par)
			}
			if res.Produced != refRes.Produced {
				t.Errorf("S=%d par=%d: produced %v, want %v", s, par, res.Produced, refRes.Produced)
			}
		}
	}
}

// TestShardedSpansAndCounters checks the exchange telemetry: a
// co-partitioned build carries local=1 with per-shard KShard spans under
// its scan, a reshuffled build carries local=0 with the moved-row count,
// and the monsoon.exchange.* counters see both. At S=1 none of it appears.
func TestShardedSpansAndCounters(t *testing.T) {
	run := func(s int, tree *plan.Node) (*obs.Collector, *obs.Registry) {
		cat := fixture()
		cat.Shard(s)
		col := &obs.Collector{}
		reg := obs.NewRegistry()
		e := New(cat)
		e.Obs = obs.NewTracer(col)
		e.Metrics = reg
		if _, _, err := e.ExecTree(rstQuery(), tree, &Budget{}); err != nil {
			t.Fatal(err)
		}
		return col, reg
	}

	copart := plan.NewJoin(leaf("R"), leaf("S")).WithSigma()
	col, reg := run(4, copart)
	var scanSpans, shardSpans []*obs.Span
	byID := map[int]*obs.Span{}
	for _, sp := range col.Spans {
		byID[sp.ID] = sp
		switch sp.Kind {
		case obs.KScan:
			scanSpans = append(scanSpans, sp)
		case obs.KShard:
			shardSpans = append(shardSpans, sp)
		case obs.KHashBuild:
			if sp.Num["shards"] != 4 || sp.Num["local"] != 1 {
				t.Errorf("co-partitioned build attrs = %v, want shards=4 local=1", sp.Num)
			}
			if _, ok := sp.Num["exchange_rows"]; ok {
				t.Error("co-partitioned build must not report exchange_rows")
			}
		}
	}
	// The build-side scan (S) is shard-local: 4 KShard children; the Σ pass
	// adds 4 more. The probe-side scan (R) stays a plain scan.
	if len(shardSpans) != 8 {
		t.Fatalf("got %d KShard spans, want 8 (4 scan + 4 sigma)", len(shardSpans))
	}
	for _, sp := range shardSpans {
		p, ok := byID[sp.Parent]
		if !ok || (p.Kind != obs.KScan && p.Kind != obs.KSigma) {
			t.Errorf("KShard span parented to %v, want a scan or sigma span", p)
		}
	}
	if got := reg.Counter("monsoon.exchange.joins.local").Value(); got != 1 {
		t.Errorf("joins.local = %d, want 1", got)
	}
	if got := reg.Counter("monsoon.exchange.joins.reshuffle").Value(); got != 0 {
		t.Errorf("joins.reshuffle = %d, want 0", got)
	}
	if got := reg.Counter("monsoon.exchange.sigma.partials").Value(); got != 4 {
		t.Errorf("sigma.partials = %d, want 4", got)
	}

	// R joined on its second column b: the build side is R (1000 rows, all
	// keys non-NULL), so the build must reshuffle all 1000 rows.
	reshuffle := plan.NewJoin(leaf("T"), leaf("R"))
	col, reg = run(4, reshuffle)
	sawBuild := false
	for _, sp := range col.Spans {
		if sp.Kind == obs.KShard {
			t.Error("reshuffled build must not emit shard-local scan spans")
		}
		if sp.Kind == obs.KHashBuild {
			sawBuild = true
			if sp.Num["shards"] != 4 || sp.Num["local"] != 0 || sp.Num["exchange_rows"] != 1000 {
				t.Errorf("reshuffle build attrs = %v, want shards=4 local=0 exchange_rows=1000", sp.Num)
			}
		}
	}
	if !sawBuild {
		t.Fatal("no KHashBuild span recorded")
	}
	if got := reg.Counter("monsoon.exchange.joins.reshuffle").Value(); got != 1 {
		t.Errorf("joins.reshuffle = %d, want 1", got)
	}
	if got := reg.Counter("monsoon.exchange.rows").Value(); got != 1000 {
		t.Errorf("exchange.rows = %d, want 1000", got)
	}

	// S=1 keeps the legacy telemetry: no shard spans, no exchange attrs.
	col, reg = run(1, copart)
	for _, sp := range col.Spans {
		if sp.Kind == obs.KShard {
			t.Error("unsharded run emitted a KShard span")
		}
		if _, ok := sp.Num["shards"]; ok {
			t.Errorf("unsharded %s span carries a shards attribute", sp.Kind)
		}
	}
	for _, name := range []string{"monsoon.exchange.joins.local", "monsoon.exchange.joins.reshuffle",
		"monsoon.exchange.rows", "monsoon.exchange.sigma.partials"} {
		if got := reg.Counter(name).Value(); got != 0 {
			t.Errorf("unsharded run bumped %s to %d", name, got)
		}
	}
}

// TestShardedMaterializedReuseNotLocal pins the Re-store guard: a leaf that
// was materialized in a prior step is served from the reuse path, whose rows
// are not shard-partitioned, so the join must reshuffle — and still match
// the unsharded two-step run exactly.
func TestShardedMaterializedReuseNotLocal(t *testing.T) {
	q := rstQuery()
	twoStep := func(cat *table.Catalog, reg *obs.Registry) *table.Relation {
		e := New(cat)
		e.Metrics = reg
		if _, _, err := e.ExecTree(q, leaf("S"), &Budget{}); err != nil {
			t.Fatal(err)
		}
		rel, _, err := e.ExecTree(q, plan.NewJoin(leaf("R"), leaf("S")), &Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	ref := twoStep(fixture(), nil)
	cat := fixture()
	cat.Shard(4)
	reg := obs.NewRegistry()
	rel := twoStep(cat, reg)
	if !reflect.DeepEqual(rel.Rows, ref.Rows) {
		t.Error("sharded two-step run diverged from unsharded")
	}
	if got := reg.Counter("monsoon.exchange.joins.local").Value(); got != 0 {
		t.Errorf("reused build counted as shard-local (%d)", got)
	}
	if got := reg.Counter("monsoon.exchange.joins.reshuffle").Value(); got != 1 {
		t.Errorf("joins.reshuffle = %d, want 1", got)
	}
}

// TestShardedBudgetAbort: the shard-local scan must stop at the tuple cap
// like every other operator, and report ErrBudget, not a wrong answer.
func TestShardedBudgetAbort(t *testing.T) {
	cat := bigFixture()
	cat.Shard(4)
	e := New(cat)
	_, _, err := e.ExecTree(bigQuery(), plan.NewJoin(leaf("BR"), leaf("BS")), &Budget{MaxTuples: 100})
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
