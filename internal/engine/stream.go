// Streaming batch pipeline: every operator consumes and produces fixed-size
// row batches through the rowIter interface instead of whole materialized
// relations, so filter → join → filter stages of one tree overlap and peak
// memory is bounded by batch size × pipeline depth rather than intermediate
// cardinality. Two stages stay pipeline-breakers by construction: the
// hash-join build side (the hash table needs every build row before the first
// probe) and the tree root's final materialize (the MDP's Re store and the
// plan cache key the full relation). The Σ pass runs over that materialized
// root, as before.
//
// Determinism contract: a streaming run is bit-identical to the materialized
// one — same output rows in the same order, same budget totals, same span
// kinds with the same ids and the same rows/produced accounting — at every
// batch size and worker count. Batches preserve input order (each output
// batch is the join of one input batch, emitted in input order; parallel
// fan-outs stitch per-worker buffers in partition order as they always did),
// and operator spans are opened in the exact order the materialized engine
// opened them, accumulating rows across batches instead of setting them once.
// The only telemetry that legitimately varies with batch size is the number
// of KWorker spans (one fan-out per large-enough batch instead of one per
// operator), which is already the one machine-dependent span kind.
package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
)

// DefaultBatchSize is the pipeline batch size when Engine.BatchSize is 0.
const DefaultBatchSize = 4096

// unboundedBatch stands in for "one batch holds everything" when
// Engine.BatchSize < 0 (materialized mode). Kept far from MaxInt so
// lo+slab arithmetic cannot overflow.
const unboundedBatch = int(^uint(0) >> 2)

// batch resolves the engine's BatchSize knob: 0 = DefaultBatchSize,
// negative = unbounded (each operator emits its whole output as one batch,
// reproducing the materialized engine's memory profile exactly).
func (e *Exec) batch() int {
	switch {
	case e.BatchSize < 0:
		return unboundedBatch
	case e.BatchSize == 0:
		return DefaultBatchSize
	}
	return e.BatchSize
}

// scanSlab sizes the chunk a leaf scan examines per pull. It is at least the
// batch size, but also at least workers × parallelMinChunk so that a filter
// scan over a large base table fans out with the same worker count the
// materialized engine used (a bare batch of 4096 rows would cap the fan-out
// at 4 workers regardless of Parallelism).
func (e *Exec) scanSlab() int {
	slab := e.batch()
	w := e.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if min := w * parallelMinChunk; slab < min {
		slab = min
	}
	return slab
}

// rowIter is the pull-based batch iterator every streaming operator
// implements. Next returns the next non-empty batch of rows, nil when
// exhausted; returned batches must not be retained past the next Next call
// by operators that reuse buffers (none currently do — batches alias either
// base-table rows or freshly allocated join outputs). Close must be called
// exactly once, with the error that stopped the drain (nil on a clean run);
// it ends the iterator's spans and cascades to children.
type rowIter interface {
	Next() ([]table.Row, error)
	Close(err error)
}

// nodeIter wraps a plan node's operator iterator with the per-node
// accounting ExecResult carries: inclusive wall time (children are pulled
// inside the parent's Next, so accumulated pull time is inclusive, matching
// the materialized engine), the hardened cardinality on clean exhaustion,
// and the §4.4 Produced charge per emitted batch.
type nodeIter struct {
	inner rowIter
	key   string
	res   *ExecResult
	rows  int
	done  bool
}

func (t *nodeIter) Next() ([]table.Row, error) {
	t0 := time.Now()
	b, err := t.inner.Next()
	t.res.Times[t.key] += time.Since(t0)
	if err != nil {
		return nil, err
	}
	if b == nil {
		if !t.done {
			t.done = true
			// Counts are hardened statistics: only a complete drain may
			// record one (an aborted run must not teach the optimizer a
			// truncated cardinality).
			t.res.Counts[t.key] = float64(t.rows)
		}
		return nil, nil
	}
	t.rows += len(b)
	t.res.Produced += float64(len(b))
	return b, nil
}

func (t *nodeIter) Close(err error) { t.inner.Close(err) }

// open builds the iterator pipeline for a plan node and wraps it with
// accounting. parent is the enclosing join's umbrella span, nil at the tree
// root (where the ambient tracer stack — holding the KMaterialize span —
// supplies the parent). Open time is charged to the node's inclusive time,
// like the materialized engine's single timestamp around the whole node.
func (e *Exec) open(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult, parent *obs.Span) (rowIter, *table.Schema, error) {
	t0 := time.Now()
	var (
		it     rowIter
		schema *table.Schema
		err    error
	)
	if n.IsLeaf() {
		it, schema, err = e.openLeaf(q, n, budget, parent)
	} else {
		it, schema, err = e.openJoin(q, n, budget, res, parent)
	}
	res.Times[n.Key()] += time.Since(t0)
	if err != nil {
		return nil, nil, err
	}
	return &nodeIter{inner: it, key: n.Key(), res: res}, schema, nil
}

// opSpan starts an operator span in the position the materialized engine
// started it: under the ambient stack at the tree root (parenting to the
// KMaterialize span), explicitly under the enclosing join's umbrella
// otherwise. The explicit parent matters under streaming: a sibling
// subtree's spans stay open on the ambient stack while this one opens, so
// ambient parenting would splice unrelated operators together.
func (e *Exec) opSpan(parent *obs.Span, kind, name string) *obs.Span {
	if parent != nil {
		return e.Obs.StartChild(parent, kind, name)
	}
	return e.Obs.Start(kind, name)
}

// openLeaf resolves a leaf into an iterator: a previously materialized
// expression if one exists under the leaf's key, otherwise a scan of the
// stored base table with every single-alias selection pushed down.
func (e *Exec) openLeaf(q *query.Query, n *plan.Node, budget *Budget, parent *obs.Span) (rowIter, *table.Schema, error) {
	key := n.Key()
	if m, ok := e.mats[key]; ok {
		// Reusing a materialized expression still costs one pass over it
		// (cost(r) = c(r) for r in Re, §4.4), charged slab by slab.
		sp := e.opSpan(parent, obs.KReuse, key).SetStr("expr", key).SetRows(m.Count(), m.Count())
		return &reuseIter{sp: sp, m: m, budget: budget, slab: e.batch()}, m.Schema, nil
	}
	if n.Leaf.Size() != 1 {
		return nil, nil, fmt.Errorf("engine: leaf %q references an unmaterialized expression", key)
	}
	alias := n.Leaf.Names()[0]
	tbl, ok := q.TableOf(alias)
	if !ok {
		return nil, nil, fmt.Errorf("engine: alias %q not in query", alias)
	}
	base := e.eng.Cat.MustGet(tbl).Renamed(alias)
	sels := q.SelsAt(n.Leaf)
	sp := e.opSpan(parent, obs.KScan, alias).SetStr("expr", key).SetNum("selections", float64(len(sels)))
	it := &scanIter{e: e, sp: sp, key: key, base: base, sels: sels, budget: budget, slab: e.scanSlab()}
	if len(sels) > 0 {
		bound, ok := bindSels(sels, base.Schema)
		if !ok {
			sp.End()
			return nil, nil, fmt.Errorf("engine: selections not bindable on %s", base.Schema)
		}
		it.bound = bound
	}
	return it, base.Schema, nil
}

// reuseIter streams a materialized relation back out in batch-sized slices,
// charging the reuse pass incrementally so deadlines fire mid-pass.
type reuseIter struct {
	sp     *obs.Span
	m      *table.Relation
	budget *Budget
	slab   int
	pos    int
	fail   error
	closed bool
}

func (r *reuseIter) Next() ([]table.Row, error) {
	if r.pos >= r.m.Count() {
		return nil, nil
	}
	lo := r.pos
	hi := lo + r.slab
	if hi > r.m.Count() {
		hi = r.m.Count()
	}
	r.pos = hi
	if err := r.budget.Charge(hi - lo); err != nil {
		r.fail = err
		return nil, err
	}
	return r.m.Rows[lo:hi], nil
}

func (r *reuseIter) Close(error) {
	if r.closed {
		return
	}
	r.closed = true
	if r.fail != nil {
		r.sp.SetStr("err", r.fail.Error())
	}
	r.sp.End()
}

// scanIter streams a base table, applying pushed-down selections slab by
// slab. Large slabs fan out through parallelFilter with per-slab worker
// counts; the span's "workers" attribute records the first fan-out (the
// same count the materialized engine reported for the whole scan).
type scanIter struct {
	e      *Exec
	sp     *obs.Span
	key    string
	base   *table.Relation
	sels   []*query.SelPred
	bound  []boundSel
	budget *Budget
	slab   int
	pos    int
	kept   int
	fanned bool
	fail   error
	closed bool
}

func (s *scanIter) Next() ([]table.Row, error) {
	for s.pos < s.base.Count() {
		lo := s.pos
		hi := lo + s.slab
		if hi > s.base.Count() {
			hi = s.base.Count()
		}
		s.pos = hi
		rows := s.base.Rows[lo:hi]
		if s.bound == nil {
			s.kept += len(rows)
			if err := s.budget.Charge(len(rows)); err != nil {
				s.fail = err
				return nil, err
			}
			return rows, nil
		}
		var out []table.Row
		if w := s.e.workers(len(rows)); w > 1 {
			if !s.fanned {
				s.fanned = true
				s.sp.SetNum("workers", float64(w))
			}
			chunk := table.NewRelation(s.key, s.base.Schema, rows)
			pout, err := parallelFilter(chunk, s.sels, s.budget, w, s.e.tracedRunner(s.sp))
			s.kept += len(pout)
			if err != nil {
				s.fail = err
				return nil, err
			}
			out = pout
		} else {
			out = make([]table.Row, 0, len(rows)/4+1)
			for _, row := range rows {
				keep := true
				for _, b := range s.bound {
					if !b.b.Eval(row).Equal(b.k) {
						keep = false
						break
					}
				}
				if keep {
					out = append(out, row)
					s.kept++
					if err := s.budget.Charge(1); err != nil {
						s.fail = err
						return nil, err
					}
				}
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

func (s *scanIter) Close(error) {
	if s.closed {
		return
	}
	s.closed = true
	if s.fail != nil {
		s.sp.SetRows(s.base.Count(), s.kept).SetStr("err", s.fail.Error()).End()
		return
	}
	s.sp.SetRows(s.base.Count(), s.kept).SetProduced(float64(s.kept)).End()
}

// openJoin builds one join node's pipeline under a KJoin umbrella span. The
// left child streams; the right child is a pipeline-breaker, drained in full
// at open time to build the hash table (or to serve as the nested loop's
// inner side). Spans open in the materialized engine's order — KJoin, left
// subtree, right subtree, then KHashBuild/KNestedLoop — so span ids are
// identical between streaming and materialized runs.
func (e *Exec) openJoin(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult, parent *obs.Span) (rowIter, *table.Schema, error) {
	jsp := e.opSpan(parent, obs.KJoin, n.Key()).SetStr("expr", n.Key())
	fail := func(err error, closers ...rowIter) (rowIter, *table.Schema, error) {
		for _, c := range closers {
			c.Close(err)
		}
		jsp.SetStr("err", err.Error()).End()
		return nil, nil, err
	}
	newPreds := q.PredsNewAt(n.Left.Aliases(), n.Right.Aliases())
	newSels := q.SelsNewAt(n.Left.Aliases(), n.Right.Aliases())

	// Choose a hash predicate: one whose sides bind to opposite children.
	// The build side is always the right child — under streaming the left
	// side's cardinality is unknown until drained, so the materialized
	// engine's build-on-the-smaller-side swap is no longer possible — and
	// the probe term binds the (streaming) left child. Chosen before the
	// children open (it is pure) so the exchange decision below can steer
	// how the build child is scanned.
	var hashPred *query.JoinPred
	var buildTerm, probeTerm *query.Term
	for _, p := range newPreds {
		lInL := p.L.Aliases.SubsetOf(n.Left.Aliases())
		rInR := p.R.Aliases.SubsetOf(n.Right.Aliases())
		lInR := p.L.Aliases.SubsetOf(n.Right.Aliases())
		rInL := p.R.Aliases.SubsetOf(n.Left.Aliases())
		if lInL && rInR {
			hashPred, probeTerm, buildTerm = p, p.L, p.R
			break
		}
		if lInR && rInL {
			hashPred, probeTerm, buildTerm = p, p.R, p.L
			break
		}
	}

	// Exchange decision: a build child served directly by the storage
	// layer's shard layout on the join key scans shard-local (shard-major,
	// zero moved rows); any other hash build at S > 1 is a reshuffle —
	// every row is hash-routed into the sharded table it belongs to.
	shards := e.shardCount()
	localBuild := shards > 1 && hashPred != nil && e.coPartitioned(q, n.Right, buildTerm)

	left, lschema, err := e.open(q, n.Left, budget, res, jsp)
	if err != nil {
		return fail(err)
	}
	var right rowIter
	var rschema *table.Schema
	var shardScan *shardScanIter
	var zeroRel *table.Relation // in-place build input (no drain) when set
	var zeroSh *table.Sharded
	if localBuild && len(q.SelsAt(n.Right.Leaf)) == 0 {
		zeroRel, zeroSh, rschema, err = e.openShardZero(q, n.Right, budget, res, jsp)
	} else if localBuild {
		right, shardScan, rschema, err = e.openShard(q, n.Right, budget, res, jsp)
	} else {
		right, rschema, err = e.open(q, n.Right, budget, res, jsp)
	}
	if err != nil {
		return fail(err, left)
	}
	outSchema := lschema.Concat(rschema)

	// Everything else is residual, evaluated over the concatenated row.
	var residuals []residual
	for _, p := range newPreds {
		if p == hashPred {
			continue
		}
		lb, ok1 := p.L.Fn.Bind(outSchema)
		rb, ok2 := p.R.Fn.Bind(outSchema)
		if !ok1 || !ok2 {
			return fail(fmt.Errorf("engine: predicate %s not bindable at %s", p, n), left, right)
		}
		residuals = append(residuals, residual{lb: lb, rb: rb})
	}
	for _, s := range newSels {
		sb, ok := s.T.Fn.Bind(outSchema)
		if !ok {
			return fail(fmt.Errorf("engine: selection %s not bindable at %s", s, n), left, right)
		}
		residuals = append(residuals, residual{sb: sb, k: s.Const})
	}

	// Pipeline breaker: drain the right child in full. Hash builds need
	// every build row before the first probe, and the nested loop re-scans
	// its inner side once per outer row. The zero-copy shard path already
	// holds its full input (the stored rows themselves) and skips the drain.
	var buildRel *table.Relation
	if zeroRel != nil {
		buildRel = zeroRel
	} else {
		var rrows []table.Row
		for {
			b, err := right.Next()
			if err != nil {
				right.Close(err)
				return fail(err, left)
			}
			if b == nil {
				break
			}
			rrows = append(rrows, b...)
		}
		right.Close(nil)
		buildRel = table.NewRelation(n.Right.Key(), rschema, rrows)
	}

	if hashPred == nil {
		sp := e.Obs.StartChild(jsp, obs.KNestedLoop, n.Key()).SetNum("residuals", float64(len(residuals)))
		return &nestedLoopIter{
			e: e, jsp: jsp, sp: sp, left: left, inner: buildRel, name: n.Key(),
			outerSchema: lschema, residuals: residuals, outSchema: outSchema, budget: budget,
		}, outSchema, nil
	}

	bb, ok := buildTerm.Fn.Bind(buildRel.Schema)
	if !ok {
		return fail(fmt.Errorf("engine: term %s not bindable on build side", buildTerm), left)
	}
	pb, ok := probeTerm.Fn.Bind(lschema)
	if !ok {
		return fail(fmt.Errorf("engine: term %s not bindable on probe side", probeTerm), left)
	}
	bsp := e.Obs.StartChild(jsp, obs.KHashBuild, n.Key())
	var ht *shardedTable
	inserted := 0
	if zeroSh != nil {
		// Zero-exchange, zero-copy build: sub-tables build in place off the
		// stored rows through the layout's permutation, inserting global row
		// indices. Within a storage shard indices ascend and every key's rows
		// live in one shard, so chains and row lists come out exactly as the
		// serial unsharded build orders them.
		w := e.workers(buildRel.Count())
		if w > shards {
			w = shards
		}
		run := workerRunner(runWorkers)
		if w > 1 {
			bsp.SetNum("workers", float64(w))
			run = e.tracedRunner(bsp)
		}
		ht, inserted, err = shardLocalBuildPerm(buildRel, zeroSh, budget, w, run)
		if err != nil {
			bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
			return fail(err, left)
		}
	} else if localBuild && len(shardScan.bounds) == shards {
		// Zero-exchange build over a filtered shard-local drain: the drained
		// rows are shard-major and within a storage shard every key already
		// hashes to that shard, so each sub-table builds directly from its
		// contiguous row range — no routing and, unlike the chunk-partitioned
		// builds below, no cross-worker merge. Workers own whole sub-tables.
		w := e.workers(buildRel.Count())
		if w > shards {
			w = shards
		}
		run := workerRunner(runWorkers)
		if w > 1 {
			bsp.SetNum("workers", float64(w))
			run = e.tracedRunner(bsp)
		}
		ht, inserted, err = shardLocalBuild(buildRel, shardScan.bounds, buildTerm, budget, w, run)
		if err != nil {
			bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
			return fail(err, left)
		}
	} else if w := e.workers(buildRel.Count()); w > 1 {
		bsp.SetNum("workers", float64(w))
		if shards > 1 {
			ht, inserted, err = parallelShardedBuild(buildRel, buildTerm, shards, budget, w, e.tracedRunner(bsp))
		} else {
			var flat hashTable
			flat, inserted, err = parallelBuild(buildRel, buildTerm, budget, w, e.tracedRunner(bsp))
			ht = &shardedTable{subs: []hashTable{flat}}
		}
		if err != nil {
			bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
			return fail(err, left)
		}
	} else {
		ht = newShardedTable(shards, buildRel.Count())
		for i, row := range buildRel.Rows {
			// Building produces nothing but must still honor the deadline.
			if err := budget.Charge(0); err != nil {
				bsp.SetRows(buildRel.Count(), inserted).SetStr("err", err.Error()).End()
				return fail(err, left)
			}
			k := bb.Eval(row)
			if k.IsNull() {
				continue
			}
			inserted++
			ht.insert(k, i)
		}
	}
	if shards > 1 {
		bsp.SetNum("shards", float64(shards))
		if localBuild {
			bsp.SetNum("local", 1)
		} else {
			// Reshuffle: every inserted row was hash-routed across the
			// exchange, so the whole build side counts as moved.
			bsp.SetNum("local", 0).SetNum("exchange_rows", float64(inserted))
		}
		if e.Metrics != nil {
			if localBuild {
				e.Metrics.Counter("monsoon.exchange.joins.local").Inc()
			} else {
				e.Metrics.Counter("monsoon.exchange.joins.reshuffle").Inc()
				e.Metrics.Counter("monsoon.exchange.rows").Add(int64(inserted))
			}
		}
	}
	bsp.SetRows(buildRel.Count(), inserted).SetNum("residuals", float64(len(residuals))).End()
	psp := e.Obs.StartChild(jsp, obs.KHashProbe, n.Key())
	return &hashJoinIter{
		e: e, jsp: jsp, psp: psp, left: left, buildRel: buildRel, ht: ht,
		pb: pb, probeTerm: probeTerm, probeSchema: lschema, residuals: residuals,
		outSchema: outSchema, budget: budget, name: n.Key(),
	}, outSchema, nil
}

// hashJoinIter probes the prebuilt hash table with each batch pulled from
// the left child. Output order is probe-major over the stream, identical at
// every batch size because each output batch is the probe of exactly one
// input batch, in input order. NULL keys never match.
type hashJoinIter struct {
	e           *Exec
	jsp, psp    *obs.Span
	left        rowIter
	buildRel    *table.Relation
	ht          *shardedTable
	pb          *expr.Binding
	probeTerm   *query.Term
	probeSchema *table.Schema
	residuals   []residual
	outSchema   *table.Schema
	budget      *Budget
	name        string
	scratch     table.Row
	probed      int
	emitted     int
	fanned      bool
	fail        error
	closed      bool
}

func (h *hashJoinIter) Next() ([]table.Row, error) {
	for {
		batch, err := h.left.Next()
		if err != nil {
			h.fail = err
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		h.probed += len(batch)
		var out []table.Row
		if w := h.e.workers(len(batch)); w > 1 {
			if !h.fanned {
				h.fanned = true
				h.psp.SetNum("workers", float64(w))
			}
			probeRel := table.NewRelation(h.name, h.probeSchema, batch)
			pout, perr := parallelProbe(h.buildRel, probeRel, h.ht, h.probeTerm,
				h.residuals, h.outSchema, false, h.budget, w, h.e.tracedRunner(h.psp))
			h.emitted += len(pout)
			if perr != nil {
				h.fail = perr
				return nil, perr
			}
			out = pout
		} else {
			if h.scratch == nil {
				h.scratch = make(table.Row, len(h.outSchema.Cols))
			}
			for _, prow := range batch {
				// Matchless probes produce nothing; poll the deadline anyway.
				if err := h.budget.Charge(0); err != nil {
					h.fail = err
					return nil, err
				}
				k := h.pb.Eval(prow)
				if k.IsNull() {
					continue
				}
				for _, b := range h.ht.chains(k.Hash()) {
					if !b.key.Equal(k) {
						continue
					}
					for _, bi := range b.rows {
						brow := h.buildRel.Rows[bi]
						copy(h.scratch, prow)
						copy(h.scratch[len(prow):], brow)
						if !passResiduals(h.scratch, h.residuals) {
							continue
						}
						joined := make(table.Row, len(h.scratch))
						copy(joined, h.scratch)
						out = append(out, joined)
						h.emitted++
						if err := h.budget.Charge(1); err != nil {
							h.fail = err
							return nil, err
						}
					}
				}
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (h *hashJoinIter) Close(err error) {
	if h.closed {
		return
	}
	h.closed = true
	h.left.Close(err)
	if h.fail != nil {
		h.psp.SetRows(h.probed, h.emitted).SetStr("err", h.fail.Error()).End()
		h.jsp.SetStr("err", h.fail.Error()).End()
		return
	}
	h.psp.SetRows(h.probed, h.emitted).SetProduced(float64(h.emitted)).End()
	h.jsp.SetRows(0, h.emitted).End()
}

// nestedLoopIter computes the filtered product of each left batch with the
// fully drained inner side; it is the only strategy when no predicate
// separates the children. Its span reports rows-in as the number of row
// pairs scanned, accumulated across batches. Worker sizing mirrors the
// materialized operator — pairs scanned, capped by the outer rows available
// in the batch.
type nestedLoopIter struct {
	e           *Exec
	jsp, sp     *obs.Span
	left        rowIter
	inner       *table.Relation
	name        string
	outerSchema *table.Schema
	residuals   []residual
	outSchema   *table.Schema
	budget      *Budget
	scratch     table.Row
	pairs       int
	emitted     int
	fanned      bool
	fail        error
	closed      bool
}

func (nl *nestedLoopIter) Next() ([]table.Row, error) {
	for {
		batch, err := nl.left.Next()
		if err != nil {
			nl.fail = err
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		var out []table.Row
		w := nl.e.workers(len(batch) * nl.inner.Count())
		if w > len(batch) {
			w = len(batch)
		}
		if w > 1 {
			if !nl.fanned {
				nl.fanned = true
				nl.sp.SetNum("workers", float64(w))
			}
			outer := table.NewRelation(nl.name, nl.outerSchema, batch)
			pout, pairs, perr := parallelNestedLoop(outer, nl.inner, nl.residuals,
				nl.outSchema, nl.budget, w, nl.e.tracedRunner(nl.sp))
			nl.pairs += pairs
			nl.emitted += len(pout)
			if perr != nil {
				nl.fail = perr
				return nil, perr
			}
			out = pout
		} else {
			if nl.scratch == nil {
				nl.scratch = make(table.Row, len(nl.outSchema.Cols))
			}
			for _, lrow := range batch {
				copy(nl.scratch, lrow)
				for _, rrow := range nl.inner.Rows {
					nl.pairs++
					copy(nl.scratch[len(lrow):], rrow)
					if !passResiduals(nl.scratch, nl.residuals) {
						// Even rejected pairs consume work; poll the deadline
						// occasionally via a zero charge.
						if err := nl.budget.Charge(0); err != nil {
							nl.fail = err
							return nil, err
						}
						continue
					}
					joined := make(table.Row, len(nl.scratch))
					copy(joined, nl.scratch)
					out = append(out, joined)
					nl.emitted++
					if err := nl.budget.Charge(1); err != nil {
						nl.fail = err
						return nil, err
					}
				}
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (nl *nestedLoopIter) Close(err error) {
	if nl.closed {
		return
	}
	nl.closed = true
	nl.left.Close(err)
	if nl.fail != nil {
		nl.sp.SetRows(nl.pairs, nl.emitted).SetStr("err", nl.fail.Error()).End()
		nl.jsp.SetStr("err", nl.fail.Error()).End()
		return
	}
	nl.sp.SetRows(nl.pairs, nl.emitted).SetProduced(float64(nl.emitted)).End()
	nl.jsp.SetRows(0, nl.emitted).End()
}

// coPartitioned reports whether a join's build child is served directly by
// the storage layer's shard layout: an unmaterialized single-alias leaf
// whose build term is the identity of the table's shard column. Equal join
// keys then never span storage shards (the shard column IS the join key and
// routing is by its hash), so the build can scan shard-major with zero row
// movement and still yield the serial hash-table layout — within a storage
// shard rows keep their original relative order, and all rows of one key
// live in one shard, so every chain's row list matches the serial build's.
func (e *Exec) coPartitioned(q *query.Query, n *plan.Node, buildTerm *query.Term) bool {
	if buildTerm == nil || !n.IsLeaf() || n.Leaf.Size() != 1 {
		return false
	}
	if _, mat := e.mats[n.Key()]; mat {
		// A materialized intermediate is reused from the Re store, not the
		// storage layer; its rows are not shard-partitioned.
		return false
	}
	alias := n.Leaf.Names()[0]
	tbl, ok := q.TableOf(alias)
	if !ok {
		return false
	}
	sh, ok := e.eng.Cat.ShardsOf(tbl)
	if !ok || sh.Col == "" {
		return false
	}
	base := e.eng.Cat.MustGet(tbl)
	fn := buildTerm.Fn
	return fn.Name == "id" && len(fn.Args) == 1 &&
		fn.Args[0] == alias+"."+base.Schema.Cols[0].Name
}

// openShard opens a co-partitioned build leaf as a shard-local scan,
// mirroring open's accounting (inclusive open time, nodeIter wrapping). The
// concrete scan iterator is returned alongside so the enclosing join can read
// its shard boundaries after the drain.
func (e *Exec) openShard(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult, parent *obs.Span) (rowIter, *shardScanIter, *table.Schema, error) {
	t0 := time.Now()
	it, schema, err := e.openShardLeaf(q, n, budget, parent)
	res.Times[n.Key()] += time.Since(t0)
	if err != nil {
		return nil, nil, nil, err
	}
	return &nodeIter{inner: it, key: n.Key(), res: res}, it, schema, nil
}

// openShardZero is the zero-copy variant of the shard-local build scan for
// leaves with no pushed-down selections: every stored row survives the
// "scan", so there is nothing to gather or drain — the build can read the
// base relation in place through the layout's permutation. The trace and
// budget are indistinguishable from a full shard-local drain (same KScan
// span, one KShard child per storage shard, slab-granular tuple charges);
// only the 2× per-row-header copy of gather-then-drain disappears.
func (e *Exec) openShardZero(q *query.Query, n *plan.Node, budget *Budget, res *ExecResult, parent *obs.Span) (*table.Relation, *table.Sharded, *table.Schema, error) {
	t0 := time.Now()
	defer func() { res.Times[n.Key()] += time.Since(t0) }()
	key := n.Key()
	alias := n.Leaf.Names()[0]
	tbl, ok := q.TableOf(alias)
	if !ok {
		return nil, nil, nil, fmt.Errorf("engine: alias %q not in query", alias)
	}
	sh, ok := e.eng.Cat.ShardsOf(tbl)
	if !ok {
		return nil, nil, nil, fmt.Errorf("engine: table %q lost its shard layout", tbl)
	}
	base := e.eng.Cat.MustGet(tbl).Renamed(alias)
	slab := e.scanSlab()
	sp := e.opSpan(parent, obs.KScan, alias).SetStr("expr", key).
		SetNum("selections", 0).SetNum("shards", float64(sh.NumShards()))
	total := 0
	for h := 0; h < sh.NumShards(); h++ {
		cnt := len(sh.Shard(h))
		ssp := e.Obs.StartChild(sp, obs.KShard, fmt.Sprintf("s%d", h))
		charged := 0
		for lo := 0; lo < cnt; lo += slab {
			chunk := slab
			if cnt-lo < chunk {
				chunk = cnt - lo
			}
			if err := budget.Charge(chunk); err != nil {
				ssp.SetStr("err", err.Error()).SetRows(cnt, charged).End()
				sp.SetRows(total+charged, total+charged).SetStr("err", err.Error()).End()
				return nil, nil, nil, err
			}
			charged += chunk
		}
		ssp.SetRows(cnt, cnt).End()
		total += cnt
	}
	sp.SetRows(total, total).SetProduced(float64(total)).End()
	// A drained node would charge Produced per batch and record its hardened
	// cardinality through nodeIter; mirror both so the zero-copy handoff is
	// indistinguishable from a complete drain.
	res.Produced += float64(total)
	res.Counts[key] = float64(total)
	return table.NewRelation(key, base.Schema, base.Rows), sh, base.Schema, nil
}

// openShardLeaf is openLeaf's base-table branch over the table's shard
// layout: the same KScan span (plus a "shards" attribute), the same
// pushed-down selections, but the rows drain shard-major with one KShard
// child span per storage shard.
func (e *Exec) openShardLeaf(q *query.Query, n *plan.Node, budget *Budget, parent *obs.Span) (*shardScanIter, *table.Schema, error) {
	key := n.Key()
	alias := n.Leaf.Names()[0]
	tbl, ok := q.TableOf(alias)
	if !ok {
		return nil, nil, fmt.Errorf("engine: alias %q not in query", alias)
	}
	sh, ok := e.eng.Cat.ShardsOf(tbl)
	if !ok {
		return nil, nil, fmt.Errorf("engine: table %q lost its shard layout", tbl)
	}
	base := e.eng.Cat.MustGet(tbl).Renamed(alias)
	sels := q.SelsAt(n.Leaf)
	sp := e.opSpan(parent, obs.KScan, alias).SetStr("expr", key).
		SetNum("selections", float64(len(sels))).SetNum("shards", float64(sh.NumShards()))
	it := &shardScanIter{e: e, sp: sp, key: key, base: base, sh: sh, sels: sels, budget: budget, slab: e.scanSlab()}
	if len(sels) > 0 {
		bound, ok := bindSels(sels, base.Schema)
		if !ok {
			sp.End()
			return nil, nil, fmt.Errorf("engine: selections not bindable on %s", base.Schema)
		}
		it.bound = bound
	}
	return it, base.Schema, nil
}

// shardScanIter is the shard-local scan of a co-partitioned build side: it
// drains the table's storage shards in shard-index order, applying
// pushed-down selections slab by slab exactly like scanIter (same budget
// charges — per-slab counts without selections, per-kept-row with — so
// totals are identical to the unsharded scan). Shard-major output order is
// safe only because the consumer is a hash-routed build whose per-key
// layout is shard-order-independent; it is never a streaming probe side.
type shardScanIter struct {
	e      *Exec
	sp     *obs.Span
	key    string
	base   *table.Relation // renamed view: schema under the query alias
	sh     *table.Sharded
	sels   []*query.SelPred
	bound  []boundSel
	budget *Budget
	slab   int
	si     int       // current shard index
	pos    int       // position within the current shard
	cur    *obs.Span // current shard's KShard span
	// bounds records the cumulative kept-row count at each shard's end. A
	// complete drain leaves one entry per storage shard, so the consumer
	// knows which contiguous range of the (shard-major) drained rows came
	// from which shard — what shardLocalBuild needs to build sub-tables
	// without re-routing.
	bounds  []int
	buf     []table.Row // reusable gather buffer (batches are not retained)
	curKept int
	total   int
	kept    int
	fanned  bool
	fail    error
	closed  bool
}

func (s *shardScanIter) Next() ([]table.Row, error) {
	for s.si < s.sh.NumShards() {
		idx := s.sh.Shard(s.si)
		if s.cur == nil {
			s.cur = s.e.Obs.StartChild(s.sp, obs.KShard, fmt.Sprintf("s%d", s.si))
		}
		if s.pos >= len(idx) {
			s.cur.SetRows(len(idx), s.curKept).End()
			s.cur, s.curKept, s.pos = nil, 0, 0
			s.bounds = append(s.bounds, s.kept)
			s.si++
			continue
		}
		lo := s.pos
		hi := lo + s.slab
		if hi > len(idx) {
			hi = len(idx)
		}
		s.pos = hi
		// Gather the shard's rows through the layout's permutation into a
		// reusable buffer; consumers copy what they keep before the next
		// pull, per the rowIter contract.
		ids := idx[lo:hi]
		if cap(s.buf) < len(ids) {
			s.buf = make([]table.Row, len(ids))
		}
		rows := s.buf[:len(ids)]
		for j, id := range ids {
			rows[j] = s.base.Rows[id]
		}
		s.total += len(rows)
		if s.bound == nil {
			s.kept += len(rows)
			s.curKept += len(rows)
			if err := s.budget.Charge(len(rows)); err != nil {
				s.fail = err
				return nil, err
			}
			return rows, nil
		}
		var out []table.Row
		if w := s.e.workers(len(rows)); w > 1 {
			if !s.fanned {
				s.fanned = true
				s.sp.SetNum("workers", float64(w))
			}
			chunk := table.NewRelation(s.key, s.base.Schema, rows)
			pout, err := parallelFilter(chunk, s.sels, s.budget, w, s.e.tracedRunner(s.cur))
			s.kept += len(pout)
			s.curKept += len(pout)
			if err != nil {
				s.fail = err
				return nil, err
			}
			out = pout
		} else {
			out = make([]table.Row, 0, len(rows)/4+1)
			for _, row := range rows {
				keep := true
				for _, b := range s.bound {
					if !b.b.Eval(row).Equal(b.k) {
						keep = false
						break
					}
				}
				if keep {
					out = append(out, row)
					s.kept++
					s.curKept++
					if err := s.budget.Charge(1); err != nil {
						s.fail = err
						return nil, err
					}
				}
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

func (s *shardScanIter) Close(error) {
	if s.closed {
		return
	}
	s.closed = true
	if s.cur != nil {
		if s.fail != nil {
			s.cur.SetStr("err", s.fail.Error())
		}
		s.cur.SetRows(len(s.sh.Shard(s.si)), s.curKept).End()
	}
	if s.fail != nil {
		s.sp.SetRows(s.total, s.kept).SetStr("err", s.fail.Error()).End()
		return
	}
	s.sp.SetRows(s.total, s.kept).SetProduced(float64(s.kept)).End()
}

// peakSampleStride spaces the runtime.ReadMemStats calls of the peak-memory
// gauge on the drain path: every strideth batch plus the drain's start and
// end. ReadMemStats briefly stops the world, so sampling is gated on a
// metrics registry being attached and kept off the per-batch path otherwise.
const peakSampleStride = 8

// peakSampleTick paces the sampler's background goroutine. Batch-boundary
// samples alone would under-read the unbounded/materialized mode, where a
// whole tree drains in a single batch and the heap's true peak lies inside
// one long operator call; a wall-clock ticker observes both modes evenly.
const peakSampleTick = 2 * time.Millisecond

// peakSampler tracks the peak heap allocation observed while a tree drains,
// feeding ExecResult.PeakBytes and the monsoon.exec.peak_bytes gauge. It
// samples at batch boundaries (exact, cheap) and from a background ticker
// (catches peaks inside pipeline-breaking operator calls). The sampler only
// reads runtime counters, so it cannot perturb results, spans, or budgets.
type peakSampler struct {
	e       *Exec
	res     *ExecResult
	enabled bool
	ticks   int
	peak    uint64
	bgPeak  atomic.Uint64
	stop    chan struct{}
	done    chan struct{}
}

func (e *Exec) peakSampler(res *ExecResult) *peakSampler {
	ps := &peakSampler{e: e, res: res, enabled: e.Metrics != nil}
	if ps.enabled {
		ps.read()
		ps.stop = make(chan struct{})
		ps.done = make(chan struct{})
		go ps.background()
	}
	return ps
}

func (ps *peakSampler) background() {
	defer close(ps.done)
	t := time.NewTicker(peakSampleTick)
	defer t.Stop()
	for {
		select {
		case <-ps.stop:
			return
		case <-t.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > ps.bgPeak.Load() {
				ps.bgPeak.Store(ms.HeapAlloc)
			}
		}
	}
}

func (ps *peakSampler) read() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > ps.peak {
		ps.peak = ms.HeapAlloc
	}
}

func (ps *peakSampler) sample() {
	if !ps.enabled {
		return
	}
	ps.ticks++
	if ps.ticks%peakSampleStride == 0 {
		ps.read()
	}
}

func (ps *peakSampler) finish() {
	if !ps.enabled {
		return
	}
	close(ps.stop)
	<-ps.done
	ps.read()
	if bg := ps.bgPeak.Load(); bg > ps.peak {
		ps.peak = bg
	}
	ps.res.PeakBytes = float64(ps.peak)
	ps.e.Metrics.Gauge("monsoon.exec.peak_bytes").Set(float64(ps.peak))
}
