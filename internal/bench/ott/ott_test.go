package ott

import (
	"errors"
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/plan"
	"monsoon/internal/query"
)

func TestGenerateAugmentation(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.001, Seed: 1})
	for _, name := range augmented {
		tbl := cat.MustGet(name)
		if _, ok := tbl.Schema.Lookup(name + ".x"); !ok {
			t.Fatalf("%s missing x", name)
		}
		yi := tbl.Schema.MustLookup(name + ".y")
		xi := tbl.Schema.MustLookup(name + ".x")
		// y = (x + rank) mod D within each table.
		rank := int64(indexOf(augmented, name))
		for _, row := range tbl.Rows[:min(50, len(tbl.Rows))] {
			want := (row[xi].AsInt() + rank) % 100
			if row[yi].AsInt() != want {
				t.Fatalf("%s: y correlation broken: x=%d y=%d rank=%d",
					name, row[xi].AsInt(), row[yi].AsInt(), rank)
			}
		}
	}
}

func TestQueriesAreEmptyUnderBestPlan(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.001, Seed: 2})
	cases := Queries()
	if len(cases) != 20 {
		t.Fatalf("got %d cases, want 20", len(cases))
	}
	for _, c := range cases[:8] { // a subset keeps the test fast
		if err := c.Query.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Query.Name, err)
		}
		eng := engine.New(cat)
		rel, _, err := eng.ExecTree(c.Query, c.Best, &engine.Budget{MaxTuples: 5e6})
		if err != nil {
			t.Fatalf("%s: best plan aborted: %v", c.Query.Name, err)
		}
		if rel.Count() != 0 {
			t.Errorf("%s: result has %d rows, want empty", c.Query.Name, rel.Count())
		}
	}
}

func TestBadOrderExplodes(t *testing.T) {
	// Reversing the chain defers the empty pair to the end; the skewed fat
	// joins must then blow past a budget the good order fits in easily.
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 3})
	c := Queries()[0] // orders–lineitem–customer
	eng := engine.New(cat)
	_, er, err := eng.ExecTree(c.Query, c.Best, &engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	goodCost := er.Produced
	bad := plan.LeftDeep([]query.AliasSet{
		query.NewAliasSet("l"), query.NewAliasSet("c"), query.NewAliasSet("o"),
	})
	eng2 := engine.New(cat)
	_, er2, err2 := eng2.ExecTree(c.Query, bad, &engine.Budget{MaxTuples: 50 * goodCost})
	if err2 == nil && er2.Produced < 10*goodCost {
		t.Errorf("bad order too cheap: %v vs good %v", er2.Produced, goodCost)
	}
	if err2 != nil && !errors.Is(err2, engine.ErrBudget) {
		t.Fatalf("unexpected error: %v", err2)
	}
}

func TestHandWrittenStartsWithEmptyPair(t *testing.T) {
	for _, c := range Queries() {
		leaves := c.Best.Leaves()
		a0, a1 := leaves[0].Key(), leaves[1].Key()
		// The first two leaves must be the pair carrying two predicates.
		pairPreds := 0
		pair := query.NewAliasSet(a0, a1)
		for _, p := range c.Query.Joins {
			if p.Aliases().SubsetOf(pair) {
				pairPreds++
			}
		}
		if pairPreds != 2 {
			t.Errorf("%s: hand-written plan does not start with the correlated pair", c.Query.Name)
		}
	}
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
