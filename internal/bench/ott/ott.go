// Package ott builds the correlated Optimizer Torture Tests of Wu et al.
// (§6.2.2, Table 6), following the construction the paper summarizes: a
// TPC-H database augmented with two extra correlated columns per table, and
// a suite of 20 queries whose final result is empty — the pair of correlated
// predicates can never hold jointly across tables — while bad join orders
// generate enormous intermediates.
//
// Construction. Every augmented table gets columns x and y with
// y = (x + rank) mod D, where rank is distinct per table and x is drawn from
// a Zipf distribution over [0, D). A cross-table predicate pair
// (a.x = b.x AND a.y = b.y) therefore selects nothing, while a single-column
// predicate (a.x = b.x) is a skewed low-selectivity join whose true size far
// exceeds the |a||b|/D independence estimate — exactly the failure mode the
// torture tests target: optimizers that do not know the correlation defer
// the empty join and drown in the skewed fat ones.
package ott

import (
	"fmt"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Config parameterizes OTT generation.
type Config struct {
	// ScaleFactor is passed to the underlying TPC-H generator.
	ScaleFactor float64
	// Domain is D, the domain size of the correlated columns; default 100.
	Domain int64
	// Skew is the Zipf exponent of the x column; default 1.2.
	Skew float64
	// Seed makes generation reproducible.
	Seed int64
}

// augmented lists the tables that receive x/y columns, in rank order.
var augmented = []string{"customer", "orders", "lineitem", "supplier", "partsupp", "part"}

// Generate builds the TPC-H catalog and augments it with the correlated
// columns.
func Generate(cfg Config) *table.Catalog {
	if cfg.Domain == 0 {
		cfg.Domain = 100
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1.2
	}
	cat := tpch.Generate(tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	rng := randx.New(randx.Derive(cfg.Seed, "ott"))
	z := randx.NewZipf(cfg.Domain, cfg.Skew)
	for rank, name := range augmented {
		src := cat.MustGet(name)
		cols := append(append([]table.Column{}, src.Schema.Cols...),
			table.Column{Table: name, Name: "x", Kind: value.KindInt},
			table.Column{Table: name, Name: "y", Kind: value.KindInt},
		)
		b := table.NewBuilder(name, table.NewSchema(cols...))
		for _, row := range src.Rows {
			x := z.Draw(rng) - 1
			y := (x + int64(rank)) % cfg.Domain
			vals := append(append(table.Row{}, row...), value.Int(x), value.Int(y))
			b.Add(vals...)
		}
		cat.Put(b.Build())
	}
	return cat
}

// Case is one torture query with its hand-written best left-deep plan (the
// Table 6 "Hand-written" row: evaluate the empty correlated pair first).
type Case struct {
	Query *query.Query
	Best  *plan.Node
}

// chainSpec describes one query: a chain of tables where the first edge is
// the empty (x AND y) pair and the rest join on one correlated column only.
type chainSpec struct {
	tables  []string // chain order; edge 0-1 is the empty pair
	fatCols []string // column ("x" or "y") for each subsequent edge
}

// Queries builds the 20-case suite. The empty edge always connects the two
// largest tables of the chain, so size-guided heuristics are drawn away from
// it; fat edges alternate x and y.
func Queries() []Case {
	specs := []chainSpec{
		{[]string{"orders", "lineitem", "customer"}, []string{"x"}},
		{[]string{"orders", "lineitem", "supplier"}, []string{"y"}},
		{[]string{"orders", "lineitem", "part"}, []string{"x"}},
		{[]string{"orders", "lineitem", "partsupp"}, []string{"y"}},
		{[]string{"customer", "orders", "supplier"}, []string{"x"}},
		{[]string{"customer", "orders", "part"}, []string{"y"}},
		{[]string{"partsupp", "lineitem", "customer"}, []string{"x"}},
		{[]string{"partsupp", "lineitem", "supplier"}, []string{"y"}},
		{[]string{"part", "partsupp", "customer"}, []string{"x"}},
		{[]string{"part", "lineitem", "supplier"}, []string{"x"}},
		{[]string{"orders", "lineitem", "customer", "supplier"}, []string{"x", "y"}},
		{[]string{"orders", "lineitem", "part", "customer"}, []string{"y", "x"}},
		{[]string{"orders", "lineitem", "partsupp", "supplier"}, []string{"x", "y"}},
		{[]string{"customer", "orders", "supplier", "part"}, []string{"x", "y"}},
		{[]string{"partsupp", "lineitem", "customer", "part"}, []string{"y", "x"}},
		{[]string{"part", "partsupp", "supplier", "customer"}, []string{"x", "y"}},
		{[]string{"orders", "lineitem", "customer", "supplier", "part"}, []string{"x", "y", "x"}},
		{[]string{"orders", "lineitem", "part", "partsupp", "customer"}, []string{"y", "x", "y"}},
		{[]string{"customer", "orders", "supplier", "partsupp", "part"}, []string{"x", "y", "x"}},
		{[]string{"partsupp", "lineitem", "customer", "orders"}, []string{"x", "y"}},
	}
	out := make([]Case, 0, len(specs))
	for i, spec := range specs {
		out = append(out, buildCase(fmt.Sprintf("ott-q%02d", i+1), spec))
	}
	return out
}

// alias derives a short alias per table occurrence (tables are distinct
// within each chain).
func alias(tbl string) string {
	switch tbl {
	case "customer":
		return "c"
	case "orders":
		return "o"
	case "lineitem":
		return "l"
	case "supplier":
		return "s"
	case "partsupp":
		return "ps"
	case "part":
		return "p"
	default:
		return tbl
	}
}

func buildCase(name string, spec chainSpec) Case {
	id := expr.Identity
	b := query.NewBuilder(name)
	for _, t := range spec.tables {
		b.Rel(alias(t), t)
	}
	a0, a1 := alias(spec.tables[0]), alias(spec.tables[1])
	// The empty correlated pair.
	b.Join(id(a0+".x"), id(a1+".x"))
	b.Join(id(a0+".y"), id(a1+".y"))
	// Fat single-column edges along the rest of the chain.
	for i := 2; i < len(spec.tables); i++ {
		colName := spec.fatCols[i-2]
		b.Join(id(alias(spec.tables[i-1])+"."+colName), id(alias(spec.tables[i])+"."+colName))
	}
	q := b.MustBuild()
	// Hand-written best plan: the empty pair first, then the chain order.
	leaves := make([]query.AliasSet, len(spec.tables))
	for i, t := range spec.tables {
		leaves[i] = query.NewAliasSet(alias(t))
	}
	return Case{Query: q, Best: plan.LeftDeep(leaves)}
}
