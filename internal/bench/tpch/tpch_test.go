package tpch

import (
	"testing"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/opt"
	"monsoon/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 1})
	for _, name := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		if _, ok := cat.Get(name); !ok {
			t.Fatalf("missing table %q", name)
		}
	}
	if cat.MustGet("region").Count() != 5 || cat.MustGet("nation").Count() != 25 {
		t.Error("region/nation sizes wrong")
	}
	orders := cat.MustGet("orders").Count()
	lineitem := cat.MustGet("lineitem").Count()
	if lineitem < 2*orders || lineitem > 8*orders {
		t.Errorf("lineitem/orders ratio implausible: %d/%d", lineitem, orders)
	}
	// FK integrity: every o_custkey within customer key range.
	nCust := int64(cat.MustGet("customer").Count())
	ci := cat.MustGet("orders").Schema.MustLookup("orders.o_custkey")
	for _, row := range cat.MustGet("orders").Rows {
		k := row[ci].AsInt()
		if k < 1 || k > nCust {
			t.Fatalf("dangling o_custkey %d", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.002, Seed: 5})
	b := Generate(Config{ScaleFactor: 0.002, Seed: 5})
	if a.MustGet("orders").Count() != b.MustGet("orders").Count() {
		t.Fatal("same seed, different sizes")
	}
	ra, rb := a.MustGet("orders").Rows[0], b.MustGet("orders").Rows[0]
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Fatal("same seed, different content")
		}
	}
}

func TestSkewChangesDistribution(t *testing.T) {
	// Count the hottest o_custkey value with and without skew.
	hot := func(cfg Config) int {
		cat := Generate(cfg)
		idx := cat.MustGet("orders").Schema.MustLookup("orders.o_custkey")
		h := map[int64]int{}
		for _, row := range cat.MustGet("orders").Rows {
			h[row[idx].AsInt()]++
		}
		max := 0
		for _, c := range h {
			if c > max {
				max = c
			}
		}
		return max
	}
	flatHot := hot(Config{ScaleFactor: 0.005, Seed: 2, Skew: 0})
	skewHot := hot(Config{ScaleFactor: 0.005, Seed: 2, Skew: 4})
	if skewHot < 10*flatHot {
		t.Errorf("z=4 skew too weak: hottest %d vs flat %d", skewHot, flatHot)
	}
	// Mixed skew must also generate successfully.
	Generate(Config{ScaleFactor: 0.002, Seed: 3, MixedSkew: true})
}

func TestQueriesValidate(t *testing.T) {
	qs := Queries()
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if q.Aliases().Size() < 3 {
			t.Errorf("%s has fewer than 3 tables", q.Name)
		}
	}
}

func TestQueriesExecutable(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	for _, q := range Queries() {
		eng := engine.New(cat)
		st := stats.New()
		eng.SeedBaseStats(q, st)
		dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
		tree, err := opt.BestPlan(q, dv)
		if err != nil {
			t.Fatalf("%s: plan: %v", q.Name, err)
		}
		if _, _, err := eng.ExecTree(q, tree, &engine.Budget{MaxTuples: 5e7}); err != nil {
			t.Errorf("%s: exec: %v", q.Name, err)
		}
	}
}
