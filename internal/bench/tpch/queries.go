package tpch

import (
	"monsoon/internal/expr"
	"monsoon/internal/query"
	"monsoon/internal/value"
)

// Queries returns the TPC-H subset the paper restricts Table 2 to: queries
// with a non-trivial join ordering problem (at least three tables). Join
// predicates are expressed as opaque identity UDFs — the setting of the
// experiment is that no statistics about them are available up front.
func Queries() []*query.Query {
	id := expr.Identity
	str := value.String
	return []*query.Query{
		// Q2-shaped: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region.
		query.NewBuilder("tpch-q2").
			Rel("p", "part").Rel("ps", "partsupp").Rel("s", "supplier").
			Rel("n", "nation").Rel("r", "region").
			Join(id("ps.ps_partkey"), id("p.p_partkey")).
			Join(id("ps.ps_suppkey"), id("s.s_suppkey")).
			Join(id("s.s_nationkey"), id("n.n_nationkey")).
			Join(id("n.n_regionkey"), id("r.r_regionkey")).
			Select(id("p.p_size"), value.Int(15)).
			Select(id("r.r_name"), str("EUROPE")).
			MustBuild(),
		// Q3-shaped: customer ⋈ orders ⋈ lineitem.
		query.NewBuilder("tpch-q3").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").
			Join(id("c.c_custkey"), id("o.o_custkey")).
			Join(id("l.l_orderkey"), id("o.o_orderkey")).
			Select(id("c.c_mktsegment"), str("BUILDING")).
			Select(expr.YearOf("o.o_orderdate"), value.Int(1995)).
			MustBuild(),
		// Q5-shaped: six tables around the customer–supplier nation equality.
		query.NewBuilder("tpch-q5").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").
			Rel("s", "supplier").Rel("n", "nation").Rel("r", "region").
			Join(id("c.c_custkey"), id("o.o_custkey")).
			Join(id("l.l_orderkey"), id("o.o_orderkey")).
			Join(id("l.l_suppkey"), id("s.s_suppkey")).
			Join(id("c.c_nationkey"), id("s.s_nationkey")).
			Join(id("s.s_nationkey"), id("n.n_nationkey")).
			Join(id("n.n_regionkey"), id("r.r_regionkey")).
			Select(id("r.r_name"), str("ASIA")).
			Select(expr.YearOf("o.o_orderdate"), value.Int(1994)).
			MustBuild(),
		// Q7-shaped: two nation instances.
		query.NewBuilder("tpch-q7").
			Rel("s", "supplier").Rel("l", "lineitem").Rel("o", "orders").
			Rel("c", "customer").Rel("n1", "nation").Rel("n2", "nation").
			Join(id("s.s_suppkey"), id("l.l_suppkey")).
			Join(id("o.o_orderkey"), id("l.l_orderkey")).
			Join(id("c.c_custkey"), id("o.o_custkey")).
			Join(id("s.s_nationkey"), id("n1.n_nationkey")).
			Join(id("c.c_nationkey"), id("n2.n_nationkey")).
			Select(id("n1.n_name"), str("FRANCE")).
			Select(id("n2.n_name"), str("GERMANY")).
			MustBuild(),
		// Q8-shaped: eight tables.
		query.NewBuilder("tpch-q8").
			Rel("p", "part").Rel("l", "lineitem").Rel("o", "orders").
			Rel("c", "customer").Rel("s", "supplier").
			Rel("n1", "nation").Rel("n2", "nation").Rel("r", "region").
			Join(id("p.p_partkey"), id("l.l_partkey")).
			Join(id("l.l_orderkey"), id("o.o_orderkey")).
			Join(id("o.o_custkey"), id("c.c_custkey")).
			Join(id("l.l_suppkey"), id("s.s_suppkey")).
			Join(id("c.c_nationkey"), id("n1.n_nationkey")).
			Join(id("n1.n_regionkey"), id("r.r_regionkey")).
			Join(id("s.s_nationkey"), id("n2.n_nationkey")).
			Select(id("r.r_name"), str("AMERICA")).
			Select(id("p.p_type"), str("ECONOMY POLISHED BRASS")).
			MustBuild(),
		// Q9-shaped: part ⋈ supplier ⋈ lineitem ⋈ partsupp ⋈ orders ⋈ nation.
		query.NewBuilder("tpch-q9").
			Rel("p", "part").Rel("s", "supplier").Rel("l", "lineitem").
			Rel("ps", "partsupp").Rel("o", "orders").Rel("n", "nation").
			Join(id("s.s_suppkey"), id("l.l_suppkey")).
			Join(id("ps.ps_suppkey"), id("l.l_suppkey")).
			Join(id("ps.ps_partkey"), id("l.l_partkey")).
			Join(id("p.p_partkey"), id("l.l_partkey")).
			Join(id("o.o_orderkey"), id("l.l_orderkey")).
			Join(id("s.s_nationkey"), id("n.n_nationkey")).
			Select(id("p.p_brand"), str("Brand#23")).
			MustBuild(),
		// Q10-shaped: returned items by customer nation.
		query.NewBuilder("tpch-q10").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").Rel("n", "nation").
			Join(id("c.c_custkey"), id("o.o_custkey")).
			Join(id("l.l_orderkey"), id("o.o_orderkey")).
			Join(id("c.c_nationkey"), id("n.n_nationkey")).
			Select(id("l.l_returnflag"), str("R")).
			Select(expr.YearOf("o.o_orderdate"), value.Int(1993)).
			MustBuild(),
		// Q11-shaped: partsupp ⋈ supplier ⋈ nation.
		query.NewBuilder("tpch-q11").
			Rel("ps", "partsupp").Rel("s", "supplier").Rel("n", "nation").
			Join(id("ps.ps_suppkey"), id("s.s_suppkey")).
			Join(id("s.s_nationkey"), id("n.n_nationkey")).
			Select(id("n.n_name"), str("GERMANY")).
			MustBuild(),
		// Q18-shaped: large-order chain.
		query.NewBuilder("tpch-q18").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").
			Join(id("c.c_custkey"), id("o.o_custkey")).
			Join(id("o.o_orderkey"), id("l.l_orderkey")).
			Select(id("l.l_quantity"), value.Int(49)).
			MustBuild(),
		// Q21-shaped: supplier ⋈ lineitem ⋈ orders ⋈ nation.
		query.NewBuilder("tpch-q21").
			Rel("s", "supplier").Rel("l", "lineitem").Rel("o", "orders").Rel("n", "nation").
			Join(id("s.s_suppkey"), id("l.l_suppkey")).
			Join(id("o.o_orderkey"), id("l.l_orderkey")).
			Join(id("s.s_nationkey"), id("n.n_nationkey")).
			Select(id("o.o_orderpriority"), str("1-URGENT")).
			Select(id("n.n_name"), str("SAUDI ARABIA")).
			MustBuild(),
	}
}
