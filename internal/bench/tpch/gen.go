// Package tpch generates TPC-H-shaped data at any scale factor, with the
// Zipfian skew knob of the Microsoft skewed-TPC-H generator the paper uses
// for Table 2 ("low" z=1, "high" z=4, "mixed" = per-column z drawn uniformly
// from [0,4]), and defines the benchmark's ≥3-table join-ordering queries.
// Only the columns the queries touch are generated, keeping the in-memory
// footprint proportional to what the experiments exercise.
package tpch

import (
	"fmt"
	"math/rand"

	"monsoon/internal/randx"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Config parameterizes generation.
type Config struct {
	// ScaleFactor scales the standard row counts (1.0 = 6M lineitem). The
	// in-memory experiments run at 0.002–0.05.
	ScaleFactor float64
	// Skew is the Zipf exponent applied to foreign keys and value columns;
	// 0 disables skew.
	Skew float64
	// MixedSkew draws an independent z ∈ [0,4] per column, overriding Skew.
	MixedSkew bool
	// Seed makes generation reproducible.
	Seed int64
}

var (
	regions  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	prios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	flags    = []string{"R", "A", "N"}
	types    = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL",
		"LARGE BRUSHED STEEL", "ECONOMY POLISHED BRASS", "PROMO ANODIZED STEEL"}
	nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
		"KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
)

// picker draws keys in [1, n], uniform or Zipf depending on the column's z.
type picker struct {
	z    *randx.Zipf
	n    int64
	perm []int64 // shuffles which keys are hot so skew is not always key 1
}

func newPicker(n int64, z float64, rng *rand.Rand) *picker {
	p := &picker{n: n}
	if z > 0 && n > 1 {
		p.z = randx.NewZipf(n, z)
		p.perm = make([]int64, n)
		for i, j := range rng.Perm(int(n)) {
			p.perm[i] = int64(j) + 1
		}
	}
	return p
}

func (p *picker) draw(rng *rand.Rand) int64 {
	if p.z == nil {
		return randx.UniformInt(rng, p.n)
	}
	return p.perm[p.z.Draw(rng)-1]
}

// columnZ resolves the skew exponent for one column under the config.
func (c Config) columnZ(rng *rand.Rand) float64 {
	if c.MixedSkew {
		return rng.Float64() * 4
	}
	return c.Skew
}

func dateString(day int) string {
	year := 1992 + day/365
	rem := day % 365
	month := rem/31 + 1
	dom := rem%31 + 1
	return fmt.Sprintf("%04d-%02d-%02d %02d:00:00", year, month, dom, day%24)
}

func col(t, n string, k value.Kind) table.Column { return table.Column{Table: t, Name: n, Kind: k} }

// Generate builds the eight TPC-H tables.
func Generate(cfg Config) *table.Catalog {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.01
	}
	rng := randx.New(randx.Derive(cfg.Seed, "tpch"))
	cat := table.NewCatalog()
	sf := cfg.ScaleFactor
	nSupp := maxInt(10, int(10000*sf))
	nCust := maxInt(30, int(150000*sf))
	nPart := maxInt(40, int(200000*sf))
	nPartsupp := nPart * 4
	nOrders := maxInt(50, int(1500000*sf))

	// region
	rb := table.NewBuilder("region", table.NewSchema(
		col("region", "r_regionkey", value.KindInt),
		col("region", "r_name", value.KindString),
	))
	for i, name := range regions {
		rb.Add(value.Int(int64(i)), value.String(name))
	}
	cat.Put(rb.Build())

	// nation
	nb := table.NewBuilder("nation", table.NewSchema(
		col("nation", "n_nationkey", value.KindInt),
		col("nation", "n_name", value.KindString),
		col("nation", "n_regionkey", value.KindInt),
	))
	for i, name := range nations {
		nb.Add(value.Int(int64(i)), value.String(name), value.Int(int64(i%5)))
	}
	cat.Put(nb.Build())

	// supplier
	suppNation := newPicker(25, cfg.columnZ(rng), rng)
	sb := table.NewBuilder("supplier", table.NewSchema(
		col("supplier", "s_suppkey", value.KindInt),
		col("supplier", "s_nationkey", value.KindInt),
	))
	for i := 1; i <= nSupp; i++ {
		sb.Add(value.Int(int64(i)), value.Int(suppNation.draw(rng)-1))
	}
	cat.Put(sb.Build())

	// customer
	custNation := newPicker(25, cfg.columnZ(rng), rng)
	custSeg := newPicker(int64(len(segments)), cfg.columnZ(rng), rng)
	cb := table.NewBuilder("customer", table.NewSchema(
		col("customer", "c_custkey", value.KindInt),
		col("customer", "c_nationkey", value.KindInt),
		col("customer", "c_mktsegment", value.KindString),
	))
	for i := 1; i <= nCust; i++ {
		cb.Add(value.Int(int64(i)),
			value.Int(custNation.draw(rng)-1),
			value.String(segments[custSeg.draw(rng)-1]))
	}
	cat.Put(cb.Build())

	// part
	partSize := newPicker(50, cfg.columnZ(rng), rng)
	partBrand := newPicker(45, cfg.columnZ(rng), rng)
	partType := newPicker(int64(len(types)), cfg.columnZ(rng), rng)
	pb := table.NewBuilder("part", table.NewSchema(
		col("part", "p_partkey", value.KindInt),
		col("part", "p_size", value.KindInt),
		col("part", "p_brand", value.KindString),
		col("part", "p_type", value.KindString),
	))
	for i := 1; i <= nPart; i++ {
		pb.Add(value.Int(int64(i)),
			value.Int(partSize.draw(rng)),
			value.String(fmt.Sprintf("Brand#%d", 10+partBrand.draw(rng))),
			value.String(types[partType.draw(rng)-1]))
	}
	cat.Put(pb.Build())

	// partsupp
	psPart := newPicker(int64(nPart), cfg.columnZ(rng), rng)
	psSupp := newPicker(int64(nSupp), cfg.columnZ(rng), rng)
	psb := table.NewBuilder("partsupp", table.NewSchema(
		col("partsupp", "ps_partkey", value.KindInt),
		col("partsupp", "ps_suppkey", value.KindInt),
	))
	for i := 0; i < nPartsupp; i++ {
		psb.Add(value.Int(psPart.draw(rng)), value.Int(psSupp.draw(rng)))
	}
	cat.Put(psb.Build())

	// orders
	oCust := newPicker(int64(nCust), cfg.columnZ(rng), rng)
	oPrio := newPicker(int64(len(prios)), cfg.columnZ(rng), rng)
	oDay := newPicker(7*365, cfg.columnZ(rng), rng)
	ob := table.NewBuilder("orders", table.NewSchema(
		col("orders", "o_orderkey", value.KindInt),
		col("orders", "o_custkey", value.KindInt),
		col("orders", "o_orderdate", value.KindString),
		col("orders", "o_orderpriority", value.KindString),
	))
	for i := 1; i <= nOrders; i++ {
		ob.Add(value.Int(int64(i)),
			value.Int(oCust.draw(rng)),
			value.String(dateString(int(oDay.draw(rng))-1)),
			value.String(prios[oPrio.draw(rng)-1]))
	}
	cat.Put(ob.Build())

	// lineitem: 1–7 lines per order (avg 4, as in TPC-H).
	lPart := newPicker(int64(nPart), cfg.columnZ(rng), rng)
	lSupp := newPicker(int64(nSupp), cfg.columnZ(rng), rng)
	lFlag := newPicker(int64(len(flags)), cfg.columnZ(rng), rng)
	lDay := newPicker(7*365, cfg.columnZ(rng), rng)
	lb := table.NewBuilder("lineitem", table.NewSchema(
		col("lineitem", "l_orderkey", value.KindInt),
		col("lineitem", "l_partkey", value.KindInt),
		col("lineitem", "l_suppkey", value.KindInt),
		col("lineitem", "l_quantity", value.KindInt),
		col("lineitem", "l_shipdate", value.KindString),
		col("lineitem", "l_returnflag", value.KindString),
	))
	for o := 1; o <= nOrders; o++ {
		lines := 1 + rng.Intn(7)
		for l := 0; l < lines; l++ {
			lb.Add(value.Int(int64(o)),
				value.Int(lPart.draw(rng)),
				value.Int(lSupp.draw(rng)),
				value.Int(1+rng.Int63n(50)),
				value.String(dateString(int(lDay.draw(rng))-1)),
				value.String(flags[lFlag.draw(rng)-1]))
		}
	}
	cat.Put(lb.Build())
	return cat
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
