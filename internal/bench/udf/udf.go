// Package udf defines the paper's UDF benchmark (§6.2.2, Table 7, Figure 3):
// 25 queries whose join and selection predicates go exclusively through
// opaque UDFs — 15 translated from the IMDB join benchmark shapes and 10
// over TPC-H designed to present a difficult join order problem, including
// multi-table UDFs whose statistics cannot exist until a join has been
// materialized. The UDFs are inexpensive (string surgery, hashing, date
// extraction), matching the paper's scope.
package udf

import (
	"monsoon/internal/bench/imdb"
	"monsoon/internal/bench/tpch"
	"monsoon/internal/expr"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Suite bundles the two datasets and the 25 queries. IMDB queries run on
// IMDBCat; TPC-H queries on TPCHCat.
type Suite struct {
	IMDBCat *table.Catalog
	TPCHCat *table.Catalog
	IMDB    []*query.Query // 15
	TPCH    []*query.Query // 10
}

// Config scales the two datasets.
type Config struct {
	Titles      int     // IMDB titles
	ScaleFactor float64 // TPC-H scale
	Seed        int64
}

// Generate builds both catalogs and the query suite.
func Generate(cfg Config) *Suite {
	return &Suite{
		IMDBCat: imdb.Generate(imdb.Config{Titles: cfg.Titles, Seed: cfg.Seed}),
		TPCHCat: tpch.Generate(tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed}),
		IMDB:    IMDBQueries(),
		TPCH:    TPCHQueries(),
	}
}

// All returns the 25 queries with their catalogs, in benchmark order.
func (s *Suite) All() []struct {
	Query *query.Query
	Cat   *table.Catalog
} {
	var out []struct {
		Query *query.Query
		Cat   *table.Catalog
	}
	for _, q := range s.IMDB {
		out = append(out, struct {
			Query *query.Query
			Cat   *table.Catalog
		}{q, s.IMDBCat})
	}
	for _, q := range s.TPCH {
		out = append(out, struct {
			Query *query.Query
			Cat   *table.Catalog
		}{q, s.TPCHCat})
	}
	return out
}

// extractTitleKey pulls the embedded title key out of title.note, and
// formatMovieID formats an integer movie id to match — the §1 pattern.
func extractTitleKey(attr string) *expr.UDF { return expr.Between(attr, `id="`, `" url=`) }
func formatMovieID(attr string) *expr.UDF   { return expr.Sprintf(attr, "T%06d") }

// IMDBQueries returns the 15 IMDB-shaped UDF queries.
func IMDBQueries() []*query.Query {
	hm := func(attr string) *expr.UDF { return expr.HashMod(attr, 1<<20) }
	qs := []*query.Query{
		// 1: extract-join through free text, then a dictionary hop.
		query.NewBuilder("udf-i01").
			Rel("t", "title").Rel("ci", "cast_info").Rel("na", "name").
			Join(extractTitleKey("t.note"), formatMovieID("ci.movie_id")).
			Join(hm("ci.person_id"), hm("na.id")).
			MustBuild(),
		// 2: same spine plus a gender filter through Lower.
		query.NewBuilder("udf-i02").
			Rel("t", "title").Rel("ci", "cast_info").Rel("na", "name").
			Join(extractTitleKey("t.note"), formatMovieID("ci.movie_id")).
			Join(hm("ci.person_id"), hm("na.id")).
			Select(expr.Lower("na.gender"), value.String("f")).
			MustBuild(),
		// 3: companies via hashed keys, country filter through Lower.
		query.NewBuilder("udf-i03").
			Rel("t", "title").Rel("mc", "movie_companies").Rel("cn", "company_name").
			Join(hm("t.id"), hm("mc.movie_id")).
			Join(hm("mc.company_id"), hm("cn.id")).
			Select(expr.Lower("cn.country_code"), value.String("[de]")).
			MustBuild(),
		// 4: info dictionary with a Prefix filter on the info payload.
		query.NewBuilder("udf-i04").
			Rel("t", "title").Rel("mi", "movie_info").Rel("it", "info_type").
			Join(extractTitleKey("t.note"), formatMovieID("mi.movie_id")).
			Join(hm("mi.info_type_id"), hm("it.id")).
			Select(expr.Prefix("it.info", 3), value.String("bud")).
			MustBuild(),
		// 5: keywords with a filter.
		query.NewBuilder("udf-i05").
			Rel("t", "title").Rel("mk", "movie_keyword").Rel("kw", "keyword").
			Join(hm("t.id"), hm("mk.movie_id")).
			Join(hm("mk.keyword_id"), hm("kw.id")).
			Select(expr.Prefix("kw.keyword", 2), value.String("mu")).
			MustBuild(),
		// 6: four tables, two branches.
		query.NewBuilder("udf-i06").
			Rel("t", "title").Rel("ci", "cast_info").Rel("mk", "movie_keyword").Rel("kw", "keyword").
			Join(hm("t.id"), hm("ci.movie_id")).
			Join(hm("t.id"), hm("mk.movie_id")).
			Join(hm("mk.keyword_id"), hm("kw.id")).
			Select(expr.Lower("kw.keyword"), value.String("sequel")).
			MustBuild(),
		// 7: five tables.
		query.NewBuilder("udf-i07").
			Rel("t", "title").Rel("ci", "cast_info").Rel("na", "name").
			Rel("mc", "movie_companies").Rel("cn", "company_name").
			Join(extractTitleKey("t.note"), formatMovieID("ci.movie_id")).
			Join(hm("ci.person_id"), hm("na.id")).
			Join(hm("t.id"), hm("mc.movie_id")).
			Join(hm("mc.company_id"), hm("cn.id")).
			Select(expr.Lower("cn.country_code"), value.String("[us]")).
			MustBuild(),
		// 8: year extracted from the note text vs. a constant.
		query.NewBuilder("udf-i08").
			Rel("t", "title").Rel("mi", "movie_info").Rel("it", "info_type").
			Join(hm("t.id"), hm("mi.movie_id")).
			Join(hm("mi.info_type_id"), hm("it.id")).
			Select(expr.Between("t.note", `year="`, `"/>`), value.String("2010")).
			MustBuild(),
		// 9: multi-table UDF — the pair (movie, keyword) hashed together must
		// hit a bucket; no statistic exists before mk⋈kw is materialized.
		query.NewBuilder("udf-i09").
			Rel("mk", "movie_keyword").Rel("kw", "keyword").Rel("t", "title").
			Join(hm("mk.keyword_id"), hm("kw.id")).
			Join(expr.SumMod("mk.movie_id", "kw.id", 1<<14), hm("t.id")).
			MustBuild(),
		// 10: cast and info star.
		query.NewBuilder("udf-i10").
			Rel("t", "title").Rel("ci", "cast_info").Rel("mi", "movie_info").
			Join(hm("t.id"), hm("ci.movie_id")).
			Join(hm("t.id"), hm("mi.movie_id")).
			Select(expr.Lower("mi.info"), value.String("drama")).
			MustBuild(),
		// 11: role filter through HashMod = const.
		query.NewBuilder("udf-i11").
			Rel("t", "title").Rel("ci", "cast_info").Rel("na", "name").
			Join(hm("t.id"), hm("ci.movie_id")).
			Join(hm("ci.person_id"), hm("na.id")).
			Select(expr.HashMod("ci.role_id", 10), value.Int(3)).
			MustBuild(),
		// 12: two dictionaries.
		query.NewBuilder("udf-i12").
			Rel("t", "title").Rel("mi", "movie_info").Rel("it", "info_type").
			Rel("mk", "movie_keyword").Rel("kw", "keyword").
			Join(hm("t.id"), hm("mi.movie_id")).
			Join(hm("mi.info_type_id"), hm("it.id")).
			Join(hm("t.id"), hm("mk.movie_id")).
			Join(hm("mk.keyword_id"), hm("kw.id")).
			Select(expr.Prefix("it.info", 6), value.String("rating")).
			Select(expr.Lower("kw.keyword"), value.String("murder")).
			MustBuild(),
		// 13: multi-table ConcatKey over title and company vs a formatted id.
		query.NewBuilder("udf-i13").
			Rel("t", "title").Rel("mc", "movie_companies").Rel("cn", "company_name").
			Join(hm("t.id"), hm("mc.movie_id")).
			Join(expr.ConcatKey("t.title", "mc.company_type_id"), expr.Sprintf("cn.id", "T%06d|2")).
			MustBuild(),
		// 14: deep chain through people.
		query.NewBuilder("udf-i14").
			Rel("na", "name").Rel("ci", "cast_info").Rel("t", "title").Rel("mk", "movie_keyword").
			Join(hm("na.id"), hm("ci.person_id")).
			Join(formatMovieID("ci.movie_id"), extractTitleKey("t.note")).
			Join(hm("t.id"), hm("mk.movie_id")).
			Select(expr.Prefix("na.name", 6), value.String("Name 0")).
			MustBuild(),
		// 15: everything star.
		query.NewBuilder("udf-i15").
			Rel("t", "title").Rel("ci", "cast_info").Rel("mc", "movie_companies").
			Rel("mi", "movie_info").
			Join(hm("t.id"), hm("ci.movie_id")).
			Join(hm("t.id"), hm("mc.movie_id")).
			Join(hm("t.id"), hm("mi.movie_id")).
			Select(expr.HashMod("t.kind_id", 4), value.Int(1)).
			MustBuild(),
	}
	return qs
}

// TPCHQueries returns the 10 TPC-H-shaped UDF queries.
func TPCHQueries() []*query.Query {
	hm := func(attr string) *expr.UDF { return expr.HashMod(attr, 1<<20) }
	return []*query.Query{
		// 1: hashed FK chain.
		query.NewBuilder("udf-t01").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").
			Join(hm("c.c_custkey"), hm("o.o_custkey")).
			Join(hm("o.o_orderkey"), hm("l.l_orderkey")).
			Select(expr.Lower("c.c_mktsegment"), value.String("building")).
			MustBuild(),
		// 2: date-equality join between orders and lineitem — a genuinely
		// fat UDF join (≈2500 distinct days).
		query.NewBuilder("udf-t02").
			Rel("o", "orders").Rel("l", "lineitem").Rel("c", "customer").
			Join(expr.ExtractDate("o.o_orderdate"), expr.ExtractDate("l.l_shipdate")).
			Join(hm("o.o_custkey"), hm("c.c_custkey")).
			Select(expr.Prefix("c.c_mktsegment", 4), value.String("AUTO")).
			MustBuild(),
		// 3: supplier–nation–lineitem through hashes.
		query.NewBuilder("udf-t03").
			Rel("s", "supplier").Rel("l", "lineitem").Rel("n", "nation").
			Join(hm("s.s_suppkey"), hm("l.l_suppkey")).
			Join(hm("s.s_nationkey"), hm("n.n_nationkey")).
			Select(expr.Lower("n.n_name"), value.String("germany")).
			MustBuild(),
		// 4: multi-table UDF over (orders, lineitem) against supplier.
		query.NewBuilder("udf-t04").
			Rel("o", "orders").Rel("l", "lineitem").Rel("s", "supplier").
			Join(hm("o.o_orderkey"), hm("l.l_orderkey")).
			Join(expr.SumMod("o.o_custkey", "l.l_quantity", 997), expr.HashMod("s.s_suppkey", 997)).
			MustBuild(),
		// 5: part–lineitem–orders with a year filter through YearOf.
		query.NewBuilder("udf-t05").
			Rel("p", "part").Rel("l", "lineitem").Rel("o", "orders").
			Join(hm("p.p_partkey"), hm("l.l_partkey")).
			Join(hm("l.l_orderkey"), hm("o.o_orderkey")).
			Select(expr.YearOf("o.o_orderdate"), value.Int(1995)).
			MustBuild(),
		// 6: two-sided ConcatKey (multi-table both sides of the schema cut).
		query.NewBuilder("udf-t06").
			Rel("ps", "partsupp").Rel("p", "part").Rel("s", "supplier").
			Join(hm("ps.ps_partkey"), hm("p.p_partkey")).
			Join(expr.SumMod("ps.ps_suppkey", "p.p_size", 499), expr.HashMod("s.s_suppkey", 499)).
			MustBuild(),
		// 7: customer–nation–orders star with brand-ish filters.
		query.NewBuilder("udf-t07").
			Rel("c", "customer").Rel("n", "nation").Rel("o", "orders").
			Join(hm("c.c_nationkey"), hm("n.n_nationkey")).
			Join(hm("c.c_custkey"), hm("o.o_custkey")).
			Select(expr.Prefix("n.n_name", 3), value.String("UNI")).
			Select(expr.Prefix("o.o_orderpriority", 1), value.String("1")).
			MustBuild(),
		// 8: four-table chain with a fat date join in the middle.
		query.NewBuilder("udf-t08").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").Rel("s", "supplier").
			Join(hm("c.c_custkey"), hm("o.o_custkey")).
			Join(expr.ExtractDate("o.o_orderdate"), expr.ExtractDate("l.l_shipdate")).
			Join(hm("l.l_suppkey"), hm("s.s_suppkey")).
			Select(expr.Lower("l.l_returnflag"), value.String("r")).
			MustBuild(),
		// 9: partsupp chain with hashed-mod bucket join (lossy, fat).
		query.NewBuilder("udf-t09").
			Rel("ps", "partsupp").Rel("l", "lineitem").Rel("p", "part").
			Join(expr.HashMod("ps.ps_partkey", 2048), expr.HashMod("l.l_partkey", 2048)).
			Join(hm("p.p_partkey"), hm("ps.ps_partkey")).
			Select(expr.Prefix("p.p_brand", 7), value.String("Brand#2")).
			MustBuild(),
		// 10: five tables, mixed fat and selective UDF joins.
		query.NewBuilder("udf-t10").
			Rel("c", "customer").Rel("o", "orders").Rel("l", "lineitem").
			Rel("s", "supplier").Rel("n", "nation").
			Join(hm("c.c_custkey"), hm("o.o_custkey")).
			Join(hm("o.o_orderkey"), hm("l.l_orderkey")).
			Join(hm("l.l_suppkey"), hm("s.s_suppkey")).
			Join(hm("s.s_nationkey"), hm("n.n_nationkey")).
			Select(expr.Lower("n.n_name"), value.String("france")).
			MustBuild(),
	}
}
