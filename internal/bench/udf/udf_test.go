package udf

import (
	"errors"
	"testing"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/opt"
	"monsoon/internal/stats"
)

func TestSuiteShape(t *testing.T) {
	s := Generate(Config{Titles: 150, ScaleFactor: 0.001, Seed: 1})
	if len(s.IMDB) != 15 || len(s.TPCH) != 10 {
		t.Fatalf("suite = %d + %d queries, want 15 + 10", len(s.IMDB), len(s.TPCH))
	}
	all := s.All()
	if len(all) != 25 {
		t.Fatalf("All() = %d", len(all))
	}
	multiTable := 0
	for _, qc := range all {
		if err := qc.Query.Validate(); err != nil {
			t.Errorf("%s: %v", qc.Query.Name, err)
		}
		for _, term := range qc.Query.Terms() {
			if term.Aliases.Size() > 1 {
				multiTable++
				break
			}
		}
		// Every join term must be a genuine (non-identity) UDF.
		for _, p := range qc.Query.Joins {
			if p.L.Fn.Name == "id" || p.R.Fn.Name == "id" {
				t.Errorf("%s: identity join term %s — the UDF benchmark must obscure all predicates",
					qc.Query.Name, p)
			}
		}
	}
	if multiTable < 3 {
		t.Errorf("only %d queries with multi-table UDFs, want >= 3", multiTable)
	}
}

func TestQueriesProduceResults(t *testing.T) {
	// The extract/format joins must actually match keys — a broken pattern
	// would make every query trivially empty and the benchmark meaningless.
	s := Generate(Config{Titles: 200, ScaleFactor: 0.001, Seed: 2})
	nonEmpty := 0
	aborted := 0
	for _, qc := range s.All() {
		eng := engine.New(qc.Cat)
		st := stats.New()
		eng.SeedBaseStats(qc.Query, st)
		dv := &cost.Deriver{Q: qc.Query, St: st, Miss: cost.DefaultMiss(0.1)}
		tree, err := opt.BestPlan(qc.Query, dv)
		if err != nil {
			t.Fatalf("%s: plan: %v", qc.Query.Name, err)
		}
		rel, _, err := eng.ExecTree(qc.Query, tree, &engine.Budget{MaxTuples: 3e6})
		if err != nil {
			if errors.Is(err, engine.ErrBudget) {
				aborted++
				continue
			}
			t.Fatalf("%s: exec: %v", qc.Query.Name, err)
		}
		if rel.Count() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Errorf("only %d of 25 UDF queries return rows; joins are likely broken", nonEmpty)
	}
	if aborted > 12 {
		t.Errorf("%d of 25 aborted at this scale; benchmark unusable", aborted)
	}
}

func TestExtractFormatRoundTrip(t *testing.T) {
	s := Generate(Config{Titles: 50, ScaleFactor: 0.001, Seed: 3})
	title := s.IMDBCat.MustGet("title")
	noteIdx := title.Schema.MustLookup("title.note")
	idIdx := title.Schema.MustLookup("title.id")
	ex := extractTitleKey("title.note")
	fm := formatMovieID("title.id")
	bx, ok1 := ex.Bind(title.Schema)
	bf, ok2 := fm.Bind(title.Schema)
	if !ok1 || !ok2 {
		t.Fatal("bindings failed")
	}
	for _, row := range title.Rows[:20] {
		if !bx.Eval(row).Equal(bf.Eval(row)) {
			t.Fatalf("extract/format mismatch: note=%v id=%v -> %v vs %v",
				row[noteIdx], row[idIdx], bx.Eval(row), bf.Eval(row))
		}
	}
}
