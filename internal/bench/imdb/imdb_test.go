package imdb

import (
	"errors"
	"testing"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/opt"
	"monsoon/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	cat := Generate(Config{Titles: 500, Seed: 1})
	for _, name := range []string{"title", "name", "cast_info", "movie_companies",
		"company_name", "company_type", "movie_info", "info_type", "movie_keyword", "keyword"} {
		if _, ok := cat.Get(name); !ok {
			t.Fatalf("missing table %q", name)
		}
	}
	if cat.MustGet("title").Count() != 500 {
		t.Errorf("titles = %d", cat.MustGet("title").Count())
	}
	if cat.MustGet("cast_info").Count() != 2000 {
		t.Errorf("cast_info = %d, want 4x titles", cat.MustGet("cast_info").Count())
	}
}

func TestGenerateSkewAndCorrelation(t *testing.T) {
	cat := Generate(Config{Titles: 2000, Seed: 2})
	// Fan-out skew: the hottest movie_id in cast_info should far exceed the
	// mean (6 rows/title).
	ci := cat.MustGet("cast_info")
	mi := ci.Schema.MustLookup("cast_info.movie_id")
	h := map[int64]int{}
	for _, row := range ci.Rows {
		h[row[mi].AsInt()]++
	}
	max := 0
	for _, c := range h {
		if c > max {
			max = c
		}
	}
	if max < 60 {
		t.Errorf("cast fan-out not skewed: hottest title has %d rows", max)
	}
	// Correlation: episodes (kind 4) almost never have budget rows (type 1).
	title := cat.MustGet("title")
	kindOf := map[int64]int64{}
	ti := title.Schema.MustLookup("title.id")
	ki := title.Schema.MustLookup("title.kind_id")
	for _, row := range title.Rows {
		kindOf[row[ti].AsInt()] = row[ki].AsInt()
	}
	info := cat.MustGet("movie_info")
	mIdx := info.Schema.MustLookup("movie_info.movie_id")
	tIdx := info.Schema.MustLookup("movie_info.info_type_id")
	episodeRows, episodeBudgets := 0, 0
	for _, row := range info.Rows {
		if kindOf[row[mIdx].AsInt()] == 4 {
			episodeRows++
			if row[tIdx].AsInt() == 1 {
				episodeBudgets++
			}
		}
	}
	if episodeRows > 100 && float64(episodeBudgets)/float64(episodeRows) > 0.05 {
		t.Errorf("episode/budget correlation missing: %d/%d", episodeBudgets, episodeRows)
	}
}

func TestBootstrapScaling(t *testing.T) {
	small := Generate(Config{Titles: 300, Seed: 3})
	big := Generate(Config{Titles: 300, Seed: 3, Bootstrap: 5})
	if big.MustGet("cast_info").Count() != 5*small.MustGet("cast_info").Count() {
		t.Errorf("bootstrap 5x failed: %d vs %d",
			big.MustGet("cast_info").Count(), small.MustGet("cast_info").Count())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Titles: 200, Seed: 9})
	b := Generate(Config{Titles: 200, Seed: 9})
	ra, rb := a.MustGet("movie_info").Rows, b.MustGet("movie_info").Rows
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic sizes")
	}
	for i := range ra[:50] {
		for j := range ra[i] {
			if !ra[i][j].Equal(rb[i][j]) {
				t.Fatal("nondeterministic content")
			}
		}
	}
}

func TestQueriesShape(t *testing.T) {
	qs := Queries(60, 42)
	if len(qs) != 60 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if q.Aliases().Size() < 3 || q.Aliases().Size() > 9 {
			t.Errorf("%s: %d tables out of range", q.Name, q.Aliases().Size())
		}
		seen[q.Name] = true
	}
	if len(seen) != 60 {
		t.Errorf("duplicate query names: %d distinct", len(seen))
	}
	// Determinism.
	qs2 := Queries(60, 42)
	for i := range qs {
		if qs[i].Aliases().Key() != qs2[i].Aliases().Key() {
			t.Fatal("query generation nondeterministic")
		}
	}
}

func TestQueriesExecutable(t *testing.T) {
	// Star joins over skewed fan-outs can legitimately explode under a naive
	// plan — that is the benchmark's whole point — so a budget abort counts
	// as acceptable here; planner or binding errors do not.
	cat := Generate(Config{Titles: 150, Seed: 5})
	aborted := 0
	for _, q := range Queries(20, 7) {
		eng := engine.New(cat)
		st := stats.New()
		eng.SeedBaseStats(q, st)
		dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
		tree, err := opt.BestPlan(q, dv)
		if err != nil {
			t.Fatalf("%s: plan: %v", q.Name, err)
		}
		if _, _, err := eng.ExecTree(q, tree, &engine.Budget{MaxTuples: 1e6}); err != nil {
			if errors.Is(err, engine.ErrBudget) {
				aborted++
				continue
			}
			t.Errorf("%s: exec: %v", q.Name, err)
		}
	}
	if aborted == 20 {
		t.Error("every query aborted; the scale is unusable")
	}
}
