// Package imdb generates a synthetic IMDB-shaped database and a
// Join-Order-Benchmark-like query suite. The real JOB's value is that IMDB
// data is full of correlations and heavy skew that break uniformity-based
// cardinality estimation; this generator plants the same pathologies: Zipfian
// fan-out (few movies carry most cast entries), correlated columns (a
// title's kind biases its companies, info types, and production year), and
// highly selective dictionary filters. The paper scales IMDB 5× by bootstrap
// resampling; Config.Bootstrap reproduces that.
package imdb

import (
	"fmt"

	"monsoon/internal/randx"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Config parameterizes generation.
type Config struct {
	// Titles is the number of movies; every other table scales from it.
	// The paper's database has ~2.5M titles; the in-memory experiments run
	// with 2k–20k.
	Titles int
	// Bootstrap, when >1, resamples every table to Bootstrap× its size with
	// replacement (the paper's 5× methodology).
	Bootstrap int
	// Seed makes generation reproducible.
	Seed int64
}

var (
	kinds        = []string{"movie", "tv series", "video", "episode"}
	genders      = []string{"m", "f"}
	countries    = []string{"[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[it]", "[ca]"}
	companyKinds = []string{"production companies", "distributors", "special effects", "misc"}
	infoTypes    = []string{"budget", "genres", "rating", "runtime", "votes", "release dates", "languages", "color info"}
	genres       = []string{"Drama", "Comedy", "Action", "Thriller", "Horror", "Documentary", "Romance", "Sci-Fi"}
	keywordPool  = []string{"murder", "love", "revenge", "space", "war", "family", "robot", "heist",
		"vampire", "sequel", "based-on-novel", "superhero", "zombie", "time-travel", "noir", "sports"}
)

func col(t, n string, k value.Kind) table.Column { return table.Column{Table: t, Name: n, Kind: k} }

// Generate builds the ten-table proxy schema.
func Generate(cfg Config) *table.Catalog {
	if cfg.Titles <= 0 {
		cfg.Titles = 2000
	}
	rng := randx.New(randx.Derive(cfg.Seed, "imdb"))
	cat := table.NewCatalog()
	nTitles := cfg.Titles
	nNames := nTitles * 2
	nCompanies := maxInt(20, nTitles/10)
	nKeywords := len(keywordPool)

	// kind_type-ish enum is inlined into title.kind_id (1..4).
	// info_type dictionary.
	itb := table.NewBuilder("info_type", table.NewSchema(
		col("info_type", "id", value.KindInt),
		col("info_type", "info", value.KindString),
	))
	for i, s := range infoTypes {
		itb.Add(value.Int(int64(i+1)), value.String(s))
	}
	cat.Put(itb.Build())

	ctb := table.NewBuilder("company_type", table.NewSchema(
		col("company_type", "id", value.KindInt),
		col("company_type", "kind", value.KindString),
	))
	for i, s := range companyKinds {
		ctb.Add(value.Int(int64(i+1)), value.String(s))
	}
	cat.Put(ctb.Build())

	kwb := table.NewBuilder("keyword", table.NewSchema(
		col("keyword", "id", value.KindInt),
		col("keyword", "keyword", value.KindString),
	))
	for i, s := range keywordPool {
		kwb.Add(value.Int(int64(i+1)), value.String(s))
	}
	cat.Put(kwb.Build())

	// title: kind and year are correlated (episodes cluster in recent years,
	// movies spread out); kind is heavily skewed toward "movie".
	kindZipf := randx.NewZipf(int64(len(kinds)), 1.5)
	// The note column embeds the title key in free text, for the UDF
	// benchmark's extract-and-join queries (§1's docNameAndText pattern).
	tb := table.NewBuilder("title", table.NewSchema(
		col("title", "id", value.KindInt),
		col("title", "title", value.KindString),
		col("title", "kind_id", value.KindInt),
		col("title", "production_year", value.KindInt),
		col("title", "note", value.KindString),
	))
	titleKind := make([]int64, nTitles+1)
	for i := 1; i <= nTitles; i++ {
		kind := kindZipf.Draw(rng)
		titleKind[i] = kind
		var year int64
		if kind == 4 { // episodes: recent, tight range
			year = 2005 + rng.Int63n(15)
		} else {
			year = 1930 + rng.Int63n(90)
		}
		tb.Add(value.Int(int64(i)),
			value.String(fmt.Sprintf("T%06d", i)),
			value.Int(kind),
			value.Int(year),
			value.String(fmt.Sprintf(`<doc id="T%06d" url="http://movies/%d" year="%d"/>`, i, i, year)))
	}
	cat.Put(tb.Build())

	// name.
	nb := table.NewBuilder("name", table.NewSchema(
		col("name", "id", value.KindInt),
		col("name", "name", value.KindString),
		col("name", "gender", value.KindString),
	))
	for i := 1; i <= nNames; i++ {
		nb.Add(value.Int(int64(i)),
			value.String(fmt.Sprintf("Name %05d", i)),
			value.String(genders[rng.Intn(2)]))
	}
	cat.Put(nb.Build())

	// company_name: country skewed toward [us].
	countryZipf := randx.NewZipf(int64(len(countries)), 1.2)
	cnb := table.NewBuilder("company_name", table.NewSchema(
		col("company_name", "id", value.KindInt),
		col("company_name", "name", value.KindString),
		col("company_name", "country_code", value.KindString),
	))
	for i := 1; i <= nCompanies; i++ {
		cnb.Add(value.Int(int64(i)),
			value.String(fmt.Sprintf("Company %04d", i)),
			value.String(countries[countryZipf.Draw(rng)-1]))
	}
	cat.Put(cnb.Build())

	// cast_info: Zipf fan-out — hot titles accumulate most cast rows.
	hotTitle := randx.NewZipf(int64(nTitles), 0.75)
	hotName := randx.NewZipf(int64(nNames), 0.6)
	cib := table.NewBuilder("cast_info", table.NewSchema(
		col("cast_info", "movie_id", value.KindInt),
		col("cast_info", "person_id", value.KindInt),
		col("cast_info", "role_id", value.KindInt),
	))
	for i := 0; i < nTitles*4; i++ {
		cib.Add(value.Int(hotTitle.Draw(rng)),
			value.Int(hotName.Draw(rng)),
			value.Int(1+rng.Int63n(10)))
	}
	cat.Put(cib.Build())

	// movie_companies: company type correlated with title kind — episodes
	// are almost always "distributors".
	mcb := table.NewBuilder("movie_companies", table.NewSchema(
		col("movie_companies", "movie_id", value.KindInt),
		col("movie_companies", "company_id", value.KindInt),
		col("movie_companies", "company_type_id", value.KindInt),
	))
	hotCompany := randx.NewZipf(int64(nCompanies), 1.0)
	for i := 0; i < nTitles*2; i++ {
		mid := hotTitle.Draw(rng)
		ctID := int64(1 + rng.Intn(len(companyKinds)))
		if titleKind[mid] == 4 && rng.Float64() < 0.9 {
			ctID = 2 // distributors
		}
		mcb.Add(value.Int(mid), value.Int(hotCompany.Draw(rng)), value.Int(ctID))
	}
	cat.Put(mcb.Build())

	// movie_info: info type correlated with kind (episodes rarely carry
	// budgets); the info payload for "genres" is a skewed genre dictionary.
	genreZipf := randx.NewZipf(int64(len(genres)), 1.1)
	mib := table.NewBuilder("movie_info", table.NewSchema(
		col("movie_info", "movie_id", value.KindInt),
		col("movie_info", "info_type_id", value.KindInt),
		col("movie_info", "info", value.KindString),
	))
	for i := 0; i < nTitles*3; i++ {
		mid := hotTitle.Draw(rng)
		it := int64(1 + rng.Intn(len(infoTypes)))
		if titleKind[mid] == 4 && it == 1 && rng.Float64() < 0.95 {
			it = 3 // episodes get ratings, not budgets
		}
		var info string
		switch it {
		case 2:
			info = genres[genreZipf.Draw(rng)-1]
		case 3:
			info = fmt.Sprintf("%.1f", 1+rng.Float64()*9)
		default:
			info = fmt.Sprintf("v%d", rng.Intn(1000))
		}
		mib.Add(value.Int(mid), value.Int(it), value.String(info))
	}
	cat.Put(mib.Build())

	// movie_keyword.
	mkb := table.NewBuilder("movie_keyword", table.NewSchema(
		col("movie_keyword", "movie_id", value.KindInt),
		col("movie_keyword", "keyword_id", value.KindInt),
	))
	kwZipf := randx.NewZipf(int64(nKeywords), 1.0)
	for i := 0; i < nTitles*2; i++ {
		mkb.Add(value.Int(hotTitle.Draw(rng)), value.Int(kwZipf.Draw(rng)))
	}
	cat.Put(mkb.Build())

	if cfg.Bootstrap > 1 {
		brng := randx.New(randx.Derive(cfg.Seed, "bootstrap"))
		for _, name := range cat.Names() {
			cat.Put(cat.MustGet(name).Bootstrap(cfg.Bootstrap, brng))
		}
	}
	return cat
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
