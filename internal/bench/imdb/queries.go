package imdb

import (
	"fmt"

	"monsoon/internal/expr"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/value"
)

// branch describes one satellite of the star-shaped IMDB schema: the fact
// table joining title, and optionally its dictionary table with a selective
// filter.
type branch struct {
	alias, tbl      string // fact table joining title.id on fkCol
	fkCol           string
	dictAlias, dict string // dictionary table (may be empty)
	dictFK, dictPK  string
	dictFilters     []filter
	factFilters     []filter
}

type filter struct {
	col string
	val value.Value
}

func branches() []branch {
	return []branch{
		{
			alias: "ci", tbl: "cast_info", fkCol: "movie_id",
			dictAlias: "na", dict: "name", dictFK: "person_id", dictPK: "id",
			dictFilters: []filter{{"gender", value.String("f")}, {"gender", value.String("m")}},
			factFilters: []filter{{"role_id", value.Int(1)}, {"role_id", value.Int(2)}},
		},
		{
			alias: "mc", tbl: "movie_companies", fkCol: "movie_id",
			dictAlias: "cn", dict: "company_name", dictFK: "company_id", dictPK: "id",
			dictFilters: []filter{
				{"country_code", value.String("[de]")},
				{"country_code", value.String("[us]")},
				{"country_code", value.String("[jp]")},
			},
		},
		{
			alias: "mc2", tbl: "movie_companies", fkCol: "movie_id",
			dictAlias: "ct", dict: "company_type", dictFK: "company_type_id", dictPK: "id",
			dictFilters: []filter{
				{"kind", value.String("production companies")},
				{"kind", value.String("distributors")},
			},
		},
		{
			alias: "mi", tbl: "movie_info", fkCol: "movie_id",
			dictAlias: "it", dict: "info_type", dictFK: "info_type_id", dictPK: "id",
			dictFilters: []filter{
				{"info", value.String("budget")},
				{"info", value.String("genres")},
				{"info", value.String("rating")},
			},
			factFilters: []filter{{"info", value.String("Drama")}, {"info", value.String("Horror")}},
		},
		{
			alias: "mk", tbl: "movie_keyword", fkCol: "movie_id",
			dictAlias: "kw", dict: "keyword", dictFK: "keyword_id", dictPK: "id",
			dictFilters: []filter{
				{"keyword", value.String("murder")},
				{"keyword", value.String("sequel")},
				{"keyword", value.String("time-travel")},
			},
		},
	}
}

// Queries generates n JOB-like queries deterministically from the seed: each
// is a connected star around title with 1–4 branches, optional dictionary
// hops, and selective filters drawn from the dictionaries above — the same
// shape (3–8 tables, chain+star mix, correlated filters) as the real Join
// Order Benchmark suite.
func Queries(n int, seed int64) []*query.Query {
	rng := randx.New(randx.Derive(seed, "imdb-queries"))
	id := expr.Identity
	var out []*query.Query
	for qi := 0; qi < n; qi++ {
		bs := branches()
		// Choose 1–4 distinct branches.
		order := rng.Perm(len(bs))
		k := 1 + rng.Intn(3)
		if k > len(order) {
			k = len(order)
		}
		b := query.NewBuilder(fmt.Sprintf("imdb-q%02d", qi+1))
		b.Rel("t", "title")
		tables := 1
		filters := 0
		for _, bi := range order[:k] {
			br := bs[bi]
			b.Rel(br.alias, br.tbl)
			b.Join(id("t.id"), id(br.alias+"."+br.fkCol))
			tables++
			// Fact-side filter sometimes.
			if len(br.factFilters) > 0 && rng.Float64() < 0.4 {
				f := br.factFilters[rng.Intn(len(br.factFilters))]
				b.Select(id(br.alias+"."+f.col), f.val)
				filters++
			}
			// Dictionary hop with filter most of the time.
			if br.dict != "" && rng.Float64() < 0.75 {
				b.Rel(br.dictAlias, br.dict)
				b.Join(id(br.alias+"."+br.dictFK), id(br.dictAlias+"."+br.dictPK))
				tables++
				if len(br.dictFilters) > 0 {
					f := br.dictFilters[rng.Intn(len(br.dictFilters))]
					b.Select(id(br.dictAlias+"."+f.col), f.val)
					filters++
				}
			}
		}
		// Title-side filters.
		if rng.Float64() < 0.5 {
			b.Select(id("t.kind_id"), value.Int(int64(1+rng.Intn(4))))
			filters++
		}
		if rng.Float64() < 0.3 {
			b.Select(id("t.production_year"), value.Int(int64(1990+rng.Intn(30))))
			filters++
		}
		q, err := b.Build()
		if err != nil {
			panic(err) // generator bug
		}
		if q.Aliases().Size() < 3 {
			// Too small for a join-ordering benchmark; retry deterministic.
			qi--
			continue
		}
		out = append(out, q)
	}
	return out
}
