package stats

import (
	"strings"
	"testing"
)

func TestCounts(t *testing.T) {
	s := New()
	if _, ok := s.Count("R"); ok {
		t.Error("empty store should miss")
	}
	s.SetCount("R", 1e6)
	if c, ok := s.Count("R"); !ok || c != 1e6 {
		t.Errorf("Count = %v,%v", c, ok)
	}
	if s.CountEntries() != 1 {
		t.Error("CountEntries wrong")
	}
}

func TestDistinctResolutionOrder(t *testing.T) {
	s := New()
	if _, ok := s.Distinct(0, "R", "S"); ok {
		t.Error("should miss initially")
	}
	s.SetAssumed(0, "R", "S", 100)
	if d, ok := s.Distinct(0, "R", "S"); !ok || d != 100 {
		t.Errorf("assumed lookup = %v,%v", d, ok)
	}
	// Assumed is partner-specific.
	if _, ok := s.Distinct(0, "R", "T"); ok {
		t.Error("assumed stat must not apply to other partners")
	}
	// Measured overrides assumed for every partner.
	s.SetMeasured(0, "R", 777)
	if d, _ := s.Distinct(0, "R", "S"); d != 777 {
		t.Error("measured must win over assumed")
	}
	if d, ok := s.Distinct(0, "R", "T"); !ok || d != 777 {
		t.Error("measured must apply to all partners")
	}
	if !s.HasMeasured(0, "R") || s.HasMeasured(1, "R") || s.HasMeasured(0, "S") {
		t.Error("HasMeasured wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.SetCount("R", 5)
	s.SetMeasured(0, "R", 2)
	s.SetAssumed(1, "R", "S", 3)
	c := s.Clone()
	c.SetCount("R", 99)
	c.SetMeasured(0, "R", 99)
	c.SetAssumed(1, "R", "S", 99)
	c.SetCount("NEW", 1)
	if v, _ := s.Count("R"); v != 5 {
		t.Error("clone mutated original count")
	}
	if v, _ := s.Measured(0, "R"); v != 2 {
		t.Error("clone mutated original measured")
	}
	if v, _ := s.Distinct(1, "R", "S"); v != 3 {
		t.Error("clone mutated original assumed")
	}
	if _, ok := s.Count("NEW"); ok {
		t.Error("clone additions leaked to original")
	}
}

func TestDropAssumed(t *testing.T) {
	s := New()
	s.SetAssumed(0, "R", "S", 10)
	s.SetMeasured(0, "R", 20)
	s.DropAssumed()
	if s.AssumedEntries() != 0 {
		t.Error("DropAssumed left entries")
	}
	if d, ok := s.Distinct(0, "R", "S"); !ok || d != 20 {
		t.Error("measured entries must survive DropAssumed")
	}
}

func TestEntriesCounters(t *testing.T) {
	s := New()
	s.SetMeasured(0, "A", 1)
	s.SetMeasured(1, "A", 1)
	s.SetAssumed(0, "A", "B", 1)
	if s.MeasuredEntries() != 2 || s.AssumedEntries() != 1 {
		t.Errorf("entries = %d/%d", s.MeasuredEntries(), s.AssumedEntries())
	}
}

func TestBucketSignature(t *testing.T) {
	s := New()
	s.SetCount("R", 1000)
	s.SetMeasured(0, "R", 500)
	s.SetAssumed(1, "S", "R", 7)
	sig := s.BucketSignature()
	if sig != s.BucketSignature() {
		t.Error("signature must be deterministic")
	}
	// Values in the same log2 bucket share a signature...
	t1 := New()
	t1.SetCount("R", 1000)
	t2 := New()
	t2.SetCount("R", 900)
	if t1.BucketSignature() != t2.BucketSignature() {
		t.Error("values in one log2 bucket must share signatures")
	}
	// ...values in very different buckets split.
	t3 := New()
	t3.SetCount("R", 1e6)
	if t1.BucketSignature() == t3.BucketSignature() {
		t.Error("distant values must split signatures")
	}
	// Zero and negative magnitudes are representable.
	z := New()
	z.SetCount("E", 0)
	if z.BucketSignature() == "" || !strings.Contains(z.BucketSignature(), "-1") {
		t.Errorf("zero count signature wrong: %q", z.BucketSignature())
	}
}

func TestStringDeterministic(t *testing.T) {
	s := New()
	s.SetCount("R", 10)
	s.SetCount("S", 20)
	s.SetMeasured(0, "R", 5)
	s.SetAssumed(1, "S", "R", 7)
	a, b := s.String(), s.String()
	if a != b {
		t.Error("String must be deterministic")
	}
	for _, want := range []string{"c(R)=10", "c(S)=20", "d[t0](R)=5", "d~[t1](S|R)=7"} {
		if !strings.Contains(a, want) {
			t.Errorf("String missing %q in:\n%s", want, a)
		}
	}
}

// TestBucketSignatureDelimiterCollision pins the %q-quoting of expression
// keys. Keys are comma-joined alias sets, so under raw interpolation the
// two stores below rendered the identical signature "c:A:3,c:B:3" — one from
// two entries, the other from a single key containing the line and field
// delimiters — and MCTS wrongly merged materially different chance-node
// outcomes into one subtree.
func TestBucketSignatureDelimiterCollision(t *testing.T) {
	two := New()
	two.SetCount("A", 10)
	two.SetCount("B", 10)
	spliced := New()
	spliced.SetCount(`A":3,c:"B`, 10)
	if two.BucketSignature() == spliced.BucketSignature() {
		t.Errorf("delimiter-containing key collides:\n%q\n%q",
			two.BucketSignature(), spliced.BucketSignature())
	}
	// The historical raw-format collision, spelled out: the spliced key
	// embeds the exact bytes the old renderer used as structure.
	old := New()
	old.SetCount("A:3,c:B", 10)
	if two.BucketSignature() == old.BucketSignature() {
		t.Errorf("legacy collision pair still collides: %q", two.BucketSignature())
	}
	// Quoting keeps distinct measured/assumed keys distinct too.
	m1 := New()
	m1.SetMeasured(0, `R"S`, 100)
	m2 := New()
	m2.SetMeasured(0, `R\"S`, 100)
	if m1.BucketSignature() == m2.BucketSignature() {
		t.Error("escaped-quote keys collide in measured entries")
	}
	a1 := New()
	a1.SetAssumed(1, "R,S", "T", 50)
	a2 := New()
	a2.SetAssumed(1, "R", "S,T", 50)
	if a1.BucketSignature() == a2.BucketSignature() {
		t.Error("expr/partner boundary is ambiguous in assumed entries")
	}
}

// TestBucketSignatureCloneStable is a plan-cache key-soundness invariant:
// cloning a store — what every MCTS rollout and every estimate freeze does —
// must not perturb the signature, or cache keys computed before and after a
// planning pass would diverge on identical statistics.
func TestBucketSignatureCloneStable(t *testing.T) {
	s := New()
	s.SetCount("R", 1000)
	s.SetCount("R+S", 31)
	s.SetMeasured(0, "R", 500)
	s.SetMeasured(2, "R+S", 12)
	s.SetAssumed(1, "S", "R", 7)
	c := s.Clone()
	if s.BucketSignature() != c.BucketSignature() {
		t.Errorf("clone signature diverged:\n%q\n%q", s.BucketSignature(), c.BucketSignature())
	}
	// Mutating the clone afterwards must not leak back.
	c.SetCount("R", 1e6)
	if s.BucketSignature() == c.BucketSignature() {
		t.Error("mutated clone must split from the original")
	}
	if got := s.Clone().BucketSignature(); got != s.BucketSignature() {
		t.Errorf("original drifted after clone mutation: %q", got)
	}
}

// TestBucketSignatureHardeningBoundary pins the plan cache's invalidation
// mechanism: hardening a count across a log₂ bucket boundary changes the
// signature (so stale memoized plans become unreachable), while hardening
// within a bucket leaves it unchanged (so bucket-equivalent worlds keep
// sharing plans). Bucket edges sit at v+1 = 2^k: 1000 and 1023 land in
// buckets 9 and 10, while 600 shares bucket 9 with 1000.
func TestBucketSignatureHardeningBoundary(t *testing.T) {
	base := New()
	base.SetCount("R+S", 1000)
	within := New()
	within.SetCount("R+S", 600)
	if base.BucketSignature() != within.BucketSignature() {
		t.Errorf("within-bucket hardening must keep the key: %q vs %q",
			base.BucketSignature(), within.BucketSignature())
	}
	across := New()
	across.SetCount("R+S", 1023)
	if base.BucketSignature() == across.BucketSignature() {
		t.Error("hardening across a log2 boundary must change the key")
	}
	// The same holds for measured distinct counts, the other hardened kind.
	mBase, mWithin, mAcross := New(), New(), New()
	mBase.SetMeasured(3, "R+S", 1000)
	mWithin.SetMeasured(3, "R+S", 600)
	mAcross.SetMeasured(3, "R+S", 1023)
	if mBase.BucketSignature() != mWithin.BucketSignature() {
		t.Error("within-bucket measured hardening must keep the key")
	}
	if mBase.BucketSignature() == mAcross.BucketSignature() {
		t.Error("boundary-crossing measured hardening must change the key")
	}
	// Hardening a previously unknown statistic (new entry) always changes
	// the key: an unknown and a known-but-bucket-equal world are different
	// planning states.
	grown := New()
	grown.SetCount("R+S", 1000)
	grown.SetMeasured(3, "R+S", 8)
	if grown.BucketSignature() == base.BucketSignature() {
		t.Error("newly hardened entries must change the key")
	}
}
