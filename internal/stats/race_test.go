package stats

import (
	"fmt"
	"sync"
	"testing"
)

// TestStoreConcurrentAccess hammers one Store from many goroutines across
// every public method — writers, readers, cloners, signature renderers, and
// cross-store merges — so `go test -race` proves the locking covers the whole
// surface. The assertions are deliberately weak (no torn values, clones
// usable); the race detector is the real oracle.
func TestStoreConcurrentAccess(t *testing.T) {
	s := New()
	for i := 0; i < 8; i++ {
		s.SetCount(fmt.Sprintf("seed%d", i), float64(100+i))
	}

	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			other := New()
			other.SetCount(fmt.Sprintf("other%d", g), float64(g))
			other.SetMeasured(g, "m", float64(g))
			for i := 0; i < rounds; i++ {
				expr := fmt.Sprintf("e%d", i%16)
				switch i % 8 {
				case 0:
					s.SetCount(expr, float64(i))
				case 1:
					s.SetMeasured(g, expr, float64(i))
				case 2:
					s.SetAssumed(g, expr, "p", float64(i))
				case 3:
					if _, ok := s.Count("seed0"); !ok {
						t.Error("seed0 vanished")
						return
					}
					s.Measured(g, expr)
					s.Distinct(g, expr, "p")
					s.HasMeasured(g, expr)
				case 4:
					c := s.Clone()
					if c.CountEntries() < 8 {
						t.Errorf("clone lost seed counts: %d entries", c.CountEntries())
						return
					}
					// The clone is private: mutating it must be safe without
					// coordination even while the source is being written.
					c.SetCount("clone-local", 1)
				case 5:
					if sig := s.BucketSignature(); sig == "" {
						t.Error("empty signature from non-empty store")
						return
					}
					_ = s.String()
					s.CountEntries()
					s.MeasuredEntries()
					s.AssumedEntries()
				case 6:
					s.MergeFrom(other)
					other.MergeFrom(s) // reversed order: snapshotting precludes deadlock
				case 7:
					s.DropAssumed()
				}
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < 8; i++ {
		want := float64(100 + i)
		if got, ok := s.Count(fmt.Sprintf("seed%d", i)); !ok || got != want {
			t.Errorf("seed%d = %v,%v after hammering, want %v,true", i, got, ok, want)
		}
	}
}

// TestMergeFromSemantics pins what MergeFrom moves: counts and measured
// distinct values cross stores, assumed (prior-sampled) entries never do.
func TestMergeFromSemantics(t *testing.T) {
	dst := New()
	dst.SetCount("keep", 1)
	dst.SetCount("clash", 2)

	src := New()
	src.SetCount("clash", 20)
	src.SetCount("new", 30)
	src.SetMeasured(1, "expr", 40)
	src.SetAssumed(1, "expr", "p", 50)

	dst.MergeFrom(src)

	if got, _ := dst.Count("keep"); got != 1 {
		t.Errorf("keep = %v, want untouched 1", got)
	}
	if got, _ := dst.Count("clash"); got != 20 {
		t.Errorf("clash = %v, want overwritten 20", got)
	}
	if got, _ := dst.Count("new"); got != 30 {
		t.Errorf("new = %v, want 30", got)
	}
	if got, ok := dst.Measured(1, "expr"); !ok || got != 40 {
		t.Errorf("measured = %v,%v, want 40,true", got, ok)
	}
	if dst.AssumedEntries() != 0 {
		t.Errorf("assumed entries leaked across MergeFrom: %d", dst.AssumedEntries())
	}
}
