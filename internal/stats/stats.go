// Package stats implements the statistics store S of the MDP state (§4.1):
// object counts c(expr) for materialized or hypothesized expressions, and
// distinct-value counts d(term, expr | partner) for UDF terms. The store
// distinguishes *measured* statistics (hardened by real execution, valid for
// every partner) from *assumed* statistics (sampled from a prior during MCTS
// simulation, valid only for the partner expression they were sampled
// against — the paper's d(F, r|s) notation).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// RawKey returns the statistics key under which the *unfiltered* stored base
// table mounted at alias is counted. The plain alias key ("R") always denotes
// the RA expression over R with every applicable selection applied; the raw
// key ("raw:R") is the input size, which is assumed known up front (§4.1:
// "we assume that all input set sizes are available").
func RawKey(alias string) string { return "raw:" + alias }

// DKey identifies a measured distinct count: term ID over an expression.
type DKey struct {
	Term int
	Expr string
}

// CKey identifies an assumed (prior-sampled) distinct count, conditioned on
// the partner expression it would be joined with.
type CKey struct {
	Term    int
	Expr    string
	Partner string
}

// Store holds the statistics set S. It is a value-semantics-friendly
// container: Clone produces an independent copy for MCTS rollouts.
//
// Every method is safe for concurrent use: a daemon shares one seed store
// across sessions (each clones it, some merge hardened facts back), so all
// map access goes through an RWMutex. The lock is uncontended in the
// single-threaded paths MCTS rollouts take, so cloning-heavy planning keeps
// its performance profile.
type Store struct {
	mu       sync.RWMutex
	counts   map[string]float64
	measured map[DKey]float64
	assumed  map[CKey]float64
}

// New creates an empty store.
func New() *Store {
	return &Store{
		counts:   make(map[string]float64),
		measured: make(map[DKey]float64),
		assumed:  make(map[CKey]float64),
	}
}

// Clone returns a deep copy.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Store{
		counts:   make(map[string]float64, len(s.counts)),
		measured: make(map[DKey]float64, len(s.measured)),
		assumed:  make(map[CKey]float64, len(s.assumed)),
	}
	for k, v := range s.counts {
		c.counts[k] = v
	}
	for k, v := range s.measured {
		c.measured[k] = v
	}
	for k, v := range s.assumed {
		c.assumed[k] = v
	}
	return c
}

// MergeFrom copies src's hardened facts — expression counts and measured
// distinct values — into s, overwriting on key collision. Assumed (prior-
// sampled) entries are deliberately not merged: they are only valid for the
// run that sampled them. The daemon's opt-in statistics write-back uses this
// to fold what one query learned into the shared seed store. src is snapshotted
// under its read lock before s takes its write lock, so no lock ordering
// between two stores is ever needed.
func (s *Store) MergeFrom(src *Store) {
	src.mu.RLock()
	counts := make(map[string]float64, len(src.counts))
	for k, v := range src.counts {
		counts[k] = v
	}
	measured := make(map[DKey]float64, len(src.measured))
	for k, v := range src.measured {
		measured[k] = v
	}
	src.mu.RUnlock()
	s.mu.Lock()
	for k, v := range counts {
		s.counts[k] = v
	}
	for k, v := range measured {
		s.measured[k] = v
	}
	s.mu.Unlock()
}

// SetCount records c(expr).
func (s *Store) SetCount(expr string, c float64) {
	s.mu.Lock()
	s.counts[expr] = c
	s.mu.Unlock()
}

// Count looks up c(expr).
func (s *Store) Count(expr string) (float64, bool) {
	s.mu.RLock()
	c, ok := s.counts[expr]
	s.mu.RUnlock()
	return c, ok
}

// SetMeasured records a hardened distinct count for (term, expr), valid for
// any partner.
func (s *Store) SetMeasured(term int, expr string, d float64) {
	s.mu.Lock()
	s.measured[DKey{Term: term, Expr: expr}] = d
	s.mu.Unlock()
}

// Measured looks up a hardened distinct count.
func (s *Store) Measured(term int, expr string) (float64, bool) {
	s.mu.RLock()
	d, ok := s.measured[DKey{Term: term, Expr: expr}]
	s.mu.RUnlock()
	return d, ok
}

// SetAssumed records a prior-sampled distinct count for (term, expr) with
// respect to a partner expression.
func (s *Store) SetAssumed(term int, expr, partner string, d float64) {
	s.mu.Lock()
	s.assumed[CKey{Term: term, Expr: expr, Partner: partner}] = d
	s.mu.Unlock()
}

// Distinct resolves d(term, expr | partner): a measured value wins; otherwise
// an assumed value for this exact partner; otherwise a miss.
func (s *Store) Distinct(term int, expr, partner string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if d, ok := s.measured[DKey{Term: term, Expr: expr}]; ok {
		return d, true
	}
	if d, ok := s.assumed[CKey{Term: term, Expr: expr, Partner: partner}]; ok {
		return d, true
	}
	return 0, false
}

// HasMeasured reports whether a hardened distinct count exists for the term
// over the expression; Σ-usefulness checks rely on it.
func (s *Store) HasMeasured(term int, expr string) bool {
	s.mu.RLock()
	_, ok := s.measured[DKey{Term: term, Expr: expr}]
	s.mu.RUnlock()
	return ok
}

// CountEntries reports how many expression cardinalities are known.
func (s *Store) CountEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.counts)
}

// MeasuredEntries reports how many hardened distinct counts are known.
func (s *Store) MeasuredEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.measured)
}

// AssumedEntries reports how many prior-sampled distinct counts are held.
func (s *Store) AssumedEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.assumed)
}

// DropAssumed clears every prior-sampled entry. The Monsoon driver calls it
// after each real EXECUTE so the next planning round starts from hardened
// facts only.
func (s *Store) DropAssumed() {
	s.mu.Lock()
	s.assumed = make(map[CKey]float64)
	s.mu.Unlock()
}

// BucketSignature renders the store with every value bucketed by log2,
// deterministically ordered. MCTS uses it to key chance-node outcomes:
// sampled worlds with materially different statistics split into different
// subtrees, while near-identical ones (e.g. recurring spike-and-slab atoms)
// share one. Expression keys are %q-quoted: they are comma-joined alias sets,
// so raw interpolation would let two materially different stores collide on
// the line and field delimiters (e.g. a key containing ",c:" splicing into a
// neighboring line) and wrongly merge distinct chance-node outcomes.
func (s *Store) BucketSignature() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lines := make([]string, 0, len(s.counts)+len(s.measured)+len(s.assumed))
	for k, v := range s.counts {
		lines = append(lines, fmt.Sprintf("c:%q:%d", k, logBucket(v)))
	}
	for k, v := range s.measured {
		lines = append(lines, fmt.Sprintf("m:%d:%q:%d", k.Term, k.Expr, logBucket(v)))
	}
	for k, v := range s.assumed {
		lines = append(lines, fmt.Sprintf("a:%d:%q:%q:%d", k.Term, k.Expr, k.Partner, logBucket(v)))
	}
	sort.Strings(lines)
	return strings.Join(lines, ",")
}

func logBucket(x float64) int {
	if x <= 0 {
		return -1
	}
	return int(math.Floor(math.Log2(x + 1)))
}

// String renders the store content deterministically (sorted) for debugging
// and golden tests.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var lines []string
	for k, v := range s.counts {
		lines = append(lines, fmt.Sprintf("c(%s)=%.6g", k, v))
	}
	for k, v := range s.measured {
		lines = append(lines, fmt.Sprintf("d[t%d](%s)=%.6g", k.Term, k.Expr, v))
	}
	for k, v := range s.assumed {
		lines = append(lines, fmt.Sprintf("d~[t%d](%s|%s)=%.6g", k.Term, k.Expr, k.Partner, v))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
