package expr

import (
	"reflect"
	"testing"

	"monsoon/internal/table"
	"monsoon/internal/value"
)

func schema(cols ...string) *table.Schema {
	cs := make([]table.Column, len(cols))
	for i, c := range cols {
		dot := -1
		for j := 0; j < len(c); j++ {
			if c[j] == '.' {
				dot = j
				break
			}
		}
		cs[i] = table.Column{Table: c[:dot], Name: c[dot+1:], Kind: value.KindString}
	}
	return table.NewSchema(cs...)
}

func TestAliases(t *testing.T) {
	u := &UDF{Name: "f", Args: []string{"s.b", "r.a", "r.c"}}
	if got := u.Aliases(); !reflect.DeepEqual(got, []string{"r", "s"}) {
		t.Errorf("Aliases = %v", got)
	}
}

func TestAliasesUnqualifiedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unqualified arg must panic")
		}
	}()
	(&UDF{Name: "f", Args: []string{"noalias"}}).Aliases()
}

func TestBindAndEval(t *testing.T) {
	s := schema("r.a", "r.b")
	u := Identity("r.b")
	if !u.Evaluable(s) {
		t.Fatal("identity should be evaluable")
	}
	b, ok := u.Bind(s)
	if !ok {
		t.Fatal("bind failed")
	}
	row := table.Row{value.String("x"), value.String("y")}
	if got := b.Eval(row); got.AsString() != "y" {
		t.Errorf("Eval = %v", got)
	}
	if b.UDF() != u {
		t.Error("UDF() accessor wrong")
	}
}

func TestBindMissingAttr(t *testing.T) {
	s := schema("r.a")
	u := Identity("s.z")
	if u.Evaluable(s) {
		t.Error("should not be evaluable")
	}
	if _, ok := u.Bind(s); ok {
		t.Error("bind should fail")
	}
}

func TestRebase(t *testing.T) {
	u := ConcatKey("r.a", "s.b")
	r := u.Rebase(map[string]string{"r": "r1"})
	if !reflect.DeepEqual(r.Args, []string{"r1.a", "s.b"}) {
		t.Errorf("Rebase args = %v", r.Args)
	}
	// Original untouched.
	if u.Args[0] != "r.a" {
		t.Error("Rebase must not mutate the original")
	}
	if got := r.String(); got != "ConcatKey(r1.a,s.b)" {
		t.Errorf("String = %q", got)
	}
}

func eval1(u *UDF, v value.Value) value.Value {
	return u.Fn([]value.Value{v})
}

func TestExtractDate(t *testing.T) {
	u := ExtractDate("o.when")
	if got := eval1(u, value.String("2019-01-11 14:22:01")); got.AsString() != "2019-01-11" {
		t.Errorf("ExtractDate = %v", got)
	}
	if got := eval1(u, value.String("2019-01-11")); got.AsString() != "2019-01-11" {
		t.Errorf("ExtractDate without time = %v", got)
	}
}

func TestCity(t *testing.T) {
	u := City("s.ip")
	if got := eval1(u, value.String("10.42.1.7")); got.AsInt() != 10*256+42 {
		t.Errorf("City = %v", got)
	}
	if got := eval1(u, value.String("garbage")); !got.IsNull() {
		t.Errorf("City on garbage = %v, want NULL", got)
	}
	if got := eval1(u, value.String("a.b.c.d")); !got.IsNull() {
		t.Errorf("City on non-numeric = %v, want NULL", got)
	}
}

func TestBetween(t *testing.T) {
	u := Between("d.text", `id="`, `" url="`)
	doc := `<doc id="abc123" url="http://x">body</doc>`
	if got := eval1(u, value.String(doc)); got.AsString() != "abc123" {
		t.Errorf("Between = %v", got)
	}
	if got := eval1(u, value.String("no markers")); !got.IsNull() {
		t.Errorf("Between without markers = %v, want NULL", got)
	}
	if got := eval1(u, value.String(`id="only start`)); !got.IsNull() {
		t.Errorf("Between without end marker = %v, want NULL", got)
	}
}

func TestHashMod(t *testing.T) {
	u := HashMod("r.k", 10)
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		v := eval1(u, value.Int(i)).AsInt()
		if v < 0 || v >= 10 {
			t.Fatalf("HashMod out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("HashMod should cover all buckets, got %d", len(seen))
	}
	// Deterministic.
	if eval1(u, value.Int(42)).AsInt() != eval1(u, value.Int(42)).AsInt() {
		t.Error("HashMod must be deterministic")
	}
}

func TestLowerPrefixYear(t *testing.T) {
	if eval1(Lower("r.s"), value.String("AbC")).AsString() != "abc" {
		t.Error("Lower failed")
	}
	if eval1(Prefix("r.s", 2), value.String("abcdef")).AsString() != "ab" {
		t.Error("Prefix failed")
	}
	if eval1(Prefix("r.s", 10), value.String("ab")).AsString() != "ab" {
		t.Error("Prefix of short string failed")
	}
	if eval1(YearOf("r.d"), value.String("1994-03-02")).AsInt() != 1994 {
		t.Error("YearOf failed")
	}
	if !eval1(YearOf("r.d"), value.String("xx")).IsNull() {
		t.Error("YearOf on short string should be NULL")
	}
	if !eval1(YearOf("r.d"), value.String("abcd-01-01")).IsNull() {
		t.Error("YearOf on non-numeric year should be NULL")
	}
}

func TestConcatKeyMultiTable(t *testing.T) {
	u := ConcatKey("r.a", "s.b")
	if got := u.Aliases(); !reflect.DeepEqual(got, []string{"r", "s"}) {
		t.Errorf("ConcatKey aliases = %v", got)
	}
	got := u.Fn([]value.Value{value.String("x"), value.String("y")})
	if got.AsString() != "x|y" {
		t.Errorf("ConcatKey = %v", got)
	}
	if !u.Fn([]value.Value{value.Null(), value.String("y")}).IsNull() {
		t.Error("ConcatKey with NULL arg should be NULL")
	}
}

func TestSetEqualsKey(t *testing.T) {
	u := SetEqualsKey("o.items")
	a := eval1(u, value.IntList([]int64{3, 1, 2}))
	b := eval1(u, value.IntList([]int64{2, 3, 1}))
	c := eval1(u, value.IntList([]int64{1, 2}))
	if !a.Equal(b) {
		t.Error("equal sets must produce equal keys")
	}
	if a.Equal(c) {
		t.Error("different sets must produce different keys")
	}
	if !eval1(u, value.Int(5)).IsNull() {
		t.Error("SetEqualsKey on non-list should be NULL")
	}
}

func TestSumMod(t *testing.T) {
	u := SumMod("r.a", "s.b", 7)
	got := u.Fn([]value.Value{value.Int(10), value.Int(11)})
	if got.AsInt() != 0 {
		t.Errorf("SumMod(10,11)%%7 = %v, want 0", got)
	}
	neg := u.Fn([]value.Value{value.Int(-10), value.Int(2)})
	if v := neg.AsInt(); v < 0 || v >= 7 {
		t.Errorf("SumMod must normalize negatives, got %v", v)
	}
}

func TestConstAndIdentityNames(t *testing.T) {
	c := Const(value.String("1/11/19"))
	if got := c.Fn(nil); got.AsString() != "1/11/19" {
		t.Errorf("Const = %v", got)
	}
	if len(c.Aliases()) != 0 {
		t.Error("Const has no aliases")
	}
	if Identity("r.a").Name != "id" {
		t.Error("Identity name wrong")
	}
}
