// Package expr models the opaque user-defined functions whose statistics are
// hidden from the optimizer. A UDF is a black box to the planner — only its
// argument attribute list is visible (the system knows *which* attributes a
// UDF reads, not *what* it computes), exactly the "partially obscured
// predicate" setting of the paper: the optimizer can see an equi-join of two
// function terms but cannot estimate their distinct-value counts statically.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"monsoon/internal/table"
	"monsoon/internal/value"
)

// UDF is an opaque scalar function over a set of table-qualified attributes.
// Fn receives the argument values in the order of Args.
type UDF struct {
	// Name identifies the function in plans and statistics keys.
	Name string
	// Args lists the fully qualified attributes ("alias.column") the
	// function reads. Aliases spanned by Args determine when the function
	// becomes evaluable during planning.
	Args []string
	// Fn is the opaque implementation.
	Fn func(args []value.Value) value.Value
}

// Aliases returns the sorted set of aliases referenced by the UDF's
// arguments. A UDF with more than one alias is a multi-table UDF: its
// statistics cannot be collected before a join covering all aliases has been
// materialized.
func (u *UDF) Aliases() []string {
	set := map[string]bool{}
	for _, a := range u.Args {
		i := strings.IndexByte(a, '.')
		if i < 0 {
			panic(fmt.Sprintf("expr: unqualified UDF argument %q", a))
		}
		set[a[:i]] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Binding caches the column positions of the UDF's arguments in one schema so
// repeated evaluation avoids map lookups per row.
type Binding struct {
	udf  *UDF
	pos  []int
	args []value.Value
}

// Bind resolves the UDF's arguments against a schema. It returns false if any
// argument is not present (the UDF is not evaluable over this schema).
func (u *UDF) Bind(s *table.Schema) (*Binding, bool) {
	pos := make([]int, len(u.Args))
	for i, a := range u.Args {
		p, ok := s.Lookup(a)
		if !ok {
			return nil, false
		}
		pos[i] = p
	}
	return &Binding{udf: u, pos: pos, args: make([]value.Value, len(pos))}, true
}

// Evaluable reports whether all the UDF's arguments are present in s.
func (u *UDF) Evaluable(s *table.Schema) bool {
	for _, a := range u.Args {
		if _, ok := s.Lookup(a); !ok {
			return false
		}
	}
	return true
}

// Eval applies the UDF to one row. The returned value may alias the binding's
// scratch space only if the UDF itself retains it, which library UDFs do not.
func (b *Binding) Eval(row table.Row) value.Value {
	for i, p := range b.pos {
		b.args[i] = row[p]
	}
	return b.udf.Fn(b.args)
}

// UDF returns the bound function.
func (b *Binding) UDF() *UDF { return b.udf }

// Rebase returns a copy of the UDF with every argument's alias rewritten
// through the given mapping (old alias -> new alias). Arguments whose alias
// is absent from the map keep their alias. Benchmarks use this to instantiate
// one template UDF for several table aliases.
func (u *UDF) Rebase(mapping map[string]string) *UDF {
	args := make([]string, len(u.Args))
	for i, a := range u.Args {
		j := strings.IndexByte(a, '.')
		alias, col := a[:j], a[j+1:]
		if repl, ok := mapping[alias]; ok {
			alias = repl
		}
		args[i] = alias + "." + col
	}
	return &UDF{Name: u.Name, Args: args, Fn: u.Fn}
}

// String renders the UDF as F(args...) for plans and logs.
func (u *UDF) String() string {
	return u.Name + "(" + strings.Join(u.Args, ",") + ")"
}
