package expr

import (
	"fmt"
	"strconv"
	"strings"

	"monsoon/internal/value"
)

// This file is the library of concrete UDFs the benchmarks use. They are
// deliberately written as ordinary opaque Go functions — string surgery, IP
// bucketing, set algebra — the kind of code the paper's introduction shows in
// PySpark lambdas. Nothing in the optimizer inspects their bodies.

// Identity returns a UDF that projects a single attribute unchanged. Plain
// column equi-joins (R.a = S.b) are represented as Identity-UDF joins so the
// whole pipeline goes through one code path; the benchmarks that model
// statistics-rich systems simply pre-seed the statistics store for them.
func Identity(attr string) *UDF {
	return &UDF{
		Name: "id",
		Args: []string{attr},
		Fn:   func(args []value.Value) value.Value { return args[0] },
	}
}

// Const returns a UDF of no arguments producing a constant; selection
// predicates compare a function term against it.
func Const(v value.Value) *UDF {
	return &UDF{
		Name: "const_" + v.String(),
		Args: nil,
		Fn:   func([]value.Value) value.Value { return v },
	}
}

// ExtractDate parses the date prefix out of a timestamp string of the form
// "YYYY-MM-DD hh:mm:ss" (the paper's ExtractDate(o.when)).
func ExtractDate(attr string) *UDF {
	return &UDF{
		Name: "ExtractDate",
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			s := args[0].AsString()
			if i := strings.IndexByte(s, ' '); i >= 0 {
				s = s[:i]
			}
			return value.String(s)
		},
	}
}

// City maps an IPv4 address string to a synthetic city bucket (the paper's
// City(s.ipAdd)): the first two octets select the city.
func City(attr string) *UDF {
	return &UDF{
		Name: "City",
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			parts := strings.SplitN(args[0].AsString(), ".", 3)
			if len(parts) < 2 {
				return value.Null()
			}
			a, err1 := strconv.Atoi(parts[0])
			b, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return value.Null()
			}
			return value.Int(int64(a)*256 + int64(b))
		},
	}
}

// Between extracts the substring between two markers, mirroring the
// `x[x.index('id="')+4 : x.index('" url="')]` pattern from the introduction.
// Rows without both markers yield NULL (and therefore never join).
func Between(attr, after, before string) *UDF {
	return &UDF{
		Name: "Between_" + after + "_" + before,
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			s := args[0].AsString()
			i := strings.Index(s, after)
			if i < 0 {
				return value.Null()
			}
			rest := s[i+len(after):]
			j := strings.Index(rest, before)
			if j < 0 {
				return value.Null()
			}
			return value.String(rest[:j])
		},
	}
}

// HashMod maps an integer attribute into b buckets; a cheap surrogate for the
// "opaque transformation" UDFs in the TPC-H part of the UDF benchmark.
func HashMod(attr string, b int64) *UDF {
	return &UDF{
		Name: "HashMod" + strconv.FormatInt(b, 10),
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			x := uint64(args[0].AsInt())
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			return value.Int(int64(x % uint64(b)))
		},
	}
}

// Lower lowercases a string attribute.
func Lower(attr string) *UDF {
	return &UDF{
		Name: "Lower",
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			return value.String(strings.ToLower(args[0].AsString()))
		},
	}
}

// Prefix truncates a string attribute to n bytes.
func Prefix(attr string, n int) *UDF {
	return &UDF{
		Name: "Prefix" + strconv.Itoa(n),
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			s := args[0].AsString()
			if len(s) > n {
				s = s[:n]
			}
			return value.String(s)
		},
	}
}

// ConcatKey concatenates two attributes (possibly from different aliases)
// with a separator; with attributes from two aliases it is a genuine
// multi-table UDF, the F1(R,S) shape from the paper's SELECT example.
func ConcatKey(attrA, attrB string) *UDF {
	return &UDF{
		Name: "ConcatKey",
		Args: []string{attrA, attrB},
		Fn: func(args []value.Value) value.Value {
			if args[0].IsNull() || args[1].IsNull() {
				return value.Null()
			}
			return value.String(args[0].AsString() + "|" + args[1].AsString())
		},
	}
}

// SetEqualsKey returns a canonical key for an item list such that two rows
// join iff their lists are equal as sets. It implements the paper's
// `Intersection(o1.items, o2.items) = Union(o1.items, o2.items)` trick:
// intersection equals union exactly when the two sets are equal, so joining
// on the canonical set representation is the same predicate.
func SetEqualsKey(attr string) *UDF {
	return &UDF{
		Name: "SetKey",
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			l := args[0].AsIntList()
			if l == nil {
				return value.Null()
			}
			return value.String(args[0].String())
		},
	}
}

// SumMod is a multi-table UDF combining integer attributes from two aliases:
// (a + b) mod m. It appears in the UDF benchmark's hardest queries, where no
// statistic exists until the cross product or join of the two aliases is
// materialized.
func SumMod(attrA, attrB string, m int64) *UDF {
	return &UDF{
		Name: "SumMod" + strconv.FormatInt(m, 10),
		Args: []string{attrA, attrB},
		Fn: func(args []value.Value) value.Value {
			s := args[0].AsInt() + args[1].AsInt()
			v := s % m
			if v < 0 {
				v += m
			}
			return value.Int(v)
		},
	}
}

// Sprintf formats an integer attribute through a fixed format string (e.g.
// "T%06d"). Paired with Between, it reproduces the paper's introductory
// pattern: one side of a join extracts an embedded key from free text, the
// other side formats a surrogate key to match — both opaque to the optimizer.
func Sprintf(attr, format string) *UDF {
	return &UDF{
		Name: "Sprintf_" + format,
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			if args[0].IsNull() {
				return value.Null()
			}
			return value.String(fmt.Sprintf(format, args[0].AsInt()))
		},
	}
}

// YearOf extracts the integer year from a "YYYY-MM-DD..." string.
func YearOf(attr string) *UDF {
	return &UDF{
		Name: "YearOf",
		Args: []string{attr},
		Fn: func(args []value.Value) value.Value {
			s := args[0].AsString()
			if len(s) < 4 {
				return value.Null()
			}
			y, err := strconv.Atoi(s[:4])
			if err != nil {
				return value.Null()
			}
			return value.Int(int64(y))
		},
	}
}
