package randx

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 100; i++ {
		if a.Int63() == c.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("adjacent seeds too correlated: %d collisions", same)
	}
}

func TestDerive(t *testing.T) {
	if Derive(1, "a") == Derive(1, "b") {
		t.Error("different labels must derive different seeds")
	}
	if Derive(1, "a") != Derive(1, "a") {
		t.Error("Derive must be deterministic")
	}
	if Derive(1, "a") == Derive(2, "a") {
		t.Error("different parents must derive different seeds")
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(11)
	for _, alpha := range []float64{0.5, 1, 2, 5, 10} {
		n := 60000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := Gamma(r, alpha)
			if x < 0 {
				t.Fatalf("Gamma(%v) produced negative %v", alpha, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if math.Abs(mean-alpha) > 0.08*alpha+0.05 {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", alpha, mean, alpha)
		}
		if math.Abs(variance-alpha) > 0.15*alpha+0.1 {
			t.Errorf("Gamma(%v) variance = %v, want ~%v", alpha, variance, alpha)
		}
	}
}

func TestGammaPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gamma(0) must panic")
		}
	}()
	Gamma(New(1), 0)
}

func TestBetaMoments(t *testing.T) {
	r := New(13)
	cases := []struct{ a, b float64 }{{3, 1}, {1, 3}, {0.5, 0.5}, {2, 10}}
	for _, c := range cases {
		n := 60000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := Beta(r, c.a, c.b)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) out of range: %v", c.a, c.b, x)
			}
			sum += x
		}
		mean := sum / float64(n)
		want := c.a / (c.a + c.b)
		if math.Abs(mean-want) > 0.02 {
			t.Errorf("Beta(%v,%v) mean = %v, want ~%v", c.a, c.b, mean, want)
		}
	}
}

func TestBetaPDF(t *testing.T) {
	// Beta(1,1) is uniform: pdf == 1 on (0,1).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(BetaPDF(x, 1, 1)-1) > 1e-9 {
			t.Errorf("Beta(1,1) pdf at %v = %v, want 1", x, BetaPDF(x, 1, 1))
		}
	}
	if BetaPDF(0, 2, 2) != 0 || BetaPDF(1, 2, 2) != 0 || BetaPDF(-1, 2, 2) != 0 {
		t.Error("pdf outside (0,1) must be 0")
	}
	// Symmetry of Beta(0.5, 0.5).
	if math.Abs(BetaPDF(0.2, 0.5, 0.5)-BetaPDF(0.8, 0.5, 0.5)) > 1e-9 {
		t.Error("Beta(0.5,0.5) pdf must be symmetric")
	}
	// Integrates to ~1.
	total := 0.0
	steps := 100000
	for i := 1; i < steps; i++ {
		total += BetaPDF(float64(i)/float64(steps), 2, 10) / float64(steps)
	}
	if math.Abs(total-1) > 0.01 {
		t.Errorf("Beta(2,10) pdf integrates to %v, want ~1", total)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(17)
	z := NewZipf(100, 1.5)
	if z.N() != 100 {
		t.Errorf("N() = %d", z.N())
	}
	counts := make(map[int64]int)
	for i := 0; i < 50000; i++ {
		v := z.Draw(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[4] {
		t.Errorf("Zipf not decreasing: c1=%d c2=%d c4=%d", counts[1], counts[2], counts[4])
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	r := New(19)
	z := NewZipf(10, 0)
	counts := make([]int, 11)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	for k := 1; k <= 10; k++ {
		frac := float64(counts[k]) / float64(n)
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("Zipf(s=0) P(%d) = %v, want ~0.1", k, frac)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0, 1) must panic")
		}
	}()
	NewZipf(0, 1)
}

func TestUniformInt(t *testing.T) {
	r := New(23)
	if UniformInt(r, 1) != 1 || UniformInt(r, 0) != 1 {
		t.Error("degenerate UniformInt must return 1")
	}
	for i := 0; i < 1000; i++ {
		v := UniformInt(r, 6)
		if v < 1 || v > 6 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
}

func TestPickString(t *testing.T) {
	r := New(29)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[PickString(r, choices)] = true
	}
	if len(seen) != 3 {
		t.Errorf("PickString should eventually hit all choices, saw %v", seen)
	}
}
