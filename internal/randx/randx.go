// Package randx provides the deterministic random machinery the benchmarks
// and the Monsoon priors need beyond math/rand: Gamma and Beta variates
// (Marsaglia–Tsang), bounded Zipf sampling, and convenience helpers. All
// functions take an explicit *rand.Rand so callers stay reproducible.
package randx

import (
	"math"
	"math/rand"
)

// New returns a rand.Rand seeded through SplitMix64 so that nearby integer
// seeds produce decorrelated streams.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed)))))
}

// splitmix64 is the standard SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive produces a child seed from a parent seed and a stream label, so that
// independent subsystems seeded from one master seed do not share streams.
func Derive(seed int64, label string) int64 {
	h := uint64(seed)
	for _, c := range label {
		h = splitmix64(h ^ uint64(c))
	}
	return int64(h)
}

// Gamma draws a Gamma(alpha, 1) variate using the Marsaglia–Tsang method.
// Alpha must be positive.
func Gamma(r *rand.Rand, alpha float64) float64 {
	if alpha <= 0 {
		panic("randx: Gamma alpha must be positive")
	}
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta draws a Beta(a, b) variate via two Gamma draws.
func Beta(r *rand.Rand, a, b float64) float64 {
	x := Gamma(r, a)
	y := Gamma(r, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// BetaPDF evaluates the Beta(a,b) density at x in (0,1). It is used to emit
// the Figure 2 curves and in tests; it is not on any hot path.
func BetaPDF(x, a, b float64) float64 {
	if x <= 0 || x >= 1 {
		return 0
	}
	logB, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	logB = logB + lb - lab
	return math.Exp((a-1)*math.Log(x) + (b-1)*math.Log(1-x) - logB)
}

// Zipf draws values in [1, n] with P(k) proportional to 1/k^s. For s == 0 it
// degenerates to uniform. Instances precompute the CDF once, so construction
// is O(n) and sampling is O(log n).
type Zipf struct {
	n   int64
	cdf []float64
}

// NewZipf builds a bounded Zipf sampler over {1..n} with exponent s >= 0.
func NewZipf(n int64, s float64) *Zipf {
	if n <= 0 {
		panic("randx: Zipf n must be positive")
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for k := int64(1); k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Draw samples one value in [1, n].
func (z *Zipf) Draw(r *rand.Rand) int64 {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}

// N reports the domain size.
func (z *Zipf) N() int64 { return z.n }

// UniformInt draws an integer uniformly from [1, n].
func UniformInt(r *rand.Rand, n int64) int64 {
	if n <= 1 {
		return 1
	}
	return 1 + r.Int63n(n)
}

// Perm fills a deterministic pseudo-random permutation of [0, n).
func Perm(r *rand.Rand, n int) []int { return r.Perm(n) }

// PickString selects one element of choices uniformly.
func PickString(r *rand.Rand, choices []string) string {
	return choices[r.Intn(len(choices))]
}
