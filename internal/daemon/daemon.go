// Package daemon is the monsoond serving core: a long-lived HTTP server that
// runs many core.Sessions concurrently against one shared engine, plan cache,
// and statistics seed store. It exists as a library (rather than living in
// cmd/monsoond) so the handler set is httptest-coverable without sockets.
//
// Shared vs per-query state (the §10 DESIGN split):
//
//   - Shared across every request: the benchmark catalogs and their engines
//     (immutable after load), the plan cache (internally locked; its keys
//     embed the full planning state, so replay is deterministic no matter
//     which request warmed an entry), the metrics registry, the trace ring,
//     and the statistics seed store.
//   - Per-request: an engine.Exec scope (tracer, parallelism/batch knobs,
//     materialization store) created inside core.NewSession, a clone of the
//     statistics seed store, a Budget, and a deterministically derived seed.
//
// Each query's statistics store is a Clone of the shared seed store, so two
// concurrent runs of the same query are bit-identical to each other and to a
// solo run: they plan from the same statistics and never see each other's
// hardened facts mid-run. With Config.HardenStats the hardened facts are
// merged back after the run — future queries then plan from better statistics
// at the cost of cross-request determinism (documented, opt-in).
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"monsoon/internal/bench/imdb"
	"monsoon/internal/bench/ott"
	"monsoon/internal/bench/tpch"
	"monsoon/internal/bench/udf"
	"monsoon/internal/core"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/harness"
	"monsoon/internal/obs"
	"monsoon/internal/obs/obshttp"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/sqlish"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

// Config parameterizes a daemon instance.
type Config struct {
	// Bench names the benchmark whose data and named queries the daemon
	// serves: tpch, imdb, ott, or udf.
	Bench string
	// Scale sizes the generated data; zero value defaults to harness.Tiny().
	Scale harness.Scale
	// Seed is the base seed; per-query seeds derive from it by query name,
	// so a query's result is identical no matter which client asks or when.
	Seed int64
	// Parallelism/BatchSize/PlanParallelism are the engine and planner knobs
	// applied to every query (request-independent: determinism contracts
	// make them pure wall-time knobs).
	Parallelism, BatchSize, PlanParallelism int
	// Shards partitions every served catalog into this many hash shards for
	// exchange-style execution; 0 or 1 serves unsharded. Query answers are
	// identical at any count (the shard layout steers plan choice and wall
	// time, never results).
	Shards int
	// MCTSIterations is the per-planning-call rollout budget; 0 uses the
	// scale's setting.
	MCTSIterations int
	// MaxConcurrent bounds admitted queries; further requests get 429.
	// 0 defaults to 8.
	MaxConcurrent int
	// DefaultTimeout and DefaultMaxTuples are the per-query budget defaults
	// and ceilings: a request may ask for less, never more.
	DefaultTimeout time.Duration
	// DefaultMaxTuples caps produced objects per query; 0 means unbounded.
	DefaultMaxTuples float64
	// CacheCapacity bounds the shared plan cache; 0 means the default.
	CacheCapacity int
	// HardenStats, when set, merges each completed query's hardened
	// statistics (cardinalities, Σ distinct counts) back into the shared
	// seed store. Later queries then plan from observed facts instead of
	// priors — but results may depend on what ran before, so the
	// cross-request determinism guarantee is traded away. Off by default.
	// HardenStats also switches on online self-calibration: the daemon
	// folds each completed query's span tree (from its own trace ring) into
	// a cost calibrator and prices subsequent sessions with the learned
	// per-operator profile.
	HardenStats bool
	// Profile, when non-nil, prices every session's MCTS simulations with
	// this calibrated per-operator cost profile from the start (typically
	// loaded from monsoon-trace calibrate output). With HardenStats the
	// online calibrator takes over once it has observed operator spans.
	Profile *cost.CostProfile
	// ReplanThreshold, when > 0, arms mid-query re-optimization on every
	// session: an EXECUTE round whose observed root q-error reaches the
	// threshold invalidates the query's memoized plan-cache rounds and
	// forces a fresh MCTS round against the hardened statistics.
	ReplanThreshold float64
}

// namedQuery is one servable query: its parsed form plus the engine over its
// catalog. Engines are shared across all requests touching the same catalog;
// isolation comes from per-session Exec scopes, never from engine copies.
type namedQuery struct {
	q   *query.Query
	eng *engine.Engine
}

// Server is a running daemon core. Create with New, mount Handler (or call
// Serve), stop with Shutdown.
type Server struct {
	cfg     Config
	queries map[string]*namedQuery
	names   []string
	// adhoc executes parsed -sql requests; it shares the primary catalog.
	adhoc   *engine.Engine
	sqlReg  *sqlish.Registry
	cache   *plancache.Cache
	seed    *stats.Store
	reg     *obs.Registry
	ring    *obs.TraceRing
	sem     chan struct{}
	started time.Time

	mu  sync.Mutex
	srv *obshttp.Server

	// calMu guards the online self-calibration state: the running
	// calibrator, the profile sessions currently plan with, and the newest
	// trace ID already folded (trace IDs are process-wide monotonic, so the
	// watermark prevents double-counting ring entries).
	calMu      sync.Mutex
	cal        *cost.Calibrator
	profile    *cost.CostProfile
	lastFolded int64
}

// New generates the benchmark data and assembles the shared state. The
// returned server is ready to serve; no listener is created yet.
func New(cfg Config) (*Server, error) {
	if cfg.Scale.Name == "" {
		cfg.Scale = harness.Tiny()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MCTSIterations == 0 {
		cfg.MCTSIterations = cfg.Scale.MCTSIterations
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = cfg.Scale.Timeout
	}
	s := &Server{
		cfg:     cfg,
		queries: make(map[string]*namedQuery),
		sqlReg:  sqlish.NewRegistry(),
		cache:   plancache.New(cfg.CacheCapacity),
		seed:    stats.New(),
		reg:     obs.NewRegistry(),
		ring:    obs.NewTraceRing(0),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
		profile: cfg.Profile,
	}
	if cfg.HardenStats {
		s.cal = cost.NewCalibrator()
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	for name := range s.queries {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	return s, nil
}

// load generates the benchmark and indexes its queries. Engines are built one
// per distinct catalog (tpch/imdb/ott share one; udf generates per-query
// catalogs) so every request for the same data hits the same shared engine.
func (s *Server) load() error {
	sc := s.cfg.Scale
	sc.Seed = s.cfg.Seed
	add := func(q *query.Query, cat *table.Catalog, engines map[*table.Catalog]*engine.Engine) {
		eng, ok := engines[cat]
		if !ok {
			if s.cfg.Shards > 1 {
				cat.Shard(s.cfg.Shards)
			}
			eng = engine.New(cat)
			engines[cat] = eng
		}
		s.queries[q.Name] = &namedQuery{q: q, eng: eng}
		if s.adhoc == nil {
			s.adhoc = eng
		}
	}
	engines := make(map[*table.Catalog]*engine.Engine)
	switch s.cfg.Bench {
	case "", "tpch":
		cat := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed})
		for _, q := range tpch.Queries() {
			add(q, cat, engines)
		}
	case "imdb":
		cat := imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed})
		for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
			add(q, cat, engines)
		}
	case "ott":
		cat := ott.Generate(ott.Config{ScaleFactor: sc.OTTSF, Seed: sc.Seed})
		for _, c := range ott.Queries() {
			add(c.Query, cat, engines)
		}
	case "udf":
		suite := udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed})
		for _, qc := range suite.All() {
			add(qc.Query, qc.Cat, engines)
		}
	default:
		return fmt.Errorf("daemon: unknown benchmark %q", s.cfg.Bench)
	}
	return nil
}

// Registry exposes the shared metrics registry (the /metrics source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// QueryNames lists the servable named queries, sorted.
func (s *Server) QueryNames() []string { return append([]string(nil), s.names...) }

// Handler returns the daemon's full route set: the obshttp telemetry routes
// (/debug/vars, /metrics, /traces/recent) plus /query, /queries, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obshttp.Mount(mux, s.reg, s.ring)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		shards := s.cfg.Shards
		if shards < 1 {
			shards = 1
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_ms\":%d,\"shards\":%d}\n", time.Since(s.started).Milliseconds(), shards)
	})
	return mux
}

// Serve binds addr and serves Handler on a background goroutine; the bound
// address is available as the returned server's Addr. Stop with Shutdown.
func (s *Server) Serve(addr string) (*obshttp.Server, error) {
	srv, err := obshttp.ServeHandler(addr, s.Handler())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	return srv, nil
}

// Shutdown gracefully stops a Serve'd daemon: the listener closes, in-flight
// queries drain until ctx expires. A daemon that never Serve'd is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// QueryRequest is the /query request body (POST JSON). GET requests map the
// "query" URL parameter onto Query.
type QueryRequest struct {
	// Query names a benchmark query (see /queries).
	Query string `json:"query,omitempty"`
	// SQL is an ad-hoc sqlish statement over the primary catalog; used when
	// Query is empty. Name labels it in traces (default "adhoc").
	SQL  string `json:"sql,omitempty"`
	Name string `json:"name,omitempty"`
	// TimeoutMS and MaxTuples tighten this query's budget below the
	// daemon's per-query ceilings; values above the ceiling are clamped.
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	MaxTuples float64 `json:"max_tuples,omitempty"`
	// Seed overrides the deterministic per-query seed. Two requests with
	// the same query and seed always produce identical results.
	Seed *int64 `json:"seed,omitempty"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	Query       string  `json:"query"`
	Rows        int     `json:"rows"`
	Aggregate   float64 `json:"aggregate"`
	Produced    float64 `json:"produced"`
	Executes    int     `json:"executes"`
	Actions     int     `json:"actions"`
	PlanMS      float64 `json:"plan_ms"`
	SigmaMS     float64 `json:"sigma_ms"`
	ExecMS      float64 `json:"exec_ms"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	// Replans counts EXECUTE rounds whose observed q-error forced a
	// mid-query replan; always 0 unless the daemon runs with a replan
	// threshold.
	Replans int `json:"replans"`
	// ResultHash is an FNV-1a digest over the result rows' rendered values,
	// in row order. Clients use it to verify cross-client determinism
	// without shipping result sets around.
	ResultHash string  `json:"result_hash"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Seed       int64   `json:"seed"`
	Error      string  `json:"error,omitempty"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.QueryNames())
}

// writeError emits a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\": %s}\n", msg)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("query")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET ?query=NAME or POST a JSON body")
		return
	}
	if req.Query == "" && strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "request names no query: set \"query\" or \"sql\"")
		return
	}

	// Resolve before admission: a malformed request must not burn a slot.
	var q *query.Query
	var eng *engine.Engine
	if req.Query != "" {
		nq, ok := s.queries[req.Query]
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown query %q (GET /queries lists them)", req.Query)
			return
		}
		q, eng = nq.q, nq.eng
	} else {
		name := req.Name
		if name == "" {
			name = "adhoc"
		}
		parsed, err := sqlish.Parse(name, req.SQL, s.sqlReg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse error: %v", err)
			return
		}
		q, eng = parsed, s.adhoc
	}

	// Bounded admission: one pathological query cannot starve the rest —
	// excess load is refused immediately rather than queued behind it.
	select {
	case s.sem <- struct{}{}:
		defer func() {
			<-s.sem
			s.reg.Gauge("monsoond.inflight").Set(float64(len(s.sem)))
		}()
	default:
		s.reg.Counter("monsoond.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d in flight)", cap(s.sem))
		return
	}
	s.reg.Counter("monsoond.requests").Inc()
	// Approximate by construction (concurrent admits race the reads), but
	// always a value the semaphore actually held.
	s.reg.Gauge("monsoond.inflight").Set(float64(len(s.sem)))

	resp, status := s.run(q, eng, req)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// budgetFor resolves a request's execution budget against the daemon's
// ceilings: requests tighten, never loosen.
func (s *Server) budgetFor(req QueryRequest) *engine.Budget {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	maxTuples := s.cfg.DefaultMaxTuples
	if req.MaxTuples > 0 && (maxTuples == 0 || req.MaxTuples < maxTuples) {
		maxTuples = req.MaxTuples
	}
	b := &engine.Budget{MaxTuples: maxTuples}
	if timeout > 0 {
		b.Deadline = time.Now().Add(timeout)
	}
	return b
}

// run executes one admitted query through a fresh Session against the shared
// engine, cache, and cloned seed statistics.
func (s *Server) run(q *query.Query, eng *engine.Engine, req QueryRequest) (*QueryResponse, int) {
	seed := randx.Derive(s.cfg.Seed, "monsoond/"+q.Name)
	if req.Seed != nil {
		seed = *req.Seed
	}
	st := s.seed.Clone()
	budget := s.budgetFor(req)
	cfg := core.Config{
		Prior:           prior.Default(),
		Iterations:      s.cfg.MCTSIterations,
		Seed:            seed,
		Stats:           st,
		Sink:            s.ring,
		Metrics:         s.reg,
		Parallelism:     s.cfg.Parallelism,
		BatchSize:       s.cfg.BatchSize,
		PlanParallelism: s.cfg.PlanParallelism,
		Cache:           s.cache,
		Profile:         s.currentProfile(),
		ReplanThreshold: s.cfg.ReplanThreshold,
	}
	start := time.Now()
	res, err := core.Run(q, eng, budget, cfg)
	elapsed := time.Since(start)
	s.reg.Histogram("monsoond.query.time").ObserveDuration(elapsed)
	resp := &QueryResponse{
		Query:       q.Name,
		Produced:    res.Produced,
		Executes:    res.Executes,
		Actions:     res.Actions,
		PlanMS:      float64(res.PlanTime) / float64(time.Millisecond),
		SigmaMS:     float64(res.SigmaTime) / float64(time.Millisecond),
		ExecMS:      float64(res.ExecTime) / float64(time.Millisecond),
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
		Replans:     res.Replans,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		Seed:        seed,
	}
	if err != nil {
		resp.Error = err.Error()
		s.reg.Counter("monsoond.errors").Inc()
		if err == engine.ErrBudget {
			s.reg.Counter("monsoond.budget_exceeded").Inc()
			return resp, http.StatusGatewayTimeout
		}
		return resp, http.StatusInternalServerError
	}
	resp.Rows = res.Rows
	resp.Aggregate = res.Value
	resp.ResultHash = hashRelation(res.Output)
	if s.cfg.HardenStats {
		s.seed.MergeFrom(st)
		s.selfCalibrate()
	}
	return resp, http.StatusOK
}

// currentProfile snapshots the cost profile sessions should plan with: the
// configured one until self-calibration (HardenStats) has folded real
// operator spans, then the learned one.
func (s *Server) currentProfile() *cost.CostProfile {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	return s.profile
}

// selfCalibrate folds every trace the ring assembled since the last fold into
// the running calibrator and swaps the learned profile in for subsequent
// sessions. Trace IDs are process-wide monotonic, so a high-water mark is
// enough to never double-count a ring entry (entries evicted before a fold
// are simply lost — the calibrator is an online estimator, not an audit log).
func (s *Server) selfCalibrate() {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	folded := false
	for _, rt := range s.ring.Recent() {
		if rt.Trace <= s.lastFolded {
			continue
		}
		s.cal.AddTree(rt.Root)
		if rt.Trace > s.lastFolded {
			s.lastFolded = rt.Trace
		}
		folded = true
	}
	if !folded {
		return
	}
	p, err := s.cal.Profile()
	if err != nil {
		return // no operator spans observed yet; keep the configured profile
	}
	s.profile = p
	s.reg.Counter("monsoond.calibration.folds").Inc()
}

// hashRelation digests a result relation: FNV-1a over every value's rendered
// form in row-major order, with unit separators so field and row boundaries
// cannot alias. Rendering (rather than raw hashes) keeps the digest stable
// across processes and architectures.
func hashRelation(rel *table.Relation) string {
	h := fnv.New64a()
	if rel != nil {
		for _, row := range rel.Rows {
			for _, v := range row {
				_, _ = h.Write([]byte(v.String()))
				_, _ = h.Write([]byte{0x1f})
			}
			_, _ = h.Write([]byte{0x1e})
		}
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
