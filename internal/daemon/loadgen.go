// Load generator for a live monsoond: N concurrent clients hammering /query
// round-robin over a query list, reporting latency percentiles and verifying
// cross-client result determinism (every client must see the same result_hash
// for the same query — the serving-path guarantee the per-session Exec
// scopes, cloned statistics, and deterministic per-query seeds exist to
// provide). monsoon-bench's -load-url mode is a thin wrapper over RunLoad.
package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	// URL is the daemon base address, e.g. "http://127.0.0.1:8080".
	URL string
	// Clients is the number of concurrent clients; 0 defaults to 8.
	Clients int
	// Requests is the per-client request count; 0 defaults to 10.
	Requests int
	// Queries is the round-robin query list. Empty fetches /queries from
	// the daemon and uses every named query.
	Queries []string
	// Timeout bounds each HTTP request; 0 defaults to 60s.
	Timeout time.Duration
}

// LoadStats summarizes a load run.
type LoadStats struct {
	// Requests, OK, Rejected, Failed partition the issued requests:
	// Rejected counts 429s (admission control working as designed),
	// Failed everything else non-200.
	Requests, OK, Rejected, Failed int
	// Elapsed is the whole run's wall time; Throughput is OK/Elapsed.
	Elapsed    time.Duration
	Throughput float64
	// P50, P95, P99, Max summarize successful-request latency.
	P50, P95, P99, Max time.Duration
	// Divergent lists queries for which different requests saw different
	// result hashes — empty unless cross-client determinism is broken (or
	// the daemon runs with -harden-stats, which documents this trade).
	Divergent []string
	// Hashes maps each query to the distinct result hashes observed.
	Hashes map[string][]string
}

// String renders the stats as the one-screen report monsoon-bench prints.
func (ls *LoadStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d (%d ok, %d rejected, %d failed) in %v (%.1f qps)\n",
		ls.Requests, ls.OK, ls.Rejected, ls.Failed, ls.Elapsed.Round(time.Millisecond), ls.Throughput)
	fmt.Fprintf(&b, "latency: p50 %v  p95 %v  p99 %v  max %v\n",
		ls.P50.Round(time.Microsecond), ls.P95.Round(time.Microsecond),
		ls.P99.Round(time.Microsecond), ls.Max.Round(time.Microsecond))
	if len(ls.Divergent) == 0 {
		fmt.Fprintf(&b, "determinism: %d queries, zero cross-client divergence\n", len(ls.Hashes))
	} else {
		fmt.Fprintf(&b, "determinism: DIVERGENT results for %s\n", strings.Join(ls.Divergent, ", "))
	}
	return b.String()
}

// RunLoad drives the daemon at cfg.URL and returns the latency and
// determinism summary. Only transport-level problems return an error;
// per-request failures are counted in the stats.
func RunLoad(cfg LoadConfig) (*LoadStats, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 10
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	base := strings.TrimRight(cfg.URL, "/")
	client := &http.Client{Timeout: cfg.Timeout}
	queries := cfg.Queries
	if len(queries) == 0 {
		var err error
		if queries, err = fetchQueryNames(client, base); err != nil {
			return nil, err
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("daemon: no queries to issue")
	}

	type sample struct {
		query  string
		hash   string
		status int
		dur    time.Duration
		ok     bool
	}
	samples := make([][]sample, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]sample, 0, cfg.Requests)
			for i := 0; i < cfg.Requests; i++ {
				// Stagger client start points so the round-robin mixes
				// queries across clients instead of phase-locking them.
				qname := queries[(c+i)%len(queries)]
				t0 := time.Now()
				hash, status, err := issueQuery(client, base, qname)
				d := time.Since(t0)
				out = append(out, sample{
					query: qname, hash: hash, status: status, dur: d,
					ok: err == nil && status == http.StatusOK,
				})
			}
			samples[c] = out
		}(c)
	}
	wg.Wait()

	ls := &LoadStats{Elapsed: time.Since(start), Hashes: make(map[string][]string)}
	seen := make(map[string]map[string]bool)
	var lats []time.Duration
	for _, cs := range samples {
		for _, sm := range cs {
			ls.Requests++
			switch {
			case sm.ok:
				ls.OK++
				lats = append(lats, sm.dur)
				if seen[sm.query] == nil {
					seen[sm.query] = make(map[string]bool)
				}
				seen[sm.query][sm.hash] = true
			case sm.status == http.StatusTooManyRequests:
				ls.Rejected++
			default:
				ls.Failed++
			}
		}
	}
	for q, hs := range seen {
		for h := range hs {
			ls.Hashes[q] = append(ls.Hashes[q], h)
		}
		sort.Strings(ls.Hashes[q])
		if len(hs) > 1 {
			ls.Divergent = append(ls.Divergent, q)
		}
	}
	sort.Strings(ls.Divergent)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ls.P50 = percentile(lats, 0.50)
		ls.P95 = percentile(lats, 0.95)
		ls.P99 = percentile(lats, 0.99)
		ls.Max = lats[len(lats)-1]
	}
	if ls.Elapsed > 0 {
		ls.Throughput = float64(ls.OK) / ls.Elapsed.Seconds()
	}
	return ls, nil
}

// percentile reads the pth quantile from an ascending latency slice
// (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fetchQueryNames(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/queries")
	if err != nil {
		return nil, fmt.Errorf("daemon: fetching /queries: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon: /queries returned %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, fmt.Errorf("daemon: decoding /queries: %w", err)
	}
	return names, nil
}

// issueQuery performs one GET /query round-trip, returning the result hash
// and HTTP status.
func issueQuery(client *http.Client, base, name string) (hash string, status int, err error) {
	resp, err := client.Get(base + "/query?query=" + name)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if derr := json.NewDecoder(resp.Body).Decode(&qr); derr != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode, derr
	}
	return qr.ResultHash, resp.StatusCode, nil
}
