package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"monsoon/internal/table"
	"monsoon/internal/value"
)

// The daemon under test: built once (tiny TPC-H generation is the expensive
// part) and shared by every test. Tests that mutate shared state (admission
// semaphore) restore it before returning.
var (
	tsOnce sync.Once
	tsSrv  *Server
	tsErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	tsOnce.Do(func() {
		// MaxConcurrent must exceed the concurrency test's 9 racing clients
		// so only TestQueryAdmissionFull (which fills the slots itself) sees
		// 429s.
		// The generous deadline ceiling keeps slow -race runs from tripping
		// the scale's default budget; TestQueryBudgetExceeded tightens its
		// own request instead.
		tsSrv, tsErr = New(Config{Bench: "tpch", Seed: 1, MaxConcurrent: 16,
			DefaultTimeout: 5 * time.Minute})
	})
	if tsErr != nil {
		t.Fatalf("building test daemon: %v", tsErr)
	}
	return tsSrv
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, QueryResponse) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var qr QueryResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &qr)
	return rec, qr
}

// TestQueryEndpointDeterministic: the serving-path determinism contract as a
// client sees it — repeated requests for the same query return the identical
// result hash, and the replay goes through the shared plan cache.
func TestQueryEndpointDeterministic(t *testing.T) {
	h := testServer(t).Handler()
	rec1, qr1 := doJSON(t, h, "GET", "/query?query=tpch-q3", "")
	if rec1.Code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", rec1.Code, rec1.Body.String())
	}
	if qr1.ResultHash == "" || !strings.HasPrefix(qr1.ResultHash, "fnv1a:") {
		t.Fatalf("result hash %q, want fnv1a:...", qr1.ResultHash)
	}
	if qr1.Rows <= 0 || qr1.Executes <= 0 {
		t.Errorf("implausible result: rows=%d executes=%d", qr1.Rows, qr1.Executes)
	}

	rec2, qr2 := doJSON(t, h, "GET", "/query?query=tpch-q3", "")
	if rec2.Code != http.StatusOK {
		t.Fatalf("second request: status %d", rec2.Code)
	}
	if qr2.ResultHash != qr1.ResultHash {
		t.Errorf("repeat request hash %s, first %s — serving path not deterministic",
			qr2.ResultHash, qr1.ResultHash)
	}
	if qr2.Rows != qr1.Rows || qr2.Aggregate != qr1.Aggregate || qr2.Produced != qr1.Produced {
		t.Errorf("repeat accounting diverged: %+v vs %+v", qr2, qr1)
	}
	if qr2.CacheHits == 0 {
		t.Errorf("repeat request made no cache hits (misses=%d); shared plan cache not engaged",
			qr2.CacheMisses)
	}
	if qr2.Seed != qr1.Seed {
		t.Errorf("derived per-query seed unstable: %d vs %d", qr2.Seed, qr1.Seed)
	}
}

// TestQueryConcurrentClientsIdenticalHashes is the in-process version of the
// monsoon-bench load generator's determinism check: many goroutines racing
// the same named queries through one handler must all see identical hashes.
func TestQueryConcurrentClientsIdenticalHashes(t *testing.T) {
	h := testServer(t).Handler()
	queries := []string{"tpch-q3", "tpch-q5", "tpch-q10"}
	const perQuery = 3

	type got struct {
		query, hash string
		code        int
	}
	results := make([]got, len(queries)*perQuery)
	var wg sync.WaitGroup
	for i := range results {
		q := queries[i%len(queries)]
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			rec, qr := doJSON(t, h, "GET", "/query?query="+q, "")
			results[i] = got{query: q, hash: qr.ResultHash, code: rec.Code}
		}(i, q)
	}
	wg.Wait()

	hashes := make(map[string]map[string]bool)
	for _, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("%s: status %d", r.query, r.code)
		}
		if hashes[r.query] == nil {
			hashes[r.query] = make(map[string]bool)
		}
		hashes[r.query][r.hash] = true
	}
	for q, hs := range hashes {
		if len(hs) != 1 {
			t.Errorf("%s: %d distinct hashes across concurrent clients: %v", q, len(hs), hs)
		}
	}
}

// TestQueryBadRequests pins the 4xx surface: every malformed request is
// refused with a JSON error and never reaches execution.
func TestQueryBadRequests(t *testing.T) {
	h := testServer(t).Handler()
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"no query named", "GET", "/query", "", http.StatusBadRequest},
		{"unknown query", "GET", "/query?query=no-such-query", "", http.StatusBadRequest},
		{"malformed body", "POST", "/query", "{not json", http.StatusBadRequest},
		{"empty body object", "POST", "/query", "{}", http.StatusBadRequest},
		{"bad sql", "POST", "/query", `{"sql": "SELEC COUNT(*) FROM nope"}`, http.StatusBadRequest},
		{"bad method", "DELETE", "/query", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, h, c.method, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON with error field: %s", c.name, rec.Body.String())
		}
	}
}

// TestQueryAdhocSQL: the /query sql path parses and executes an ad-hoc
// statement against the primary catalog.
func TestQueryAdhocSQL(t *testing.T) {
	h := testServer(t).Handler()
	rec, qr := doJSON(t, h, "POST", "/query",
		`{"sql": "SELECT COUNT(*) FROM lineitem l WHERE l.l_quantity = 1", "name": "adhoc-count"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("adhoc sql: status %d: %s", rec.Code, rec.Body.String())
	}
	if qr.Query != "adhoc-count" {
		t.Errorf("query label %q, want adhoc-count", qr.Query)
	}
	if qr.ResultHash == "" {
		t.Error("adhoc result carries no hash")
	}
}

// TestQueryBudgetExceeded: a request-tightened deadline that cannot possibly
// be met maps to 504 with the budget error in the body.
func TestQueryBudgetExceeded(t *testing.T) {
	h := testServer(t).Handler()
	rec, qr := doJSON(t, h, "POST", "/query", `{"query": "tpch-q3", "timeout_ms": 1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(qr.Error, "budget") {
		t.Errorf("error %q does not name the budget", qr.Error)
	}
}

// TestQueryAdmissionFull: with every admission slot held, a valid request is
// refused with 429 + Retry-After instead of queueing, and the slots'
// release restores service.
func TestQueryAdmissionFull(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	rec, _ := doJSON(t, h, "GET", "/query?query=tpch-q2", "")
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d with full admission queue, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	rec2, _ := doJSON(t, h, "GET", "/query?query=tpch-q2", "")
	if rec2.Code != http.StatusOK {
		t.Errorf("status %d after slots released, want 200", rec2.Code)
	}
}

// TestQueriesAndHealthRoutes: the discovery and liveness endpoints, plus the
// mounted telemetry routes, answer on the daemon handler.
func TestQueriesAndHealthRoutes(t *testing.T) {
	h := testServer(t).Handler()

	rec, _ := doJSON(t, h, "GET", "/queries", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/queries: status %d", rec.Code)
	}
	var names []string
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatalf("/queries body: %v", err)
	}
	if len(names) == 0 || names[0] != "tpch-q10" {
		t.Errorf("/queries = %v, want sorted list starting with tpch-q10", names)
	}

	rec, _ = doJSON(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Errorf("/healthz: %d %s", rec.Code, rec.Body.String())
	}

	rec, _ = doJSON(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "monsoond_requests") {
		t.Errorf("/metrics missing daemon counters:\n%.300s", rec.Body.String())
	}
	rec, _ = doJSON(t, h, "GET", "/debug/vars", "")
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/vars: status %d", rec.Code)
	}
}

// TestHashRelation pins the digest: stable empty-input rendering, field/row
// separator sensitivity, and process-independence (pure function of values).
// TestHardenStatsSelfCalibration: with HardenStats on, the daemon folds each
// served query's span tree into its online calibrator, installs the learned
// profile for subsequent requests, and surfaces the replans field in the
// response JSON. Uses its own server — the shared one must stay on the
// deterministic (calibration-off) path.
func TestHardenStatsSelfCalibration(t *testing.T) {
	srv, err := New(Config{Bench: "tpch", Seed: 1, MaxConcurrent: 4,
		DefaultTimeout: 5 * time.Minute, HardenStats: true, ReplanThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if srv.currentProfile() != nil {
		t.Error("no configured profile: the daemon must start uncalibrated")
	}
	h := srv.Handler()
	rec, _ := doJSON(t, h, "GET", "/query?query=tpch-q3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	// The replans field is part of the response contract even at zero.
	if !strings.Contains(rec.Body.String(), `"replans"`) {
		t.Error("response JSON lacks the replans field")
	}
	if folds := srv.reg.Counter("monsoond.calibration.folds").Value(); folds < 1 {
		t.Errorf("calibration folds = %d, want ≥ 1 after a served query", folds)
	}
	p := srv.currentProfile()
	if p == nil {
		t.Fatal("self-calibration must install a learned profile")
	}
	if p.Scan.SecondsPerObject <= 0 {
		t.Errorf("learned scan rate = %v, want > 0 (the query scanned rows)", p.Scan.SecondsPerObject)
	}
	// The next request plans under the learned profile and folds its own
	// trace in turn — the high-water mark must prevent re-folding the first.
	rec2, _ := doJSON(t, h, "GET", "/query?query=tpch-q3", "")
	if rec2.Code != http.StatusOK {
		t.Fatalf("second request: status %d: %s", rec2.Code, rec2.Body.String())
	}
	folds := srv.reg.Counter("monsoond.calibration.folds").Value()
	if folds != 2 {
		t.Errorf("folds after two queries = %d, want exactly 2 (one per new trace)", folds)
	}
	if srv.currentProfile() == nil {
		t.Fatal("profile must survive refolding")
	}
}

func TestHashRelation(t *testing.T) {
	if got := hashRelation(nil); got != fmt.Sprintf("fnv1a:%016x", uint64(0xcbf29ce484222325)) {
		t.Errorf("nil relation hash %s, want the FNV-1a offset basis", got)
	}
	rel := func(rows ...table.Row) *table.Relation {
		return &table.Relation{Rows: rows}
	}
	a := rel(table.Row{value.Int(1), value.Int(2)})
	b := rel(table.Row{value.Int(1)}, table.Row{value.Int(2)})
	if hashRelation(a) == hashRelation(b) {
		t.Error("row boundaries do not affect the hash: [1,2] aliases [1],[2]")
	}
	if hashRelation(a) != hashRelation(rel(table.Row{value.Int(1), value.Int(2)})) {
		t.Error("equal relations hash differently")
	}
}
