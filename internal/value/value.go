// Package value defines the scalar value model shared by the storage layer,
// the expression evaluator, and the statistics subsystem. A Value is a small
// tagged union; it is passed by value everywhere and never aliases mutable
// state, except for list values whose backing slice must not be mutated after
// construction.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindIntList // immutable sorted list of int64, used for set-valued columns
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindIntList:
		return "intlist"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union of the scalar types understood by the engine.
// The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	l    []int64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int wraps an int64.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// IntList wraps a list of int64s as an immutable set value. The input slice is
// copied, sorted, and deduplicated so that two lists with the same members
// compare equal regardless of insertion order.
func IntList(xs []int64) Value {
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	out := cp[:0]
	for i, x := range cp {
		if i == 0 || x != cp[i-1] {
			out = append(out, x)
		}
	}
	return Value{kind: KindIntList, l: out}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it is false for non-bool values.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// AsInt returns the integer payload, coercing floats by truncation and
// parsing numeric strings; non-numeric values yield 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0
		}
		return n
	default:
		return 0
	}
}

// AsFloat returns the floating-point payload, coercing ints.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsString returns the string payload; non-strings are formatted.
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	default:
		return v.String()
	}
}

// AsIntList returns the list payload. The returned slice must not be mutated.
func (v Value) AsIntList() []int64 {
	if v.kind != KindIntList {
		return nil
	}
	return v.l
}

// String renders the value for display and for use as a grouping key.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindIntList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, x := range v.l {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(x, 10))
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return "?"
	}
}

// Equal reports deep equality between two values. Values of different kinds
// are unequal except int/float comparisons, which compare numerically. NULL
// equals nothing, including NULL (SQL semantics for predicates).
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind != o.kind {
		if isNumeric(v.kind) && isNumeric(o.kind) {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindBool, KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindIntList:
		if len(v.l) != len(o.l) {
			return false
		}
		for i := range v.l {
			if v.l[i] != o.l[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Less imposes a total order used for sorting and ordered comparisons. NULL
// sorts before everything; values of different kinds order by kind.
func (v Value) Less(o Value) bool {
	if v.kind != o.kind {
		if isNumeric(v.kind) && isNumeric(o.kind) {
			return v.AsFloat() < o.AsFloat()
		}
		return v.kind < o.kind
	}
	switch v.kind {
	case KindNull:
		return false
	case KindBool, KindInt:
		return v.i < o.i
	case KindFloat:
		return v.f < o.f
	case KindString:
		return v.s < o.s
	case KindIntList:
		n := len(v.l)
		if len(o.l) < n {
			n = len(o.l)
		}
		for i := 0; i < n; i++ {
			if v.l[i] != o.l[i] {
				return v.l[i] < o.l[i]
			}
		}
		return len(v.l) < len(o.l)
	default:
		return false
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }

// Hash returns a 64-bit hash of the value, suitable for hash joins and
// sketches. Numerically equal ints and floats hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.kind {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindBool, KindInt:
		buf[0] = 2
		putU64(buf[1:], uint64(v.i))
		h.Write(buf[:9])
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			buf[0] = 2
			putU64(buf[1:], uint64(int64(v.f)))
		} else {
			buf[0] = 3
			putU64(buf[1:], math.Float64bits(v.f))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 4
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	case KindIntList:
		buf[0] = 5
		h.Write(buf[:1])
		for _, x := range v.l {
			putU64(buf[:8], uint64(x))
			h.Write(buf[:8])
		}
	}
	return h.Sum64()
}

func putU64(b []byte, x uint64) {
	_ = b[7]
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
	b[4] = byte(x >> 32)
	b[5] = byte(x >> 40)
	b[6] = byte(x >> 48)
	b[7] = byte(x >> 56)
}
