package value

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindIntList: "intlist",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if Int(7).AsInt() != 7 {
		t.Error("Int roundtrip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float roundtrip failed")
	}
	if String("xy").AsString() != "xy" {
		t.Error("String roundtrip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool roundtrip failed")
	}
	if Null().AsBool() || Null().AsInt() != 0 || Null().AsFloat() != 0 {
		t.Error("Null coercions should be zero values")
	}
}

func TestCoercions(t *testing.T) {
	if Float(3.9).AsInt() != 3 {
		t.Errorf("Float(3.9).AsInt() = %d, want 3", Float(3.9).AsInt())
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int(3).AsFloat() != 3.0")
	}
	if String(" 42 ").AsInt() != 42 {
		t.Error("string->int coercion failed")
	}
	if String("4.5").AsFloat() != 4.5 {
		t.Error("string->float coercion failed")
	}
	if String("nope").AsInt() != 0 || String("nope").AsFloat() != 0 {
		t.Error("bad numeric strings should coerce to 0")
	}
	if Int(12).AsString() != "12" {
		t.Error("Int.AsString failed")
	}
}

func TestIntListNormalization(t *testing.T) {
	a := IntList([]int64{3, 1, 2, 3, 1})
	b := IntList([]int64{1, 2, 3})
	if !a.Equal(b) {
		t.Errorf("IntList should sort+dedup: %v vs %v", a, b)
	}
	if got := a.String(); got != "[1,2,3]" {
		t.Errorf("IntList.String() = %q", got)
	}
	if a.Hash() != b.Hash() {
		t.Error("equal lists must hash equal")
	}
	src := []int64{5, 4}
	v := IntList(src)
	src[0] = 99
	if v.AsIntList()[0] != 4 {
		t.Error("IntList must copy its input")
	}
}

func TestEqualSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL must not equal NULL")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL must not equal anything")
	}
	if !Int(2).Equal(Float(2.0)) || !Float(2.0).Equal(Int(2)) {
		t.Error("numeric cross-kind equality failed")
	}
	if Int(2).Equal(String("2")) {
		t.Error("int should not equal string")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality failed")
	}
	if IntList([]int64{1}).Equal(IntList([]int64{1, 2})) {
		t.Error("lists of different length should differ")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality failed")
	}
}

func TestLessTotalOrder(t *testing.T) {
	vs := []Value{Null(), Bool(false), Bool(true), Int(-5), Int(10), Float(3.3),
		String("a"), String("b"), IntList([]int64{1}), IntList([]int64{1, 2})}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
	// Re-sorting must be a no-op (the comparator is consistent).
	again := make([]Value, len(vs))
	copy(again, vs)
	sort.Slice(again, func(i, j int) bool { return again[i].Less(again[j]) })
	for i := range vs {
		if vs[i].String() != again[i].String() {
			t.Fatalf("sort not stable under re-sort at %d", i)
		}
	}
	if !Int(2).Less(Float(2.5)) || Float(2.5).Less(Int(2)) {
		t.Error("numeric cross-kind Less failed")
	}
	if !IntList([]int64{1}).Less(IntList([]int64{1, 2})) {
		t.Error("prefix list should be Less")
	}
	if !IntList([]int64{1, 2}).Less(IntList([]int64{1, 3})) {
		t.Error("lexicographic list Less failed")
	}
}

func TestHashDistribution(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := int64(0); i < 2000; i++ {
		seen[Int(i).Hash()] = true
	}
	if len(seen) < 1990 {
		t.Errorf("too many hash collisions among 2000 ints: %d distinct", len(seen))
	}
}

func TestHashNumericAgreement(t *testing.T) {
	if Int(7).Hash() != Float(7.0).Hash() {
		t.Error("Int(7) and Float(7.0) must hash identically (they are Equal)")
	}
}

// Property: Equal implies equal Hash, for randomly generated values.
func TestQuickEqualImpliesHashEqual(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(5) {
		case 0:
			return Int(r.Int63n(50))
		case 1:
			return Float(float64(r.Int63n(50)))
		case 2:
			return String(string(rune('a' + r.Intn(5))))
		case 3:
			return Bool(r.Intn(2) == 0)
		default:
			n := r.Intn(4)
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = r.Int63n(5)
			}
			return IntList(xs)
		}
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, b := gen(r), gen(r)
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("Equal values with different hashes: %v %v", a, b)
		}
	}
}

// Property: Less is irreflexive and asymmetric.
func TestQuickLessAsymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Less(va) {
			return false
		}
		if va.Less(vb) && vb.Less(va) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String() is injective over distinct ints (used as group keys).
func TestQuickStringKeyInjective(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		return Int(a).String() != Int(b).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsIntListNonList(t *testing.T) {
	if Int(3).AsIntList() != nil {
		t.Error("AsIntList on non-list must be nil")
	}
	if !reflect.DeepEqual(IntList(nil).AsIntList(), []int64{}) {
		t.Error("empty list roundtrip failed")
	}
}
