package harness

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"monsoon/internal/bench/imdb"
)

// TestIMDBResultSizes (diagnostic) measures true per-query costs under the
// full-statistics plan with no budget, to calibrate the scale knobs.
func TestIMDBResultSizes(t *testing.T) {
	if os.Getenv("MONSOON_PROBE") == "" {
		t.Skip("diagnostic probe; set MONSOON_PROBE=1 to run")
	}
	sc := Small()
	cat := imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed})
	var produced []float64
	for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
		out := (Postgres{}).Run(QuerySpec{Q: q, Cat: cat}, 0, 3e7, 1)
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.TimedOut {
			fmt.Printf("  %s exceeded 3e7 tuples\n", q.Name)
		}
		produced = append(produced, out.Produced)
	}
	sort.Float64s(produced)
	n := len(produced)
	fmt.Printf("produced quantiles: p50=%.3g p75=%.3g p90=%.3g p95=%.3g max=%.3g\n",
		produced[n/2], produced[n*3/4], produced[n*9/10], produced[n*19/20], produced[n-1])
}
