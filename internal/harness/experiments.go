package harness

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"monsoon/internal/bench/imdb"
	"monsoon/internal/bench/ott"
	"monsoon/internal/bench/tpch"
	"monsoon/internal/bench/udf"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/opt"
	"monsoon/internal/plan"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// Scale bundles every knob of an experiment campaign. The paper ran on a
// 36-core EC2 box against 20–100 GB databases with a 20-minute timeout; this
// repository's engine is in-memory, so scales are smaller and the timeout
// proportionally tighter — relative shapes, not absolute seconds, are the
// reproduction target (see EXPERIMENTS.md).
type Scale struct {
	Name           string
	TPCHSF         float64
	OTTSF          float64
	IMDBTitles     int
	IMDBBootstrap  int
	IMDBQueryCount int
	UDFTitles      int
	UDFSF          float64
	Timeout        time.Duration
	MaxTuples      float64
	MCTSIterations int
	Seed           int64
	// Parallelism caps the engine worker count for every option's runs:
	// 0 = runtime.GOMAXPROCS(0), 1 = the exact serial path. Results are
	// bit-identical at every setting; only wall times change.
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch for every
	// option's runs: 0 = the default 4096, negative = unbounded (full
	// materialization between operators). Results are bit-identical at
	// every setting; only peak memory and wall times change.
	BatchSize int
	// PlanParallelism caps the OS threads Monsoon's root-parallel MCTS
	// planner runs its search shards on: 0 = runtime.GOMAXPROCS(0), 1 =
	// serial planning. The shard decomposition is fixed by the planner
	// config, so plans are bit-identical at every setting.
	PlanParallelism int
	// PlanCache, when set, shares one plan cache across every Monsoon run
	// of the campaign: repeated (query shape, statistics) planning states
	// replay memoized rounds instead of re-running MCTS. Plan choices are
	// unchanged for repeated identical runs; hit rates surface in the
	// campaign metrics (-metrics) as monsoon.plancache.hits/misses.
	PlanCache bool
	// Shards partitions every generated catalog into that many deterministic
	// hash shards (first-column layout), switching on the engine's
	// exchange-style operators for every run of the campaign: 0 or 1 keeps
	// the single unsharded store. Query answers are bit-identical at every
	// setting; only wall times and the exchange telemetry change.
	Shards int
}

// shardCat applies the campaign's shard layout to a freshly generated
// catalog; every experiment's catalog passes through here so -shards covers
// the whole harness uniformly.
func (sc Scale) shardCat(cat *table.Catalog) *table.Catalog {
	if sc.Shards > 1 {
		cat.Shard(sc.Shards)
	}
	return cat
}

// Tiny is the scale unit tests and testing.B benchmarks use.
func Tiny() Scale {
	return Scale{
		Name: "tiny", TPCHSF: 0.001, OTTSF: 0.001,
		IMDBTitles: 150, IMDBBootstrap: 1, IMDBQueryCount: 8,
		UDFTitles: 150, UDFSF: 0.001,
		Timeout: 3 * time.Second, MaxTuples: 2e6,
		MCTSIterations: 150, Seed: 1,
	}
}

// Small is the default campaign scale for cmd/monsoon-bench.
func Small() Scale {
	return Scale{
		Name: "small", TPCHSF: 0.004, OTTSF: 0.002,
		IMDBTitles: 500, IMDBBootstrap: 3, IMDBQueryCount: 60,
		UDFTitles: 600, UDFSF: 0.003,
		Timeout: 8 * time.Second, MaxTuples: 2.5e7,
		MCTSIterations: 400, Seed: 1,
	}
}

// Medium trades wall time for larger data.
func Medium() Scale {
	return Scale{
		Name: "medium", TPCHSF: 0.02, OTTSF: 0.01,
		IMDBTitles: 2500, IMDBBootstrap: 5, IMDBQueryCount: 60,
		UDFTitles: 2500, UDFSF: 0.01,
		Timeout: 20 * time.Second, MaxTuples: 4e7,
		MCTSIterations: 800, Seed: 1,
	}
}

// Runner executes and caches the campaign so tables sharing a run (3/4/5/8)
// pay for it once.
type Runner struct {
	Scale    Scale
	Progress io.Writer
	// Metrics, when non-nil, accumulates counters and histograms from every
	// Monsoon run of the campaign (cmd/monsoon-bench dumps it on exit).
	Metrics *obs.Registry
	// Sink, when non-nil, receives the structured event stream of every
	// Monsoon run of the campaign. Sinks shared this way must lock
	// internally (obs.NewJSONL does).
	Sink obs.EventSink
	// Profile, when non-nil, prices every Monsoon run's MCTS simulations
	// with this calibrated per-operator cost profile (-calibration-file).
	Profile *cost.CostProfile
	// ReplanThreshold, when > 0, arms mid-query re-optimization on every
	// Monsoon run of the campaign (-replan-threshold).
	ReplanThreshold float64

	imdbRes *BenchResult
	ottRes  *BenchResult
	udfRes  *BenchResult
	cache   *plancache.Cache
}

func (r *Runner) monsoon() Monsoon {
	return Monsoon{Iterations: r.Scale.MCTSIterations, Metrics: r.Metrics, Sink: r.Sink,
		Parallelism: r.Scale.Parallelism, BatchSize: r.Scale.BatchSize,
		PlanParallelism: r.Scale.PlanParallelism,
		Cache:           r.planCache(),
		Profile:         r.Profile,
		ReplanThreshold: r.ReplanThreshold}
}

// planCache lazily creates the campaign-shared cache when the scale enables
// it; nil (caching off) otherwise.
func (r *Runner) planCache() *plancache.Cache {
	if !r.Scale.PlanCache {
		return nil
	}
	if r.cache == nil {
		r.cache = plancache.New(0)
	}
	return r.cache
}

// standardOptions is the Table 3/5 lineup.
func (r *Runner) standardOptions() []Option {
	p, bs := r.Scale.Parallelism, r.Scale.BatchSize
	return []Option{
		Postgres{Parallelism: p, BatchSize: bs}, Defaults{Parallelism: p, BatchSize: bs},
		Greedy{Parallelism: p, BatchSize: bs}, r.monsoon(), OnDemand{Parallelism: p, BatchSize: bs},
		Sampling{Parallelism: p, BatchSize: bs}, Skinner{Parallelism: p, BatchSize: bs},
	}
}

func (r *Runner) log(format string, args ...any) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format+"\n", args...)
	}
}

// Table1 reproduces Table 1 and the §2.3 expected-cost argument analytically
// from the implemented cost model — no execution involved.
func Table1(w io.Writer) {
	q := query.NewBuilder("sec23").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.HashMod("R.a", 1000), expr.Identity("S.k")).
		Join(expr.HashMod("R.b", 1000), expr.Identity("T.k")).
		MustBuild()
	mk := func(d2, d4 float64) *stats.Store {
		st := stats.New()
		st.SetCount(stats.RawKey("R"), 1e6)
		st.SetCount(stats.RawKey("S"), 1e4)
		st.SetCount(stats.RawKey("T"), 1e4)
		st.SetMeasured(0, "R", 1000)
		st.SetMeasured(2, "R", 1000)
		st.SetMeasured(1, "S", d2)
		st.SetMeasured(3, "T", d4)
		return st
	}
	leaf := func(n string) *plan.Node { return plan.NewLeaf(query.NewAliasSet(n)) }
	fmt.Fprintln(w, "Table 1: enumerating attribute cardinalities (§2.3)")
	fmt.Fprintf(w, "%-10s %-10s %-22s %-12s\n", "d(F2,S)", "d(F4,T)", "Optimal Plan", "Int. Tuples")
	for _, c := range []struct{ d2, d4 float64 }{{1, 1}, {1, 10000}, {10000, 1}, {10000, 10000}} {
		dv := &cost.Deriver{Q: q, St: mk(c.d2, c.d4), Miss: cost.PanicMiss()}
		rs := dv.NodeCount(plan.NewJoin(leaf("R"), leaf("S")))
		rt := dv.NodeCount(plan.NewJoin(leaf("R"), leaf("T")))
		planName := "Both"
		best := rs
		switch {
		case rs < rt:
			planName = "((R⋈S)⋈T)"
		case rt < rs:
			planName, best = "((R⋈T)⋈S)", rt
		}
		fmt.Fprintf(w, "%-10.0f %-10.0f %-22s %-12.4g\n", c.d2, c.d4, planName, best)
	}
	fmt.Fprintln(w, "\nExpected costs (§2.3): guess-based plan = 0.5·10^7 + 0.5·10^6 = 5.5e6;")
	fmt.Fprintln(w, "scan-S-first plan = 10^4 + 0.25·10^7 + 0.75·10^6 = 3.26e6 — statistics win.")
}

// Figure2 emits the densities of the five smooth priors of §5.2 over
// normalized x = d/c(r), as CSV series.
func Figure2(w io.Writer) {
	priors := []prior.Prior{
		prior.Uniform{}, prior.Increasing{}, prior.Decreasing{},
		prior.UShaped{}, prior.LowBiased{},
	}
	fmt.Fprint(w, "x")
	for _, p := range priors {
		fmt.Fprintf(w, ",%s", p.Name())
	}
	fmt.Fprintln(w)
	for i := 1; i < 100; i++ {
		x := float64(i) / 100
		fmt.Fprintf(w, "%.2f", x)
		for _, p := range priors {
			fmt.Fprintf(w, ",%.4f", prior.Density(p, x))
		}
		fmt.Fprintln(w)
	}
}

// Table2 runs the TPC-H prior sweep: seven priors × four skew settings.
func (r *Runner) Table2(w io.Writer) error {
	sc := r.Scale
	datasets := []struct {
		label string
		cfg   tpch.Config
	}{
		{"TPC-H", tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed}},
		{"Low", tpch.Config{ScaleFactor: sc.TPCHSF, Skew: 1, Seed: sc.Seed}},
		{"High", tpch.Config{ScaleFactor: sc.TPCHSF, Skew: 4, Seed: sc.Seed}},
		{"Mixed", tpch.Config{ScaleFactor: sc.TPCHSF, MixedSkew: true, Seed: sc.Seed}},
	}
	queries := tpch.Queries()
	cells := map[string]map[string]string{}
	for _, p := range prior.All() {
		cells[p.Name()] = map[string]string{}
	}
	for _, ds := range datasets {
		r.log("Table 2: generating %s dataset...", ds.label)
		cat := sc.shardCat(tpch.Generate(ds.cfg))
		specs := make([]QuerySpec, len(queries))
		for i, q := range queries {
			specs[i] = QuerySpec{Q: q, Cat: cat}
		}
		for _, p := range prior.All() {
			// The runner's campaign knobs (shared cache, cost profile, replan
			// threshold) apply to every prior variant alike, so the sweep
			// compares priors, not configurations.
			opt := r.monsoon()
			opt.Prior = p
			br, err := RunBenchmark(specs, []Option{opt}, sc.Timeout, sc.MaxTuples, sc.Seed, nil)
			if err != nil {
				return err
			}
			agg := Aggregate(br.Results[opt.Name()], sc.Timeout)
			if agg.HasTO {
				cells[p.Name()][ds.label] = "N/A"
			} else {
				cells[p.Name()][ds.label] = fmtDur(agg.Mean)
			}
			r.log("  prior %-15s %-6s mean=%s", p.Name(), ds.label, cells[p.Name()][ds.label])
		}
	}
	fmt.Fprintln(w, "Table 2: average query time per prior on TPC-H (N/A = a query timed out)")
	fmt.Fprintf(w, "%-16s %-10s %-10s %-10s %-10s\n", "Prior", "TPC-H", "Low", "High", "Mixed")
	for _, p := range prior.All() {
		fmt.Fprintf(w, "%-16s %-10s %-10s %-10s %-10s\n", p.Name(),
			cells[p.Name()]["TPC-H"], cells[p.Name()]["Low"],
			cells[p.Name()]["High"], cells[p.Name()]["Mixed"])
	}
	return nil
}

// imdbBench runs the IMDB campaign once and caches it.
func (r *Runner) imdbBench() (*BenchResult, error) {
	if r.imdbRes != nil {
		return r.imdbRes, nil
	}
	sc := r.Scale
	r.log("IMDB: generating %d titles (bootstrap %dx)...", sc.IMDBTitles, sc.IMDBBootstrap)
	cat := sc.shardCat(imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed}))
	var specs []QuerySpec
	for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
		specs = append(specs, QuerySpec{Q: q, Cat: cat})
	}
	br, err := RunBenchmark(specs, r.standardOptions(), sc.Timeout, sc.MaxTuples, sc.Seed, r.Progress)
	if err != nil {
		return nil, err
	}
	r.imdbRes = br
	return br, nil
}

func printAggTable(w io.Writer, title string, names []string, br *BenchResult, filter map[string]bool) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-22s %-4s %-10s %-10s %-10s %-10s %-10s %-15s %-8s %-8s %-5s\n",
		"Implementation", "TO", "Mean", "Median", "P50", "P99", "Max", "GeoMean(tuples)", "Q-geo", "Q-max", "Miss")
	for _, n := range names {
		rs := br.Results[n]
		if filter != nil {
			rs = Filter(rs, filter)
		}
		a := Aggregate(rs, br.Timeout)
		mean, median, max := fmtAgg(a, br.Timeout)
		p50, p99 := timeQuantiles(rs, br.Timeout)
		qgeo, qmax, qmiss := qerrCols(rs)
		fmt.Fprintf(w, "%-22s %-4d %-10s %-10s %-10s %-10s %-10s %-15.4g %-8s %-8s %-5s\n",
			n, a.TO, mean, median, p50, p99, max, geoMeanProduced(rs), qgeo, qmax, qmiss)
	}
}

// timeQuantiles estimates the p50/p99 run wall time of one option's results
// through the obs log₂ histogram — the same estimator the live /metrics
// endpoint reports, so table and endpoint percentiles agree in kind. Timed-out
// runs contribute the timeout value, matching how Aggregate treats the median.
func timeQuantiles(rs []QueryResult, timeout time.Duration) (p50, p99 string) {
	if len(rs) == 0 {
		return "-", "-"
	}
	h := &obs.Histogram{}
	for _, r := range rs {
		h.ObserveDuration(effTime(r, timeout))
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return "≤" + fmtDur(secs(h.Quantile(0.50))), "≤" + fmtDur(secs(h.Quantile(0.99)))
}

// Table3 prints the full IMDB aggregate.
func (r *Runner) Table3(w io.Writer) error {
	br, err := r.imdbBench()
	if err != nil {
		return err
	}
	printAggTable(w, "Table 3: IMDB Join Order Benchmark (synthetic proxy)", r.optionNames(), br, nil)
	return nil
}

// Table4 prints the relative-to-Postgres buckets.
func (r *Runner) Table4(w io.Writer) error {
	br, err := r.imdbBench()
	if err != nil {
		return err
	}
	base := br.Results["Postgres"]
	fmt.Fprintln(w, "Table 4: relative performance vs Postgres (full statistics) on IMDB")
	fmt.Fprintf(w, "%-22s %-8s %-10s %-8s\n", "Impl.", "<0.9", "[0.9,1.1)", ">1.1")
	for _, n := range r.optionNames() {
		if n == "Postgres" {
			continue
		}
		lo, mid, hi := RelativeBuckets(br.Results[n], base)
		fmt.Fprintf(w, "%-22s %-8.2f %-10.2f %-8.2f\n", n, lo, mid, hi)
	}
	return nil
}

// Table5 prints the aggregate over the 20 most expensive IMDB queries (by
// the Postgres baseline's time).
func (r *Runner) Table5(w io.Writer) error {
	br, err := r.imdbBench()
	if err != nil {
		return err
	}
	k := 20
	if r.Scale.IMDBQueryCount < 20 {
		k = r.Scale.IMDBQueryCount / 2
	}
	top := TopExpensive(br.Results["Postgres"], k)
	printAggTable(w, fmt.Sprintf("Table 5: the %d most expensive IMDB queries", k), r.optionNames(), br, top)
	return nil
}

func (r *Runner) optionNames() []string {
	var out []string
	for _, o := range r.standardOptions() {
		out = append(out, o.Name())
	}
	return out
}

// Table6 runs and prints the Optimizer Torture Tests.
func (r *Runner) Table6(w io.Writer) error {
	if r.ottRes == nil {
		sc := r.Scale
		r.log("OTT: generating (SF %.4g)...", sc.OTTSF)
		cat := sc.shardCat(ott.Generate(ott.Config{ScaleFactor: sc.OTTSF, Seed: sc.Seed}))
		var specs []QuerySpec
		for _, c := range ott.Queries() {
			specs = append(specs, QuerySpec{Q: c.Query, Cat: cat, Hand: c.Best})
		}
		par, bs := sc.Parallelism, sc.BatchSize
		options := []Option{
			HandWritten{Parallelism: par, BatchSize: bs}, Postgres{Parallelism: par, BatchSize: bs},
			Defaults{Parallelism: par, BatchSize: bs}, Greedy{Parallelism: par, BatchSize: bs},
			r.monsoon(), OnDemand{Parallelism: par, BatchSize: bs}, Sampling{Parallelism: par, BatchSize: bs},
		}
		br, err := RunBenchmark(specs, options, sc.Timeout, sc.MaxTuples, sc.Seed, r.Progress)
		if err != nil {
			return err
		}
		r.ottRes = br
	}
	names := []string{"Hand-written", "Postgres", "Defaults", "Greedy", "Monsoon", "On Demand", "Sampling"}
	printAggTable(w, "Table 6: correlated Optimizer Torture Tests", names, r.ottRes, nil)
	return nil
}

// udfBench runs the UDF campaign once and caches it.
func (r *Runner) udfBench() (*BenchResult, error) {
	if r.udfRes != nil {
		return r.udfRes, nil
	}
	sc := r.Scale
	r.log("UDF: generating (titles %d, SF %.4g)...", sc.UDFTitles, sc.UDFSF)
	suite := udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed})
	var specs []QuerySpec
	for _, qc := range suite.All() {
		specs = append(specs, QuerySpec{Q: qc.Query, Cat: sc.shardCat(qc.Cat)})
	}
	par, bs := sc.Parallelism, sc.BatchSize
	options := []Option{Defaults{Parallelism: par, BatchSize: bs}, Greedy{Parallelism: par, BatchSize: bs},
		r.monsoon(), Sampling{Parallelism: par, BatchSize: bs}, Skinner{Parallelism: par, BatchSize: bs}}
	br, err := RunBenchmark(specs, options, sc.Timeout, sc.MaxTuples, sc.Seed, r.Progress)
	if err != nil {
		return nil, err
	}
	r.udfRes = br
	return br, nil
}

// Table7 prints the UDF benchmark aggregate (On-Demand and the full-stats
// baseline are dropped: multi-table UDF statistics cannot be precollected).
func (r *Runner) Table7(w io.Writer) error {
	br, err := r.udfBench()
	if err != nil {
		return err
	}
	names := []string{"Defaults", "Greedy", "Monsoon", "Sampling", "SkinnerDB"}
	printAggTable(w, "Table 7: queries with UDFs", names, br, nil)
	return nil
}

// Figure3 prints per-query times of the four plan-producing options on the
// 25 UDF queries, sorted by Monsoon's time (CSV series, timeouts printed as
// the timeout value).
func (r *Runner) Figure3(w io.Writer) error {
	br, err := r.udfBench()
	if err != nil {
		return err
	}
	names := []string{"Monsoon", "Sampling", "Defaults", "Greedy"}
	monsoon := br.Results["Monsoon"]
	order := make([]string, len(monsoon))
	sorted := append([]QueryResult(nil), monsoon...)
	sort.Slice(sorted, func(i, j int) bool { return effTime(sorted[i], br.Timeout) < effTime(sorted[j], br.Timeout) })
	for i, qr := range sorted {
		order[i] = qr.Query
	}
	byName := map[string]map[string]QueryResult{}
	for _, n := range names {
		byName[n] = map[string]QueryResult{}
		for _, qr := range br.Results[n] {
			byName[n][qr.Query] = qr
		}
	}
	fmt.Fprint(w, "query")
	for _, n := range names {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintln(w)
	for _, qn := range order {
		fmt.Fprint(w, qn)
		for _, n := range names {
			fmt.Fprintf(w, ",%.3f", effTime(byName[n][qn], br.Timeout).Seconds())
		}
		fmt.Fprintln(w)
	}
	return nil
}

func effTime(qr QueryResult, timeout time.Duration) time.Duration {
	if qr.TimedOut && timeout > 0 {
		return timeout
	}
	return qr.Time
}

// Table8 prints Monsoon's component breakdown (average per query) on IMDB,
// the IMDB top-k subset, OTT, and UDF.
func (r *Runner) Table8(w io.Writer) error {
	imdbBR, err := r.imdbBench()
	if err != nil {
		return err
	}
	if err := r.Table6(io.Discard); err != nil { // ensures ottRes
		return err
	}
	udfBR, err := r.udfBench()
	if err != nil {
		return err
	}
	k := 20
	if r.Scale.IMDBQueryCount < 20 {
		k = r.Scale.IMDBQueryCount / 2
	}
	top := TopExpensive(imdbBR.Results["Postgres"], k)
	rows := []struct {
		label string
		rs    []QueryResult
	}{
		{"IMDB", imdbBR.Results["Monsoon"]},
		{fmt.Sprintf("IMDB-%d", k), Filter(imdbBR.Results["Monsoon"], top)},
		{"OTT", r.ottRes.Results["Monsoon"]},
		{"UDF", udfBR.Results["Monsoon"]},
	}
	fmt.Fprintln(w, "Table 8: average time per component of the Monsoon optimizer")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-10s %-12s %-12s %-12s %-12s\n",
		"Benchmark", "MCTS", "Σ", "Execution", "plan-p50", "plan-p99", "exec-p50", "exec-p99")
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	for _, row := range rows {
		var mcts, sigma, exec time.Duration
		n := len(row.rs)
		if n == 0 {
			continue
		}
		planH, execH := &obs.Histogram{}, &obs.Histogram{}
		for _, qr := range row.rs {
			mcts += qr.MCTSTime
			sigma += qr.SigmaTime
			exec += qr.ExecTime
			planH.ObserveDuration(qr.MCTSTime)
			execH.ObserveDuration(qr.ExecTime)
		}
		fmt.Fprintf(w, "%-10s %-10s %-10s %-10s %-12s %-12s %-12s %-12s\n", row.label,
			fmtDur(mcts/time.Duration(n)), fmtDur(sigma/time.Duration(n)), fmtDur(exec/time.Duration(n)),
			"≤"+fmtDur(secs(planH.Quantile(0.50))), "≤"+fmtDur(secs(planH.Quantile(0.99))),
			"≤"+fmtDur(secs(execH.Quantile(0.50))), "≤"+fmtDur(secs(execH.Quantile(0.99))))
	}
	return nil
}

// PlanCacheStudy measures the cross-session plan cache on the IMDB campaign:
// a cache-off reference pass, a cold pass through a fresh shared cache, and a
// warm pass through the now-populated cache, all with identical per-query
// seeds. It reports each pass's total MCTS planning time and hit rate, the
// warm-over-cold plan-time speedup, and verifies the warm pass reproduced the
// reference results exactly (the cached≡uncached guarantee).
func (r *Runner) PlanCacheStudy(w io.Writer) error {
	sc := r.Scale
	r.log("PlanCacheStudy: generating IMDB (%d titles)...", sc.IMDBTitles)
	cat := sc.shardCat(imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed}))
	var specs []QuerySpec
	for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
		specs = append(specs, QuerySpec{Q: q, Cat: cat})
	}
	cache := plancache.New(0)
	passes := []struct {
		label string
		opt   Monsoon
	}{
		{"uncached", Monsoon{Iterations: sc.MCTSIterations, Parallelism: sc.Parallelism,
			BatchSize: sc.BatchSize, Metrics: r.Metrics, Sink: r.Sink}},
		{"cold", Monsoon{Iterations: sc.MCTSIterations, Parallelism: sc.Parallelism,
			BatchSize: sc.BatchSize, Cache: cache, Metrics: r.Metrics, Sink: r.Sink}},
		{"warm", Monsoon{Iterations: sc.MCTSIterations, Parallelism: sc.Parallelism,
			BatchSize: sc.BatchSize, Cache: cache, Metrics: r.Metrics, Sink: r.Sink}},
	}
	fmt.Fprintln(w, "Plan cache study: repeated IMDB campaign through one shared cache")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-8s %-8s %-8s\n", "Pass", "MCTS", "Total", "Hits", "Misses", "HitRate")
	results := make([]*BenchResult, len(passes))
	planTimes := make([]time.Duration, len(passes))
	for i, p := range passes {
		br, err := RunBenchmark(specs, []Option{p.opt}, sc.Timeout, sc.MaxTuples, sc.Seed, r.Progress)
		if err != nil {
			return err
		}
		results[i] = br
		var mcts, total time.Duration
		hits, misses := 0, 0
		for _, qr := range br.Results[p.opt.Name()] {
			mcts += qr.MCTSTime
			total += qr.Time
			hits += qr.CacheHits
			misses += qr.CacheMisses
		}
		planTimes[i] = mcts
		rate := "-"
		if hits+misses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		fmt.Fprintf(w, "%-10s %-12s %-12s %-8d %-8d %-8s\n", p.label, fmtDur(mcts), fmtDur(total), hits, misses, rate)
	}
	// The cached≡uncached guarantee: the warm pass must reproduce the
	// reference pass's results (same rows, aggregates, and objects produced
	// per query); any divergence on a query both passes completed is a
	// cache-soundness bug worth failing on. Queries where either pass timed
	// out are reported but exempt from the strict comparison — see
	// resultDivergence.
	ref := results[0].Results[passes[0].opt.Name()]
	warm := results[2].Results[passes[2].opt.Name()]
	truncated, err := resultDivergence(ref, warm, "warm")
	if err != nil {
		return err
	}
	if planTimes[2] > 0 {
		fmt.Fprintf(w, "warm-over-cold plan-time speedup: %.1fx; warm pass reproduced the uncached results exactly\n",
			float64(planTimes[1])/float64(planTimes[2]))
	}
	if truncated > 0 {
		fmt.Fprintf(w, "%d of %d queries timed out in at least one pass (deadline-truncated, exempt from the comparison)\n",
			truncated, len(ref))
	}
	fmt.Fprintf(w, "cache: %d entries, %d evictions\n", cache.Stats().Entries, cache.Stats().Evictions)
	return nil
}

// resultDivergence compares two passes over the same query list that are
// supposed to be execution-equivalent (uncached vs warm-cached, streaming vs
// materialized) and returns an error naming the first query whose rows,
// aggregate value, or objects produced differ. Queries where either pass
// timed out are exempt and counted in truncated instead: a deadline-stopped
// run's accounting measures how far the wall clock let it get, not which
// plans it picked — e.g. a warm cache pass skips MCTS almost entirely, so
// within the same deadline it executes more rounds than the uncached
// reference and legitimately reports a larger Produced for a query neither
// pass finished. Comparing those numbers is comparing clock noise.
func resultDivergence(ref, other []QueryResult, label string) (truncated int, err error) {
	if len(ref) != len(other) {
		return 0, fmt.Errorf("result divergence: %d reference queries vs %d %s", len(ref), len(other), label)
	}
	for i := range ref {
		if ref[i].TimedOut || other[i].TimedOut {
			truncated++
			continue
		}
		if other[i].Rows != ref[i].Rows || other[i].Value != ref[i].Value || other[i].Produced != ref[i].Produced {
			return truncated, fmt.Errorf("%s pass diverged on %s: rows/value/produced %d/%g/%g vs %d/%g/%g",
				label, ref[i].Query, other[i].Rows, other[i].Value, other[i].Produced,
				ref[i].Rows, ref[i].Value, ref[i].Produced)
		}
	}
	return truncated, nil
}

// MemoryStudy contrasts streaming batch execution against full
// materialization where the contrast is actually measurable: deterministic
// greedy left-deep plans over TPC-H at 50× the campaign scale factor, plus a
// synthetic fan-out join whose intermediate dwarfs its inputs. Left-deep
// trees put every intermediate on the probe (streamed) side, so the
// materialized engine retains whole intermediates between operators while
// the streaming engine holds one batch at a time; hash-join builds — always
// the right child, a base table here — cost the same in both modes. The
// study drives the engine directly rather than through Monsoon: MCTS
// allocations and wall-clock deadline truncation both add nondeterministic
// noise of the same magnitude as the effect under measurement (the only
// budget that can truncate here is the deterministic tuple cap, so the two
// modes always do identical work).
//
// Peak-MB is the peak heap (runtime.MemStats.HeapAlloc) the engine's
// sampler observed while the tree drained — batch boundaries plus a 2ms
// background ticker, surfaced as monsoon.exec.peak_bytes. GOGC is pinned to
// 20 for the duration of the study (restored on return): at the default 100
// the collector lets the heap double between cycles, and that slack —
// hundreds of MB at this scale — swamps the live-set difference being
// measured. The two modes must produce identical results — the
// streaming≡materialized guarantee — validated with the same
// truncation-aware comparison the plan cache study uses.
func (r *Runner) MemoryStudy(w io.Writer) error {
	sc := r.Scale
	prevGC := debug.SetGCPercent(20)
	defer debug.SetGCPercent(prevGC)

	sf := sc.TPCHSF * 50
	r.log("MemoryStudy: generating TPC-H (SF %.4g)...", sf)
	cat := sc.shardCat(tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: sc.Seed}))
	type job struct {
		name string
		cat  *table.Catalog
		q    *query.Query
		tree *plan.Node
	}
	var jobs []job
	for _, q := range tpch.Queries() {
		st := stats.New()
		engine.New(cat).SeedBaseStats(q, st)
		tree, err := opt.GreedyPlan(q, st)
		if err != nil {
			return fmt.Errorf("memory study: greedy plan for %s: %w", q.Name, err)
		}
		jobs = append(jobs, job{q.Name, cat, q, tree})
	}

	// GC pacing adds run-to-run noise on top of the true live-set peak —
	// slack only ever inflates the observation — so each (query, mode) pair
	// runs three times and reports the minimum, the tightest estimate of
	// what the mode actually needs resident.
	const reps = 3
	fmt.Fprintf(w, "Memory study: peak engine heap, streaming (batch 4096) vs full materialization\n")
	fmt.Fprintf(w, "TPC-H at 50x campaign scale (SF %.4g) + fan-out join; greedy left-deep plans, serial, GOGC=20, min of %d runs\n", sf, reps)
	fmt.Fprintf(w, "%-10s %-42s %-9s %-11s %-9s %-8s\n", "Query", "Plan", "Rows", "Stream-MB", "Mat-MB", "Δ")
	const mb = 1 << 20
	modes := []int{4096, -1} // streaming first, materialized second
	byMode := make([][]QueryResult, len(modes))
	var maxMB, sumMB [2]float64
	nJobs := len(jobs) + 1
	runJob := func(j job) error {
		var peaks [2]float64
		var rows [2]string
		for mi, batch := range modes {
			for rep := 0; rep < reps; rep++ {
				// A fresh collection before each run keeps one run's garbage
				// from inflating the next one's observed peak.
				runtime.GC()
				start := time.Now()
				eng := newEngine(j.cat, 1, batch)
				eng.Metrics = obs.NewRegistry()
				b := &engine.Budget{MaxTuples: 4 * sc.MaxTuples, Deadline: start.Add(10 * sc.Timeout)}
				rel, res, err := eng.ExecTree(j.q, j.tree, b)
				out := Outcome{PeakBytes: res.PeakBytes}
				if err == nil {
					out.Rows = rel.Count()
					out.Value, err = engine.FinalAggregate(j.q, rel)
				}
				out = finish(start, b, err, out)
				if out.Err != nil {
					return fmt.Errorf("memory study: %s batch %d: %w", j.name, batch, out.Err)
				}
				if rep == 0 {
					byMode[mi] = append(byMode[mi], QueryResult{Query: j.name, Outcome: out})
					peaks[mi] = out.PeakBytes / mb
					rows[mi] = fmt.Sprintf("%d", out.Rows)
					if out.TimedOut {
						rows[mi] = "TO"
					}
				} else if p := out.PeakBytes / mb; p < peaks[mi] {
					peaks[mi] = p
				}
			}
			sumMB[mi] += peaks[mi]
			if peaks[mi] > maxMB[mi] {
				maxMB[mi] = peaks[mi]
			}
		}
		delta := 100 * (peaks[0] - peaks[1]) / peaks[1]
		fmt.Fprintf(w, "%-10s %-42s %-9s %-11.1f %-9.1f %+.1f%%\n",
			j.name, j.tree, rows[0], peaks[0], peaks[1], delta)
		return nil
	}
	for _, j := range jobs {
		if err := runJob(j); err != nil {
			return err
		}
	}
	// The fan-out fixture runs last, built only after the TPC-H catalog is
	// released: anything held live during a run inflates the GC pacer's
	// allowance for it and smears the per-query peaks.
	jobs, cat = nil, nil
	runtime.GC()
	fq, fcat, ftree := fanoutFixture(sf)
	if err := runJob(job{fq.Name, fcat, fq, ftree}); err != nil {
		return err
	}
	n := float64(nJobs)
	fmt.Fprintf(w, "%-10s %-42s %-9s %-11.1f %-9.1f %+.1f%%\n",
		"max", "", "", maxMB[0], maxMB[1], 100*(maxMB[0]-maxMB[1])/maxMB[1])
	fmt.Fprintf(w, "%-10s %-42s %-9s %-11.1f %-9.1f %+.1f%%\n",
		"mean", "", "", sumMB[0]/n, sumMB[1]/n, 100*(sumMB[0]-sumMB[1])/(sumMB[1]))
	truncated, err := resultDivergence(byMode[1], byMode[0], "streaming")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "streaming reproduced the materialized results exactly")
	if truncated > 0 {
		fmt.Fprintf(w, " (%d of %d queries tuple-budget-truncated, exempt)", truncated, nJobs)
	}
	fmt.Fprintln(w)
	return nil
}

// fanoutFixture builds the memory study's adversarial workload: a fan-out
// equijoin whose intermediate (10 rows per key on both sides → 10n rows)
// dwarfs its inputs, followed by a 1%-selective probe into a 10-row table.
// The left-deep tree streams that intermediate straight into the second
// join's probe, so the streaming engine holds one batch of it while the
// materialized engine retains all 10n rows — the OTT blow-up shape reduced
// to its essentials. Sized off the TPC-H study scale factor so every
// campaign scale stays proportionate.
func fanoutFixture(sf float64) (*query.Query, *table.Catalog, *plan.Node) {
	n := int(2.5e6 * sf)
	if n < 1000 {
		n = 1000
	}
	keys := n / 10
	cat := table.NewCatalog()
	bs := table.NewSchema(
		table.Column{Table: "BIG", Name: "a", Kind: value.KindInt},
		table.Column{Table: "BIG", Name: "b", Kind: value.KindInt},
	)
	bb := table.NewBuilder("BIG", bs)
	for i := 0; i < n; i++ {
		bb.Add(value.Int(int64(i%keys)), value.Int(int64(i%1000)))
	}
	cat.Put(bb.Build())
	fs := table.NewSchema(table.Column{Table: "FAN", Name: "k", Kind: value.KindInt})
	fb := table.NewBuilder("FAN", fs)
	for i := 0; i < n; i++ {
		fb.Add(value.Int(int64(i % keys)))
	}
	cat.Put(fb.Build())
	ts := table.NewSchema(table.Column{Table: "TT", Name: "t", Kind: value.KindInt})
	tb := table.NewBuilder("TT", ts)
	for i := 0; i < 10; i++ {
		tb.Add(value.Int(int64(i)))
	}
	cat.Put(tb.Build())
	q := query.NewBuilder("fanout").
		Rel("big", "BIG").Rel("fan", "FAN").Rel("tt", "TT").
		Join(expr.Identity("big.a"), expr.Identity("fan.k")).
		Join(expr.Identity("big.b"), expr.Identity("tt.t")).
		MustBuild()
	tree := plan.NewJoin(
		plan.NewJoin(plan.NewLeaf(query.NewAliasSet("big")), plan.NewLeaf(query.NewAliasSet("fan"))),
		plan.NewLeaf(query.NewAliasSet("tt")))
	return q, cat, tree
}
