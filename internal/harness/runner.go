package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"monsoon/internal/randx"
)

// QueryResult pairs a query name with its outcome for one option.
type QueryResult struct {
	Query string
	Outcome
}

// BenchResult holds one benchmark's outcomes for several options, in suite
// order.
type BenchResult struct {
	Options []Option
	Results map[string][]QueryResult // option name → per-query results
	Timeout time.Duration
}

// RunBenchmark executes every option over every query. Queries run
// sequentially and deterministically: each (option, query) pair derives its
// own seed. Errors that are not budget overruns propagate — they indicate
// bugs, not slow queries.
func RunBenchmark(specs []QuerySpec, options []Option, timeout time.Duration,
	maxTuples float64, seed int64, progress io.Writer) (*BenchResult, error) {
	br := &BenchResult{Options: options, Results: map[string][]QueryResult{}, Timeout: timeout}
	for _, o := range options {
		for qi, spec := range specs {
			qseed := randx.Derive(seed, o.Name()+"/"+spec.Q.Name)
			out := o.Run(spec, timeout, maxTuples, qseed)
			if out.Err != nil {
				return br, fmt.Errorf("harness: %s on %s: %w", o.Name(), spec.Q.Name, out.Err)
			}
			br.Results[o.Name()] = append(br.Results[o.Name()], QueryResult{Query: spec.Q.Name, Outcome: out})
			if progress != nil {
				status := fmtDur(out.Time)
				if out.TimedOut {
					status = "TO"
				}
				fmt.Fprintf(progress, "  [%s] %s (%d/%d): %s\n", o.Name(), spec.Q.Name, qi+1, len(specs), status)
			}
		}
	}
	return br, nil
}

// Agg is one aggregate row: timeout count, mean, median, max.
type Agg struct {
	TO     int
	Mean   time.Duration // valid when TO == 0
	Median time.Duration // TO entries enter as the timeout value
	Max    time.Duration // reported as TO when any query timed out
	HasTO  bool
}

// Aggregate computes the paper's TO/Mean/Median/Max row. Timed-out queries
// contribute the timeout value to the median (as the paper's "median 1200"
// rows do) and invalidate the mean (reported N/A).
func Aggregate(rs []QueryResult, timeout time.Duration) Agg {
	var a Agg
	times := make([]time.Duration, 0, len(rs))
	var sum time.Duration
	for _, r := range rs {
		t := r.Time
		if r.TimedOut {
			a.TO++
			if timeout > 0 {
				t = timeout
			}
		}
		times = append(times, t)
		sum += t
	}
	a.HasTO = a.TO > 0
	if len(times) == 0 {
		return a
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	a.Median = times[len(times)/2]
	if len(times)%2 == 0 {
		a.Median = (times[len(times)/2-1] + times[len(times)/2]) / 2
	}
	a.Max = times[len(times)-1]
	if a.TO == 0 {
		a.Mean = sum / time.Duration(len(times))
	}
	return a
}

// RelativeBuckets computes Table 4's rows: the share of queries whose time is
// <90%, within [90%,110%), or >110% of the baseline option's time on the same
// query. A timed-out query lands in the >1.1 bucket.
func RelativeBuckets(rs, baseline []QueryResult) (below, within, above float64) {
	base := map[string]QueryResult{}
	for _, b := range baseline {
		base[b.Query] = b
	}
	n := 0
	var lo, mid, hi int
	for _, r := range rs {
		b, ok := base[r.Query]
		if !ok || b.TimedOut || b.Time == 0 {
			continue
		}
		n++
		if r.TimedOut {
			hi++
			continue
		}
		ratio := float64(r.Time) / float64(b.Time)
		switch {
		case ratio < 0.9:
			lo++
		case ratio < 1.1:
			mid++
		default:
			hi++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return 100 * float64(lo) / float64(n), 100 * float64(mid) / float64(n), 100 * float64(hi) / float64(n)
}

// TopExpensive returns the names of the k queries with the largest baseline
// times (Table 5's "20 most expensive" selection).
func TopExpensive(baseline []QueryResult, k int) map[string]bool {
	sorted := append([]QueryResult(nil), baseline...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time > sorted[j].Time })
	if k > len(sorted) {
		k = len(sorted)
	}
	out := map[string]bool{}
	for _, r := range sorted[:k] {
		out[r.Query] = true
	}
	return out
}

// Filter keeps only the named queries.
func Filter(rs []QueryResult, keep map[string]bool) []QueryResult {
	var out []QueryResult
	for _, r := range rs {
		if keep[r.Query] {
			out = append(out, r)
		}
	}
	return out
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtAgg(a Agg, timeout time.Duration) (mean, median, max string) {
	if a.HasTO {
		mean = "N/A"
	} else {
		mean = fmtDur(a.Mean)
	}
	median = fmtDur(a.Median)
	if a.HasTO && a.Max >= timeout && timeout > 0 {
		max = "TO"
	} else {
		max = fmtDur(a.Max)
	}
	return
}

// qerrCols pools the per-run join q-error summaries of one option's results
// into a campaign-wide geometric mean, maximum, and miss count. Each run
// contributes its geometric mean weighted by the number of finite q-errors
// behind it (recovering the pooled log-sum), so queries with more joins count
// proportionally; unboundedly wrong estimates (an estimated-nonempty join
// that came back empty, or vice versa) are tallied in the miss column instead
// of rendering the aggregates as "inf". Options that record no estimates
// render "-".
func qerrCols(rs []QueryResult) (geo, max, miss string) {
	logSum, mx := 0.0, 0.0
	n, misses := 0, 0
	any := false
	for _, r := range rs {
		if r.QErrJoins == 0 {
			continue
		}
		any = true
		misses += r.QErrMisses
		if fin := r.QErrJoins - r.QErrMisses; fin > 0 {
			logSum += math.Log(r.QErrGeo) * float64(fin)
			n += fin
		}
		if r.QErrMax > mx {
			mx = r.QErrMax
		}
	}
	if !any {
		return "-", "-", "-"
	}
	geo, max = "-", "-"
	if n > 0 {
		geo = fmt.Sprintf("%.2f", math.Exp(logSum/float64(n)))
		max = fmt.Sprintf("%.3g", mx)
	}
	return geo, max, fmt.Sprintf("%d", misses)
}

// geoMeanProduced reports the geometric mean of tuples produced — a
// hardware-independent companion metric printed under each table so the
// relative shapes survive machines with different absolute speeds.
func geoMeanProduced(rs []QueryResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, r := range rs {
		logSum += math.Log(r.Produced + 1)
	}
	return math.Exp(logSum / float64(len(rs)))
}
