package harness

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"monsoon/internal/obs"
	"monsoon/internal/obs/tracefile"
)

// updateSpans rewrites the span-count baseline from the current run instead
// of diffing against it:
//
//	go test ./internal/harness -run SpanCountBaseline -update-spans
var updateSpans = flag.Bool("update-spans", false,
	"rewrite testdata/span_counts_small.jsonl from the current run")

const spanBaselineFile = "testdata/span_counts_small.jsonl"

// spanCountRecord is one line of the JSONL baseline: how many spans of one
// operator kind the reference workload emits.
type spanCountRecord struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// spanCountWorkload runs Runner.TraceCorpus — the same workload CI records
// with `monsoon-bench -exp tracecorpus` — at Small scale with a span
// collector attached and tallies spans per operator kind.
func spanCountWorkload(t *testing.T) map[string]int {
	t.Helper()
	col := &obs.Collector{}
	r := &Runner{Scale: Small(), Sink: col}
	if err := r.TraceCorpus(io.Discard); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, sp := range col.Spans {
		if sp.Kind == obs.KWorker {
			// Worker fan-out follows GOMAXPROCS, so KWorker counts are the
			// one machine-dependent quantity in the stream; the baseline
			// (like monsoon-trace diff) excludes them.
			continue
		}
		counts[sp.Kind]++
	}
	return counts
}

// TestSpanCountBaseline is the trace-regression corpus gate (ROADMAP): the
// reference workload's span counts per operator kind are pinned in
// testdata/span_counts_small.jsonl, and any drift — an operator silently
// planned differently, an instrumentation site dropped, an extra EXECUTE
// round — fails with a per-kind diff. Re-pin consciously with -update-spans
// after verifying the plan change is intended.
func TestSpanCountBaseline(t *testing.T) {
	counts := spanCountWorkload(t)

	if *updateSpans {
		recs := make([]spanCountRecord, 0, len(counts))
		for k, n := range counts {
			recs = append(recs, spanCountRecord{Kind: k, Count: n})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Kind < recs[j].Kind })
		if err := os.MkdirAll(filepath.Dir(spanBaselineFile), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(spanBaselineFile)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %s (%d kinds)", spanBaselineFile, len(recs))
		return
	}

	// The comparison runs through tracefile.Diff — the same logic behind
	// `monsoon-trace diff` — so the CI gate and the offline tool can never
	// disagree about what counts as drift.
	want, err := tracefile.ReadFile(spanBaselineFile)
	if err != nil {
		t.Fatalf("no baseline (%v); record one with -update-spans", err)
	}
	got := &tracefile.Trace{Counts: counts, CountsOnly: true}
	drift := tracefile.Diff(got, want, tracefile.DiffOptions{})
	for _, d := range drift {
		t.Errorf("%s (got vs baseline)", d)
	}
	if len(drift) > 0 {
		t.Log("plan or instrumentation drift; if intended, re-pin with -update-spans")
	}
}
