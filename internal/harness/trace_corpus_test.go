package harness

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/obs"
)

// updateSpans rewrites the span-count baseline from the current run instead
// of diffing against it:
//
//	go test ./internal/harness -run SpanCountBaseline -update-spans
var updateSpans = flag.Bool("update-spans", false,
	"rewrite testdata/span_counts_small.jsonl from the current run")

const spanBaselineFile = "testdata/span_counts_small.jsonl"

// spanCountRecord is one line of the JSONL baseline: how many spans of one
// operator kind the reference workload emits.
type spanCountRecord struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// spanCountWorkload runs the Monsoon leg of the small campaign's TPC-H suite
// (the workload recorded in campaign_small.txt) with a span collector
// attached and tallies spans per operator kind. The run is host-independent
// by construction: no wall-clock deadline (a slow machine must not change
// how far a query gets), the campaign's tuple budget, and the campaign seed,
// so the span stream — and with it every count — is deterministic.
func spanCountWorkload(t *testing.T) map[string]int {
	t.Helper()
	sc := Small()
	cat := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed})
	counts := make(map[string]int)
	for _, q := range tpch.Queries() {
		col := &obs.Collector{}
		opt := Monsoon{Iterations: sc.MCTSIterations, Sink: col}
		out := opt.Run(QuerySpec{Q: q, Cat: cat}, 0, sc.MaxTuples, sc.Seed)
		if out.Err != nil {
			t.Fatalf("%s: %v", q.Name, out.Err)
		}
		if out.TimedOut {
			t.Fatalf("%s: tuple budget tripped; the baseline workload must complete", q.Name)
		}
		for _, sp := range col.Spans {
			counts[sp.Kind]++
		}
	}
	return counts
}

// TestSpanCountBaseline is the trace-regression corpus gate (ROADMAP): the
// reference workload's span counts per operator kind are pinned in
// testdata/span_counts_small.jsonl, and any drift — an operator silently
// planned differently, an instrumentation site dropped, an extra EXECUTE
// round — fails with a per-kind diff. Re-pin consciously with -update-spans
// after verifying the plan change is intended.
func TestSpanCountBaseline(t *testing.T) {
	counts := spanCountWorkload(t)

	if *updateSpans {
		recs := make([]spanCountRecord, 0, len(counts))
		for k, n := range counts {
			recs = append(recs, spanCountRecord{Kind: k, Count: n})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Kind < recs[j].Kind })
		if err := os.MkdirAll(filepath.Dir(spanBaselineFile), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(spanBaselineFile)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %s (%d kinds)", spanBaselineFile, len(recs))
		return
	}

	f, err := os.Open(spanBaselineFile)
	if err != nil {
		t.Fatalf("no baseline (%v); record one with -update-spans", err)
	}
	defer f.Close()
	want := make(map[string]int)
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		var r spanCountRecord
		if err := json.Unmarshal(scan.Bytes(), &r); err != nil {
			t.Fatalf("corrupt baseline line %q: %v", scan.Text(), err)
		}
		want[r.Kind] = r.Count
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}

	kinds := make(map[string]bool, len(counts)+len(want))
	for k := range counts {
		kinds[k] = true
	}
	for k := range want {
		kinds[k] = true
	}
	var drift []string
	for k := range kinds {
		if counts[k] != want[k] {
			drift = append(drift, fmt.Sprintf("%s: got %d spans, baseline %d", k, counts[k], want[k]))
		}
	}
	sort.Strings(drift)
	for _, d := range drift {
		t.Error(d)
	}
	if len(drift) > 0 {
		t.Log("plan or instrumentation drift; if intended, re-pin with -update-spans")
	}
}
