package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"monsoon/internal/plan"
	"monsoon/internal/query"
)

func TestEstimatesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Tiny()
	sc.IMDBQueryCount = 5
	sc.Timeout = 2 * time.Second
	r := &Runner{Scale: sc}
	var buf bytes.Buffer
	if err := r.Estimates(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"q-error", "Full stats", "Defaults", "p50", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("estimates output missing %q:\n%s", want, out)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(xs, 0.5); q != 6 {
		t.Errorf("p50 = %v", q)
	}
	if q := quantile(xs, 0.99); q != 10 {
		t.Errorf("p99 = %v", q)
	}
	if q := quantile([]float64{42}, 0.5); q != 42 {
		t.Errorf("singleton quantile = %v", q)
	}
}

func TestNodeFor(t *testing.T) {
	tree := plan.NewJoin(plan.NewJoin(
		plan.NewLeaf(query.NewAliasSet("a")), plan.NewLeaf(query.NewAliasSet("b"))),
		plan.NewLeaf(query.NewAliasSet("c")))
	if n := nodeFor(tree, "a+b"); n == nil || n.Key() != "a+b" {
		t.Error("nodeFor missed an inner node")
	}
	if n := nodeFor(tree, "b"); n == nil || !n.IsLeaf() {
		t.Error("nodeFor missed a leaf")
	}
	if nodeFor(tree, "zz") != nil {
		t.Error("nodeFor invented a node")
	}
}
