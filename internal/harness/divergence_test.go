package harness

import (
	"strings"
	"testing"
)

func qr(name string, rows int, value, produced float64, timedOut bool) QueryResult {
	return QueryResult{Query: name, Outcome: Outcome{Rows: rows, Value: value, Produced: produced, TimedOut: timedOut}}
}

// TestResultDivergence pins the comparison the plan-cache and memory studies
// share: strict rows/value/produced equality for completed queries, with
// deadline-truncated queries exempt — a pass that times out did partial work
// whose extent is wall-clock-dependent, so its Produced is not comparable
// (the imdb-q02 "divergence" at small scale was exactly this).
func TestResultDivergence(t *testing.T) {
	ref := []QueryResult{
		qr("q1", 10, 1.5, 100, false),
		qr("q2", 0, 0, 4.1e6, true), // truncated in the reference pass
		qr("q3", 3, 7, 50, false),
	}

	t.Run("identical", func(t *testing.T) {
		truncated, err := resultDivergence(ref, ref, "warm")
		if err != nil || truncated != 1 {
			t.Errorf("truncated/err = %d/%v, want 1/nil", truncated, err)
		}
	})

	t.Run("timeout-exempt", func(t *testing.T) {
		// The other pass timed out on q2 with a different Produced, and on q3
		// too: both must be exempt, not divergences.
		other := []QueryResult{
			qr("q1", 10, 1.5, 100, false),
			qr("q2", 0, 0, 7.0e6, true),
			qr("q3", 0, 0, 20, true),
		}
		truncated, err := resultDivergence(ref, other, "warm")
		if err != nil || truncated != 2 {
			t.Errorf("truncated/err = %d/%v, want 2/nil", truncated, err)
		}
	})

	t.Run("divergence-detected", func(t *testing.T) {
		other := []QueryResult{
			qr("q1", 10, 1.5, 100, false),
			qr("q2", 0, 0, 4.1e6, true),
			qr("q3", 3, 7, 51, false), // completed but produced differs
		}
		_, err := resultDivergence(ref, other, "warm")
		if err == nil || !strings.Contains(err.Error(), "q3") {
			t.Errorf("err = %v, want divergence on q3", err)
		}
	})

	t.Run("length-mismatch", func(t *testing.T) {
		if _, err := resultDivergence(ref, ref[:2], "warm"); err == nil {
			t.Error("length mismatch must error")
		}
	})
}
