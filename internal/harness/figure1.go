package harness

import (
	"fmt"
	"io"

	"monsoon/internal/core"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// fig1World is a faithful scaled instance of the §2.3 example. The paper's
// priors there are: d(F1,R) and d(F3,R) known with certainty, d(F2,S) and
// d(F4,T) unknown with mass on both "tiny" and "as large as the table".
// Scaled ×10 down from the paper (c(R)=10^5, c(S)=c(T)=10^3, d(F1)=d(F3)=100)
// so the walk runs in seconds:
//
//	truth: d(F2,S) = 1    → R⋈S produces 10^6 pairs (the 10× trap)
//	       d(F4,T) = 1000 → R⋈T produces 10^5 pairs (optimal first join)
func fig1World() (*table.Catalog, *query.Query, *stats.Store) {
	cat := table.NewCatalog()
	rb := table.NewBuilder("R", table.NewSchema(
		table.Column{Table: "R", Name: "a", Kind: value.KindInt},
		table.Column{Table: "R", Name: "b", Kind: value.KindInt},
	))
	for i := 0; i < 100000; i++ {
		rb.Add(value.Int(int64(i%100)), value.Int(int64(i%100)))
	}
	cat.Put(rb.Build())
	sb := table.NewBuilder("S", table.NewSchema(
		table.Column{Table: "S", Name: "k", Kind: value.KindInt}))
	for i := 0; i < 1000; i++ {
		sb.Add(value.Int(7))
	}
	cat.Put(sb.Build())
	tb := table.NewBuilder("T", table.NewSchema(
		table.Column{Table: "T", Name: "k", Kind: value.KindInt}))
	for i := 0; i < 1000; i++ {
		tb.Add(value.Int(int64(i)))
	}
	cat.Put(tb.Build())
	q := query.NewBuilder("sec23").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Join(expr.Identity("R.b"), expr.Identity("T.k")).
		Sum("R.a").
		MustBuild()
	// §2.3's "known" statistics: d(F1,R) = d(F3,R) = 100 with certainty.
	st := stats.New()
	st.SetMeasured(q.Joins[0].L.ID, "R", 100)
	st.SetMeasured(q.Joins[1].L.ID, "R", 100)
	return cat, q, st
}

// Figure1 reproduces the paper's Figure 1 as an annotated walk: it builds the
// §2.3 world above, measures the two pure plans' real costs on the engine,
// then runs the Monsoon driver — initialized, as in the paper's example, with
// the R-side statistics known — and prints every MDP action it takes in the
// real world: the Σ statistics-collection probes, what they harden, and the
// join order the optimizer then commits to.
func Figure1(w io.Writer, seed int64) error {
	fmt.Fprintln(w, "Figure 1: a real walk of the §2.3 MDP (scaled ×10 down)")
	fmt.Fprintln(w, "world: c(R)=100000, c(S)=c(T)=1000; known: d(F1,R)=d(F3,R)=100")
	fmt.Fprintln(w, "hidden: d(F2,S)=1 and d(F4,T)=1000 — Table 1's row 2, where the")
	fmt.Fprintln(w, "optimal plan is ((R⋈T)⋈S) and the blind alternative costs ~10x more")

	refCost := func(first string) float64 {
		cat, q, _ := fig1World()
		eng := engine.New(cat)
		second := map[string]string{"S": "T", "T": "S"}[first]
		tree := plan.NewJoin(plan.NewJoin(
			plan.NewLeaf(query.NewAliasSet("R")), plan.NewLeaf(query.NewAliasSet(first))),
			plan.NewLeaf(query.NewAliasSet(second)))
		_, er, err := eng.ExecTree(q, tree, &engine.Budget{})
		if err != nil {
			return -1
		}
		return er.Produced
	}
	badCost := refCost("S")
	goodCost := refCost("T")
	fmt.Fprintf(w, "reference (measured): ((R⋈S)⋈T) pays %.0f objects; ((R⋈T)⋈S) pays %.0f; a Σ probe adds 2·1000\n",
		badCost, goodCost)

	fmt.Fprintln(w, "start state: Rp={}, Re={R,S,T}, S={c(R),c(S),c(T),d(F1,R),d(F3,R)}")
	fmt.Fprintln(w, "actions taken in the real world:")
	cat, q, st := fig1World()
	eng := engine.New(cat)
	res, err := core.Run(q, eng, &engine.Budget{}, core.Config{
		Seed:       randx.Derive(seed, "figure1"),
		Iterations: 2000,
		Stats:      st,
		Trace:      func(s string) { fmt.Fprintln(w, "  "+s) },
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "terminal: %d EXECUTE rounds, %d Σ operators, %.0f objects produced (vs %.0f bold-bad / %.0f oracle)\n",
		res.Executes, res.SigmaOps, res.Produced, badCost, goodCost)
	return nil
}
