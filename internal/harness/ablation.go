package harness

import (
	"fmt"
	"io"
	"time"

	"monsoon/internal/bench/udf"
	"monsoon/internal/core"
	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/opt"
	"monsoon/internal/prior"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
)

// LEC is the least-expected-cost ablation: the same prior Monsoon uses, but
// one up-front plan with no statistics collection and no re-planning. §2.3
// argues this is the closest classical alternative — and why it falls short.
type LEC struct {
	Prior  prior.Prior
	Worlds int
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded/materialized).
	BatchSize int
}

// Name implements Option.
func (LEC) Name() string { return "LEC" }

// Run implements Option.
func (l LEC) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome {
	p := l.Prior
	if p == nil {
		p = prior.Default()
	}
	worlds := l.Worlds
	if worlds == 0 {
		worlds = 32
	}
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, l.Parallelism, l.BatchSize)
	st := stats.New()
	eng.SeedBaseStats(spec.Q, st)
	tree, err := opt.LECPlan(spec.Q, st, p, worlds, randx.New(randx.Derive(seed, "lec")))
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	rel, _, err := eng.ExecTree(spec.Q, tree, b)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	v, err := engine.FinalAggregate(spec.Q, rel)
	return finish(start, b, err, Outcome{Rows: rel.Count(), Value: v})
}

// MonsoonVariant runs Monsoon with ablation knobs exposed.
type MonsoonVariant struct {
	Label          string
	Prior          prior.Prior
	Strategy       mcts.Strategy
	Iterations     int
	UniformRollout bool
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded/materialized).
	BatchSize int
}

// Name implements Option.
func (m MonsoonVariant) Name() string { return m.Label }

// Run implements Option.
func (m MonsoonVariant) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, m.Parallelism, m.BatchSize)
	res, err := core.Run(spec.Q, eng, b, core.Config{
		Prior:          m.Prior,
		Strategy:       m.Strategy,
		Iterations:     m.Iterations,
		UniformRollout: m.UniformRollout,
		Seed:           seed,
		Parallelism:    m.Parallelism,
		BatchSize:      m.BatchSize,
	})
	out := Outcome{
		Rows: res.Rows, Value: res.Value,
		MCTSTime: res.PlanTime, SigmaTime: res.SigmaTime, ExecTime: res.ExecTime,
	}
	return finish(start, b, err, out)
}

// Ablation runs the design-choice study DESIGN.md calls out, on the UDF
// benchmark (the workload where obscured statistics matter most):
//
//   - Monsoon (UCT, greedy rollouts)   — the shipped configuration
//   - Monsoon ε-greedy                 — §5.1's alternative selection rule
//   - Monsoon uniform rollouts         — without the greedy default policy
//   - LEC                              — one-shot least-expected-cost (§2.3)
//   - Defaults                         — no prior at all
func (r *Runner) Ablation(w io.Writer) error {
	sc := r.Scale
	r.log("Ablation: generating UDF suite (titles %d, SF %.4g)...", sc.UDFTitles, sc.UDFSF)
	suite := udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed})
	var specs []QuerySpec
	for _, qc := range suite.All() {
		specs = append(specs, QuerySpec{Q: qc.Query, Cat: sc.shardCat(qc.Cat)})
	}
	bs := sc.BatchSize
	options := []Option{
		MonsoonVariant{Label: "Monsoon (UCT+greedy)", Iterations: sc.MCTSIterations, BatchSize: bs},
		MonsoonVariant{Label: "Monsoon (ε-greedy)", Strategy: mcts.EpsGreedy, Iterations: sc.MCTSIterations, BatchSize: bs},
		MonsoonVariant{Label: "Monsoon (uniform rollout)", UniformRollout: true, Iterations: sc.MCTSIterations, BatchSize: bs},
		LEC{BatchSize: bs},
		Defaults{BatchSize: bs},
	}
	br, err := RunBenchmark(specs, options, sc.Timeout, sc.MaxTuples, sc.Seed, r.Progress)
	if err != nil {
		return err
	}
	names := make([]string, len(options))
	for i, o := range options {
		names[i] = o.Name()
	}
	printAggTable(w, "Ablation: Monsoon design choices on the UDF benchmark", names, br, nil)
	fmt.Fprintln(w, "\nReading guide: ε-greedy should track UCT closely (§5.1 tried both);")
	fmt.Fprintln(w, "uniform rollouts blunt the value-of-information signal; LEC commits")
	fmt.Fprintln(w, "up-front and inherits Defaults-like tail risk despite the prior.")
	return nil
}
