package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"monsoon/internal/bench/tpch"
)

func tinySpecs(t *testing.T) []QuerySpec {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1})
	qs := tpch.Queries()
	// Three small queries keep the test quick.
	return []QuerySpec{
		{Q: qs[1], Cat: cat}, // q3
		{Q: qs[7], Cat: cat}, // q11
		{Q: qs[8], Cat: cat}, // q18
	}
}

func TestRunBenchmarkAllOptions(t *testing.T) {
	specs := tinySpecs(t)
	options := []Option{
		Postgres{}, Defaults{}, Greedy{}, OnDemand{}, Sampling{},
		Monsoon{Iterations: 100}, Skinner{},
	}
	br, err := RunBenchmark(specs, options, 5*time.Second, 5e6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All options must agree on every query's result cardinality (none
	// should time out at this scale).
	for _, spec := range specs {
		want := -1
		for _, o := range options {
			var got *QueryResult
			for i := range br.Results[o.Name()] {
				if br.Results[o.Name()][i].Query == spec.Q.Name {
					got = &br.Results[o.Name()][i]
				}
			}
			if got == nil {
				t.Fatalf("missing result for %s/%s", o.Name(), spec.Q.Name)
			}
			if got.TimedOut {
				t.Errorf("%s timed out on %s at tiny scale", o.Name(), spec.Q.Name)
				continue
			}
			if want == -1 {
				want = got.Rows
			} else if got.Rows != want {
				t.Errorf("%s on %s: rows %d, others got %d", o.Name(), spec.Q.Name, got.Rows, want)
			}
		}
	}
}

func TestAggregate(t *testing.T) {
	mk := func(secs float64, to bool) QueryResult {
		return QueryResult{Outcome: Outcome{Time: time.Duration(secs * float64(time.Second)), TimedOut: to}}
	}
	a := Aggregate([]QueryResult{mk(1, false), mk(3, false), mk(2, false)}, 10*time.Second)
	if a.TO != 0 || a.Mean != 2*time.Second || a.Median != 2*time.Second || a.Max != 3*time.Second {
		t.Errorf("aggregate wrong: %+v", a)
	}
	// A timeout invalidates the mean and enters the median at the timeout.
	a = Aggregate([]QueryResult{mk(1, false), mk(0.5, true), mk(2, false)}, 10*time.Second)
	if a.TO != 1 || !a.HasTO {
		t.Errorf("TO miscounted: %+v", a)
	}
	if a.Median != 2*time.Second {
		t.Errorf("median with TO = %v", a.Median)
	}
	if a.Max != 10*time.Second {
		t.Errorf("max with TO = %v", a.Max)
	}
	// Even count → average of middle two.
	a = Aggregate([]QueryResult{mk(1, false), mk(2, false), mk(3, false), mk(4, false)}, 0)
	if a.Median != 2500*time.Millisecond {
		t.Errorf("even median = %v", a.Median)
	}
}

func TestRelativeBuckets(t *testing.T) {
	base := []QueryResult{
		{Query: "a", Outcome: Outcome{Time: time.Second}},
		{Query: "b", Outcome: Outcome{Time: time.Second}},
		{Query: "c", Outcome: Outcome{Time: time.Second}},
		{Query: "d", Outcome: Outcome{Time: time.Second}},
	}
	rs := []QueryResult{
		{Query: "a", Outcome: Outcome{Time: 500 * time.Millisecond}}, // <0.9
		{Query: "b", Outcome: Outcome{Time: time.Second}},            // within
		{Query: "c", Outcome: Outcome{Time: 2 * time.Second}},        // >1.1
		{Query: "d", Outcome: Outcome{TimedOut: true}},               // >1.1
	}
	lo, mid, hi := RelativeBuckets(rs, base)
	if lo != 25 || mid != 25 || hi != 50 {
		t.Errorf("buckets = %v/%v/%v", lo, mid, hi)
	}
	if l, m, h := RelativeBuckets(nil, nil); l+m+h != 0 {
		t.Error("empty buckets should be zero")
	}
}

func TestTopExpensiveAndFilter(t *testing.T) {
	rs := []QueryResult{
		{Query: "a", Outcome: Outcome{Time: 3 * time.Second}},
		{Query: "b", Outcome: Outcome{Time: time.Second}},
		{Query: "c", Outcome: Outcome{Time: 2 * time.Second}},
	}
	top := TopExpensive(rs, 2)
	if !top["a"] || !top["c"] || top["b"] {
		t.Errorf("top = %v", top)
	}
	kept := Filter(rs, top)
	if len(kept) != 2 {
		t.Errorf("filter kept %d", len(kept))
	}
	if len(TopExpensive(rs, 99)) != 3 {
		t.Error("k > len should keep all")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"((R⋈T)⋈S)", "((R⋈S)⋈T)", "Both", "1e+07", "1e+06"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	var buf bytes.Buffer
	Figure2(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("Figure 2 has %d lines, want 100", len(lines))
	}
	if !strings.HasPrefix(lines[0], "x,Uniform,Increasing,Decreasing,U-Shaped,Low Biased") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 6 {
			t.Fatalf("bad row %q", l)
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	tiny, small, medium := Tiny(), Small(), Medium()
	if !(tiny.TPCHSF < small.TPCHSF && small.TPCHSF < medium.TPCHSF) {
		t.Error("TPCH scale factors not increasing")
	}
	if !(tiny.Timeout <= small.Timeout && small.Timeout <= medium.Timeout) {
		t.Error("timeouts not increasing")
	}
	for _, sc := range []Scale{tiny, small, medium} {
		if sc.MCTSIterations <= 0 || sc.MaxTuples <= 0 || sc.IMDBQueryCount <= 0 {
			t.Errorf("scale %s has zero knobs", sc.Name)
		}
	}
}

// TestExperimentsEndToEnd drives every table through a micro campaign. It is
// the integration test for the whole repository: generators → optimizers →
// engine → aggregation → formatting.
func TestExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Tiny()
	sc.IMDBQueryCount = 4
	sc.MCTSIterations = 80
	sc.Timeout = 2 * time.Second
	r := &Runner{Scale: sc}
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Table4(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Table5(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Table6(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Table7(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Figure3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Table8(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8",
		"Monsoon", "SkinnerDB", "Hand-written"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q", want)
		}
	}
}
