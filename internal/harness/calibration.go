package harness

import (
	"fmt"
	"io"
	"sort"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/cost"
	"monsoon/internal/obs"
	"monsoon/internal/plancache"
)

// CalibrationReplanThreshold is the q-error at which the calibration study's
// second pass forces a mid-query replan. Eight is one log₂ statistics bucket
// past "badly wrong": small enough to catch the worst TPC-H selective-scan
// underestimates and Q-max joins, large enough that routine prior error does
// not thrash the plan cache. (Misses — one side empty — always trigger,
// regardless of the threshold; see obs.QErrorMissThreshold.)
const CalibrationReplanThreshold = 8

// CalibrationStudy closes the q-error loop on the scale's TPC-H suite:
//
//	pass 1  uncalibrated Monsoon, recording every operator span;
//	fold    the spans into a per-operator-kind cost profile (seconds per
//	        object produced) and print the learned rate table;
//	pass 2  the same suite priced with that profile, replanning armed at
//	        CalibrationReplanThreshold, through a fresh shared plan cache so
//	        a triggered replan has memoized rounds to invalidate.
//
// Both passes run without a wall-clock deadline (the comparison must be
// machine-independent; the tuple budget still applies) and with identical
// per-query seeds, so every Q-max movement is attributable to the calibrated
// cost model and the replan trigger, never to clock noise. The per-query
// table is sorted worst-first by the uncalibrated pass's Q-max — the joins
// the study targets — and the verdict column reports improvements, ties, and
// regressions honestly rather than summarizing.
func (r *Runner) CalibrationStudy(w io.Writer) error {
	sc := r.Scale
	r.log("CalibrationStudy: generating TPC-H (sf %g)...", sc.TPCHSF)
	cat := sc.shardCat(tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed}))
	var specs []QuerySpec
	for _, q := range tpch.Queries() {
		specs = append(specs, QuerySpec{Q: q, Cat: cat})
	}

	col := &obs.Collector{}
	ref := Monsoon{Iterations: sc.MCTSIterations, Parallelism: sc.Parallelism,
		BatchSize: sc.BatchSize, Metrics: r.Metrics, Sink: obs.Multi(col, r.Sink)}
	r.log("CalibrationStudy: pass 1 (uncalibrated, recording spans)...")
	refBR, err := RunBenchmark(specs, []Option{ref}, 0, sc.MaxTuples, sc.Seed, r.Progress)
	if err != nil {
		return err
	}

	cal := cost.NewCalibrator()
	cal.AddSpans(col.Spans)
	profile, err := cal.Profile()
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	fmt.Fprintln(w, "Calibration study: TPC-H suite, cost profile learned from pass 1's spans")
	fmt.Fprint(w, profile.Table())

	cache := plancache.New(0)
	calOpt := Monsoon{Iterations: sc.MCTSIterations, Parallelism: sc.Parallelism,
		BatchSize: sc.BatchSize, Metrics: r.Metrics, Sink: r.Sink,
		Cache: cache, Profile: profile, ReplanThreshold: CalibrationReplanThreshold}
	r.log("CalibrationStudy: pass 2 (calibrated, replan threshold %g)...", float64(CalibrationReplanThreshold))
	calBR, err := RunBenchmark(specs, []Option{calOpt}, 0, sc.MaxTuples, sc.Seed, r.Progress)
	if err != nil {
		return err
	}

	refRes := refBR.Results[ref.Name()]
	calRes := calBR.Results[calOpt.Name()]
	if len(refRes) != len(calRes) {
		return fmt.Errorf("calibration: %d reference queries vs %d calibrated", len(refRes), len(calRes))
	}
	order := make([]int, len(refRes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return refRes[order[a]].QErrMax > refRes[order[b]].QErrMax
	})

	fmt.Fprintf(w, "\n%-12s %-12s %-12s %-8s %-8s %-8s\n",
		"Query", "Qmax-uncal", "Qmax-cal", "Misses", "Replans", "Verdict")
	improved, tied, regressed, replans := 0, 0, 0, 0
	for _, i := range order {
		rq, cq := refRes[i], calRes[i]
		replans += cq.Replans
		verdict := "-"
		if rq.QErrJoins > 0 || cq.QErrJoins > 0 {
			switch {
			case cq.QErrMax < rq.QErrMax:
				improved++
				verdict = "improved"
			case cq.QErrMax == rq.QErrMax:
				tied++
				verdict = "tie"
			default:
				regressed++
				verdict = "regressed"
			}
		}
		fmt.Fprintf(w, "%-12s %-12.3g %-12.3g %-8s %-8d %-8s\n",
			rq.Query, rq.QErrMax, cq.QErrMax,
			fmt.Sprintf("%d/%d", rq.QErrMisses, cq.QErrMisses), cq.Replans, verdict)
	}
	fmt.Fprintf(w, "verdicts: %d improved, %d tied, %d regressed (Q-max per query, uncalibrated → calibrated)\n",
		improved, tied, regressed)
	cs := cache.Stats()
	fmt.Fprintf(w, "replans: %d triggered across the suite (threshold %g); cache: %d hits, %d misses, %d entries\n",
		replans, float64(CalibrationReplanThreshold), cs.Hits, cs.Misses, cs.Entries)
	return nil
}
