package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/mcts"
)

func TestLECOptionRuns(t *testing.T) {
	specs := tinySpecs(t)
	br, err := RunBenchmark(specs, []Option{LEC{Worlds: 8}, Defaults{}}, 5*time.Second, 5e6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	lec, def := br.Results["LEC"], br.Results["Defaults"]
	if len(lec) != len(specs) {
		t.Fatalf("LEC ran %d queries", len(lec))
	}
	for i := range lec {
		if lec[i].TimedOut || def[i].TimedOut {
			continue
		}
		if lec[i].Rows != def[i].Rows {
			t.Errorf("%s: LEC rows %d != Defaults rows %d", lec[i].Query, lec[i].Rows, def[i].Rows)
		}
	}
}

func TestMonsoonVariantKnobs(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1})
	spec := QuerySpec{Q: tpch.Queries()[7], Cat: cat} // q11: 3 tables
	for _, v := range []MonsoonVariant{
		{Label: "uct", Iterations: 60},
		{Label: "eps", Strategy: mcts.EpsGreedy, Iterations: 60},
		{Label: "uniform", UniformRollout: true, Iterations: 60},
	} {
		out := v.Run(spec, 5*time.Second, 5e6, 3)
		if out.Err != nil {
			t.Fatalf("%s: %v", v.Label, out.Err)
		}
		if out.TimedOut {
			t.Errorf("%s timed out at tiny scale", v.Label)
		}
		if v.Name() != v.Label {
			t.Errorf("Name() = %q", v.Name())
		}
	}
}

func TestAblationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Tiny()
	sc.UDFTitles = 100
	sc.UDFSF = 0.001
	sc.MCTSIterations = 60
	sc.Timeout = 2 * time.Second
	r := &Runner{Scale: sc}
	var buf bytes.Buffer
	if err := r.Ablation(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablation", "Monsoon (UCT+greedy)", "Monsoon (ε-greedy)",
		"Monsoon (uniform rollout)", "LEC", "Defaults"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestFigure1Walk(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXECUTE", "terminal", "reference (measured)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output missing %q:\n%s", want, out)
		}
	}
	// Parse "… Σ operators, P objects produced (vs B bold-bad / G oracle)"
	// and require the walk to land well below the bold-bad plan's cost.
	i := strings.LastIndex(out, "Σ operators, ")
	if i < 0 {
		t.Fatal("summary line missing")
	}
	var produced, bad, oracle float64
	if _, err := fmt.Sscanf(out[i+len("Σ operators, "):],
		"%f objects produced (vs %f bold-bad / %f oracle)", &produced, &bad, &oracle); err != nil {
		t.Fatalf("cannot parse summary: %v", err)
	}
	// The final result dominates both plans' cost here, so the meaningful
	// check is closeness to the oracle: the walk (including any Σ probes)
	// must land within 15% of the oracle and strictly below the bad plan.
	if produced > oracle*1.15 || produced >= bad {
		t.Errorf("walk cost %v not near oracle %v (bad plan %v)", produced, oracle, bad)
	}
}
