package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"monsoon/internal/bench/imdb"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/opt"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
)

// Estimates is an extension experiment in the spirit of Leis et al.'s "How
// Good Are Query Optimizers, Really?": for every IMDB query it executes the
// full-statistics plan, records the *true* cardinality of every intermediate
// node, re-estimates each under the statistics each option would have had at
// optimization time, and reports q-error quantiles (q = max(est/true,
// true/est)). It quantifies *why* the Table 3 options behave as they do:
// Defaults' constant rule and Sampling's block estimates degrade on the
// correlated data exactly as the paper's narrative expects.
func (r *Runner) Estimates(w io.Writer) error {
	sc := r.Scale
	r.log("Estimates: generating IMDB (titles %d, bootstrap %d)...", sc.IMDBTitles, sc.IMDBBootstrap)
	cat := sc.shardCat(imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed}))
	queries := imdb.Queries(sc.IMDBQueryCount, sc.Seed)

	type source struct {
		name string
		mk   func(q *query.Query, eng *engine.Engine) (*stats.Store, error)
	}
	sources := []source{
		{"Full stats", func(q *query.Query, _ *engine.Engine) (*stats.Store, error) {
			return opt.CollectFullStats(q, cat), nil
		}},
		{"On Demand", func(q *query.Query, eng *engine.Engine) (*stats.Store, error) {
			return opt.CollectOnDemand(q, eng, &engine.Budget{})
		}},
		{"Sampling", func(q *query.Query, eng *engine.Engine) (*stats.Store, error) {
			return opt.CollectSampling(q, eng, &engine.Budget{}, opt.SamplingConfig{},
				randx.New(randx.Derive(sc.Seed, "est-sampling")))
		}},
		{"Defaults", func(q *query.Query, eng *engine.Engine) (*stats.Store, error) {
			st := stats.New()
			eng.SeedBaseStats(q, st)
			return st, nil
		}},
	}

	qerrs := map[string][]float64{}
	for _, q := range queries {
		eng := engine.New(cat)
		fullSt := opt.CollectFullStats(q, cat)
		dv := &cost.Deriver{Q: q, St: fullSt.Clone(), Miss: cost.DefaultMiss(0.1)}
		tree, err := opt.BestPlan(q, dv)
		if err != nil {
			return err
		}
		_, er, err := eng.ExecTree(q, tree, &engine.Budget{MaxTuples: sc.MaxTuples})
		if err != nil {
			continue // a genuinely huge query: skip, we need truths
		}
		truths := er.Counts
		for _, src := range sources {
			st, err := src.mk(q, engine.New(cat))
			if err != nil {
				return err
			}
			est := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
			for key, truth := range truths {
				if truth <= 0 {
					continue
				}
				node := nodeFor(tree, key)
				if node == nil {
					continue
				}
				e := est.NodeCount(node)
				if e <= 0 {
					e = 1
				}
				qerrs[src.name] = append(qerrs[src.name], math.Max(e/truth, truth/e))
			}
		}
	}

	fmt.Fprintln(w, "Estimate quality: q-error of intermediate-cardinality estimates on IMDB")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s %8s\n", "Source", "p50", "p75", "p90", "p95", "max")
	order := []string{"Full stats", "On Demand", "Sampling", "Defaults"}
	for _, name := range order {
		xs := qerrs[name]
		if len(xs) == 0 {
			continue
		}
		sort.Float64s(xs)
		fmt.Fprintf(w, "%-12s %8.2f %8.2f %8.2f %8.2f %8.1f\n", name,
			quantile(xs, 0.50), quantile(xs, 0.75), quantile(xs, 0.90),
			quantile(xs, 0.95), xs[len(xs)-1])
	}
	fmt.Fprintln(w, "\n(q-error = max(est/true, true/est) per executed plan node; Full stats")
	fmt.Fprintln(w, "errs only through correlations, the others add estimation error on top.)")
	return nil
}

func quantile(sorted []float64, p float64) float64 {
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// nodeFor finds the subtree whose result key matches.
func nodeFor(tree *plan.Node, key string) *plan.Node {
	if tree.Key() == key {
		return tree
	}
	if tree.IsLeaf() {
		return nil
	}
	if n := nodeFor(tree.Left, key); n != nil {
		return n
	}
	return nodeFor(tree.Right, key)
}
