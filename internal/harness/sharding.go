package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"monsoon/internal/bench/tpch"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
)

// ShardingJSON is the machine-readable artifact the sharding study writes
// (BENCH_sharding.json) so CI can assert on the measurements without parsing
// the text table.
type ShardingJSON struct {
	Scale  string          `json:"scale"`
	SF     float64         `json:"sf"`
	Reps   int             `json:"reps"`
	Shards []int           `json:"shards"`
	Shapes []ShardingShape `json:"shapes"`
}

// ShardingShape is one join shape's measurements across shard counts.
type ShardingShape struct {
	Name string        `json:"name"`
	Plan string        `json:"plan"`
	Runs []ShardingRun `json:"runs"`
}

// ShardingRun is one (shape, shard count) cell: the min-of-reps wall time
// plus the run's result size and exchange telemetry.
type ShardingRun struct {
	ShardCount     int     `json:"shard_count"`
	Seconds        float64 `json:"seconds"`
	Rows           int     `json:"rows"`
	LocalJoins     int64   `json:"exchange_joins_local"`
	ReshuffleJoins int64   `json:"exchange_joins_reshuffle"`
	MovedRows      int64   `json:"exchange_rows"`
}

// shardingShapes builds the two fixed join shapes the study times. Both are
// two-table TPC-H hash joins with the build side on the right, differing only
// in whether the build's join key is the column the layout shards on:
//
//   - copart: orders ⋈ lineitem on the order key — lineitem is stored
//     sharded on l_orderkey, so the build is shard-local (zero moved rows).
//   - reshuffle: customer ⋈ orders on the customer key — orders is stored
//     sharded on o_orderkey, so every build row crosses a shard boundary.
func shardingShapes() []struct {
	name string
	q    *query.Query
	tree *plan.Node
} {
	lf := func(n string) *plan.Node { return plan.NewLeaf(query.NewAliasSet(n)) }
	copart := query.NewBuilder("shard-copart").
		Rel("o", "orders").Rel("l", "lineitem").
		Join(expr.Identity("o.o_orderkey"), expr.Identity("l.l_orderkey")).
		MustBuild()
	reshuffle := query.NewBuilder("shard-reshuffle").
		Rel("c", "customer").Rel("o", "orders").
		Join(expr.Identity("c.c_custkey"), expr.Identity("o.o_custkey")).
		MustBuild()
	return []struct {
		name string
		q    *query.Query
		tree *plan.Node
	}{
		{"copart", copart, plan.NewJoin(lf("o"), lf("l"))},
		{"reshuffle", reshuffle, plan.NewJoin(lf("c"), lf("o"))},
	}
}

// ShardingStudy measures the exchange-style execution paths: the same two
// fixed join plans run at shard counts 1, 4, and 16 over TPC-H at 50× the
// campaign scale factor, timing the full ExecTree drain. The co-partitioned
// shape runs shard-local (per-shard build scan, sub-hash-tables); the
// reshuffled shape pays the routing of its whole build input. Every cell
// must return the bit-identical result, validated against the S=1 run.
// Besides the text table, the study writes BENCH_sharding.json to the
// working directory.
func (r *Runner) ShardingStudy(w io.Writer) error {
	sc := r.Scale
	sf := sc.TPCHSF * 50
	r.log("ShardingStudy: generating TPC-H (SF %.4g)...", sf)
	cat := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: sc.Seed})

	shardCounts := []int{1, 4, 16}
	const reps = 3
	out := ShardingJSON{Scale: sc.Name, SF: sf, Reps: reps, Shards: shardCounts}

	fmt.Fprintf(w, "Sharding study: co-partitioned vs reshuffled hash joins, TPC-H at 50x campaign scale (SF %.4g)\n", sf)
	fmt.Fprintf(w, "fixed plans, full ExecTree drain, min of %d runs\n", reps)
	fmt.Fprintf(w, "%-11s %-28s %-8s %-10s %-10s %-12s %-10s\n",
		"Shape", "Plan", "Shards", "Seconds", "Rows", "Moved-rows", "vs S=1")
	for _, sh := range shardingShapes() {
		shape := ShardingShape{Name: sh.name, Plan: sh.tree.String()}
		var refRows int
		var refValue, refSeconds float64
		for _, s := range shardCounts {
			cat.Shard(s)
			var best float64
			var run ShardingRun
			var val float64
			for rep := 0; rep < reps; rep++ {
				runtime.GC()
				reg := obs.NewRegistry()
				eng := newEngine(cat, sc.Parallelism, sc.BatchSize)
				eng.Metrics = reg
				start := time.Now()
				b := &engine.Budget{MaxTuples: 4 * sc.MaxTuples, Deadline: start.Add(10 * sc.Timeout)}
				rel, _, err := eng.ExecTree(sh.q, sh.tree, b)
				secs := time.Since(start).Seconds()
				if err != nil {
					return fmt.Errorf("sharding study: %s S=%d: %w", sh.name, s, err)
				}
				v, err := engine.FinalAggregate(sh.q, rel)
				if err != nil {
					return fmt.Errorf("sharding study: %s S=%d aggregate: %w", sh.name, s, err)
				}
				if rep == 0 || secs < best {
					best = secs
				}
				run = ShardingRun{
					ShardCount:     s,
					Rows:           rel.Count(),
					LocalJoins:     reg.Counter("monsoon.exchange.joins.local").Value(),
					ReshuffleJoins: reg.Counter("monsoon.exchange.joins.reshuffle").Value(),
					MovedRows:      reg.Counter("monsoon.exchange.rows").Value(),
				}
				val = v
			}
			run.Seconds = best
			if s == 1 {
				refRows, refValue, refSeconds = run.Rows, val, best
			} else if run.Rows != refRows || val != refValue {
				return fmt.Errorf("sharding study: %s S=%d result (%d rows, %g) diverged from S=1 (%d rows, %g)",
					sh.name, s, run.Rows, val, refRows, refValue)
			}
			rel := "-"
			if s != 1 && refSeconds > 0 {
				rel = fmt.Sprintf("%+.1f%%", 100*(best-refSeconds)/refSeconds)
			}
			fmt.Fprintf(w, "%-11s %-28s %-8d %-10.4f %-10d %-12d %-10s\n",
				sh.name, shape.Plan, s, best, run.Rows, run.MovedRows, rel)
			shape.Runs = append(shape.Runs, run)
		}
		out.Shapes = append(out.Shapes, shape)
	}
	cat.Shard(1)
	fmt.Fprintln(w, "every cell reproduced the S=1 result exactly")

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_sharding.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("sharding study: write artifact: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_sharding.json")
	return nil
}
