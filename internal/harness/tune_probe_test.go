package harness

import (
	"fmt"
	"os"
	"testing"

	"monsoon/internal/bench/imdb"
)

// TestTuneIMDBProbe is a diagnostic (run explicitly with -run TuneIMDB
// -tags): it reports how the full-statistics baseline fares on the small
// IMDB campaign so the scale knobs can be sanity-checked.
func TestTuneIMDBProbe(t *testing.T) {
	if os.Getenv("MONSOON_PROBE") == "" {
		t.Skip("diagnostic probe; set MONSOON_PROBE=1 to run")
	}
	sc := Small()
	cat := imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed})
	to := 0
	var worst float64
	for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
		out := (Postgres{}).Run(QuerySpec{Q: q, Cat: cat}, sc.Timeout, sc.MaxTuples, 1)
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.TimedOut {
			to++
		}
		if out.Produced > worst {
			worst = out.Produced
		}
	}
	fmt.Printf("Postgres on small IMDB: TO=%d/%d worstProduced=%.3g\n", to, sc.IMDBQueryCount, worst)
	if to > 2 {
		t.Errorf("full-statistics baseline should rarely time out; got %d", to)
	}
}
