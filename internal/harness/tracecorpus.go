package harness

import (
	"fmt"
	"io"

	"monsoon/internal/bench/tpch"
)

// TraceCorpus runs the span-count reference workload: the scale's TPC-H
// suite through Monsoon alone, with no wall-clock deadline (a slow machine
// must not change how far a query gets), the campaign's tuple budget, and
// the campaign seed for every query — so the span stream on r.Sink, and
// with it every per-kind count, is deterministic across hosts (worker
// fan-out excepted; trace tooling excludes that kind). This is the workload
// behind testdata/span_counts_small.jsonl: CI records it with
// `monsoon-bench -scale small -exp tracecorpus -trace-json` and diffs the
// recording against the pinned baseline with `monsoon-trace diff`, and
// TestSpanCountBaseline replays it in-process through the same
// tracefile.Diff logic.
func (r *Runner) TraceCorpus(w io.Writer) error {
	sc := r.Scale
	cat := sc.shardCat(tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed}))
	n := 0
	for _, q := range tpch.Queries() {
		opt := Monsoon{Iterations: sc.MCTSIterations, Metrics: r.Metrics, Sink: r.Sink}
		out := opt.Run(QuerySpec{Q: q, Cat: cat}, 0, sc.MaxTuples, sc.Seed)
		if out.Err != nil {
			return fmt.Errorf("%s: %w", q.Name, out.Err)
		}
		if out.TimedOut {
			return fmt.Errorf("%s: tuple budget tripped; the corpus workload must complete", q.Name)
		}
		n++
	}
	fmt.Fprintf(w, "trace corpus: %d TPC-H queries through Monsoon (no deadline, budget %g, seed %d)\n",
		n, sc.MaxTuples, sc.Seed)
	return nil
}
