package harness

import (
	"testing"
	"time"
)

// TestCampaignDeterminism: the whole pipeline — generation, every optimizer
// (including Monsoon's MCTS and Skinner's episodes), execution — is seeded,
// so two identical campaigns must produce identical tuple costs, result
// cardinalities, and timeout decisions driven by the tuple cap. (Wall-clock
// fields differ; a deadline-driven timeout could too, so the test uses a
// tuple cap only.)
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() *BenchResult {
		specs := tinySpecs(t)
		options := []Option{
			Postgres{}, Defaults{}, Greedy{}, Monsoon{Iterations: 120},
			OnDemand{}, Sampling{}, Skinner{}, LEC{Worlds: 8},
		}
		br, err := RunBenchmark(specs, options, time.Minute, 2e6, 77, nil)
		if err != nil {
			t.Fatal(err)
		}
		return br
	}
	a, b := run(), run()
	for name, ra := range a.Results {
		rb := b.Results[name]
		if len(ra) != len(rb) {
			t.Fatalf("%s: different result counts", name)
		}
		for i := range ra {
			if ra[i].Produced != rb[i].Produced {
				t.Errorf("%s/%s: produced %v vs %v", name, ra[i].Query, ra[i].Produced, rb[i].Produced)
			}
			if ra[i].Rows != rb[i].Rows {
				t.Errorf("%s/%s: rows %d vs %d", name, ra[i].Query, ra[i].Rows, rb[i].Rows)
			}
			if ra[i].TimedOut != rb[i].TimedOut {
				t.Errorf("%s/%s: timeout decisions differ", name, ra[i].Query)
			}
		}
	}
}
