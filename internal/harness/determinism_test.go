package harness

import (
	"testing"
	"time"

	"monsoon/internal/plancache"
)

// TestCampaignDeterminism: the whole pipeline — generation, every optimizer
// (including Monsoon's MCTS and Skinner's episodes), execution — is seeded,
// so two identical campaigns must produce identical tuple costs, result
// cardinalities, and timeout decisions driven by the tuple cap. (Wall-clock
// fields differ; a deadline-driven timeout could too, so the test uses a
// tuple cap only.)
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() *BenchResult {
		specs := tinySpecs(t)
		options := []Option{
			Postgres{}, Defaults{}, Greedy{}, Monsoon{Iterations: 120},
			OnDemand{}, Sampling{}, Skinner{}, LEC{Worlds: 8},
		}
		br, err := RunBenchmark(specs, options, time.Minute, 2e6, 77, nil)
		if err != nil {
			t.Fatal(err)
		}
		return br
	}
	a, b := run(), run()
	for name, ra := range a.Results {
		rb := b.Results[name]
		if len(ra) != len(rb) {
			t.Fatalf("%s: different result counts", name)
		}
		for i := range ra {
			if ra[i].Produced != rb[i].Produced {
				t.Errorf("%s/%s: produced %v vs %v", name, ra[i].Query, ra[i].Produced, rb[i].Produced)
			}
			if ra[i].Rows != rb[i].Rows {
				t.Errorf("%s/%s: rows %d vs %d", name, ra[i].Query, ra[i].Rows, rb[i].Rows)
			}
			if ra[i].TimedOut != rb[i].TimedOut {
				t.Errorf("%s/%s: timeout decisions differ", name, ra[i].Query)
			}
		}
	}
}

// TestCampaignCachedVsUncached: a campaign planned through a shared plan
// cache makes exactly the plan choices the cache-off campaign makes — same
// tuple costs, cardinalities, aggregates, and timeout decisions per query —
// on both the cold pass (cache filling, all misses) and the warm pass
// (replaying memoized rounds). CI runs this as the cached-vs-uncached
// determinism gate.
func TestCampaignCachedVsUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := tinySpecs(t)
	run := func(c *plancache.Cache) []QueryResult {
		opt := Monsoon{Iterations: 120, Cache: c}
		br, err := RunBenchmark(specs, []Option{opt}, time.Minute, 2e6, 77, nil)
		if err != nil {
			t.Fatal(err)
		}
		return br.Results[opt.Name()]
	}
	ref := run(nil)
	cache := plancache.New(0)
	for _, label := range []string{"cold", "warm"} {
		got := run(cache)
		for i := range ref {
			if got[i].Produced != ref[i].Produced || got[i].Rows != ref[i].Rows ||
				got[i].Value != ref[i].Value || got[i].TimedOut != ref[i].TimedOut {
				t.Errorf("%s/%s: produced/rows/value/timeout %v/%d/%v/%v, want %v/%d/%v/%v",
					label, ref[i].Query, got[i].Produced, got[i].Rows, got[i].Value, got[i].TimedOut,
					ref[i].Produced, ref[i].Rows, ref[i].Value, ref[i].TimedOut)
			}
		}
	}
	if cache.Stats().Hits == 0 {
		t.Error("warm campaign pass never hit the cache")
	}
}
