// Package harness runs the paper's evaluation (§6): it wraps every
// optimization option behind one interface, executes benchmark suites under
// wall-clock and tuple budgets, aggregates timeout/mean/median/max rows, and
// prints each of the paper's tables and figures.
package harness

import (
	"errors"
	"math"
	"time"

	"monsoon/internal/core"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/obs"
	"monsoon/internal/opt"
	"monsoon/internal/plan"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/skinner"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

// QuerySpec is one benchmark query bound to its dataset. Hand, when present,
// is the hand-written best plan (OTT only).
type QuerySpec struct {
	Q    *query.Query
	Cat  *table.Catalog
	Hand *plan.Node
}

// Outcome reports one (option, query) run.
type Outcome struct {
	// Time is the measured wall time (optimization + statistics collection
	// + execution; offline statistics excluded per the paper's rules).
	Time time.Duration
	// TimedOut marks a run that exceeded the deadline or tuple budget.
	TimedOut bool
	// Rows and Value describe the query result (valid when !TimedOut).
	Rows  int
	Value float64
	// Produced is the total §4.4 cost paid (objects produced), including
	// discarded work.
	Produced float64
	// MCTSTime, SigmaTime and ExecTime are the Monsoon component breakdown
	// (Table 8); zero for other options.
	MCTSTime, SigmaTime, ExecTime time.Duration
	// QErrJoins, QErrGeo and QErrMax summarize the run's estimate-vs-actual
	// records: the number of join nodes whose cardinality was both predicted
	// and observed, and the geometric mean and maximum of their *finite*
	// q-errors. Unboundedly wrong estimates — one side empty, the other not,
	// or beyond the 1e12 clamp — are counted in QErrMisses instead, so they
	// cannot poison the aggregates. Zero for options that record no
	// estimates.
	QErrJoins  int
	QErrGeo    float64
	QErrMax    float64
	QErrMisses int
	// CacheHits and CacheMisses count plan-cache consultations (Monsoon
	// with a cache attached only; zero otherwise).
	CacheHits, CacheMisses int
	// Replans counts mid-query re-optimizations (Monsoon with a replan
	// threshold configured only; zero otherwise).
	Replans int
	// PeakBytes is the largest peak heap allocation any tree drain of the
	// run observed (Monsoon with a metrics registry attached only; zero
	// otherwise — the engine samples runtime.MemStats strictly opt-in).
	PeakBytes float64
	// Err carries non-budget failures (always a bug: surfaced, not hidden).
	Err error
}

// Option is one §6.2.2 optimization strategy.
type Option interface {
	Name() string
	// Run optimizes and executes the query, honoring timeout and maxTuples
	// (0 disables either bound).
	Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome
}

// newBudget starts the measured window.
func newBudget(timeout time.Duration, maxTuples float64) *engine.Budget {
	b := &engine.Budget{MaxTuples: maxTuples}
	if timeout > 0 {
		b.Deadline = time.Now().Add(timeout)
	}
	return b
}

// newEngine creates an option's engine with the configured worker count
// (0 = GOMAXPROCS, 1 = serial) and streaming batch size (0 = default 4096,
// negative = unbounded/materialized); results are bit-identical at every
// combination.
func newEngine(cat *table.Catalog, parallelism, batchSize int) *engine.Engine {
	eng := engine.New(cat)
	eng.Parallelism = parallelism
	eng.BatchSize = batchSize
	return eng
}

func finish(start time.Time, b *engine.Budget, err error, out Outcome) Outcome {
	out.Time = time.Since(start)
	out.Produced = b.Produced()
	if err != nil {
		if errors.Is(err, engine.ErrBudget) {
			out.TimedOut = true
		} else {
			out.Err = err
		}
	}
	return out
}

// planAndExec is the shared tail of every single-plan option. It plans and
// executes on the caller's engine, so any tracer installed there covers both
// the optimize span and the execution operators.
func planAndExec(spec QuerySpec, eng *engine.Engine, st *stats.Store, miss cost.MissFn,
	start time.Time, b *engine.Budget) Outcome {
	dv := &cost.Deriver{Q: spec.Q, St: st, Miss: miss, Obs: eng.Obs}
	tree, err := opt.BestPlan(spec.Q, dv)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	rel, _, err := eng.ExecTree(spec.Q, tree, b)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	v, err := engine.FinalAggregate(spec.Q, rel)
	return finish(start, b, err, Outcome{Rows: rel.Count(), Value: v})
}

// Postgres is the full-statistics baseline (option 7): exact statistics
// collected offline and not counted toward the measured time.
type Postgres struct {
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (Postgres) Name() string { return "Postgres" }

// Run implements Option.
func (o Postgres) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, _ int64) Outcome {
	st := opt.CollectFullStats(spec.Q, spec.Cat) // offline, untimed
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	return planAndExec(spec, newEngine(spec.Cat, o.Parallelism, o.BatchSize), st, cost.DefaultMiss(0.1), start, b)
}

// Defaults optimizes with the magic constant d = 0.1·c (option 4).
type Defaults struct {
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (Defaults) Name() string { return "Defaults" }

// Run implements Option.
func (o Defaults) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, _ int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	st := stats.New()
	eng := newEngine(spec.Cat, o.Parallelism, o.BatchSize)
	eng.SeedBaseStats(spec.Q, st)
	return planAndExec(spec, eng, st, cost.DefaultMiss(0.1), start, b)
}

// Greedy is the size-only left-deep heuristic (option 3).
type Greedy struct {
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (Greedy) Name() string { return "Greedy" }

// Run implements Option.
func (o Greedy) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, _ int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	st := stats.New()
	eng := newEngine(spec.Cat, o.Parallelism, o.BatchSize)
	eng.SeedBaseStats(spec.Q, st)
	tree, err := opt.GreedyPlan(spec.Q, st)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	rel, _, err := eng.ExecTree(spec.Q, tree, b)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	v, err := engine.FinalAggregate(spec.Q, rel)
	return finish(start, b, err, Outcome{Rows: rel.Count(), Value: v})
}

// OnDemand computes HLL statistics after the query is issued (option 1),
// paying the scan before optimizing.
type OnDemand struct {
	// Sink, when non-nil, receives the collection pass's spans.
	Sink obs.EventSink
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (OnDemand) Name() string { return "On Demand" }

// Run implements Option.
func (o OnDemand) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, _ int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, o.Parallelism, o.BatchSize)
	eng.Obs = obs.NewTracer(o.Sink)
	st, err := opt.CollectOnDemand(spec.Q, eng, b)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	return planAndExec(spec, eng, st, cost.DefaultMiss(0.1), start, b)
}

// Sampling is the block-sampling + GEE option (option 2).
type Sampling struct {
	Cfg opt.SamplingConfig
	// Sink, when non-nil, receives the sampling pass's spans.
	Sink obs.EventSink
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (Sampling) Name() string { return "Sampling" }

// Run implements Option.
func (s Sampling) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, s.Parallelism, s.BatchSize)
	eng.Obs = obs.NewTracer(s.Sink)
	st, err := opt.CollectSampling(spec.Q, eng, b, s.Cfg, randx.New(randx.Derive(seed, "sampling")))
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	return planAndExec(spec, eng, st, cost.DefaultMiss(0.1), start, b)
}

// Skinner is the Skinner-G stand-in (option 5).
type Skinner struct {
	Cfg skinner.Config
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (Skinner) Name() string { return "SkinnerDB" }

// Run implements Option.
func (s Skinner) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	cfg := s.Cfg
	cfg.Seed = seed
	eng := newEngine(spec.Cat, s.Parallelism, s.BatchSize)
	res, err := skinner.Run(spec.Q, eng, b, cfg)
	out := Outcome{Rows: res.Rows, Value: res.Value}
	return finish(start, b, err, out)
}

// qerrSink accumulates join q-errors from the driver's estimate events; it
// is the cheapest possible consumer of the structured stream (no spans are
// retained). Unboundedly wrong estimates (one side empty — q = +Inf — or
// beyond the clamp) are counted as misses rather than folded into the
// aggregates, so one empty intermediate cannot swallow the geometric mean or
// render the max as "inf".
type qerrSink struct {
	logSum float64
	n      int
	max    float64
	misses int
}

func (qs *qerrSink) Emit(ev obs.Event) {
	if ev.Type != obs.EvEstimate || !ev.Est.Join {
		return
	}
	qs.n++
	q := ev.Est.QError
	if ev.Est.Miss || obs.QErrorIsMiss(q) {
		qs.misses++
		return
	}
	qs.logSum += math.Log(q)
	if q > qs.max {
		qs.max = q
	}
}

func (qs *qerrSink) geo() float64 {
	fin := qs.n - qs.misses
	if fin == 0 {
		return 0
	}
	return math.Exp(qs.logSum / float64(fin))
}

// Monsoon is the paper's optimizer (option 6).
type Monsoon struct {
	Prior      prior.Prior
	Strategy   mcts.Strategy
	Iterations int
	// Sink, when non-nil, receives the run's structured event stream (the
	// q-error summary in the Outcome is collected regardless).
	Sink obs.EventSink
	// Metrics, when non-nil, accumulates counters and histograms across the
	// campaign's runs.
	Metrics *obs.Registry
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
	// PlanParallelism caps the OS threads the root-parallel MCTS planner
	// runs its search shards on (0 = GOMAXPROCS, 1 = serial planning).
	// Plans are bit-identical at every setting.
	PlanParallelism int
	// Cache, when non-nil, memoizes planned rounds across the runs sharing
	// it: repeated (query shape, statistics) states replay the memoized
	// action sequence instead of re-running MCTS.
	Cache *plancache.Cache
	// Profile, when non-nil, makes the MDP simulator cost plans with
	// calibrated per-operator-kind seconds instead of flat object counts.
	Profile *cost.CostProfile
	// ReplanThreshold, when > 0, triggers mid-query re-optimization: an
	// EXECUTE whose materialized q-error reaches it invalidates the query's
	// plan-cache suffixes and forces the next round to replan with the
	// hardened statistics.
	ReplanThreshold float64
}

// Name implements Option.
func (m Monsoon) Name() string {
	if m.Prior != nil && m.Prior.Name() != prior.Default().Name() {
		return "Monsoon(" + m.Prior.Name() + ")"
	}
	return "Monsoon"
}

// Run implements Option.
func (m Monsoon) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, seed int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, m.Parallelism, m.BatchSize)
	qs := &qerrSink{}
	res, err := core.Run(spec.Q, eng, b, core.Config{
		Prior:           m.Prior,
		Strategy:        m.Strategy,
		Iterations:      m.Iterations,
		Seed:            seed,
		Sink:            obs.Multi(m.Sink, qs),
		Metrics:         m.Metrics,
		Parallelism:     m.Parallelism,
		BatchSize:       m.BatchSize,
		PlanParallelism: m.PlanParallelism,
		Cache:           m.Cache,
		Profile:         m.Profile,
		ReplanThreshold: m.ReplanThreshold,
	})
	out := Outcome{
		Rows: res.Rows, Value: res.Value,
		MCTSTime: res.PlanTime, SigmaTime: res.SigmaTime, ExecTime: res.ExecTime,
		QErrJoins: qs.n, QErrGeo: qs.geo(), QErrMax: qs.max, QErrMisses: qs.misses,
		CacheHits: res.CacheHits, CacheMisses: res.CacheMisses, PeakBytes: res.PeakBytes,
		Replans: res.Replans,
	}
	return finish(start, b, err, out)
}

// HandWritten executes the spec's hand-written plan (the OTT baseline row).
type HandWritten struct {
	// Parallelism caps the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize caps the engine's streaming pipeline batch (0 = the default
	// 4096, negative = unbounded, i.e. full materialization between
	// operators). Results are bit-identical at every setting.
	BatchSize int
}

// Name implements Option.
func (HandWritten) Name() string { return "Hand-written" }

// Run implements Option.
func (o HandWritten) Run(spec QuerySpec, timeout time.Duration, maxTuples float64, _ int64) Outcome {
	start := time.Now()
	b := newBudget(timeout, maxTuples)
	eng := newEngine(spec.Cat, o.Parallelism, o.BatchSize)
	rel, _, err := eng.ExecTree(spec.Q, spec.Hand, b)
	if err != nil {
		return finish(start, b, err, Outcome{})
	}
	v, err := engine.FinalAggregate(spec.Q, rel)
	return finish(start, b, err, Outcome{Rows: rel.Count(), Value: v})
}
