package table

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Sharded is the partitioned view of one stored table: the rows of the base
// relation split into shards by the stable FNV-1a hash of the shard column
// (always the table's first column — every benchmark generator emits the
// primary key first, so first-column sharding co-partitions the natural
// PK⋈FK join shapes). The layout is a shard-major permutation of row
// indices rather than copied row slices, deliberately pointer-free: a
// resident [][]Row layout would duplicate every row header into
// pointer-dense arrays the garbage collector re-scans on every cycle,
// taxing even queries that never touch the layout. Within a shard, indices
// stay in ascending (original) order.
type Sharded struct {
	Col string // qualified shard column, e.g. "lineitem.l_orderkey"
	// Perm is the shard-major permutation of the base relation's row
	// indices; shard h owns Perm[Bounds[h-1]:Bounds[h]] (from 0 for h=0),
	// and every index i in that range satisfies rows[i][0].Hash()%S == h.
	// int32 bounds tables at ~2.1e9 rows, far above any benchmark scale.
	Perm   []int32
	Bounds []int
	// RowHash caches the full (pre-modulo) shard-column hash of every base
	// row, in base row order — a free by-product of the partitioning pass.
	// Co-partitioned hash builds key on exactly this column, so they reuse
	// the cached hash instead of re-reading the row and re-running FNV;
	// like Perm it is pointer-free and invisible to the garbage collector.
	RowHash []uint64
}

// NumShards reports the layout width.
func (sh *Sharded) NumShards() int { return len(sh.Bounds) }

// Shard returns the row indices (into the base relation) of shard h, in
// ascending order.
func (sh *Sharded) Shard(h int) []int32 {
	lo := 0
	if h > 0 {
		lo = sh.Bounds[h-1]
	}
	return sh.Perm[lo:sh.Bounds[h]]
}

// Shard partitions every table in the catalog into s hash shards on its
// first column. s <= 1 clears the layout (the catalog answers ShardCount 1
// and the engine takes the exact unsharded code paths). Re-sharding is
// idempotent per s: partitioning is a pure function of the stored rows.
func (c *Catalog) Shard(s int) {
	if s <= 1 {
		c.shards, c.shardCount = nil, 0
		return
	}
	c.shardCount = s
	c.shards = make(map[string]*Sharded, len(c.tables))
	for name, r := range c.tables {
		c.shards[name] = shardRelation(r, s)
	}
}

func shardRelation(r *Relation, s int) *Sharded {
	sh := &Sharded{Bounds: make([]int, s)}
	if len(r.Schema.Cols) > 0 {
		sh.Col = r.Schema.Cols[0].Qualified()
	}
	// Stable counting sort by shard hash: one hashing pass recording each
	// row's bucket, a prefix sum, then a placement pass — indices within a
	// shard come out in ascending original order.
	hs := make([]int32, len(r.Rows))
	counts := make([]int, s)
	sh.RowHash = make([]uint64, len(r.Rows))
	for i, row := range r.Rows {
		full := row[0].Hash()
		sh.RowHash[i] = full
		h := int32(full % uint64(s))
		hs[i] = h
		counts[h]++
	}
	next := make([]int, s)
	acc := 0
	for h := 0; h < s; h++ {
		next[h] = acc
		acc += counts[h]
		sh.Bounds[h] = acc
	}
	sh.Perm = make([]int32, len(r.Rows))
	for i, h := range hs {
		sh.Perm[next[h]] = int32(i)
		next[h]++
	}
	return sh
}

// ShardCount reports the catalog's shard layout width; 1 means unsharded.
func (c *Catalog) ShardCount() int {
	if c.shardCount <= 1 {
		return 1
	}
	return c.shardCount
}

// ShardKey reports the column a stored table is partitioned on, or false
// when the catalog is unsharded or the table unknown.
func (c *Catalog) ShardKey(name string) (string, bool) {
	sh, ok := c.shards[name]
	if !ok {
		return "", false
	}
	return sh.Col, true
}

// ShardsOf fetches the partitioned view of a stored table, or false when
// the catalog is unsharded or the table unknown.
func (c *Catalog) ShardsOf(name string) (*Sharded, bool) {
	sh, ok := c.shards[name]
	return sh, ok
}

// LayoutFingerprint digests the shard layout (count plus every table's
// shard column, sorted) into a short stable hex string. The plan cache
// appends it to the canonical query shape so plans built against one layout
// never replay against another. Unsharded catalogs return "" so S=1 cache
// keys stay byte-identical to pre-sharding builds.
func (c *Catalog) LayoutFingerprint() string {
	if c.ShardCount() <= 1 {
		return ""
	}
	keys := make([]string, 0, len(c.shards))
	for name, sh := range c.shards {
		keys = append(keys, name+":"+sh.Col)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	fmt.Fprintf(h, "s=%d", c.shardCount)
	for _, k := range keys {
		fmt.Fprintf(h, ";%s", k)
	}
	return fmt.Sprintf("%x", h.Sum64())
}
