package table

import (
	"testing"

	"monsoon/internal/value"
)

func shardFixture() *Catalog {
	c := NewCatalog()
	s := NewSchema(intCol("r", "k"), intCol("r", "v"))
	b := NewBuilder("r", s)
	for i := 0; i < 100; i++ {
		b.Add(value.Int(int64(i)), value.Int(int64(i*10)))
	}
	c.Put(b.Build())
	return c
}

func TestShardPartitionsByFirstColumnHash(t *testing.T) {
	for _, s := range []int{2, 4, 16} {
		c := shardFixture()
		c.Shard(s)
		if c.ShardCount() != s {
			t.Fatalf("ShardCount = %d, want %d", c.ShardCount(), s)
		}
		sh, ok := c.ShardsOf("r")
		if !ok || sh.NumShards() != s {
			t.Fatalf("ShardsOf(r) = %v,%v at S=%d", sh, ok, s)
		}
		if sh.Col != "r.k" {
			t.Errorf("shard column = %q, want r.k", sh.Col)
		}
		base := c.MustGet("r")
		total := 0
		for h := 0; h < sh.NumShards(); h++ {
			idx := sh.Shard(h)
			total += len(idx)
			for _, i := range idx {
				if got := base.Rows[i][0].Hash() % uint64(s); got != uint64(h) {
					t.Fatalf("row with hash bucket %d landed in shard %d", got, h)
				}
			}
			// Indices keep their original (ascending) order within a shard.
			for i := 1; i < len(idx); i++ {
				if idx[i] <= idx[i-1] {
					t.Fatal("shard perturbed original row order")
				}
			}
		}
		if total != 100 {
			t.Errorf("shards hold %d rows, want 100", total)
		}
		if key, ok := c.ShardKey("r"); !ok || key != "r.k" {
			t.Errorf("ShardKey(r) = %q,%v", key, ok)
		}
	}
}

func TestShardClearAndUnsharded(t *testing.T) {
	c := shardFixture()
	if c.ShardCount() != 1 {
		t.Errorf("fresh catalog ShardCount = %d, want 1", c.ShardCount())
	}
	if _, ok := c.ShardsOf("r"); ok {
		t.Error("unsharded catalog must not expose shards")
	}
	if _, ok := c.ShardKey("r"); ok {
		t.Error("unsharded catalog must not expose a shard key")
	}
	if fp := c.LayoutFingerprint(); fp != "" {
		t.Errorf("unsharded fingerprint = %q, want empty", fp)
	}
	c.Shard(4)
	c.Shard(1) // clears
	if c.ShardCount() != 1 {
		t.Errorf("ShardCount after clear = %d, want 1", c.ShardCount())
	}
	if _, ok := c.ShardsOf("r"); ok {
		t.Error("cleared layout must not expose shards")
	}
}

func TestShardPutKeepsLayoutFresh(t *testing.T) {
	c := shardFixture()
	c.Shard(4)
	b := NewBuilder("t2", NewSchema(intCol("t2", "id")))
	b.Add(value.Int(7))
	c.Put(b.Build())
	sh, ok := c.ShardsOf("t2")
	if !ok || sh.NumShards() != 4 {
		t.Fatalf("table added under an active layout must be sharded, got %v,%v", sh, ok)
	}
	if len(sh.Perm) != 1 {
		t.Errorf("t2 shards hold %d rows, want 1", len(sh.Perm))
	}
}

func TestLayoutFingerprint(t *testing.T) {
	a := shardFixture()
	a.Shard(4)
	b := shardFixture()
	b.Shard(4)
	if a.LayoutFingerprint() == "" || a.LayoutFingerprint() != b.LayoutFingerprint() {
		t.Error("identical layouts must share a non-empty fingerprint")
	}
	b.Shard(16)
	if a.LayoutFingerprint() == b.LayoutFingerprint() {
		t.Error("different shard counts must not collide")
	}
	// A layout over a different table set must differ too.
	c := shardFixture()
	bld := NewBuilder("extra", NewSchema(intCol("extra", "id")))
	c.Put(bld.Build())
	c.Shard(4)
	if a.LayoutFingerprint() == c.LayoutFingerprint() {
		t.Error("different table sets must not collide")
	}
}
