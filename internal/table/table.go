// Package table provides the row-store storage layer: schemas with
// table-qualified column names, immutable-after-build relations, and the
// bootstrap-resampling utility the IMDB benchmark uses to scale data.
package table

import (
	"fmt"
	"math/rand"
	"strings"

	"monsoon/internal/value"
)

// Column describes one attribute of a schema. Table holds the alias the
// column is visible under (base table name for stored tables, alias after
// renaming in a query).
type Column struct {
	Table string
	Name  string
	Kind  value.Kind
}

// Qualified returns the "table.name" form used to resolve attribute refs.
func (c Column) Qualified() string { return c.Table + "." + c.Name }

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
	idx  map[string]int
}

// NewSchema builds a schema from columns and indexes them for lookup.
// Duplicate qualified names panic: they indicate a planner bug.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		q := c.Qualified()
		if _, dup := s.idx[q]; dup {
			panic(fmt.Sprintf("table: duplicate column %q in schema", q))
		}
		s.idx[q] = i
	}
	return s
}

// Lookup resolves a qualified attribute name to its column position.
func (s *Schema) Lookup(qualified string) (int, bool) {
	i, ok := s.idx[qualified]
	return i, ok
}

// MustLookup resolves or panics; used where the planner has already verified
// bindability.
func (s *Schema) MustLookup(qualified string) int {
	i, ok := s.Lookup(qualified)
	if !ok {
		panic(fmt.Sprintf("table: unknown column %q in schema %s", qualified, s))
	}
	return i
}

// Concat returns a new schema with the columns of s followed by those of o.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return NewSchema(cols...)
}

// Renamed returns a copy of the schema with every column's Table replaced by
// alias. Queries use this to mount one stored table under several aliases
// (e.g. order o1, order o2).
func (s *Schema) Renamed(alias string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Table: alias, Name: c.Name, Kind: c.Kind}
	}
	return NewSchema(cols...)
}

// String renders the schema for error messages.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Qualified()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is one tuple; its arity matches the owning relation's schema.
type Row []value.Value

// Relation is a named bag of rows with a schema. After construction via
// Builder or the helper constructors, a Relation is treated as immutable by
// the engine.
type Relation struct {
	Name   string
	Schema *Schema
	Rows   []Row
}

// NewRelation wraps a schema and rows into a relation.
func NewRelation(name string, schema *Schema, rows []Row) *Relation {
	return &Relation{Name: name, Schema: schema, Rows: rows}
}

// Count returns the number of rows.
func (r *Relation) Count() int { return len(r.Rows) }

// Renamed returns a view of the relation mounted under a different alias.
// Rows are shared, the schema is rewritten.
func (r *Relation) Renamed(alias string) *Relation {
	return &Relation{Name: alias, Schema: r.Schema.Renamed(alias), Rows: r.Rows}
}

// Bootstrap returns a new relation with factor*n rows sampled with
// replacement from r, reproducing the paper's IMDB scaling methodology
// ("we create a new version of the table with 5×n tuples by sampling 5×n
// times from the original table, with replacement").
func (r *Relation) Bootstrap(factor int, rng *rand.Rand) *Relation {
	if factor <= 0 {
		panic("table: bootstrap factor must be positive")
	}
	n := len(r.Rows)
	out := make([]Row, 0, n*factor)
	if n == 0 {
		return &Relation{Name: r.Name, Schema: r.Schema, Rows: out}
	}
	for i := 0; i < n*factor; i++ {
		out = append(out, r.Rows[rng.Intn(n)])
	}
	return &Relation{Name: r.Name, Schema: r.Schema, Rows: out}
}

// Builder accumulates rows for a relation while validating arity.
type Builder struct {
	name   string
	schema *Schema
	rows   []Row
}

// NewBuilder starts building a relation with the given schema.
func NewBuilder(name string, schema *Schema) *Builder {
	return &Builder{name: name, schema: schema}
}

// Add appends one row; arity mismatches panic (generator bug).
func (b *Builder) Add(vals ...value.Value) {
	if len(vals) != len(b.schema.Cols) {
		panic(fmt.Sprintf("table: row arity %d != schema arity %d for %s",
			len(vals), len(b.schema.Cols), b.name))
	}
	row := make(Row, len(vals))
	copy(row, vals)
	b.rows = append(b.rows, row)
}

// Build finalizes the relation.
func (b *Builder) Build() *Relation {
	return &Relation{Name: b.name, Schema: b.schema, Rows: b.rows}
}

// Catalog maps base-table names to stored relations, plus the optional
// hash-shard layout built by Shard (see shard.go).
type Catalog struct {
	tables     map[string]*Relation
	shards     map[string]*Sharded
	shardCount int
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Relation)} }

// Put registers (or replaces) a stored table. Under an active shard layout
// the new rows are partitioned immediately so the layout never goes stale.
func (c *Catalog) Put(r *Relation) {
	c.tables[r.Name] = r
	if c.shardCount > 1 {
		c.shards[r.Name] = shardRelation(r, c.shardCount)
	}
}

// Get fetches a stored table.
func (c *Catalog) Get(name string) (*Relation, bool) {
	r, ok := c.tables[name]
	return r, ok
}

// MustGet fetches a stored table or panics.
func (c *Catalog) MustGet(name string) *Relation {
	r, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("table: no table %q in catalog", name))
	}
	return r
}

// Names lists the registered table names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// TotalRows sums row counts across the catalog; benchmarks report it as the
// dataset size.
func (c *Catalog) TotalRows() int {
	total := 0
	for _, r := range c.tables {
		total += len(r.Rows)
	}
	return total
}
