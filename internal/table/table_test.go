package table

import (
	"testing"

	"monsoon/internal/randx"
	"monsoon/internal/value"
)

func intCol(t, n string) Column { return Column{Table: t, Name: n, Kind: value.KindInt} }

func TestSchemaLookup(t *testing.T) {
	s := NewSchema(intCol("r", "a"), intCol("r", "b"))
	if i, ok := s.Lookup("r.a"); !ok || i != 0 {
		t.Errorf("Lookup(r.a) = %d,%v", i, ok)
	}
	if i, ok := s.Lookup("r.b"); !ok || i != 1 {
		t.Errorf("Lookup(r.b) = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("r.c"); ok {
		t.Error("Lookup of missing column should fail")
	}
	if s.MustLookup("r.b") != 1 {
		t.Error("MustLookup failed")
	}
}

func TestSchemaMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing column must panic")
		}
	}()
	NewSchema(intCol("r", "a")).MustLookup("r.z")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate qualified names must panic")
		}
	}()
	NewSchema(intCol("r", "a"), intCol("r", "a"))
}

func TestSchemaConcatAndRename(t *testing.T) {
	a := NewSchema(intCol("r", "x"))
	b := NewSchema(intCol("s", "y"))
	c := a.Concat(b)
	if len(c.Cols) != 2 || c.MustLookup("r.x") != 0 || c.MustLookup("s.y") != 1 {
		t.Errorf("Concat wrong: %s", c)
	}
	ren := a.Renamed("r2")
	if _, ok := ren.Lookup("r.x"); ok {
		t.Error("renamed schema should not expose old alias")
	}
	if ren.MustLookup("r2.x") != 0 {
		t.Error("renamed schema lookup failed")
	}
	if s := c.String(); s != "(r.x, s.y)" {
		t.Errorf("String() = %q", s)
	}
}

func TestBuilderAndRelation(t *testing.T) {
	s := NewSchema(intCol("r", "a"), intCol("r", "b"))
	b := NewBuilder("r", s)
	b.Add(value.Int(1), value.Int(2))
	b.Add(value.Int(3), value.Int(4))
	rel := b.Build()
	if rel.Count() != 2 || rel.Name != "r" {
		t.Errorf("relation wrong: %+v", rel)
	}
	if rel.Rows[1][0].AsInt() != 3 {
		t.Error("row content wrong")
	}
}

func TestBuilderArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	NewBuilder("r", NewSchema(intCol("r", "a"))).Add(value.Int(1), value.Int(2))
}

func TestRelationRenamed(t *testing.T) {
	s := NewSchema(intCol("orders", "id"))
	b := NewBuilder("orders", s)
	b.Add(value.Int(9))
	o1 := b.Build().Renamed("o1")
	if o1.Name != "o1" || o1.Schema.MustLookup("o1.id") != 0 {
		t.Error("Renamed relation wrong")
	}
	if o1.Rows[0][0].AsInt() != 9 {
		t.Error("renamed relation must share rows")
	}
}

func TestBootstrap(t *testing.T) {
	s := NewSchema(intCol("r", "a"))
	b := NewBuilder("r", s)
	for i := 0; i < 100; i++ {
		b.Add(value.Int(int64(i)))
	}
	rel := b.Build()
	rng := randx.New(5)
	big := rel.Bootstrap(5, rng)
	if big.Count() != 500 {
		t.Errorf("bootstrap count = %d, want 500", big.Count())
	}
	// All rows must come from the original domain.
	for _, row := range big.Rows {
		v := row[0].AsInt()
		if v < 0 || v >= 100 {
			t.Fatalf("bootstrap produced foreign value %d", v)
		}
	}
	// With replacement: at 5x, expect duplicates.
	seen := map[int64]int{}
	for _, row := range big.Rows {
		seen[row[0].AsInt()]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("bootstrap with replacement should duplicate rows")
	}
}

func TestBootstrapEmptyAndBadFactor(t *testing.T) {
	rel := NewRelation("e", NewSchema(intCol("e", "a")), nil)
	if rel.Bootstrap(3, randx.New(1)).Count() != 0 {
		t.Error("bootstrap of empty relation should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("bootstrap factor 0 must panic")
		}
	}()
	rel.Bootstrap(0, randx.New(1))
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := NewSchema(intCol("r", "a"))
	b := NewBuilder("r", s)
	b.Add(value.Int(1))
	c.Put(b.Build())
	if _, ok := c.Get("r"); !ok {
		t.Error("Get failed")
	}
	if _, ok := c.Get("zz"); ok {
		t.Error("Get of missing table should fail")
	}
	if c.MustGet("r").Count() != 1 {
		t.Error("MustGet failed")
	}
	if c.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", c.TotalRows())
	}
	if len(c.Names()) != 1 || c.Names()[0] != "r" {
		t.Errorf("Names = %v", c.Names())
	}
}

func TestCatalogMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing table must panic")
		}
	}()
	NewCatalog().MustGet("nope")
}
