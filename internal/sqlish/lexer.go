// Package sqlish parses the SQL dialect of the paper's examples into the
// query IR: SELECT COUNT(*)/SUM(attr) over a FROM list of aliased tables
// with a WHERE conjunction of equality predicates whose sides are attribute
// references, literals, or calls to registered opaque UDFs — exactly the
// §3.1 grammar (boolExp → value compOp value, value → attRef | const |
// funcEval) restricted to the equality joins the optimizer handles.
//
//	SELECT COUNT(*)
//	FROM order o1, order o2, sess s1
//	WHERE SetKey(o1.items) = SetKey(o2.items)
//	  AND ExtractDate(o1.when) = '2019-01-11'
//	  AND o1.cID = s1.cID
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokEq
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes the input; identifiers keep their case, keywords are
// matched case-insensitively by the parser.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sqlish: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote inside the literal.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		text := l.src[start:l.pos]
		if text == "-" {
			return token{}, l.errf(start, "lone '-'")
		}
		return token{kind: tokNumber, text: text, pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || isDigit(c) || unicode.IsLetter(rune(c)) }
