package sqlish

import (
	"strings"
	"testing"

	"monsoon/internal/expr"

	"monsoon/internal/query"
	"monsoon/internal/value"
)

func parse(t *testing.T, src string) *query.Query {
	t.Helper()
	q, err := Parse("t", src, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestParseFraudQuery(t *testing.T) {
	q := parse(t, `
		SELECT COUNT(*)
		FROM order o1, order o2, sess s1, sess s2
		WHERE SetKey(o1.items) = SetKey(o2.items)
		  AND ExtractDate(o1.when) = '2019-01-11'
		  AND ExtractDate(o2.when) = '2019-01-11'
		  AND o1.cID = s1.cID
		  AND o2.cID = s2.cID
		  AND City(s1.ipAdd) = City(s2.ipAdd)`)
	if q.Aliases().Key() != "o1+o2+s1+s2" {
		t.Errorf("aliases = %v", q.Aliases())
	}
	if len(q.Joins) != 4 || len(q.Sels) != 2 {
		t.Errorf("joins=%d sels=%d, want 4/2", len(q.Joins), len(q.Sels))
	}
	if tbl, _ := q.TableOf("o2"); tbl != "order" {
		t.Errorf("o2 table = %q", tbl)
	}
	if q.Out.Kind != query.AggCount {
		t.Error("aggregate should be COUNT")
	}
}

func TestParseSum(t *testing.T) {
	q := parse(t, `SELECT SUM(r.a) FROM r, s WHERE r.k = s.k`)
	if q.Out.Kind != query.AggSum || q.Out.Attr != "r.a" {
		t.Errorf("aggregate = %+v", q.Out)
	}
	// Tables without aliases use their names.
	if _, ok := q.TableOf("r"); !ok {
		t.Error("bare table name must become its own alias")
	}
}

func TestParseLiteralKinds(t *testing.T) {
	q := parse(t, `SELECT COUNT(*) FROM r WHERE r.a = 42 AND r.b = 4.5 AND r.c = 'x''y'`)
	if len(q.Sels) != 3 {
		t.Fatalf("sels = %d", len(q.Sels))
	}
	if !q.Sels[0].Const.Equal(value.Int(42)) {
		t.Errorf("int literal = %v", q.Sels[0].Const)
	}
	if !q.Sels[1].Const.Equal(value.Float(4.5)) {
		t.Errorf("float literal = %v", q.Sels[1].Const)
	}
	if q.Sels[2].Const.AsString() != "x'y" {
		t.Errorf("escaped string literal = %q", q.Sels[2].Const.AsString())
	}
}

func TestParseFlippedSelection(t *testing.T) {
	q := parse(t, `SELECT COUNT(*) FROM r WHERE 7 = HashMod(r.a, 10)`)
	if len(q.Sels) != 1 || !q.Sels[0].Const.Equal(value.Int(7)) {
		t.Errorf("flipped selection not normalized: %+v", q.Sels)
	}
}

func TestParseUDFWithLiteralArgs(t *testing.T) {
	q := parse(t, `SELECT COUNT(*) FROM d, e
		WHERE Between(d.text, 'id="', '" url=') = Sprintf(e.id, 'T%06d')
		AND Prefix(d.text, 3) = 'abc'`)
	if len(q.Joins) != 1 || len(q.Sels) != 1 {
		t.Fatalf("joins=%d sels=%d", len(q.Joins), len(q.Sels))
	}
	if !strings.HasPrefix(q.Joins[0].L.Fn.Name, "Between") {
		t.Errorf("left fn = %q", q.Joins[0].L.Fn.Name)
	}
}

func TestParseMultiTableUDF(t *testing.T) {
	q := parse(t, `SELECT COUNT(*) FROM r, s, t WHERE SumMod(r.a, s.b, 100) = t.k`)
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if q.Joins[0].L.Aliases.Key() != "r+s" {
		t.Errorf("multi-table side = %v", q.Joins[0].L.Aliases)
	}
}

func TestParseCaseInsensitiveKeywordsAndUDFs(t *testing.T) {
	q := parse(t, `select count(*) from r, s where lower(r.x) = lower(s.y)`)
	if len(q.Joins) != 1 {
		t.Errorf("joins = %d", len(q.Joins))
	}
}

func TestCustomRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Register("Twice", func(attrs []string, consts []value.Value) (*expr.UDF, error) {
		if len(attrs) != 1 || len(consts) != 0 {
			return nil, errBadArgs
		}
		return &expr.UDF{
			Name: "Twice",
			Args: []string{attrs[0]},
			Fn:   func(args []value.Value) value.Value { return value.Int(2 * args[0].AsInt()) },
		}, nil
	})
	q, err := Parse("custom", `SELECT COUNT(*) FROM r, s WHERE Twice(r.a) = s.b`, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 || q.Joins[0].L.Fn.Name != "Twice" {
		t.Errorf("custom UDF not wired: %+v", q.Joins)
	}
	got := q.Joins[0].L.Fn.Fn([]value.Value{value.Int(21)})
	if got.AsInt() != 42 {
		t.Errorf("custom UDF eval = %v", got)
	}
	// Lookup is case-insensitive.
	if _, ok := reg.Lookup("tWiCe"); !ok {
		t.Error("registry lookup must be case-insensitive")
	}
}

var errBadArgs = &argErr{}

type argErr struct{}

func (*argErr) Error() string { return "bad arguments" }

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT COUNT(*)`,
		`SELECT MAX(r.a) FROM r`,
		`SELECT COUNT(*) FROM r WHERE`,
		`SELECT COUNT(*) FROM r WHERE r.a`,
		`SELECT COUNT(*) FROM r WHERE r.a = `,
		`SELECT COUNT(*) FROM r WHERE 'a' = 'b'`,
		`SELECT COUNT(*) FROM r WHERE Nope(r.a) = 1`,
		`SELECT COUNT(*) FROM r WHERE Prefix(r.a) = 'x'`, // missing literal arg
		`SELECT COUNT(*) FROM r WHERE r.a = 'unterminated`,
		`SELECT COUNT(*) FROM r WHERE r.a = r.b extra`,
		`SELECT COUNT(*) FROM r, r WHERE r.a = 1`, // duplicate alias
		`SELECT COUNT(*) FROM r WHERE r.a = ?`,
		`SELECT COUNT(*) FROM r WHERE r.a = -`,
	}
	for _, src := range cases {
		if _, err := Parse("bad", src, nil); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsedQueryValidates(t *testing.T) {
	q := parse(t, `SELECT COUNT(*) FROM a, b, c
		WHERE a.x = b.x AND HashMod(b.y, 8) = HashMod(c.y, 8)`)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !q.Connected(query.NewAliasSet("a"), query.NewAliasSet("b")) {
		t.Error("parsed join graph wrong")
	}
}
