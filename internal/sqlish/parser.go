package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"monsoon/internal/expr"
	"monsoon/internal/query"
	"monsoon/internal/value"
)

// UDFFactory builds a UDF instance from its call-site arguments: attrs are
// the fully qualified attribute references, consts the literal arguments, in
// their original relative order within each class.
type UDFFactory func(attrs []string, consts []value.Value) (*expr.UDF, error)

// Registry resolves UDF names (case-insensitive) to factories. A Registry
// with the library UDFs pre-registered comes from NewRegistry; Register adds
// custom ones.
type Registry struct {
	factories map[string]UDFFactory
}

// Register adds or replaces a factory under a (case-insensitive) name.
func (r *Registry) Register(name string, f UDFFactory) {
	r.factories[strings.ToLower(name)] = f
}

// Lookup resolves a factory.
func (r *Registry) Lookup(name string) (UDFFactory, bool) {
	f, ok := r.factories[strings.ToLower(name)]
	return f, ok
}

func nArgs(name string, wantAttrs, wantConsts int, f func([]string, []value.Value) *expr.UDF) UDFFactory {
	return func(attrs []string, consts []value.Value) (*expr.UDF, error) {
		if len(attrs) != wantAttrs || len(consts) != wantConsts {
			return nil, fmt.Errorf("sqlish: %s expects %d attribute and %d literal arguments, got %d and %d",
				name, wantAttrs, wantConsts, len(attrs), len(consts))
		}
		return f(attrs, consts), nil
	}
}

// NewRegistry returns a registry with the expr stdlib pre-registered under
// their SQL-visible names.
func NewRegistry() *Registry {
	r := &Registry{factories: map[string]UDFFactory{}}
	r.Register("ExtractDate", nArgs("ExtractDate", 1, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.ExtractDate(a[0])
	}))
	r.Register("City", nArgs("City", 1, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.City(a[0])
	}))
	r.Register("Lower", nArgs("Lower", 1, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.Lower(a[0])
	}))
	r.Register("YearOf", nArgs("YearOf", 1, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.YearOf(a[0])
	}))
	r.Register("SetKey", nArgs("SetKey", 1, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.SetEqualsKey(a[0])
	}))
	r.Register("Prefix", nArgs("Prefix", 1, 1, func(a []string, c []value.Value) *expr.UDF {
		return expr.Prefix(a[0], int(c[0].AsInt()))
	}))
	r.Register("HashMod", nArgs("HashMod", 1, 1, func(a []string, c []value.Value) *expr.UDF {
		return expr.HashMod(a[0], c[0].AsInt())
	}))
	r.Register("Sprintf", nArgs("Sprintf", 1, 1, func(a []string, c []value.Value) *expr.UDF {
		return expr.Sprintf(a[0], c[0].AsString())
	}))
	r.Register("Between", nArgs("Between", 1, 2, func(a []string, c []value.Value) *expr.UDF {
		return expr.Between(a[0], c[0].AsString(), c[1].AsString())
	}))
	r.Register("ConcatKey", nArgs("ConcatKey", 2, 0, func(a []string, _ []value.Value) *expr.UDF {
		return expr.ConcatKey(a[0], a[1])
	}))
	r.Register("SumMod", nArgs("SumMod", 2, 1, func(a []string, c []value.Value) *expr.UDF {
		return expr.SumMod(a[0], a[1], c[0].AsInt())
	}))
	return r
}

// term is one side of a parsed condition.
type term struct {
	fn    *expr.UDF   // non-nil for UDF calls and attribute refs (identity)
	lit   value.Value // set when the side is a literal
	isLit bool
	pos   int
}

// parser holds the token stream.
type parser struct {
	lex  *lexer
	tok  token
	reg  *Registry
	name string
}

// Parse parses one statement into a query. The name labels the query (for
// benchmark tables and traces); reg may be nil for the default registry.
func Parse(name, src string, reg *Registry) (*query.Query, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	p := &parser{lex: &lexer{src: src}, reg: reg, name: name}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseSelect()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlish: at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	b := query.NewBuilder(p.name)
	// Aggregate: COUNT(*) or SUM(alias.attr).
	switch {
	case p.keyword("COUNT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
	case p.keyword("SUM"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		attr, err := p.parseQualifiedAttr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		b.Sum(attr)
	default:
		return nil, p.errf("expected COUNT(*) or SUM(attr), found %s", p.tok)
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tbl, err := p.expect(tokIdent, "table name")
		if err != nil {
			return nil, err
		}
		alias := tbl.text
		if p.tok.kind == tokIdent && !p.keyword("WHERE") {
			alias = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		b.Rel(alias, tbl.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	if p.tok.kind != tokEOF {
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		for {
			if err := p.parseCondition(b); err != nil {
				return nil, err
			}
			if !p.keyword("AND") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input: %s", p.tok)
	}
	return b.Build()
}

// parseCondition parses `term = term` and adds it as a join or selection.
func (p *parser) parseCondition(b *query.Builder) error {
	left, err := p.parseTerm()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEq, "="); err != nil {
		return err
	}
	right, err := p.parseTerm()
	if err != nil {
		return err
	}
	switch {
	case !left.isLit && !right.isLit:
		b.Join(left.fn, right.fn)
	case !left.isLit && right.isLit:
		b.Select(left.fn, right.lit)
	case left.isLit && !right.isLit:
		b.Select(right.fn, left.lit)
	default:
		return fmt.Errorf("sqlish: at offset %d: a condition between two literals is not supported", left.pos)
	}
	return nil
}

// parseTerm parses a UDF call, a qualified attribute (wrapped in Identity),
// or a literal.
func (p *parser) parseTerm() (term, error) {
	pos := p.tok.pos
	switch p.tok.kind {
	case tokString:
		v := value.String(p.tok.text)
		return term{lit: v, isLit: true, pos: pos}, p.advance()
	case tokNumber:
		v, err := parseNumber(p.tok.text)
		if err != nil {
			return term{}, p.errf("%v", err)
		}
		return term{lit: v, isLit: true, pos: pos}, p.advance()
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return term{}, err
		}
		if p.tok.kind == tokDot {
			// alias.attr
			if err := p.advance(); err != nil {
				return term{}, err
			}
			attr, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return term{}, err
			}
			return term{fn: expr.Identity(name + "." + attr.text), pos: pos}, nil
		}
		if p.tok.kind != tokLParen {
			return term{}, p.errf("expected '.' or '(' after %q", name)
		}
		return p.parseCall(name, pos)
	default:
		return term{}, p.errf("expected a term, found %s", p.tok)
	}
}

// parseCall parses name(arg, ...) where args are qualified attributes or
// literals, and instantiates the UDF through the registry.
func (p *parser) parseCall(name string, pos int) (term, error) {
	factory, ok := p.reg.Lookup(name)
	if !ok {
		return term{}, p.errf("unknown UDF %q (register it before parsing)", name)
	}
	if err := p.advance(); err != nil { // consume '('
		return term{}, err
	}
	var attrs []string
	var consts []value.Value
	for p.tok.kind != tokRParen {
		switch p.tok.kind {
		case tokIdent:
			a, err := p.parseQualifiedAttr()
			if err != nil {
				return term{}, err
			}
			attrs = append(attrs, a)
		case tokString:
			consts = append(consts, value.String(p.tok.text))
			if err := p.advance(); err != nil {
				return term{}, err
			}
		case tokNumber:
			v, err := parseNumber(p.tok.text)
			if err != nil {
				return term{}, p.errf("%v", err)
			}
			consts = append(consts, v)
			if err := p.advance(); err != nil {
				return term{}, err
			}
		default:
			return term{}, p.errf("expected a UDF argument, found %s", p.tok)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return term{}, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return term{}, err
	}
	fn, err := factory(attrs, consts)
	if err != nil {
		return term{}, err
	}
	return term{fn: fn, pos: pos}, nil
}

func (p *parser) parseQualifiedAttr() (string, error) {
	alias, err := p.expect(tokIdent, "alias")
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return "", err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return "", err
	}
	return alias.text + "." + attr.text, nil
}

func parseNumber(text string) (value.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("bad number %q", text)
		}
		return value.Float(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Null(), fmt.Errorf("bad number %q", text)
	}
	return value.Int(n), nil
}
