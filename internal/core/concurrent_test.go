package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/obs"
	"monsoon/internal/plancache"
	"monsoon/internal/stats"
)

// capture is everything one run observes that determinism promises to fix:
// the result accounting, the executed multi-step plan, the legacy trace
// lines, and (for span-level comparisons) the structured span stream.
type capture struct {
	res   *Result
	lines []string
	spans []*obs.Span
}

// spanKey renders the machine-independent part of a span — everything except
// IDs and wall-clock timing, which legitimately differ between runs.
func spanKey(sp *obs.Span) string {
	return fmt.Sprintf("%s|%s|in=%d|out=%d|prod=%g|num=%v|str=%v",
		sp.Kind, sp.Name, sp.RowsIn, sp.RowsOut, sp.Produced, sp.Num, sp.Str)
}

func spanKeys(spans []*obs.Span) []string {
	keys := make([]string, len(spans))
	for i, sp := range spans {
		keys[i] = spanKey(sp)
	}
	return keys
}

// checkSameOutcome compares the parts of two captures that must match for any
// two runs of the same (query, seed): accounting, trees, and trace lines.
func checkSameOutcome(t *testing.T, label string, got, want capture) {
	t.Helper()
	g, w := got.res, want.res
	if g.Value != w.Value || g.Rows != w.Rows || g.Produced != w.Produced {
		t.Errorf("%s: value/rows/produced %g/%d/%g, solo %g/%d/%g",
			label, g.Value, g.Rows, g.Produced, w.Value, w.Rows, w.Produced)
	}
	if g.Actions != w.Actions || g.Executes != w.Executes || g.SigmaOps != w.SigmaOps {
		t.Errorf("%s: actions/executes/sigma %d/%d/%d, solo %d/%d/%d",
			label, g.Actions, g.Executes, g.SigmaOps, w.Actions, w.Executes, w.SigmaOps)
	}
	if !reflect.DeepEqual(runTrees(g), runTrees(w)) {
		t.Errorf("%s: executed trees %q, solo %q", label, runTrees(g), runTrees(w))
	}
	if !reflect.DeepEqual(got.lines, want.lines) {
		t.Errorf("%s: trace lines\n%q\nsolo\n%q", label, got.lines, want.lines)
	}
	if g.Output == nil || w.Output == nil {
		t.Fatalf("%s: missing output relation (got %v, solo %v)", label, g.Output, w.Output)
	}
	if g.Output.Count() != w.Output.Count() {
		t.Errorf("%s: output rows %d, solo %d", label, g.Output.Count(), w.Output.Count())
	}
}

// TestConcurrentSessionsBitIdentical is the shared-substrate determinism
// gate this package's Exec-scope refactor exists for: N Sessions running
// concurrently on ONE engine, sharing ONE plan cache and cloning ONE seed
// statistics store, must each produce bit-identical results, executed trees,
// and trace lines to a solo run of the same (query, seed) on a private
// engine. Run under -race this also proves the sharing is memory-safe.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	seeds := []int64{7, 11, 42}
	const perSeed = 2 // two racing sessions per seed exercises same-key cache races

	solo := make(map[int64]capture)
	seedStats := stats.New()
	for _, seed := range seeds {
		cat, q := fixture()
		eng := engine.New(cat)
		var lines []string
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: seed, Iterations: 300, Stats: seedStats.Clone(),
			Trace: func(s string) { lines = append(lines, s) },
		})
		if err != nil {
			t.Fatalf("solo seed %d: %v", seed, err)
		}
		solo[seed] = capture{res: res, lines: lines}
	}

	// One shared engine, catalog, and cache for every concurrent session.
	cat, _ := fixture()
	eng := engine.New(cat)
	cache := plancache.New(0)

	type slot struct {
		seed int64
		cap  capture
		err  error
	}
	slots := make([]slot, len(seeds)*perSeed)
	var wg sync.WaitGroup
	for i := range slots {
		slots[i].seed = seeds[i%len(seeds)]
		wg.Add(1)
		go func(sl *slot) {
			defer wg.Done()
			_, q := fixture() // private query value; tables resolve in the shared catalog
			var lines []string
			res, err := Run(q, eng, &engine.Budget{}, Config{
				Seed: sl.seed, Iterations: 300, Stats: seedStats.Clone(),
				Cache: cache, Trace: func(s string) { lines = append(lines, s) },
			})
			sl.cap, sl.err = capture{res: res, lines: lines}, err
		}(&slots[i])
	}
	wg.Wait()

	for i, sl := range slots {
		if sl.err != nil {
			t.Fatalf("concurrent session %d (seed %d): %v", i, sl.seed, sl.err)
		}
		checkSameOutcome(t, fmt.Sprintf("session %d (seed %d)", i, sl.seed), sl.cap, solo[sl.seed])
		// Every action is either planned (one miss per planning call) or
		// replayed (one hit replays the whole remaining round, possibly
		// several actions), so consultations never exceed actions — and a
		// session that took actions consulted the cache at least once. The
		// exact split depends on which racing session memoized a round
		// first, so it is deliberately not pinned here.
		if hm := sl.cap.res.CacheHits + sl.cap.res.CacheMisses; hm == 0 || hm > sl.cap.res.Actions {
			t.Errorf("session %d: cache hits+misses = %d, want in [1, actions=%d]",
				i, hm, sl.cap.res.Actions)
		}
	}
}

// TestConcurrentSessionsSpanStreamsIdentical compares the full structured
// span streams of concurrent cacheless sessions against solo runs: with the
// engine and planner pinned serial (no KWorker or shard fan-out, no
// cache_hit attributes), every span — kind, name, rows, produced, numeric
// and string attributes, in emission order — must match the solo stream
// exactly even while other sessions hammer the same engine.
func TestConcurrentSessionsSpanStreamsIdentical(t *testing.T) {
	seeds := []int64{7, 11, 42}
	pinned := func(seed int64) Config {
		return Config{Seed: seed, Iterations: 300, Parallelism: 1, PlanParallelism: 1}
	}

	solo := make(map[int64][]string)
	for _, seed := range seeds {
		cat, q := fixture()
		eng := engine.New(cat)
		col := &obs.Collector{}
		cfg := pinned(seed)
		cfg.Sink = col
		if _, err := Run(q, eng, &engine.Budget{}, cfg); err != nil {
			t.Fatalf("solo seed %d: %v", seed, err)
		}
		solo[seed] = spanKeys(col.Spans)
	}

	cat, _ := fixture()
	eng := engine.New(cat)
	streams := make([][]string, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			_, q := fixture()
			col := &obs.Collector{}
			cfg := pinned(seed)
			cfg.Sink = col
			_, errs[i] = Run(q, eng, &engine.Budget{}, cfg)
			streams[i] = spanKeys(col.Spans)
		}(i, seed)
	}
	wg.Wait()

	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("concurrent seed %d: %v", seed, errs[i])
		}
		if !reflect.DeepEqual(streams[i], solo[seed]) {
			t.Errorf("seed %d: concurrent span stream diverged from solo", seed)
			for j := 0; j < len(streams[i]) && j < len(solo[seed]); j++ {
				if streams[i][j] != solo[seed][j] {
					t.Errorf("  first divergence at span %d:\n  concurrent %s\n  solo       %s",
						j, streams[i][j], solo[seed][j])
					break
				}
			}
			if len(streams[i]) != len(solo[seed]) {
				t.Errorf("  stream lengths %d vs %d", len(streams[i]), len(solo[seed]))
			}
		}
	}
}

// TestPartialWarmCacheMatchesColdRun pins the replay/planner RNG alignment:
// a session that hits the cache for its first round but must plan later
// rounds itself (the normal state when concurrent sessions race to populate
// a shared cache) must make exactly the plan choices of a cache-free run.
// Before RootPlanner.SkipCalls, the skipped Plan calls left the per-call RNG
// streams misaligned and the hit-then-miss run settled on different plans.
func TestPartialWarmCacheMatchesColdRun(t *testing.T) {
	const seed, iterations = 11, 300

	// Cache-free baseline.
	cat, q := fixture()
	var baseLines []string
	base, err := Run(q, engine.New(cat), &engine.Budget{}, Config{
		Seed: seed, Iterations: iterations,
		Trace: func(s string) { baseLines = append(baseLines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Executes < 2 {
		t.Fatalf("fixture run has %d rounds; need ≥2 to leave the cache partially warm", base.Executes)
	}

	// Populate the cache with ONLY the first round: drive a session through
	// one plan/execute cycle and abandon it.
	cache := plancache.New(0)
	cat2, q2 := fixture()
	s := NewSession(q2, engine.New(cat2), &engine.Budget{}, Config{
		Seed: seed, Iterations: iterations, Cache: cache,
	})
	if execute, err := s.PlanRound(); err != nil || !execute {
		t.Fatalf("first PlanRound: execute=%v err=%v", execute, err)
	}
	if err := s.ExecuteRound(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The full run through the half-warm cache: first round replays, later
	// rounds plan. Everything observable must match the cache-free baseline.
	cat3, q3 := fixture()
	var warmLines []string
	warm, err := Run(q3, engine.New(cat3), &engine.Budget{}, Config{
		Seed: seed, Iterations: iterations, Cache: cache,
		Trace: func(s string) { warmLines = append(warmLines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 || warm.CacheMisses == 0 {
		t.Fatalf("hits/misses = %d/%d; test needs a genuinely partial cache (both nonzero)",
			warm.CacheHits, warm.CacheMisses)
	}
	checkSameOutcome(t, "half-warm run",
		capture{res: warm, lines: warmLines}, capture{res: base, lines: baseLines})
}
