// Package core is the paper's primary contribution: the Monsoon optimizer.
// It formalizes interleaved statistics collection and execution as a Markov
// decision process (§4) — states are (planned expressions Rp, materialized
// expressions Re, statistics S); actions build join trees, attach Σ
// statistics-collection operators, or EXECUTE; EXECUTE transitions are
// stochastic, hardening unknown statistics — and solves it online with
// Monte-Carlo tree search (§5.1) against a prior over distinct-value counts
// (§5.2). The Driver (§5.3) alternates MCTS planning with real execution on
// the engine until the query result is materialized.
package core

import (
	"fmt"
	"sort"
	"strings"

	"monsoon/internal/mcts"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/stats"
)

// PlannedTree is one entry of Rp.
type PlannedTree struct {
	Tree *plan.Node
	// SigmaCopy marks trees created by copying an already-materialized
	// expression from Re and topping it with Σ (§4.2 action 1). Such trees
	// are read-only side computations and are exempt from the pairwise
	// alias-disjointness the other planned trees keep.
	SigmaCopy bool
}

// State is the MDP state (§4.1). Plan-edit transitions share the statistics
// store; only EXECUTE transitions clone it.
type State struct {
	// Planned is Rp, in insertion order.
	Planned []PlannedTree
	// Active is the frontier of Re: materialized expressions whose alias
	// sets are pairwise disjoint and not subsumed by a larger materialized
	// expression. Sorted by key for determinism.
	Active []query.AliasSet
	// St is the statistics set S.
	St *stats.Store

	// plannedIdx and activeIdx map expression key → slice index so the
	// find* lookups hit in every MCTS rollout stay O(1). They are
	// maintained on clone and on every mutation of Planned/Active; keys
	// are unique within each slice (the legality rules never plan or
	// activate the same expression twice).
	plannedIdx map[string]int
	activeIdx  map[string]int

	full query.AliasSet // alias set of the whole query
	done bool           // a materialization covering the full set has run
}

// NewInitialState builds the start state: no plans, every base relation
// active, and whatever statistics st already holds (raw input sizes at
// minimum; callers with partial knowledge may pre-seed more, §3.1).
func NewInitialState(q *query.Query, st *stats.Store) *State {
	s := &State{St: st, full: q.Aliases()}
	for _, name := range s.full.Names() {
		s.Active = append(s.Active, query.NewAliasSet(name))
	}
	s.sortActive()
	return s
}

func (s *State) sortActive() {
	sort.Slice(s.Active, func(i, j int) bool { return s.Active[i].Key() < s.Active[j].Key() })
	s.reindexActive()
}

// reindexActive rebuilds activeIdx from the Active slice.
func (s *State) reindexActive() {
	s.activeIdx = make(map[string]int, len(s.Active))
	for i, a := range s.Active {
		s.activeIdx[a.Key()] = i
	}
}

// reindexPlanned rebuilds plannedIdx from the Planned slice.
func (s *State) reindexPlanned() {
	s.plannedIdx = make(map[string]int, len(s.Planned))
	for i, t := range s.Planned {
		s.plannedIdx[t.Tree.Key()] = i
	}
}

// addPlanned appends a tree to Rp and indexes it.
func (s *State) addPlanned(t PlannedTree) {
	if s.plannedIdx == nil {
		s.plannedIdx = make(map[string]int, 1)
	}
	s.Planned = append(s.Planned, t)
	s.plannedIdx[t.Tree.Key()] = len(s.Planned) - 1
}

// Terminal reports whether the full query result has been materialized. A
// flag (set when an executed expression covers every alias) rather than an
// inspection of Active: for single-relation queries the full alias set is
// "active" from the start, yet its filtered result still has to be computed.
func (s *State) Terminal() bool { return s.done }

// clone copies the mutable structure; the statistics store is shared unless
// withStats is set.
func (s *State) clone(withStats bool) *State {
	c := &State{full: s.full, St: s.St, done: s.done}
	c.Planned = append([]PlannedTree(nil), s.Planned...)
	c.Active = append([]query.AliasSet(nil), s.Active...)
	c.plannedIdx = cloneIndex(s.plannedIdx)
	c.activeIdx = cloneIndex(s.activeIdx)
	if withStats {
		c.St = s.St.Clone()
	}
	return c
}

func cloneIndex(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// CloneForSearch implements mcts.Cloner: each root-parallel search shard
// plans from its own copy of the root state. The structure (and the index
// maps the rollout-hot lookups use) is copied; the statistics store is
// shared read-only — simulated EXECUTE transitions clone it before
// hardening, exactly as in serial search.
func (s *State) CloneForSearch() mcts.State { return s.clone(false) }

// findPlanned locates a planned tree by its root key; -1 when absent.
func (s *State) findPlanned(key string) int {
	if i, ok := s.plannedIdx[key]; ok {
		return i
	}
	return -1
}

// findActive locates an active entry by key; -1 when absent.
func (s *State) findActive(key string) int {
	if i, ok := s.activeIdx[key]; ok {
		return i
	}
	return -1
}

// OutcomeKey identifies the state for chance-node bucketing: the structure
// plus every statistic, counts log2-bucketed so that nearby sampled worlds
// share subtrees while materially different ones split (§5.1).
func (s *State) OutcomeKey() string {
	var b strings.Builder
	for _, t := range s.Planned {
		b.WriteString(t.Tree.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, a := range s.Active {
		b.WriteString(a.Key())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	b.WriteString(s.St.BucketSignature())
	return b.String()
}

// String renders the state for debugging.
func (s *State) String() string {
	var b strings.Builder
	b.WriteString("Rp={")
	for i, t := range s.Planned {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Tree.String())
	}
	b.WriteString("} Re*={")
	for i, a := range s.Active {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Key())
	}
	fmt.Fprintf(&b, "} |S|=%d+%d", s.St.CountEntries(), s.St.MeasuredEntries())
	return b.String()
}
