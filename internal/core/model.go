package core

import (
	"fmt"
	"math"
	"math/rand"

	"monsoon/internal/cost"
	"monsoon/internal/mcts"
	"monsoon/internal/plan"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
)

// Model is the MDP simulator MCTS plans against (§4.3). Plan edits transition
// deterministically; EXECUTE samples every missing statistic from the prior,
// derives the resulting cardinalities with the recursive generation
// algorithm, and returns the negated §4.4 cost as reward.
type Model struct {
	Q     *query.Query
	Prior prior.Prior
	Rng   *rand.Rand
	// UniformRollout switches the default policy from the greedy completion
	// documented on RolloutAction to uniform random action selection. It
	// exists for the ablation experiment: uniform rollouts hide the value of
	// information from shallow searches.
	UniformRollout bool
	// Profile, when non-nil, makes EXECUTE's reward the negated calibrated
	// plan cost (seconds) instead of the flat §4.4 object count; the rollout
	// policy's greedy join ordering still compares cardinalities, which the
	// calibration leaves untouched.
	Profile *cost.CostProfile
	// Shards exposes the catalog's shard layout to EXECUTE's cost deriver, so
	// the search prices a reshuffled hash build above a co-partitioned one and
	// the reshuffle-vs-local choice becomes a real action trade-off. Nil (or
	// an unsharded layout) keeps simulation bit-identical to pre-sharding.
	Shards cost.ShardLayout
}

var (
	_ mcts.Model        = (*Model)(nil)
	_ mcts.RolloutModel = (*Model)(nil)
	_ mcts.Forker       = (*Model)(nil)
)

// Fork implements mcts.Forker: an independent simulator for one search
// shard. The query and prior are immutable and shared; the prior-sampling
// RNG — the model's only mutable state — is private to the fork, seeded from
// seed, so shards step their simulators concurrently without touching each
// other's sample streams.
func (m *Model) Fork(seed int64) mcts.Model {
	return &Model{Q: m.Q, Prior: m.Prior, Rng: randx.New(seed),
		UniformRollout: m.UniformRollout, Profile: m.Profile, Shards: m.Shards}
}

// Legal implements mcts.Model.
func (m *Model) Legal(s mcts.State) []mcts.Action {
	acts := legalActions(s.(*State), m.Q)
	out := make([]mcts.Action, len(acts))
	for i, a := range acts {
		out[i] = a
	}
	return out
}

// Step implements mcts.Model. It never mutates the input state: plan edits
// clone the structure (sharing statistics), EXECUTE clones the statistics
// too before hardening them with sampled values.
func (m *Model) Step(s mcts.State, a mcts.Action) (mcts.State, float64, bool) {
	st := s.(*State)
	act := a.(Action)
	if act.Kind != ActExecute {
		ns, err := applyPlanEdit(st, m.Q, act)
		if err != nil {
			panic(err) // planner bug: actions come from legalActions
		}
		return ns, 0, false
	}
	ns := st.clone(true)
	dv := &cost.Deriver{Q: m.Q, St: ns.St, Miss: m.priorMiss(), Profile: m.Profile, Layout: m.Shards}
	total := 0.0
	for _, t := range ns.Planned {
		total += dv.PlanCost(t.Tree)
		if t.Tree.Sigma {
			m.simSigma(dv, ns, t.Tree)
		}
	}
	settleExecution(ns)
	return ns, -total, true
}

// priorMiss adapts the prior to the Deriver's MissFn: the stochastic
// transition samples the hidden world.
func (m *Model) priorMiss() cost.MissFn {
	return func(_ *query.Term, _, _ string, cExpr, cPartner float64) float64 {
		return m.Prior.Sample(m.Rng, cExpr, cPartner)
	}
}

// meanMiss resolves missing statistics with the prior's expectation. The
// rollout policy must use this, never priorMiss: a blind plan's quality has
// to be evaluated without access to the very statistics the world will only
// reveal at execution, otherwise simulation systematically undervalues Σ
// probes (the policy would be an oracle and information would be worthless).
func (m *Model) meanMiss() cost.MissFn {
	return func(_ *query.Term, _, _ string, cExpr, cPartner float64) float64 {
		return m.Prior.Mean(cExpr, cPartner)
	}
}

// simSigma simulates the Σ operator: every open join term evaluable over the
// materialized expression gets its distinct count hardened — resolved through
// the same lookup chain the cost model uses (so values already sampled while
// deriving this transition's counts stay consistent) and promoted to a
// measured statistic in the sampled world.
func (m *Model) simSigma(dv *cost.Deriver, ns *State, tree *plan.Node) {
	cover := tree.Aliases()
	key := tree.Key()
	cE, ok := ns.St.Count(key)
	if !ok {
		cE = dv.NodeCount(tree.WithoutSigma())
	}
	for _, p := range m.Q.Joins {
		for ti, t := range []*query.Term{p.L, p.R} {
			if !t.Aliases.SubsetOf(cover) || p.ApplicableAt(cover) {
				continue
			}
			if ns.St.HasMeasured(t.ID, key) {
				continue
			}
			other := p.R
			if ti == 1 {
				other = p.L
			}
			pKey := other.Aliases.Key()
			cP := m.partnerCount(dv, other.Aliases)
			d := dv.Distinct(t, key, pKey, cE, cP)
			ns.St.SetMeasured(t.ID, key, d)
		}
	}
}

// partnerCount estimates the cardinality of the minimal expression covering
// a term's aliases, for parameterizing the prior: a known count wins, a
// single alias estimates its filtered scan, a multi-alias set falls back to
// the product of its members' filtered estimates.
func (m *Model) partnerCount(dv *cost.Deriver, aliases query.AliasSet) float64 {
	if c, ok := dv.St.Count(aliases.Key()); ok {
		return c
	}
	prod := 1.0
	for _, name := range aliases.Names() {
		prod *= dv.NodeCount(plan.NewLeaf(query.NewAliasSet(name)))
	}
	return prod
}

// RolloutAction implements mcts.RolloutModel with a greedy default policy:
// finish the query with the join order that looks cheapest under the rollout
// world's statistics (hardened values where known, prior samples elsewhere),
// then EXECUTE. Σ actions are never taken during rollouts — the tree policy
// explores them — so a rollout directly prices "commit now with what this
// world knows", which is exactly what makes the value of information visible
// to the search: a subtree below a simulated Σ completes with the hardened
// statistic, a subtree that guessed completes blind.
func (m *Model) RolloutAction(s mcts.State, rng *rand.Rand) mcts.Action {
	st := s.(*State)
	acts := legalActions(st, m.Q)
	if len(acts) == 0 {
		return nil
	}
	if m.UniformRollout {
		return acts[rng.Intn(len(acts))]
	}
	var dv *cost.Deriver // lazily built: most states have join candidates
	bestJoin := -1
	bestCount := math.Inf(1)
	execIdx := -1
	for i, a := range acts {
		switch a.Kind {
		case ActExecute:
			execIdx = i
		case ActJoinMats, ActJoinPlanned, ActJoinMatPlanned:
			if dv == nil {
				dv = &cost.Deriver{Q: m.Q, St: st.St.Clone(), Miss: m.meanMiss()}
			}
			node, err := joinCandidate(st, a)
			if err != nil {
				continue
			}
			if c := dv.NodeCount(node); c < bestCount {
				bestCount = c
				bestJoin = i
			}
		}
	}
	if bestJoin >= 0 {
		return acts[bestJoin]
	}
	if execIdx >= 0 {
		return acts[execIdx]
	}
	return acts[rng.Intn(len(acts))]
}

// joinCandidate builds the plan node a join action would create, for costing.
func joinCandidate(s *State, a Action) (*plan.Node, error) {
	pick := func(kind ActionKind, key string) (*plan.Node, error) {
		if kind == ActJoinPlanned {
			if i := s.findPlanned(key); i >= 0 {
				return s.Planned[i].Tree, nil
			}
			return nil, fmt.Errorf("core: planned %q missing", key)
		}
		if i := s.findActive(key); i >= 0 {
			return plan.NewLeaf(s.Active[i]), nil
		}
		return nil, fmt.Errorf("core: active %q missing", key)
	}
	var l, r *plan.Node
	var err error
	switch a.Kind {
	case ActJoinMats:
		if l, err = pick(ActJoinMats, a.A); err != nil {
			return nil, err
		}
		r, err = pick(ActJoinMats, a.B)
	case ActJoinPlanned:
		if l, err = pick(ActJoinPlanned, a.A); err != nil {
			return nil, err
		}
		r, err = pick(ActJoinPlanned, a.B)
	case ActJoinMatPlanned:
		if l, err = pick(ActJoinMats, a.A); err != nil {
			return nil, err
		}
		r, err = pick(ActJoinPlanned, a.B)
	default:
		return nil, fmt.Errorf("core: %v is not a join action", a)
	}
	if err != nil {
		return nil, err
	}
	return plan.NewJoin(l.WithoutSigma(), r.WithoutSigma()), nil
}
