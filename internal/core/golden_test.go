package core

import (
	"reflect"
	"testing"

	"monsoon/internal/engine"
)

// goldenRun is one pinned (fixture, seed) trajectory of the driver: the
// multi-step plan the MDP settled on and its full accounting. Originally
// captured from the pre-Session monolithic core.Run; re-pinned when planning
// switched to the root-parallel shard ensemble (which changed the RNG stream
// decomposition — and, on this fixture, made every seed converge on the
// probe-then-join strategy the old single-stream search only found for some
// seeds). Every future change to the driver must reproduce these values
// bit-for-bit (same plans, same objects produced, same action counts) or
// consciously re-pin.
type goldenRun struct {
	seed                        int64
	iterations                  int
	rows                        int
	value                       float64
	produced                    float64
	actions, executes, sigmaOps int
	trees                       []string
}

var goldenFixtureRuns = []goldenRun{
	{seed: 7, iterations: 300, rows: 0, value: 0, produced: 2400,
		actions: 5, executes: 2, sigmaOps: 1, trees: []string{"Σ(T)", "(S⋈(R⋈T))"}},
	{seed: 11, iterations: 300, rows: 0, value: 0, produced: 2400,
		actions: 5, executes: 2, sigmaOps: 1, trees: []string{"Σ(S)", "(S⋈(R⋈T))"}},
	{seed: 42, iterations: 300, rows: 0, value: 0, produced: 2400,
		actions: 5, executes: 2, sigmaOps: 1, trees: []string{"Σ(S)", "(S⋈(R⋈T))"}},
}

func checkGolden(t *testing.T, label string, g goldenRun, res *Result) {
	t.Helper()
	var trees []string
	for _, n := range res.Executed {
		trees = append(trees, n.String())
	}
	if res.Rows != g.rows || res.Value != g.value || res.Produced != g.produced {
		t.Errorf("%s seed %d: rows/value/produced = %d/%g/%g, golden %d/%g/%g",
			label, g.seed, res.Rows, res.Value, res.Produced, g.rows, g.value, g.produced)
	}
	if res.Actions != g.actions || res.Executes != g.executes || res.SigmaOps != g.sigmaOps {
		t.Errorf("%s seed %d: actions/executes/sigma = %d/%d/%d, golden %d/%d/%d",
			label, g.seed, res.Actions, res.Executes, res.SigmaOps, g.actions, g.executes, g.sigmaOps)
	}
	if !reflect.DeepEqual(trees, g.trees) {
		t.Errorf("%s seed %d: executed trees %q, golden %q", label, g.seed, trees, g.trees)
	}
}

// TestGoldenSeedBehavior pins the driver against the pre-refactor seed
// behavior on the R/S/T fixture.
func TestGoldenSeedBehavior(t *testing.T) {
	for _, g := range goldenFixtureRuns {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{Seed: g.seed, Iterations: g.iterations})
		if err != nil {
			t.Fatalf("seed %d: %v", g.seed, err)
		}
		checkGolden(t, "fixture", g, res)
	}
}

// TestGoldenSeedBehaviorBigFixture pins the driver on the larger fixture whose
// EXECUTE rounds engage the engine's parallel paths.
func TestGoldenSeedBehaviorBig(t *testing.T) {
	g := goldenRun{seed: 13, iterations: 200, rows: 13634, value: 13634,
		produced: 21452, actions: 2, executes: 1, sigmaOps: 0, trees: []string{"(BR⋈BS)"}}
	cat, q := bigFixture()
	eng := engine.New(cat)
	res, err := Run(q, eng, &engine.Budget{}, Config{Seed: g.seed, Iterations: g.iterations})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "big", g, res)
}

// TestGoldenTraceLines pins the legacy textual trace byte-for-byte: the
// Session refactor keeps the Trace callback's lines identical to the
// monolithic driver's output.
func TestGoldenTraceLines(t *testing.T) {
	want := []string{
		"add Σ(S) to Rp",
		"EXECUTE",
		"  materialized Σ(S) (200 objects produced)",
		"join materialized R ⋈ T",
		"join materialized S with planned R+T",
		"EXECUTE",
		"  materialized (S⋈(R⋈T)) (2200 objects produced)",
	}
	cat, q := fixture()
	eng := engine.New(cat)
	var lines []string
	_, err := Run(q, eng, &engine.Budget{}, Config{Seed: 11, Iterations: 300,
		Trace: func(s string) { lines = append(lines, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("trace lines:\n%q\nwant:\n%q", lines, want)
	}
}
