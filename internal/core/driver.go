package core

import (
	"fmt"
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
)

// Config parameterizes one Monsoon run.
type Config struct {
	// Prior over distinct-value counts; nil means the paper's default
	// (Spike and Slab).
	Prior prior.Prior
	// Strategy selects the MCTS selection rule; default UCT.
	Strategy mcts.Strategy
	// Iterations is the MCTS rollout budget per planning call; default 800.
	Iterations int
	// Seed makes the run reproducible.
	Seed int64
	// UniformRollout disables the greedy rollout policy (ablation knob).
	UniformRollout bool
	// Stats, when non-nil, pre-seeds the statistics set S with known
	// statistics (§3.1: "if statistics on a referenced function are
	// available, this can be handled ... by simply initializing the
	// optimization problem so that any relevant statistics are known").
	// Raw base-table counts are always added. The store is used directly
	// and mutated by the run.
	Stats *stats.Store
	// Trace, when non-nil, receives one line per real-world action — the
	// legacy textual trace. It is implemented as an obs.MessageSink layered
	// over the structured event stream, so it composes freely with Sink and
	// its lines stay byte-identical to the pre-instrumentation output.
	Trace func(string)
	// Sink, when non-nil, receives the structured observability stream:
	// spans for every MDP action and engine operator, the legacy trace
	// lines as message events, and one estimate-vs-actual cardinality
	// record per executed plan node. Nil keeps the run trace-free at
	// (almost) zero cost.
	Sink obs.EventSink
	// Metrics, when non-nil, accumulates counters and histograms
	// (actions, executes, Σ ops, planning latency, per-join q-error)
	// across runs sharing the registry.
	Metrics *obs.Registry
	// Parallelism, when non-zero, overrides the engine's worker count for
	// this run's EXECUTE steps: 1 forces the exact serial path, N > 1 caps
	// the partitioned operators at N workers. Serial and parallel runs are
	// bit-identical — same result rows, Σ estimates, and plan choices —
	// so the knob trades wall time only.
	Parallelism int
}

// Result reports a completed (or timed-out) Monsoon run, including the
// component breakdown Table 8 reports: MCTS planning time, Σ statistics
// collection time, and plain execution time.
type Result struct {
	// Value is the query's final aggregate.
	Value float64
	// Rows is the cardinality of the final result.
	Rows int
	// Executes counts EXECUTE transitions (multi-step rounds).
	Executes int
	// Actions counts all real-world MDP actions taken.
	Actions int
	// SigmaOps counts Σ operators executed.
	SigmaOps int
	// PlanTime is total MCTS time; SigmaTime the Σ passes; ExecTime the
	// rest of engine execution.
	PlanTime, SigmaTime, ExecTime time.Duration
	// Produced is the total §4.4 cost actually paid (objects produced).
	Produced float64
	// Executed lists the trees materialized by the EXECUTE rounds, in
	// execution order (the multi-step physical plan the MDP settled on).
	Executed []*plan.Node
}

// Run optimizes and executes q on eng with interleaved MCTS planning and
// execution (§5.3): plan until MCTS prescribes EXECUTE, run all of Rp on the
// engine, harden observed statistics, and repeat until the full result is
// materialized. A budget overrun returns engine.ErrBudget with partial
// accounting in the returned Result.
func Run(q *query.Query, eng *engine.Engine, budget *engine.Budget, cfg Config) (*Result, error) {
	if cfg.Prior == nil {
		cfg.Prior = prior.Default()
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 800
	}
	st := cfg.Stats
	if st == nil {
		st = stats.New()
	}
	eng.SeedBaseStats(q, st)
	s := NewInitialState(q, st)

	tr := obs.NewTracer(obs.Multi(cfg.Sink, obs.MessageSink(cfg.Trace)))
	prevObs := eng.Obs
	eng.Obs = tr
	defer func() { eng.Obs = prevObs }()
	if cfg.Parallelism != 0 {
		prevPar := eng.Parallelism
		eng.Parallelism = cfg.Parallelism
		defer func() { eng.Parallelism = prevPar }()
	}

	model := &Model{
		Q: q, Prior: cfg.Prior,
		Rng:            randx.New(randx.Derive(cfg.Seed, "sim")),
		UniformRollout: cfg.UniformRollout,
	}
	planner := mcts.New(mcts.Config{
		Strategy:   cfg.Strategy,
		Iterations: cfg.Iterations,
	}, randx.New(randx.Derive(cfg.Seed, "mcts")))

	res := &Result{}
	qsp := tr.Start(obs.KQuery, q.Name)
	defer func() {
		qsp.SetRows(0, res.Rows).SetProduced(res.Produced).
			SetNum("actions", float64(res.Actions)).
			SetNum("executes", float64(res.Executes)).
			SetNum("sigma_ops", float64(res.SigmaOps)).
			End()
	}()
	for !s.Terminal() {
		if budget != nil && !budget.Deadline.IsZero() && time.Now().After(budget.Deadline) {
			return res, engine.ErrBudget
		}
		t0 := time.Now()
		psp := tr.Start(obs.KPlan, "mcts")
		picked := planner.Plan(model, s)
		planElapsed := time.Since(t0)
		// LastStats is a value, valid on every return from Plan, so it needs
		// no guard of its own; the span setters are nil-safe no-ops when no
		// sink is attached. (A previous version guarded on the span variable
		// by accident, silently keying the stats block to the tracer.)
		ps := planner.LastStats()
		psp.SetNum("rollouts", float64(ps.Rollouts)).
			SetNum("root_actions", float64(ps.RootActions)).
			SetNum("tree_depth", float64(ps.MaxDepth)).
			SetNum("nodes", float64(ps.Nodes))
		if ps.FastPath {
			psp.SetStr("fast_path", "true")
		}
		psp.End()
		res.PlanTime += planElapsed
		cfg.Metrics.Histogram("monsoon.plan.time").ObserveDuration(planElapsed)
		if picked == nil {
			return res, fmt.Errorf("core: no legal action in non-terminal state %s", s)
		}
		act := picked.(Action)
		res.Actions++
		cfg.Metrics.Counter("monsoon.actions").Inc()
		if tr.Active() {
			tr.Message(act.String())
		}
		asp := tr.Start(obs.KAction, act.Key())
		if act.Kind != ActExecute {
			ns, err := applyPlanEdit(s, q, act)
			if err != nil {
				asp.SetStr("err", err.Error()).End()
				return res, err
			}
			asp.End()
			s = ns
			continue
		}
		// Real-world EXECUTE: run every planned tree on the engine and
		// harden everything it observed.
		ns := s.clone(false)
		round := res.Executes + 1
		// What the optimizer believes each intermediate will produce, under
		// the prior's expectation, frozen before the world answers. Derived
		// on a cloned store (and through Mean, not Sample) so recording the
		// predictions perturbs neither the statistics set nor the RNG
		// stream — traced and untraced runs stay bit-identical.
		var ests map[string]float64
		if tr.Active() || cfg.Metrics != nil {
			dv := &cost.Deriver{Q: q, St: ns.St.Clone(), Miss: model.meanMiss()}
			ests = make(map[string]float64)
			for _, t := range ns.Planned {
				estimateTree(dv, t.Tree, ests)
			}
		}
		roundProduced := 0.0
		for _, t := range ns.Planned {
			if t.Tree.Sigma {
				res.SigmaOps++
				cfg.Metrics.Counter("monsoon.sigma_ops").Inc()
			}
			t1 := time.Now()
			_, er, err := eng.ExecTree(q, t.Tree, budget)
			elapsed := time.Since(t1)
			res.SigmaTime += er.SigmaTime
			res.ExecTime += elapsed - er.SigmaTime
			res.Produced += er.Produced
			roundProduced += er.Produced
			for k, v := range er.Counts {
				st.SetCount(k, v)
			}
			for _, o := range er.Sigma {
				st.SetMeasured(o.Term, o.Expr, o.D)
			}
			if err != nil {
				asp.SetStr("err", err.Error()).SetProduced(roundProduced).End()
				return res, err
			}
			res.Executed = append(res.Executed, t.Tree)
			reportEstimates(tr, cfg.Metrics, t.Tree, ests, er.Counts, er.Times, round)
			if tr.Active() {
				tr.Message(fmt.Sprintf("  materialized %s (%.0f objects produced)", t.Tree, er.Produced))
			}
		}
		settleExecution(ns)
		st.DropAssumed()
		s = ns
		res.Executes++
		cfg.Metrics.Counter("monsoon.executes").Inc()
		asp.SetNum("trees", float64(len(ns.Planned))).SetProduced(roundProduced).End()
	}
	rel, ok := eng.Materialized(q.Aliases().Key())
	if !ok {
		return res, fmt.Errorf("core: terminal state but result not materialized")
	}
	agg := tr.Start(obs.KAggregate, q.Aliases().Key())
	v, err := engine.FinalAggregate(q, rel)
	if err != nil {
		agg.SetStr("err", err.Error()).End()
		return res, err
	}
	agg.SetRows(rel.Count(), 1).End()
	res.Value = v
	res.Rows = rel.Count()
	return res, nil
}

// estimateTree records the deriver's predicted cardinality for every node of
// one planned tree, keyed by plan.Node.Key.
func estimateTree(dv *cost.Deriver, n *plan.Node, out map[string]float64) {
	out[n.Key()] = dv.NodeCount(n)
	if !n.IsLeaf() {
		estimateTree(dv, n.Left, out)
		estimateTree(dv, n.Right, out)
	}
}

// reportEstimates emits one estimate-vs-actual record per executed node whose
// cardinality the engine observed, and feeds join q-errors into the metrics
// registry — the per-join q-error being the single most diagnostic signal for
// how well the prior's expectation matched the hidden world.
func reportEstimates(tr *obs.Tracer, reg *obs.Registry, n *plan.Node, ests, actuals map[string]float64, times map[string]time.Duration, round int) {
	key := n.Key()
	if est, okE := ests[key]; okE {
		if actual, okA := actuals[key]; okA {
			qe := obs.QError(est, actual)
			tr.Estimate(obs.Estimate{
				Expr: key, Join: !n.IsLeaf(), Round: round,
				Est: est, Actual: actual, QError: qe,
				Dur: times[key],
			})
			if !n.IsLeaf() {
				// An empty-vs-nonempty miss is +Inf; clamp so one such join
				// cannot poison the histogram's sum and mean.
				hq := qe
				if hq > 1e12 {
					hq = 1e12
				}
				reg.Histogram("monsoon.qerror.join").Observe(hq)
			}
		}
	}
	if !n.IsLeaf() {
		reportEstimates(tr, reg, n.Left, ests, actuals, times, round)
		reportEstimates(tr, reg, n.Right, ests, actuals, times, round)
	}
}
