package core

import (
	"fmt"
	"time"

	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
)

// Config parameterizes one Monsoon run.
type Config struct {
	// Prior over distinct-value counts; nil means the paper's default
	// (Spike and Slab).
	Prior prior.Prior
	// Strategy selects the MCTS selection rule; default UCT.
	Strategy mcts.Strategy
	// Iterations is the MCTS rollout budget per planning call; default 800.
	Iterations int
	// Seed makes the run reproducible.
	Seed int64
	// UniformRollout disables the greedy rollout policy (ablation knob).
	UniformRollout bool
	// Stats, when non-nil, pre-seeds the statistics set S with known
	// statistics (§3.1: "if statistics on a referenced function are
	// available, this can be handled ... by simply initializing the
	// optimization problem so that any relevant statistics are known").
	// Raw base-table counts are always added. The store is used directly
	// and mutated by the run.
	Stats *stats.Store
	// Trace, when non-nil, receives one line per real-world action.
	Trace func(string)
}

// Result reports a completed (or timed-out) Monsoon run, including the
// component breakdown Table 8 reports: MCTS planning time, Σ statistics
// collection time, and plain execution time.
type Result struct {
	// Value is the query's final aggregate.
	Value float64
	// Rows is the cardinality of the final result.
	Rows int
	// Executes counts EXECUTE transitions (multi-step rounds).
	Executes int
	// Actions counts all real-world MDP actions taken.
	Actions int
	// SigmaOps counts Σ operators executed.
	SigmaOps int
	// PlanTime is total MCTS time; SigmaTime the Σ passes; ExecTime the
	// rest of engine execution.
	PlanTime, SigmaTime, ExecTime time.Duration
	// Produced is the total §4.4 cost actually paid (objects produced).
	Produced float64
}

// Run optimizes and executes q on eng with interleaved MCTS planning and
// execution (§5.3): plan until MCTS prescribes EXECUTE, run all of Rp on the
// engine, harden observed statistics, and repeat until the full result is
// materialized. A budget overrun returns engine.ErrBudget with partial
// accounting in the returned Result.
func Run(q *query.Query, eng *engine.Engine, budget *engine.Budget, cfg Config) (*Result, error) {
	if cfg.Prior == nil {
		cfg.Prior = prior.Default()
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 800
	}
	st := cfg.Stats
	if st == nil {
		st = stats.New()
	}
	eng.SeedBaseStats(q, st)
	s := NewInitialState(q, st)

	model := &Model{
		Q: q, Prior: cfg.Prior,
		Rng:            randx.New(randx.Derive(cfg.Seed, "sim")),
		UniformRollout: cfg.UniformRollout,
	}
	planner := mcts.New(mcts.Config{
		Strategy:   cfg.Strategy,
		Iterations: cfg.Iterations,
	}, randx.New(randx.Derive(cfg.Seed, "mcts")))

	res := &Result{}
	for !s.Terminal() {
		if budget != nil && !budget.Deadline.IsZero() && time.Now().After(budget.Deadline) {
			return res, engine.ErrBudget
		}
		t0 := time.Now()
		picked := planner.Plan(model, s)
		res.PlanTime += time.Since(t0)
		if picked == nil {
			return res, fmt.Errorf("core: no legal action in non-terminal state %s", s)
		}
		act := picked.(Action)
		res.Actions++
		if cfg.Trace != nil {
			cfg.Trace(act.String())
		}
		if act.Kind != ActExecute {
			ns, err := applyPlanEdit(s, q, act)
			if err != nil {
				return res, err
			}
			s = ns
			continue
		}
		// Real-world EXECUTE: run every planned tree on the engine and
		// harden everything it observed.
		ns := s.clone(false)
		for _, t := range ns.Planned {
			if t.Tree.Sigma {
				res.SigmaOps++
			}
			t1 := time.Now()
			_, er, err := eng.ExecTree(q, t.Tree, budget)
			elapsed := time.Since(t1)
			res.SigmaTime += er.SigmaTime
			res.ExecTime += elapsed - er.SigmaTime
			res.Produced += er.Produced
			for k, v := range er.Counts {
				st.SetCount(k, v)
			}
			for _, o := range er.Sigma {
				st.SetMeasured(o.Term, o.Expr, o.D)
			}
			if err != nil {
				return res, err
			}
			if cfg.Trace != nil {
				cfg.Trace(fmt.Sprintf("  materialized %s (%.0f objects produced)", t.Tree, er.Produced))
			}
		}
		settleExecution(ns)
		st.DropAssumed()
		s = ns
		res.Executes++
	}
	rel, ok := eng.Materialized(q.Aliases().Key())
	if !ok {
		return res, fmt.Errorf("core: terminal state but result not materialized")
	}
	v, err := engine.FinalAggregate(q, rel)
	if err != nil {
		return res, err
	}
	res.Value = v
	res.Rows = rel.Count()
	return res, nil
}
