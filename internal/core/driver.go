package core

import (
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

// Config parameterizes one Monsoon run.
type Config struct {
	// Prior over distinct-value counts; nil means the paper's default
	// (Spike and Slab).
	Prior prior.Prior
	// Strategy selects the MCTS selection rule; default UCT.
	Strategy mcts.Strategy
	// Iterations is the MCTS rollout budget per planning call; default 800.
	Iterations int
	// Seed makes the run reproducible.
	Seed int64
	// UniformRollout disables the greedy rollout policy (ablation knob).
	UniformRollout bool
	// Stats, when non-nil, pre-seeds the statistics set S with known
	// statistics (§3.1: "if statistics on a referenced function are
	// available, this can be handled ... by simply initializing the
	// optimization problem so that any relevant statistics are known").
	// Raw base-table counts are always added. The store is used directly
	// and mutated by the run.
	Stats *stats.Store
	// Trace, when non-nil, receives one line per real-world action — the
	// legacy textual trace. It is implemented as an obs.MessageSink layered
	// over the structured event stream, so it composes freely with Sink and
	// its lines stay byte-identical to the pre-instrumentation output.
	Trace func(string)
	// Sink, when non-nil, receives the structured observability stream:
	// spans for every MDP action and engine operator, the legacy trace
	// lines as message events, and one estimate-vs-actual cardinality
	// record per executed plan node. Nil keeps the run trace-free at
	// (almost) zero cost.
	Sink obs.EventSink
	// Metrics, when non-nil, accumulates counters and histograms
	// (actions, executes, Σ ops, planning latency, per-join q-error)
	// across runs sharing the registry.
	Metrics *obs.Registry
	// Parallelism, when non-zero, overrides the engine's worker count for
	// this run's EXECUTE steps: 1 forces the exact serial path, N > 1 caps
	// the partitioned operators at N workers. Serial and parallel runs are
	// bit-identical — same result rows, Σ estimates, and plan choices —
	// so the knob trades wall time only.
	Parallelism int
	// BatchSize, when non-zero, overrides the engine's streaming pipeline
	// batch size for this run's EXECUTE steps: negative disables batching
	// (full materialization between operators, the legacy memory profile),
	// positive caps each pipeline batch at that many rows. Results are
	// bit-identical at every setting; only peak memory and wall time
	// change.
	BatchSize int
	// PlanParallelism caps the OS threads the root-parallel MCTS planner
	// runs search shards on: 0 means all cores, 1 forces serial execution.
	// The search's logical decomposition — shard quotas, per-shard RNG
	// seeds, merge order — is fixed by the iteration budget alone, so every
	// setting picks byte-identical plans; the knob trades planning wall
	// time only.
	PlanParallelism int
	// Cache, when non-nil, memoizes planned rounds across planning calls,
	// rounds, and sessions sharing the cache: before each MCTS call the
	// session looks up (canonical query shape, planner knobs, MDP state
	// with log₂-bucketed statistics) and replays the memoized action
	// sequence on a hit, skipping the search. Repeating an identical run
	// through a warm cache reproduces the cold run's plan choices exactly.
	// Nil disables caching with zero overhead.
	Cache *plancache.Cache
	// Profile, when non-nil, is a calibrated per-operator-kind cost profile
	// (seconds per object, learned from recorded span corpora — see
	// cost.Calibrator): the MDP simulator prices EXECUTE transitions in
	// estimated seconds instead of flat object counts. Profiles participate
	// in the plan-cache key, so calibrated and uncalibrated sessions never
	// share memoized rounds. Nil (the default) keeps the deterministic
	// uncalibrated model — bit-identical to every pinned golden.
	Profile *cost.CostProfile
	// ReplanThreshold, when > 0, arms mid-query re-optimization: after an
	// EXECUTE, if the q-error between a materialized tree's estimated and
	// actual root cardinality reaches the threshold (misses — one side
	// empty — always trigger), the session invalidates this query's
	// plan-cache suffixes and forces the next PlanRound to re-run MCTS with
	// the hardened statistics instead of replaying a memoized round
	// recorded under the misestimate. Zero disables the trigger entirely.
	ReplanThreshold float64
}

// Result reports a completed (or timed-out) Monsoon run, including the
// component breakdown Table 8 reports: MCTS planning time, Σ statistics
// collection time, and plain execution time.
type Result struct {
	// Value is the query's final aggregate.
	Value float64
	// Rows is the cardinality of the final result.
	Rows int
	// Executes counts EXECUTE transitions (multi-step rounds).
	Executes int
	// Actions counts all real-world MDP actions taken.
	Actions int
	// SigmaOps counts Σ operators executed.
	SigmaOps int
	// PlanTime is total MCTS time; SigmaTime the Σ passes; ExecTime the
	// rest of engine execution.
	PlanTime, SigmaTime, ExecTime time.Duration
	// Produced is the total §4.4 cost actually paid (objects produced).
	Produced float64
	// Executed lists the trees materialized by the EXECUTE rounds, in
	// execution order (the multi-step physical plan the MDP settled on).
	Executed []*plan.Node
	// CacheHits and CacheMisses count plan-cache consultations for this
	// run; both zero when no cache is configured.
	CacheHits, CacheMisses int
	// Replans counts the EXECUTE rounds whose observed q-error armed a
	// forced replan (Config.ReplanThreshold); ReplanInvalidations is the
	// total number of plan-cache entries those triggers evicted.
	Replans, ReplanInvalidations int
	// PeakBytes is the largest peak heap allocation any EXECUTE round's
	// tree drain observed. Zero unless Config.Metrics is set (the engine
	// samples runtime.MemStats only when a registry is attached).
	PeakBytes float64
	// Output is the materialized full join result, set by Finalize. Each
	// session materializes into its own scope (never the shared engine), so
	// callers that need the result rows read them here.
	Output *table.Relation
}

// Run optimizes and executes q on eng with interleaved MCTS planning and
// execution (§5.3): plan until MCTS prescribes EXECUTE, run all of Rp on the
// engine, harden observed statistics, and repeat until the full result is
// materialized. A budget overrun returns engine.ErrBudget with partial
// accounting in the returned Result.
//
// Run is a thin wrapper over the Session pipeline; drive a Session directly
// to observe or stop the run between rounds.
func Run(q *query.Query, eng *engine.Engine, budget *engine.Budget, cfg Config) (*Result, error) {
	s := NewSession(q, eng, budget, cfg)
	defer s.Close()
	for {
		execute, err := s.PlanRound()
		if err != nil {
			return s.Result(), err
		}
		if !execute {
			break
		}
		if err := s.ExecuteRound(); err != nil {
			return s.Result(), err
		}
	}
	return s.Finalize()
}
