package core

import (
	"testing"

	"monsoon/internal/randx"
)

// checkIndexes verifies the key→index maps agree exactly with the slices
// they shadow: every slice entry is found at its own index, the maps carry
// no extra keys, and absent keys miss.
func checkIndexes(t *testing.T, label string, s *State) {
	t.Helper()
	if len(s.plannedIdx) != len(s.Planned) {
		t.Fatalf("%s: plannedIdx has %d keys for %d trees", label, len(s.plannedIdx), len(s.Planned))
	}
	for i, tr := range s.Planned {
		if got := s.findPlanned(tr.Tree.Key()); got != i {
			t.Fatalf("%s: findPlanned(%q) = %d, slice index %d", label, tr.Tree.Key(), got, i)
		}
	}
	if len(s.activeIdx) != len(s.Active) {
		t.Fatalf("%s: activeIdx has %d keys for %d entries", label, len(s.activeIdx), len(s.Active))
	}
	for i, a := range s.Active {
		if got := s.findActive(a.Key()); got != i {
			t.Fatalf("%s: findActive(%q) = %d, slice index %d", label, a.Key(), got, i)
		}
	}
	if s.findPlanned("⊥no-such-key") != -1 || s.findActive("⊥no-such-key") != -1 {
		t.Fatalf("%s: absent key must return -1", label)
	}
}

// TestIndexMapsStayConsistent walks random legal-action trajectories —
// every plan-edit kind plus EXECUTE settlement — and asserts after each
// transition that plannedIdx/activeIdx mirror the Planned/Active slices.
// This is the invariant the O(1) find* lookups rely on.
func TestIndexMapsStayConsistent(t *testing.T) {
	cat, q := fixture()
	for seed := int64(0); seed < 20; seed++ {
		rng := randx.New(seed)
		s, _ := initState(q, cat)
		checkIndexes(t, "initial", s)
		for step := 0; step < 40 && !s.Terminal(); step++ {
			acts := legalActions(s, q)
			if len(acts) == 0 {
				break
			}
			a := acts[rng.Intn(len(acts))]
			if a.Kind == ActExecute {
				// Mimic the driver's settlement without running the engine:
				// the frontier update is all that touches the indexes.
				s = s.clone(true)
				settleExecution(s)
			} else {
				next, err := applyPlanEdit(s, q, a)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				// The edit must not have corrupted the parent either.
				checkIndexes(t, "parent after "+a.Key(), s)
				s = next
			}
			checkIndexes(t, a.Key(), s)
		}
	}
}
