package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"monsoon/internal/engine"
	"monsoon/internal/obs"
)

// TestTraceShimByteIdentical locks the legacy Config.Trace contract: the
// lines delivered through the obs.MessageSink shim must be byte-identical
// whether or not a structured sink rides alongside, and must keep the exact
// action-string and "  materialized ..." formats callers grew to parse.
func TestTraceShimByteIdentical(t *testing.T) {
	run := func(withSink bool) ([]string, *obs.Collector) {
		cat, q := fixture()
		eng := engine.New(cat)
		var lines []string
		cfg := Config{
			Seed: 9, Iterations: 200,
			Trace: func(s string) { lines = append(lines, s) },
		}
		col := &obs.Collector{}
		if withSink {
			cfg.Sink = col
		}
		if _, err := Run(q, eng, &engine.Budget{}, cfg); err != nil {
			t.Fatal(err)
		}
		return lines, col
	}
	plain, _ := run(false)
	both, col := run(true)
	if !reflect.DeepEqual(plain, both) {
		t.Fatalf("trace lines changed when a structured sink was attached:\nplain: %q\nboth:  %q", plain, both)
	}
	if !reflect.DeepEqual(plain, col.Messages) {
		t.Fatalf("sink messages diverge from the Trace callback:\ncallback: %q\nsink:     %q", plain, col.Messages)
	}
	sawExec, sawMat := false, false
	for _, l := range plain {
		if l == "EXECUTE" {
			sawExec = true
		}
		if strings.HasPrefix(l, "  materialized ") && strings.HasSuffix(l, " objects produced)") {
			sawMat = true
		}
	}
	if !sawExec || !sawMat {
		t.Errorf("legacy line formats missing (EXECUTE %v, materialized %v): %q", sawExec, sawMat, plain)
	}
}

// TestTracedRunBitIdenticalToUntraced guards the observability layer's core
// promise: attaching a sink must observe the run, never perturb it — same
// rows, same aggregate, same objects produced, same action count.
func TestTracedRunBitIdenticalToUntraced(t *testing.T) {
	run := func(sink obs.EventSink, reg *obs.Registry) *Result {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 11, Iterations: 200, Sink: sink, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil, nil)
	traced := run(&obs.Collector{}, obs.NewRegistry())
	if plain.Rows != traced.Rows || plain.Value != traced.Value ||
		plain.Produced != traced.Produced || plain.Actions != traced.Actions ||
		plain.Executes != traced.Executes || plain.SigmaOps != traced.SigmaOps {
		t.Errorf("tracing perturbed the run:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestResultTimingAndSpanInvariants checks the Result accounting against the
// span stream: non-negative component times summing to no more than the wall
// time, and Executes/Actions/SigmaOps agreeing with the emitted span counts.
func TestResultTimingAndSpanInvariants(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	col := &obs.Collector{}
	start := time.Now()
	res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300, Sink: col})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	if res.PlanTime < 0 || res.SigmaTime < 0 || res.ExecTime < 0 {
		t.Errorf("negative component time: %+v", res)
	}
	if sum := res.PlanTime + res.SigmaTime + res.ExecTime; sum > wall {
		t.Errorf("components %v exceed wall time %v", sum, wall)
	}

	if n := len(col.SpansOf(obs.KQuery)); n != 1 {
		t.Errorf("query spans = %d, want 1", n)
	}
	if n := len(col.SpansOf(obs.KAction)); n != res.Actions {
		t.Errorf("action spans = %d, want Actions = %d", n, res.Actions)
	}
	if n := len(col.SpansOf(obs.KPlan)); n != res.Actions {
		t.Errorf("plan spans = %d, want one per action = %d", n, res.Actions)
	}
	if n := len(col.SpansOf(obs.KSigma)); n != res.SigmaOps {
		t.Errorf("sigma spans = %d, want SigmaOps = %d", n, res.SigmaOps)
	}
	execSpans := 0
	for _, sp := range col.SpansOf(obs.KAction) {
		if sp.Name == "exec" {
			execSpans++
		}
	}
	if execSpans != res.Executes {
		t.Errorf("exec action spans = %d, want Executes = %d", execSpans, res.Executes)
	}
	if n := len(col.SpansOf(obs.KMaterialize)); n != len(res.Executed) {
		t.Errorf("materialize spans = %d, want one per executed tree = %d", n, len(res.Executed))
	}

	// Every span completed (End stamps Dur) and links into the one trace
	// tree rooted at the query span.
	ids := map[int]bool{0: true}
	for _, sp := range col.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range col.Spans {
		if sp.Dur < 0 {
			t.Errorf("span %s/%s has negative duration", sp.Kind, sp.Name)
		}
		if !ids[sp.Parent] {
			t.Errorf("span %s/%s parent %d never emitted", sp.Kind, sp.Name, sp.Parent)
		}
	}

	// Estimate records: emitted at every EXECUTE, q-errors well-formed, and
	// the round numbers cover 1..Executes.
	if len(col.Estimates) == 0 {
		t.Fatal("no estimate records emitted")
	}
	rounds := map[int]bool{}
	for _, e := range col.Estimates {
		if e.QError < 1 {
			t.Errorf("estimate %s: q-error %g < 1", e.Expr, e.QError)
		}
		if got := obs.QError(e.Est, e.Actual); got != e.QError {
			t.Errorf("estimate %s: stored q %g != recomputed %g", e.Expr, e.QError, got)
		}
		if e.Round < 1 || e.Round > res.Executes {
			t.Errorf("estimate %s: round %d outside [1,%d]", e.Expr, e.Round, res.Executes)
		}
		rounds[e.Round] = true
	}
	if len(rounds) != res.Executes {
		t.Errorf("estimates cover %d rounds, want %d", len(rounds), res.Executes)
	}
}

// TestMetricsAgreeWithResult checks that the registry counters installed by
// the driver match the Result accounting.
func TestMetricsAgreeWithResult(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	reg := obs.NewRegistry()
	res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want int
	}{
		{"monsoon.actions", res.Actions},
		{"monsoon.executes", res.Executes},
		{"monsoon.sigma_ops", res.SigmaOps},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != int64(c.want) {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if st := reg.Histogram("monsoon.plan.time").Stats(); st.Count != int64(res.Actions) {
		t.Errorf("plan.time observations = %d, want one per action = %d", st.Count, res.Actions)
	}
	if st := reg.Histogram("monsoon.qerror.join").Stats(); st.Count > 0 && st.Min < 1 {
		t.Errorf("join q-error min %g < 1", st.Min)
	}
}

// TestEngineOperatorSpansCarryRows spot-checks the engine instrumentation:
// scans and joins must report their data flow.
func TestEngineOperatorSpansCarryRows(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	col := &obs.Collector{}
	if _, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300, Sink: col}); err != nil {
		t.Fatal(err)
	}
	scans := col.SpansOf(obs.KScan)
	if len(scans) == 0 {
		t.Fatal("no scan spans")
	}
	for _, sp := range scans {
		if sp.RowsIn <= 0 {
			t.Errorf("scan %s: rows_in = %d, want > 0", sp.Name, sp.RowsIn)
		}
	}
	joins := append(col.SpansOf(obs.KHashProbe), col.SpansOf(obs.KNestedLoop)...)
	if len(joins) == 0 {
		t.Fatal("no join spans")
	}
	probed := false
	for _, sp := range joins {
		if sp.RowsIn > 0 {
			probed = true
		}
	}
	if !probed {
		t.Errorf("no join span reports consumed rows: %v", fmt.Sprint(joins))
	}
}
