package core

import (
	"fmt"
	"strings"
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/obs"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

// Session is the driver's §5.3 loop made explicit: it owns the long-lived
// pieces of one Monsoon run — the seeded statistics store, the MDP simulation
// model, the MCTS planner, the tracer, and the optional plan cache — and
// exposes the loop's phases as methods. A run is
//
//	s, err := NewSession(q, eng, budget, cfg)
//	defer s.Close()
//	for {
//	    execute, err := s.PlanRound()   // plan edits until EXECUTE (or done)
//	    if !execute { break }
//	    err = s.ExecuteRound()          // materialize Rp, harden statistics
//	}
//	res, err := s.Finalize()            // final aggregate
//
// which is exactly what the Run compatibility wrapper does; driving the
// phases by hand lets harnesses inspect or stop the run between rounds.
//
// When cfg.Cache is set, PlanRound consults the cache before every MCTS
// planning call, keyed by the canonical query shape, the planner knobs, and
// the current state (planned trees, materialized frontier, and the hardened
// statistics rendered through stats.Store.BucketSignature()). A hit replays
// the memoized action suffix — skipping MCTS entirely — after validating
// that every action still applies; a miss plans normally and memoizes the
// round's action sequence when EXECUTE is reached. Because hardening that
// moves any statistic across a log₂ bucket boundary changes the key,
// entries recorded under stale statistics are never served (invalidation is
// embedded in the key). Replay reproduces the exact recording: a repeated
// (query, seed, statistics) run makes the same plan choices with and
// without the cache.
type Session struct {
	q      *query.Query
	eng    *engine.Engine
	ex     *engine.Exec
	budget *engine.Budget
	cfg    Config

	st      *stats.Store
	state   *State
	model   *Model
	planner *mcts.RootPlanner
	tr      *obs.Tracer
	res     *Result

	qsp    *obs.Span
	closed bool
	// now overrides the wall clock for deadline checks; tests use it to
	// exercise the between-trees budget check deterministically. Nil means
	// time.Now.
	now func() time.Time

	// shape is the cache-key prefix: canonical query shape + planner knobs.
	shape string
	// execPending is set between a PlanRound that picked EXECUTE and the
	// ExecuteRound that performs it.
	execPending bool
	// replanPending is set by ExecuteRound when an observed q-error crossed
	// cfg.ReplanThreshold: the next PlanRound must re-run MCTS with the
	// hardened statistics instead of replaying a memoized round recorded
	// under the misestimate. Cleared once that round completes.
	replanPending bool
	// pendingKeys/pendingActs record the current round's (state key, picked
	// action) pairs on the miss path, memoized when EXECUTE is reached.
	pendingKeys []string
	pendingActs []Action
}

// NewSession seeds the statistics store, builds the initial MDP state, and
// wires the model, planner, and tracer. The engine is never mutated: the
// session executes through its own engine.Exec scope carrying the tracer,
// parallelism/batch knobs, metrics registry, and materialization store, so
// any number of sessions may share one engine concurrently.
func NewSession(q *query.Query, eng *engine.Engine, budget *engine.Budget, cfg Config) *Session {
	if cfg.Prior == nil {
		cfg.Prior = prior.Default()
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 800
	}
	st := cfg.Stats
	if st == nil {
		st = stats.New()
	}
	eng.SeedBaseStats(q, st)

	s := &Session{q: q, eng: eng, budget: budget, cfg: cfg, st: st, res: &Result{}}
	s.state = NewInitialState(q, st)

	s.tr = obs.NewTracer(obs.Multi(cfg.Sink, obs.MessageSink(cfg.Trace)))
	// Attaching cfg.Metrics also switches on the engine's peak-memory
	// sampling (Result.PeakBytes, the monsoon.exec.peak_bytes gauge).
	// Zero-valued knobs fall back to the engine's defaults inside NewExec.
	s.ex = eng.NewExec(engine.ExecConfig{
		Obs:         s.tr,
		Parallelism: cfg.Parallelism,
		BatchSize:   cfg.BatchSize,
		Metrics:     cfg.Metrics,
	})

	s.model = &Model{
		Q: q, Prior: cfg.Prior,
		Rng:            randx.New(randx.Derive(cfg.Seed, "sim")),
		UniformRollout: cfg.UniformRollout,
		Profile:        cfg.Profile,
		Shards:         eng.Cat,
	}
	if cfg.ReplanThreshold > 0 && cfg.Metrics != nil {
		// Materialize the replan counters at zero so an armed session always
		// exposes them on /metrics, replanned or not.
		cfg.Metrics.Counter("monsoon.replan.triggered")
		cfg.Metrics.Counter("monsoon.replan.cache_invalidations")
	}
	// Planning is root-parallel: the rollout budget is pre-split into shards
	// whose count, quotas, and RNG seeds depend only on (seed, iterations),
	// never on PlanParallelism — so the thread cap trades planning wall time
	// without moving a single plan choice (see TestPlanParallelismGolden).
	s.planner = mcts.NewRoot(mcts.RootConfig{
		Config: mcts.Config{
			Strategy:   cfg.Strategy,
			Iterations: cfg.Iterations,
		},
		Workers: cfg.PlanParallelism,
	}, randx.Derive(cfg.Seed, "mcts"))

	if cfg.Cache != nil {
		s.shape = canonicalShape(q, cfg, eng.Cat)
	}
	s.qsp = s.tr.Start(obs.KQuery, q.Name)
	return s
}

// Result exposes the session's accounting so far; the same value Finalize
// returns. Valid (partially filled) even after an error.
func (s *Session) Result() *Result { return s.res }

// Close ends the query span with the final accounting and publishes the
// plan-cache pressure gauges. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.cfg.Cache != nil && s.cfg.Metrics != nil {
		// Cache pressure next to the hit/miss counters: entries and
		// cumulative evictions are cache-wide (shared across sessions).
		// Published under the cache's own lock so concurrent closers
		// serialize and the final gauge value is the newest cache state,
		// not whichever stale snapshot happened to land last.
		s.cfg.Cache.PublishGauges(func(entries, evictions float64) {
			s.cfg.Metrics.Gauge("monsoon.plancache.entries").Set(entries)
			s.cfg.Metrics.Gauge("monsoon.plancache.evictions").Set(evictions)
		})
	}
	s.qsp.SetRows(0, s.res.Rows).SetProduced(s.res.Produced).
		SetNum("actions", float64(s.res.Actions)).
		SetNum("executes", float64(s.res.Executes)).
		SetNum("sigma_ops", float64(s.res.SigmaOps)).
		End()
}

func (s *Session) overDeadline() bool {
	if s.budget == nil || s.budget.Deadline.IsZero() {
		return false
	}
	clock := time.Now
	if s.now != nil {
		clock = s.now
	}
	return clock().After(s.budget.Deadline)
}

// cacheKey is the full plan-cache key for the current state.
func (s *Session) cacheKey() string {
	return s.shape + "\x00" + s.state.OutcomeKey()
}

// PlanRound runs planning from the current state until the MDP picks
// EXECUTE, applying each plan edit as it is chosen. It returns true when an
// EXECUTE is pending (perform it with ExecuteRound), false when the state is
// already terminal. With a plan cache configured it consults the cache
// before every planning call and replays memoized rounds on a hit.
func (s *Session) PlanRound() (bool, error) {
	if s.state.Terminal() {
		return false, nil
	}
	if s.execPending {
		return true, nil
	}
	s.pendingKeys = s.pendingKeys[:0]
	s.pendingActs = s.pendingActs[:0]
	for {
		if s.overDeadline() {
			return false, engine.ErrBudget
		}
		var key string
		if s.cfg.Cache != nil {
			key = s.cacheKey()
			// A forced replan skips the lookup entirely: every memoized round
			// for this query was recorded under the misestimate the last
			// ExecuteRound observed, so the only acceptable plan is a fresh
			// MCTS search against the hardened statistics. The search's new
			// rounds are still memoized below, repopulating the cache with
			// plans the corrected statistics stand behind.
			if !s.replanPending {
				if v, ok := s.cfg.Cache.Get(key); ok {
					if seq, isSeq := v.([]Action); isSeq && s.replayRound(seq) {
						return true, nil
					}
					// Invalid or inapplicable entry: treat as a miss and replan.
				}
				s.res.CacheMisses++
				s.cfg.Metrics.Counter("monsoon.plancache.misses").Inc()
			}
		}
		t0 := time.Now()
		psp := s.tr.Start(obs.KPlan, "mcts")
		// Shard spans of this search (if it fans out) parent to psp.
		s.planner.Trace(s.tr, psp)
		picked := s.planner.Plan(s.model, s.state)
		planElapsed := time.Since(t0)
		// LastStats is a value, valid on every return from Plan, so it needs
		// no guard of its own; the span setters are nil-safe no-ops when no
		// sink is attached. (A previous version guarded on the span variable
		// by accident, silently keying the stats block to the tracer.)
		ps := s.planner.LastStats()
		psp.SetNum("rollouts", float64(ps.Rollouts)).
			SetNum("root_actions", float64(ps.RootActions)).
			SetNum("tree_depth", float64(ps.MaxDepth)).
			SetNum("nodes", float64(ps.Nodes))
		if ps.Workers > 1 {
			// Mirrors the engine's convention: the attribute appears only
			// when the search actually fanned out, so serial and parallel
			// span streams stay comparable attribute-for-attribute.
			psp.SetNum(obs.AttrPlanWorkers, float64(ps.Workers))
		}
		if ps.FastPath {
			psp.SetStr("fast_path", "true")
		}
		if s.cfg.Cache != nil {
			psp.SetStr(obs.AttrCacheHit, "false")
		}
		if s.replanPending {
			psp.SetStr("replan", "true")
		}
		psp.End()
		s.res.PlanTime += planElapsed
		s.cfg.Metrics.Histogram("monsoon.plan.time").ObserveDuration(planElapsed)
		if !ps.FastPath {
			// Search-only planning latency: fast-path calls skip MCTS, so
			// keeping them out makes this the planner-parallelism signal the
			// plan_workers attribute is read against.
			s.cfg.Metrics.Histogram("monsoon.plan.search.time").ObserveDuration(planElapsed)
		}
		if picked == nil {
			return false, fmt.Errorf("core: no legal action in non-terminal state %s", s.state)
		}
		act := picked.(Action)
		if s.cfg.Cache != nil {
			s.pendingKeys = append(s.pendingKeys, key)
			s.pendingActs = append(s.pendingActs, act)
		}
		s.res.Actions++
		s.cfg.Metrics.Counter("monsoon.actions").Inc()
		if s.tr.Active() {
			s.tr.Message(act.String())
		}
		if act.Kind == ActExecute {
			s.memoizeRound()
			s.execPending = true
			// The forced round has been replanned (and re-memoized) in full;
			// later rounds may trust the cache again.
			s.replanPending = false
			return true, nil
		}
		asp := s.tr.Start(obs.KAction, act.Key())
		ns, err := applyPlanEdit(s.state, s.q, act)
		if err != nil {
			asp.SetStr("err", err.Error()).End()
			return false, err
		}
		asp.End()
		s.state = ns
	}
}

// replayRound validates a memoized action sequence against the current state
// and, when every edit still applies, commits it — emitting the same spans,
// trace lines, and accounting the uncached path would for the same actions,
// minus the MCTS work. Returns false (state untouched) when the sequence no
// longer applies; the caller then replans.
func (s *Session) replayRound(seq []Action) bool {
	if len(seq) == 0 || seq[len(seq)-1].Kind != ActExecute {
		return false
	}
	t0 := time.Now()
	// Validate the whole suffix on scratch states before committing anything.
	states := make([]*State, 0, len(seq)-1)
	cur := s.state
	for _, a := range seq[:len(seq)-1] {
		ns, err := applyPlanEdit(cur, s.q, a)
		if err != nil {
			return false
		}
		states = append(states, ns)
		cur = ns
	}
	if len(cur.Planned) == 0 {
		return false // EXECUTE would be illegal
	}
	s.res.CacheHits++
	s.cfg.Metrics.Counter("monsoon.plancache.hits").Inc()
	// Each replayed action stands in for one Plan call (the recording run
	// picked each with its own call); advance the planner's call counter to
	// match, so a later miss plans from the same derived RNG streams a
	// cache-free run would use. Without this, a partially warm cache — the
	// normal state when concurrent sessions race to populate it — made
	// hit-then-miss runs diverge from solo runs.
	s.planner.SkipCalls(len(seq))
	for i, a := range seq {
		psp := s.tr.Start(obs.KPlan, "mcts")
		psp.SetNum("rollouts", 0).SetStr(obs.AttrCacheHit, "true").End()
		s.res.Actions++
		s.cfg.Metrics.Counter("monsoon.actions").Inc()
		if s.tr.Active() {
			s.tr.Message(a.String())
		}
		if a.Kind == ActExecute {
			s.execPending = true
			break
		}
		asp := s.tr.Start(obs.KAction, a.Key())
		asp.End()
		s.state = states[i]
	}
	elapsed := time.Since(t0)
	s.res.PlanTime += elapsed
	s.cfg.Metrics.Histogram("monsoon.plan.time").ObserveDuration(elapsed)
	return true
}

// memoizeRound stores the just-completed round under every state key it
// passed through, so a future session reaching any intermediate state replays
// the rest of the round.
func (s *Session) memoizeRound() {
	for i := range s.pendingActs {
		s.cfg.Cache.Put(s.pendingKeys[i], append([]Action(nil), s.pendingActs[i:]...))
	}
}

// ExecuteRound performs the pending EXECUTE: run every planned tree on the
// engine, harden the observed statistics, and settle the materialized
// frontier. The budget deadline is re-checked between trees; an overrun
// returns engine.ErrBudget with the partial round's accounting already in
// Result.
func (s *Session) ExecuteRound() error {
	if !s.execPending {
		return fmt.Errorf("core: ExecuteRound without a pending EXECUTE")
	}
	s.execPending = false
	asp := s.tr.Start(obs.KAction, Action{Kind: ActExecute}.Key())
	ns := s.state.clone(false)
	round := s.res.Executes + 1
	// What the optimizer believes each intermediate will produce, under
	// the prior's expectation, frozen before the world answers. Derived
	// on a cloned store (and through Mean, not Sample) so recording the
	// predictions perturbs neither the statistics set nor the RNG
	// stream — traced and untraced runs stay bit-identical.
	var ests map[string]float64
	if s.tr.Active() || s.cfg.Metrics != nil || s.cfg.ReplanThreshold > 0 {
		dv := &cost.Deriver{Q: s.q, St: ns.St.Clone(), Miss: s.model.meanMiss()}
		ests = make(map[string]float64)
		for _, t := range ns.Planned {
			estimateTree(dv, t.Tree, ests)
		}
	}
	roundProduced := 0.0
	for i, t := range ns.Planned {
		if i > 0 && s.overDeadline() {
			// The deadline passed while an earlier tree of this round ran:
			// stop between trees rather than starting the next one. The
			// completed trees' accounting is already in Result.
			asp.SetStr("err", engine.ErrBudget.Error()).SetProduced(roundProduced).End()
			return engine.ErrBudget
		}
		if t.Tree.Sigma {
			s.res.SigmaOps++
			s.cfg.Metrics.Counter("monsoon.sigma_ops").Inc()
		}
		t1 := time.Now()
		_, er, err := s.ex.ExecTree(s.q, t.Tree, s.budget)
		elapsed := time.Since(t1)
		s.res.SigmaTime += er.SigmaTime
		s.res.ExecTime += elapsed - er.SigmaTime
		s.res.Produced += er.Produced
		if er.PeakBytes > s.res.PeakBytes {
			s.res.PeakBytes = er.PeakBytes
		}
		roundProduced += er.Produced
		for k, v := range er.Counts {
			s.st.SetCount(k, v)
		}
		for _, o := range er.Sigma {
			s.st.SetMeasured(o.Term, o.Expr, o.D)
		}
		if err != nil {
			asp.SetStr("err", err.Error()).SetProduced(roundProduced).End()
			return err
		}
		s.res.Executed = append(s.res.Executed, t.Tree)
		reportEstimates(s.tr, s.cfg.Metrics, t.Tree, ests, er.Counts, er.Times, round)
		if s.cfg.ReplanThreshold > 0 {
			s.maybeReplan(asp, t.Tree.Key(), ests, er.Counts)
		}
		if s.tr.Active() {
			s.tr.Message(fmt.Sprintf("  materialized %s (%.0f objects produced)", t.Tree, er.Produced))
		}
	}
	settleExecution(ns)
	s.st.DropAssumed()
	s.state = ns
	s.res.Executes++
	s.cfg.Metrics.Counter("monsoon.executes").Inc()
	asp.SetNum("trees", float64(len(ns.Planned))).SetProduced(roundProduced).End()
	return nil
}

// maybeReplan closes the q-error loop: compare the materialized tree's root
// cardinality against what the optimizer predicted and, when the q-error
// reaches cfg.ReplanThreshold (misses — one side empty — always qualify), arm
// a forced replan. The next PlanRound then skips the plan cache and re-runs
// MCTS against the statistics this round just hardened; every memoized round
// for this query's shape is evicted, since each was recorded under the
// misestimate that just surfaced.
func (s *Session) maybeReplan(asp *obs.Span, key string, ests map[string]float64, actuals map[string]float64) {
	est, okE := ests[key]
	actual, okA := actuals[key]
	if !okE || !okA {
		return
	}
	qe := obs.QError(est, actual)
	if !obs.QErrorIsMiss(qe) && qe < s.cfg.ReplanThreshold {
		return
	}
	s.replanPending = true
	s.res.Replans++
	s.cfg.Metrics.Counter("monsoon.replan.triggered").Inc()
	asp.SetStr("replan", "true")
	if s.cfg.Cache != nil {
		prefix := s.shape + "\x00"
		n := s.cfg.Cache.Invalidate(func(k string) bool { return strings.HasPrefix(k, prefix) })
		s.res.ReplanInvalidations += n
		s.cfg.Metrics.Counter("monsoon.replan.cache_invalidations").Add(int64(n))
	}
}

// Finalize computes the query's final aggregate from the materialized full
// result and returns the completed Result. Call once the state is terminal
// (PlanRound returned false without error).
func (s *Session) Finalize() (*Result, error) {
	rel, ok := s.ex.Materialized(s.q.Aliases().Key())
	if !ok {
		return s.res, fmt.Errorf("core: terminal state but result not materialized")
	}
	agg := s.tr.Start(obs.KAggregate, s.q.Aliases().Key())
	v, err := engine.FinalAggregate(s.q, rel)
	if err != nil {
		agg.SetStr("err", err.Error()).End()
		return s.res, err
	}
	agg.SetRows(rel.Count(), 1).End()
	s.res.Value = v
	s.res.Rows = rel.Count()
	s.res.Output = rel
	return s.res, nil
}

// canonicalShape renders the query's logical content (not its name) plus the
// planner knobs that influence plan choice, as the cache-key prefix. Two
// queries with the same shape, knobs, frontier, and bucketed statistics are
// planning-equivalent, which is exactly when memoized rounds may be shared.
func canonicalShape(q *query.Query, cfg Config, cat *table.Catalog) string {
	var b strings.Builder
	for _, r := range q.Rels {
		fmt.Fprintf(&b, "%s=%s;", r.Alias, r.Table)
	}
	b.WriteByte('|')
	for _, j := range q.Joins {
		b.WriteString(j.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, sp := range q.Sels {
		b.WriteString(sp.String())
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "|out=%d,%s", q.Out.Kind, q.Out.Attr)
	fmt.Fprintf(&b, "|seed=%d;it=%d;strat=%d;uni=%t;prior=%s",
		cfg.Seed, cfg.Iterations, cfg.Strategy, cfg.UniformRollout, cfg.Prior.Name())
	if cfg.Profile != nil {
		// Calibrated sessions price EXECUTE differently, so they must never
		// share memoized rounds with uncalibrated ones (or with sessions
		// calibrated from a different corpus). Nil profiles append nothing,
		// preserving every pre-calibration cache key byte-for-byte.
		fmt.Fprintf(&b, ";prof=%s", cfg.Profile.Fingerprint())
	}
	if cat != nil && cat.ShardCount() > 1 {
		// Sharded sessions price exchanges into EXECUTE, so memoized rounds
		// only transfer between engines with the same shard layout. Unsharded
		// catalogs append nothing, keeping S=1 keys byte-identical to every
		// pre-sharding key.
		fmt.Fprintf(&b, ";shards=%s", cat.LayoutFingerprint())
	}
	return b.String()
}
