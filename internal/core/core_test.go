package core

import (
	"strings"
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/mcts"
	"monsoon/internal/plan"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// fixture builds a small R/S/T world shaped like §2.3: R is large, S and T
// small, and the two join predicates have very different selectivities —
// both sides of the R–S predicate are constant (d = 1 on both: the join is a
// full cross product, 200k intermediates) while the R–T join is empty — so
// the join order matters by two orders of magnitude.
func fixture() (*table.Catalog, *query.Query) {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "R", Name: "a", Kind: value.KindInt},
		table.Column{Table: "R", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("R", rs)
	for i := 0; i < 2000; i++ {
		rb.Add(value.Int(7), value.Int(int64(i%40)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "S", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("S", ss)
	for i := 0; i < 100; i++ {
		sb.Add(value.Int(7)) // d(F2,S) = 1 and d(F1,R) = 1: R⋈S explodes
	}
	cat.Put(sb.Build())
	ts := table.NewSchema(table.Column{Table: "T", Name: "k", Kind: value.KindInt})
	tb := table.NewBuilder("T", ts)
	for i := 0; i < 100; i++ {
		tb.Add(value.Int(int64(1000 + i))) // never matches R.b: R⋈T is empty
	}
	cat.Put(tb.Build())
	q := query.NewBuilder("rst").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Join(expr.Identity("R.b"), expr.Identity("T.k")).
		MustBuild()
	return cat, q
}

func initState(q *query.Query, cat *table.Catalog) (*State, *engine.Engine) {
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	return NewInitialState(q, st), eng
}

func TestInitialStateAndTerminal(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	if s.Terminal() {
		t.Error("initial state must not be terminal")
	}
	if len(s.Active) != 3 || len(s.Planned) != 0 {
		t.Errorf("initial state wrong: %s", s)
	}
	// Terminal only after an execution covering the full alias set: a
	// full-cover *active* entry is not enough (single-relation start states
	// are active-full but unexecuted).
	s.Active = []query.AliasSet{q.Aliases()}
	if s.Terminal() {
		t.Error("active-full without execution must not be terminal")
	}
	s.Planned = []PlannedTree{{Tree: plan.NewLeaf(q.Aliases())}}
	settleExecution(s)
	if !s.Terminal() {
		t.Error("executed full-cover expression must be terminal")
	}
}

func actionKeys(acts []Action) map[string]bool {
	m := map[string]bool{}
	for _, a := range acts {
		m[a.Key()] = true
	}
	return m
}

func TestLegalActionsAtStart(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	keys := actionKeys(legalActions(s, q))
	for _, want := range []string{"jm:R|S", "jm:R|T", "Σcopy:R", "Σcopy:S", "Σcopy:T"} {
		if !keys[want] {
			t.Errorf("missing legal action %q in %v", want, keys)
		}
	}
	if keys["jm:S|T"] {
		t.Error("S⋈T is an unconnected cross product and must be pruned")
	}
	if keys["exec"] {
		t.Error("EXECUTE with empty Rp must be illegal")
	}
}

func TestLegalActionsAfterPlanning(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	s2, err := applyPlanEdit(s, q, Action{Kind: ActJoinMats, A: "R", B: "S"})
	if err != nil {
		t.Fatal(err)
	}
	keys := actionKeys(legalActions(s2, q))
	if !keys["exec"] {
		t.Error("EXECUTE must be legal with planned trees")
	}
	if !keys["jmp:T|R+S"] {
		t.Errorf("joining T into the planned tree must be legal: %v", keys)
	}
	if keys["jm:R|T"] || keys["jm:R|S"] {
		t.Error("mats consumed by a planned tree must not re-join")
	}
	if !keys["Σwrap:R+S"] {
		t.Errorf("Σ-wrapping the planned tree must be legal: %v", keys)
	}
	// Σ-copies of consumed mats remain legal (side computations).
	if !keys["Σcopy:T"] {
		t.Errorf("Σ-copy of a free mat must stay legal: %v", keys)
	}
}

func TestSigmaUsefulnessDeclines(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	// Measure both terms over S; Σ(S) becomes useless.
	s.St.SetMeasured(q.Joins[0].R.ID, "S", 1)
	keys := actionKeys(legalActions(s, q))
	if keys["Σcopy:S"] {
		t.Error("Σ-copy of fully measured S must be pruned")
	}
	// Consume pred 0 by covering it with a planned tree: Σ targeting its
	// terms becomes useless too.
	s2, _ := applyPlanEdit(s, q, Action{Kind: ActJoinMats, A: "R", B: "T"})
	s3, _ := applyPlanEdit(s2, q, Action{Kind: ActJoinMatPlanned, A: "S", B: "R+T"})
	keys = actionKeys(legalActions(s3, q))
	for k := range keys {
		if strings.HasPrefix(k, "Σ") {
			t.Errorf("all preds consumed; Σ action %q must be pruned", k)
		}
	}
}

func TestApplyPlanEditKinds(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	s1, err := applyPlanEdit(s, q, Action{Kind: ActSigmaCopy, A: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Planned) != 1 || !s1.Planned[0].SigmaCopy || !s1.Planned[0].Tree.Sigma {
		t.Errorf("Σ-copy wrong: %s", s1)
	}
	if len(s.Planned) != 0 {
		t.Error("applyPlanEdit must not mutate the input state")
	}
	s2, err := applyPlanEdit(s1, q, Action{Kind: ActJoinMats, A: "R", B: "T"})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := applyPlanEdit(s2, q, Action{Kind: ActSigmaWrap, A: "R+T"})
	if err != nil {
		t.Fatal(err)
	}
	i := s3.findPlanned("R+T")
	if i < 0 || !s3.Planned[i].Tree.Sigma || s3.Planned[i].SigmaCopy {
		t.Errorf("Σ-wrap wrong: %s", s3)
	}
	// Join two planned trees.
	sA, _ := applyPlanEdit(s, q, Action{Kind: ActJoinMats, A: "R", B: "S"})
	if _, err := applyPlanEdit(sA, q, Action{Kind: ActJoinPlanned, A: "R+S", B: "R+S"}); err == nil {
		t.Error("self-join of a planned tree must error")
	}
	// Errors for missing operands.
	for _, bad := range []Action{
		{Kind: ActSigmaCopy, A: "ZZ"},
		{Kind: ActSigmaWrap, A: "ZZ"},
		{Kind: ActJoinMats, A: "R", B: "ZZ"},
		{Kind: ActJoinMatPlanned, A: "ZZ", B: "R+S"},
		{Kind: ActExecute},
	} {
		if _, err := applyPlanEdit(s, q, bad); err == nil {
			t.Errorf("action %v must error", bad)
		}
	}
}

func TestSettleExecution(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	s1, _ := applyPlanEdit(s, q, Action{Kind: ActSigmaCopy, A: "S"})
	s2, _ := applyPlanEdit(s1, q, Action{Kind: ActJoinMats, A: "R", B: "T"})
	ns := s2.clone(false)
	settleExecution(ns)
	if len(ns.Planned) != 0 {
		t.Error("settle must clear Rp")
	}
	var keys []string
	for _, a := range ns.Active {
		keys = append(keys, a.Key())
	}
	want := "R+T,S"
	if strings.Join(keys, ",") != want {
		t.Errorf("actives = %v, want %s", keys, want)
	}
}

func TestModelStepDeterministicVsStochastic(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	m := &Model{Q: q, Prior: prior.Default(), Rng: randx.New(1)}
	ns, r, stoch := m.Step(s, Action{Kind: ActJoinMats, A: "R", B: "S"})
	if stoch || r != 0 {
		t.Errorf("plan edit must be deterministic zero-reward, got r=%v stoch=%v", r, stoch)
	}
	if ns.(*State).St != s.St {
		t.Error("plan edits must share the statistics store")
	}
	ns2, r2, stoch2 := m.Step(ns, Action{Kind: ActExecute})
	if !stoch2 {
		t.Error("EXECUTE must be stochastic")
	}
	if r2 >= 0 {
		t.Errorf("EXECUTE reward must be a negative cost, got %v", r2)
	}
	st2 := ns2.(*State)
	if st2.St == s.St {
		t.Error("EXECUTE must clone the statistics store")
	}
	if len(st2.Planned) != 0 {
		t.Error("EXECUTE must clear Rp")
	}
	if _, ok := st2.St.Count("R+S"); !ok {
		t.Error("EXECUTE must harden the materialized expression's count")
	}
	if _, ok := s.St.Count("R+S"); ok {
		t.Error("EXECUTE must not leak into the parent state's store")
	}
}

func TestModelSimSigmaHardens(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	m := &Model{Q: q, Prior: prior.Default(), Rng: randx.New(2)}
	s1, _, _ := m.Step(s, Action{Kind: ActSigmaCopy, A: "S"})
	s2, r, _ := m.Step(s1, Action{Kind: ActExecute})
	st2 := s2.(*State)
	if !st2.St.HasMeasured(q.Joins[0].R.ID, "S") {
		t.Error("simulated Σ(S) must harden d(F2, S)")
	}
	// Σ(S) costs two passes over S (scan + collect): reward -2·c(S).
	if r != -200 {
		t.Errorf("Σ(S) reward = %v, want -200", r)
	}
	// The Σ-copy must not change the active frontier.
	if len(st2.Active) != 3 {
		t.Errorf("Σ-copy execution changed actives: %s", st2)
	}
}

func TestOutcomeKeySplitsWorlds(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	a := s.clone(true)
	b := s.clone(true)
	a.St.SetMeasured(0, "S", 1)
	b.St.SetMeasured(0, "S", 10000)
	if a.OutcomeKey() == b.OutcomeKey() {
		t.Error("very different hardened stats must split outcome keys")
	}
	c := s.clone(true)
	c.St.SetMeasured(0, "S", 1)
	if a.OutcomeKey() != c.OutcomeKey() {
		t.Error("identical worlds must share outcome keys")
	}
}

func TestRolloutTerminates(t *testing.T) {
	cat, q := fixture()
	s, _ := initState(q, cat)
	m := &Model{Q: q, Prior: prior.Uniform{}, Rng: randx.New(3)}
	rng := randx.New(4)
	for trial := 0; trial < 50; trial++ {
		var cur mcts.State = s
		steps := 0
		for !cur.Terminal() {
			a := m.RolloutAction(cur, rng)
			if a == nil {
				t.Fatalf("stuck in non-terminal state: %s", cur.(*State))
			}
			cur, _, _ = m.Step(cur, a)
			steps++
			if steps > 100 {
				t.Fatalf("rollout did not terminate within 100 steps")
			}
		}
	}
}

// referenceCount executes a fixed plan directly to know the true result size.
func referenceCount(t *testing.T) int {
	t.Helper()
	cat, q := fixture()
	eng := engine.New(cat)
	tree := plan.NewJoin(plan.NewJoin(
		plan.NewLeaf(query.NewAliasSet("R")), plan.NewLeaf(query.NewAliasSet("T"))),
		plan.NewLeaf(query.NewAliasSet("S")))
	rel, _, err := eng.ExecTree(q, tree, &engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return rel.Count()
}

func TestDriverEndToEnd(t *testing.T) {
	want := referenceCount(t)
	for _, strat := range []mcts.Strategy{mcts.UCT, mcts.EpsGreedy} {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 7, Strategy: strat, Iterations: 300,
		})
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if res.Rows != want {
			t.Errorf("strategy %d: rows = %d, want %d", strat, res.Rows, want)
		}
		if res.Executes < 1 || res.Actions < res.Executes {
			t.Errorf("strategy %d: implausible accounting %+v", strat, res)
		}
		if res.Produced <= 0 {
			t.Error("Produced must be positive")
		}
	}
}

func TestDriverTrace(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	var lines []string
	_, err := Run(q, eng, &engine.Budget{}, Config{
		Seed: 9, Iterations: 200,
		Trace: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("trace must receive actions")
	}
	sawExec := false
	for _, l := range lines {
		if l == "EXECUTE" {
			sawExec = true
		}
	}
	if !sawExec {
		t.Errorf("trace must include EXECUTE: %v", lines)
	}
}

func TestDriverBudgetTimeout(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	_, err := Run(q, eng, &engine.Budget{MaxTuples: 50}, Config{Seed: 3, Iterations: 100})
	if err == nil {
		t.Error("tiny tuple budget must abort the run")
	}
}

func TestDriverDeterministicSeeds(t *testing.T) {
	run := func() float64 {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 11, Iterations: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res.Produced
	}
	if run() != run() {
		t.Error("same seed must reproduce the same run")
	}
}

// TestMonsoonAvoidsTheTrap: in this fixture the plan ((R⋈S)⋈T) explodes
// (d(F2,S)=1 → 2000·100 = 200k intermediates ≈ 100× the alternative), while
// ((R⋈T)⋈S) stays small. Across seeds Monsoon should pay much closer to the
// good plan than the bad one. This is the paper's core claim in miniature.
// The seed set is deterministic, so this is a pinned average, not a flaky
// statistic; re-pinned over 10 seeds when planning switched to the
// root-parallel shard ensemble (whose measured trap rate across budgets is
// no worse than the old single-stream search's).
func TestMonsoonAvoidsTheTrap(t *testing.T) {
	// Costs of the two pure strategies, measured on the real engine.
	planCost := func(first string) float64 {
		cat, q := fixture()
		eng := engine.New(cat)
		tree := plan.NewJoin(plan.NewJoin(
			plan.NewLeaf(query.NewAliasSet("R")), plan.NewLeaf(query.NewAliasSet(first))),
			plan.NewLeaf(query.NewAliasSet(map[string]string{"S": "T", "T": "S"}[first])))
		_, er, err := eng.ExecTree(q, tree, &engine.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return er.Produced
	}
	bad := planCost("S")
	good := planCost("T")
	if bad < 10*good {
		t.Fatalf("fixture broken: bad=%v good=%v", bad, good)
	}
	total := 0.0
	runs := 10
	for seed := int64(0); seed < int64(runs); seed++ {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{Seed: seed, Iterations: 600})
		if err != nil {
			t.Fatal(err)
		}
		total += res.Produced
	}
	avg := total / float64(runs)
	if avg > bad/2 {
		t.Errorf("Monsoon average cost %v too close to the trap plan %v (good plan %v)", avg, bad, good)
	}
}
