package core
