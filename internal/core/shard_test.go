package core

import (
	"fmt"
	"strings"
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/obs"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
)

// renderSpanTree renders the span forest as indented "kind name" lines,
// pruning the fan-out kinds whose presence depends on the machine or the
// shard layout (KWorker, KShard) rather than on the plan. What remains is
// the plan-shaped operator skeleton that must not move when S changes.
func renderSpanTree(spans []*obs.Span) string {
	children := map[int][]*obs.Span{}
	byID := map[int]*obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var b strings.Builder
	var walk func(sp *obs.Span, depth int)
	walk = func(sp *obs.Span, depth int) {
		if sp.Kind == obs.KWorker || sp.Kind == obs.KShard {
			return
		}
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", depth), sp.Kind, sp.Name)
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, sp := range spans {
		if _, ok := byID[sp.Parent]; !ok {
			walk(sp, 0)
		}
	}
	return b.String()
}

// TestShardedRunDeterminism is the session-level determinism golden. Two
// separate invariants, because the exchange-aware simulator is allowed (by
// design) to pick a different plan when the layout changes:
//
//   - Across shard counts the query's ANSWER is bit-identical: same final
//     row count and aggregate as the unsharded run, whatever plan the
//     exchange-priced search settles on.
//   - Within one shard count, the batch size and the worker count perturb
//     NOTHING: rows, aggregate, produced charge, the action trace, and the
//     operator span skeleton (pruned of the machine/layout-dependent
//     KWorker/KShard fan-out spans) are all byte-identical, and a repeated
//     run reproduces itself exactly.
func TestShardedRunDeterminism(t *testing.T) {
	type golden struct {
		rows     int
		value    float64
		produced float64
		trace    string
		spans    string
	}
	run := func(s, batch, par int) golden {
		cat, q := fixture()
		cat.Shard(s)
		eng := engine.New(cat)
		col := &obs.Collector{}
		var lines []string
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 7, Iterations: 300, BatchSize: batch, Parallelism: par,
			Trace: func(l string) { lines = append(lines, l) },
			Sink:  col,
		})
		if err != nil {
			t.Fatalf("S=%d batch=%d par=%d: %v", s, batch, par, err)
		}
		return golden{res.Rows, res.Value, res.Produced,
			strings.Join(lines, "\n"), renderSpanTree(col.Spans)}
	}
	unsharded := run(1, 0, 0)
	for _, s := range []int{1, 2, 4, 16} {
		ref := run(s, 0, 0)
		if ref.rows != unsharded.rows || ref.value != unsharded.value {
			t.Errorf("S=%d: answer (%d rows, %v) != unsharded (%d rows, %v)",
				s, ref.rows, ref.value, unsharded.rows, unsharded.value)
		}
		for _, batch := range []int{1, 0, -1} {
			for _, par := range []int{0, 1, 4} {
				got := run(s, batch, par)
				if got != ref {
					t.Errorf("S=%d batch=%d par=%d diverged from (S=%d, defaults):\n"+
						"rows/value/produced: %d/%v/%v vs %d/%v/%v\ntrace equal: %t, spans equal: %t",
						s, batch, par, s,
						got.rows, got.value, got.produced, ref.rows, ref.value, ref.produced,
						got.trace == ref.trace, got.spans == ref.spans)
				}
			}
		}
	}
}

// TestCanonicalShapeShardFingerprint pins satellite keying: an unsharded
// catalog (or none) keeps every pre-sharding cache key byte-identical, a
// sharded catalog appends the layout fingerprint, and only identical layouts
// share keys.
func TestCanonicalShapeShardFingerprint(t *testing.T) {
	_, q := fixture()
	cfg := Config{Seed: 7, Iterations: 300, Prior: prior.Default()}
	bare := canonicalShape(q, cfg, nil)
	if strings.Contains(bare, ";shards=") {
		t.Fatalf("nil catalog key carries a shard fingerprint: %q", bare)
	}
	cat1, _ := fixture()
	if got := canonicalShape(q, cfg, cat1); got != bare {
		t.Errorf("S=1 key %q != pre-sharding key %q", got, bare)
	}
	cat1.Shard(4)
	s4 := canonicalShape(q, cfg, cat1)
	if !strings.Contains(s4, ";shards=") || s4 == bare {
		t.Errorf("S=4 key must append a shard fingerprint: %q", s4)
	}
	cat2, _ := fixture()
	cat2.Shard(4)
	if got := canonicalShape(q, cfg, cat2); got != s4 {
		t.Errorf("identical layouts must share keys: %q vs %q", got, s4)
	}
	cat2.Shard(8)
	if got := canonicalShape(q, cfg, cat2); got == s4 {
		t.Error("different shard counts must not share keys")
	}
}

// TestShardedWarmCacheReplaysExactly: a warm plan cache keyed with the shard
// fingerprint must replay the cold sharded run's choices bit-identically.
func TestShardedWarmCacheReplaysExactly(t *testing.T) {
	cache := plancache.New(0)
	run := func() (float64, int, int, int) {
		cat, q := fixture()
		cat.Shard(4)
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 7, Iterations: 300, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Produced, res.Rows, res.CacheHits, res.CacheMisses
	}
	coldP, coldR, _, coldMiss := run()
	warmP, warmR, warmHits, _ := run()
	if coldMiss == 0 {
		t.Error("cold sharded run must miss the cache")
	}
	if warmHits == 0 {
		t.Error("warm sharded run must hit the shard-fingerprinted key")
	}
	if coldP != warmP || coldR != warmR {
		t.Errorf("warm sharded replay (%v, %d) != cold (%v, %d)", warmP, warmR, coldP, coldR)
	}
}
