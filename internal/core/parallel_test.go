package core

import (
	"reflect"
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// bigFixture is the core-level parallel fixture: tables large enough that the
// engine's parallel paths (threshold 4096 rows) actually engage during the
// MDP loop's EXECUTE rounds.
func bigFixture() (*table.Catalog, *query.Query) {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "BR", Name: "a", Kind: value.KindInt},
		table.Column{Table: "BR", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("BR", rs)
	for i := 0; i < 20000; i++ {
		rb.Add(value.Int(int64(i%800)), value.Int(int64(i%11)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "BS", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("BS", ss)
	for i := 0; i < 6000; i++ {
		sb.Add(value.Int(int64(i % 800)))
	}
	cat.Put(sb.Build())
	q := query.NewBuilder("bigrst").
		Rel("BR", "BR").Rel("BS", "BS").
		Join(expr.Identity("BR.a"), expr.Identity("BS.k")).
		Select(expr.Identity("BR.b"), value.Int(4)).
		MustBuild()
	return cat, q
}

// TestRunSerialParallelIdentical is the driver-level determinism gate: the
// full MDP loop — MCTS planning, Σ passes, hardened statistics, EXECUTE
// rounds — must settle on the same multi-step plan and the same answer
// whether the engine runs serial or fanned out.
func TestRunSerialParallelIdentical(t *testing.T) {
	run := func(par int) *Result {
		cat, q := bigFixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 13, Iterations: 200, Parallelism: par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res
	}
	ser := run(1)
	for _, par := range []int{0, 4} {
		p := run(par)
		if p.Value != ser.Value || p.Rows != ser.Rows || p.Produced != ser.Produced {
			t.Errorf("parallelism %d: value/rows/produced %v/%d/%v, serial %v/%d/%v",
				par, p.Value, p.Rows, p.Produced, ser.Value, ser.Rows, ser.Produced)
		}
		if p.Actions != ser.Actions || p.Executes != ser.Executes || p.SigmaOps != ser.SigmaOps {
			t.Errorf("parallelism %d: MDP trajectory diverged: %+v vs %+v", par, p, ser)
		}
		if len(p.Executed) != len(ser.Executed) {
			t.Fatalf("parallelism %d: %d executed trees, serial %d", par, len(p.Executed), len(ser.Executed))
		}
		for i := range p.Executed {
			if p.Executed[i].String() != ser.Executed[i].String() {
				t.Errorf("parallelism %d: executed tree %d is %s, serial %s",
					par, i, p.Executed[i], ser.Executed[i])
			}
		}
	}
}

// TestPlanParallelismGolden is the planner-side determinism gate, the mirror
// of TestRunSerialParallelIdentical: PlanParallelism caps the OS threads the
// root-parallel MCTS shards run on, and every setting — serial, fewer threads
// than shards, more threads than shards — must produce the byte-identical
// run: same result accounting, same executed trees, same trace lines, and
// plan spans whose search statistics match attribute-for-attribute.
func TestPlanParallelismGolden(t *testing.T) {
	type capture struct {
		res   *Result
		lines []string
		plans []*obs.Span
	}
	run := func(workers int) capture {
		cat, q := fixture()
		eng := engine.New(cat)
		col := &obs.Collector{}
		var lines []string
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 11, Iterations: 300, PlanParallelism: workers,
			Sink: col, Trace: func(s string) { lines = append(lines, s) },
		})
		if err != nil {
			t.Fatalf("plan parallelism %d: %v", workers, err)
		}
		return capture{res: res, lines: lines, plans: col.SpansOf(obs.KPlan)}
	}
	ser := run(1)
	for _, w := range []int{0, 2, 7, 64} {
		p := run(w)
		if p.res.Value != ser.res.Value || p.res.Rows != ser.res.Rows ||
			p.res.Produced != ser.res.Produced || p.res.Actions != ser.res.Actions ||
			p.res.Executes != ser.res.Executes || p.res.SigmaOps != ser.res.SigmaOps {
			t.Errorf("plan parallelism %d: result diverged: %+v vs serial %+v", w, p.res, ser.res)
		}
		if !reflect.DeepEqual(runTrees(p.res), runTrees(ser.res)) {
			t.Errorf("plan parallelism %d: trees %q, serial %q", w, runTrees(p.res), runTrees(ser.res))
		}
		if !reflect.DeepEqual(p.lines, ser.lines) {
			t.Errorf("plan parallelism %d: trace\n%q\nserial\n%q", w, p.lines, ser.lines)
		}
		if len(p.plans) != len(ser.plans) {
			t.Fatalf("plan parallelism %d: %d plan spans, serial %d", w, len(p.plans), len(ser.plans))
		}
		for i, sp := range p.plans {
			for _, key := range []string{"rollouts", "root_actions", "tree_depth", "nodes"} {
				if sp.Num[key] != ser.plans[i].Num[key] {
					t.Errorf("plan parallelism %d span %d: %s = %v, serial %v",
						w, i, key, sp.Num[key], ser.plans[i].Num[key])
				}
			}
		}
	}
}

// TestPlanSpanWorkersAttr pins the plan_workers telemetry contract: the
// attribute is absent on serial planning spans and reports the thread count
// on parallel ones, keeping serial and parallel span streams comparable.
func TestPlanSpanWorkersAttr(t *testing.T) {
	for _, c := range []struct {
		workers int
		want    float64 // 0 = attribute absent
	}{{1, 0}, {2, 2}} {
		cat, q := fixture()
		eng := engine.New(cat)
		col := &obs.Collector{}
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 7, Iterations: 300, PlanParallelism: c.workers, Sink: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Actions == 0 {
			t.Fatal("fixture run planned no actions")
		}
		for i, sp := range col.SpansOf(obs.KPlan) {
			got, ok := sp.Num[obs.AttrPlanWorkers]
			if c.want == 0 && ok {
				t.Errorf("workers=%d span %d: plan_workers = %v, want absent on serial spans", c.workers, i, got)
			}
			// Fast-path spans never search, so they stay serial at any cap.
			if c.want > 0 && sp.Str["fast_path"] == "" && got != c.want {
				t.Errorf("workers=%d span %d: plan_workers = %v, want %v", c.workers, i, got, c.want)
			}
		}
	}
}

// TestPlanSpansCarryStats pins the plan-span telemetry: when a sink is
// attached, every MCTS plan span must carry the planner's rollout and
// root-action statistics. (A previous guard compared the wrong variable and
// silently dropped these attributes whenever tracing was on.)
func TestPlanSpansCarryStats(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	col := &obs.Collector{}
	res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300, Sink: col})
	if err != nil {
		t.Fatal(err)
	}
	plans := col.SpansOf(obs.KPlan)
	if len(plans) != res.Actions {
		t.Fatalf("plan spans = %d, want one per action = %d", len(plans), res.Actions)
	}
	for i, sp := range plans {
		for _, key := range []string{"rollouts", "root_actions", "tree_depth", "nodes"} {
			if _, ok := sp.Num[key]; !ok {
				t.Errorf("plan span %d missing %q attribute (attrs: %v)", i, key, sp.Num)
			}
		}
		// A fast-path span legitimately reports zero rollouts; a full MCTS
		// call must report at least one.
		if sp.Str["fast_path"] == "" && sp.Num["rollouts"] < 1 {
			t.Errorf("plan span %d: full MCTS call reports %v rollouts", i, sp.Num["rollouts"])
		}
		if sp.Num["root_actions"] < 1 {
			t.Errorf("plan span %d: root_actions = %v, want >= 1", i, sp.Num["root_actions"])
		}
	}
}
