package core

import (
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/obs"
)

// TestRunStreamingBatchSizesIdentical is the driver-level mirror of the
// engine's streaming≡materialized gate: the full MDP loop — MCTS planning, Σ
// passes, hardened statistics, EXECUTE rounds — must settle on the same
// multi-step plan and the same answer at every pipeline batch size, because
// batching changes when rows move, never what the optimizer observes.
func TestRunStreamingBatchSizesIdentical(t *testing.T) {
	run := func(batch int) *Result {
		cat, q := bigFixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 13, Iterations: 200, BatchSize: batch,
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		return res
	}
	ref := run(-1) // materialized reference
	for _, batch := range []int{1, 7, 4096, 1 << 20, 0} {
		r := run(batch)
		if r.Value != ref.Value || r.Rows != ref.Rows || r.Produced != ref.Produced {
			t.Errorf("batch %d: value/rows/produced %v/%d/%v, materialized %v/%d/%v",
				batch, r.Value, r.Rows, r.Produced, ref.Value, ref.Rows, ref.Produced)
		}
		if r.Actions != ref.Actions || r.Executes != ref.Executes || r.SigmaOps != ref.SigmaOps {
			t.Errorf("batch %d: MDP trajectory diverged: %+v vs %+v", batch, r, ref)
		}
		if len(r.Executed) != len(ref.Executed) {
			t.Fatalf("batch %d: %d executed trees, materialized %d", batch, len(r.Executed), len(ref.Executed))
		}
		for i := range r.Executed {
			if r.Executed[i].String() != ref.Executed[i].String() {
				t.Errorf("batch %d: executed tree %d is %s, materialized %s",
					batch, i, r.Executed[i], ref.Executed[i])
			}
		}
	}
}

// TestRunStreamingParallelIdentical crosses the two execution knobs: small
// batches and fanned-out workers together must still reproduce the serial
// materialized run exactly.
func TestRunStreamingParallelIdentical(t *testing.T) {
	run := func(batch, par int) *Result {
		cat, q := bigFixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, &engine.Budget{}, Config{
			Seed: 13, Iterations: 200, BatchSize: batch, Parallelism: par,
		})
		if err != nil {
			t.Fatalf("batch %d par %d: %v", batch, par, err)
		}
		return res
	}
	ref := run(-1, 1)
	for _, batch := range []int{7, 4096} {
		for _, par := range []int{0, 4} {
			r := run(batch, par)
			if r.Value != ref.Value || r.Rows != ref.Rows || r.Produced != ref.Produced {
				t.Errorf("batch %d par %d: value/rows/produced %v/%d/%v, serial materialized %v/%d/%v",
					batch, par, r.Value, r.Rows, r.Produced, ref.Value, ref.Rows, ref.Produced)
			}
		}
	}
}

// TestSessionPeakBytesFlows: with a metrics registry in the config, the
// engine's per-batch heap sampling must surface through Session results as
// the max over EXECUTE rounds.
func TestSessionPeakBytesFlows(t *testing.T) {
	cat, q := bigFixture()
	eng := engine.New(cat)
	res, err := Run(q, eng, &engine.Budget{}, Config{
		Seed: 13, Iterations: 200, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes <= 0 {
		t.Errorf("PeakBytes = %v, want > 0 with Metrics set", res.PeakBytes)
	}
}
