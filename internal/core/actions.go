package core

import (
	"fmt"

	"monsoon/internal/plan"
	"monsoon/internal/query"
)

// ActionKind enumerates the MDP actions of §4.2.
type ActionKind uint8

// The action kinds. The first five edit Rp deterministically; Execute
// triggers the stochastic materialize-and-observe transition.
const (
	// ActSigmaCopy copies a materialized expression from Re into Rp topped
	// with Σ (§4.2, statistics option 1).
	ActSigmaCopy ActionKind = iota
	// ActSigmaWrap replaces a planned expression with its Σ-topped version
	// (§4.2, statistics option 2).
	ActSigmaWrap
	// ActJoinMats adds the join of two materialized expressions to Rp
	// (§4.2, join option 1).
	ActJoinMats
	// ActJoinPlanned replaces two Σ-free planned expressions with their join
	// (§4.2, join option 2).
	ActJoinPlanned
	// ActJoinMatPlanned replaces a Σ-free planned expression with its join
	// against a materialized expression (§4.2, join option 3).
	ActJoinMatPlanned
	// ActExecute executes and materializes every expression in Rp.
	ActExecute
	// ActMaterialize adds a bare (Σ-free) materialization of an Re
	// expression to Rp. It exists for single-relation queries, whose result
	// is a filtered scan rather than a join.
	ActMaterialize
)

// Action is one MDP action. A and B name the operands by expression key: for
// ActJoinMats two active Re keys, for ActJoinPlanned two planned-tree keys,
// for ActJoinMatPlanned the Re key then the planned key, for the Σ actions
// the single target key.
type Action struct {
	Kind ActionKind
	A, B string
}

// Key implements mcts.Action.
func (a Action) Key() string {
	switch a.Kind {
	case ActSigmaCopy:
		return "Σcopy:" + a.A
	case ActSigmaWrap:
		return "Σwrap:" + a.A
	case ActJoinMats:
		return "jm:" + a.A + "|" + a.B
	case ActJoinPlanned:
		return "jp:" + a.A + "|" + a.B
	case ActJoinMatPlanned:
		return "jmp:" + a.A + "|" + a.B
	case ActExecute:
		return "exec"
	case ActMaterialize:
		return "mat:" + a.A
	default:
		return fmt.Sprintf("act(%d)", a.Kind)
	}
}

// String renders the action for logs and traces.
func (a Action) String() string {
	switch a.Kind {
	case ActSigmaCopy:
		return "add Σ(" + a.A + ") to Rp"
	case ActSigmaWrap:
		return "wrap " + a.A + " with Σ"
	case ActJoinMats:
		return "join materialized " + a.A + " ⋈ " + a.B
	case ActJoinPlanned:
		return "join planned " + a.A + " ⋈ " + a.B
	case ActJoinMatPlanned:
		return "join materialized " + a.A + " with planned " + a.B
	case ActExecute:
		return "EXECUTE"
	case ActMaterialize:
		return "materialize " + a.A
	default:
		return a.Key()
	}
}

// predOpen reports whether join predicate p can still be consumed by a future
// join: no materialized expression and no planned tree already covers it.
func predOpen(s *State, p *query.JoinPred) bool {
	all := p.Aliases()
	for _, a := range s.Active {
		if all.SubsetOf(a) {
			return false
		}
	}
	for _, t := range s.Planned {
		if !t.SigmaCopy && all.SubsetOf(t.Tree.Aliases()) {
			return false
		}
	}
	return true
}

// usefulSigmaTerm reports whether collecting statistics over an expression
// covering cover would measure at least one join term that is (a) evaluable
// there, (b) not already applied inside the expression, (c) still open, and
// (d) not already measured over this expression or its minimal alias set.
func usefulSigmaTerm(s *State, q *query.Query, cover query.AliasSet, key string) bool {
	for _, p := range q.Joins {
		for _, t := range []*query.Term{p.L, p.R} {
			if !t.Aliases.SubsetOf(cover) {
				continue
			}
			if p.ApplicableAt(cover) {
				continue // consumed inside the expression; stats are moot
			}
			if !predOpen(s, p) {
				continue
			}
			if s.St.HasMeasured(t.ID, key) || s.St.HasMeasured(t.ID, t.Aliases.Key()) {
				continue
			}
			return true
		}
	}
	return false
}

// usefulSigmaCount reports whether materializing the expression would harden
// an unknown selection-bearing cardinality — the other reason to Σ-copy a
// base relation (§2.3: "scan the set S and collect statistics"). It is moot
// when a pending planned tree already contains the expression: executing that
// tree hardens the count for free.
func usefulSigmaCount(s *State, q *query.Query, cover query.AliasSet, key string) bool {
	if _, known := s.St.Count(key); known {
		return false
	}
	if len(q.SelsAt(cover)) == 0 {
		return false
	}
	for _, t := range s.Planned {
		if !t.SigmaCopy && cover.SubsetOf(t.Tree.Aliases()) {
			return false
		}
	}
	return true
}

// legalActions enumerates A_s for the state (§4.2 with the pruning rules of
// DESIGN.md §3): joins must enable a predicate or make a term evaluable,
// non-Σ-copy planned trees stay pairwise alias-disjoint, Σ targets must be
// useful, and cross products open up only when nothing connected remains.
func legalActions(s *State, q *query.Query) []Action {
	if s.Terminal() {
		return nil
	}
	var acts []Action

	// Materialized entries not consumed by a pending (non-Σ-copy) plan.
	var freeMats []query.AliasSet
	for _, a := range s.Active {
		used := false
		for _, t := range s.Planned {
			if !t.SigmaCopy && t.Tree.Aliases().Intersects(a) {
				used = true
				break
			}
		}
		if !used {
			freeMats = append(freeMats, a)
		}
	}
	var openPlanned []PlannedTree
	for _, t := range s.Planned {
		if !t.SigmaCopy && !t.Tree.Sigma {
			openPlanned = append(openPlanned, t)
		}
	}

	joinStart := len(acts)
	for i := 0; i < len(freeMats); i++ {
		for j := i + 1; j < len(freeMats); j++ {
			if q.Connected(freeMats[i], freeMats[j]) {
				acts = append(acts, Action{Kind: ActJoinMats, A: freeMats[i].Key(), B: freeMats[j].Key()})
			}
		}
	}
	for i := 0; i < len(openPlanned); i++ {
		for j := i + 1; j < len(openPlanned); j++ {
			if q.Connected(openPlanned[i].Tree.Aliases(), openPlanned[j].Tree.Aliases()) {
				acts = append(acts, Action{Kind: ActJoinPlanned,
					A: openPlanned[i].Tree.Key(), B: openPlanned[j].Tree.Key()})
			}
		}
	}
	for _, m := range freeMats {
		for _, t := range openPlanned {
			if q.Connected(m, t.Tree.Aliases()) {
				acts = append(acts, Action{Kind: ActJoinMatPlanned, A: m.Key(), B: t.Tree.Key()})
			}
		}
	}
	// Cross-product fallback: only when no connected join exists anywhere.
	if len(acts) == joinStart && len(openPlanned) == 0 {
		for i := 0; i < len(freeMats); i++ {
			for j := i + 1; j < len(freeMats); j++ {
				acts = append(acts, Action{Kind: ActJoinMats, A: freeMats[i].Key(), B: freeMats[j].Key()})
			}
		}
	}

	// Σ-copy from Re (allowed even for entries consumed by pending plans —
	// the copy is a side computation).
	for _, m := range s.Active {
		key := m.Key()
		if s.findPlanned(key) >= 0 {
			continue // already planned (as Σ-copy or otherwise)
		}
		if usefulSigmaTerm(s, q, m, key) || usefulSigmaCount(s, q, m, key) {
			acts = append(acts, Action{Kind: ActSigmaCopy, A: key})
		}
	}
	// Σ-wrap a planned tree.
	for _, t := range openPlanned {
		if usefulSigmaTerm(s, q, t.Tree.Aliases(), t.Tree.Key()) {
			acts = append(acts, Action{Kind: ActSigmaWrap, A: t.Tree.Key()})
		}
	}

	// Single-relation queries: the only way to terminate is to materialize
	// the filtered scan itself.
	full := q.Aliases()
	if full.Size() == 1 && s.findPlanned(full.Key()) < 0 {
		acts = append(acts, Action{Kind: ActMaterialize, A: full.Key()})
	}

	if len(s.Planned) > 0 {
		acts = append(acts, Action{Kind: ActExecute})
	}
	return acts
}

// applyPlanEdit applies a deterministic (non-Execute) action, returning a new
// state that shares the statistics store.
func applyPlanEdit(s *State, q *query.Query, a Action) (*State, error) {
	n := s.clone(false)
	switch a.Kind {
	case ActSigmaCopy:
		i := n.findActive(a.A)
		if i < 0 {
			return nil, fmt.Errorf("core: Σ-copy target %q not active", a.A)
		}
		n.addPlanned(PlannedTree{
			Tree:      plan.NewLeaf(n.Active[i]).WithSigma(),
			SigmaCopy: true,
		})
	case ActSigmaWrap:
		i := n.findPlanned(a.A)
		if i < 0 {
			return nil, fmt.Errorf("core: Σ-wrap target %q not planned", a.A)
		}
		n.Planned[i].Tree = n.Planned[i].Tree.WithSigma()
	case ActJoinMats:
		i, j := n.findActive(a.A), n.findActive(a.B)
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("core: join-mats operands %q, %q not active", a.A, a.B)
		}
		n.addPlanned(PlannedTree{
			Tree: plan.NewJoin(plan.NewLeaf(n.Active[i]), plan.NewLeaf(n.Active[j])),
		})
	case ActJoinPlanned:
		i, j := n.findPlanned(a.A), n.findPlanned(a.B)
		if i < 0 || j < 0 || i == j {
			return nil, fmt.Errorf("core: join-planned operands %q, %q not planned", a.A, a.B)
		}
		joined := plan.NewJoin(n.Planned[i].Tree, n.Planned[j].Tree)
		keep := n.Planned[:0]
		for k, t := range n.Planned {
			if k != i && k != j {
				keep = append(keep, t)
			}
		}
		n.Planned = append(keep, PlannedTree{Tree: joined})
		n.reindexPlanned()
	case ActMaterialize:
		i := n.findActive(a.A)
		if i < 0 {
			return nil, fmt.Errorf("core: materialize target %q not active", a.A)
		}
		n.addPlanned(PlannedTree{Tree: plan.NewLeaf(n.Active[i])})
	case ActJoinMatPlanned:
		i := n.findActive(a.A)
		j := n.findPlanned(a.B)
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("core: join-mat-planned operands %q, %q missing", a.A, a.B)
		}
		n.Planned[j] = PlannedTree{Tree: plan.NewJoin(plan.NewLeaf(n.Active[i]), n.Planned[j].Tree)}
		delete(n.plannedIdx, a.B)
		n.plannedIdx[n.Planned[j].Tree.Key()] = j
	default:
		return nil, fmt.Errorf("core: applyPlanEdit on %v", a)
	}
	return n, nil
}

// settleExecution updates the Re frontier after all of Rp has been
// materialized: every non-Σ-copy tree replaces the active entries it
// consumed; Σ-copies leave the frontier unchanged. Planned becomes empty.
func settleExecution(s *State) {
	for _, t := range s.Planned {
		if t.Tree.Aliases().Equal(s.full) {
			s.done = true
		}
		if t.SigmaCopy {
			continue
		}
		cover := t.Tree.Aliases()
		kept := s.Active[:0]
		for _, a := range s.Active {
			if !a.SubsetOf(cover) {
				kept = append(kept, a)
			}
		}
		s.Active = append(kept, cover)
	}
	s.Planned = nil
	s.plannedIdx = nil
	s.sortActive()
}
