package core

import (
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
)

// estimateTree records the deriver's predicted cardinality for every node of
// one planned tree, keyed by plan.Node.Key.
func estimateTree(dv *cost.Deriver, n *plan.Node, out map[string]float64) {
	out[n.Key()] = dv.NodeCount(n)
	if !n.IsLeaf() {
		estimateTree(dv, n.Left, out)
		estimateTree(dv, n.Right, out)
	}
}

// reportEstimates emits one estimate-vs-actual record per executed node whose
// cardinality the engine observed, and feeds join q-errors into the metrics
// registry — the per-join q-error being the single most diagnostic signal for
// how well the prior's expectation matched the hidden world.
func reportEstimates(tr *obs.Tracer, reg *obs.Registry, n *plan.Node, ests, actuals map[string]float64, times map[string]time.Duration, round int) {
	key := n.Key()
	if est, okE := ests[key]; okE {
		if actual, okA := actuals[key]; okA {
			qe := obs.QError(est, actual)
			tr.Estimate(obs.Estimate{
				Expr: key, Join: !n.IsLeaf(), Round: round,
				Est: est, Actual: actual, QError: qe,
				Miss: obs.QErrorIsMiss(qe),
				Dur:  times[key],
			})
			if !n.IsLeaf() {
				// An empty-vs-nonempty miss is +Inf (and a threshold-scale one
				// is as good as infinite); count those separately instead of
				// letting them poison the histogram's sum, mean, and
				// quantiles — mirroring the harness's miss column.
				if obs.QErrorIsMiss(qe) {
					reg.Counter("monsoon.qerror.misses").Inc()
				} else {
					reg.Histogram("monsoon.qerror.join").Observe(qe)
				}
			}
		}
	}
	if !n.IsLeaf() {
		reportEstimates(tr, reg, n.Left, ests, actuals, times, round)
		reportEstimates(tr, reg, n.Right, ests, actuals, times, round)
	}
}
