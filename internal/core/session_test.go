package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"monsoon/internal/engine"
	"monsoon/internal/obs"
	"monsoon/internal/plancache"
)

// runTrees renders the executed multi-step plan for comparison.
func runTrees(res *Result) []string {
	var trees []string
	for _, n := range res.Executed {
		trees = append(trees, n.String())
	}
	return trees
}

// TestCachedEqualsUncachedGolden is the cached≡uncached guarantee: for every
// pinned golden trajectory, a cold cache-on run is bit-identical to the
// uncached run (all misses, same search), and a warm re-run through the now
// populated cache replays the exact same plans and accounting while skipping
// MCTS entirely (all hits, no misses).
func TestCachedEqualsUncachedGolden(t *testing.T) {
	for _, g := range goldenFixtureRuns {
		cache := plancache.New(0)
		var cold, warm *Result
		for i, c := range []*plancache.Cache{nil, cache, cache} {
			cat, q := fixture()
			eng := engine.New(cat)
			res, err := Run(q, eng, &engine.Budget{}, Config{
				Seed: g.seed, Iterations: g.iterations, Cache: c,
			})
			if err != nil {
				t.Fatalf("seed %d run %d: %v", g.seed, i, err)
			}
			checkGolden(t, []string{"uncached", "cold", "warm"}[i], g, res)
			switch i {
			case 1:
				cold = res
			case 2:
				warm = res
			}
		}
		if cold.CacheHits != 0 || cold.CacheMisses != cold.Actions {
			t.Errorf("seed %d cold: hits/misses = %d/%d, want 0/%d",
				g.seed, cold.CacheHits, cold.CacheMisses, cold.Actions)
		}
		if warm.CacheMisses != 0 || warm.CacheHits != warm.Executes {
			t.Errorf("seed %d warm: hits/misses = %d/%d, want %d/0 (one hit per round)",
				g.seed, warm.CacheHits, warm.CacheMisses, warm.Executes)
		}
		if warm.PlanTime*5 > cold.PlanTime {
			t.Errorf("seed %d: warm plan time %v not ≥5× below cold %v",
				g.seed, warm.PlanTime, cold.PlanTime)
		}
	}
}

// TestCachedWarmTraceIdentical: the warm replay emits the exact trace lines
// the cold (searching) run emits — actions, order, and execution messages.
func TestCachedWarmTraceIdentical(t *testing.T) {
	cache := plancache.New(0)
	var runs [][]string
	for i := 0; i < 2; i++ {
		cat, q := fixture()
		eng := engine.New(cat)
		var lines []string
		_, err := Run(q, eng, &engine.Budget{}, Config{Seed: 11, Iterations: 300,
			Cache: cache, Trace: func(s string) { lines = append(lines, s) }})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, lines)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Errorf("warm trace:\n%q\ncold trace:\n%q", runs[1], runs[0])
	}
}

// TestPlanSpanCacheHitAttr pins the cache_hit telemetry contract: absent
// without a cache, "false" on every searching span, "true" on every replayed
// span, with one plan span per action in all three modes.
func TestPlanSpanCacheHitAttr(t *testing.T) {
	cache := plancache.New(0)
	for i, want := range []string{"", "false", "true"} {
		cat, q := fixture()
		eng := engine.New(cat)
		var c *plancache.Cache
		if i > 0 {
			c = cache
		}
		col := &obs.Collector{}
		res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 42, Iterations: 300, Sink: col, Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		plans := col.SpansOf(obs.KPlan)
		if len(plans) != res.Actions {
			t.Fatalf("mode %d: plan spans = %d, want one per action = %d", i, len(plans), res.Actions)
		}
		for _, sp := range plans {
			if got := sp.Str[obs.AttrCacheHit]; got != want {
				t.Errorf("mode %d: cache_hit = %q, want %q", i, got, want)
			}
		}
	}
}

// TestPlanCacheMetricsCounters: hit/miss counters surface in the registry.
func TestPlanCacheMetricsCounters(t *testing.T) {
	cache := plancache.New(0)
	reg := obs.NewRegistry()
	for i := 0; i < 2; i++ {
		cat, q := fixture()
		eng := engine.New(cat)
		if _, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300,
			Cache: cache, Metrics: reg}); err != nil {
			t.Fatal(err)
		}
	}
	if hits := reg.Counter("monsoon.plancache.hits").Value(); hits < 1 {
		t.Errorf("plancache.hits = %v, want ≥ 1", hits)
	}
	if misses := reg.Counter("monsoon.plancache.misses").Value(); misses < 1 {
		t.Errorf("plancache.misses = %v, want ≥ 1", misses)
	}
	s := cache.Stats()
	if s.Hits < 1 || s.Misses < 1 {
		t.Errorf("cache stats = %+v, want hits and misses", s)
	}
}

// TestPlanCacheMetricsGauges: cache pressure — current size and LRU
// evictions — surfaces in the registry alongside the hit/miss counters, set
// when the session closes. A capacity-1 cache under a multi-round run must
// evict; an unbounded one must not.
func TestPlanCacheMetricsGauges(t *testing.T) {
	for _, c := range []struct {
		name string
		cap  int
	}{{"unbounded", 0}, {"capacity-1", 1}} {
		cache := plancache.New(c.cap)
		reg := obs.NewRegistry()
		cat, q := fixture()
		eng := engine.New(cat)
		if _, err := Run(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 300,
			Cache: cache, Metrics: reg}); err != nil {
			t.Fatal(err)
		}
		cs := cache.Stats()
		if got := reg.Gauge("monsoon.plancache.entries").Value(); got != float64(cs.Entries) {
			t.Errorf("%s: plancache.entries gauge = %v, cache reports %d", c.name, got, cs.Entries)
		}
		if got := reg.Gauge("monsoon.plancache.evictions").Value(); got != float64(cs.Evictions) {
			t.Errorf("%s: plancache.evictions gauge = %v, cache reports %d", c.name, got, cs.Evictions)
		}
		evicted := cs.Evictions > 0
		if wantEvict := c.cap == 1; evicted != wantEvict {
			t.Errorf("%s: evictions = %d, want evictions iff capacity-bounded", c.name, cs.Evictions)
		}
		if cs.Entries < 1 {
			t.Errorf("%s: cache holds %d entries after the run, want ≥ 1", c.name, cs.Entries)
		}
	}
}

// TestSessionManualDrive: driving the phases by hand is the same run the
// compatibility wrapper performs.
func TestSessionManualDrive(t *testing.T) {
	cat, q := fixture()
	engA := engine.New(cat)
	want, err := Run(q, engA, &engine.Budget{}, Config{Seed: 11, Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}

	catB, qB := fixture()
	engB := engine.New(catB)
	s := NewSession(qB, engB, &engine.Budget{}, Config{Seed: 11, Iterations: 300})
	defer s.Close()
	rounds := 0
	for {
		execute, err := s.PlanRound()
		if err != nil {
			t.Fatal(err)
		}
		if !execute {
			break
		}
		// PlanRound is idempotent while an EXECUTE is pending.
		if again, _ := s.PlanRound(); !again {
			t.Fatal("PlanRound must keep reporting the pending EXECUTE")
		}
		if err := s.ExecuteRound(); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	got, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != want.Executes {
		t.Errorf("rounds = %d, want %d", rounds, want.Executes)
	}
	if got.Value != want.Value || got.Rows != want.Rows || got.Produced != want.Produced ||
		got.Actions != want.Actions || got.SigmaOps != want.SigmaOps {
		t.Errorf("manual drive result %+v != Run result %+v", got, want)
	}
	if !reflect.DeepEqual(runTrees(got), runTrees(want)) {
		t.Errorf("manual trees %q != Run trees %q", runTrees(got), runTrees(want))
	}
}

// TestReplanTriggerEndToEnd closes the loop on the fixture's forced
// misestimate: the R⋈T join is empty while the optimizer's prior predicts
// matches, so the final round's q-error is a miss — which must arm the replan
// trigger, evict this query's memoized rounds, bump the counters, and stamp
// the execute span, all without perturbing the pinned golden trajectory
// (every round before the trigger plans exactly as an unarmed run does).
func TestReplanTriggerEndToEnd(t *testing.T) {
	g := goldenFixtureRuns[0] // seed 7
	cache := plancache.New(0)
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	cat, q := fixture()
	res, err := Run(q, engine.New(cat), &engine.Budget{}, Config{
		Seed: g.seed, Iterations: g.iterations,
		Cache: cache, Metrics: reg, Sink: col, ReplanThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "replan-armed", g, res)
	if res.Replans < 1 {
		t.Fatalf("replans = %d, want ≥ 1 (empty join is a q-error miss)", res.Replans)
	}
	if res.ReplanInvalidations < 1 {
		t.Errorf("invalidations = %d, want ≥ 1 (memoized rounds recorded under the misestimate)",
			res.ReplanInvalidations)
	}
	if got := reg.Counter("monsoon.replan.triggered").Value(); got != int64(res.Replans) {
		t.Errorf("replan.triggered counter = %d, want %d", got, res.Replans)
	}
	if got := reg.Counter("monsoon.replan.cache_invalidations").Value(); got != int64(res.ReplanInvalidations) {
		t.Errorf("replan.cache_invalidations counter = %d, want %d", got, res.ReplanInvalidations)
	}
	var stamped bool
	for _, sp := range col.SpansOf(obs.KAction) {
		if sp.Str["replan"] == "true" {
			stamped = true
		}
	}
	if !stamped {
		t.Error("no execute span carries replan=true")
	}
}

// TestReplanCountersMaterializedAtZero: arming the threshold materializes the
// replan counters in the registry even when no trigger ever fires, so
// /metrics scrapes see an explicit zero instead of an absent series.
func TestReplanCountersMaterializedAtZero(t *testing.T) {
	reg := obs.NewRegistry()
	cat, q := fixture()
	s := NewSession(q, engine.New(cat), &engine.Budget{}, Config{
		Seed: 7, Iterations: 300, Metrics: reg, ReplanThreshold: 1e18,
	})
	s.Close()
	found := false
	for _, e := range reg.Snapshot() {
		if e.Name == "monsoon.replan.triggered" {
			found = true
			if e.Value != 0 {
				t.Errorf("untriggered replan counter = %v, want 0", e.Value)
			}
		}
	}
	if !found {
		t.Error("monsoon.replan.triggered not materialized in the registry")
	}
}

// TestForcedReplanSkipsCache drives the forced-replan contract directly: with
// replanPending armed, PlanRound must not consult the plan cache at all — no
// hits, no miss accounting (a forced replan is not a lookup failure) — must
// stamp its searching plan spans replan=true, and must clear the flag once
// the forced round reaches EXECUTE so later rounds trust the cache again.
func TestForcedReplanSkipsCache(t *testing.T) {
	cache := plancache.New(0)
	cat, q := fixture()
	if _, err := Run(q, engine.New(cat), &engine.Budget{}, Config{
		Seed: 11, Iterations: 300, Cache: cache,
	}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()

	cat2, q2 := fixture()
	col := &obs.Collector{}
	s := NewSession(q2, engine.New(cat2), &engine.Budget{}, Config{
		Seed: 11, Iterations: 300, Cache: cache, Sink: col, ReplanThreshold: 4,
	})
	defer s.Close()
	s.replanPending = true // as if the previous round's q-error crossed the threshold
	execute, err := s.PlanRound()
	if err != nil {
		t.Fatal(err)
	}
	if !execute {
		t.Fatal("forced round must still reach EXECUTE")
	}
	after := cache.Stats()
	if after.Hits != before.Hits {
		t.Errorf("cache hits %d → %d: forced replan consulted the cache", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses || s.res.CacheMisses != 0 {
		t.Errorf("miss accounting moved (%d → %d cache, %d session): a forced replan is not a lookup failure",
			before.Misses, after.Misses, s.res.CacheMisses)
	}
	if s.replanPending {
		t.Error("replanPending must clear when the forced round reaches EXECUTE")
	}
	plans := col.SpansOf(obs.KPlan)
	if len(plans) == 0 {
		t.Fatal("forced round emitted no plan spans")
	}
	for _, sp := range plans {
		if sp.Str["replan"] != "true" || sp.Str[obs.AttrCacheHit] != "false" {
			t.Errorf("forced plan span attrs = %v, want replan=true cache_hit=false", sp.Str)
		}
	}
}

// TestExecuteRoundWithoutPlan: ExecuteRound demands a pending EXECUTE.
func TestExecuteRoundWithoutPlan(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	s := NewSession(q, eng, &engine.Budget{}, Config{Seed: 7, Iterations: 100})
	defer s.Close()
	if err := s.ExecuteRound(); err == nil {
		t.Error("ExecuteRound without PlanRound must fail")
	}
}

// TestExecuteRoundDeadlineBetweenTrees is the budget fix: when the deadline
// passes while a round's earlier tree runs, the loop stops between trees with
// engine.ErrBudget and the completed trees' accounting preserved — it does
// not start the next tree. Seed 19 plans two trees (Σ(S) then the final
// join) in its first round; a clock pushed past the deadline after PlanRound
// must stop after the first.
func TestExecuteRoundDeadlineBetweenTrees(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	budget := &engine.Budget{Deadline: time.Now().Add(time.Hour)}
	s := NewSession(q, eng, budget, Config{Seed: 19, Iterations: 300})
	defer s.Close()
	execute, err := s.PlanRound()
	if err != nil || !execute {
		t.Fatalf("PlanRound = %v, %v", execute, err)
	}
	// The engine's own deadline (real clock) never trips; only the session's
	// between-trees check sees the advanced clock.
	s.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	if err := s.ExecuteRound(); !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("err = %v, want engine.ErrBudget", err)
	}
	res := s.Result()
	if trees := runTrees(res); !reflect.DeepEqual(trees, []string{"Σ(S)"}) {
		t.Errorf("partial round executed %q, want just the first tree", trees)
	}
	if res.SigmaOps != 1 || res.Produced != 200 {
		t.Errorf("partial accounting sigma/produced = %d/%g, want 1/200", res.SigmaOps, res.Produced)
	}
	if res.Executes != 0 {
		t.Errorf("aborted round must not count as an execute, got %d", res.Executes)
	}
}

// TestPlanRoundDeadline: the round-top deadline check still fires.
func TestPlanRoundDeadline(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	budget := &engine.Budget{Deadline: time.Now().Add(-time.Second)}
	s := NewSession(q, eng, budget, Config{Seed: 7, Iterations: 300})
	defer s.Close()
	if _, err := s.PlanRound(); !errors.Is(err, engine.ErrBudget) {
		t.Errorf("err = %v, want engine.ErrBudget", err)
	}
}
