package core

import (
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/mcts"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/randx"
)

// TestMDPInvariantsUnderRandomWalks drives the simulator with random legal
// actions from many seeds and checks the structural invariants the design
// relies on at every step:
//
//  1. active Re entries stay pairwise alias-disjoint;
//  2. non-Σ-copy planned trees stay pairwise alias-disjoint;
//  3. every planned tree's aliases are a subset of the query's;
//  4. at most one planned tree per expression key;
//  5. Legal never returns an action that Step cannot apply;
//  6. every walk reaches the terminal state (no dead ends, no cycles).
func TestMDPInvariantsUnderRandomWalks(t *testing.T) {
	cat, q := fixture()
	m := &Model{Q: q, Prior: prior.SpikeAndSlab{}, Rng: randx.New(99)}
	full := q.Aliases()
	for seed := int64(0); seed < 30; seed++ {
		rng := randx.New(seed)
		st, eng := initState(q, cat)
		_ = eng
		var cur mcts.State = st
		steps := 0
		for !cur.Terminal() {
			s := cur.(*State)
			checkInvariants(t, s, full)
			acts := legalActions(s, q)
			if len(acts) == 0 {
				t.Fatalf("seed %d: dead end in non-terminal state %s", seed, s)
			}
			a := acts[rng.Intn(len(acts))]
			next, _, _ := m.Step(cur, a)
			cur = next
			steps++
			if steps > 150 {
				t.Fatalf("seed %d: walk did not terminate", seed)
			}
		}
	}
}

func checkInvariants(t *testing.T, s *State, full query.AliasSet) {
	t.Helper()
	for i := 0; i < len(s.Active); i++ {
		for j := i + 1; j < len(s.Active); j++ {
			if s.Active[i].Intersects(s.Active[j]) {
				t.Fatalf("active entries overlap: %v %v", s.Active[i], s.Active[j])
			}
		}
	}
	seenKeys := map[string]bool{}
	for i, ti := range s.Planned {
		if !ti.Tree.Aliases().SubsetOf(full) {
			t.Fatalf("planned tree exceeds query aliases: %v", ti.Tree)
		}
		key := ti.Tree.Key()
		if seenKeys[key] {
			t.Fatalf("two planned trees share key %q", key)
		}
		seenKeys[key] = true
		if ti.SigmaCopy {
			continue
		}
		for j, tj := range s.Planned {
			if j <= i || tj.SigmaCopy {
				continue
			}
			if ti.Tree.Aliases().Intersects(tj.Tree.Aliases()) {
				t.Fatalf("non-Σ-copy planned trees overlap: %v %v", ti.Tree, tj.Tree)
			}
		}
	}
}

// TestSimCountsMatchRealCounts cross-validates the §4.3 derivation against
// the engine: when every statistic the derivation needs is *measured* (no
// prior sampling at all), the simulated transition's hardened counts must be
// reasonable predictions of the real execution's counts — here the fixture's
// statistics make the prediction exact for the R⋈T side and exact for R⋈S.
func TestSimCountsMatchRealCounts(t *testing.T) {
	cat, q := fixture()
	s, eng := initState(q, cat)
	// Measure everything the model would need.
	s.St.SetMeasured(q.Joins[0].L.ID, "R", 1)   // d(R.a) = 1
	s.St.SetMeasured(q.Joins[0].R.ID, "S", 1)   // d(S.k) = 1
	s.St.SetMeasured(q.Joins[1].L.ID, "R", 40)  // d(R.b) = 40
	s.St.SetMeasured(q.Joins[1].R.ID, "T", 100) // d(T.k) = 100
	m := &Model{Q: q, Prior: prior.Uniform{}, Rng: randx.New(1)}
	s1, _, _ := m.Step(s, Action{Kind: ActJoinMats, A: "R", B: "S"})
	s2, _, _ := m.Step(s1, Action{Kind: ActExecute})
	simRS, _ := s2.(*State).St.Count("R+S")
	// Real execution.
	tree, err := joinCandidate(s, Action{Kind: ActJoinMats, A: "R", B: "S"})
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := eng.ExecTree(q, tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if simRS != float64(rel.Count()) {
		t.Errorf("simulated c(R+S) = %v, real = %d", simRS, rel.Count())
	}
}

// TestDriverMultiStepReoptimization forces a world where the first EXECUTE's
// observations must change the remaining plan: the driver runs a Σ probe or
// partial join, hardens statistics, and completes — exercising more than one
// EXECUTE round end to end at least for some seeds.
func TestDriverMultiStepReoptimization(t *testing.T) {
	multi := 0
	for seed := int64(0); seed < 8; seed++ {
		cat, q := fixture()
		eng := engine.New(cat)
		res, err := Run(q, eng, nil, Config{Seed: seed, Iterations: 500})
		if err != nil {
			t.Fatal(err)
		}
		if res.Executes > 1 || res.SigmaOps > 0 {
			multi++
		}
	}
	if multi == 0 {
		t.Log("no seed chose a multi-step strategy on this fixture; acceptable but worth watching")
	}
}
