package cost

import (
	"fmt"
	"strings"

	"monsoon/internal/plan"
)

// Explain renders a plan tree, EXPLAIN-style: one node per line, indented by
// depth, with the predicates applied at each join, the deriver's cardinality
// estimate, and — when an actuals map from an engine run is supplied — the
// observed count and the q-error of the estimate.
//
//	⋈ [R+S+T] preds{F3(R.b)=id(T.k)} est=1e+06 actual=964412 q=1.04
//	  ⋈ [R+S] preds{F1(R.a)=id(S.k)} est=1e+07 actual=1.2e+07 q=1.20
//	    scan R est=1e+06
//	    scan S est=10000
//	  scan T est=10000
func Explain(dv *Deriver, tree *plan.Node, actuals map[string]float64) string {
	var b strings.Builder
	explainNode(&b, dv, tree, actuals, 0, true)
	return b.String()
}

func explainNode(b *strings.Builder, dv *Deriver, n *plan.Node, actuals map[string]float64, depth int, root bool) {
	b.WriteString(strings.Repeat("  ", depth))
	if root && n.Sigma {
		b.WriteString("Σ ")
	}
	if n.IsLeaf() {
		if n.Leaf.Size() == 1 {
			b.WriteString("scan " + n.Leaf.Names()[0])
		} else {
			b.WriteString("reuse [" + n.Key() + "]")
		}
	} else {
		b.WriteString("⋈ [" + n.Key() + "]")
		var preds []string
		for _, p := range dv.Q.PredsNewAt(n.Left.Aliases(), n.Right.Aliases()) {
			preds = append(preds, p.String())
		}
		for _, s := range dv.Q.SelsNewAt(n.Left.Aliases(), n.Right.Aliases()) {
			preds = append(preds, s.String())
		}
		if len(preds) == 0 {
			b.WriteString(" cross-product")
		} else {
			b.WriteString(" preds{" + strings.Join(preds, ", ") + "}")
		}
	}
	est := dv.NodeCount(n)
	fmt.Fprintf(b, " est=%.4g", est)
	if actual, ok := actuals[n.Key()]; ok {
		q := 1.0
		if actual > 0 && est > 0 {
			q = est / actual
			if q < 1 {
				q = 1 / q
			}
		}
		fmt.Fprintf(b, " actual=%.4g q=%.2f", actual, q)
	}
	b.WriteByte('\n')
	if !n.IsLeaf() {
		explainNode(b, dv, n.Left, actuals, depth+1, false)
		explainNode(b, dv, n.Right, actuals, depth+1, false)
	}
}
