package cost

import (
	"fmt"
	"strings"
	"time"

	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
)

// Explain renders a plan tree, EXPLAIN-style: one node per line, indented by
// depth, with the predicates applied at each join, the deriver's cardinality
// estimate, and — when an actuals map from an engine run is supplied — the
// observed count and the q-error of the estimate.
//
//	⋈ [R+S+T] preds{F3(R.b)=id(T.k)} est=1e+06 actual=964412 q=1.04
//	  ⋈ [R+S] preds{F1(R.a)=id(S.k)} est=1e+07 actual=1.2e+07 q=1.20
//	    scan R est=1e+06
//	    scan S est=10000
//	  scan T est=10000
func Explain(dv *Deriver, tree *plan.Node, actuals map[string]float64) string {
	var b strings.Builder
	explainNode(&b, dv, tree, actuals, 0, true)
	return b.String()
}

// nodeLabel renders the operator part of one explain line: the Σ marker (root
// only), the scan/reuse/join shape, and the predicates newly applied there.
func nodeLabel(q *query.Query, n *plan.Node, root bool) string {
	var b strings.Builder
	if root && n.Sigma {
		b.WriteString("Σ ")
	}
	if n.IsLeaf() {
		if n.Leaf.Size() == 1 {
			b.WriteString("scan " + n.Leaf.Names()[0])
		} else {
			b.WriteString("reuse [" + n.Key() + "]")
		}
		return b.String()
	}
	b.WriteString("⋈ [" + n.Key() + "]")
	var preds []string
	for _, p := range q.PredsNewAt(n.Left.Aliases(), n.Right.Aliases()) {
		preds = append(preds, p.String())
	}
	for _, s := range q.SelsNewAt(n.Left.Aliases(), n.Right.Aliases()) {
		preds = append(preds, s.String())
	}
	if len(preds) == 0 {
		b.WriteString(" cross-product")
	} else {
		b.WriteString(" preds{" + strings.Join(preds, ", ") + "}")
	}
	return b.String()
}

func explainNode(b *strings.Builder, dv *Deriver, n *plan.Node, actuals map[string]float64, depth int, root bool) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(nodeLabel(dv.Q, n, root))
	est := dv.NodeCount(n)
	fmt.Fprintf(b, " est=%.4g", est)
	if actual, ok := actuals[n.Key()]; ok {
		q := 1.0
		if actual > 0 && est > 0 {
			q = est / actual
			if q < 1 {
				q = 1 / q
			}
		}
		fmt.Fprintf(b, " actual=%.4g q=%.2f", actual, q)
	}
	b.WriteByte('\n')
	if !n.IsLeaf() {
		explainNode(b, dv, n.Left, actuals, depth+1, false)
		explainNode(b, dv, n.Right, actuals, depth+1, false)
	}
}

// ExplainAnalyze renders an executed plan tree with the optimizer's estimated
// cardinality, the observed cardinality, the per-node q-error, and — when the
// engine reported per-node timings — the inclusive wall time of each operator.
// When a self-time map is supplied too (derived from the run's span tree via
// obs.OperatorTimes), each node also shows the time spent in the operator
// itself, net of its children:
//
//	⋈ [R+S+T] preds{F3(R.b)=id(T.k)} est=1e+06 actual=964412 q=1.04 time=12.3ms self=2.5ms
//	  ⋈ [R+S] preds{F1(R.a)=id(S.k)} est=1e+07 actual=1.2e+07 q=1.20 time=9.8ms self=7.6ms
//	    scan R est=1e+06 actual=1e+06 q=1.00 time=1.1ms self=1.1ms
//
// Unlike Explain it does not need a Deriver: estimates and actuals both come
// as maps keyed by plan.Node.Key, so callers can render from recorded trace
// events long after the run (the CLI's --explain analyze path does exactly
// that). Nodes missing from a map render "?" for that column; a nil selfs map
// omits the self column entirely.
func ExplainAnalyze(q *query.Query, tree *plan.Node, ests, actuals map[string]float64, times, selfs map[string]time.Duration) string {
	var b strings.Builder
	analyzeNode(&b, q, tree, ests, actuals, times, selfs, 0, true)
	return b.String()
}

func analyzeNode(b *strings.Builder, q *query.Query, n *plan.Node, ests, actuals map[string]float64, times, selfs map[string]time.Duration, depth int, root bool) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(nodeLabel(q, n, root))
	key := n.Key()
	est, haveEst := ests[key]
	actual, haveActual := actuals[key]
	if haveEst {
		fmt.Fprintf(b, " est=%.4g", est)
	} else {
		b.WriteString(" est=?")
	}
	if haveActual {
		fmt.Fprintf(b, " actual=%.4g", actual)
	} else {
		b.WriteString(" actual=?")
	}
	if haveEst && haveActual {
		if qe := obs.QError(est, actual); qe > 1e6 {
			fmt.Fprintf(b, " q=%.3g", qe)
		} else {
			fmt.Fprintf(b, " q=%.2f", qe)
		}
	}
	if d, ok := times[key]; ok {
		fmt.Fprintf(b, " time=%s", d.Round(time.Microsecond))
	}
	if d, ok := selfs[key]; ok {
		fmt.Fprintf(b, " self=%s", d.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	if !n.IsLeaf() {
		analyzeNode(b, q, n.Left, ests, actuals, times, selfs, depth+1, false)
		analyzeNode(b, q, n.Right, ests, actuals, times, selfs, depth+1, false)
	}
}
