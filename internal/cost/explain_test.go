package cost

import (
	"strings"
	"testing"

	"monsoon/internal/plan"
)

func TestExplainRendersTree(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	out := Explain(dv, tree, nil)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("explain has %d lines, want 5:\n%s", len(lines), out)
	}
	for _, want := range []string{"⋈ [R+S+T]", "⋈ [R+S]", "scan R", "scan S", "scan T",
		"est=1e+06", "preds{"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Indentation: leaves are deeper than their join.
	if !strings.HasPrefix(lines[1], "  ⋈") || !strings.HasPrefix(lines[2], "    scan") {
		t.Errorf("indentation wrong:\n%s", out)
	}
}

func TestExplainWithActuals(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	tree := plan.NewJoin(leaf("R"), leaf("S"))
	out := Explain(dv, tree, map[string]float64{"R+S": 2e6})
	if !strings.Contains(out, "actual=2e+06") {
		t.Errorf("actuals missing:\n%s", out)
	}
	if !strings.Contains(out, "q=2.00") {
		t.Errorf("q-error missing (est 1e6 vs actual 2e6 → 2.00):\n%s", out)
	}
}

func TestExplainSigmaAndReuseAndCross(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	st.SetCount("R+S", 123)
	dv := &Deriver{Q: q, St: st, Miss: DefaultMiss(0.1)}
	sig := leaf("S").WithSigma()
	if out := Explain(dv, sig, nil); !strings.Contains(out, "Σ scan S") {
		t.Errorf("Σ marker missing:\n%s", out)
	}
	reuse := plan.NewJoin(leaf("R", "S"), leaf("T"))
	out := Explain(dv, reuse, nil)
	if !strings.Contains(out, "reuse [R+S]") {
		t.Errorf("materialized reuse missing:\n%s", out)
	}
	cross := plan.NewJoin(leaf("S"), leaf("T"))
	if out := Explain(dv, cross, nil); !strings.Contains(out, "cross-product") {
		t.Errorf("cross product marker missing:\n%s", out)
	}
}
