package cost

import (
	"math"
	"testing"

	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/stats"
	"monsoon/internal/value"
)

// sec23 builds the running example of §2.3 with its fixed statistics:
// c(R)=10^6, c(S)=c(T)=10^4, d(F1,R)=d(F3,R)=1000, and d(F2,S), d(F4,T)
// supplied by the caller as measured values.
func sec23(t *testing.T, d2, d4 float64) (*query.Query, *stats.Store) {
	t.Helper()
	q := query.NewBuilder("sec23").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.HashMod("R.a", 1000), expr.Identity("S.k")). // F1(R)=F2(S), terms 0,1
		Join(expr.HashMod("R.b", 1000), expr.Identity("T.k")). // F3(R)=F4(T), terms 2,3
		MustBuild()
	st := stats.New()
	st.SetCount(stats.RawKey("R"), 1e6)
	st.SetCount(stats.RawKey("S"), 1e4)
	st.SetCount(stats.RawKey("T"), 1e4)
	st.SetMeasured(0, "R", 1000)
	st.SetMeasured(2, "R", 1000)
	if d2 > 0 {
		st.SetMeasured(1, "S", d2)
	}
	if d4 > 0 {
		st.SetMeasured(3, "T", d4)
	}
	return q, st
}

func leaf(names ...string) *plan.Node { return plan.NewLeaf(query.NewAliasSet(names...)) }

func TestJoinSizeFormula(t *testing.T) {
	if got := JoinSize(1e6, 1e4, 1000, 1); got != 1e7 {
		t.Errorf("JoinSize = %v, want 1e7", got)
	}
	if got := JoinSize(1e6, 1e4, 1000, 10000); got != 1e6 {
		t.Errorf("JoinSize = %v, want 1e6", got)
	}
	if got := JoinSize(10, 10, 0, 0); got != 100 {
		t.Errorf("JoinSize with zero d must clamp divisor to 1, got %v", got)
	}
}

func TestSelSize(t *testing.T) {
	if got := SelSize(100, 4); got != 25 {
		t.Errorf("SelSize = %v", got)
	}
	if got := SelSize(100, 0); got != 100 {
		t.Errorf("SelSize with d=0 must clamp, got %v", got)
	}
}

// TestTable1 reproduces Table 1 of the paper: intermediate tuple counts for
// the first join of each candidate plan under the four statistic scenarios.
func TestTable1(t *testing.T) {
	cases := []struct {
		d2, d4 float64
		wantRS float64 // c(R ⋈ S)
		wantRT float64 // c(R ⋈ T)
	}{
		{1, 1, 1e7, 1e7},
		{1, 10000, 1e7, 1e6},
		{10000, 1, 1e6, 1e7},
		{10000, 10000, 1e6, 1e6},
	}
	for _, c := range cases {
		q, st := sec23(t, c.d2, c.d4)
		dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
		rs := dv.NodeCount(plan.NewJoin(leaf("R"), leaf("S")))
		rt := dv.NodeCount(plan.NewJoin(leaf("R"), leaf("T")))
		if rs != c.wantRS {
			t.Errorf("d2=%v d4=%v: c(R⋈S) = %v, want %v", c.d2, c.d4, rs, c.wantRS)
		}
		if rt != c.wantRT {
			t.Errorf("d2=%v d4=%v: c(R⋈T) = %v, want %v", c.d2, c.d4, rt, c.wantRT)
		}
	}
}

func TestFullPlanCountsAndCost(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	// c(R⋈S) = 1e6; c((R⋈S)⋈T) = 1e6·1e4/max(1000,10000) = 1e6.
	if got := dv.NodeCount(tree); got != 1e6 {
		t.Errorf("final count = %v, want 1e6", got)
	}
	// §4.4 cost: every node's count summed: leaves (1e6+1e4+1e4) + 1e6 + 1e6.
	want := 1e6 + 1e4 + 1e4 + 1e6 + 1e6
	if got := dv.PlanCost(tree); got != want {
		t.Errorf("plan cost = %v, want %v", got, want)
	}
	// Σ adds one more pass over the root.
	if got := dv.PlanCost(tree.WithSigma()); got != want+1e6 {
		t.Errorf("Σ plan cost = %v, want %v", got, want+1e6)
	}
}

func TestBatchCost(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	sigmaS := leaf("S").WithSigma()
	rs := plan.NewJoin(leaf("R"), leaf("S"))
	got := dv.BatchCost([]*plan.Node{sigmaS, rs})
	// Σ(S): c(S) + c(S) = 2e4; (R⋈S): 1e6 + 1e6 + 1e4.
	want := 2e4 + (1e6 + 1e6 + 1e4)
	if got != want {
		t.Errorf("batch cost = %v, want %v", got, want)
	}
}

func TestBatchCostEmptyAndSingleton(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	if got := dv.BatchCost(nil); got != 0 {
		t.Errorf("batch cost of nil slice = %v, want 0", got)
	}
	if got := dv.BatchCost([]*plan.Node{}); got != 0 {
		t.Errorf("batch cost of empty slice = %v, want 0", got)
	}
	rs := plan.NewJoin(leaf("R"), leaf("S"))
	if got, want := dv.BatchCost([]*plan.Node{rs}), dv.PlanCost(rs); got != want {
		t.Errorf("singleton batch cost = %v, want PlanCost %v", got, want)
	}
}

func TestClampBounds(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 1, 10, 5},            // interior value passes through
		{0.5, 1, 10, 1},          // below range
		{50, 1, 10, 10},          // above range
		{1, 1, 10, 1},            // exactly at the lower bound
		{10, 1, 10, 10},          // exactly at the upper bound
		{math.Inf(1), 1, 10, 10}, // +Inf estimates collapse to the ceiling
		{math.Inf(-1), 1, 10, 1}, // -Inf to the floor
		{3, 2, 2, 2},             // degenerate range pins everything
	}
	for _, c := range cases {
		if got := clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("clamp(%v, %v, %v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestDefaultMissFraction(t *testing.T) {
	fn := DefaultMiss(0.1)
	// The fraction applies to the container's cardinality; the partner's is
	// deliberately ignored (the paper's Defaults rule is unconditional).
	if got := fn(nil, "S", "R", 1e4, 123); got != 1e3 {
		t.Errorf("DefaultMiss(0.1) over 1e4 = %v, want 1e3", got)
	}
	if got := fn(nil, "S", "R", 1e4, 1e9); got != 1e3 {
		t.Errorf("partner cardinality must not affect the rule, got %v", got)
	}
	// A zero fraction yields zero; the Deriver's [1, cExpr] clamp is what
	// keeps the derived distinct positive, not the rule itself.
	if got := DefaultMiss(0)(nil, "S", "R", 1e4, 1); got != 0 {
		t.Errorf("DefaultMiss(0) = %v, want raw 0 (caller clamps)", got)
	}
}

func TestPanicMissDirect(t *testing.T) {
	q, _ := sec23(t, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("PanicMiss must panic when invoked directly")
		}
	}()
	PanicMiss()(q.Joins[0].R, "S", "R", 1e4, 1e6)
}

func TestDistinctResolutionPreference(t *testing.T) {
	q, st := sec23(t, 10000, 0)
	dv := &Deriver{Q: q, St: st, Miss: DefaultMiss(0.1)}
	term := q.Joins[1].R // F4 over T, unmeasured
	// First resolution uses the Miss rule and records an assumption.
	d := dv.Distinct(term, "T", "R", 1e4, 1e6)
	if d != 1e3 {
		t.Errorf("missed distinct = %v, want 1e3 (0.1 of 1e4)", d)
	}
	if st.AssumedEntries() != 1 {
		t.Error("miss must be recorded as assumed")
	}
	// Same partner resolves from the recorded assumption (no second miss).
	dv.Miss = PanicMiss()
	if got := dv.Distinct(term, "T", "R", 1e4, 1e6); got != d {
		t.Errorf("assumed not reused: %v vs %v", got, d)
	}
	// Measuring overrides the assumption.
	st.SetMeasured(term.ID, "T", 42)
	if got := dv.Distinct(term, "T", "R", 1e4, 1e6); got != 42 {
		t.Errorf("measured must win, got %v", got)
	}
}

func TestDistinctMinimalAliasFallback(t *testing.T) {
	// A d measured over base S should inform a join where the child is a
	// superset expression containing S.
	q, st := sec23(t, 5000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	term := q.Joins[0].R // F2 over S, measured 5000 over "S"
	d := dv.Distinct(term, "S+T", "R", 1e8, 1e6)
	if d != 5000 {
		t.Errorf("minimal-alias fallback = %v, want 5000", d)
	}
}

func TestDistinctClamping(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	st.SetMeasured(1, "S", 1e9) // absurd measurement, above c
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	if d := dv.Distinct(q.Joins[0].R, "S", "R", 1e4, 1e6); d != 1e4 {
		t.Errorf("distinct must be clamped to cExpr, got %v", d)
	}
	dv.Miss = DefaultMiss(0.1)
	if d := dv.Distinct(q.Joins[1].R, "T", "R", 0.5, 1e6); d != 1 {
		t.Errorf("distinct must be clamped to >= 1, got %v", d)
	}
}

func TestLeafWithSelection(t *testing.T) {
	q := query.NewBuilder("sel").
		Rel("R", "R").Rel("S", "S").
		Join(expr.Identity("R.k"), expr.Identity("S.k")).
		Select(expr.YearOf("R.d"), value.Int(1994)).
		MustBuild()
	st := stats.New()
	st.SetCount(stats.RawKey("R"), 1000)
	st.SetCount(stats.RawKey("S"), 100)
	st.SetMeasured(q.Sels[0].T.ID, "R", 10) // selection term measured
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	if got := dv.NodeCount(leaf("R")); got != 100 {
		t.Errorf("filtered leaf count = %v, want 100", got)
	}
	// Count is recorded, so a repeat lookup is stable.
	if c, ok := st.Count("R"); !ok || c != 100 {
		t.Error("leaf count must be recorded in the store")
	}
}

func TestMultiTableTermUsesUnionContainer(t *testing.T) {
	// WHERE SumMod(R.a, S.b) = id(T.k): the left term only becomes evaluable
	// at the join of {R,S} with nothing smaller; estimating (R×S)⋈T must
	// parameterize the prior on the product size.
	q := query.NewBuilder("multi").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.SumMod("R.a", "S.b", 100), expr.Identity("T.k")).
		MustBuild()
	st := stats.New()
	st.SetCount(stats.RawKey("R"), 100)
	st.SetCount(stats.RawKey("S"), 200)
	st.SetCount(stats.RawKey("T"), 50)
	var sawExpr string
	var sawC float64
	dv := &Deriver{Q: q, St: st, Miss: func(t *query.Term, exprKey, _ string, cExpr, _ float64) float64 {
		if t.Aliases.Size() > 1 {
			sawExpr, sawC = exprKey, cExpr
		}
		return 100
	}}
	// In ((R⋈S)⋈T) the term {R,S} is contained in the left child.
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	c := dv.NodeCount(tree)
	// R×S = 20000 (no predicate applies there); join with T: 20000·50/max(100,50).
	if c != 20000*50/100 {
		t.Errorf("count = %v, want %v", c, 20000.0*50/100)
	}
	if sawExpr != "R+S" || sawC != 20000 {
		t.Errorf("contained term container = %q c=%v, want R+S / 20000", sawExpr, sawC)
	}
	// In (R⋈(S×T)) the term {R,S} crosses the children and only becomes
	// evaluable over the joined expression: the prior is parameterized on the
	// product size.
	st2 := stats.New()
	st2.SetCount(stats.RawKey("R"), 100)
	st2.SetCount(stats.RawKey("S"), 200)
	st2.SetCount(stats.RawKey("T"), 50)
	dv.St = st2
	crossing := plan.NewJoin(leaf("R"), plan.NewJoin(leaf("S"), leaf("T")))
	c2 := dv.NodeCount(crossing)
	if c2 != 100*200*50/100 {
		t.Errorf("crossing count = %v, want %v", c2, 100.0*200*50/100)
	}
	if sawExpr != "R+S+T" || sawC != 100*200*50 {
		t.Errorf("crossing term container = %q c=%v, want R+S+T / 1e6", sawExpr, sawC)
	}
}

func TestLeafPanicsWithoutRawCount(t *testing.T) {
	q, _ := sec23(t, 1, 1)
	dv := &Deriver{Q: q, St: stats.New(), Miss: DefaultMiss(0.1)}
	defer func() {
		if recover() == nil {
			t.Error("missing raw count must panic")
		}
	}()
	dv.NodeCount(leaf("R"))
}

func TestMaterializedLeafPanicsWithoutCount(t *testing.T) {
	q, st := sec23(t, 1, 1)
	dv := &Deriver{Q: q, St: st, Miss: DefaultMiss(0.1)}
	defer func() {
		if recover() == nil {
			t.Error("materialized leaf without count must panic")
		}
	}()
	dv.NodeCount(leaf("R", "S"))
}

func TestPanicMiss(t *testing.T) {
	q, st := sec23(t, 0, 0) // F2, F4 unmeasured
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	defer func() {
		if recover() == nil {
			t.Error("PanicMiss must panic on a missing statistic")
		}
	}()
	dv.NodeCount(plan.NewJoin(leaf("R"), leaf("S")))
}

// Property: join-order independence of the derived final count — any order
// over the same alias set with the same hardened statistics yields the same
// cardinality (the invariant expression identity relies on).
func TestCountOrderIndependence(t *testing.T) {
	q, st := sec23(t, 10000, 1)
	orders := []*plan.Node{
		plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T")),
		plan.NewJoin(plan.NewJoin(leaf("R"), leaf("T")), leaf("S")),
		plan.NewJoin(leaf("T"), plan.NewJoin(leaf("S"), leaf("R"))),
	}
	var counts []float64
	for _, o := range orders {
		dv := &Deriver{Q: q, St: st.Clone(), Miss: PanicMiss()}
		counts = append(counts, dv.NodeCount(o))
	}
	for i := 1; i < len(counts); i++ {
		if math.Abs(counts[i]-counts[0]) > 1e-6*counts[0] {
			t.Errorf("order %d count %v != %v", i, counts[i], counts[0])
		}
	}
}
