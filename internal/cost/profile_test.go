package cost

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"monsoon/internal/obs"
	"monsoon/internal/plan"
)

// calibSpans is a minimal trace: a materialize span wrapping a scan and a Σ
// pass, plus a planning span the calibrator must ignore. The materialize
// window includes its children, so its rate must come from self time.
func calibSpans() []*obs.Span {
	return []*obs.Span{
		{ID: 3, Parent: 1, Trace: 7, Kind: obs.KPlan, Dur: 9 * time.Second},
		{ID: 5, Parent: 1, Trace: 7, Kind: obs.KMaterialize, Dur: 5 * time.Second, RowsOut: 100},
		{ID: 6, Parent: 5, Trace: 7, Kind: obs.KScan, Dur: 2 * time.Second, RowsOut: 1000},
		{ID: 7, Parent: 5, Trace: 7, Kind: obs.KSigma, Dur: 1 * time.Second, RowsIn: 500},
	}
}

func TestCalibratorRates(t *testing.T) {
	cal := NewCalibrator()
	cal.AddSpans(calibSpans())
	p, err := cal.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scan.SecondsPerObject; got != 2.0/1000 {
		t.Errorf("scan rate = %v, want 0.002", got)
	}
	// Σ is charged per re-scanned (RowsIn) object.
	if got := p.Sigma.SecondsPerObject; got != 1.0/500 {
		t.Errorf("sigma rate = %v, want 0.002", got)
	}
	// Materialize self time: 5s window minus 3s of children, over 100 rows.
	if got := p.Materialize.SecondsPerObject; got != 2.0/100 {
		t.Errorf("materialize rate = %v, want 0.02 (self time), got inclusive?", got)
	}
	// Unobserved kinds carry the mean observed rate, keeping costs finite.
	mean := (2.0/1000 + 1.0/500 + 2.0/100) / 3
	for _, r := range []Rate{p.Reuse, p.HashBuild, p.HashProbe, p.NestedLoop} {
		if r.SecondsPerObject != mean {
			t.Errorf("unobserved kind rate = %v, want mean %v", r.SecondsPerObject, mean)
		}
		if r.Spans != 0 || r.Objects != 0 {
			t.Errorf("unobserved kind must carry no evidence, got %+v", r)
		}
	}
	if p.Scan.Spans != 1 || p.Scan.Objects != 1000 {
		t.Errorf("scan evidence = %+v, want 1 span / 1000 objects", p.Scan)
	}
}

func TestCalibratorAddTreeMatchesAddSpans(t *testing.T) {
	spans := calibSpans()
	flat := NewCalibrator()
	flat.AddSpans(spans)
	pf, err := flat.Profile()
	if err != nil {
		t.Fatal(err)
	}

	// The same spans assembled into the TraceRing's tree shape must fold
	// identically (child order differs from emission order; rates must not).
	var treeSpans []*obs.Span
	treeSpans = append(treeSpans, &obs.Span{ID: 1, Trace: 7, Kind: obs.KAction, Dur: 20 * time.Second})
	treeSpans = append(treeSpans, spans...)
	roots := obs.BuildSpanTree(treeSpans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	tree := NewCalibrator()
	tree.AddTree(roots[0])
	pt, err := tree.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if pf.Fingerprint() != pt.Fingerprint() {
		t.Errorf("AddTree profile %s != AddSpans profile %s", pt.Fingerprint(), pf.Fingerprint())
	}
}

func TestCalibratorRejectsEmptyCorpus(t *testing.T) {
	cal := NewCalibrator()
	// Planning and action spans carry no operator objects.
	cal.AddSpan(&obs.Span{ID: 1, Trace: 1, Kind: obs.KPlan, Dur: time.Second})
	cal.AddSpan(&obs.Span{ID: 2, Parent: 1, Trace: 1, Kind: obs.KAction, Dur: time.Second})
	cal.AddSpan(nil) // nil-safe
	if _, err := cal.Profile(); err == nil {
		t.Fatal("a corpus with no operator spans must be rejected")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	cal := NewCalibrator()
	cal.AddSpans(calibSpans())
	p, err := cal.Profile()
	if err != nil {
		t.Fatal(err)
	}
	js, err := p.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, js, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Errorf("round-tripped fingerprint %s != %s", got.Fingerprint(), p.Fingerprint())
	}
	if *got != *p {
		t.Errorf("round-tripped profile %+v != %+v", got, p)
	}
}

func TestLoadProfileErrors(t *testing.T) {
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := LoadProfile(bad); err == nil {
		t.Error("malformed JSON must error")
	}
	neg := filepath.Join(dir, "neg.json")
	os.WriteFile(neg, []byte(`{"scan":{"seconds_per_object":-1}}`), 0o644)
	_, err := LoadProfile(neg)
	if err == nil || !strings.Contains(err.Error(), "negative rate") {
		t.Errorf("negative rate must be rejected, got %v", err)
	}
}

func TestFingerprint(t *testing.T) {
	var nilP *CostProfile
	if got := nilP.Fingerprint(); got != "" {
		t.Errorf("nil profile fingerprint = %q, want empty", got)
	}
	a := &CostProfile{Scan: Rate{SecondsPerObject: 1}}
	b := &CostProfile{Scan: Rate{SecondsPerObject: 1}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal rates must share a fingerprint")
	}
	// Evidence fields do not enter the hash — only the rates the planner uses.
	b.Scan.Spans, b.Scan.Seconds, b.Scan.Objects = 99, 99, 99
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("evidence fields must not perturb the fingerprint")
	}
	b.Scan.SecondsPerObject = 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different rates must not collide")
	}
}

// testProfile has a distinct prime rate per kind so each operator's
// contribution to a profiled cost is attributable in the assertions below.
func testProfile() *CostProfile {
	return &CostProfile{
		Scan:        Rate{SecondsPerObject: 1},
		Reuse:       Rate{SecondsPerObject: 2},
		HashBuild:   Rate{SecondsPerObject: 3},
		HashProbe:   Rate{SecondsPerObject: 5},
		NestedLoop:  Rate{SecondsPerObject: 7},
		Sigma:       Rate{SecondsPerObject: 11},
		Materialize: Rate{SecondsPerObject: 13},
	}
}

func TestProfiledPlanCostHashJoin(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: testProfile()}
	rs := plan.NewJoin(leaf("R"), leaf("S"))
	// F1(R)=F2(S) splits across the children, so the engine hash-joins with S
	// (the right child) as the build side: scans (1e6 + 1e4 at rate 1), probe
	// output 1e6 at rate 5, build input 1e4 at rate 3, root materialization
	// 1e6 at rate 13.
	want := 1*(1e6+1e4) + 5*1e6 + 3*1e4 + 13*1e6
	if got := dv.PlanCost(rs); got != want {
		t.Errorf("profiled hash-join cost = %v, want %v", got, want)
	}
	// Σ adds one extra pass over the root at the sigma rate.
	if got := dv.PlanCost(rs.WithSigma()); got != want+11*1e6 {
		t.Errorf("profiled Σ cost = %v, want %v", got, want+11*1e6)
	}
}

func TestProfiledPlanCostNestedLoop(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: testProfile()}
	// No predicate joins S directly to T: the engine would run a nested-loop
	// cross product (1e8 objects at rate 7), not a hash join.
	stT := plan.NewJoin(leaf("S"), leaf("T"))
	want := 1*(1e4+1e4) + 7*1e8 + 13*1e8
	if got := dv.PlanCost(stT); got != want {
		t.Errorf("profiled nested-loop cost = %v, want %v", got, want)
	}
}

func TestProfiledPlanCostReuseLeaf(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	// A materialized multi-alias leaf (R⋈S hardened at 1e6) is re-read at the
	// reuse rate, not the scan rate.
	st.SetCount("R+S", 1e6)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: testProfile()}
	tree := plan.NewJoin(leaf("R", "S"), leaf("T"))
	// F3(R)=F4(T) splits across the children → hash join; output
	// 1e6·1e4/max(1000, 10000) = 1e6.
	want := 2*1e6 + 1*1e4 + 5*1e6 + 3*1e4 + 13*1e6
	if got := dv.PlanCost(tree); got != want {
		t.Errorf("profiled reuse-leaf cost = %v, want %v", got, want)
	}
}

func TestNilProfileKeepsLegacyCost(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	tree := plan.NewJoin(plan.NewJoin(leaf("R"), leaf("S")), leaf("T"))
	legacy := (&Deriver{Q: q, St: st.Clone(), Miss: PanicMiss()}).PlanCost(tree)
	nilProf := (&Deriver{Q: q, St: st.Clone(), Miss: PanicMiss(), Profile: nil}).PlanCost(tree)
	if legacy != nilProf {
		t.Errorf("nil profile must be the flat object model: %v vs %v", nilProf, legacy)
	}
	// And the flat model is the pinned §4.4 sum, unchanged by this package's
	// calibration machinery existing at all.
	if legacy != 1e6+1e4+1e4+1e6+1e6 {
		t.Errorf("legacy cost drifted: %v", legacy)
	}
}

func TestProfiledBatchCostSums(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: testProfile()}
	rs := plan.NewJoin(leaf("R"), leaf("S"))
	sigmaS := leaf("S").WithSigma()
	want := dv.PlanCost(rs) + dv.PlanCost(sigmaS)
	if got := dv.BatchCost([]*plan.Node{rs, sigmaS}); got != want {
		t.Errorf("profiled batch cost = %v, want %v", got, want)
	}
}

// Guard against the reuse/scan branch keying off the wrong condition: a
// single-alias leaf must never be priced as a reuse even when a count for it
// is already recorded.
func TestProfiledSingleAliasLeafIsScan(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: testProfile()}
	_ = dv.NodeCount(leaf("R")) // records the count
	want := 1*1e6 + 13*1e6      // scan rate + root materialization
	if got := dv.PlanCost(leaf("R")); got != want {
		t.Errorf("single-alias leaf cost = %v, want scan-rated %v", got, want)
	}
}
