// Cost calibration: converting "objects produced" (§4.4's unit) into
// per-operator-kind seconds learned from the telemetry the engine already
// emits. A CostProfile holds one seconds-per-object rate per physical
// operator kind; a Calibrator folds recorded spans — from a JSONL trace
// corpus, an obs.Collector, or the daemon's TraceRing span trees — into
// running per-kind (seconds, objects) sums and renders them as a profile.
//
// The uncalibrated model stays the deterministic default: a Deriver with a
// nil Profile computes exactly the flat §4.4 object counts it always has, so
// every golden (results, trace lines, span baseline) is bit-identical until a
// profile is explicitly loaded.
//
// One honesty note on the input data: streaming operator spans measure
// open-to-close wall time, and a pull-based pipeline keeps its scan and probe
// spans open while downstream operators drain, so those windows overlap.
// Build, Σ, and reuse spans are tightly bounded (the work completes inside
// the span); scan/probe/nested-loop rates are upper bounds biased by pipeline
// co-residency. The bias is shared by every operator of a pipeline, so the
// rates remain comparable across kinds — which is all the planner consumes
// them for (relative operator weights replacing one global constant).
package cost

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"time"

	"monsoon/internal/obs"
	"monsoon/internal/plan"
)

// Rate is one operator kind's calibrated conversion factor plus the evidence
// it was learned from.
type Rate struct {
	// SecondsPerObject converts the cost model's object count for this
	// operator kind into estimated seconds.
	SecondsPerObject float64 `json:"seconds_per_object"`
	// Seconds and Objects are the folded totals the rate is the quotient of.
	Seconds float64 `json:"seconds"`
	Objects float64 `json:"objects"`
	// Spans counts the spans folded into this kind.
	Spans int `json:"spans"`
}

// CostProfile maps every physical operator kind the engine executes to a
// calibrated seconds-per-object rate. Kinds never observed in the corpus
// carry the mean rate over the observed kinds (so costs stay finite and
// comparable); a profile with no observed kinds at all is rejected by the
// calibrator.
type CostProfile struct {
	Scan        Rate `json:"scan"`
	Reuse       Rate `json:"reuse"`
	HashBuild   Rate `json:"hash_build"`
	HashProbe   Rate `json:"hash_probe"`
	NestedLoop  Rate `json:"nested_loop"`
	Sigma       Rate `json:"sigma"`
	Materialize Rate `json:"materialize"`
	// Exchange prices one row moved across shard boundaries by a reshuffled
	// hash build. No span kind measures exchanges directly (routing happens
	// inside the build), so the calibrator falls back to the hash-build rate
	// when unobserved; profile JSONs written before sharding deserialize to a
	// zero rate, making movement free until recalibrated.
	Exchange Rate `json:"exchange"`
}

// profileKinds orders the profile's fields for deterministic rendering; the
// accessor returns pointers into p so callers can fold or read uniformly.
func (p *CostProfile) kinds() []struct {
	Kind string
	R    *Rate
} {
	return []struct {
		Kind string
		R    *Rate
	}{
		{obs.KScan, &p.Scan}, {obs.KReuse, &p.Reuse},
		{obs.KHashBuild, &p.HashBuild}, {obs.KHashProbe, &p.HashProbe},
		{obs.KNestedLoop, &p.NestedLoop}, {obs.KSigma, &p.Sigma},
		{obs.KMaterialize, &p.Materialize}, {"exchange", &p.Exchange},
	}
}

// Fingerprint hashes the profile's rates into a short stable token. The plan
// cache embeds it in the key prefix: two sessions plan-share only when they
// cost plans with the same calibration (a nil profile keeps the historical
// key shape, so calibrated-off cache entries are untouched).
func (p *CostProfile) Fingerprint() string {
	if p == nil {
		return ""
	}
	h := fnv.New64a()
	for _, k := range p.kinds() {
		fmt.Fprintf(h, "%s=%.17g;", k.Kind, k.R.SecondsPerObject)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteJSON renders the profile as indented JSON.
func (p *CostProfile) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// LoadProfile reads a profile JSON file (the output of `monsoon-trace
// calibrate` or CostProfile.WriteJSON).
func LoadProfile(path string) (*CostProfile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cost: read profile: %w", err)
	}
	p := &CostProfile{}
	if err := json.Unmarshal(b, p); err != nil {
		return nil, fmt.Errorf("cost: parse profile %s: %w", path, err)
	}
	for _, k := range p.kinds() {
		if k.R.SecondsPerObject < 0 {
			return nil, fmt.Errorf("cost: profile %s: negative rate for %s", path, k.Kind)
		}
	}
	return p, nil
}

// Calibrator folds operator spans into running per-kind (seconds, objects)
// sums. Fold spans from any source — tracefile corpora, an obs.Collector's
// flat slice, or SpanNode trees — then call Profile. Not safe for concurrent
// use; guard shared calibrators (the daemon does) externally.
type Calibrator struct {
	acc map[string]*Rate
	// childDur accumulates, per (trace id, parent span id), the summed child
	// durations — the KMaterialize span wraps its whole tree, so its own rate
	// uses self time (Dur minus children) instead of the inclusive window.
	childDur map[[2]int64]time.Duration
	// mats holds the materialize spans until Profile, when self time can be
	// settled against the complete childDur map.
	mats []*obs.Span
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{acc: map[string]*Rate{}, childDur: map[[2]int64]time.Duration{}}
}

// objectsOf maps a span to the §4.4 object count its duration is charged
// against, mirroring how each operator reports rows: scans, reuses, probes,
// and nested loops produce RowsOut; hash builds insert RowsOut build rows;
// Σ re-scans RowsIn materialized rows; materialize emits RowsOut result rows.
func objectsOf(sp *obs.Span) (float64, bool) {
	switch sp.Kind {
	case obs.KScan, obs.KReuse, obs.KHashProbe, obs.KNestedLoop, obs.KHashBuild, obs.KMaterialize:
		return float64(sp.RowsOut), true
	case obs.KSigma:
		return float64(sp.RowsIn), true
	}
	return 0, false
}

// AddSpan folds one recorded span. Non-operator kinds (plan, action, worker,
// join umbrellas) are ignored.
func (c *Calibrator) AddSpan(sp *obs.Span) {
	if sp == nil {
		return
	}
	if sp.Parent != 0 {
		c.childDur[[2]int64{sp.Trace, int64(sp.Parent)}] += sp.Dur
	}
	obj, ok := objectsOf(sp)
	if !ok {
		return
	}
	if sp.Kind == obs.KMaterialize {
		c.mats = append(c.mats, sp)
		return
	}
	c.fold(sp.Kind, sp.Dur, obj)
}

// AddSpans folds a flat span slice (a Collector's or a trace file's).
func (c *Calibrator) AddSpans(spans []*obs.Span) {
	for _, sp := range spans {
		c.AddSpan(sp)
	}
}

// AddTree folds every span of a span tree (the daemon's TraceRing shape).
func (c *Calibrator) AddTree(root *obs.SpanNode) {
	if root == nil {
		return
	}
	root.Walk(func(n *obs.SpanNode, _ int) { c.AddSpan(n.Span) })
}

func (c *Calibrator) fold(kind string, d time.Duration, objects float64) {
	r := c.acc[kind]
	if r == nil {
		r = &Rate{}
		c.acc[kind] = r
	}
	r.Seconds += d.Seconds()
	r.Objects += objects
	r.Spans++
}

// Profile renders the folded evidence as a CostProfile. Kinds with no
// observed objects carry the mean observed rate. Returns an error when the
// corpus held no operator spans with objects at all — an empty profile would
// silently cost every plan at zero.
func (c *Calibrator) Profile() (*CostProfile, error) {
	// Settle materialize self time now that every child duration is folded.
	for _, sp := range c.mats {
		self := sp.Dur - c.childDur[[2]int64{sp.Trace, int64(sp.ID)}]
		if self < 0 {
			self = 0
		}
		obj, _ := objectsOf(sp)
		c.fold(obs.KMaterialize, self, obj)
	}
	c.mats = nil

	p := &CostProfile{}
	var sum float64
	var n int
	for _, k := range p.kinds() {
		if r, ok := c.acc[k.Kind]; ok {
			*k.R = *r
			if r.Objects > 0 {
				k.R.SecondsPerObject = r.Seconds / r.Objects
				sum += k.R.SecondsPerObject
				n++
			}
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("cost: calibrate: no operator spans with objects in corpus")
	}
	mean := sum / float64(n)
	for _, k := range p.kinds() {
		if k.R.Objects == 0 {
			k.R.SecondsPerObject = mean
		}
	}
	// Exchanges are never directly observed (no span kind covers them): a
	// reshuffle routes rows inside the hash build, so its per-row cost tracks
	// the build's. Prefer that over the all-kinds mean.
	if p.Exchange.Objects == 0 && p.HashBuild.SecondsPerObject > 0 {
		p.Exchange.SecondsPerObject = p.HashBuild.SecondsPerObject
	}
	return p, nil
}

// Table renders the per-kind rates as aligned text rows (the calibration
// study and `monsoon-trace calibrate -v` share it).
func (p *CostProfile) Table() string {
	rows := p.kinds()
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Kind < rows[j].Kind })
	out := fmt.Sprintf("%-14s %-14s %-12s %-12s %-8s\n", "kind", "sec/object", "seconds", "objects", "spans")
	for _, k := range rows {
		out += fmt.Sprintf("%-14s %-14.3g %-12.4g %-12.4g %-8d\n",
			k.Kind, k.R.SecondsPerObject, k.R.Seconds, k.R.Objects, k.R.Spans)
	}
	return out
}

// profiledPlanCost is PlanCost under a calibration: the same §4.4 object
// recursion, with each node's objects weighted by the rate of the physical
// operator the engine will actually run — scan or reuse at leaves, hash
// build+probe when a predicate binds opposite children (the build side is
// always the right child, mirroring the streaming engine), nested loop
// otherwise, plus the Σ extra pass and the root materialization pass.
func (dv *Deriver) profiledPlanCost(n *plan.Node) float64 {
	p := dv.Profile
	c := dv.profiledNodeCost(n)
	if n.Sigma {
		c += p.Sigma.SecondsPerObject * dv.NodeCount(n)
	}
	return c + p.Materialize.SecondsPerObject*dv.NodeCount(n)
}

func (dv *Deriver) profiledNodeCost(n *plan.Node) float64 {
	p := dv.Profile
	cnt := dv.NodeCount(n)
	if n.IsLeaf() {
		if n.Leaf.Size() != 1 {
			return p.Reuse.SecondsPerObject * cnt
		}
		return p.Scan.SecondsPerObject * cnt
	}
	c := dv.profiledNodeCost(n.Left) + dv.profiledNodeCost(n.Right)
	if dv.hashJoinAt(n) {
		c += p.HashProbe.SecondsPerObject*cnt + p.HashBuild.SecondsPerObject*dv.NodeCount(n.Right)
		if mv := dv.exchangeObjects(n); mv > 0 {
			c += p.Exchange.SecondsPerObject * mv
		}
		return c
	}
	return c + p.NestedLoop.SecondsPerObject*cnt
}

// hashJoinAt reports whether the engine would run this join as a hash join:
// some predicate new at the join binds one term wholly inside the left child
// and the other wholly inside the right (engine.openJoin's exact rule, which
// buildTermAt mirrors).
func (dv *Deriver) hashJoinAt(n *plan.Node) bool {
	return dv.buildTermAt(n) != nil
}
