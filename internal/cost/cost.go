// Package cost implements the paper's statistical model (§4.3) and cost
// recursion (§4.4):
//
//   - join size   c(r1 ⋈ r2) = c(r1)·c(r2) / max(d1, d2)           (eq. 2)
//   - selection   c(σ_{F=k} r) = c(r) / d(F, r)
//   - plan cost   cost(leaf) = c(leaf); cost(j) = c(j) + cost(children);
//     cost(Σ(r)) = c(r) + cost(r)  (statistics collection is one more pass)
//
// The Deriver walks a plan tree over a statistics store, deriving every
// missing count exactly like the recursive generation algorithm of §4.3:
// known statistics are used as-is, missing distinct counts are delegated to a
// Miss function — a prior sampler inside the MDP simulator, a default rule
// inside the Defaults optimizer, an estimator inside Sampling, and so on.
// Derived counts are recorded back into the store so one transition stays
// internally consistent.
package cost

import (
	"fmt"
	"math"
	"strings"

	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/stats"
)

// JoinSize evaluates eq. (2) with the generalization used throughout the
// repository: every additional predicate applied at the same join contributes
// an independent 1/max(d1,d2) factor (callers divide repeatedly).
func JoinSize(c1, c2, d1, d2 float64) float64 {
	return c1 * c2 / math.Max(math.Max(d1, d2), 1)
}

// SelSize is the classical selectivity c/d for an equality selection.
func SelSize(c, d float64) float64 {
	return c / math.Max(d, 1)
}

// MissFn supplies a distinct count d(term, expr | partner) when the store has
// neither a measured nor an assumed value. cExpr and cPartner are the
// cardinalities of the expression the term is evaluated over and of the
// partner expression — the two parameters every prior in §5.2 is conditioned
// on. The returned value is clamped by the caller to [1, max(cExpr, 1)].
type MissFn func(t *query.Term, exprKey, partnerKey string, cExpr, cPartner float64) float64

// Deriver derives counts and costs for plan trees over a statistics store.
// The store is mutated (counts recorded, misses recorded as assumed), so
// callers that must not pollute shared state pass a clone.
type Deriver struct {
	Q    *query.Query
	St   *stats.Store
	Miss MissFn
	// Obs, when set, lets optimizers walking this deriver (e.g. opt.BestPlan)
	// record spans; a nil tracer keeps derivation free of any overhead.
	Obs *obs.Tracer
	// Profile, when set, converts the §4.4 object counts into estimated
	// seconds with calibrated per-operator-kind rates (PlanCost/BatchCost
	// return seconds instead of objects). Nil keeps the historical flat
	// object-count model, bit-identical to every pinned golden.
	Profile *CostProfile
	// Layout, when set to a sharded layout (ShardCount > 1), adds the
	// exchange movement term: a hash build whose child is not co-partitioned
	// with the storage layout reshuffles every build row. The flat model
	// charges the moved objects; a calibrated profile prices them at the
	// Exchange rate. A nil or unsharded layout changes nothing, so every
	// pre-sharding cost stays bit-identical.
	Layout ShardLayout
}

// ShardLayout is the planner's read-only view of the storage layer's hash
// shard layout. *table.Catalog implements it; the interface keeps the cost
// model decoupled from storage and lets tests fake layouts directly.
type ShardLayout interface {
	// ShardCount reports the layout width; 1 (or less) means unsharded.
	ShardCount() int
	// ShardKey reports the qualified column a stored table is partitioned
	// on, or false when the layout does not cover the table.
	ShardKey(table string) (string, bool)
}

// Distinct resolves d(term, expr | partner): measured over the expression
// wins, then measured over the term's minimal alias set (a statistic
// collected on a base expression keeps informing joins of its supersets),
// then an assumed value for this partner, then the Miss function. The result
// is clamped to [1, cExpr] and recorded as assumed when freshly missed.
func (dv *Deriver) Distinct(t *query.Term, exprKey, partnerKey string, cExpr, cPartner float64) float64 {
	hi := math.Max(cExpr, 1)
	if d, ok := dv.St.Measured(t.ID, exprKey); ok {
		return clamp(d, 1, hi)
	}
	if minKey := t.Aliases.Key(); minKey != exprKey {
		if d, ok := dv.St.Measured(t.ID, minKey); ok {
			return clamp(d, 1, hi)
		}
	}
	if d, ok := dv.St.Distinct(t.ID, exprKey, partnerKey); ok {
		return clamp(d, 1, hi)
	}
	d := clamp(dv.Miss(t, exprKey, partnerKey, cExpr, cPartner), 1, hi)
	dv.St.SetAssumed(t.ID, exprKey, partnerKey, d)
	return d
}

// NodeCount estimates (or retrieves) the cardinality of a plan node's result,
// following the §4.3 recursion, and records it in the store.
func (dv *Deriver) NodeCount(n *plan.Node) float64 {
	key := n.Key()
	if c, ok := dv.St.Count(key); ok {
		return c
	}
	if n.IsLeaf() {
		return dv.leafCount(n, key)
	}
	cX := dv.NodeCount(n.Left)
	cY := dv.NodeCount(n.Right)
	xs, ys := n.Left.Aliases(), n.Right.Aliases()
	c := cX * cY
	for _, p := range dv.Q.PredsNewAt(xs, ys) {
		lKey, lC := dv.container(p.L, xs, ys, cX, cY, key, c)
		rKey, rC := dv.container(p.R, xs, ys, cX, cY, key, c)
		dL := dv.Distinct(p.L, lKey, rKey, lC, rC)
		dR := dv.Distinct(p.R, rKey, lKey, rC, lC)
		c /= math.Max(math.Max(dL, dR), 1)
	}
	for _, s := range dv.Q.SelsNewAt(xs, ys) {
		d := dv.Distinct(s.T, key, key, cX*cY, cX*cY)
		c /= math.Max(d, 1)
	}
	dv.St.SetCount(key, c)
	return c
}

// container determines the expression a term is evaluated over at this join:
// the left child, the right child, or — for a multi-table term that only
// becomes evaluable at this join — the joined expression itself (whose
// pre-predicate size is the product of the children).
func (dv *Deriver) container(t *query.Term, xs, ys query.AliasSet, cX, cY float64, unionKey string, cProduct float64) (string, float64) {
	if t.Aliases.SubsetOf(xs) {
		return xs.Key(), cX
	}
	if t.Aliases.SubsetOf(ys) {
		return ys.Key(), cY
	}
	return unionKey, cProduct
}

// leafCount derives the output size of a leaf. A leaf referencing a
// materialized multi-alias expression must already have a count (the engine
// hardens one at materialization); a single-alias leaf is the stored table
// with its pushed selections, estimated via 1/d per selection.
func (dv *Deriver) leafCount(n *plan.Node, key string) float64 {
	if n.Leaf.Size() != 1 {
		panic(fmt.Sprintf("cost: no count for materialized expression %q", key))
	}
	alias := n.Leaf.Names()[0]
	craw, ok := dv.St.Count(stats.RawKey(alias))
	if !ok {
		panic(fmt.Sprintf("cost: no raw count for base table %q", alias))
	}
	c := craw
	for _, s := range dv.Q.SelsAt(n.Leaf) {
		d := dv.Distinct(s.T, key, key, craw, craw)
		c /= math.Max(d, 1)
	}
	dv.St.SetCount(key, c)
	return c
}

// PlanCost implements the §4.4 recursion for one tree: every node contributes
// the number of objects it produces, and a Σ top contributes one extra pass
// over the materialized result. With a Profile attached the same recursion
// runs weighted by calibrated per-operator-kind seconds-per-object rates and
// the result is estimated seconds (see profile.go).
func (dv *Deriver) PlanCost(n *plan.Node) float64 {
	if dv.Profile != nil {
		return dv.profiledPlanCost(n)
	}
	c := dv.nodeCost(n)
	if n.Sigma {
		c += dv.NodeCount(n)
	}
	return c
}

func (dv *Deriver) nodeCost(n *plan.Node) float64 {
	c := dv.NodeCount(n)
	if n.IsLeaf() {
		return c
	}
	c += dv.exchangeObjects(n)
	return c + dv.nodeCost(n.Left) + dv.nodeCost(n.Right)
}

// exchangeObjects estimates the rows a join must move across shard
// boundaries under the current layout: a hash build whose child is not
// co-partitioned with the storage shards reshuffles its entire build input.
// Zero when the layout is unsharded, the join degenerates to a nested loop,
// or the build side is a shard-local scan. One known imprecision: the model
// cannot see the engine's materialized-intermediate store, so a single-alias
// leaf that will actually be served from the reuse path (and therefore
// reshuffled) is still priced shard-local here.
func (dv *Deriver) exchangeObjects(n *plan.Node) float64 {
	if dv.Layout == nil || dv.Layout.ShardCount() <= 1 || n.IsLeaf() {
		return 0
	}
	bt := dv.buildTermAt(n)
	if bt == nil || dv.coPartitioned(n.Right, bt) {
		return 0
	}
	return dv.NodeCount(n.Right)
}

// buildTermAt mirrors the engine's join strategy choice: the first predicate
// that splits the children drives a hash join with the right child as the
// build side; with no such predicate the join is a nested loop. Returns the
// right-side term of that predicate, or nil for a nested loop.
func (dv *Deriver) buildTermAt(n *plan.Node) *query.Term {
	xs, ys := n.Left.Aliases(), n.Right.Aliases()
	for _, p := range dv.Q.PredsNewAt(xs, ys) {
		if p.L.Aliases.SubsetOf(xs) && p.R.Aliases.SubsetOf(ys) {
			return p.R
		}
		if p.R.Aliases.SubsetOf(xs) && p.L.Aliases.SubsetOf(ys) {
			return p.L
		}
	}
	return nil
}

// coPartitioned reports whether a build child's rows already arrive grouped
// by the join key's storage shard: the child is an unmaterialized single
// base table and the build term is the identity of the column the layout
// shards that table on.
func (dv *Deriver) coPartitioned(n *plan.Node, bt *query.Term) bool {
	if !n.IsLeaf() || n.Leaf.Size() != 1 {
		return false
	}
	alias := n.Leaf.Names()[0]
	tbl, ok := dv.Q.TableOf(alias)
	if !ok {
		return false
	}
	key, ok := dv.Layout.ShardKey(tbl)
	if !ok {
		return false
	}
	fn := bt.Fn
	return fn.Name == "id" && len(fn.Args) == 1 && fn.Args[0] == alias+colSuffix(key)
}

// colSuffix turns the layout's base-qualified shard key ("lineitem.l_orderkey")
// into the ".column" suffix an alias-qualified term argument would end with.
func colSuffix(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[i:]
	}
	return "." + key
}

// BatchCost sums PlanCost over a set of trees (one EXECUTE transition, §4.4's
// Σ_{r∈Rp} cost(r)).
func (dv *Deriver) BatchCost(trees []*plan.Node) float64 {
	total := 0.0
	for _, t := range trees {
		total += dv.PlanCost(t)
	}
	return total
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DefaultMiss returns the "Defaults" rule used when no statistic is
// available: the distinct count of an attribute equals fraction of the row
// count (Postgres-style magic constant; the paper's Defaults option and its
// Discrete prior both use 0.1).
func DefaultMiss(fraction float64) MissFn {
	return func(_ *query.Term, _, _ string, cExpr, _ float64) float64 {
		return fraction * cExpr
	}
}

// PanicMiss panics on any missing statistic; the full-statistics baseline
// uses it to assert that its offline pass really covered everything.
func PanicMiss() MissFn {
	return func(t *query.Term, exprKey, partnerKey string, _, _ float64) float64 {
		panic(fmt.Sprintf("cost: missing statistic for term %d (%s) over %q partner %q",
			t.ID, t.Fn.Name, exprKey, partnerKey))
	}
}
