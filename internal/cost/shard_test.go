package cost

import (
	"testing"

	"monsoon/internal/plan"
)

// fakeLayout implements ShardLayout directly so the cost tests don't depend
// on the storage package.
type fakeLayout struct {
	s    int
	keys map[string]string
}

func (l fakeLayout) ShardCount() int { return l.s }
func (l fakeLayout) ShardKey(t string) (string, bool) {
	k, ok := l.keys[t]
	return k, ok
}

// sec23Layout shards the running example's tables: S on the join column the
// query probes it with (co-partitioned) and T on an unrelated column (so any
// build over T must reshuffle).
func sec23Layout(s int) fakeLayout {
	return fakeLayout{s: s, keys: map[string]string{"R": "R.a", "S": "S.k", "T": "T.x"}}
}

// TestFlatCostExchangeTerm: under a sharded layout the flat §4.4 model adds
// the moved build rows for a reshuffled hash join and nothing for a
// co-partitioned one; a nil or unsharded layout keeps the historical cost.
func TestFlatCostExchangeTerm(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	base := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	rs := plan.NewJoin(leaf("R"), leaf("S")) // build term id(S.k): co-partitioned
	rt := plan.NewJoin(leaf("R"), leaf("T")) // build term id(T.k), layout shards T.x
	costRS, costRT := base.PlanCost(rs), base.PlanCost(rt)

	sharded := &Deriver{Q: q, St: st, Miss: PanicMiss(), Layout: sec23Layout(4)}
	if got := sharded.PlanCost(rs); got != costRS {
		t.Errorf("co-partitioned build cost = %v, want unchanged %v", got, costRS)
	}
	// The reshuffled build moves every build-side row: c(T) = 1e4.
	if got := sharded.PlanCost(rt); got != costRT+1e4 {
		t.Errorf("reshuffled build cost = %v, want %v + 1e4 movement", got, costRT)
	}

	// An unsharded layout and a nil layout are both the legacy model.
	flat := &Deriver{Q: q, St: st, Miss: PanicMiss(), Layout: sec23Layout(1)}
	if got := flat.PlanCost(rt); got != costRT {
		t.Errorf("S=1 layout cost = %v, want legacy %v", got, costRT)
	}
}

// TestFlatCostExchangeNonLeafBuild: a build side that is itself a join can
// never be co-partitioned (its rows are not served by the storage layout),
// so it always pays the movement term when sharded.
func TestFlatCostExchangeNonLeafBuild(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	tree := plan.NewJoin(leaf("T"), plan.NewJoin(leaf("R"), leaf("S")))
	base := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	want := base.PlanCost(tree)
	sharded := &Deriver{Q: q, St: st, Miss: PanicMiss(), Layout: sec23Layout(4)}
	// Outer build side is R⋈S (1e6 rows, reshuffled); the inner join's own
	// build over S stays co-partitioned and free.
	inner, ok := st.Count("R+S")
	if !ok {
		t.Fatal("inner join count not recorded")
	}
	if got := sharded.PlanCost(tree); got != want+inner {
		t.Errorf("non-leaf build cost = %v, want %v + %v movement", got, want, inner)
	}
}

// TestFlatCostNoExchangeForNestedLoop: with no splitting predicate there is
// no hash build and nothing to reshuffle.
func TestFlatCostNoExchangeForNestedLoop(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	cross := plan.NewJoin(leaf("S"), leaf("T")) // no predicate binds S to T
	base := &Deriver{Q: q, St: st, Miss: PanicMiss()}
	want := base.PlanCost(cross)
	sharded := &Deriver{Q: q, St: st, Miss: PanicMiss(), Layout: sec23Layout(16)}
	if got := sharded.PlanCost(cross); got != want {
		t.Errorf("nested-loop cost = %v, want unchanged %v", got, want)
	}
}

// TestProfiledCostExchangeTerm: a calibrated profile prices the moved rows at
// the Exchange rate; the co-partitioned shape stays at the unsharded price.
func TestProfiledCostExchangeTerm(t *testing.T) {
	q, st := sec23(t, 10000, 10000)
	p := testProfile()
	p.Exchange = Rate{SecondsPerObject: 17}
	dv := &Deriver{Q: q, St: st, Miss: PanicMiss(), Profile: p, Layout: sec23Layout(4)}

	// Co-partitioned R⋈S: identical to the layoutless profiled cost — scans
	// (1e6+1e4)·1, probe 1e6·5, build 1e4·3, materialize 1e6·13.
	wantRS := 1*(1e6+1e4) + 5*1e6 + 3*1e4 + 13*1e6
	if got := dv.PlanCost(plan.NewJoin(leaf("R"), leaf("S"))); got != wantRS {
		t.Errorf("co-partitioned profiled cost = %v, want %v", got, wantRS)
	}
	// Reshuffled R⋈T adds 1e4 moved rows at rate 17.
	wantRT := wantRS + 17*1e4
	if got := dv.PlanCost(plan.NewJoin(leaf("R"), leaf("T"))); got != wantRT {
		t.Errorf("reshuffled profiled cost = %v, want %v", got, wantRT)
	}
	// Without a layout the same profile never charges the Exchange rate.
	dv.Layout = nil
	if got := dv.PlanCost(plan.NewJoin(leaf("R"), leaf("T"))); got != wantRS {
		t.Errorf("layoutless profiled cost = %v, want %v", got, wantRS)
	}
}

// TestCalibratorExchangeFallback: no span kind observes exchanges, so the
// calibrator must seed the Exchange rate from the hash-build rate instead of
// leaving movement free.
func TestCalibratorExchangeFallback(t *testing.T) {
	cal := NewCalibrator()
	cal.AddSpans(calibSpans())
	p, err := cal.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Exchange.SecondsPerObject <= 0 {
		t.Fatalf("exchange rate = %v, want positive fallback", p.Exchange.SecondsPerObject)
	}
	if p.Exchange.SecondsPerObject != p.HashBuild.SecondsPerObject {
		t.Errorf("exchange rate = %v, want hash-build rate %v",
			p.Exchange.SecondsPerObject, p.HashBuild.SecondsPerObject)
	}
}

// TestColSuffix covers both base-qualified and bare layout keys.
func TestColSuffix(t *testing.T) {
	if got := colSuffix("lineitem.l_orderkey"); got != ".l_orderkey" {
		t.Errorf("colSuffix = %q", got)
	}
	if got := colSuffix("k"); got != ".k" {
		t.Errorf("bare colSuffix = %q", got)
	}
}
