package plan

import (
	"testing"

	"monsoon/internal/query"
)

func l(names ...string) *Node { return NewLeaf(query.NewAliasSet(names...)) }

func TestLeafAndJoin(t *testing.T) {
	r, s := l("R"), l("S")
	j := NewJoin(r, s)
	if !r.IsLeaf() || j.IsLeaf() {
		t.Error("IsLeaf wrong")
	}
	if j.Aliases().Key() != "R+S" || j.Key() != "R+S" {
		t.Errorf("join key = %q", j.Key())
	}
	if r.Key() != "R" {
		t.Errorf("leaf key = %q", r.Key())
	}
}

func TestJoinOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping join must panic")
		}
	}()
	NewJoin(l("R", "S"), l("S"))
}

func TestSigmaCopies(t *testing.T) {
	n := l("S")
	sig := n.WithSigma()
	if !sig.Sigma || n.Sigma {
		t.Error("WithSigma must copy, not mutate")
	}
	back := sig.WithoutSigma()
	if back.Sigma {
		t.Error("WithoutSigma failed")
	}
	if sig.Key() != n.Key() {
		t.Error("Σ must not change result identity")
	}
}

func TestString(t *testing.T) {
	tree := NewJoin(NewJoin(l("R"), l("S")), l("T"))
	if got := tree.String(); got != "((R⋈S)⋈T)" {
		t.Errorf("String = %q", got)
	}
	if got := tree.WithSigma().String(); got != "Σ(((R⋈S)⋈T))" {
		t.Errorf("Σ String = %q", got)
	}
	if got := NewJoin(l("R", "S"), l("T")).String(); got != "([R+S]⋈T)" {
		t.Errorf("materialized leaf String = %q", got)
	}
}

func TestLeaves(t *testing.T) {
	tree := NewJoin(NewJoin(l("R"), l("S")), l("T"))
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	want := []string{"R", "S", "T"}
	for i, lf := range leaves {
		if lf.Key() != want[i] {
			t.Errorf("leaf %d = %q, want %q", i, lf.Key(), want[i])
		}
	}
}

func TestLeftDeep(t *testing.T) {
	tree := LeftDeep([]query.AliasSet{
		query.NewAliasSet("A"), query.NewAliasSet("B"), query.NewAliasSet("C"),
	})
	if tree.String() != "((A⋈B)⋈C)" {
		t.Errorf("LeftDeep = %q", tree.String())
	}
	single := LeftDeep([]query.AliasSet{query.NewAliasSet("A")})
	if !single.IsLeaf() {
		t.Error("single-leaf LeftDeep should be a leaf")
	}
}

func TestLeftDeepEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LeftDeep(nil) must panic")
		}
	}()
	LeftDeep(nil)
}

func TestEqual(t *testing.T) {
	a := NewJoin(l("R"), l("S"))
	b := NewJoin(l("R"), l("S"))
	c := NewJoin(l("S"), l("R"))
	if !a.Equal(b) {
		t.Error("identical trees must be Equal")
	}
	if a.Equal(c) {
		t.Error("Equal is structural; swapped children differ")
	}
	if a.Equal(a.WithSigma()) {
		t.Error("Σ marker must matter for Equal")
	}
	if a.Equal(nil) {
		t.Error("non-nil != nil")
	}
	var n *Node
	if !n.Equal(nil) {
		t.Error("nil == nil")
	}
	if a.Equal(l("R")) {
		t.Error("join != leaf")
	}
}
