// Package plan defines the join trees the optimizers produce and the engine
// executes. A leaf references an already-materialized expression by its alias
// set (base tables are materialized expressions of one alias); an inner node
// joins its children, applying every predicate that becomes newly applicable;
// a root may carry the Σ statistics-collection marker (§4.2).
package plan

import (
	"strings"

	"monsoon/internal/query"
)

// Node is one node of a join tree.
type Node struct {
	// Leaf is the alias set of the materialized expression this leaf
	// references. Inner nodes leave it empty.
	Leaf query.AliasSet
	// Left and Right are the children of an inner node.
	Left, Right *Node
	// Sigma marks a root whose result is materialized and then scanned a
	// second time to collect distinct-value statistics.
	Sigma bool

	aliases query.AliasSet // cached union
}

// NewLeaf returns a leaf referencing the materialized expression covering s.
func NewLeaf(s query.AliasSet) *Node {
	return &Node{Leaf: s, aliases: s}
}

// NewJoin returns an inner node joining two subtrees. The children's alias
// sets must be disjoint; violations panic because they indicate a planner
// bug, not a data condition.
func NewJoin(l, r *Node) *Node {
	if l.Aliases().Intersects(r.Aliases()) {
		panic("plan: joining overlapping alias sets " + l.Aliases().String() + " and " + r.Aliases().String())
	}
	return &Node{Left: l, Right: r, aliases: l.Aliases().Union(r.Aliases())}
}

// WithSigma returns a copy of the root with the Σ marker set.
func (n *Node) WithSigma() *Node {
	cp := *n
	cp.Sigma = true
	return &cp
}

// WithoutSigma returns a copy of the root with the Σ marker cleared.
func (n *Node) WithoutSigma() *Node {
	cp := *n
	cp.Sigma = false
	return &cp
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Aliases returns the alias set covered by the subtree.
func (n *Node) Aliases() query.AliasSet { return n.aliases }

// Key returns the canonical identity of the node's *result*: the alias-set
// key (see the query package for why order does not matter for identity).
func (n *Node) Key() string { return n.aliases.Key() }

// String renders the tree structurally, e.g. "Σ((R⋈S)⋈T)"; leaf references to
// materialized intermediates render as their alias-set key in brackets.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, true)
	return b.String()
}

func (n *Node) render(b *strings.Builder, root bool) {
	if root && n.Sigma {
		b.WriteString("Σ(")
		defer b.WriteString(")")
	}
	if n.IsLeaf() {
		if n.Leaf.Size() == 1 {
			b.WriteString(n.Leaf.Names()[0])
		} else {
			b.WriteString("[" + n.Leaf.Key() + "]")
		}
		return
	}
	b.WriteString("(")
	n.Left.render(b, false)
	b.WriteString("⋈")
	n.Right.render(b, false)
	b.WriteString(")")
}

// Leaves appends the leaves of the subtree, left to right.
func (n *Node) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(x *Node) {
		if x.IsLeaf() {
			out = append(out, x)
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// LeftDeep builds the left-deep tree ((l0 ⋈ l1) ⋈ l2) ⋈ ... from leaves given
// as alias sets, in order. It panics on an empty input.
func LeftDeep(leaves []query.AliasSet) *Node {
	if len(leaves) == 0 {
		panic("plan: LeftDeep over no leaves")
	}
	cur := NewLeaf(leaves[0])
	for _, l := range leaves[1:] {
		cur = NewJoin(cur, NewLeaf(l))
	}
	return cur
}

// Equal reports structural equality, including Σ markers.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Sigma != o.Sigma || n.IsLeaf() != o.IsLeaf() {
		return false
	}
	if n.IsLeaf() {
		return n.Leaf.Equal(o.Leaf)
	}
	return n.Left.Equal(o.Left) && n.Right.Equal(o.Right)
}
