// Package opt implements the classical optimizers Monsoon is compared
// against in §6.2.2: a Selinger-style dynamic-programming join enumerator
// over the paper's intermediate-object cost model (the "Postgres" stand-in),
// the size-only Greedy heuristic, and the statistics-collection strategies
// behind the Defaults, On-Demand, and Sampling options.
package opt

import (
	"fmt"
	"math"
	"math/bits"

	"monsoon/internal/cost"
	"monsoon/internal/obs"
	"monsoon/internal/plan"
	"monsoon/internal/query"
)

// BestPlan runs bushy dynamic programming over connected alias subsets and
// returns the minimum-cost join tree under the §4.4 cost recursion, resolving
// statistics through dv (whose Miss function defines the optimizer's attitude
// toward missing statistics). Cross products are admitted for a subset only
// when no connected split can cover it. Queries up to 24 relations are
// supported; the benchmarks stay well below that.
func BestPlan(q *query.Query, dv *cost.Deriver) (*plan.Node, error) {
	names := q.Aliases().Names()
	n := len(names)
	sp := dv.Obs.Start(obs.KOptimize, "dp").SetNum("relations", float64(n))
	defer sp.End()
	if n == 0 {
		return nil, fmt.Errorf("opt: query %s has no relations", q.Name)
	}
	if n > 24 {
		return nil, fmt.Errorf("opt: %d relations exceed the DP limit", n)
	}
	full := uint32(1)<<n - 1
	sets := make([]query.AliasSet, full+1)
	trees := make([]*plan.Node, full+1)
	costs := make([]float64, full+1)
	for i := range costs {
		costs[i] = math.Inf(1)
	}
	aliasSetOf := func(mask uint32) query.AliasSet {
		if !sets[mask].IsEmpty() {
			return sets[mask]
		}
		var members []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, names[i])
			}
		}
		sets[mask] = query.NewAliasSet(members...)
		return sets[mask]
	}
	// Leaves.
	for i := 0; i < n; i++ {
		mask := uint32(1) << i
		leaf := plan.NewLeaf(aliasSetOf(mask))
		trees[mask] = leaf
		costs[mask] = dv.NodeCount(leaf)
	}
	// Proper submasks of mask are numerically smaller, so ascending order
	// visits children first. The first pass admits only connected splits;
	// the second (reached only if the subset has no connected cover, e.g.
	// a required cross product) admits everything.
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		for _, connectedOnly := range []bool{true, false} {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				if sub > other {
					continue // each unordered split once
				}
				if trees[sub] == nil || trees[other] == nil {
					continue
				}
				a, b := aliasSetOf(sub), aliasSetOf(other)
				if connectedOnly && !q.Connected(a, b) {
					continue
				}
				cand := plan.NewJoin(trees[sub], trees[other])
				c := dv.NodeCount(cand) + costs[sub] + costs[other]
				if c < costs[mask] {
					costs[mask] = c
					trees[mask] = cand
				}
			}
			if trees[mask] != nil {
				break
			}
		}
	}
	if trees[full] == nil {
		sp.SetStr("err", "no plan")
		return nil, fmt.Errorf("opt: no plan found for %s", q.Name)
	}
	sp.SetNum("cost", costs[full]).SetStr("plan", trees[full].String())
	return trees[full], nil
}

// PlanCostOf re-derives the §4.4 cost of an arbitrary tree under dv; the
// harness uses it to report estimated costs next to measured ones.
func PlanCostOf(dv *cost.Deriver, tree *plan.Node) float64 {
	return dv.PlanCost(tree)
}
