package opt

import (
	"fmt"
	"sort"

	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/stats"
)

// GreedyPlan builds the paper's Greedy baseline (§6.2.2 option 3): a
// left-deep plan built from set sizes only — no distinct-value statistics.
// Starting with the smallest set, it repeatedly joins the next smallest table
// that does not introduce a cross product, taking one only when necessary.
func GreedyPlan(q *query.Query, st *stats.Store) (*plan.Node, error) {
	type rel struct {
		alias string
		size  float64
	}
	var rels []rel
	for _, r := range q.Rels {
		c, ok := st.Count(stats.RawKey(r.Alias))
		if !ok {
			return nil, fmt.Errorf("opt: no raw count for %q", r.Alias)
		}
		rels = append(rels, rel{alias: r.Alias, size: c})
	}
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].size != rels[j].size {
			return rels[i].size < rels[j].size
		}
		return rels[i].alias < rels[j].alias
	})
	cover := query.NewAliasSet(rels[0].alias)
	tree := plan.NewLeaf(cover)
	remaining := rels[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, r := range remaining { // remaining stays size-sorted
			if q.Connected(cover, query.NewAliasSet(r.alias)) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0 // cross product necessary; take the smallest
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		tree = plan.NewJoin(tree, plan.NewLeaf(query.NewAliasSet(next.alias)))
		cover = cover.Union(query.NewAliasSet(next.alias))
	}
	return tree, nil
}
