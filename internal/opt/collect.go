package opt

import (
	"math/rand"

	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/obs"
	"monsoon/internal/query"
	"monsoon/internal/sketch"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

// CollectFullStats computes exact statistics offline: raw table counts plus
// exact distinct counts for every single-alias term, evaluated over the
// stored tables. This backs the paper's "Postgres" baseline, whose statistics
// collection is "done offline, and not counted" — so nothing here touches a
// budget. Multi-table terms cannot be computed without materializing joins
// and are left missing (the baseline is dropped on the UDF benchmark for
// exactly this reason).
func CollectFullStats(q *query.Query, cat *table.Catalog) *stats.Store {
	st := stats.New()
	for _, r := range q.Rels {
		base := cat.MustGet(r.Table).Renamed(r.Alias)
		st.SetCount(stats.RawKey(r.Alias), float64(base.Count()))
		for _, t := range q.Terms() {
			if t.Aliases.Size() != 1 || !t.Aliases.Contains(r.Alias) {
				continue
			}
			b, ok := t.Fn.Bind(base.Schema)
			if !ok {
				continue
			}
			ex := sketch.NewExact()
			for _, row := range base.Rows {
				v := b.Eval(row)
				if v.IsNull() {
					continue
				}
				ex.Add(v.Hash())
			}
			st.SetMeasured(t.ID, t.Aliases.Key(), ex.Estimate())
		}
	}
	return st
}

// CollectOnDemand implements the "On Demand" option (§6.2.2 option 1): after
// the query arrives but before optimization, run one pass over every base
// table that participates in a predicate, estimating distinct counts for all
// its single-alias terms with HyperLogLog sketches. The scan is charged to
// the budget — this is precisely the overhead the option pays.
func CollectOnDemand(q *query.Query, eng *engine.Engine, budget *engine.Budget) (*stats.Store, error) {
	st := stats.New()
	eng.SeedBaseStats(q, st)
	csp := eng.Obs.Start(obs.KCollect, "on-demand")
	scanned, measured := 0, 0
	defer func() {
		csp.SetRows(scanned, 0).SetNum("terms", float64(measured)).End()
	}()
	for _, r := range q.Rels {
		base := eng.Cat.MustGet(r.Table).Renamed(r.Alias)
		type tracked struct {
			id int
			b  *expr.Binding
			h  *sketch.HLL
		}
		var ts []tracked
		for _, t := range q.Terms() {
			if t.Aliases.Size() != 1 || !t.Aliases.Contains(r.Alias) {
				continue
			}
			b, ok := t.Fn.Bind(base.Schema)
			if !ok {
				continue
			}
			ts = append(ts, tracked{id: t.ID, b: b, h: sketch.NewHLL(14)})
		}
		if len(ts) == 0 {
			continue
		}
		for _, row := range base.Rows {
			if err := budget.Charge(1); err != nil {
				csp.SetStr("err", err.Error())
				return st, err
			}
			scanned++
			for _, t := range ts {
				v := t.b.Eval(row)
				if v.IsNull() {
					continue
				}
				t.h.Add(v.Hash())
			}
		}
		for _, t := range ts {
			st.SetMeasured(t.id, query.NewAliasSet(r.Alias).Key(), t.h.Estimate())
			measured++
		}
	}
	return st, nil
}

// SamplingConfig parameterizes CollectSampling. Zero values take the paper's
// settings: 2% block samples capped at 200,000 tuples per table, and at most
// one million materialized tuples from the product of subsamples per
// multi-table term.
type SamplingConfig struct {
	Fraction  float64
	SampleCap int
	BlockSize int
	CrossCap  int
}

func (c SamplingConfig) withDefaults() SamplingConfig {
	if c.Fraction == 0 {
		c.Fraction = 0.02
	}
	if c.SampleCap == 0 {
		c.SampleCap = 200000
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.CrossCap == 0 {
		c.CrossCap = 1000000
	}
	return c
}

// CollectSampling implements the "Sampling" option (§6.2.2 option 2), after
// DYNO's pilot runs: block-sample each base table, estimate single-alias
// distinct counts with the Charikar et al. GEE estimator, and for multi-table
// UDFs materialize a capped product of the subsamples and estimate from that.
// Sampled and materialized tuples are charged to the budget.
func CollectSampling(q *query.Query, eng *engine.Engine, budget *engine.Budget,
	cfg SamplingConfig, rng *rand.Rand) (*stats.Store, error) {
	cfg = cfg.withDefaults()
	st := stats.New()
	eng.SeedBaseStats(q, st)
	csp := eng.Obs.Start(obs.KCollect, "sampling")
	sampled, crossed := 0, 0
	defer func() {
		csp.SetRows(sampled+crossed, 0).SetNum("sampled", float64(sampled)).
			SetNum("crossed", float64(crossed)).End()
	}()

	samples := make(map[string]*table.Relation) // alias → sampled rows
	for _, r := range q.Rels {
		base := eng.Cat.MustGet(r.Table).Renamed(r.Alias)
		target := int(cfg.Fraction * float64(base.Count()))
		if target < 1 {
			target = 1
		}
		if target > cfg.SampleCap {
			target = cfg.SampleCap
		}
		idx := sketch.BlockSample(base.Count(), cfg.BlockSize, target, rng)
		rows := make([]table.Row, len(idx))
		for i, j := range idx {
			rows[i] = base.Rows[j]
		}
		if err := budget.Charge(len(rows)); err != nil {
			csp.SetStr("err", err.Error())
			return st, err
		}
		sampled += len(rows)
		samples[r.Alias] = table.NewRelation(r.Alias, base.Schema, rows)
	}

	for _, t := range q.Terms() {
		names := t.Aliases.Names()
		if len(names) == 0 {
			continue
		}
		if len(names) == 1 {
			s := samples[names[0]]
			b, ok := t.Fn.Bind(s.Schema)
			if !ok {
				continue
			}
			freqs := map[uint64]int{}
			for _, row := range s.Rows {
				v := b.Eval(row)
				if v.IsNull() {
					continue
				}
				freqs[v.Hash()]++
			}
			pop, _ := st.Count(stats.RawKey(names[0]))
			st.SetMeasured(t.ID, t.Aliases.Key(), sketch.GEE(freqs, s.Count(), int64(pop)))
			continue
		}
		// Multi-table term: iterate the product of subsamples up to the cap.
		schemas := samples[names[0]].Schema
		for _, n := range names[1:] {
			schemas = schemas.Concat(samples[n].Schema)
		}
		b, ok := t.Fn.Bind(schemas)
		if !ok {
			continue
		}
		freqs := map[uint64]int{}
		emitted := 0
		row := make(table.Row, len(schemas.Cols))
		var iterate func(level, offset int) error
		iterate = func(level, offset int) error {
			if emitted >= cfg.CrossCap {
				return nil
			}
			if level == len(names) {
				emitted++
				crossed++
				if err := budget.Charge(1); err != nil {
					return err
				}
				v := b.Eval(row)
				if !v.IsNull() {
					freqs[v.Hash()]++
				}
				return nil
			}
			s := samples[names[level]]
			width := len(s.Schema.Cols)
			for _, r := range s.Rows {
				copy(row[offset:], r)
				if err := iterate(level+1, offset+width); err != nil {
					return err
				}
				if emitted >= cfg.CrossCap {
					return nil
				}
			}
			return nil
		}
		if err := iterate(0, 0); err != nil {
			csp.SetStr("err", err.Error())
			return st, err
		}
		pop := 1.0
		for _, n := range names {
			c, _ := st.Count(stats.RawKey(n))
			pop *= c
		}
		st.SetMeasured(t.ID, t.Aliases.Key(), sketch.GEE(freqs, emitted, int64(pop)))
	}
	return st, nil
}
