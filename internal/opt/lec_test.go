package opt

import (
	"testing"

	"monsoon/internal/engine"
	"monsoon/internal/prior"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
)

func TestLECProducesValidPlan(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	tree, err := LECPlan(q, st, prior.Default(), 16, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Aliases().Key() != "R+S+T" {
		t.Errorf("LEC plan incomplete: %v", tree)
	}
	// The plan must execute correctly.
	rel, _, err := eng.ExecTree(q, tree, &engine.Budget{MaxTuples: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	_ = rel
}

func TestLECDeterministicGivenSeed(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	a, err := LECPlan(q, st, prior.Default(), 16, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LECPlan(q, st, prior.Default(), 16, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("LEC nondeterministic: %s vs %s", a, b)
	}
}

func TestLECDefaultWorlds(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	if _, err := LECPlan(q, st, prior.Uniform{}, 0, randx.New(1)); err != nil {
		t.Fatal(err)
	}
}

// TestLECExploitsMeasuredStats: with the truth already in the store, LEC's
// worlds all agree and it must pick the known-optimal order (R⋈T first).
func TestLECExploitsMeasuredStats(t *testing.T) {
	cat, q := fixture()
	st := CollectFullStats(q, cat)
	tree, err := LECPlan(q, st, prior.Default(), 8, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if s != "((R⋈T)⋈S)" && s != "((T⋈R)⋈S)" && s != "(S⋈(R⋈T))" && s != "(S⋈(T⋈R))" {
		t.Errorf("LEC with full stats picked %q, want the R⋈T-first order", s)
	}
}
