package opt

import (
	"math"
	"strings"
	"testing"

	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/query"
	"monsoon/internal/randx"
	"monsoon/internal/stats"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

// fixture is the same trap world as the core tests: R⋈S is a disguised cross
// product (both join terms constant), R⋈T is empty.
func fixture() (*table.Catalog, *query.Query) {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "R", Name: "a", Kind: value.KindInt},
		table.Column{Table: "R", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("R", rs)
	for i := 0; i < 2000; i++ {
		rb.Add(value.Int(7), value.Int(int64(i%40)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "S", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("S", ss)
	for i := 0; i < 100; i++ {
		sb.Add(value.Int(7))
	}
	cat.Put(sb.Build())
	ts := table.NewSchema(table.Column{Table: "T", Name: "k", Kind: value.KindInt})
	tb := table.NewBuilder("T", ts)
	for i := 0; i < 100; i++ {
		tb.Add(value.Int(int64(1000 + i)))
	}
	cat.Put(tb.Build())
	q := query.NewBuilder("rst").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Join(expr.Identity("R.b"), expr.Identity("T.k")).
		MustBuild()
	return cat, q
}

func TestBestPlanWithExactStats(t *testing.T) {
	cat, q := fixture()
	st := CollectFullStats(q, cat)
	dv := &cost.Deriver{Q: q, St: st, Miss: cost.PanicMiss()}
	tree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	// With exact stats the optimizer must join R with T first (empty) and
	// never start with the exploding R⋈S.
	s := tree.String()
	if !strings.Contains(s, "(R⋈T)") && !strings.Contains(s, "(T⋈R)") {
		t.Errorf("plan %q should start with the selective R–T join", s)
	}
	if tree.Aliases().Key() != "R+S+T" {
		t.Errorf("plan must cover all aliases, got %v", tree.Aliases())
	}
}

func TestBestPlanDefaultsDiffer(t *testing.T) {
	// Defaults (d = 0.1c) sees R⋈S as 2000·100/200 = 1000 and R⋈T as
	// 2000·100/200 = 1000 — a toss-up decided by tie-breaking; it must still
	// produce a valid full plan.
	cat, q := fixture()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
	tree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Aliases().Key() != "R+S+T" {
		t.Errorf("plan incomplete: %s", tree)
	}
}

func TestBestPlanAvoidsCrossProducts(t *testing.T) {
	cat, q := fixture()
	st := CollectFullStats(q, cat)
	dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
	tree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	// No subtree may join S and T directly (a cross product).
	var walk func(n interface{ String() string })
	_ = walk
	if strings.Contains(tree.String(), "(S⋈T)") || strings.Contains(tree.String(), "(T⋈S)") {
		t.Errorf("plan %q contains a needless cross product", tree)
	}
}

func TestBestPlanHandlesDisconnectedQueries(t *testing.T) {
	// Two relations, no predicate: the only plan is a cross product and the
	// second DP pass must admit it.
	cat, _ := fixture()
	q := query.NewBuilder("cross").Rel("S", "S").Rel("T", "T").MustBuild()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
	tree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Aliases().Key() != "S+T" {
		t.Errorf("cross-product plan missing: %v", tree)
	}
}

func TestBestPlanMultiTableUDF(t *testing.T) {
	// F(s,t1) = id(t2): the product s×t1 must be admitted (it makes the term
	// evaluable) even though no predicate links s and t1.
	cat, _ := fixture()
	q := query.NewBuilder("multi").
		Rel("s", "S").Rel("t1", "T").Rel("t2", "T").
		Join(expr.SumMod("s.k", "t1.k", 50), expr.Identity("t2.k")).
		MustBuild()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	dv := &cost.Deriver{Q: q, St: st, Miss: cost.DefaultMiss(0.1)}
	tree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Aliases().Key() != "s+t1+t2" {
		t.Errorf("plan incomplete: %v", tree)
	}
	if !strings.Contains(tree.String(), "s⋈t1") && !strings.Contains(tree.String(), "t1⋈s") {
		t.Errorf("plan %q must build s×t1 before joining t2", tree)
	}
}

func TestGreedyPlan(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	tree, err := GreedyPlan(q, st)
	if err != nil {
		t.Fatal(err)
	}
	// Smallest set first (S or T, both 100, tie → alias order: S), then the
	// next smallest avoiding a cross product: only R connects to S.
	if got := tree.String(); got != "((S⋈R)⋈T)" {
		t.Errorf("greedy plan = %q, want ((S⋈R)⋈T)", got)
	}
}

func TestGreedyCrossProductOnlyWhenNecessary(t *testing.T) {
	cat, _ := fixture()
	q := query.NewBuilder("cross").Rel("S", "S").Rel("T", "T").MustBuild()
	eng := engine.New(cat)
	st := stats.New()
	eng.SeedBaseStats(q, st)
	tree, err := GreedyPlan(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Aliases().Key() != "S+T" {
		t.Errorf("greedy must cross when necessary: %v", tree)
	}
}

func TestGreedyMissingStats(t *testing.T) {
	_, q := fixture()
	if _, err := GreedyPlan(q, stats.New()); err == nil {
		t.Error("greedy without raw counts must error")
	}
}

func TestCollectFullStatsExact(t *testing.T) {
	cat, q := fixture()
	st := CollectFullStats(q, cat)
	if c, _ := st.Count(stats.RawKey("R")); c != 2000 {
		t.Errorf("raw R = %v", c)
	}
	// Terms: 0 = id(R.a) d=1, 1 = id(S.k) d=1, 2 = id(R.b) d=40, 3 = id(T.k) d=100.
	for term, want := range map[int]float64{0: 1, 1: 1, 2: 40, 3: 100} {
		expr := q.Term(term).Aliases.Key()
		if d, ok := st.Measured(term, expr); !ok || d != want {
			t.Errorf("term %d d = %v,%v want %v", term, d, ok, want)
		}
	}
}

func TestCollectOnDemand(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	b := &engine.Budget{}
	st, err := CollectOnDemand(q, eng, b)
	if err != nil {
		t.Fatal(err)
	}
	for term, want := range map[int]float64{0: 1, 1: 1, 2: 40, 3: 100} {
		exprKey := q.Term(term).Aliases.Key()
		d, ok := st.Measured(term, exprKey)
		if !ok {
			t.Fatalf("term %d not measured", term)
		}
		if math.Abs(d-want)/want > 0.1 {
			t.Errorf("term %d HLL d = %v, want ~%v", term, d, want)
		}
	}
	// The scans were charged: R + S + T rows.
	if b.Produced() != 2200 {
		t.Errorf("charged %v, want 2200", b.Produced())
	}
}

func TestCollectOnDemandBudgetAbort(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	b := &engine.Budget{MaxTuples: 10}
	if _, err := CollectOnDemand(q, eng, b); err == nil {
		t.Error("tiny budget must abort the stats pass")
	}
}

func TestCollectSamplingSingleTable(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	st, err := CollectSampling(q, eng, &engine.Budget{},
		SamplingConfig{Fraction: 0.2}, randx.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Constant columns must estimate d = 1 exactly (every sample row equal).
	if d, ok := st.Measured(0, "R"); !ok || d != 1 {
		t.Errorf("sampled d(R.a) = %v,%v want 1", d, ok)
	}
	// High-cardinality T.k: GEE should land within a loose factor.
	d, ok := st.Measured(3, "T")
	if !ok || d < 20 || d > 100 {
		t.Errorf("sampled d(T.k) = %v,%v want within [20,100]", d, ok)
	}
}

func TestCollectSamplingMultiTable(t *testing.T) {
	cat, _ := fixture()
	q := query.NewBuilder("multi").
		Rel("s", "S").Rel("t1", "T").Rel("t2", "T").
		Join(expr.SumMod("s.k", "t1.k", 13), expr.Identity("t2.k")).
		MustBuild()
	eng := engine.New(cat)
	b := &engine.Budget{}
	st, err := CollectSampling(q, eng, b,
		SamplingConfig{Fraction: 0.5, CrossCap: 500}, randx.New(23))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := st.Measured(0, "s+t1")
	if !ok {
		t.Fatal("multi-table term not estimated")
	}
	// True distinct count of (7 + (1000..1099)) mod 13 is 13.
	if d < 1 || d > 200 {
		t.Errorf("multi-table GEE estimate %v implausible", d)
	}
	// The cross materialization respected its cap (500); base samples are
	// block-granular, at most one whole table (100 rows) each.
	if b.Produced() > 500+300 {
		t.Errorf("charged %v, cap violated", b.Produced())
	}
}

func TestCollectSamplingBudgetAbort(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	b := &engine.Budget{MaxTuples: 3}
	if _, err := CollectSampling(q, eng, b, SamplingConfig{}, randx.New(1)); err == nil {
		t.Error("tiny budget must abort sampling")
	}
}

func TestEndToEndPlansExecuteCorrectly(t *testing.T) {
	// All planners' trees must produce the same result on the real engine.
	cat, q := fixture()
	st := CollectFullStats(q, cat)
	dv := &cost.Deriver{Q: q, St: st.Clone(), Miss: cost.DefaultMiss(0.1)}
	dpTree, err := BestPlan(q, dv)
	if err != nil {
		t.Fatal(err)
	}
	gTree, err := GreedyPlan(q, st)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	eng1 := engine.New(cat)
	rel1, _, err := eng1.ExecTree(q, dpTree, &engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(cat)
	rel2, _, err := eng2.ExecTree(q, gTree, &engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	counts["dp"], counts["greedy"] = rel1.Count(), rel2.Count()
	if counts["dp"] != counts["greedy"] {
		t.Errorf("plans disagree: %v", counts)
	}
}
