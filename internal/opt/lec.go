package opt

import (
	"fmt"
	"math"
	"math/rand"

	"monsoon/internal/cost"
	"monsoon/internal/plan"
	"monsoon/internal/prior"
	"monsoon/internal/query"
	"monsoon/internal/stats"
)

// LECPlan implements least-expected-cost optimization (Chu et al., the
// "classical notion" §2.3 contrasts Monsoon against): model the unknown
// distinct counts with the same prior Monsoon uses, but commit — once, up
// front, with no statistics collection and no re-planning — to the single
// plan whose *expected* cost under the prior is minimal.
//
// The expectation is estimated by Monte Carlo: `worlds` complete statistic
// assignments are sampled from the prior; each world's DP-optimal plan
// enters the candidate set; every candidate is then costed in every world
// and the lowest-mean candidate wins. §2.3 explains why this can be
// arbitrarily worse than multi-step execution: when two plans have equal
// expected cost but opposite worst cases, LEC cannot hedge by measuring.
func LECPlan(q *query.Query, base *stats.Store, p prior.Prior, worlds int, rng *rand.Rand) (*plan.Node, error) {
	if worlds <= 0 {
		worlds = 32
	}
	type world struct{ st *stats.Store }
	ws := make([]world, worlds)
	candidates := map[string]*plan.Node{}
	for i := range ws {
		// Sampling through the Deriver records every draw in the world's
		// store, so later candidate costing in the same world stays
		// consistent with the DP that ran there.
		st := base.Clone()
		dv := &cost.Deriver{Q: q, St: st, Miss: priorMiss(p, rng)}
		tree, err := BestPlan(q, dv)
		if err != nil {
			return nil, fmt.Errorf("opt: LEC world %d: %w", i, err)
		}
		ws[i] = world{st: st}
		candidates[tree.String()] = tree
	}
	var best *plan.Node
	bestMean := math.Inf(1)
	for _, cand := range candidates {
		total := 0.0
		for _, w := range ws {
			dv := &cost.Deriver{Q: q, St: w.st, Miss: priorMiss(p, rng)}
			total += dv.PlanCost(cand)
		}
		if mean := total / float64(worlds); mean < bestMean {
			bestMean = mean
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: LEC produced no candidates for %s", q.Name)
	}
	return best, nil
}

func priorMiss(p prior.Prior, rng *rand.Rand) cost.MissFn {
	return func(_ *query.Term, _, _ string, cExpr, cPartner float64) float64 {
		return p.Sample(rng, cExpr, cPartner)
	}
}
