// Package obs is the repository's zero-dependency observability layer: a
// span-based tracer over the Monsoon MDP loop (one span per query run, nested
// spans for every MDP action — MCTS planning call, Σ statistics pass, EXECUTE
// step — and every engine operator), a lightweight metrics registry, and
// estimate-vs-actual cardinality records (per-join q-error), the single most
// diagnostic signal for optimizer quality.
//
// Everything is designed around one rule: when no sink is installed the layer
// must cost (almost) nothing. NewTracer(nil) returns a nil *Tracer, and every
// method on a nil Tracer or nil Span is a no-op, so instrumented code calls
// unconditionally:
//
//	sp := tr.Start(obs.KScan, "R").SetRows(in, out)
//	defer sp.End()
//
// Events flow to an EventSink. The package ships four: Collector (retains
// everything in memory), NewJSONL (streams JSON lines), MessageSink (adapts
// the legacy func(string) trace callback), and Multi (fan-out).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds emitted by the instrumented layers. Driver-level kinds first,
// then engine operators, then optimizer-level kinds.
const (
	// KQuery covers one whole core.Run (root span).
	KQuery = "query"
	// KPlan is one MCTS planning call (rollout count, tree depth attached).
	KPlan = "plan"
	// KAction is one real-world MDP action (name = action key).
	KAction = "action"
	// KMaterialize covers the execution of one planned tree.
	KMaterialize = "materialize"
	// KScan is a base-table scan with pushed-down selections.
	KScan = "scan"
	// KReuse is a pass over an already-materialized expression.
	KReuse = "reuse"
	// KHashBuild is the build phase of a hash join.
	KHashBuild = "hash-build"
	// KHashProbe is the probe phase of a hash join.
	KHashProbe = "hash-probe"
	// KNestedLoop is a nested-loop (residual/cross-product) join.
	KNestedLoop = "nested-loop"
	// KSigma is the Σ statistics-collection pass.
	KSigma = "sigma"
	// KAggregate is the final aggregate over the materialized result.
	KAggregate = "aggregate"
	// KOptimize is one classical planning call (DP or greedy enumeration).
	KOptimize = "optimize"
	// KCollect is one offline/online statistics-collection pass (On-Demand
	// scans, Sampling passes).
	KCollect = "collect"
	// KJoin is the umbrella span of one join node of an executed tree: it
	// covers the execution of both children and the join phases
	// (hash-build/hash-probe or nested-loop), so the span tree reproduces the
	// plan tree — materialize → join → {child operators, phases}.
	KJoin = "join"
	// KPlanShard is one shard of a root-parallel MCTS search, parented to the
	// KPlan span that fanned it out. Shard count is derived from the rollout
	// budget alone, so shard-span counts are machine-independent.
	KPlanShard = "plan-shard"
	// KWorker is one worker of a parallel operator fan-out, parented to the
	// operator span. Worker counts depend on GOMAXPROCS, so — unlike every
	// other kind — KWorker span counts are machine-dependent; trace-diff
	// tooling excludes them from count comparisons by default.
	KWorker = "worker"
	// KShard is one storage shard of an exchange-style operator (shard-local
	// scan, partial Σ), parented to the operator span. Shard counts depend on
	// the catalog's -shards layout, not the query, so like KWorker they are
	// excluded from trace-diff count comparisons by default.
	KShard = "shard"
)

// AttrCacheHit is the string attribute set on KPlan spans when a plan cache
// is configured: "true" on spans whose decision was served by replaying a
// memoized round, "false" on spans that ran MCTS. Absent when no cache is
// attached to the run.
const AttrCacheHit = "cache_hit"

// AttrPlanWorkers is the numeric attribute set on KPlan spans when the
// root-parallel MCTS search fanned out: the number of OS threads the shards
// ran on. Absent on serial searches (mirroring the engine operators'
// "workers" attribute), and irrelevant to the chosen plan — every worker
// count picks byte-identical plans.
const AttrPlanWorkers = "plan_workers"

// Span is one timed region. IDs are deterministic: they are assigned in
// Start/StartChild call order, and because spans are only ever opened by the
// coordinating goroutine (worker and shard spans are pre-created before
// fan-out and ended by the coordinator in index order), a repeated run
// assigns the same IDs to the same spans. Parent is 0 for the root; Trace
// identifies the Tracer (one query run) the span belongs to, so sinks shared
// across runs can group spans back into per-query trees. Rows and Produced
// carry the operator's data flow: rows consumed, rows emitted, and objects
// charged against the engine.Budget (the §4.4 cost). Num and Str hold
// kind-specific attributes (MCTS rollouts, plan strings, estimate/actual
// cardinalities, ...). Attribute setters and End are mutex-guarded, so engine
// workers may annotate a span concurrently; after End the span is owned by
// the sink and must not be mutated.
type Span struct {
	ID       int                `json:"id"`
	Parent   int                `json:"parent,omitempty"`
	Trace    int64              `json:"trace,omitempty"`
	Kind     string             `json:"kind"`
	Name     string             `json:"name"`
	Start    time.Time          `json:"start"`
	Dur      time.Duration      `json:"dur_ns"`
	RowsIn   int                `json:"rows_in,omitempty"`
	RowsOut  int                `json:"rows_out,omitempty"`
	Produced float64            `json:"produced,omitempty"`
	Num      map[string]float64 `json:"num,omitempty"`
	Str      map[string]string  `json:"str,omitempty"`

	mu sync.Mutex
	tr *Tracer
}

// SetRows records rows consumed and emitted. Nil-safe; returns the span for
// chaining.
func (sp *Span) SetRows(in, out int) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	sp.RowsIn, sp.RowsOut = in, out
	sp.mu.Unlock()
	return sp
}

// SetProduced records objects charged against the budget. Nil-safe.
func (sp *Span) SetProduced(n float64) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	sp.Produced = n
	sp.mu.Unlock()
	return sp
}

// SetNum attaches a numeric attribute. Nil-safe.
func (sp *Span) SetNum(key string, v float64) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	if sp.Num == nil {
		sp.Num = make(map[string]float64, 4)
	}
	sp.Num[key] = v
	sp.mu.Unlock()
	return sp
}

// AddNum accumulates into a numeric attribute, creating it at v. Nil-safe.
// Streaming operators use this for attributes that grow batch by batch
// (e.g. the total number of worker spans fanned out under one operator).
func (sp *Span) AddNum(key string, v float64) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	if sp.Num == nil {
		sp.Num = make(map[string]float64, 4)
	}
	sp.Num[key] += v
	sp.mu.Unlock()
	return sp
}

// SetStr attaches a string attribute. Nil-safe.
func (sp *Span) SetStr(key, v string) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	if sp.Str == nil {
		sp.Str = make(map[string]string, 2)
	}
	sp.Str[key] = v
	sp.mu.Unlock()
	return sp
}

// End stamps the duration and emits the span to the sink. Nil-safe and
// idempotent. Spans opened under this one and never ended (error paths) are
// silently discarded to keep the parent chain consistent.
func (sp *Span) End() { sp.endWith(-1) }

// EndIn ends the span with an explicitly measured duration instead of the
// wall time since Start. Pre-created worker spans use it: the coordinator
// opens them before fan-out (keeping IDs deterministic), each worker records
// its own busy time, and the coordinator ends them in index order (keeping
// emission order deterministic) with the measured duration. Nil-safe and
// idempotent.
func (sp *Span) EndIn(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sp.endWith(d)
}

// endWith implements End/EndIn; d < 0 means "stamp time.Since(Start)".
func (sp *Span) endWith(d time.Duration) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	t := sp.tr
	sp.tr = nil
	if t == nil {
		sp.mu.Unlock()
		return
	}
	if d < 0 {
		d = time.Since(sp.Start)
	}
	sp.Dur = d
	sp.mu.Unlock()
	t.mu.Lock()
	// Pop this span (and any abandoned children above it) off the stack.
	// Spans opened with an explicit parent never joined the stack, so the
	// loop simply finds nothing for them.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == sp.ID {
			t.stack = t.stack[:i]
			break
		}
	}
	t.mu.Unlock()
	t.emit(Event{Type: EvSpan, Span: sp})
}

// QErrorMissThreshold is the single cutoff past which a q-error stops being a
// graded estimate and becomes a miss — an empty-vs-nonempty disagreement or an
// error so large only its existence is informative. Every consumer shares it:
// the harness Miss column, the monsoon.qerror.misses counter, `monsoon-trace
// report`'s rollup, and the mid-query replan trigger, so trace-derived and
// harness-derived tallies agree record for record.
const QErrorMissThreshold = 1e12

// QErrorIsMiss reports whether a q-error counts as a miss: non-finite (one
// side of the estimate was zero) or at least QErrorMissThreshold.
func QErrorIsMiss(q float64) bool {
	return math.IsInf(q, 0) || math.IsNaN(q) || q >= QErrorMissThreshold
}

// Estimate is one estimate-vs-actual cardinality record: at every EXECUTE the
// driver logs, for each node of each materialized tree, the cardinality the
// optimizer believed (under the prior's expectation) next to the one the
// engine observed, plus the q-error max(e/a, a/e).
type Estimate struct {
	// Expr is the expression (alias-set) key of the plan node.
	Expr string `json:"expr"`
	// Join marks join nodes (leaves/scans are the base cases).
	Join bool `json:"join"`
	// Round is the 1-based EXECUTE round that materialized the node.
	Round int `json:"round"`
	// Est is the optimizer's predicted cardinality, Actual the observed one.
	Est    float64 `json:"est"`
	Actual float64 `json:"actual"`
	// QError is max(Est/Actual, Actual/Est); 1 is a perfect estimate. +Inf
	// when exactly one side is zero.
	QError float64 `json:"q"`
	// Miss marks records whose q-error crossed QErrorMissThreshold (or was
	// non-finite): empty-vs-nonempty disagreements and errors too large to
	// grade. JSONL sinks zero the non-finite QError and rely on this field —
	// JSON has no +Inf — so trace files round-trip miss records exactly.
	Miss bool `json:"miss,omitempty"`
	// Dur is the inclusive wall time the engine spent computing the node,
	// when known — which makes the record a complete EXPLAIN ANALYZE row.
	Dur time.Duration `json:"dur_ns,omitempty"`
}

// QError computes the symmetric estimation error max(e/a, a/e). Both zero is
// a perfect estimate (1); exactly one zero is unboundedly wrong (+Inf).
func QError(est, actual float64) float64 {
	if est == actual {
		return 1
	}
	if est <= 0 || actual <= 0 {
		return math.Inf(1)
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// EventType discriminates Event payloads.
type EventType uint8

// The event types.
const (
	// EvSpan carries a completed Span.
	EvSpan EventType = iota
	// EvMessage carries a human-readable trace line (the strings the legacy
	// core.Config.Trace callback received, byte-identical).
	EvMessage
	// EvEstimate carries one Estimate record.
	EvEstimate
)

// Event is one observability record delivered to an EventSink.
type Event struct {
	Type EventType
	Span *Span     // set when Type == EvSpan
	Msg  string    // set when Type == EvMessage
	Est  *Estimate // set when Type == EvEstimate
}

// EventSink receives observability events from a run. Implementations must be
// cheap: the driver and engine call Emit on their hot paths. Sinks installed
// on a single run are called sequentially; sinks shared across concurrent
// runs must lock internally (NewJSONL does).
type EventSink interface {
	Emit(Event)
}

// Tracer hands out spans with automatic parent linkage (a stack — the
// instrumented call tree is strictly nested: spans are opened and closed by
// the coordinating goroutine, while engine workers only annotate them). A nil
// Tracer is the off switch: every method no-ops. All state, including sink
// emission, is mutex-guarded, so a single-run sink like Collector needs no
// locking of its own even when the engine executes operators in parallel.
type Tracer struct {
	mu    sync.Mutex
	sink  EventSink
	id    int64
	next  int
	stack []int
}

// traceIDs numbers Tracers process-wide so sinks shared across runs (JSONL
// files, the TraceRing) can group spans back into per-query trees. Sequential
// runs get sequential IDs; concurrently created tracers get unique but
// scheduler-ordered ones.
var traceIDs atomic.Int64

// emit delivers one event to the sink under the tracer's lock, serializing
// concurrent emitters.
func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	t.sink.Emit(ev)
	t.mu.Unlock()
}

// NewTracer wraps a sink; a nil sink yields a nil (disabled) tracer.
func NewTracer(sink EventSink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, id: traceIDs.Add(1)}
}

// Active reports whether events are being collected.
func (t *Tracer) Active() bool { return t != nil }

// TraceID reports the tracer's process-unique run identifier (0 when
// disabled), the value stamped into every span's Trace field.
func (t *Tracer) TraceID() int64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Start opens a span under the currently open span (the ambient stack — the
// coordinating goroutine's strictly nested call tree). Nil-safe.
func (t *Tracer) Start(kind, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	sp := &Span{ID: t.next, Trace: t.id, Kind: kind, Name: name, Start: time.Now(), tr: t}
	if len(t.stack) > 0 {
		sp.Parent = t.stack[len(t.stack)-1]
	}
	t.stack = append(t.stack, sp.ID)
	t.mu.Unlock()
	return sp
}

// StartChild opens a span under an explicit parent, bypassing the ambient
// stack — the instrumented layers use it to reproduce a structural tree (the
// plan tree's join nodes, an operator's worker fan-out, a search's shards)
// rather than the coordinator's call nesting. The child does not join the
// stack, so spans opened ambiently while it is live are unaffected. A nil
// parent falls back to Start's ambient behavior. Nil-safe.
func (t *Tracer) StartChild(parent *Span, kind, name string) *Span {
	if t == nil {
		return nil
	}
	if parent == nil {
		return t.Start(kind, name)
	}
	t.mu.Lock()
	t.next++
	sp := &Span{ID: t.next, Parent: parent.ID, Trace: t.id, Kind: kind, Name: name, Start: time.Now(), tr: t}
	t.mu.Unlock()
	return sp
}

// Message emits a legacy trace line. Nil-safe.
func (t *Tracer) Message(line string) {
	if t == nil {
		return
	}
	t.emit(Event{Type: EvMessage, Msg: line})
}

// Estimate emits one estimate-vs-actual record. Nil-safe.
func (t *Tracer) Estimate(e Estimate) {
	if t == nil {
		return
	}
	t.emit(Event{Type: EvEstimate, Est: &e})
}

// Collector is an EventSink that retains everything, for tests, the CLIs'
// EXPLAIN ANALYZE rendering, and post-run analysis.
type Collector struct {
	Spans     []*Span
	Messages  []string
	Estimates []Estimate
}

// Emit implements EventSink.
func (c *Collector) Emit(ev Event) {
	switch ev.Type {
	case EvSpan:
		c.Spans = append(c.Spans, ev.Span)
	case EvMessage:
		c.Messages = append(c.Messages, ev.Msg)
	case EvEstimate:
		c.Estimates = append(c.Estimates, *ev.Est)
	}
}

// SpansOf returns the collected spans of one kind, in completion order.
func (c *Collector) SpansOf(kind string) []*Span {
	var out []*Span
	for _, sp := range c.Spans {
		if sp.Kind == kind {
			out = append(out, sp)
		}
	}
	return out
}

// messageSink adapts the legacy func(string) trace callback: it forwards
// EvMessage payloads verbatim and drops structured events.
type messageSink func(string)

// Emit implements EventSink.
func (f messageSink) Emit(ev Event) {
	if ev.Type == EvMessage {
		f(ev.Msg)
	}
}

// MessageSink wraps a line callback as an EventSink — the compatibility shim
// behind core.Config.Trace. Returns nil for a nil callback.
func MessageSink(fn func(string)) EventSink {
	if fn == nil {
		return nil
	}
	return messageSink(fn)
}

// multiSink fans events out in order.
type multiSink []EventSink

// Emit implements EventSink.
func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Multi combines sinks, skipping nils. Zero live sinks yield nil (disabled);
// a single live sink is returned unwrapped.
func Multi(sinks ...EventSink) EventSink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
