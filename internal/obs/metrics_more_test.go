package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
	h = &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.0) // the [1, 2) bucket, reported as its upper bound 2
	}
	h.Observe(100.0) // one outlier in [64, 128)
	if p50 := h.Quantile(0.50); p50 != 2.0 {
		t.Errorf("p50 = %g, want bucket bound 2", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 2.0 {
		t.Errorf("p99 = %g, want 2 (outlier is the 101st of 101)", p99)
	}
	if p100 := h.Quantile(1.0); p100 != 128.0 {
		t.Errorf("p100 = %g, want outlier bucket bound 128", p100)
	}
	if over := h.Quantile(7); over != h.Quantile(1) {
		t.Errorf("Quantile(7) = %g, want clamp to Quantile(1) = %g", over, h.Quantile(1))
	}
	// Quantiles are monotone in p.
	prev := 0.0
	for p := 0.1; p <= 1.0; p += 0.1 {
		q := h.Quantile(p)
		if q < prev {
			t.Errorf("Quantile(%g) = %g < Quantile(%g) = %g", p, q, p-0.1, prev)
		}
		prev = q
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h *Histogram
	if got := h.Buckets(); got != nil {
		t.Errorf("nil histogram Buckets = %v", got)
	}
	h = &Histogram{}
	h.Observe(0.75) // (0.5, 1]
	h.Observe(0.75)
	h.Observe(3.0) // (2, 4]
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("got %d non-empty buckets, want 2: %v", len(bs), bs)
	}
	if bs[0].UpperBound != 1.0 || bs[0].Count != 2 {
		t.Errorf("bucket[0] = %+v, want le=1 count=2", bs[0])
	}
	if bs[1].UpperBound != 4.0 || bs[1].Count != 1 {
		t.Errorf("bucket[1] = %+v, want le=4 count=1", bs[1])
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	var reg *Registry
	if got := reg.Snapshot(); got != nil {
		t.Errorf("nil registry Snapshot = %v", got)
	}
	reg = NewRegistry()
	// Register in scrambled order; Snapshot must come back grouped by kind
	// (counters, gauges, histograms) and name-sorted within each group.
	reg.Gauge("z.gauge").Set(1)
	reg.Counter("b.counter").Inc()
	reg.Histogram("m.hist").Observe(1)
	reg.Counter("a.counter").Inc()
	reg.Gauge("a.gauge").Set(2)
	reg.Histogram("a.hist").Observe(2)

	var got []string
	for _, e := range reg.Snapshot() {
		got = append(got, e.Kind+":"+e.Name)
	}
	want := []string{
		"counter:a.counter", "counter:b.counter",
		"gauge:a.gauge", "gauge:z.gauge",
		"histogram:a.hist", "histogram:m.hist",
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// A histogram entry carries both stats and buckets.
	for _, e := range reg.Snapshot() {
		if e.Kind == "histogram" {
			if e.Hist.Count != 1 || len(e.Buckets) != 1 {
				t.Errorf("%s: hist=%+v buckets=%v", e.Name, e.Hist, e.Buckets)
			}
		}
	}
}

func TestDumpMatchesSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h").Observe(1)
	var sb strings.Builder
	reg.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"counter", "gauge", "hist"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "counter") > strings.Index(out, "gauge") {
		t.Errorf("dump not in snapshot order:\n%s", out)
	}
}

// TestConcurrentRegistryAndTracer hammers one registry and one shared sink
// from many goroutines; run with -race it proves the metrics and span paths
// are safe for the live telemetry server to read mid-campaign.
func TestConcurrentRegistryAndTracer(t *testing.T) {
	reg := NewRegistry()
	ring := NewTraceRing(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("c.shared").Inc()
				reg.Counter(fmt.Sprintf("c.%d", g)).Inc()
				reg.Gauge("g.shared").Set(float64(i))
				reg.Histogram("h.shared").Observe(float64(i % 7))
				tr := NewTracer(ring)
				root := tr.Start(KQuery, "q")
				tr.Start(KScan, "t").End()
				root.End()
			}
		}(g)
	}
	// Concurrent readers: the HTTP handlers call exactly these.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, e := range reg.Snapshot() {
					if e.Kind == "histogram" && e.Hist.Count > 0 &&
						(math.IsNaN(e.Hist.Mean) || e.Hist.P50 < 0) {
						t.Errorf("torn histogram stats: %+v", e.Hist)
						return
					}
				}
				reg.Histogram("h.shared").Quantile(0.99)
				ring.Recent()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c.shared").Value(); got != 8*200 {
		t.Errorf("c.shared = %d, want %d", got, 8*200)
	}
	if got := reg.Histogram("h.shared").Stats().Count; got != 8*200 {
		t.Errorf("h.shared count = %d, want %d", got, 8*200)
	}
}
