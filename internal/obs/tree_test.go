package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBuildSpanTreeAndSelfTime(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col)
	root := tr.Start(KQuery, "q")
	join := tr.Start(KJoin, "a⋈b").SetStr("expr", "a⋈b")
	build := tr.Start(KHashBuild, "a⋈b")
	time.Sleep(time.Millisecond)
	build.End()
	probe := tr.Start(KHashProbe, "a⋈b")
	probe.End()
	join.End()
	root.End()

	roots := BuildSpanTree(col.Spans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	q := roots[0]
	if q.Kind != KQuery || len(q.Children) != 1 {
		t.Fatalf("root = %s with %d children", q.Kind, len(q.Children))
	}
	j := q.Children[0]
	if j.Kind != KJoin || len(j.Children) != 2 {
		t.Fatalf("join node = %s with %d children", j.Kind, len(j.Children))
	}
	// Children in span-ID (creation) order: build before probe.
	if j.Children[0].Kind != KHashBuild || j.Children[1].Kind != KHashProbe {
		t.Errorf("child order: %s, %s", j.Children[0].Kind, j.Children[1].Kind)
	}
	// Self = own duration minus children, never negative.
	if self := j.Self(); self < 0 || self > j.Dur {
		t.Errorf("join self %v outside [0, %v]", self, j.Dur)
	}
	if self := q.Self(); self != q.Dur-j.Dur {
		t.Errorf("query self %v, want %v", self, q.Dur-j.Dur)
	}

	var walked []string
	q.Walk(func(n *SpanNode, depth int) {
		walked = append(walked, fmt.Sprintf("%d:%s", depth, n.Kind))
	})
	want := []string{"0:query", "1:join", "2:hash-build", "2:hash-probe"}
	if len(walked) != len(want) {
		t.Fatalf("walk = %v", walked)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Errorf("walk[%d] = %s, want %s", i, walked[i], want[i])
		}
	}
}

func TestSelfTimeClampsOverlappingWorkers(t *testing.T) {
	// Worker busy times overlap in wall time, so their sum can exceed the
	// operator's duration; Self must clamp at zero rather than go negative.
	op := &SpanNode{Span: &Span{ID: 1, Dur: 10 * time.Millisecond}}
	for i := 0; i < 4; i++ {
		op.Children = append(op.Children,
			&SpanNode{Span: &Span{ID: 2 + i, Kind: KWorker, Dur: 9 * time.Millisecond}})
	}
	if self := op.Self(); self != 0 {
		t.Errorf("self = %v, want 0 (clamped)", self)
	}
}

func TestOperatorTimesKeysByExpr(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col)
	root := tr.Start(KQuery, "q")
	scan := tr.Start(KScan, "t1").SetStr("expr", "t1")
	scan.End()
	join := tr.Start(KJoin, "t1⋈t2").SetStr("expr", "t1⋈t2")
	phase := tr.Start(KHashBuild, "t1⋈t2") // no expr: phases must not leak in
	phase.End()
	join.End()
	root.End()

	incl, self := OperatorTimes(BuildSpanTree(col.Spans))
	if len(incl) != 2 {
		t.Fatalf("incl keys = %v, want t1 and t1⋈t2", incl)
	}
	if incl["t1⋈t2"] <= 0 || self["t1⋈t2"] > incl["t1⋈t2"] {
		t.Errorf("join incl=%v self=%v", incl["t1⋈t2"], self["t1⋈t2"])
	}
	if _, ok := incl[""]; ok {
		t.Error("expr-less span keyed into OperatorTimes")
	}
}

// TestOperatorTimesNestedUmbrellas pins the attribution the cost calibrator
// and trace reports consume on a realistic executed-tree shape: join umbrellas
// nested inside join umbrellas, phase spans without expr attributes, and
// worker fan-outs whose busy times overlap the operator's wall clock.
func TestOperatorTimesNestedUmbrellas(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	expr := func(e string) map[string]string { return map[string]string{"expr": e} }
	spans := []*Span{
		{ID: 1, Trace: 1, Kind: KQuery, Dur: ms(100)},
		{ID: 2, Parent: 1, Trace: 1, Kind: KJoin, Str: expr("R+S+T"), Dur: ms(80)},
		{ID: 3, Parent: 2, Trace: 1, Kind: KJoin, Str: expr("R+S"), Dur: ms(50)},
		{ID: 4, Parent: 3, Trace: 1, Kind: KScan, Str: expr("R"), Dur: ms(5)},
		{ID: 5, Parent: 3, Trace: 1, Kind: KHashBuild, Dur: ms(10)}, // phase: no expr
		{ID: 6, Parent: 3, Trace: 1, Kind: KHashProbe, Dur: ms(30)}, // phase: no expr
		{ID: 7, Parent: 6, Trace: 1, Kind: KWorker, Dur: ms(25)},
		{ID: 8, Parent: 6, Trace: 1, Kind: KWorker, Dur: ms(25)},
		{ID: 9, Parent: 2, Trace: 1, Kind: KScan, Str: expr("T"), Dur: ms(20)},
		{ID: 10, Parent: 9, Trace: 1, Kind: KWorker, Dur: ms(15)},
		{ID: 11, Parent: 9, Trace: 1, Kind: KWorker, Dur: ms(15)},
	}
	incl, self := OperatorTimes(BuildSpanTree(spans))

	if len(incl) != 4 || len(self) != 4 {
		t.Fatalf("keys = %v, want exactly R, T, R+S, R+S+T", incl)
	}
	// Inclusive time is the span's whole window; self nets out direct children
	// (operator phases included, even though phases carry no expr key).
	if incl["R+S+T"] != ms(80) || self["R+S+T"] != ms(10) {
		t.Errorf("outer umbrella incl=%v self=%v, want 80ms/10ms", incl["R+S+T"], self["R+S+T"])
	}
	if incl["R+S"] != ms(50) || self["R+S"] != ms(5) {
		t.Errorf("inner umbrella incl=%v self=%v, want 50ms/5ms", incl["R+S"], self["R+S"])
	}
	if incl["R"] != ms(5) || self["R"] != ms(5) {
		t.Errorf("leaf scan incl=%v self=%v, want 5ms/5ms", incl["R"], self["R"])
	}
	// Worker busy times overlap in wall time: 2×15ms under a 20ms scan must
	// clamp self to zero, never go negative.
	if incl["T"] != ms(20) || self["T"] != 0 {
		t.Errorf("worker-fanned scan incl=%v self=%v, want 20ms/0", incl["T"], self["T"])
	}
}

// A re-executed expression (reuse pass, multi-round tree) must be attributed
// to its later span — matching how estimate/actual maps are accumulated — and
// materialize spans, though they carry expr attributes, must not key in.
func TestOperatorTimesLaterSpanWinsAndMaterializeExcluded(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	expr := func(e string) map[string]string { return map[string]string{"expr": e} }
	spans := []*Span{
		{ID: 1, Trace: 1, Kind: KQuery, Dur: ms(100)},
		{ID: 2, Parent: 1, Trace: 1, Kind: KMaterialize, Str: expr("T"), Dur: ms(90)},
		{ID: 3, Parent: 2, Trace: 1, Kind: KScan, Str: expr("T"), Dur: ms(10)},
		{ID: 4, Parent: 2, Trace: 1, Kind: KReuse, Str: expr("T"), Dur: ms(4)},
	}
	incl, _ := OperatorTimes(BuildSpanTree(spans))
	if len(incl) != 1 {
		t.Fatalf("keys = %v, want just T", incl)
	}
	if incl["T"] != ms(4) {
		t.Errorf("incl[T] = %v, want 4ms (the later reuse span, not the scan or the materialize window)", incl["T"])
	}
}

func TestTraceRingRetainsNewestFirst(t *testing.T) {
	ring := NewTraceRing(2)
	for i := 0; i < 3; i++ {
		tr := NewTracer(ring)
		root := tr.Start(KQuery, fmt.Sprintf("q%d", i))
		child := tr.Start(KScan, "t")
		child.End()
		root.End()
	}
	recent := ring.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d traces, want 2 (capacity)", len(recent))
	}
	if recent[0].Query != "q2" || recent[1].Query != "q1" {
		t.Errorf("order = %s, %s; want q2 then q1 (newest first, q0 evicted)",
			recent[0].Query, recent[1].Query)
	}
	if recent[0].Spans != 2 || recent[0].Root == nil || recent[0].Root.Kind != KQuery {
		t.Errorf("trace shape = %+v", recent[0])
	}
}

func TestTraceRingBoundsPendingRuns(t *testing.T) {
	ring := NewTraceRing(1) // pending bound = 4
	for i := 0; i < 16; i++ {
		tr := NewTracer(ring)
		sp := tr.Start(KQuery, "never-finishes")
		child := tr.Start(KScan, "t")
		child.End() // emits a span with Parent != 0, creating a pending run
		_ = sp      // root never ends
	}
	ring.mu.Lock()
	pending := len(ring.pending)
	ring.mu.Unlock()
	if pending > 4 {
		t.Errorf("%d pending runs retained, want <= 4·cap", pending)
	}
	if got := ring.Recent(); len(got) != 0 {
		t.Errorf("incomplete runs surfaced: %d", len(got))
	}
}

func TestTraceRingConcurrentSessions(t *testing.T) {
	ring := NewTraceRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := NewTracer(ring)
				root := tr.Start(KQuery, fmt.Sprintf("g%d-q%d", g, i))
				child := tr.Start(KScan, "t")
				child.End()
				root.End()
				ring.Recent()
			}
		}(g)
	}
	wg.Wait()
	recent := ring.Recent()
	if len(recent) != 8 {
		t.Fatalf("ring holds %d traces, want 8", len(recent))
	}
	for _, rt := range recent {
		if rt.Spans != 2 {
			t.Errorf("%s: %d spans, want 2 (cross-session span mixing?)", rt.Query, rt.Spans)
		}
	}
}
