package obshttp

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"monsoon/internal/obs"
)

// fixtureRegistry builds a registry whose snapshot exercises all three
// instrument kinds with names that need Prometheus sanitization.
func fixtureRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("monsoon.rounds").Add(3)
	reg.Counter("monsoon.cache.hits").Add(7)
	reg.Gauge("monsoon.workers").Set(4)
	h := reg.Histogram("monsoon.plan.seconds")
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(1.5)
	return reg
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, rec.Code)
	}
	return rec
}

func TestDebugVarsShape(t *testing.T) {
	h := Handler(fixtureRegistry(), nil)
	rec := get(t, h, "/debug/vars")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if got := doc["monsoon.rounds"]; got != float64(3) {
		t.Errorf("monsoon.rounds = %v, want 3", got)
	}
	if got := doc["monsoon.workers"]; got != float64(4) {
		t.Errorf("monsoon.workers = %v, want 4", got)
	}
	hist, ok := doc["monsoon.plan.seconds"].(map[string]any)
	if !ok {
		t.Fatalf("monsoon.plan.seconds not an object: %v", doc["monsoon.plan.seconds"])
	}
	if hist["count"] != float64(3) {
		t.Errorf("histogram count = %v, want 3", hist["count"])
	}
	for _, k := range []string{"sum", "min", "max", "mean", "p50", "p95", "p99"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram missing %q", k)
		}
	}

	// Key order is the deterministic Snapshot order: counters first (sorted),
	// then gauges, then histograms.
	body := rec.Body.String()
	order := []string{"monsoon.cache.hits", "monsoon.rounds", "monsoon.workers", "monsoon.plan.seconds"}
	last := -1
	for _, name := range order {
		i := strings.Index(body, `"`+name+`"`)
		if i < 0 {
			t.Fatalf("%s missing from /debug/vars", name)
		}
		if i < last {
			t.Errorf("%s out of snapshot order", name)
		}
		last = i
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	h := Handler(fixtureRegistry(), nil)
	rec := get(t, h, "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	// The exposition is deterministic, so the scalar series can be checked as
	// a golden prefix; histogram buckets depend only on the observations.
	wantLines := []string{
		"# TYPE monsoon_cache_hits counter",
		"monsoon_cache_hits 7",
		"# TYPE monsoon_rounds counter",
		"monsoon_rounds 3",
		"# TYPE monsoon_workers gauge",
		"monsoon_workers 4",
		"# TYPE monsoon_plan_seconds histogram",
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) < len(wantLines) {
		t.Fatalf("exposition too short:\n%s", body)
	}
	for i, want := range wantLines {
		if lines[i] != want {
			t.Errorf("line %d = %q, want %q", i, lines[i], want)
		}
	}
	// Buckets are cumulative and closed by +Inf, _sum, _count. 0.25 falls in
	// the [0.25, 0.5) log₂ bucket (reported as le=0.5); 1.5 in [1, 2).
	for _, want := range []string{
		`monsoon_plan_seconds_bucket{le="0.5"} 2`,
		`monsoon_plan_seconds_bucket{le="2"} 3`,
		`monsoon_plan_seconds_bucket{le="+Inf"} 3`,
		"monsoon_plan_seconds_sum 2",
		"monsoon_plan_seconds_count 3",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestTracesRecent(t *testing.T) {
	ring := obs.NewTraceRing(4)
	tr := obs.NewTracer(ring)
	root := tr.Start(obs.KQuery, "q1")
	child := tr.Start(obs.KScan, "lineitem")
	child.End()
	root.End()

	rec := get(t, Handler(nil, ring), "/traces/recent")
	var traces []struct {
		Trace int64  `json:"trace"`
		Query string `json:"query"`
		Spans int    `json:"spans"`
		Root  *struct {
			Span     *obs.Span         `json:"span"`
			Children []json.RawMessage `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Query != "q1" || got.Spans != 2 {
		t.Errorf("trace = %+v, want query q1 with 2 spans", got)
	}
	if got.Root == nil || got.Root.Span.Kind != obs.KQuery || len(got.Root.Children) != 1 {
		t.Errorf("root tree malformed: %+v", got.Root)
	}
}

func TestNilArgumentsServeWellFormedDocuments(t *testing.T) {
	h := Handler(nil, nil)

	rec := get(t, h, "/debug/vars")
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Errorf("/debug/vars with nil registry: %v\n%s", err, rec.Body.String())
	}
	if len(doc) != 0 {
		t.Errorf("/debug/vars with nil registry not empty: %v", doc)
	}

	if body := get(t, h, "/metrics").Body.String(); body != "" {
		t.Errorf("/metrics with nil registry = %q, want empty", body)
	}

	rec = get(t, h, "/traces/recent")
	var traces []json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Errorf("/traces/recent with nil ring: %v\n%s", err, rec.Body.String())
	}
	if len(traces) != 0 {
		t.Errorf("/traces/recent with nil ring not empty: %s", rec.Body.String())
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fixtureRegistry(), obs.NewTraceRing(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["monsoon.rounds"] != float64(3) {
		t.Errorf("live /debug/vars monsoon.rounds = %v", doc["monsoon.rounds"])
	}
}

// TestServeShutdownStopsListening pins the new lifecycle contract: Shutdown
// releases the port (a second Serve on the same address succeeds) and new
// connections are refused afterwards.
func TestServeShutdownStopsListening(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fixtureRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	cl := &http.Client{Timeout: 2 * time.Second}
	if _, err := cl.Get("http://" + srv.Addr + "/debug/vars"); err == nil {
		t.Fatal("request after Shutdown succeeded; listener still open")
	}
	srv2, err := Serve(srv.Addr, fixtureRegistry(), nil)
	if err != nil {
		t.Fatalf("rebinding released address: %v", err)
	}
	_ = srv2.Close()
}

// TestServerHasHeaderTimeout pins the slowloris hardening on every served
// endpoint (CLI telemetry and daemon alike build through NewServer).
func TestServerHasHeaderTimeout(t *testing.T) {
	s := NewServer(http.NotFoundHandler())
	if s.ReadHeaderTimeout <= 0 {
		t.Fatal("NewServer leaves ReadHeaderTimeout unset")
	}
	if s.IdleTimeout <= 0 {
		t.Fatal("NewServer leaves IdleTimeout unset")
	}
}
