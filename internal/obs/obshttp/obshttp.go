// Package obshttp serves the obs layer over HTTP with nothing but the
// standard library: a /debug/vars-style JSON snapshot of the metrics
// Registry, a Prometheus text-exposition /metrics endpoint, and
// /traces/recent serving the span trees of recently completed queries. The
// handler set is designed to be mounted as-is by the future monsoond daemon;
// today both CLIs expose it behind -obs-addr so long benchmark campaigns can
// be watched live.
package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"monsoon/internal/obs"
)

// Handler returns a mux serving the telemetry routes:
//
//	/debug/vars    JSON snapshot of the registry, deterministically ordered
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/traces/recent JSON array of recent query span trees, newest first
//
// Either argument may be nil: the corresponding routes serve empty (but
// well-formed) documents.
func Handler(reg *obs.Registry, ring *obs.TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeVars(w, reg)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var recent []*obs.RecentTrace
		if ring != nil {
			recent = ring.Recent()
		}
		if recent == nil {
			recent = []*obs.RecentTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recent)
	})
	return mux
}

// Serve listens on addr and serves Handler(reg, ring) until the process
// exits, returning the bound address (useful with ":0"). The listener is
// created synchronously so a bad address fails fast; serving happens on a
// background goroutine — telemetry must never block a query.
func Serve(addr string, reg *obs.Registry, ring *obs.TraceRing) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg, ring)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// writeVars renders the registry as a single JSON object. Key order follows
// Registry.Snapshot (counters, gauges, histograms; each sorted by name) —
// json.Marshal of a map would destroy that, so the document is built by hand.
func writeVars(w http.ResponseWriter, reg *obs.Registry) {
	snap := reg.Snapshot()
	var b strings.Builder
	b.WriteString("{\n")
	for i, e := range snap {
		if i > 0 {
			b.WriteString(",\n")
		}
		key, _ := json.Marshal(e.Name)
		b.Write(key)
		b.WriteString(": ")
		switch e.Kind {
		case "counter":
			fmt.Fprintf(&b, "%d", int64(e.Value))
		case "gauge":
			fmt.Fprintf(&b, "%g", e.Value)
		case "histogram":
			s := e.Hist
			fmt.Fprintf(&b,
				`{"count": %d, "sum": %g, "min": %g, "max": %g, "mean": %g, "p50": %g, "p95": %g, "p99": %g}`,
				s.Count, s.Sum, s.Min, s.Max, s.Mean, s.P50, s.P95, s.P99)
		}
	}
	b.WriteString("\n}\n")
	_, _ = w.Write([]byte(b.String()))
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters as `# TYPE <name> counter`, gauges as gauges, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Metric
// names are sanitized (dots and dashes become underscores). Output order is
// Snapshot order, so the exposition is deterministic and golden-testable.
func WritePrometheus(w io.Writer, reg *obs.Registry) {
	for _, e := range reg.Snapshot() {
		name := sanitize(e.Name)
		switch e.Kind {
		case "counter":
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, int64(e.Value))
		case "gauge":
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, e.Value)
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum int64
			for _, b := range e.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.UpperBound, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, e.Hist.Count)
			fmt.Fprintf(w, "%s_sum %g\n", name, e.Hist.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, e.Hist.Count)
		}
	}
}

// sanitize maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:]: anything else becomes an underscore.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}
