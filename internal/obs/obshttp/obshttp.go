// Package obshttp serves the obs layer over HTTP with nothing but the
// standard library: a /debug/vars-style JSON snapshot of the metrics
// Registry, a Prometheus text-exposition /metrics endpoint, and
// /traces/recent serving the span trees of recently completed queries. The
// handler set is designed to be mounted as-is by the future monsoond daemon;
// today both CLIs expose it behind -obs-addr so long benchmark campaigns can
// be watched live.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"monsoon/internal/obs"
)

// Handler returns a mux serving the telemetry routes:
//
//	/debug/vars    JSON snapshot of the registry, deterministically ordered
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/traces/recent JSON array of recent query span trees, newest first
//
// Either argument may be nil: the corresponding routes serve empty (but
// well-formed) documents.
func Handler(reg *obs.Registry, ring *obs.TraceRing) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg, ring)
	return mux
}

// Mount registers the telemetry routes on an existing mux, so a server with
// its own routes (the monsoond daemon's /query) shares one mux with them.
func Mount(mux *http.ServeMux, reg *obs.Registry, ring *obs.TraceRing) {
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeVars(w, reg)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var recent []*obs.RecentTrace
		if ring != nil {
			recent = ring.Recent()
		}
		if recent == nil {
			recent = []*obs.RecentTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recent)
	})
}

// Server is a running telemetry endpoint: the bound address plus a shutdown
// handle. Serve and ServeHandler return one so callers can stop the listener
// — earlier versions leaked the http.Server, leaving no way to stop it and
// no slowloris protection.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	done chan struct{}
}

// Shutdown gracefully stops the server: the listener closes immediately, and
// in-flight requests get until ctx expires to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// NewServer wraps an arbitrary handler in an http.Server with the timeout
// hardening a long-lived endpoint needs: ReadHeaderTimeout bounds slowloris
// header dribbling, IdleTimeout reaps idle keep-alive connections. No
// WriteTimeout is set — query responses legitimately take as long as their
// execution budget allows; per-request bounds belong to the handler.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve listens on addr and serves Handler(reg, ring) on a background
// goroutine — telemetry must never block a query. The listener is created
// synchronously so a bad address fails fast. Stop the returned server with
// Shutdown or Close.
func Serve(addr string, reg *obs.Registry, ring *obs.TraceRing) (*Server, error) {
	return ServeHandler(addr, Handler(reg, ring))
}

// ServeHandler is Serve for an arbitrary handler (the daemon mounts its
// /query routes next to the telemetry set on one mux).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), srv: NewServer(h), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// writeVars renders the registry as a single JSON object. Key order follows
// Registry.Snapshot (counters, gauges, histograms; each sorted by name) —
// json.Marshal of a map would destroy that, so the document is built by hand.
func writeVars(w http.ResponseWriter, reg *obs.Registry) {
	snap := reg.Snapshot()
	var b strings.Builder
	b.WriteString("{\n")
	for i, e := range snap {
		if i > 0 {
			b.WriteString(",\n")
		}
		key, _ := json.Marshal(e.Name)
		b.Write(key)
		b.WriteString(": ")
		switch e.Kind {
		case "counter":
			fmt.Fprintf(&b, "%d", int64(e.Value))
		case "gauge":
			fmt.Fprintf(&b, "%g", e.Value)
		case "histogram":
			s := e.Hist
			fmt.Fprintf(&b,
				`{"count": %d, "sum": %g, "min": %g, "max": %g, "mean": %g, "p50": %g, "p95": %g, "p99": %g}`,
				s.Count, s.Sum, s.Min, s.Max, s.Mean, s.P50, s.P95, s.P99)
		}
	}
	b.WriteString("\n}\n")
	_, _ = w.Write([]byte(b.String()))
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters as `# TYPE <name> counter`, gauges as gauges, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Metric
// names are sanitized (dots and dashes become underscores). Output order is
// Snapshot order, so the exposition is deterministic and golden-testable.
func WritePrometheus(w io.Writer, reg *obs.Registry) {
	for _, e := range reg.Snapshot() {
		name := sanitize(e.Name)
		switch e.Kind {
		case "counter":
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, int64(e.Value))
		case "gauge":
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, e.Value)
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum int64
			for _, b := range e.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.UpperBound, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, e.Hist.Count)
			fmt.Fprintf(w, "%s_sum %g\n", name, e.Hist.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, e.Hist.Count)
		}
	}
}

// sanitize maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:]: anything else becomes an underscore.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}
