package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// SpanNode is one node of an assembled span tree: the completed span plus its
// children in span-ID order (the deterministic creation order).
type SpanNode struct {
	*Span
	Children []*SpanNode
}

// MarshalJSON renders the node as {"span": ..., "children": [...]}, the shape
// /traces/recent serves.
func (n *SpanNode) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Span     *Span       `json:"span"`
		Children []*SpanNode `json:"children,omitempty"`
	}{n.Span, n.Children})
}

// Self is the span's self time: its duration minus the duration of its
// children, clamped at zero. For worker fan-outs children overlap in wall
// time, so an operator's Self can legitimately clamp — the per-worker busy
// durations sum past the operator's wall time.
func (n *SpanNode) Self() time.Duration {
	d := n.Dur
	for _, c := range n.Children {
		d -= c.Dur
	}
	if d < 0 {
		return 0
	}
	return d
}

// Walk visits the node and its descendants depth-first in child order.
func (n *SpanNode) Walk(fn func(node *SpanNode, depth int)) {
	n.walk(fn, 0)
}

func (n *SpanNode) walk(fn func(*SpanNode, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// BuildSpanTree assembles completed spans (one trace's worth — the caller
// groups by Trace ID when mixing runs) into trees: children attach to their
// Parent ID, roots are spans whose parent was never emitted (normally just
// the Parent == 0 query span). Roots and children are ordered by span ID, so
// the tree is deterministic regardless of emission order.
func BuildSpanTree(spans []*Span) []*SpanNode {
	nodes := make(map[int]*SpanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.ID] = &SpanNode{Span: sp}
	}
	var roots []*SpanNode
	for _, sp := range spans {
		n := nodes[sp.ID]
		if p, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byID := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	}
	byID(roots)
	for _, n := range nodes {
		byID(n.Children)
	}
	return roots
}

// OperatorTimes walks assembled span trees and returns, per plan-node
// expression key (the "expr" attribute the engine stamps on scan, reuse,
// join, and materialize spans), the inclusive wall time and the self time of
// the span that executed it. When a key was executed more than once (reused
// expressions, multi-round trees), the later span wins — matching how
// EXPLAIN ANALYZE's estimate and actual maps are accumulated.
func OperatorTimes(roots []*SpanNode) (incl, self map[string]time.Duration) {
	incl = make(map[string]time.Duration)
	self = make(map[string]time.Duration)
	for _, r := range roots {
		r.Walk(func(n *SpanNode, _ int) {
			key := n.Str["expr"]
			if key == "" {
				return
			}
			switch n.Kind {
			case KScan, KReuse, KJoin, KNestedLoop:
				incl[key] = n.Dur
				self[key] = n.Self()
			}
		})
	}
	return incl, self
}

// RecentTrace is one completed query span tree retained by a TraceRing.
type RecentTrace struct {
	// Trace is the run's Tracer ID.
	Trace int64 `json:"trace"`
	// Query is the root span's name (the query name).
	Query string `json:"query"`
	// Start and Dur are the root span's timing.
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	// Spans is the total number of spans in the tree.
	Spans int `json:"spans"`
	// Root is the assembled tree rooted at the query span.
	Root *SpanNode `json:"root"`
}

// TraceRing is an EventSink retaining the span trees of the last N completed
// query runs — the data /traces/recent serves. Spans accumulate per Trace ID
// until the run's root (Parent == 0) span completes, at which point the tree
// is assembled and pushed into the ring, evicting the oldest. Runs that never
// complete a root span are bounded too: when more than 4·N runs are pending,
// the lowest-numbered one is dropped. Safe for concurrent use by sessions
// sharing the sink.
type TraceRing struct {
	mu      sync.Mutex
	cap     int
	pending map[int64][]*Span
	recent  []*RecentTrace // newest last
}

// NewTraceRing creates a ring retaining the last n completed traces (n <= 0
// defaults to 64).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 64
	}
	return &TraceRing{cap: n, pending: make(map[int64][]*Span)}
}

// Emit implements EventSink: spans are grouped by Trace ID; messages and
// estimates pass through untouched (the ring retains structure, not logs).
func (r *TraceRing) Emit(ev Event) {
	if ev.Type != EvSpan {
		return
	}
	sp := ev.Span
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending[sp.Trace] = append(r.pending[sp.Trace], sp)
	if sp.Parent != 0 {
		if len(r.pending) > 4*r.cap {
			r.dropOldestPendingLocked()
		}
		return
	}
	spans := r.pending[sp.Trace]
	delete(r.pending, sp.Trace)
	roots := BuildSpanTree(spans)
	if len(roots) == 0 {
		return
	}
	rt := &RecentTrace{
		Trace: sp.Trace, Query: sp.Name, Start: sp.Start, Dur: sp.Dur,
		Spans: len(spans), Root: roots[0],
	}
	r.recent = append(r.recent, rt)
	if len(r.recent) > r.cap {
		r.recent = r.recent[len(r.recent)-r.cap:]
	}
}

func (r *TraceRing) dropOldestPendingLocked() {
	var oldest int64 = -1
	for id := range r.pending {
		if oldest < 0 || id < oldest {
			oldest = id
		}
	}
	if oldest >= 0 {
		delete(r.pending, oldest)
	}
}

// Recent returns the retained traces, newest first.
func (r *TraceRing) Recent() []*RecentTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RecentTrace, len(r.recent))
	for i, rt := range r.recent {
		out[len(out)-1-i] = rt
	}
	return out
}
