package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	tr := NewTracer(nil)
	if tr != nil {
		t.Fatal("NewTracer(nil) must return a nil tracer")
	}
	if tr.Active() {
		t.Error("nil tracer must report inactive")
	}
	// Every operation on the disabled layer must be a no-op, not a panic.
	sp := tr.Start(KScan, "R")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.SetRows(1, 2).SetProduced(3).SetNum("x", 4).SetStr("y", "z")
	sp.End()
	sp.End() // idempotent
	tr.Message("hello")
	tr.Estimate(Estimate{})

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d, want 0", v)
	}
	reg.Dump(bufio.NewWriter(nil))
}

func TestTracerParentLinkage(t *testing.T) {
	c := &Collector{}
	tr := NewTracer(c)
	root := tr.Start(KQuery, "q")
	child := tr.Start(KAction, "a")
	grand := tr.Start(KScan, "R").SetRows(10, 4)
	grand.End()
	child.End()
	sibling := tr.Start(KAction, "b")
	sibling.End()
	root.End()

	if len(c.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(c.Spans))
	}
	byName := map[string]*Span{}
	for _, sp := range c.Spans {
		byName[sp.Name] = sp
	}
	if byName["q"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["q"].Parent)
	}
	if byName["a"].Parent != byName["q"].ID {
		t.Error("child must link to root")
	}
	if byName["R"].Parent != byName["a"].ID {
		t.Error("grandchild must link to child")
	}
	if byName["b"].Parent != byName["q"].ID {
		t.Error("sibling opened after child ended must link to root")
	}
	if byName["R"].RowsIn != 10 || byName["R"].RowsOut != 4 {
		t.Errorf("rows = %d/%d, want 10/4", byName["R"].RowsIn, byName["R"].RowsOut)
	}
	// Completion order: children before parents.
	if c.Spans[0].Name != "R" || c.Spans[3].Name != "q" {
		t.Errorf("unexpected completion order: %s ... %s", c.Spans[0].Name, c.Spans[3].Name)
	}
}

func TestAbandonedChildSpanDoesNotCorruptStack(t *testing.T) {
	c := &Collector{}
	tr := NewTracer(c)
	root := tr.Start(KQuery, "q")
	_ = tr.Start(KScan, "leaked") // error path: never ended
	root.End()
	after := tr.Start(KQuery, "q2")
	if after.Parent != 0 {
		t.Errorf("span after recovery has parent %d, want 0", after.Parent)
	}
	after.End()
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{100, 100, 1},
		{1000, 100, 10},
		{100, 1000, 10},
		{0, 0, 1},
		{0, 5, math.Inf(1)},
		{5, 0, math.Inf(1)},
	}
	for _, tc := range cases {
		if got := QError(tc.est, tc.actual); got != tc.want {
			t.Errorf("QError(%g, %g) = %g, want %g", tc.est, tc.actual, got, tc.want)
		}
	}
}

func TestMessageSinkForwardsOnlyMessages(t *testing.T) {
	var lines []string
	s := MessageSink(func(l string) { lines = append(lines, l) })
	s.Emit(Event{Type: EvMessage, Msg: "one"})
	s.Emit(Event{Type: EvSpan, Span: &Span{}})
	s.Emit(Event{Type: EvEstimate, Est: &Estimate{}})
	s.Emit(Event{Type: EvMessage, Msg: "two"})
	if len(lines) != 2 || lines[0] != "one" || lines[1] != "two" {
		t.Errorf("message sink got %v, want [one two]", lines)
	}
	if MessageSink(nil) != nil {
		t.Error("MessageSink(nil) must be nil")
	}
}

func TestMultiSink(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live sinks must be nil")
	}
	c := &Collector{}
	if Multi(nil, c, nil) != EventSink(c) {
		t.Error("Multi with one live sink must return it unwrapped")
	}
	c2 := &Collector{}
	m := Multi(c, c2)
	m.Emit(Event{Type: EvMessage, Msg: "x"})
	if len(c.Messages) != 1 || len(c2.Messages) != 1 {
		t.Errorf("fan-out wrong: %d/%d messages", len(c.Messages), len(c2.Messages))
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs").Add(3)
	reg.Counter("runs").Inc()
	if v := reg.Counter("runs").Value(); v != 4 {
		t.Errorf("counter = %d, want 4", v)
	}
	reg.Gauge("scale").Set(2.5)
	if v := reg.Gauge("scale").Value(); v != 2.5 {
		t.Errorf("gauge = %g, want 2.5", v)
	}
	h := reg.Histogram("lat")
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 || s.Sum != 1015 || s.Min != 1 || s.Max != 1000 {
		t.Errorf("histogram stats wrong: %+v", s)
	}
	if s.P50 < 2 || s.P50 > 8 {
		t.Errorf("p50 bound %g outside [2,8]", s.P50)
	}
	if s.P95 < 1000 {
		t.Errorf("p95 bound %g below max-ish", s.P95)
	}
	var buf bytes.Buffer
	reg.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"counter runs", "gauge   scale", "hist    lat"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramDuration(t *testing.T) {
	h := NewRegistry().Histogram("d")
	h.ObserveDuration(250 * time.Millisecond)
	if s := h.Stats(); s.Count != 1 || s.Sum != 0.25 {
		t.Errorf("duration stats wrong: %+v", s)
	}
}

func TestJSONLEmitsValidLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	tr := NewTracer(j)
	sp := tr.Start(KScan, "R").SetRows(100, 10)
	sp.End()
	tr.Message("EXECUTE")
	tr.Estimate(Estimate{Expr: "R+S", Join: true, Round: 1, Est: 10, Actual: 0, QError: math.Inf(1)})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["type"] != "span" {
		t.Errorf("line 0 type = %v", rec["type"])
	}
	span := rec["span"].(map[string]any)
	if span["kind"] != "scan" || span["rows_in"].(float64) != 100 {
		t.Errorf("span payload wrong: %v", span)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec["msg"] != "EXECUTE" {
		t.Errorf("line 1 msg = %v", rec["msg"])
	}
	// The +Inf q-error must still encode — as an explicit miss record with
	// the unencodable value zeroed, not a clamped magic number — and must
	// not drop the line.
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	est := rec["estimate"].(map[string]any)
	if est["expr"] != "R+S" || est["miss"] != true || est["q"].(float64) != 0 {
		t.Errorf("estimate payload wrong: %v", est)
	}
}

// TestConcurrentSpanAnnotation exercises the engine-worker contract under the
// race detector: the coordinator opens and ends spans while worker goroutines
// annotate them (SetNum/SetRows/SetProduced) and emit messages and estimates
// concurrently. The assertions are secondary — the test exists so that
// `go test -race` fails on any unguarded span or tracer state.
func TestConcurrentSpanAnnotation(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col)
	root := tr.Start(KQuery, "race")
	for round := 0; round < 20; round++ {
		sp := tr.Start(KHashProbe, "probe")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sp.SetNum("workers", float64(w)).SetRows(w, w*2).SetProduced(float64(w))
				tr.Message("worker line")
				tr.Estimate(Estimate{Expr: "R+S", Est: 1, Actual: 1, QError: 1})
			}(w)
		}
		wg.Wait()
		sp.End()
		sp.End() // idempotent after workers are done
	}
	root.End()
	if n := len(col.SpansOf(KHashProbe)); n != 20 {
		t.Errorf("probe spans = %d, want 20 (double End must not re-emit)", n)
	}
	if len(col.Messages) != 20*8 || len(col.Estimates) != 20*8 {
		t.Errorf("messages/estimates = %d/%d, want 160/160", len(col.Messages), len(col.Estimates))
	}
	qs := col.SpansOf(KQuery)
	if len(qs) != 1 || qs[0].ID != 1 {
		t.Fatalf("query span wrong: %v", qs)
	}
	for _, sp := range col.SpansOf(KHashProbe) {
		if sp.Parent != qs[0].ID {
			t.Errorf("probe span %d parented to %d, want query span", sp.ID, sp.Parent)
		}
		if _, ok := sp.Num["workers"]; !ok {
			t.Errorf("probe span %d lost its workers attribute", sp.ID)
		}
	}
}
