package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a lightweight metrics registry: named counters, gauges, and
// log₂-bucketed histograms. Like the Tracer, a nil *Registry is the off
// switch — Counter/Gauge/Histogram on a nil registry return nil instruments
// whose methods no-op — so instrumented code records unconditionally:
//
//	reg.Counter("monsoon.executes").Inc()
//	reg.Histogram("monsoon.qerror.join").Observe(q)
//
// Instruments are cached by name; lookups take one mutex acquisition, updates
// on the returned instrument are atomic and lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count. Nil-safe (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the current value. Nil-safe (zero).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets spans 2^-32 .. 2^95 in log₂ steps, enough for both durations in
// seconds and cardinality q-errors.
const (
	histBuckets   = 128
	histBucketMin = -32
)

// Histogram accumulates a distribution of non-negative values: count, sum,
// min, max, plus log₂ buckets for quantile estimates. Updates lock; the
// struct is small and histogram updates sit off the per-tuple path.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// ObserveDuration records a duration in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	b := int(math.Floor(math.Log2(v))) - histBucketMin
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistogramStats is one histogram's summary.
type HistogramStats struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	Mean          float64
	P50, P95, P99 float64 // upper bound of the log₂ bucket holding the quantile
}

// Stats summarizes the histogram. Nil-safe (zero value).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the upper bound of the
// log₂ bucket holding it — an overestimate by at most 2×, consistent across
// runs. Nil-safe and safe on empty histograms (both return 0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	return h.quantileLocked(q)
}

// Buckets returns the histogram's non-empty log₂ buckets as (upper bound,
// count) pairs in ascending bound order — the raw material for cumulative
// Prometheus exposition. Nil-safe (nil slice).
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []BucketCount
	for i, n := range h.buckets {
		if n > 0 {
			out = append(out, BucketCount{
				UpperBound: math.Pow(2, float64(i+histBucketMin+1)),
				Count:      n,
			})
		}
	}
	return out
}

// BucketCount is one non-empty histogram bucket: values ≤ UpperBound landed
// here (and not in a lower bucket).
type BucketCount struct {
	UpperBound float64
	Count      int64
}

func (h *Histogram) quantileLocked(q float64) float64 {
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			return math.Pow(2, float64(i+histBucketMin+1)) // bucket upper bound
		}
	}
	return h.max
}

// SnapshotEntry is one instrument in a Registry snapshot. Kind is "counter",
// "gauge", or "histogram"; Value carries counter/gauge readings (counters as
// exact float64 — they stay well under 2^53), Hist the histogram summary, and
// Buckets the non-empty log₂ buckets (histograms only).
type SnapshotEntry struct {
	Name    string
	Kind    string
	Value   float64
	Hist    HistogramStats
	Buckets []BucketCount
}

// Snapshot returns every instrument as a deterministically ordered slice:
// counters, then gauges, then histograms, each group sorted by name. All
// metric dumps (CLI -metrics, /debug/vars, /metrics) render from this one
// view, so their ordering never depends on map iteration. Nil-safe (nil
// slice).
func (r *Registry) Snapshot() []SnapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type inst struct {
		name string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	var cs, gs, hs []inst
	for n, c := range r.counters {
		cs = append(cs, inst{name: n, c: c})
	}
	for n, g := range r.gauges {
		gs = append(gs, inst{name: n, g: g})
	}
	for n, h := range r.histograms {
		hs = append(hs, inst{name: n, h: h})
	}
	r.mu.Unlock()

	byName := func(s []inst) {
		sort.Slice(s, func(i, j int) bool { return s[i].name < s[j].name })
	}
	byName(cs)
	byName(gs)
	byName(hs)

	out := make([]SnapshotEntry, 0, len(cs)+len(gs)+len(hs))
	for _, e := range cs {
		out = append(out, SnapshotEntry{Name: e.name, Kind: "counter", Value: float64(e.c.Value())})
	}
	for _, e := range gs {
		out = append(out, SnapshotEntry{Name: e.name, Kind: "gauge", Value: e.g.Value()})
	}
	for _, e := range hs {
		out = append(out, SnapshotEntry{Name: e.name, Kind: "histogram", Hist: e.h.Stats(), Buckets: e.h.Buckets()})
	}
	return out
}

// Dump writes every instrument in deterministic (sorted) order, one line
// each. Nil-safe.
func (r *Registry) Dump(w io.Writer) {
	for _, e := range r.Snapshot() {
		switch e.Kind {
		case "counter":
			fmt.Fprintf(w, "counter %-32s %d\n", e.Name, int64(e.Value))
		case "gauge":
			fmt.Fprintf(w, "gauge   %-32s %g\n", e.Name, e.Value)
		case "histogram":
			s := e.Hist
			fmt.Fprintf(w, "hist    %-32s count=%d mean=%.4g min=%.4g p50≤%.4g p95≤%.4g max=%.4g\n",
				e.Name, s.Count, s.Mean, s.Min, s.P50, s.P95, s.Max)
		}
	}
}
