package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// jsonlRecord is the wire shape of one JSONL trace line. Exactly one of the
// payload fields is set, discriminated by Type:
//
//	{"type":"span","span":{"id":3,"parent":1,"kind":"scan","name":"R",...}}
//	{"type":"message","msg":"EXECUTE"}
//	{"type":"estimate","estimate":{"expr":"R+S","join":true,"est":1e6,...}}
type jsonlRecord struct {
	Type     string    `json:"type"`
	Span     *Span     `json:"span,omitempty"`
	Msg      string    `json:"msg,omitempty"`
	Estimate *Estimate `json:"estimate,omitempty"`
}

// JSONL is an EventSink that streams every event as one JSON object per line.
// Safe for use across sequential runs sharing one output file; Emit locks.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL wraps a writer. The caller owns the writer's lifecycle (flushing,
// closing).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements EventSink. Encoding errors are dropped: tracing must never
// fail a query.
func (j *JSONL) Emit(ev Event) {
	var rec jsonlRecord
	switch ev.Type {
	case EvSpan:
		rec = jsonlRecord{Type: "span", Span: ev.Span}
	case EvMessage:
		rec = jsonlRecord{Type: "message", Msg: ev.Msg}
	case EvEstimate:
		// encoding/json rejects non-finite floats, and a MaxFloat64 clamp
		// (the old workaround) masquerades as a graded — if absurd — q-error.
		// Mark the record an explicit miss and zero the unencodable value;
		// readers key off Miss, not a sentinel magnitude.
		if e := ev.Est; QErrorIsMiss(e.QError) {
			c := *e
			c.Miss = true
			if math.IsInf(c.QError, 0) || math.IsNaN(c.QError) {
				c.QError = 0
			}
			ev.Est = &c
		}
		rec = jsonlRecord{Type: "estimate", Estimate: ev.Est}
	default:
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(rec)
}
