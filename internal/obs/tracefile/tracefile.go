// Package tracefile reads and analyzes the JSONL traces produced by
// -trace-json and the span-count baselines pinned under CI. It is the shared
// substrate of cmd/monsoon-trace (report, diff) and the harness's
// span-count regression gate, so the CLI and CI apply the same comparison
// semantics.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"monsoon/internal/obs"
)

// QErrMissThreshold is the shared miss cutoff, re-exported for compatibility;
// the canonical definition is obs.QErrorMissThreshold.
const QErrMissThreshold = obs.QErrorMissThreshold

// Trace is one parsed trace: either a full JSONL event stream (Spans and
// Estimates populated, Counts derived) or a bare span-count baseline (Counts
// only, Spans empty).
type Trace struct {
	Spans     []*obs.Span
	Estimates []obs.Estimate
	Messages  int
	// Counts is the span tally per kind, derived from Spans for full traces
	// and read directly for count baselines.
	Counts map[string]int
	// CountsOnly marks a span-count baseline (no timing data).
	CountsOnly bool
}

// jsonlLine is the union of both line shapes tracefile reads: the
// obs JSONL event record ({"type":...}) and the harness span-count baseline
// record ({"kind":...,"count":...}).
type jsonlLine struct {
	Type     string        `json:"type"`
	Span     *obs.Span     `json:"span"`
	Msg      string        `json:"msg"`
	Estimate *obs.Estimate `json:"estimate"`
	Kind     string        `json:"kind"`
	Count    *int          `json:"count"`
}

// Read parses a trace from r, auto-detecting the format: lines carrying
// "type" are obs JSONL events, lines carrying "kind"+"count" are span-count
// baseline records. Blank lines are skipped; anything else is an error.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{Counts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	sawEvent, sawCount := false, false
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch {
		case ln.Type == "span" && ln.Span != nil:
			sawEvent = true
			t.Spans = append(t.Spans, ln.Span)
			t.Counts[ln.Span.Kind]++
		case ln.Type == "message":
			sawEvent = true
			t.Messages++
		case ln.Type == "estimate" && ln.Estimate != nil:
			sawEvent = true
			t.Estimates = append(t.Estimates, *ln.Estimate)
		case ln.Type == "" && ln.Kind != "" && ln.Count != nil:
			sawCount = true
			t.Counts[ln.Kind] = *ln.Count
		default:
			return nil, fmt.Errorf("line %d: unrecognized record %s", lineNo, raw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sawCount && sawEvent {
		return nil, fmt.Errorf("mixed trace: both event records and count-baseline records")
	}
	t.CountsOnly = sawCount
	return t, nil
}

// ReadFile is Read over a file path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// KindStats summarizes one span kind's latency distribution, percentiles
// estimated from the same log₂ histogram the metrics registry uses.
type KindStats struct {
	Kind          string
	Count         int
	Total         time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// KindReport aggregates a trace's spans per kind, sorted by kind name.
func (t *Trace) KindReport() []KindStats {
	hists := make(map[string]*obs.Histogram)
	totals := make(map[string]time.Duration)
	maxes := make(map[string]time.Duration)
	for _, sp := range t.Spans {
		h := hists[sp.Kind]
		if h == nil {
			h = &obs.Histogram{}
			hists[sp.Kind] = h
		}
		h.ObserveDuration(sp.Dur)
		totals[sp.Kind] += sp.Dur
		if sp.Dur > maxes[sp.Kind] {
			maxes[sp.Kind] = sp.Dur
		}
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	out := make([]KindStats, 0, len(hists))
	for kind, h := range hists {
		out = append(out, KindStats{
			Kind:  kind,
			Count: t.Counts[kind],
			Total: totals[kind],
			P50:   secs(h.Quantile(0.50)),
			P95:   secs(h.Quantile(0.95)),
			P99:   secs(h.Quantile(0.99)),
			Max:   maxes[kind],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// QErrSummary is a trace's estimate-quality rollup: geometric mean and max
// over finite q-errors, with unboundedly wrong estimates (one side empty)
// counted separately as misses.
type QErrSummary struct {
	Joins  int // join-node estimate records
	Leaves int // leaf (scan) estimate records
	GeoQ   float64
	MaxQ   float64
	Misses int
}

// QErrors summarizes the trace's estimate records.
func (t *Trace) QErrors() QErrSummary {
	var s QErrSummary
	var logSum float64
	var n int
	for _, e := range t.Estimates {
		if e.Join {
			s.Joins++
		} else {
			s.Leaves++
		}
		q := e.QError
		if e.Miss || obs.QErrorIsMiss(q) {
			s.Misses++
			continue
		}
		logSum += math.Log(q)
		n++
		if q > s.MaxQ {
			s.MaxQ = q
		}
	}
	if n > 0 {
		s.GeoQ = math.Exp(logSum / float64(n))
	}
	return s
}

// DiffOptions controls Diff.
type DiffOptions struct {
	// TimingTol is the allowed relative drift of per-kind total wall time
	// (0.25 = 25%). Zero disables timing comparison; counts are always
	// compared. Timing is also skipped when either side is a counts-only
	// baseline.
	TimingTol float64
	// MinTiming ignores timing drift on kinds whose total is below this on
	// both sides — relative tolerance is meaningless at microsecond scale.
	// Defaults to 5ms when zero and TimingTol is set.
	MinTiming time.Duration
	// IncludeWorkers compares "worker" and "shard" span counts too. Off by
	// default: worker fan-out follows GOMAXPROCS and shard fan-out follows
	// the catalog's -shards layout, so those counts are configuration-
	// dependent while every other kind is deterministic.
	IncludeWorkers bool
}

// Diff compares two traces and returns human-readable differences, empty when
// they match within tolerance. Span counts are compared per kind (exact);
// timings per kind (relative, when enabled and both traces carry spans).
func Diff(a, b *Trace, opt DiffOptions) []string {
	var diffs []string
	kinds := make(map[string]bool, len(a.Counts)+len(b.Counts))
	for k := range a.Counts {
		kinds[k] = true
	}
	for k := range b.Counts {
		kinds[k] = true
	}
	var sorted []string
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if (k == obs.KWorker || k == obs.KShard) && !opt.IncludeWorkers {
			continue
		}
		if a.Counts[k] != b.Counts[k] {
			diffs = append(diffs, fmt.Sprintf("count %s: %d vs %d", k, a.Counts[k], b.Counts[k]))
		}
	}

	if opt.TimingTol <= 0 || a.CountsOnly || b.CountsOnly {
		return diffs
	}
	minT := opt.MinTiming
	if minT == 0 {
		minT = 5 * time.Millisecond
	}
	ar, br := a.KindReport(), b.KindReport()
	at := make(map[string]time.Duration, len(ar))
	for _, s := range ar {
		at[s.Kind] = s.Total
	}
	bt := make(map[string]time.Duration, len(br))
	for _, s := range br {
		bt[s.Kind] = s.Total
	}
	for _, k := range sorted {
		if (k == obs.KWorker || k == obs.KShard) && !opt.IncludeWorkers {
			continue
		}
		x, y := at[k], bt[k]
		if x < minT && y < minT {
			continue
		}
		hi, lo := x, y
		if lo > hi {
			hi, lo = lo, hi
		}
		if lo <= 0 || float64(hi-lo)/float64(lo) > opt.TimingTol {
			diffs = append(diffs, fmt.Sprintf("timing %s: total %v vs %v (tol %.0f%%)",
				k, x, y, opt.TimingTol*100))
		}
	}
	return diffs
}
