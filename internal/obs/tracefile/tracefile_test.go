package tracefile

import (
	"math"
	"strings"
	"testing"
	"time"

	"monsoon/internal/obs"
)

const eventTrace = `{"type":"span","span":{"id":1,"kind":"scan","name":"lineitem","start":"2026-01-01T00:00:00Z","dur_ns":2000000}}
{"type":"span","span":{"id":2,"kind":"scan","name":"orders","start":"2026-01-01T00:00:00Z","dur_ns":4000000}}
{"type":"span","span":{"id":3,"kind":"join","name":"l-o","start":"2026-01-01T00:00:00Z","dur_ns":10000000}}
{"type":"message","msg":"EXECUTE round 1"}
{"type":"estimate","estimate":{"expr":"l-o","join":true,"round":1,"est":100,"actual":50,"q":2}}
{"type":"estimate","estimate":{"expr":"lineitem","join":false,"round":1,"est":10,"actual":10,"q":1}}
`

const countBaseline = `{"kind":"scan","count":2}
{"kind":"join","count":1}
`

func TestReadEventTrace(t *testing.T) {
	tr, err := Read(strings.NewReader(eventTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.CountsOnly {
		t.Error("event trace marked CountsOnly")
	}
	if len(tr.Spans) != 3 || tr.Messages != 1 || len(tr.Estimates) != 2 {
		t.Errorf("got %d spans, %d messages, %d estimates", len(tr.Spans), tr.Messages, len(tr.Estimates))
	}
	if tr.Counts["scan"] != 2 || tr.Counts["join"] != 1 {
		t.Errorf("derived counts = %v", tr.Counts)
	}
}

func TestReadCountBaseline(t *testing.T) {
	tr, err := Read(strings.NewReader(countBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.CountsOnly {
		t.Error("count baseline not marked CountsOnly")
	}
	if tr.Counts["scan"] != 2 || tr.Counts["join"] != 1 {
		t.Errorf("counts = %v", tr.Counts)
	}
}

func TestReadRejectsMixedAndGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(eventTrace + countBaseline)); err == nil {
		t.Error("mixed trace accepted")
	}
	if _, err := Read(strings.NewReader("{\"neither\":true}\n")); err == nil {
		t.Error("unrecognized record accepted")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON line accepted")
	}
}

func TestKindReport(t *testing.T) {
	tr, err := Read(strings.NewReader(eventTrace))
	if err != nil {
		t.Fatal(err)
	}
	rep := tr.KindReport()
	if len(rep) != 2 {
		t.Fatalf("got %d kinds, want 2", len(rep))
	}
	// Sorted by kind name: join, scan.
	if rep[0].Kind != "join" || rep[1].Kind != "scan" {
		t.Fatalf("kind order %q, %q", rep[0].Kind, rep[1].Kind)
	}
	if rep[1].Count != 2 || rep[1].Total != 6*time.Millisecond || rep[1].Max != 4*time.Millisecond {
		t.Errorf("scan stats = %+v", rep[1])
	}
	if rep[0].P50 <= 0 || rep[0].P99 < rep[0].P50 {
		t.Errorf("join percentiles not monotone: %+v", rep[0])
	}
}

func TestQErrorsSeparatesMisses(t *testing.T) {
	tr := &Trace{Estimates: []obs.Estimate{
		{Expr: "a", Join: true, QError: 2},
		{Expr: "b", Join: true, QError: 8},
		{Expr: "c", Join: true, QError: math.Inf(1)},
		{Expr: "d", Join: true, QError: QErrMissThreshold},
		{Expr: "leaf", Join: false, QError: 1},
	}}
	s := tr.QErrors()
	if s.Joins != 4 || s.Leaves != 1 {
		t.Errorf("joins=%d leaves=%d", s.Joins, s.Leaves)
	}
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (the Inf and the clamp)", s.Misses)
	}
	// Geometric mean over the finite errors only (leaves included):
	// geo{2, 8, 1} = 16^(1/3).
	want := math.Cbrt(16)
	if math.Abs(s.GeoQ-want) > 1e-9 {
		t.Errorf("GeoQ = %g, want %g", s.GeoQ, want)
	}
	if s.MaxQ != 8 {
		t.Errorf("MaxQ = %g, want 8 (misses excluded)", s.MaxQ)
	}
}

func spanTrace(durs map[string][]time.Duration) *Trace {
	tr := &Trace{Counts: map[string]int{}}
	id := 0
	for kind, ds := range durs {
		for _, d := range ds {
			id++
			tr.Spans = append(tr.Spans, &obs.Span{ID: id, Kind: kind, Dur: d})
			tr.Counts[kind]++
		}
	}
	return tr
}

func TestDiffCounts(t *testing.T) {
	a := spanTrace(map[string][]time.Duration{"scan": {1, 1}, "join": {1}})
	b := spanTrace(map[string][]time.Duration{"scan": {1, 1, 1}, "join": {1}})
	diffs := Diff(a, b, DiffOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "count scan: 2 vs 3") {
		t.Errorf("diffs = %v", diffs)
	}
	if diffs := Diff(a, a, DiffOptions{}); len(diffs) != 0 {
		t.Errorf("self-diff = %v", diffs)
	}
}

func TestDiffExcludesWorkersByDefault(t *testing.T) {
	a := spanTrace(map[string][]time.Duration{"scan": {1}, obs.KWorker: {1, 1, 1, 1}})
	b := spanTrace(map[string][]time.Duration{"scan": {1}, obs.KWorker: {1}})
	if diffs := Diff(a, b, DiffOptions{}); len(diffs) != 0 {
		t.Errorf("worker counts compared by default: %v", diffs)
	}
	diffs := Diff(a, b, DiffOptions{IncludeWorkers: true})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "count worker: 4 vs 1") {
		t.Errorf("diffs with IncludeWorkers = %v", diffs)
	}
}

func TestDiffExcludesShardsByDefault(t *testing.T) {
	// Shard fan-out follows the catalog's -shards layout the same way worker
	// fan-out follows GOMAXPROCS, so it is excluded unless opted in.
	a := spanTrace(map[string][]time.Duration{"scan": {1}, obs.KShard: {1, 1, 1, 1}})
	b := spanTrace(map[string][]time.Duration{"scan": {1}, obs.KShard: {1}})
	if diffs := Diff(a, b, DiffOptions{}); len(diffs) != 0 {
		t.Errorf("shard counts compared by default: %v", diffs)
	}
	diffs := Diff(a, b, DiffOptions{IncludeWorkers: true})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "count shard: 4 vs 1") {
		t.Errorf("diffs with IncludeWorkers = %v", diffs)
	}
}

func TestDiffTimings(t *testing.T) {
	a := spanTrace(map[string][]time.Duration{"join": {100 * time.Millisecond}})
	b := spanTrace(map[string][]time.Duration{"join": {150 * time.Millisecond}})
	// 50% drift: caught at 25% tolerance, passed at 60%.
	if diffs := Diff(a, b, DiffOptions{TimingTol: 0.25}); len(diffs) != 1 ||
		!strings.Contains(diffs[0], "timing join") {
		t.Errorf("25%% tol diffs = %v", diffs)
	}
	if diffs := Diff(a, b, DiffOptions{TimingTol: 0.60}); len(diffs) != 0 {
		t.Errorf("60%% tol diffs = %v", diffs)
	}

	// Below the MinTiming floor the relative drift is ignored.
	c := spanTrace(map[string][]time.Duration{"join": {100 * time.Microsecond}})
	d := spanTrace(map[string][]time.Duration{"join": {300 * time.Microsecond}})
	if diffs := Diff(c, d, DiffOptions{TimingTol: 0.25}); len(diffs) != 0 {
		t.Errorf("sub-floor timing flagged: %v", diffs)
	}

	// Counts-only baselines carry no timings; only counts are compared.
	base, err := Read(strings.NewReader(`{"kind":"join","count":1}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(a, base, DiffOptions{TimingTol: 0.01}); len(diffs) != 0 {
		t.Errorf("counts-only diff = %v", diffs)
	}
}
