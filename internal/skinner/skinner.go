// Package skinner is the SkinnerDB-G comparison option (§6.2.2 option 5): a
// regret-bounded online join-order learner in the style of Trummer et al.,
// run — as the paper did — on top of a batch engine that does not support
// incremental processing. Each episode picks a left-deep join order with UCT
// over order prefixes, executes it against the engine under a tuple budget,
// and discards all partial work on failure; budgets grow geometrically. This
// reproduces the pathology §6.4 discusses: without an incremental engine,
// work is thrown away between episodes and hard queries time out.
package skinner

import (
	"errors"
	"math"
	"time"

	"monsoon/internal/engine"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/randx"
)

// Config parameterizes a Skinner-G run.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// InitialBudget is the first episode's tuple budget; default 1000.
	InitialBudget float64
	// Growth multiplies the episode budget after every EpisodesPerBudget
	// failures; default 2.
	Growth float64
	// EpisodesPerBudget is how many episodes run at each budget level;
	// default 3.
	EpisodesPerBudget int
	// UCTWeight is the exploration weight; default √2.
	UCTWeight float64
}

func (c Config) withDefaults() Config {
	if c.InitialBudget == 0 {
		c.InitialBudget = 1000
	}
	if c.Growth == 0 {
		c.Growth = 2
	}
	if c.EpisodesPerBudget == 0 {
		c.EpisodesPerBudget = 3
	}
	if c.UCTWeight == 0 {
		c.UCTWeight = math.Sqrt2
	}
	return c
}

// Result reports a Skinner-G run.
type Result struct {
	// Value and Rows describe the final result when the run finished.
	Value float64
	Rows  int
	// Episodes counts executed episodes, Produced the total tuples paid
	// across all of them (including discarded work).
	Episodes int
	Produced float64
	// ExecTime is total engine time.
	ExecTime time.Duration
}

// uctNode is one join-order prefix.
type uctNode struct {
	visits   int
	children map[string]*uctStats
}

type uctStats struct {
	visits int
	total  float64
}

// Run learns a join order online and executes q. The overall budget bounds
// the whole run (its deadline and tuple cap include discarded episode work).
func Run(q *query.Query, eng *engine.Engine, budget *engine.Budget, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := randx.New(randx.Derive(cfg.Seed, "skinner"))
	res := &Result{}
	prefixes := map[string]*uctNode{}
	epBudget := cfg.InitialBudget
	failures := 0

	for {
		if budget != nil && !budget.Deadline.IsZero() && time.Now().After(budget.Deadline) {
			return res, engine.ErrBudget
		}
		order := chooseOrder(q, prefixes, cfg.UCTWeight, rng)
		tree := leftDeep(order)
		// The episode budget shares the run's deadline and counts toward its
		// global tuple cap through res.Produced accounting below.
		eb := &engine.Budget{MaxTuples: epBudget}
		if budget != nil {
			eb.Deadline = budget.Deadline
			if budget.MaxTuples > 0 {
				remaining := budget.MaxTuples - budget.Produced()
				if remaining <= 0 {
					return res, engine.ErrBudget
				}
				if remaining < epBudget {
					eb.MaxTuples = remaining
				}
			}
		}
		t0 := time.Now()
		rel, er, err := eng.ExecTree(q, tree, eb)
		res.ExecTime += time.Since(t0)
		res.Episodes++
		res.Produced += er.Produced
		if budget != nil {
			if berr := budget.Charge(int(er.Produced)); berr != nil {
				return res, berr
			}
		}
		progress := float64(len(er.Counts)) / float64(2*len(order)-1)
		updateOrder(prefixes, order, progress)
		if err == nil {
			v, aerr := engine.FinalAggregate(q, rel)
			if aerr != nil {
				return res, aerr
			}
			res.Value = v
			res.Rows = rel.Count()
			return res, nil
		}
		if !errors.Is(err, engine.ErrBudget) {
			return res, err
		}
		failures++
		if failures%cfg.EpisodesPerBudget == 0 {
			epBudget *= cfg.Growth
		}
	}
}

// chooseOrder walks the prefix statistics with UCB1, extending unexplored
// prefixes randomly; cross-product extensions are admitted only when no
// connected table remains.
func chooseOrder(q *query.Query, prefixes map[string]*uctNode, w float64, rng interface{ Intn(int) int }) []string {
	all := q.Aliases().Names()
	var order []string
	cover := query.NewAliasSet()
	remaining := append([]string(nil), all...)
	for len(remaining) > 0 {
		// Candidate next tables.
		var cands []string
		if len(order) > 0 {
			for _, a := range remaining {
				if q.Connected(cover, query.NewAliasSet(a)) {
					cands = append(cands, a)
				}
			}
		}
		if len(cands) == 0 {
			cands = remaining
		}
		key := cover.Key()
		node := prefixes[key]
		if node == nil {
			node = &uctNode{children: map[string]*uctStats{}}
			prefixes[key] = node
		}
		pick := ""
		bestVal := math.Inf(-1)
		for _, c := range cands {
			st := node.children[c]
			if st == nil || st.visits == 0 {
				// Unexplored: pick among unexplored uniformly.
				var fresh []string
				for _, c2 := range cands {
					if s2 := node.children[c2]; s2 == nil || s2.visits == 0 {
						fresh = append(fresh, c2)
					}
				}
				pick = fresh[rng.Intn(len(fresh))]
				break
			}
			v := st.total/float64(st.visits) + w*math.Sqrt(math.Log(float64(node.visits)+1)/float64(st.visits))
			if v > bestVal {
				bestVal = v
				pick = c
			}
		}
		order = append(order, pick)
		cover = cover.Union(query.NewAliasSet(pick))
		for i, a := range remaining {
			if a == pick {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return order
}

// updateOrder backpropagates an episode's progress reward into every prefix
// of the played order.
func updateOrder(prefixes map[string]*uctNode, order []string, reward float64) {
	cover := query.NewAliasSet()
	for _, a := range order {
		node := prefixes[cover.Key()]
		if node == nil {
			node = &uctNode{children: map[string]*uctStats{}}
			prefixes[cover.Key()] = node
		}
		st := node.children[a]
		if st == nil {
			st = &uctStats{}
			node.children[a] = st
		}
		node.visits++
		st.visits++
		st.total += reward
		cover = cover.Union(query.NewAliasSet(a))
	}
}

func leftDeep(order []string) *plan.Node {
	sets := make([]query.AliasSet, len(order))
	for i, a := range order {
		sets[i] = query.NewAliasSet(a)
	}
	return plan.LeftDeep(sets)
}
