package skinner

import (
	"errors"
	"testing"
	"time"

	"monsoon/internal/engine"
	"monsoon/internal/expr"
	"monsoon/internal/plan"
	"monsoon/internal/query"
	"monsoon/internal/table"
	"monsoon/internal/value"
)

func fixture() (*table.Catalog, *query.Query) {
	cat := table.NewCatalog()
	rs := table.NewSchema(
		table.Column{Table: "R", Name: "a", Kind: value.KindInt},
		table.Column{Table: "R", Name: "b", Kind: value.KindInt},
	)
	rb := table.NewBuilder("R", rs)
	for i := 0; i < 2000; i++ {
		rb.Add(value.Int(7), value.Int(int64(i%40)))
	}
	cat.Put(rb.Build())
	ss := table.NewSchema(table.Column{Table: "S", Name: "k", Kind: value.KindInt})
	sb := table.NewBuilder("S", ss)
	for i := 0; i < 100; i++ {
		sb.Add(value.Int(7))
	}
	cat.Put(sb.Build())
	ts := table.NewSchema(table.Column{Table: "T", Name: "k", Kind: value.KindInt})
	tb := table.NewBuilder("T", ts)
	for i := 0; i < 100; i++ {
		tb.Add(value.Int(int64(1000 + i)))
	}
	cat.Put(tb.Build())
	q := query.NewBuilder("rst").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.Identity("R.a"), expr.Identity("S.k")).
		Join(expr.Identity("R.b"), expr.Identity("T.k")).
		MustBuild()
	return cat, q
}

func referenceRows(t *testing.T) int {
	t.Helper()
	cat, q := fixture()
	eng := engine.New(cat)
	tree := plan.NewJoin(plan.NewJoin(
		plan.NewLeaf(query.NewAliasSet("R")), plan.NewLeaf(query.NewAliasSet("T"))),
		plan.NewLeaf(query.NewAliasSet("S")))
	rel, _, err := eng.ExecTree(q, tree, &engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return rel.Count()
}

func TestSkinnerCompletes(t *testing.T) {
	want := referenceRows(t)
	cat, q := fixture()
	eng := engine.New(cat)
	res, err := Run(q, eng, &engine.Budget{}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != want {
		t.Errorf("rows = %d, want %d", res.Rows, want)
	}
	if res.Episodes < 1 {
		t.Error("must run at least one episode")
	}
}

func TestSkinnerWastesWorkAcrossEpisodes(t *testing.T) {
	// The good order finishes within ~2.3k tuples; Skinner's early episodes
	// at small budgets plus discarded bad-order work should cost strictly
	// more than one clean run unless it got lucky on the first draw.
	cat, q := fixture()
	eng := engine.New(cat)
	multi := 0
	for seed := int64(0); seed < 6; seed++ {
		eng.Reset()
		res, err := Run(q, eng, &engine.Budget{}, Config{Seed: seed, InitialBudget: 500})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Episodes > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("expected at least one multi-episode run across seeds")
	}
}

func TestSkinnerRespectsDeadline(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	b := &engine.Budget{Deadline: time.Now().Add(-time.Second)}
	_, err := Run(q, eng, b, Config{Seed: 2})
	if !errors.Is(err, engine.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestSkinnerRespectsGlobalTupleCap(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	b := &engine.Budget{MaxTuples: 300}
	_, err := Run(q, eng, b, Config{Seed: 3, InitialBudget: 100})
	if !errors.Is(err, engine.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestSkinnerBudgetGrowth(t *testing.T) {
	// With a tiny initial budget the run must still finish by growing it.
	cat, q := fixture()
	eng := engine.New(cat)
	res, err := Run(q, eng, &engine.Budget{}, Config{
		Seed: 4, InitialBudget: 10, Growth: 4, EpisodesPerBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes < 3 {
		t.Errorf("expected several episodes with a tiny budget, got %d", res.Episodes)
	}
}

// TestSkinnerLearnsAcrossEpisodes: with a budget that only the good order
// fits, the UCT prefix statistics must steer later episodes toward it — the
// run completes instead of looping forever on bad orders.
func TestSkinnerLearnsAcrossEpisodes(t *testing.T) {
	cat, q := fixture()
	eng := engine.New(cat)
	// The good order (T first: R⋈T empty) costs ~2.2k; R⋈S-first costs 202k.
	// Freeze the budget below the bad orders' cost so only learning finishes
	// the query (no growth).
	res, err := Run(q, eng, &engine.Budget{}, Config{
		Seed: 5, InitialBudget: 5000, Growth: 1.0001, EpisodesPerBudget: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes > 12 {
		t.Errorf("UCT should find the only feasible order quickly, took %d episodes", res.Episodes)
	}
	if res.Rows != 0 {
		t.Errorf("rows = %d, want 0", res.Rows)
	}
}

func TestChooseOrderAvoidsCrossProducts(t *testing.T) {
	_, q := fixture()
	prefixes := map[string]*uctNode{}
	rng := fakeRng{}
	for i := 0; i < 20; i++ {
		order := chooseOrder(q, prefixes, 1.4, rng)
		if len(order) != 3 {
			t.Fatalf("order = %v", order)
		}
		// S and T are never adjacent at the start (S,T or T,S would cross).
		if (order[0] == "S" && order[1] == "T") || (order[0] == "T" && order[1] == "S") {
			t.Errorf("order %v starts with a cross product", order)
		}
		updateOrder(prefixes, order, 0.5)
	}
}

type fakeRng struct{}

func (fakeRng) Intn(n int) int { return 0 }
