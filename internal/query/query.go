package query

import (
	"fmt"

	"monsoon/internal/expr"
	"monsoon/internal/value"
)

// Term is one side of a predicate: an opaque UDF together with the alias set
// it spans. Terms carry a query-unique ID used as the statistics key for
// d(term, expr | partner).
type Term struct {
	ID      int
	Fn      *expr.UDF
	Aliases AliasSet
}

// String renders the term for plans and logs.
func (t *Term) String() string { return t.Fn.String() }

// JoinPred is an equality predicate L = R between two function terms whose
// alias sets are disjoint. When either side spans more than one alias it is a
// multi-table obscured predicate: no statistic for that side can exist until
// an expression covering the side has been materialized.
type JoinPred struct {
	ID   int
	L, R *Term
}

// Aliases returns the union of both sides' aliases.
func (p *JoinPred) Aliases() AliasSet { return p.L.Aliases.Union(p.R.Aliases) }

// ApplicableAt reports whether the predicate can be evaluated over an
// expression covering the given alias set.
func (p *JoinPred) ApplicableAt(s AliasSet) bool {
	return p.L.Aliases.SubsetOf(s) && p.R.Aliases.SubsetOf(s)
}

// String renders the predicate.
func (p *JoinPred) String() string { return p.L.String() + " = " + p.R.String() }

// SelPred is a selection predicate T = const. Single-alias selections are
// pushed to scans; multi-alias selections are applied as soon as a plan node
// covers them.
type SelPred struct {
	ID    int
	T     *Term
	Const value.Value
}

// String renders the predicate.
func (p *SelPred) String() string { return p.T.String() + " = " + p.Const.String() }

// AggKind selects the final aggregate computed over the completed join.
type AggKind uint8

// The supported final aggregates.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum                  // SUM(attr)
)

// Agg describes the query's final aggregate.
type Agg struct {
	Kind AggKind
	Attr string // qualified attribute for AggSum
}

// RelRef mounts a stored base table under an alias.
type RelRef struct {
	Alias string
	Table string
}

// Query is the logical query: relations, join predicates, selections, and a
// final aggregate. Build instances through the Builder so IDs and alias sets
// stay consistent.
type Query struct {
	Name  string
	Rels  []RelRef
	Joins []*JoinPred
	Sels  []*SelPred
	Out   Agg

	terms []*Term
}

// Aliases returns the set of all aliases in the query.
func (q *Query) Aliases() AliasSet {
	names := make([]string, len(q.Rels))
	for i, r := range q.Rels {
		names[i] = r.Alias
	}
	return NewAliasSet(names...)
}

// Terms returns every term in the query (join sides and selection terms),
// indexed by Term.ID.
func (q *Query) Terms() []*Term { return q.terms }

// Term returns the term with the given ID.
func (q *Query) Term(id int) *Term { return q.terms[id] }

// TableOf resolves an alias to its base-table name.
func (q *Query) TableOf(alias string) (string, bool) {
	for _, r := range q.Rels {
		if r.Alias == alias {
			return r.Table, true
		}
	}
	return "", false
}

// JoinsApplicableAt lists predicates evaluable over an alias set but not
// evaluable over any strict subset the caller has already handled. The engine
// and the cost model both use PredsAppliedAt instead; this helper serves the
// planners.
func (q *Query) JoinsApplicableAt(s AliasSet) []*JoinPred {
	var out []*JoinPred
	for _, p := range q.Joins {
		if p.ApplicableAt(s) {
			out = append(out, p)
		}
	}
	return out
}

// PredsNewAt returns the join predicates that are applicable over the union
// of two alias sets but not over either side alone — exactly the predicates a
// join of the two sides must evaluate.
func (q *Query) PredsNewAt(left, right AliasSet) []*JoinPred {
	union := left.Union(right)
	var out []*JoinPred
	for _, p := range q.Joins {
		if p.ApplicableAt(union) && !p.ApplicableAt(left) && !p.ApplicableAt(right) {
			out = append(out, p)
		}
	}
	return out
}

// SelsNewAt returns the selection predicates applicable at the union but not
// within either side.
func (q *Query) SelsNewAt(left, right AliasSet) []*SelPred {
	union := left.Union(right)
	var out []*SelPred
	for _, p := range q.Sels {
		la, ra := p.T.Aliases.SubsetOf(left), p.T.Aliases.SubsetOf(right)
		if p.T.Aliases.SubsetOf(union) && !la && !ra {
			out = append(out, p)
		}
	}
	return out
}

// SelsAt returns the selection predicates fully contained in the alias set.
func (q *Query) SelsAt(s AliasSet) []*SelPred {
	var out []*SelPred
	for _, p := range q.Sels {
		if p.T.Aliases.SubsetOf(s) {
			out = append(out, p)
		}
	}
	return out
}

// TermEvaluableAt reports whether a term can be computed over an expression
// covering s.
func TermEvaluableAt(t *Term, s AliasSet) bool { return t.Aliases.SubsetOf(s) }

// Connected reports whether joining the expressions covering left and right
// is "useful": it newly enables a join predicate, or it newly makes some
// predicate side evaluable (the multi-table-UDF case that can force a cross
// product, e.g. F1(R,S) = F2(T) forces R×S before the predicate exists).
func (q *Query) Connected(left, right AliasSet) bool {
	if len(q.PredsNewAt(left, right)) > 0 {
		return true
	}
	union := left.Union(right)
	for _, p := range q.Joins {
		for _, t := range []*Term{p.L, p.R} {
			if t.Aliases.Size() > 1 &&
				t.Aliases.SubsetOf(union) &&
				!t.Aliases.SubsetOf(left) && !t.Aliases.SubsetOf(right) {
				return true
			}
		}
	}
	return false
}

// Validate checks structural invariants: aliases resolve, join sides are
// disjoint and non-empty, term IDs are dense. Builders call it; tests can too.
func (q *Query) Validate() error {
	all := q.Aliases()
	if all.Size() != len(q.Rels) {
		return fmt.Errorf("query %s: duplicate aliases", q.Name)
	}
	for _, p := range q.Joins {
		if p.L.Aliases.IsEmpty() || p.R.Aliases.IsEmpty() {
			return fmt.Errorf("query %s: join pred %d has an empty side", q.Name, p.ID)
		}
		if p.L.Aliases.Intersects(p.R.Aliases) {
			return fmt.Errorf("query %s: join pred %d sides overlap", q.Name, p.ID)
		}
		if !p.Aliases().SubsetOf(all) {
			return fmt.Errorf("query %s: join pred %d references unknown alias", q.Name, p.ID)
		}
	}
	for _, p := range q.Sels {
		if !p.T.Aliases.SubsetOf(all) {
			return fmt.Errorf("query %s: selection %d references unknown alias", q.Name, p.ID)
		}
	}
	for i, t := range q.terms {
		if t.ID != i {
			return fmt.Errorf("query %s: term ID %d at index %d", q.Name, t.ID, i)
		}
	}
	return nil
}

// Builder assembles a Query with consistent IDs.
type Builder struct {
	q *Query
}

// NewBuilder starts a query.
func NewBuilder(name string) *Builder {
	return &Builder{q: &Query{Name: name, Out: Agg{Kind: AggCount}}}
}

// Rel mounts table under alias.
func (b *Builder) Rel(alias, tableName string) *Builder {
	b.q.Rels = append(b.q.Rels, RelRef{Alias: alias, Table: tableName})
	return b
}

func (b *Builder) term(fn *expr.UDF) *Term {
	t := &Term{ID: len(b.q.terms), Fn: fn, Aliases: NewAliasSet(fn.Aliases()...)}
	b.q.terms = append(b.q.terms, t)
	return t
}

// Join adds the predicate left = right.
func (b *Builder) Join(left, right *expr.UDF) *Builder {
	p := &JoinPred{ID: len(b.q.Joins), L: b.term(left), R: b.term(right)}
	b.q.Joins = append(b.q.Joins, p)
	return b
}

// Select adds the predicate fn = constant.
func (b *Builder) Select(fn *expr.UDF, constant value.Value) *Builder {
	p := &SelPred{ID: len(b.q.Sels), T: b.term(fn), Const: constant}
	b.q.Sels = append(b.q.Sels, p)
	return b
}

// Sum sets the final aggregate to SUM(attr).
func (b *Builder) Sum(attr string) *Builder {
	b.q.Out = Agg{Kind: AggSum, Attr: attr}
	return b
}

// Build validates and returns the query.
func (b *Builder) Build() (*Query, error) {
	if err := b.q.Validate(); err != nil {
		return nil, err
	}
	return b.q, nil
}

// MustBuild builds or panics; benchmark suites use it since their queries are
// static.
func (b *Builder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}
