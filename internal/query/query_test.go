package query

import (
	"testing"
	"testing/quick"

	"monsoon/internal/expr"
	"monsoon/internal/value"
)

func TestAliasSetBasics(t *testing.T) {
	s := NewAliasSet("b", "a", "b")
	if s.Key() != "a+b" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.Size() != 2 || !s.Contains("a") || s.Contains("c") {
		t.Error("membership wrong")
	}
	if !NewAliasSet("a").SubsetOf(s) || s.SubsetOf(NewAliasSet("a")) {
		t.Error("SubsetOf wrong")
	}
	if !s.Intersects(NewAliasSet("b", "z")) || s.Intersects(NewAliasSet("z")) {
		t.Error("Intersects wrong")
	}
	u := s.Union(NewAliasSet("c"))
	if u.Key() != "a+b+c" {
		t.Errorf("Union = %q", u.Key())
	}
	if !s.Equal(NewAliasSet("a", "b")) || s.Equal(u) {
		t.Error("Equal wrong")
	}
	var empty AliasSet
	if !empty.IsEmpty() || empty.String() != "{}" || s.String() != "{a,b}" {
		t.Error("empty/String wrong")
	}
}

func TestAliasSetQuickUnionCommutes(t *testing.T) {
	f := func(a, b []byte) bool {
		toSet := func(xs []byte) AliasSet {
			names := make([]string, len(xs))
			for i, x := range xs {
				names[i] = string(rune('a' + int(x)%6))
			}
			return NewAliasSet(names...)
		}
		x, y := toSet(a), toSet(b)
		return x.Union(y).Key() == y.Union(x).Key() &&
			x.SubsetOf(x.Union(y)) && y.SubsetOf(x.Union(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// threeWay builds the running example of §2.3:
// SELECT SUM(R.a) FROM R,S,T WHERE F1(R)=F2(S) AND F3(R)=F4(T).
func threeWay(t *testing.T) *Query {
	t.Helper()
	q, err := NewBuilder("sec23").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.HashMod("R.a", 1000), expr.Identity("S.k")).
		Join(expr.HashMod("R.b", 1000), expr.Identity("T.k")).
		Sum("R.a").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBuilderAndAccessors(t *testing.T) {
	q := threeWay(t)
	if q.Aliases().Key() != "R+S+T" {
		t.Errorf("Aliases = %v", q.Aliases())
	}
	if len(q.Terms()) != 4 {
		t.Errorf("terms = %d, want 4", len(q.Terms()))
	}
	for i, term := range q.Terms() {
		if term.ID != i || q.Term(i) != term {
			t.Errorf("term ID mismatch at %d", i)
		}
	}
	if tb, ok := q.TableOf("S"); !ok || tb != "S" {
		t.Error("TableOf failed")
	}
	if _, ok := q.TableOf("Z"); ok {
		t.Error("TableOf of unknown alias should fail")
	}
	if q.Out.Kind != AggSum || q.Out.Attr != "R.a" {
		t.Error("aggregate wrong")
	}
}

func TestApplicability(t *testing.T) {
	q := threeWay(t)
	rs := NewAliasSet("R", "S")
	rt := NewAliasSet("R", "T")
	all := NewAliasSet("R", "S", "T")
	if !q.Joins[0].ApplicableAt(rs) || q.Joins[0].ApplicableAt(rt) {
		t.Error("join 0 applicability wrong")
	}
	if got := q.JoinsApplicableAt(all); len(got) != 2 {
		t.Errorf("JoinsApplicableAt(all) = %d preds", len(got))
	}
	newPreds := q.PredsNewAt(NewAliasSet("R"), NewAliasSet("S"))
	if len(newPreds) != 1 || newPreds[0].ID != 0 {
		t.Errorf("PredsNewAt(R,S) = %v", newPreds)
	}
	// Joining RS with T newly applies pred 1 only.
	newPreds = q.PredsNewAt(rs, NewAliasSet("T"))
	if len(newPreds) != 1 || newPreds[0].ID != 1 {
		t.Errorf("PredsNewAt(RS,T) = %v", newPreds)
	}
}

func TestConnected(t *testing.T) {
	q := threeWay(t)
	if !q.Connected(NewAliasSet("R"), NewAliasSet("S")) {
		t.Error("R-S should be connected")
	}
	if q.Connected(NewAliasSet("S"), NewAliasSet("T")) {
		t.Error("S-T is a pure cross product, not connected")
	}
}

func TestConnectedMultiTableUDF(t *testing.T) {
	// WHERE F1(R,S) = F2(T): R×S is "connected" because it makes F1 evaluable.
	q, err := NewBuilder("multi").
		Rel("R", "R").Rel("S", "S").Rel("T", "T").
		Join(expr.SumMod("R.a", "S.b", 100), expr.Identity("T.k")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Connected(NewAliasSet("R"), NewAliasSet("S")) {
		t.Error("R-S must be connected: it makes F1(R,S) evaluable")
	}
	if !q.Connected(NewAliasSet("R", "S"), NewAliasSet("T")) {
		t.Error("RS-T must be connected by the predicate")
	}
	if q.Connected(NewAliasSet("R"), NewAliasSet("T")) {
		t.Error("R-T alone enables nothing")
	}
}

func TestSelections(t *testing.T) {
	q, err := NewBuilder("sel").
		Rel("o1", "ord").Rel("o2", "ord").
		Join(expr.Identity("o1.cid"), expr.Identity("o2.cid")).
		Select(expr.ExtractDate("o1.when"), value.String("2019-01-11")).
		Select(expr.SumMod("o1.a", "o2.a", 10), value.Int(3)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	o1 := NewAliasSet("o1")
	if got := q.SelsAt(o1); len(got) != 1 || got[0].ID != 0 {
		t.Errorf("SelsAt(o1) = %v", got)
	}
	newSels := q.SelsNewAt(o1, NewAliasSet("o2"))
	if len(newSels) != 1 || newSels[0].ID != 1 {
		t.Errorf("SelsNewAt = %v", newSels)
	}
	if got := q.SelsAt(q.Aliases()); len(got) != 2 {
		t.Errorf("SelsAt(all) = %d", len(got))
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	// Duplicate alias.
	_, err := NewBuilder("dup").Rel("R", "R").Rel("R", "R").Build()
	if err == nil {
		t.Error("duplicate alias must fail validation")
	}
	// Overlapping join sides.
	_, err = NewBuilder("overlap").
		Rel("R", "R").
		Join(expr.Identity("R.a"), expr.Identity("R.b")).
		Build()
	if err == nil {
		t.Error("overlapping join sides must fail validation")
	}
	// Unknown alias in predicate.
	_, err = NewBuilder("unknown").
		Rel("R", "R").Rel("S", "S").
		Join(expr.Identity("R.a"), expr.Identity("Z.b")).
		Build()
	if err == nil {
		t.Error("unknown alias must fail validation")
	}
	// Unknown alias in selection.
	_, err = NewBuilder("unksel").
		Rel("R", "R").
		Select(expr.Identity("Z.a"), value.Int(1)).
		Build()
	if err == nil {
		t.Error("unknown selection alias must fail validation")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid query must panic")
		}
	}()
	NewBuilder("bad").Rel("R", "R").Rel("R", "R").MustBuild()
}

func TestStringRendering(t *testing.T) {
	q := threeWay(t)
	if q.Joins[0].String() == "" || q.Joins[0].L.String() == "" {
		t.Error("String renderings should be non-empty")
	}
	q2 := NewBuilder("s").Rel("R", "R").
		Select(expr.Identity("R.a"), value.Int(5)).MustBuild()
	if got := q2.Sels[0].String(); got != "id(R.a) = 5" {
		t.Errorf("SelPred.String = %q", got)
	}
}
