// Package query defines the logical query IR the optimizers plan over:
// relations mounted under aliases, opaque function terms, join predicates of
// the form F1(...) = F2(...) (each side possibly spanning several aliases —
// a partially obscured, possibly multi-table predicate), selection predicates
// F(...) = const, and the join graph derived from them.
//
// A central simplification the whole repository leans on: because every plan
// eagerly applies every predicate that becomes applicable, the *result* of
// executing any join tree is determined by the set of aliases it covers.
// Expression identity — for materialization, for c(expr) statistics, and for
// d(term, expr) statistics — is therefore the alias set, independent of join
// order.
package query

import (
	"sort"
	"strings"
)

// AliasSet is an immutable sorted set of relation aliases. The zero value is
// the empty set.
type AliasSet struct {
	names []string // sorted, unique
}

// NewAliasSet builds a set from the given names.
func NewAliasSet(names ...string) AliasSet {
	cp := make([]string, len(names))
	copy(cp, names)
	sort.Strings(cp)
	out := cp[:0]
	for i, n := range cp {
		if i == 0 || n != cp[i-1] {
			out = append(out, n)
		}
	}
	return AliasSet{names: out}
}

// Key returns the canonical string form ("a+b+c"), used as a map key for
// materialized expressions and statistics.
func (s AliasSet) Key() string { return strings.Join(s.names, "+") }

// Names returns the sorted member aliases. Callers must not mutate it.
func (s AliasSet) Names() []string { return s.names }

// Size returns the number of members.
func (s AliasSet) Size() int { return len(s.names) }

// Contains reports membership of a single alias.
func (s AliasSet) Contains(a string) bool {
	i := sort.SearchStrings(s.names, a)
	return i < len(s.names) && s.names[i] == a
}

// SubsetOf reports whether every member of s is in o.
func (s AliasSet) SubsetOf(o AliasSet) bool {
	for _, n := range s.names {
		if !o.Contains(n) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two sets share any member.
func (s AliasSet) Intersects(o AliasSet) bool {
	for _, n := range s.names {
		if o.Contains(n) {
			return true
		}
	}
	return false
}

// Equal reports set equality.
func (s AliasSet) Equal(o AliasSet) bool {
	if len(s.names) != len(o.names) {
		return false
	}
	for i := range s.names {
		if s.names[i] != o.names[i] {
			return false
		}
	}
	return true
}

// Union returns the set union.
func (s AliasSet) Union(o AliasSet) AliasSet {
	merged := make([]string, 0, len(s.names)+len(o.names))
	merged = append(merged, s.names...)
	merged = append(merged, o.names...)
	return NewAliasSet(merged...)
}

// IsEmpty reports whether the set has no members.
func (s AliasSet) IsEmpty() bool { return len(s.names) == 0 }

// String renders the set for logs.
func (s AliasSet) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	return "{" + strings.Join(s.names, ",") + "}"
}
