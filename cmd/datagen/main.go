// Command datagen materializes any of the benchmark datasets to CSV files,
// one per table, for inspection or for loading into an external system.
//
// Usage:
//
//	datagen -bench tpch|imdb|ott|udf-imdb|udf-tpch [-scale tiny|small|medium] [-out DIR] [-seed N]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"monsoon/internal/bench/imdb"
	"monsoon/internal/bench/ott"
	"monsoon/internal/bench/tpch"
	"monsoon/internal/bench/udf"
	"monsoon/internal/harness"
	"monsoon/internal/table"
)

func main() {
	benchName := flag.String("bench", "tpch", "dataset: tpch, imdb, ott, udf-imdb, or udf-tpch")
	scaleName := flag.String("scale", "tiny", "scale: tiny, small, or medium")
	outDir := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "small":
		sc = harness.Small()
	case "medium":
		sc = harness.Medium()
	default:
		fail("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed

	var cat *table.Catalog
	switch *benchName {
	case "tpch":
		cat = tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed})
	case "imdb":
		cat = imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed})
	case "ott":
		cat = ott.Generate(ott.Config{ScaleFactor: sc.OTTSF, Seed: sc.Seed})
	case "udf-imdb":
		cat = udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed}).IMDBCat
	case "udf-tpch":
		cat = udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed}).TPCHCat
	default:
		fail("unknown dataset %q", *benchName)
	}

	dir := filepath.Join(*outDir, *benchName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail("mkdir: %v", err)
	}
	names := cat.Names()
	sort.Strings(names)
	total := 0
	for _, name := range names {
		rel := cat.MustGet(name)
		path := filepath.Join(dir, name+".csv")
		if err := writeCSV(path, rel); err != nil {
			fail("write %s: %v", path, err)
		}
		fmt.Printf("%-20s %8d rows -> %s\n", name, rel.Count(), path)
		total += rel.Count()
	}
	fmt.Printf("total: %d rows in %d tables\n", total, len(names))
}

func writeCSV(path string, rel *table.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(rel.Schema.Cols))
	for i, c := range rel.Schema.Cols {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rel.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
