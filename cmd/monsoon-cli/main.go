// Command monsoon-cli runs one benchmark query under one optimization option
// and prints what happened — including, for Monsoon, the full trace of MDP
// actions (plan edits, Σ statistics collections, EXECUTE rounds), an EXPLAIN
// ANALYZE rendering of every tree the EXECUTE rounds materialized, and
// optionally a JSONL span trace and a metrics dump.
//
// Usage:
//
//	monsoon-cli -bench tpch|imdb|ott|udf [-query NAME] [-opt monsoon|postgres|defaults|greedy|ondemand|sampling|skinner] [-prior NAME] [-scale tiny|small|medium] [-seed N] [-parallelism N] [-batch-size N] [-shards N] [-plan-parallelism N] [-plan-cache] [-repeat N] [-calibration-file FILE] [-replan-threshold Q] [-trace-json FILE] [-metrics]
//
// Without -query, the available query names for the benchmark are listed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"monsoon/internal/bench/imdb"
	"monsoon/internal/bench/ott"
	"monsoon/internal/bench/tpch"
	"monsoon/internal/bench/udf"
	"monsoon/internal/core"
	"monsoon/internal/cost"
	"monsoon/internal/engine"
	"monsoon/internal/harness"
	"monsoon/internal/obs"
	"monsoon/internal/obs/obshttp"
	"monsoon/internal/opt"
	"monsoon/internal/plan"
	"monsoon/internal/plancache"
	"monsoon/internal/prior"
	"monsoon/internal/stats"
	"monsoon/internal/table"
)

func main() {
	benchName := flag.String("bench", "tpch", "benchmark: tpch, imdb, ott, or udf")
	queryName := flag.String("query", "", "query name (empty lists the options)")
	optName := flag.String("opt", "monsoon", "optimizer option: monsoon, postgres, defaults, greedy, ondemand, sampling, skinner, lec, handwritten (ott only)")
	priorName := flag.String("prior", "Spike and Slab", "Monsoon prior (Table 2 names)")
	scaleName := flag.String("scale", "tiny", "data scale: tiny, small, or medium")
	seed := flag.Int64("seed", 1, "seed")
	par := flag.Int("parallelism", 0, "engine worker count: 0 = all cores, 1 = serial (results are identical either way)")
	batchSize := flag.Int("batch-size", 0, "engine pipeline batch size: 0 = default (4096), negative = unbounded/materialized (results are identical at any size)")
	shards := flag.Int("shards", 0, "partition the benchmark catalog into N hash shards for exchange-style execution: 0 or 1 = unsharded (results are identical at any count)")
	planPar := flag.Int("plan-parallelism", 0, "MCTS planner thread count: 0 = all cores, 1 = serial (plans are identical either way; monsoon only)")
	explain := flag.Bool("explain", false, "print the chosen plan with estimates and actuals (postgres, defaults, greedy)")
	traceJSON := flag.String("trace-json", "", "write the structured trace (spans, messages, estimates) as JSON lines to FILE")
	metrics := flag.Bool("metrics", false, "dump the run's metrics registry to stderr")
	planCache := flag.Bool("plan-cache", false, "plan through a session-shared plan cache (monsoon only)")
	repeat := flag.Int("repeat", 1, "run the query N times on fresh engines; with -plan-cache, later runs replay cached plans")
	obsAddr := flag.String("obs-addr", "", "serve live telemetry (/debug/vars, /metrics, /traces/recent) on this address while the process runs")
	calibFile := flag.String("calibration-file", "", "price MCTS simulations with this calibrated cost profile (JSON from monsoon-trace calibrate; monsoon only)")
	replanThr := flag.Float64("replan-threshold", 0, "q-error at which an EXECUTE round forces a mid-query replan with hardened statistics (0 disables; monsoon only)")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "small":
		sc = harness.Small()
	case "medium":
		sc = harness.Medium()
	default:
		fail("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed
	sc.Parallelism = *par
	sc.BatchSize = *batchSize
	sc.PlanParallelism = *planPar
	sc.Shards = *shards

	specs := loadSpecs(*benchName, sc)
	if *queryName == "" {
		fmt.Printf("queries in %s:\n", *benchName)
		for _, s := range specs {
			fmt.Printf("  %s (%d tables, %d join preds)\n", s.Q.Name, s.Q.Aliases().Size(), len(s.Q.Joins))
		}
		return
	}
	var spec *harness.QuerySpec
	for i := range specs {
		if specs[i].Q.Name == *queryName {
			spec = &specs[i]
		}
	}
	if spec == nil {
		fail("query %q not in benchmark %s", *queryName, *benchName)
	}

	var jsonSink obs.EventSink
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fail("cannot create trace file: %v", err)
		}
		defer f.Close()
		jsonSink = obs.NewJSONL(f)
	}
	var reg *obs.Registry
	if *metrics || *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics:")
			reg.Dump(os.Stderr)
		}()
	}
	sink := jsonSink
	if *obsAddr != "" {
		ring := obs.NewTraceRing(0)
		srv, err := obshttp.Serve(*obsAddr, reg, ring)
		if err != nil {
			fail("telemetry server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at http://%s\n", srv.Addr)
		sink = obs.Multi(jsonSink, ring)
	}

	var profile *cost.CostProfile
	if *calibFile != "" {
		var err error
		if profile, err = cost.LoadProfile(*calibFile); err != nil {
			fail("calibration file: %v", err)
		}
	}

	if *optName == "monsoon" {
		runMonsoonTraced(*spec, sc, *priorName, sink, reg, *planCache, *repeat, profile, *replanThr)
		return
	}
	if *explain {
		runExplained(*spec, sc, *optName, sink)
		return
	}
	o := pickOption(*optName, sc, sink)
	out := o.Run(*spec, sc.Timeout, sc.MaxTuples, sc.Seed)
	report(o.Name(), out)
}

func loadSpecs(bench string, sc harness.Scale) []harness.QuerySpec {
	specs := rawSpecs(bench, sc)
	if sc.Shards > 1 {
		// Specs of one benchmark may share a catalog object (tpch/imdb/ott
		// do); shard each distinct catalog once.
		done := map[*table.Catalog]bool{}
		for _, s := range specs {
			if !done[s.Cat] {
				s.Cat.Shard(sc.Shards)
				done[s.Cat] = true
			}
		}
	}
	return specs
}

func rawSpecs(bench string, sc harness.Scale) []harness.QuerySpec {
	switch bench {
	case "tpch":
		cat := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHSF, Seed: sc.Seed})
		var out []harness.QuerySpec
		for _, q := range tpch.Queries() {
			out = append(out, harness.QuerySpec{Q: q, Cat: cat})
		}
		return out
	case "imdb":
		cat := imdb.Generate(imdb.Config{Titles: sc.IMDBTitles, Bootstrap: sc.IMDBBootstrap, Seed: sc.Seed})
		var out []harness.QuerySpec
		for _, q := range imdb.Queries(sc.IMDBQueryCount, sc.Seed) {
			out = append(out, harness.QuerySpec{Q: q, Cat: cat})
		}
		return out
	case "ott":
		cat := ott.Generate(ott.Config{ScaleFactor: sc.OTTSF, Seed: sc.Seed})
		var out []harness.QuerySpec
		for _, c := range ott.Queries() {
			out = append(out, harness.QuerySpec{Q: c.Query, Cat: cat, Hand: c.Best})
		}
		return out
	case "udf":
		suite := udf.Generate(udf.Config{Titles: sc.UDFTitles, ScaleFactor: sc.UDFSF, Seed: sc.Seed})
		var out []harness.QuerySpec
		for _, qc := range suite.All() {
			out = append(out, harness.QuerySpec{Q: qc.Query, Cat: qc.Cat})
		}
		return out
	default:
		fail("unknown benchmark %q", bench)
		return nil
	}
}

func pickOption(name string, sc harness.Scale, sink obs.EventSink) harness.Option {
	switch name {
	case "postgres":
		return harness.Postgres{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "defaults":
		return harness.Defaults{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "greedy":
		return harness.Greedy{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "ondemand":
		return harness.OnDemand{Sink: sink, Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "sampling":
		return harness.Sampling{Sink: sink, Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "skinner":
		return harness.Skinner{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "lec":
		return harness.LEC{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	case "handwritten":
		return harness.HandWritten{Parallelism: sc.Parallelism, BatchSize: sc.BatchSize}
	default:
		fail("unknown option %q", name)
		return nil
	}
}

func runMonsoonTraced(spec harness.QuerySpec, sc harness.Scale, priorName string, sink obs.EventSink, reg *obs.Registry, planCache bool, repeat int, profile *cost.CostProfile, replanThr float64) {
	p := prior.ByName(priorName)
	if p == nil {
		fail("unknown prior %q (Table 2 names, e.g. \"Spike and Slab\")", priorName)
	}
	if repeat < 1 {
		repeat = 1
	}
	var cache *plancache.Cache
	if planCache {
		cache = plancache.New(0)
	}
	fmt.Printf("Monsoon on %s (prior %s, %d MCTS iterations)\n", spec.Q.Name, p.Name(), sc.MCTSIterations)
	var res *core.Result
	var col *obs.Collector
	var elapsed time.Duration
	// Each repetition runs on a fresh engine, so only planning knowledge — the
	// plan cache, when enabled — carries over; the full trace and EXPLAIN
	// ANALYZE come from the first run.
	for i := 0; i < repeat; i++ {
		eng := engine.New(spec.Cat)
		eng.Parallelism = sc.Parallelism
		eng.BatchSize = sc.BatchSize
		budget := &engine.Budget{MaxTuples: sc.MaxTuples, Deadline: time.Now().Add(sc.Timeout)}
		cfg := core.Config{
			Prior:           p,
			Iterations:      sc.MCTSIterations,
			Seed:            sc.Seed,
			Metrics:         reg,
			Parallelism:     sc.Parallelism,
			BatchSize:       sc.BatchSize,
			PlanParallelism: sc.PlanParallelism,
			Cache:           cache,
			Profile:         profile,
			ReplanThreshold: replanThr,
		}
		if i == 0 {
			col = &obs.Collector{}
			cfg.Trace = func(s string) { fmt.Println("  " + s) }
			cfg.Sink = obs.Multi(col, sink)
		}
		start := time.Now()
		r, err := core.Run(spec.Q, eng, budget, cfg)
		if err != nil {
			fail("run %d failed after %v: %v", i+1, time.Since(start), err)
		}
		if i == 0 {
			res, elapsed = r, time.Since(start)
		}
		if repeat > 1 {
			line := fmt.Sprintf("run %d: plan %v, exec %v", i+1, r.PlanTime, r.ExecTime)
			if cache != nil {
				line += fmt.Sprintf(", cache hits/misses %d/%d", r.CacheHits, r.CacheMisses)
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("done in %v: %d rows (aggregate %.6g)\n", elapsed, res.Rows, res.Value)
	fmt.Printf("rounds: %d EXECUTEs, %d actions, %d Σ operators\n", res.Executes, res.Actions, res.SigmaOps)
	fmt.Printf("breakdown: MCTS %v, Σ %v, execution %v; %.0f objects produced\n",
		res.PlanTime, res.SigmaTime, res.ExecTime, res.Produced)
	if replanThr > 0 {
		fmt.Printf("replans: %d triggered (threshold %g), %d cache invalidations\n",
			res.Replans, replanThr, res.ReplanInvalidations)
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", s.Hits, s.Misses, s.Entries)
	}

	// EXPLAIN ANALYZE over the trees the EXECUTE rounds materialized: the
	// estimates come from the recorded estimate-vs-actual events (est = the
	// prior's expectation frozen just before each round ran), the wall times
	// from the run's assembled span tree — inclusive per plan node, plus the
	// self component net of child operators.
	ests, actuals := map[string]float64{}, map[string]float64{}
	times := map[string]time.Duration{}
	for _, e := range col.Estimates {
		ests[e.Expr], actuals[e.Expr] = e.Est, e.Actual
		if e.Dur > 0 {
			times[e.Expr] = e.Dur
		}
	}
	incl, selfs := obs.OperatorTimes(obs.BuildSpanTree(col.Spans))
	for k, d := range incl {
		times[k] = d
	}
	if len(res.Executed) > 0 {
		fmt.Println("\nEXPLAIN ANALYZE (executed trees, in order):")
		for i, tree := range res.Executed {
			fmt.Printf("-- tree %d --\n%s", i+1, cost.ExplainAnalyze(spec.Q, tree, ests, actuals, times, selfs))
		}
	}
	fmt.Printf("trace: %d spans, %d trace lines, %d estimate records\n",
		len(col.Spans), len(col.Messages), len(col.Estimates))
}

func report(name string, out harness.Outcome) {
	if out.Err != nil {
		fail("%s failed: %v", name, out.Err)
	}
	if out.TimedOut {
		fmt.Printf("%s: TIMEOUT after %v (%.0f objects produced)\n", name, out.Time, out.Produced)
		return
	}
	fmt.Printf("%s: %d rows (aggregate %.6g) in %v; %.0f objects produced\n",
		name, out.Rows, out.Value, out.Time, out.Produced)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// runExplained plans with the named classical option, prints the EXPLAIN
// tree (estimates first, then actuals after execution), and reports the run.
func runExplained(spec harness.QuerySpec, sc harness.Scale, optName string, sink obs.EventSink) {
	eng := engine.New(spec.Cat)
	eng.Parallelism = sc.Parallelism
	eng.BatchSize = sc.BatchSize
	eng.Obs = obs.NewTracer(sink)
	var st *stats.Store
	switch optName {
	case "postgres":
		st = opt.CollectFullStats(spec.Q, spec.Cat)
	case "defaults", "greedy":
		st = stats.New()
		eng.SeedBaseStats(spec.Q, st)
	default:
		fail("-explain supports postgres, defaults, and greedy (got %q)", optName)
	}
	dv := &cost.Deriver{Q: spec.Q, St: st, Miss: cost.DefaultMiss(0.1), Obs: eng.Obs}
	var tree *plan.Node
	var err error
	if optName == "greedy" {
		tree, err = opt.GreedyPlan(spec.Q, st)
	} else {
		tree, err = opt.BestPlan(spec.Q, dv)
	}
	if err != nil {
		fail("planning failed: %v", err)
	}
	budget := &engine.Budget{MaxTuples: sc.MaxTuples, Deadline: time.Now().Add(sc.Timeout)}
	rel, er, execErr := eng.ExecTree(spec.Q, tree, budget)
	fmt.Printf("%s plan for %s:\n%s", optName, spec.Q.Name, cost.Explain(dv, tree, er.Counts))
	if execErr != nil {
		fail("execution aborted: %v", execErr)
	}
	v, err := engine.FinalAggregate(spec.Q, rel)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("result: %d rows (aggregate %.6g); %.0f objects produced\n", rel.Count(), v, er.Produced)
}
