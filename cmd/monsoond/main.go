// Command monsoond is the Monsoon serving daemon: a long-lived HTTP server
// that generates one benchmark's data at startup and then executes queries
// against it concurrently — many core.Sessions over one shared engine, plan
// cache, and statistics seed store, each request isolated in its own
// execution scope with its own budget.
//
// Endpoints:
//
//	POST /query        {"query": "tpch-q3"} or {"sql": "SELECT ..."} with
//	                   optional timeout_ms, max_tuples, seed
//	GET  /query?query=NAME
//	GET  /queries      names of the servable benchmark queries
//	GET  /healthz      liveness
//	GET  /debug/vars   metrics snapshot (JSON)
//	GET  /metrics      Prometheus text exposition
//	GET  /traces/recent span trees of recent queries
//
// Per-query budgets (deadline + produced-objects cap) and a bounded admission
// semaphore keep one pathological query from starving the rest; excess load
// is refused with 429 rather than queued. SIGINT/SIGTERM drain in-flight
// queries before the process exits 0.
//
// Usage:
//
//	monsoond [-addr :8080] [-bench tpch|imdb|ott|udf] [-scale tiny|small|medium]
//	         [-seed N] [-parallelism N] [-batch-size N] [-shards N]
//	         [-plan-parallelism N] [-iterations N] [-max-concurrent N]
//	         [-timeout D] [-max-tuples N] [-cache-cap N] [-harden-stats]
//	         [-calibration-file FILE] [-replan-threshold Q] [-drain-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/daemon"
	"monsoon/internal/harness"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	benchName := flag.String("bench", "tpch", "benchmark to serve: tpch, imdb, ott, or udf")
	scaleName := flag.String("scale", "tiny", "data scale: tiny, small, or medium")
	seed := flag.Int64("seed", 1, "base seed; per-query seeds derive from it deterministically")
	par := flag.Int("parallelism", 0, "engine worker count per query: 0 = all cores, 1 = serial")
	batchSize := flag.Int("batch-size", 0, "engine pipeline batch size: 0 = default (4096), negative = materialized")
	shards := flag.Int("shards", 0, "partition the served catalogs into N hash shards for exchange-style execution: 0 or 1 = unsharded (answers are identical at any count)")
	planPar := flag.Int("plan-parallelism", 0, "MCTS planner thread count per query: 0 = all cores")
	iterations := flag.Int("iterations", 0, "MCTS rollout budget per planning call: 0 = the scale's default")
	maxConc := flag.Int("max-concurrent", 8, "admitted queries in flight; excess requests get 429")
	timeout := flag.Duration("timeout", 0, "per-query deadline ceiling: 0 = the scale's default")
	maxTuples := flag.Float64("max-tuples", 0, "per-query produced-objects ceiling: 0 = unbounded")
	cacheCap := flag.Int("cache-cap", 0, "shared plan cache capacity: 0 = default (512)")
	hardenStats := flag.Bool("harden-stats", false,
		"merge each query's hardened statistics back into the shared seed store and self-calibrate the cost model from served traces (trades cross-request determinism for better estimates)")
	calibFile := flag.String("calibration-file", "",
		"price MCTS simulations with this calibrated cost profile (JSON from monsoon-trace calibrate); with -harden-stats the online calibrator takes over as traces accrue")
	replanThr := flag.Float64("replan-threshold", 0,
		"q-error at which an EXECUTE round forces a mid-query replan with hardened statistics (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window for in-flight queries")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "small":
		sc = harness.Small()
	case "medium":
		sc = harness.Medium()
	default:
		fail("unknown scale %q", *scaleName)
	}

	var profile *cost.CostProfile
	if *calibFile != "" {
		var err error
		if profile, err = cost.LoadProfile(*calibFile); err != nil {
			fail("calibration file: %v", err)
		}
	}

	srv, err := daemon.New(daemon.Config{
		Bench:            *benchName,
		Scale:            sc,
		Seed:             *seed,
		Parallelism:      *par,
		BatchSize:        *batchSize,
		Shards:           *shards,
		PlanParallelism:  *planPar,
		MCTSIterations:   *iterations,
		MaxConcurrent:    *maxConc,
		DefaultTimeout:   *timeout,
		DefaultMaxTuples: *maxTuples,
		CacheCapacity:    *cacheCap,
		HardenStats:      *hardenStats,
		Profile:          profile,
		ReplanThreshold:  *replanThr,
	})
	if err != nil {
		fail("%v", err)
	}
	hs, err := srv.Serve(*addr)
	if err != nil {
		fail("cannot listen on %s: %v", *addr, err)
	}
	fmt.Fprintf(os.Stderr, "monsoond serving %s (%s) on http://%s — %d queries, %d concurrent\n",
		*benchName, *scaleName, hs.Addr, len(srv.QueryNames()), *maxConc)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "monsoond: %v — draining in-flight queries (up to %v)\n", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "monsoond: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "monsoond: stopped")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
