// Command monsoon-trace analyzes JSONL traces produced by
// monsoon-bench/monsoon-cli -trace-json, and diffs traces (or span-count
// baselines) against each other:
//
//	monsoon-trace report trace.jsonl
//	    Per-operator-kind latency percentiles (p50/p95/p99 from the same
//	    log₂ histograms the metrics registry uses) plus a q-error summary.
//
//	monsoon-trace diff [-timing-tol 0.25] [-workers] a.jsonl b.jsonl
//	    Compare span counts per kind (exact) and, when -timing-tol is set
//	    and both inputs are full traces, per-kind total wall time within a
//	    relative tolerance. Either input may be a span-count baseline
//	    ({"kind","count"} lines); counts are then the only comparison.
//	    Worker spans follow GOMAXPROCS and shard spans follow the catalog's
//	    -shards layout, so both are configuration-dependent and excluded
//	    from count comparison unless -workers is set. Exit status 1 on
//	    drift.
//
//	monsoon-trace calibrate [-o profile.json] trace.jsonl...
//	    Learn a per-operator-kind cost profile (seconds per object produced)
//	    from the operator spans of one or more trace corpora, print the
//	    per-kind rate table to stderr, and write the profile JSON to stdout
//	    (or -o). Feed the profile back with -calibration-file on
//	    monsoon-cli, monsoon-bench, or monsoond.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"monsoon/internal/cost"
	"monsoon/internal/obs/tracefile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "report":
		report(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "calibrate":
		calibrate(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "monsoon-trace: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage:")
	fmt.Fprintln(os.Stderr, "  monsoon-trace report <trace.jsonl>")
	fmt.Fprintln(os.Stderr, "  monsoon-trace diff [-timing-tol frac] [-workers] <a.jsonl> <b.jsonl>")
	fmt.Fprintln(os.Stderr, "  monsoon-trace calibrate [-o profile.json] <trace.jsonl>...")
}

func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	tr, err := tracefile.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if tr.CountsOnly {
		fatal(fmt.Errorf("%s is a span-count baseline; report needs a full trace", fs.Arg(0)))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tcount\ttotal\tp50\tp95\tp99\tmax")
	for _, s := range tr.KindReport() {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\n",
			s.Kind, s.Count, s.Total, s.P50, s.P95, s.P99, s.Max)
	}
	w.Flush()

	q := tr.QErrors()
	if q.Joins+q.Leaves > 0 {
		fmt.Printf("\nq-error: %d records (%d joins, %d leaves)\n", q.Joins+q.Leaves, q.Joins, q.Leaves)
		fmt.Printf("  geo-mean %.3f  max %.3f  misses %d\n", q.GeoQ, q.MaxQ, q.Misses)
	}
	if tr.Messages > 0 {
		fmt.Printf("\n%d trace messages, %d spans total\n", tr.Messages, len(tr.Spans))
	}
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("timing-tol", 0, "relative tolerance for per-kind total wall time (0 disables timing comparison)")
	workers := fs.Bool("workers", false, "include configuration-dependent worker and shard span counts in the comparison")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	a, err := tracefile.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := tracefile.ReadFile(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs := tracefile.Diff(a, b, tracefile.DiffOptions{TimingTol: *tol, IncludeWorkers: *workers})
	if len(diffs) == 0 {
		fmt.Printf("traces match (%s vs %s)\n", describe(a), describe(b))
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	fmt.Fprintf(os.Stderr, "%d difference(s) between %s and %s\n", len(diffs), fs.Arg(0), fs.Arg(1))
	os.Exit(1)
}

// calibrate folds the operator spans of one or more trace corpora into a
// cost.Calibrator and emits the learned per-operator-kind profile as JSON.
// The human-readable rate table goes to stderr so the JSON on stdout stays
// pipeable.
func calibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	out := fs.String("o", "", "write the profile JSON to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cal := cost.NewCalibrator()
	for _, path := range fs.Args() {
		tr, err := tracefile.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if tr.CountsOnly {
			fatal(fmt.Errorf("%s is a span-count baseline; calibrate needs full traces", path))
		}
		cal.AddSpans(tr.Spans)
	}
	p, err := cal.Profile()
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, p.Table())
	js, err := p.WriteJSON()
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fatal(err)
	}
}

// describe summarizes one diff input: span total for full traces, counted
// total for span-count baselines (which carry no span records).
func describe(t *tracefile.Trace) string {
	if t.CountsOnly {
		n := 0
		for _, c := range t.Counts {
			n += c
		}
		return fmt.Sprintf("baseline of %d spans", n)
	}
	return fmt.Sprintf("%d spans", len(t.Spans))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monsoon-trace:", err)
	os.Exit(1)
}
