// Command monsoon-bench regenerates the paper's evaluation: every table
// (1–8) and figure (2–3) of §6, at a configurable scale.
//
// Usage:
//
//	monsoon-bench [-scale tiny|small|medium] [-exp all|table1|table2|...|figure3|plancache] [-seed N] [-parallelism N] [-plan-parallelism N] [-plan-cache] [-v] [-metrics] [-trace-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Output goes to stdout; progress (with -v) and the -metrics dump to stderr.
// With -trace-json, every Monsoon run of the campaign streams its structured
// trace (spans, messages, estimate records) to FILE as JSON lines. The
// -cpuprofile and -memprofile flags write pprof profiles of the campaign for
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"monsoon/internal/harness"
	"monsoon/internal/obs"
)

func main() {
	scaleName := flag.String("scale", "small", "campaign scale: tiny, small, or medium")
	exp := flag.String("exp", "all", "experiment: all, table1..table8, figure1..figure3, ablation, estimates, plancache")
	seed := flag.Int64("seed", 1, "master seed")
	par := flag.Int("parallelism", 0, "engine worker count: 0 = all cores, 1 = serial (results are identical either way)")
	planPar := flag.Int("plan-parallelism", 0, "MCTS planner thread count: 0 = all cores, 1 = serial (plans are identical either way)")
	verbose := flag.Bool("v", false, "print per-query progress to stderr")
	metrics := flag.Bool("metrics", false, "dump the campaign's accumulated Monsoon metrics to stderr on exit")
	traceJSON := flag.String("trace-json", "", "write the structured traces of the campaign's Monsoon runs as JSON lines to FILE")
	planCache := flag.Bool("plan-cache", false, "share one plan cache across the campaign's Monsoon runs (hit rates in -metrics)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create CPU profile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cannot start CPU profile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create heap profile: %v\n", err)
			os.Exit(2)
		}
		// Written on exit via defer, after the campaign's allocations settle.
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cannot write heap profile: %v\n", err)
			}
		}()
	}

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "small":
		sc = harness.Small()
	case "medium":
		sc = harness.Medium()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Parallelism = *par
	sc.PlanParallelism = *planPar
	sc.PlanCache = *planCache

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	r := &harness.Runner{Scale: sc, Progress: progress}
	if *metrics {
		r.Metrics = obs.NewRegistry()
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics (Monsoon runs of this campaign):")
			r.Metrics.Dump(os.Stderr)
		}()
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create trace file: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r.Sink = obs.NewJSONL(f)
	}
	w := os.Stdout

	type step struct {
		name string
		run  func() error
	}
	steps := []step{
		{"table1", func() error { harness.Table1(w); return nil }},
		{"figure1", func() error { return harness.Figure1(w, sc.Seed) }},
		{"figure2", func() error { harness.Figure2(w); return nil }},
		{"table2", func() error { return r.Table2(w) }},
		{"table3", func() error { return r.Table3(w) }},
		{"table4", func() error { return r.Table4(w) }},
		{"table5", func() error { return r.Table5(w) }},
		{"table6", func() error { return r.Table6(w) }},
		{"table7", func() error { return r.Table7(w) }},
		{"figure3", func() error { return r.Figure3(w) }},
		{"table8", func() error { return r.Table8(w) }},
		{"ablation", func() error { return r.Ablation(w) }},
		{"estimates", func() error { return r.Estimates(w) }},
		{"plancache", func() error { return r.PlanCacheStudy(w) }},
	}
	ran := false
	for _, s := range steps {
		if *exp != "all" && *exp != s.name {
			continue
		}
		ran = true
		fmt.Fprintf(w, "==== %s (scale %s) ====\n", s.name, sc.Name)
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
