// Command monsoon-bench regenerates the paper's evaluation: every table
// (1–8) and figure (2–3) of §6, at a configurable scale.
//
// Usage:
//
//	monsoon-bench [-scale tiny|small|medium] [-exp all|table1|...|figure3|plancache|memory|sharding|calibration] [-seed N] [-parallelism N] [-batch-size N] [-shards N] [-plan-parallelism N] [-plan-cache] [-calibration-file FILE] [-replan-threshold Q] [-v] [-metrics] [-obs-addr ADDR] [-obs-linger DUR] [-trace-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Output goes to stdout; progress (with -v) and the -metrics dump to stderr.
// With -trace-json, every Monsoon run of the campaign streams its structured
// trace (spans, messages, estimate records) to FILE as JSON lines. With
// -obs-addr, a telemetry server exposes the campaign's live metrics
// (/debug/vars, /metrics) and recently completed query traces
// (/traces/recent) while it runs; -obs-linger keeps it up after the last
// experiment so CI can scrape it. The -cpuprofile and -memprofile flags write
// pprof profiles of the campaign for `go tool pprof`.
//
// With -load-url, the binary is a load generator instead: N concurrent
// clients (-load-clients) each issue -load-requests queries round-robin
// against a live monsoond, and the report gives p50/p95/p99 latency plus a
// cross-client determinism check (exit 1 if any query returned different
// result hashes to different clients).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"monsoon/internal/cost"
	"monsoon/internal/daemon"
	"monsoon/internal/harness"
	"monsoon/internal/obs"
	"monsoon/internal/obs/obshttp"
)

func main() {
	scaleName := flag.String("scale", "small", "campaign scale: tiny, small, or medium")
	exp := flag.String("exp", "all", "experiment: all, table1..table8, figure1..figure3, ablation, estimates, plancache, memory, sharding, tracecorpus, calibration")
	seed := flag.Int64("seed", 1, "master seed")
	par := flag.Int("parallelism", 0, "engine worker count: 0 = all cores, 1 = serial (results are identical either way)")
	batchSize := flag.Int("batch-size", 0, "engine pipeline batch size: 0 = default (4096), negative = unbounded/materialized (results are identical at any size)")
	shards := flag.Int("shards", 0, "partition every generated catalog into N hash shards for exchange-style execution: 0 or 1 = unsharded (results are identical at any count)")
	planPar := flag.Int("plan-parallelism", 0, "MCTS planner thread count: 0 = all cores, 1 = serial (plans are identical either way)")
	verbose := flag.Bool("v", false, "print per-query progress to stderr")
	metrics := flag.Bool("metrics", false, "dump the campaign's accumulated Monsoon metrics to stderr on exit")
	obsAddr := flag.String("obs-addr", "", "serve live telemetry (/debug/vars, /metrics, /traces/recent) on this address, e.g. localhost:6060")
	obsLinger := flag.Duration("obs-linger", 0, "keep the -obs-addr server up this long after the campaign finishes (for scraping in CI)")
	traceJSON := flag.String("trace-json", "", "write the structured traces of the campaign's Monsoon runs as JSON lines to FILE")
	planCache := flag.Bool("plan-cache", false, "share one plan cache across the campaign's Monsoon runs (hit rates in -metrics)")
	calibFile := flag.String("calibration-file", "", "price the campaign's Monsoon runs with this calibrated cost profile (JSON from monsoon-trace calibrate)")
	replanThr := flag.Float64("replan-threshold", 0, "q-error at which the campaign's Monsoon runs force a mid-query replan (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE on exit")
	loadURL := flag.String("load-url", "", "load-generator mode: hammer a live monsoond at this base URL (e.g. http://127.0.0.1:8080) instead of running experiments")
	loadClients := flag.Int("load-clients", 8, "load-generator concurrent clients")
	loadRequests := flag.Int("load-requests", 10, "load-generator requests per client")
	loadQueries := flag.String("load-queries", "", "load-generator comma-separated query names (default: every query the daemon serves)")
	loadTimeout := flag.Duration("load-timeout", 60*time.Second, "load-generator per-request HTTP timeout")
	flag.Parse()

	if *loadURL != "" {
		var queries []string
		for _, q := range strings.Split(*loadQueries, ",") {
			if q = strings.TrimSpace(q); q != "" {
				queries = append(queries, q)
			}
		}
		ls, err := daemon.RunLoad(daemon.LoadConfig{
			URL:      *loadURL,
			Clients:  *loadClients,
			Requests: *loadRequests,
			Queries:  queries,
			Timeout:  *loadTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load generation failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ls.String())
		if len(ls.Divergent) > 0 {
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create CPU profile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cannot start CPU profile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create heap profile: %v\n", err)
			os.Exit(2)
		}
		// Written on exit via defer, after the campaign's allocations settle.
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cannot write heap profile: %v\n", err)
			}
		}()
	}

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "small":
		sc = harness.Small()
	case "medium":
		sc = harness.Medium()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Parallelism = *par
	sc.BatchSize = *batchSize
	sc.PlanParallelism = *planPar
	sc.PlanCache = *planCache
	sc.Shards = *shards

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	r := &harness.Runner{Scale: sc, Progress: progress, ReplanThreshold: *replanThr}
	if *calibFile != "" {
		p, err := cost.LoadProfile(*calibFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibration file: %v\n", err)
			os.Exit(2)
		}
		r.Profile = p
	}
	if *metrics || *obsAddr != "" {
		r.Metrics = obs.NewRegistry()
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics (Monsoon runs of this campaign):")
			r.Metrics.Dump(os.Stderr)
		}()
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create trace file: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r.Sink = obs.NewJSONL(f)
	}
	if *obsAddr != "" {
		ring := obs.NewTraceRing(0)
		srv, err := obshttp.Serve(*obsAddr, r.Metrics, ring)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot serve telemetry: %v\n", err)
			os.Exit(2)
		}
		// Registered before the -obs-linger defer below, so (LIFO) the
		// linger sleep finishes before the listener stops.
		defer srv.Close()
		addr := srv.Addr
		fmt.Fprintf(os.Stderr, "telemetry at http://%s\n", addr)
		if r.Sink != nil {
			r.Sink = obs.Multi(r.Sink, ring)
		} else {
			r.Sink = ring
		}
		if *obsLinger > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "lingering %s for telemetry scrapes at http://%s\n", *obsLinger, addr)
				time.Sleep(*obsLinger)
			}()
		}
	}
	w := os.Stdout

	type step struct {
		name string
		run  func() error
		// onlyExplicit keeps utility workloads (not paper artifacts) out of
		// -exp all; they run only when named.
		onlyExplicit bool
	}
	steps := []step{
		{name: "table1", run: func() error { harness.Table1(w); return nil }},
		{name: "figure1", run: func() error { return harness.Figure1(w, sc.Seed) }},
		{name: "figure2", run: func() error { harness.Figure2(w); return nil }},
		{name: "table2", run: func() error { return r.Table2(w) }},
		{name: "table3", run: func() error { return r.Table3(w) }},
		{name: "table4", run: func() error { return r.Table4(w) }},
		{name: "table5", run: func() error { return r.Table5(w) }},
		{name: "table6", run: func() error { return r.Table6(w) }},
		{name: "table7", run: func() error { return r.Table7(w) }},
		{name: "figure3", run: func() error { return r.Figure3(w) }},
		{name: "table8", run: func() error { return r.Table8(w) }},
		{name: "ablation", run: func() error { return r.Ablation(w) }},
		{name: "estimates", run: func() error { return r.Estimates(w) }},
		{name: "plancache", run: func() error { return r.PlanCacheStudy(w) }},
		{name: "memory", run: func() error { return r.MemoryStudy(w) }, onlyExplicit: true},
		{name: "sharding", run: func() error { return r.ShardingStudy(w) }, onlyExplicit: true},
		{name: "tracecorpus", run: func() error { return r.TraceCorpus(w) }, onlyExplicit: true},
		{name: "calibration", run: func() error { return r.CalibrationStudy(w) }, onlyExplicit: true},
	}
	ran := false
	for _, s := range steps {
		if *exp != s.name && (*exp != "all" || s.onlyExplicit) {
			continue
		}
		ran = true
		fmt.Fprintf(w, "==== %s (scale %s) ====\n", s.name, sc.Name)
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
